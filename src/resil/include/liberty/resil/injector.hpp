// FaultInjector: turns a FaultPlan into deterministic perturbations at the
// kernel's fault seam (liberty/core/fault.hpp).
//
// Determinism is the whole design: every mapping an injector applies is a
// pure function of (connection id, plan seed, current cycle, incoming
// signal) — never of the incoming *value* and never of scheduler state.
// Since the kernel guarantees each channel resolves to one value per cycle
// regardless of scheduler, and the mapping rewrites that resolution
// input-independently, the faulty trajectory is bit-identical under
// dynamic, static and parallel scheduling at every -O level (test_resil
// proves the full matrix).  The -O2 quiescence gate may cache and replay a
// faulted channel's post-mapping value; replay re-drives it through the
// seam, maps it again to the same per-cycle substitute, and stays
// idempotent for exactly this reason.
//
// Thread-safety: filters run on parallel worker threads.  All lookup tables
// are immutable while a simulation runs; the per-spec first-hit bookkeeping
// uses atomics.  cycle_ is written in begin_cycle (main thread, before any
// wave dispatch) and read by workers — ordered by the scheduler's pool
// mutex handoff.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "liberty/core/fault.hpp"
#include "liberty/resil/fault_plan.hpp"

namespace liberty::core {
class Simulator;
}

namespace liberty::resil {

/// One fault site the injector actually perturbed during a run.
struct InjectionSite {
  FaultClass cls = FaultClass::DropAck;
  core::ConnId connection = 0;
  std::string module;             // HandlerThrow only
  core::Cycle first_cycle = 0;    // first cycle a mapping changed anything
  std::uint64_t applications = 0; // mapping invocations (informational: the
                                  // count varies with scheduler re-drives;
                                  // first_cycle and the trace do not)
};

class FaultInjector final : public core::FaultHook {
 public:
  explicit FaultInjector(FaultPlan plan);

  /// Bind to a simulator: record its scheduler kind (plans may restrict
  /// specs to one kind), size the per-connection dispatch tables, and
  /// install this hook on the scheduler.  Call once per simulator; the
  /// injector must outlive it (or be uninstalled first).
  void install(core::Simulator& sim);

  // core::FaultHook
  void begin_cycle(core::Cycle cycle) override;
  void filter_forward(const core::Connection& c, Tristate& enable,
                      Value& data) override;
  void filter_backward(const core::Connection& c, Tristate& ack) override;

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

  /// Mask (deactivate) every unmasked spec whose onset is at or before
  /// `cycle` — the rollback-and-retry policy's "fault site masked" step.
  /// Returns how many specs were masked.  Call between cycles only.
  int mask_through(core::Cycle cycle);
  /// Mask every spec targeting module `name` (handler faults) — the
  /// quarantine policy's companion.  Returns how many were masked.
  int mask_module(const std::string& name);
  /// Mask every channel spec on connection `id`.
  int mask_connection(core::ConnId id);

  /// Environment-fault query (DurableSupervisor, at spill time): does an
  /// unmasked spec of env class `cls` afflict `cycle` under the bound
  /// scheduler?  Records the application when it does.  Call between
  /// cycles only (main thread).
  [[nodiscard]] bool env_fault_fires(FaultClass cls, core::Cycle cycle);

  /// Sites that actually fired so far (attribution for reports).
  [[nodiscard]] std::vector<InjectionSite> sites() const;

 private:
  void rebuild_tables();
  void note_applied(std::int32_t spec_index);
  void note_applied_at(std::int32_t spec_index, core::Cycle cycle);
  [[nodiscard]] Value substitute(core::ConnId conn, core::Cycle cycle) const;

  FaultPlan plan_;
  std::string sched_kind_;  // kind_name() of the bound scheduler
  std::size_t conn_count_ = 0;
  // Per-connection dispatch: index of the governing spec, -1 for none.  One
  // spec per (connection, direction) — the first active spec wins, matching
  // plan order.
  std::vector<std::int32_t> fwd_spec_;
  std::vector<std::int32_t> bwd_spec_;
  std::vector<std::int32_t> handler_specs_;  // active HandlerThrow indices
  core::Cycle cycle_ = 0;
  // Per-spec first-hit tracking (workers write concurrently).
  std::unique_ptr<std::atomic<std::uint64_t>[]> applications_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> first_cycle_;
};

}  // namespace liberty::resil
