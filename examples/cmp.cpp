// Chip multi-processor (the paper's Figure 2(a)).
//
// "A chip multi-processor will consist of general-purpose processor (GP)
// modules from UPL, interface modules (NI) from NIL, and network fabric
// modules provided by CCL, glued with multiprocessor modules from MPL."
//
// Exactly that: upl::SimpleCpu cores, mpl::DirCache coherent L1s,
// nil::FabricAdapter NIs, a ccl mesh, and an mpl::DirectoryCtl home node.
// The cores run a parallel sum: each computes a partial sum of its slice
// and publishes it; core 0 spins for all partials and prints the total.
#include <cstdio>
#include <string>
#include <vector>

#include "liberty/ccl/ccl.hpp"
#include "liberty/core/simulator.hpp"
#include "liberty/mpl/mpl.hpp"
#include "liberty/nil/nil.hpp"
#include "liberty/upl/upl.hpp"

using namespace liberty;
using core::Netlist;
using core::Params;

namespace {

/// Worker `id` of `n`: sum values id*100 .. id*100+49 (computed locally),
/// publish partial at 512+id, then set flag 600+id.
std::string worker_prog(int id) {
  return "  li r1, 0\n"
         "  li r2, " + std::to_string(id * 100) + "\n"
         "  li r3, " + std::to_string(id * 100 + 50) + "\n"
         "loop:\n"
         "  add r1, r1, r2\n"
         "  addi r2, r2, 1\n"
         "  blt r2, r3, loop\n"
         "  sw r1, " + std::to_string(512 + id * 4) + "(r0)\n"
         "  li r4, 1\n"
         "  sw r4, " + std::to_string(600 + id * 4) + "(r0)\n"
         "  halt\n";
}

/// Core 0: do its own slice, then gather everyone's partials.
std::string gather_prog(int n) {
  std::string s = worker_prog(0);
  // Replace the trailing halt with the gather loop.
  s.erase(s.rfind("  halt\n"));
  s += "  li r10, 1\n"   // next worker to collect
       "  li r11, " + std::to_string(n) + "\n"
       "  lw r12, 512(r0)\n"
       "gather:\n"
       "  bge r10, r11, done\n"
       "  slli r13, r10, 2\n"
       "spin:\n"
       "  addi r14, r13, 600\n"
       "  lw r15, 0(r14)\n"
       "  beq r15, r0, spin\n"
       "  addi r14, r13, 512\n"
       "  lw r15, 0(r14)\n"
       "  add r12, r12, r15\n"
       "  addi r10, r10, 1\n"
       "  j gather\n"
       "done:\n"
       "  out r12\n"
       "  halt\n";
  return s;
}

}  // namespace

int main() {
  constexpr int kCols = 2, kRows = 2;
  constexpr int kCores = 3;          // node 3 is the directory home
  constexpr int kHome = 3;

  Netlist nl;
  ccl::Fabric mesh = ccl::build_mesh(nl, "noc", kCols, kRows);

  std::vector<upl::SimpleCpu*> cpus;
  for (int i = 0; i < kCores; ++i) {
    auto& cpu = nl.make<upl::SimpleCpu>("gp" + std::to_string(i), Params());
    auto& l1 = nl.make<mpl::DirCache>(
        "l1_" + std::to_string(i),
        Params().set("id", i).set("sets", 16).set("ways", 2)
            .set("line_words", 4).set("home0", kHome));
    auto& ni = nl.make<nil::FabricAdapter>(
        "ni" + std::to_string(i), Params().set("id", i).set("vcs", 1));
    cpu.set_program(
        upl::assemble(i == 0 ? gather_prog(kCores) : worker_prog(i)));
    cpus.push_back(&cpu);
    nl.connect(cpu.out("mem_req"), l1.in("cpu_req"));
    nl.connect(l1.out("cpu_resp"), cpu.in("mem_resp"));
    nl.connect(l1.out("msg_out"), ni.in("msg_in"));
    nl.connect(ni.out("msg_out"), l1.in("msg_in"));
    nl.connect_at(ni.out("net_out"), 0, mesh.inject_port(i), 0);
    nl.connect_at(mesh.eject_port(i), 0, ni.in("net_in"), 0);
  }
  auto& dir = nl.make<mpl::DirectoryCtl>(
      "dir", Params().set("id", kHome).set("home0", kHome)
                 .set("line_words", 4).set("latency", 8));
  auto& dni = nl.make<nil::FabricAdapter>(
      "ni_dir", Params().set("id", kHome).set("vcs", 1));
  nl.connect(dir.out("msg_out"), dni.in("msg_in"));
  nl.connect(dni.out("msg_out"), dir.in("msg_in"));
  nl.connect_at(dni.out("net_out"), 0, mesh.inject_port(kHome), 0);
  nl.connect_at(mesh.eject_port(kHome), 0, dni.in("net_in"), 0);
  nl.finalize();

  core::Simulator sim(nl, core::SchedulerKind::Static);
  std::uint64_t cycles = 0;
  while (cycles < 500'000) {
    bool all = true;
    for (const auto* cpu : cpus) all = all && cpu->halted();
    if (all) break;
    sim.step();
    ++cycles;
  }

  std::int64_t expect = 0;
  for (int i = 0; i < kCores; ++i) {
    for (int k = 0; k < 50; ++k) expect += i * 100 + k;
  }
  std::printf("CMP: %d cores on a %dx%d mesh, directory home at node %d\n",
              kCores, kCols, kRows, kHome);
  std::printf("parallel sum = %lld (expected %lld) in %llu cycles\n",
              static_cast<long long>(cpus[0]->output().at(0)),
              static_cast<long long>(expect),
              static_cast<unsigned long long>(cycles));
  std::printf("directory: GetS=%llu GetX=%llu Inv=%llu Fetch=%llu\n",
              (unsigned long long)dir.stats().counter_value("gets"),
              (unsigned long long)dir.stats().counter_value("getx"),
              (unsigned long long)dir.stats().counter_value("invs"),
              (unsigned long long)dir.stats().counter_value("fetches"));
  double noc_pj = mesh.total_router_energy_pj();
  std::printf("NoC energy: %.1f pJ (%.1f dynamic, %.1f leakage)\n", noc_pj,
              mesh.total_dynamic_pj(), mesh.total_leakage_pj());
  return cpus[0]->output().at(0) == expect ? 0 : 1;
}
