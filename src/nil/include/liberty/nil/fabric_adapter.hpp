// FabricAdapter: the NIL's format converter (§3.5: "these devices translate
// between the formats understood on the external network and the local
// interconnect").
//
// Outbound, it wraps any pcl::Routable message into a ccl::Flit addressed
// to the message's route key; inbound, it unwraps flits back into their
// payload.  This one component is what lets the MPL's directory coherence
// protocol, the DMA engine's chunks, and application messages all ride the
// same CCL fabrics unchanged.
#pragma once

#include <cstdint>
#include <string>

#include "liberty/ccl/flit.hpp"
#include "liberty/core/module.hpp"
#include "liberty/core/params.hpp"

namespace liberty::nil {

/// Ports:
///   msg_in  (in)  local messages to transmit (must be pcl::Routable)
///   net_out (out) flits toward the fabric
///   net_in  (in)  flits from the fabric
///   msg_out (out) unwrapped payloads for the local component
///
/// Parameters:
///   id    this node's fabric address                        [0]
///   vcs   VCs outbound flits are spread across              [2]
///
/// Stats: tx, rx.
class FabricAdapter : public liberty::core::Module {
 public:
  FabricAdapter(const std::string& name, const liberty::core::Params& params);

  void react() override;
  void end_of_cycle() override;
  void declare_deps(liberty::core::Deps& deps) const override;
  void save_state(liberty::core::StateWriter& w) const override;
  void load_state(liberty::core::StateReader& r) override;

 private:
  liberty::core::Port& msg_in_;
  liberty::core::Port& net_out_;
  liberty::core::Port& net_in_;
  liberty::core::Port& msg_out_;
  std::size_t id_num_;
  std::size_t vcs_;
  std::uint64_t next_packet_ = 0;
};

}  // namespace liberty::nil
