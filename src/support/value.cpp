#include "liberty/support/value.hpp"

#include <sstream>

namespace liberty {

std::string Value::to_string() const {
  struct Visitor {
    std::string operator()(std::monostate) const { return "<token>"; }
    std::string operator()(bool b) const { return b ? "true" : "false"; }
    std::string operator()(std::int64_t i) const { return std::to_string(i); }
    std::string operator()(double d) const {
      std::ostringstream os;
      os << d;
      return os.str();
    }
    std::string operator()(const std::string& s) const { return '"' + s + '"'; }
    std::string operator()(const std::shared_ptr<const Payload>& p) const {
      return p ? p->describe() : "<null payload>";
    }
  };
  return std::visit(Visitor{}, v_);
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.to_string();
}

}  // namespace liberty
