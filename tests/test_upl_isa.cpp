// LRISC ISA: assembler, emulator, predictors, cache model.
#include <gtest/gtest.h>

#include "liberty/upl/isa.hpp"
#include "liberty/upl/predictors.hpp"
#include "liberty/upl/cache.hpp"
#include "liberty/upl/workloads.hpp"
#include "liberty/support/error.hpp"

namespace {

using namespace liberty::upl;

// ---------------------------------------------------------------------------
// Assembler
// ---------------------------------------------------------------------------

TEST(Assembler, BasicProgramAssembles) {
  const Program p = assemble(R"(
    ; compute 2 + 3
    li r1, 2
    li r2, 3
    add r3, r1, r2
    out r3
    halt
  )");
  ASSERT_EQ(p.code.size(), 5u);
  EXPECT_EQ(p.code[2].op, Op::Add);
  EXPECT_EQ(p.code[2].rd, 3);
}

TEST(Assembler, LabelsResolveForwardAndBackward) {
  const Program p = assemble(R"(
    j skip
    halt
    skip:
    beq r0, r0, end
    nop
    end:
    halt
  )");
  EXPECT_EQ(p.code[0].imm, 2);  // skip
  EXPECT_EQ(p.code[2].imm, 4);  // end
}

TEST(Assembler, MemoryOperandsAndDataDirective) {
  const Program p = assemble(R"(
    .word 10, 42
    lw r1, 10(r0)
    sw r1, -2(r5)
    halt
  )");
  EXPECT_EQ(p.data.at(10), 42);
  EXPECT_EQ(p.code[0].imm, 10);
  EXPECT_EQ(p.code[1].imm, -2);
  EXPECT_EQ(p.code[1].rs1, 5);
  EXPECT_EQ(p.code[1].rs2, 1);
}

TEST(Assembler, HexImmediates) {
  const Program p = assemble("li r1, 0x10\nhalt\n");
  EXPECT_EQ(p.code[0].imm, 16);
}

TEST(Assembler, ErrorsCarryLineNumbers) {
  try {
    assemble("nop\nbogus r1, r2\n", "prog.s");
    FAIL() << "expected SpecError";
  } catch (const liberty::SpecError& e) {
    EXPECT_EQ(e.line(), 2);
  }
  EXPECT_THROW(assemble("add r1, r2\n"), liberty::SpecError);      // arity
  EXPECT_THROW(assemble("add r1, r2, r40\n"), liberty::SpecError); // reg range
  EXPECT_THROW(assemble("j nowhere\n"), liberty::SpecError);       // label
  EXPECT_THROW(assemble("x: x: nop\n"), liberty::SpecError);       // dup label
}

// ---------------------------------------------------------------------------
// Emulator semantics
// ---------------------------------------------------------------------------

TEST(Emulator, ArithmeticAndShifts) {
  const Program p = assemble(R"(
    li r1, 7
    li r2, 3
    add r3, r1, r2
    sub r4, r1, r2
    mul r5, r1, r2
    div r6, r1, r2
    rem r7, r1, r2
    sll r8, r1, r2
    slt r9, r2, r1
    out r3
    out r4
    out r5
    out r6
    out r7
    out r8
    out r9
    halt
  )");
  ArchState st(p);
  st.run();
  const std::vector<std::int64_t> expect = {10, 4, 21, 2, 1, 56, 1};
  EXPECT_EQ(st.output(), expect);
}

TEST(Emulator, R0IsHardwiredZero) {
  const Program p = assemble("li r0, 99\nout r0\nhalt\n");
  ArchState st(p);
  st.run();
  ASSERT_EQ(st.output().size(), 1u);
  EXPECT_EQ(st.output()[0], 0);
}

TEST(Emulator, LoadsAndStores) {
  const Program p = assemble(R"(
    li r1, 123
    sw r1, 50(r0)
    lw r2, 50(r0)
    out r2
    halt
  )");
  ArchState st(p);
  st.run();
  EXPECT_EQ(st.output().at(0), 123);
  EXPECT_EQ(st.load(50), 123);
}

TEST(Emulator, JalLinksAndJalrReturns) {
  const Program p = assemble(R"(
      jal r31, func
      out r1
      halt
    func:
      li r1, 77
      jalr r0, r31
  )");
  ArchState st(p);
  st.run();
  EXPECT_EQ(st.output().at(0), 77);
}

TEST(Emulator, DivisionByZeroIsDefined) {
  const Program p = assemble(R"(
    li r1, 5
    div r2, r1, r0
    rem r3, r1, r0
    out r2
    out r3
    halt
  )");
  ArchState st(p);
  st.run();
  EXPECT_EQ(st.output().at(0), -1);  // div by zero -> -1
  EXPECT_EQ(st.output().at(1), 5);   // rem by zero -> dividend
}

// ---------------------------------------------------------------------------
// Workload correctness on the emulator (the golden results every timing
// model must reproduce)
// ---------------------------------------------------------------------------

TEST(Workloads, SumLoop) {
  ArchState st(assemble(workloads::sum_loop(100)));
  st.run();
  EXPECT_EQ(st.output().at(0), 5050);
}

TEST(Workloads, Fibonacci) {
  ArchState st(assemble(workloads::fibonacci(20)));
  st.run();
  EXPECT_EQ(st.output().at(0), 6765);
}

TEST(Workloads, ArraySum) {
  ArchState st(assemble(workloads::array_sum(50)));
  st.run();
  EXPECT_EQ(st.output().at(0), 50 * 49 / 2);
}

TEST(Workloads, Sieve) {
  ArchState st(assemble(workloads::sieve(100)));
  st.run();
  EXPECT_EQ(st.output().at(0), 25);  // 25 primes <= 100
}

TEST(Workloads, Matmul) {
  ArchState st(assemble(workloads::matmul(4)));
  st.run(200000);
  // A[i][j]=i+j, B[i][j]=i-j, C=A*B.  C[0][0] = sum_k k*k... check by hand:
  // C[0][0] = sum_k (0+k)*(k-0) = 0+1+4+9 = 14.
  EXPECT_EQ(st.output().at(0), 14);
  // C[3][3] = sum_k (3+k)*(k-3) = -9 + -8 + -5 + 0 = -22.
  EXPECT_EQ(st.output().at(1), -22);
}

TEST(Workloads, PointerChaseReturnsRingAddress) {
  ArchState st(assemble(workloads::pointer_chase(16, 8, 35)));
  st.run(100000);
  // After 35 hops around a 16-node ring starting at node 0 we are at node
  // 35 % 16 = 3... the value OUT is the address loaded on the last hop,
  // i.e. node (35 % 16) = 3 -> 4096 + 3*8.
  EXPECT_EQ(st.output().at(0), 4096 + (35 % 16) * 8);
}

TEST(Workloads, ProducerConsumerHandshake) {
  // Sequentially: producer fills, consumer sums.
  ArchState prod(assemble(workloads::producer(10, 900)));
  prod.run();
  ArchState cons(assemble(workloads::consumer(10, 900)));
  // Transplant producer memory into consumer (sequential stand-in for the
  // shared-memory run exercised properly in the MPL tests).
  for (int i = 0; i <= 10; ++i) {
    cons.store(900 + static_cast<std::uint64_t>(i),
               prod.load(900 + static_cast<std::uint64_t>(i)));
  }
  cons.run();
  EXPECT_EQ(cons.output().at(0), 45);
}

// ---------------------------------------------------------------------------
// Predictors
// ---------------------------------------------------------------------------

TEST(Predictors, BimodalLearnsABias) {
  BimodalPredictor p(64);
  for (int i = 0; i < 10; ++i) p.update(100, true);
  EXPECT_TRUE(p.predict(100));
  for (int i = 0; i < 20; ++i) p.update(100, false);
  EXPECT_FALSE(p.predict(100));
}

TEST(Predictors, GShareLearnsAlternation) {
  // T,N,T,N... bimodal oscillates; gshare keys on history and converges.
  GSharePredictor g(1024);
  bool dir = false;
  int correct_late = 0;
  for (int i = 0; i < 400; ++i) {
    dir = !dir;
    const bool pred = g.predict(7);
    if (i >= 200 && pred == dir) ++correct_late;
    g.update(7, dir);
  }
  EXPECT_GT(correct_late, 190);  // near-perfect after warmup
}

TEST(Predictors, TournamentAtLeastMatchesComponentsOnBias) {
  TournamentPredictor t(256);
  for (int i = 0; i < 50; ++i) t.update(3, true);
  EXPECT_TRUE(t.predict(3));
}

TEST(Predictors, FactoryRejectsUnknownKind) {
  EXPECT_THROW(make_predictor("magic"), liberty::ElaborationError);
}

TEST(Predictors, BtbRemembersTargets) {
  Btb btb(16);
  std::uint64_t t = 0;
  EXPECT_FALSE(btb.lookup(5, t));
  btb.insert(5, 42);
  ASSERT_TRUE(btb.lookup(5, t));
  EXPECT_EQ(t, 42u);
  // Collision evicts.
  btb.insert(5 + 16, 99);
  EXPECT_FALSE(btb.lookup(5, t));
}

TEST(Predictors, RasIsAStack) {
  Ras ras(4);
  ras.push(1);
  ras.push(2);
  std::uint64_t a = 0;
  ASSERT_TRUE(ras.pop(a));
  EXPECT_EQ(a, 2u);
  ASSERT_TRUE(ras.pop(a));
  EXPECT_EQ(a, 1u);
  EXPECT_FALSE(ras.pop(a));
}

// ---------------------------------------------------------------------------
// CacheModel
// ---------------------------------------------------------------------------

TEST(CacheModelTest, HitAfterFill) {
  CacheModel c(4, 2, 4, CacheModel::Replacement::Lru);
  EXPECT_EQ(c.lookup(100), nullptr);
  auto& way = c.victim(100);
  c.fill(way, 100, false);
  EXPECT_NE(c.lookup(100), nullptr);
  EXPECT_NE(c.lookup(103), nullptr);  // same line (line_words = 4, base 100)
  EXPECT_EQ(c.lookup(104), nullptr);  // next line
}

TEST(CacheModelTest, LruEvictsLeastRecentlyUsed) {
  CacheModel c(1, 2, 1, CacheModel::Replacement::Lru);
  c.fill(c.victim(0), 0, false);
  c.fill(c.victim(1), 1, false);
  (void)c.lookup(0);  // touch 0: now 1 is LRU
  auto& v = c.victim(2);
  EXPECT_EQ(v.tag, c.tag_of(1));
}

TEST(CacheModelTest, InvalidateRemovesLine) {
  CacheModel c(4, 2, 4, CacheModel::Replacement::Lru);
  c.fill(c.victim(40), 40, true);
  EXPECT_TRUE(c.invalidate(40));
  EXPECT_EQ(c.lookup(40), nullptr);
  EXPECT_FALSE(c.invalidate(40));
}

TEST(CacheModelTest, AddrOfInvertsMapping) {
  CacheModel c(8, 4, 4, CacheModel::Replacement::Lru);
  const std::uint64_t addr = 1236;  // arbitrary
  auto& way = c.victim(addr);
  c.fill(way, addr, false);
  EXPECT_EQ(c.addr_of(way, c.set_of(addr)), c.line_addr(addr));
}

TEST(CacheModelTest, GeometryValidation) {
  EXPECT_THROW(CacheModel(0, 1, 1, CacheModel::Replacement::Lru),
               liberty::ElaborationError);
}

}  // namespace
