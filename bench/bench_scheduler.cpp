// E8 (paper §2.3, ref [22]): fixing the model of computation makes the
// specification analyzable — the statically scheduled simulator beats the
// dynamic fixed-point scheduler, and the same analysis levelizes the
// schedule into waves the parallel scheduler runs on a worker pool (see
// docs/scheduling.md).
//
// Shape expectation: static scheduling reduces react() invocations per
// cycle substantially (it calls each handler O(1) times on acyclic
// netlists) and wins wall-clock across netlist types; the parallel
// scheduler matches static's react counts and wins additionally on wide
// netlists when real cores are available (on a single-core host its
// barrier overhead makes it lose — the JSON records whichever is true).
// All schedulers produce identical results (asserted here and across the
// test suite).
//
// The elaboration-time optimizer (docs/optimizer.md) rides the same
// harness: every (netlist, scheduler) pair runs at -O0 and again at -O2,
// and the JSON records both so the optimizer's effect is an A/B diff on
// identical workloads.  Three netlists exist specifically for it:
// "passthrough x32" is dominated by stateless chain fusion (16 identity
// FuncMaps per lane collapse into one fused handler), "const fold x32" by
// constant propagation + dead-logic elimination (an expensive pure
// transform folds once at elaboration instead of 512 times per cycle),
// and "burst idle" by quiescence gating (lanes sleep between widely
// spaced bursts).
//
// Artifact: BENCH_scheduler.json in the working directory, one record per
// (netlist, scheduler, opt level) with wall-clock, react-call and
// kernel.opt.* counts.
#include "bench_util.hpp"

#include <cstdlib>
#include <filesystem>
#include <optional>

#include "liberty/gen/compiled_scheduler.hpp"
#include "liberty/gen/native.hpp"
#include "liberty/opt/optimizer.hpp"

using namespace liberty;
using namespace liberty::bench;

namespace {

struct NetKind {
  const char* name;
  void (*build)(core::Netlist&);
  // Larger netlists additionally sweep the parallel scheduler across
  // explicit thread counts (the base matrix runs it at hardware
  // concurrency, which on a small host never exercises the worker pool).
  bool thread_sweep = false;
};

void build_chains(core::Netlist& nl) {
  for (int i = 0; i < 64; ++i) {
    auto& src = nl.make<pcl::Source>(
        "s" + std::to_string(i),
        core::Params().set("kind", "counter").set("period", 1));
    auto& q = nl.make<pcl::Queue>("q" + std::to_string(i),
                                  core::Params().set("depth", 4));
    auto& d = nl.make<pcl::Delay>("d" + std::to_string(i),
                                  core::Params().set("latency", 3));
    auto& k = nl.make<pcl::Sink>("k" + std::to_string(i), core::Params());
    nl.connect(src.out("out"), q.in("in"));
    nl.connect(q.out("out"), d.in("in"));
    nl.connect(d.out("out"), k.in("in"));
  }
}

void build_mesh(core::Netlist& nl, std::size_t side) {
  ccl::Fabric mesh = ccl::build_mesh(nl, "mesh", side, side);
  const std::size_t nodes = side * side;
  for (std::size_t i = 0; i < nodes; ++i) {
    auto& g = nl.make<ccl::TrafficGen>(
        "g" + std::to_string(i),
        core::Params().set("id", static_cast<std::int64_t>(i))
            .set("nodes", static_cast<std::int64_t>(nodes))
            .set("rate", 0.15).set("pattern", "uniform").set("seed", 7));
    auto& s = nl.make<ccl::TrafficSink>("k" + std::to_string(i),
                                        core::Params());
    nl.connect_at(g.out("out"), 0, mesh.inject_port(i), 0);
    nl.connect_at(mesh.eject_port(i), 0, s.in("in"), 0);
  }
}

void build_mesh_4x4(core::Netlist& nl) { build_mesh(nl, 4); }
void build_mesh_8x8(core::Netlist& nl) { build_mesh(nl, 8); }

void build_arbiters(core::Netlist& nl) {
  // Combinational-heavy: arbiter trees (lots of react() activity).
  for (int t = 0; t < 8; ++t) {
    auto& arb = nl.make<pcl::Arbiter>("arb" + std::to_string(t),
                                      core::Params());
    auto& sink = nl.make<pcl::Sink>("k" + std::to_string(t), core::Params());
    for (int i = 0; i < 8; ++i) {
      auto& src = nl.make<pcl::Source>(
          "s" + std::to_string(t) + "_" + std::to_string(i),
          core::Params().set("kind", "token").set("period", 2));
      nl.connect(src.out("out"), arb.in("in"));
    }
    nl.connect(arb.out("out"), sink.in("in"));
  }
}

void build_passthrough(core::Netlist& nl) {
  // Fusion-dominated: 32 lanes of 16 identity FuncMaps between a counter
  // source and a sink.  At -O2 each lane's FuncMap run collapses into one
  // fused forward/backward sweep; at -O0 every FuncMap reacts every cycle.
  for (int lane = 0; lane < 32; ++lane) {
    const std::string l = std::to_string(lane);
    auto& src = nl.make<pcl::Source>(
        "s" + l, core::Params().set("kind", "counter").set("period", 1));
    core::Module* prev = &src;
    for (int i = 0; i < 16; ++i) {
      auto& f = nl.make<pcl::FuncMap>("f" + l + "_" + std::to_string(i),
                                      core::Params());
      nl.connect(prev->out("out"), f.in("in"));
      prev = &f;
    }
    auto& k = nl.make<pcl::Sink>("k" + l, core::Params());
    nl.connect(prev->out("out"), k.in("in"));
  }
}

void build_const_fold(core::Netlist& nl) {
  // Constant-folding-dominated: 32 lanes of token taps feeding 16 FuncMaps
  // whose transform is a deliberately expensive (but pure) integer mixer.
  // At -O0 every cycle pays 512 mixer evaluations; at -O2 constant
  // propagation folds the token through each transform once at elaboration
  // and dead-logic elimination elides the lane bodies, so the mixers never
  // run during simulation.
  const auto mix = [](const Value& v) {
    std::uint64_t h = v.is_int() ? static_cast<std::uint64_t>(v.as_int())
                                 : 0x9e3779b97f4a7c15ull;
    for (int r = 0; r < 64; ++r) {
      h ^= h >> 33;
      h *= 0xff51afd7ed558ccdull;
      h ^= h >> 29;
    }
    return Value(static_cast<std::int64_t>(h >> 1));
  };
  for (int lane = 0; lane < 32; ++lane) {
    const std::string l = std::to_string(lane);
    auto& src = nl.make<pcl::Source>(
        "s" + l, core::Params().set("kind", "token").set("period", 1));
    core::Module* prev = &src;
    for (int i = 0; i < 16; ++i) {
      auto& f = nl.make<pcl::FuncMap>("f" + l + "_" + std::to_string(i),
                                      core::Params());
      f.set_fn(mix);
      nl.connect(prev->out("out"), f.in("in"));
      prev = &f;
    }
    auto& k = nl.make<pcl::Sink>("k" + l, core::Params());
    nl.connect(prev->out("out"), k.in("in"));
  }
}

void build_burst_idle(core::Netlist& nl) {
  // Gating-dominated: 16 lanes that see one item every 32 cycles.  Between
  // bursts the delay/probe/sink tail of each lane is quiescent; at -O2 the
  // schedulers put those SCCs to sleep and replay their idle resolutions.
  for (int lane = 0; lane < 16; ++lane) {
    const std::string l = std::to_string(lane);
    auto& src = nl.make<pcl::Source>(
        "s" + l, core::Params().set("kind", "counter").set("period", 32));
    auto& d = nl.make<pcl::Delay>("d" + l, core::Params().set("latency", 2));
    auto& p = nl.make<pcl::Probe>("p" + l, core::Params());
    auto& k = nl.make<pcl::Sink>("k" + l, core::Params());
    nl.connect(src.out("out"), d.in("in"));
    nl.connect(d.out("out"), p.in("in"));
    nl.connect(p.out("out"), k.in("in"));
  }
}

struct Result {
  double wall_s = 0.0;
  double kcps = 0.0;             // kcycles per wall second
  double elab_s = 0.0;           // scheduler construction time
  double elab_cold_s = 0.0;      // native: includes the toolchain compile
  double elab_cached_s = 0.0;    // native: artifact-cache hit (dlopen only)
  std::uint64_t react_calls = 0;
  double reacts_per_cycle = 0.0;
  std::uint64_t transfers = 0;
  unsigned threads = 0;          // parallel only
  std::uint64_t waves = 0;       // parallel only
  std::uint64_t max_wave_width = 0;
  std::uint64_t waves_dispatched = 0;
  std::vector<std::pair<std::string, std::uint64_t>> kernel;
};

Result run_once(void (*build)(core::Netlist&), const SchedulerSpec& spec,
                std::uint64_t cycles, int opt_level) {
  core::Netlist nl;
  build(nl);
  nl.finalize();
  if (opt_level > 0) {
    opt::optimize(nl, opt::OptOptions::for_level(opt_level));
  }
  Result r;
  // Construction is timed separately from steady state: for the native
  // backend this is where the C++ emission, host-compiler invocation (or
  // cache hit) and dlopen happen.
  std::optional<core::Simulator> sim;
  r.elab_s = time_seconds([&] { sim.emplace(nl, spec.kind, spec.threads); });
  r.wall_s = time_seconds([&] { sim->run(cycles); });
  r.kcps = static_cast<double>(cycles) / 1e3 / r.wall_s;
  r.react_calls = sim->scheduler().react_calls();
  r.reacts_per_cycle = static_cast<double>(r.react_calls) /
                       static_cast<double>(cycles);
  for (const auto& c : nl.connections()) r.transfers += c->transfer_count();
  if (auto* par =
          dynamic_cast<core::ParallelScheduler*>(&sim->scheduler())) {
    r.threads = par->threads();
    r.waves = par->wave_count();
    r.max_wave_width = par->max_wave_width();
    r.waves_dispatched = par->waves_dispatched();
  }
  r.kernel = kernel_counters(sim->scheduler());
  return r;
}

Result run(void (*build)(core::Netlist&), const SchedulerSpec& spec,
           std::uint64_t cycles, int opt_level) {
  // Best of two independent runs: at 20k cycles a single measurement on a
  // shared/single-core host carries enough timer and scheduling-quantum
  // noise to flip O2/O0 ratios; the minimum wall time of two fresh
  // elaborate+simulate passes is a far more stable estimator.  Simulation
  // results are identical across repeats by the bit-identity guarantee, so
  // only the timing is folded; counters are reported from the first run
  // (the gate's wall-clock calibration may retire differently per repeat).
  //
  // For the native scheduler each (netlist, opt) pair gets a fresh
  // artifact cache, so the first construction measures the cold path
  // (emit + toolchain + dlopen) and the second the cache-hit path.
  const bool is_native = spec.kind == core::SchedulerKind::Native;
  std::string cache;
  if (is_native) {
    static int serial = 0;
    char tmpl[] = "/tmp/liberty-bench-native-XXXXXX";
    if (::mkdtemp(tmpl) != nullptr) {
      cache = std::string(tmpl) + "/" + std::to_string(serial++);
      gen::native_options().cache_dir = cache;
    }
  }
  Result best = run_once(build, spec, cycles, opt_level);
  const Result again = run_once(build, spec, cycles, opt_level);
  if (again.wall_s < best.wall_s) {
    best.wall_s = again.wall_s;
    best.kcps = again.kcps;
  }
  best.elab_cold_s = best.elab_s;
  best.elab_cached_s = again.elab_s;
  if (is_native && !cache.empty()) {
    gen::native_options().cache_dir.clear();
    std::error_code ec;
    std::filesystem::remove_all(
        std::filesystem::path(cache).parent_path(), ec);
  }
  return best;
}

}  // namespace

int main() {
  std::printf(
      "E8: dynamic vs static vs parallel scheduling (ref [22] optimization)\n\n");
  liberty::gen::ensure_registered();
  const NetKind kinds[] = {{"pipelines x64", build_chains, true},
                           {"mesh 4x4", build_mesh_4x4},
                           {"mesh 8x8", build_mesh_8x8, true},
                           {"arbiter trees", build_arbiters, true},
                           {"passthrough x32", build_passthrough},
                           {"const fold x32", build_const_fold},
                           {"burst idle", build_burst_idle}};
  constexpr std::uint64_t kCycles = 20'000;
  constexpr int kOptLevels[] = {0, 2};
  auto base_specs = scheduler_matrix();
  base_specs.push_back({"compiled", core::SchedulerKind::Compiled, 0});
  if (gen::native_available()) {
    // The fifth backend: per-netlist C++ compiled on the host and
    // dlopened; ineligible structures inside a netlist transparently run
    // on the compiled-bytecode fallback of the same scheduler.
    base_specs.push_back({"native", core::SchedulerKind::Native, 0});
  } else {
    std::printf("(native codegen not built: configure with "
                "-DLIBERTY_NATIVE_CODEGEN=ON for native rows)\n\n");
  }

  FILE* json_file = std::fopen("BENCH_scheduler.json", "w");
  JsonWriter json(json_file);
  json.begin_object();
  json.field("bench", "scheduler");
  json.field("cycles", kCycles);
  json.begin_array("netlists");

  Table t({"netlist", "scheduler", "O0 kc/s", "O2 kc/s", "O2/O0",
           "O0 react/cyc", "O2 react/cyc"});
  bool diverged = false;
  for (const auto& k : kinds) {
    auto specs = base_specs;
    if (k.thread_sweep) {
      for (const unsigned n : {1u, 2u, 4u, 8u}) {
        specs.push_back({"parallel-" + std::to_string(n) + "t",
                         core::SchedulerKind::Parallel, n});
      }
    }
    json.object();
    json.field("name", k.name);
    json.begin_array("schedulers");
    // results[spec][level index]
    std::vector<std::vector<Result>> results;
    for (const auto& spec : specs) {
      auto& per_level = results.emplace_back();
      for (const int level : kOptLevels) {
        const Result r = run(k.build, spec, kCycles, level);
        per_level.push_back(r);
        json.object();
        json.field("name",
                   spec.label + "-O" + std::to_string(level));
        json.field("scheduler", spec.label);
        json.field("opt_level", static_cast<std::uint64_t>(level));
        json.field("wall_s", r.wall_s);
        json.field("kcycles_per_s", r.kcps);
        json.field("react_calls", r.react_calls);
        json.field("reacts_per_cycle", r.reacts_per_cycle);
        json.field("transfers", r.transfers);
        if (spec.kind == core::SchedulerKind::Parallel) {
          json.field("threads", r.threads);
          json.field("waves", r.waves);
          json.field("max_wave_width", r.max_wave_width);
          json.field("waves_dispatched", r.waves_dispatched);
        }
        if (spec.kind == core::SchedulerKind::Native) {
          // Elaboration cost, kept out of wall_s: cold includes emitting
          // and compiling the per-netlist C++; cached re-elaborates the
          // same netlist against a warm artifact cache (dlopen only).
          json.field("native_compile_s", r.elab_cold_s);
          json.field("native_elab_cached_s", r.elab_cached_s);
        }
        emit_kernel_counters(json, r.kernel);
        json.end_object();
      }
    }
    json.end_array();
    json.end_object();

    // Every scheduler at every opt level must complete the same transfers.
    const std::uint64_t expect = results[0][0].transfers;
    for (std::size_t s = 0; s < specs.size(); ++s) {
      for (std::size_t l = 0; l < std::size(kOptLevels); ++l) {
        if (results[s][l].transfers != expect) {
          std::printf("ERROR: %s-O%d diverged on %s (%llu vs %llu)\n",
                      specs[s].label.c_str(), kOptLevels[l], k.name,
                      (unsigned long long)results[s][l].transfers,
                      (unsigned long long)expect);
          diverged = true;
        }
      }
    }

    for (std::size_t s = 0; s < specs.size(); ++s) {
      const Result& o0 = results[s][0];
      const Result& o2 = results[s][1];
      t.row({k.name, specs[s].label, fmt(o0.kcps, 1), fmt(o2.kcps, 1),
             fmt(o2.kcps / o0.kcps, 2), fmt(o0.reacts_per_cycle, 2),
             fmt(o2.reacts_per_cycle, 2)});
    }
  }
  json.end_array();
  json.end_object();
  std::fclose(json_file);
  if (diverged) return 1;

  t.print();
  std::printf("\nshape check: identical results at every opt level; static "
              "scheduling reduces handler invocations and wins wall-clock; "
              "-O2 wins again on top wherever constants, fused chains or "
              "quiescent SCCs exist (passthrough x32, const fold x32 and "
              "burst idle are built to show fusion, folding and gating "
              "respectively).\n"
              "wrote BENCH_scheduler.json\n");
  return 0;
}
