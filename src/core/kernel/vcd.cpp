#include "liberty/core/vcd.hpp"

#include <algorithm>

namespace liberty::core {

namespace {
std::string sanitize(std::string s) {
  for (char& c : s) {
    if (c == '.' || c == '[' || c == ']' || c == ' ') c = '_';
  }
  return s;
}
}  // namespace

std::string VcdTracer::code_for(std::size_t index) {
  // Printable identifier codes, base 94 starting at '!'.
  std::string code;
  do {
    code += static_cast<char>('!' + index % 94);
    index /= 94;
  } while (index != 0);
  return code;
}

VcdTracer::VcdTracer(const Netlist& netlist, std::ostream& os) : os_(os) {
  const auto& conns = netlist.connections();
  codes_.reserve(conns.size());
  prev_.assign(conns.size(), false);
  cur_.assign(conns.size(), false);

  os_ << "$timescale 1ns $end\n$scope module netlist $end\n";
  for (const auto& c : conns) {
    codes_.push_back(code_for(c->id()));
    os_ << "$var wire 1 " << codes_.back() << ' '
        << sanitize(c->producer_ref() + "__to__" + c->consumer_ref())
        << " $end\n";
  }
  os_ << "$upscope $end\n$enddefinitions $end\n$dumpvars\n";
  for (const auto& code : codes_) os_ << '0' << code << '\n';
  os_ << "$end\n";
}

void VcdTracer::attach(Simulator& sim) {
  sim.observe_transfers([this](const Connection& c, Cycle cycle) {
    on_transfer(c, cycle);
  });
}

void VcdTracer::emit_cycle() {
  bool any = false;
  for (std::size_t i = 0; i < cur_.size(); ++i) {
    if (cur_[i] != prev_[i]) {
      if (!any) {
        os_ << '#' << cur_cycle_ << '\n';
        any = true;
      }
      os_ << (cur_[i] ? '1' : '0') << codes_[i] << '\n';
    }
  }
  prev_ = cur_;
  std::fill(cur_.begin(), cur_.end(), false);
}

void VcdTracer::on_transfer(const Connection& c, Cycle cycle) {
  if (started_ && cycle != cur_cycle_) {
    emit_cycle();
    // Quiet gap: wires that were high must drop at the next cycle edge.
    if (cycle > cur_cycle_ + 1) {
      cur_cycle_ += 1;
      emit_cycle();
    }
  }
  started_ = true;
  cur_cycle_ = cycle;
  cur_[c.id()] = true;
}

void VcdTracer::finish() {
  if (!started_) return;
  emit_cycle();
  cur_cycle_ += 1;
  emit_cycle();  // drop all wires after the last activity
}

}  // namespace liberty::core
