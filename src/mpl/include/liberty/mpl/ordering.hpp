// Memory ordering controllers (§3.4: "pluggable memory ordering controllers
// to restrict the reordering allowed by the processor according to desired
// constraints").
//
// OrderingCtl sits between a processor's memory port and its cache:
//
//   mode = "sc"   sequential consistency: every access completes in the
//                 memory system, in order, before the next is accepted.
//   mode = "tso"  total store order: stores retire into a store buffer and
//                 complete immediately from the processor's point of view;
//                 loads may bypass buffered stores (forwarding from the
//                 youngest matching store).  This is the relaxation that
//                 makes the Dekker litmus test observable (test_mpl).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>

#include "liberty/core/module.hpp"
#include "liberty/core/params.hpp"

namespace liberty::mpl {

/// Ports: cpu_req/cpu_resp (processor side), mem_req/mem_resp (cache side).
/// Parameters: mode ("sc"|"tso"), depth (store buffer entries),
/// drain_delay (cycles a TSO store rests in the buffer before draining)
/// [tso, 8, 0].
/// Stats: loads, stores, forwards, drain_stalls.
class OrderingCtl : public liberty::core::Module {
 public:
  OrderingCtl(const std::string& name, const liberty::core::Params& params);

  void cycle_start(liberty::core::Cycle c) override;
  void end_of_cycle() override;
  void declare_deps(liberty::core::Deps& deps) const override;
  void save_state(liberty::core::StateWriter& w) const override;
  void load_state(liberty::core::StateReader& r) override;

  [[nodiscard]] std::size_t store_buffer_depth() const noexcept {
    return buffer_.size();
  }

 private:
  struct BufferedStore {
    std::uint64_t addr;
    std::int64_t data;
  };

  liberty::core::Port& cpu_req_;
  liberty::core::Port& cpu_resp_;
  liberty::core::Port& mem_req_;
  liberty::core::Port& mem_resp_;

  bool tso_;
  std::size_t depth_;
  std::uint64_t drain_delay_;

  std::deque<BufferedStore> buffer_;       // TSO store buffer, oldest first
  std::deque<liberty::Value> drainq_;      // store requests headed downstream
  std::deque<liberty::core::Cycle> drain_ready_;  // earliest drain cycles
  std::deque<liberty::Value> cpu_respq_;   // responses back to the processor
  std::optional<liberty::Value> pending_load_;  // load in the memory system
  /// TSO: a load awaiting issue.  It takes priority over store drains —
  /// that bypass is precisely the reordering TSO permits.
  std::optional<liberty::Value> load_req_;
  bool offering_load_ = false;
  std::uint64_t drain_tags_outstanding_ = 0;
  std::uint64_t next_tag_ = 1u << 20;      // private tags for drained stores
};

}  // namespace liberty::mpl
