// Kernel snapshot/restore: the state-serialization substrate the
// differential oracle's bisection rests on.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "liberty/core/state.hpp"
#include "liberty/opt/optimizer.hpp"
#include "liberty/support/error.hpp"
#include "liberty/testing/netspec.hpp"
#include "test_util.hpp"

namespace {

using liberty::SimulationError;
using liberty::Value;
using liberty::core::Connection;
using liberty::core::Cycle;
using liberty::core::KernelSnapshot;
using liberty::core::Netlist;
using liberty::core::Simulator;
using liberty::core::StateReader;
using liberty::core::StateWriter;
using liberty::test::params;
using liberty::test::registry;

liberty::testing::NetSpec pipeline_spec() {
  liberty::testing::NetSpec spec;
  spec.modules.push_back({"pcl.source", "src",
                          params({{"kind", Value(std::string("counter"))},
                                  {"period", Value(std::int64_t{1})}})});
  spec.modules.push_back(
      {"pcl.queue", "q", params({{"depth", Value(std::int64_t{3})}})});
  spec.modules.push_back({"pcl.sink", "snk", {}});
  spec.edges.push_back({0, "out", 1, "in"});
  spec.edges.push_back({1, "out", 2, "in"});
  return spec;
}

liberty::testing::NetSpec stochastic_spec() {
  liberty::testing::NetSpec spec;
  spec.modules.push_back({"pcl.source", "src",
                          params({{"kind", Value(std::string("random"))},
                                  {"period", Value(std::int64_t{2})},
                                  {"seed", Value(std::int64_t{99})}})});
  spec.modules.push_back(
      {"pcl.delay", "d", params({{"latency", Value(std::int64_t{2})}})});
  spec.modules.push_back({"pcl.sink", "snk", {}});
  spec.edges.push_back({0, "out", 1, "in"});
  spec.edges.push_back({1, "out", 2, "in"});
  return spec;
}

std::vector<std::string> record_transfers(Simulator& sim,
                                          std::vector<std::string>& into) {
  sim.observe_transfers([&into](const Connection& c, Cycle cycle) {
    into.push_back(std::to_string(cycle) + ":" + std::to_string(c.id()) +
                   "=" + c.data().to_string());
  });
  return into;
}

TEST(StateIo, RoundTripAllSlotTypes) {
  StateWriter w;
  w.put_bool(true);
  w.put_i64(-42);
  w.put_u64(0xdeadbeefULL);
  w.put_size(17);
  w.put_real(2.5);
  w.put_string("hello");
  EXPECT_EQ(w.slots().size(), 6u);

  const std::vector<Value> slots = std::move(w).take();
  StateReader r(slots, "test");
  EXPECT_TRUE(r.get_bool());
  EXPECT_EQ(r.get_i64(), -42);
  EXPECT_EQ(r.get_u64(), 0xdeadbeefULL);
  EXPECT_EQ(r.get_size(), 17u);
  EXPECT_DOUBLE_EQ(r.get_real(), 2.5);
  EXPECT_EQ(r.get_string(), "hello");
  EXPECT_TRUE(r.exhausted());
}

TEST(StateIo, UnderflowThrowsWithModuleName) {
  const std::vector<Value> slots = {Value(std::int64_t{1})};
  StateReader r(slots, "offender");
  (void)r.get_i64();
  try {
    (void)r.get_i64();
    FAIL() << "expected SimulationError";
  } catch (const SimulationError& e) {
    EXPECT_NE(std::string(e.what()).find("offender"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("underflow"), std::string::npos);
  }
}

TEST(StateIo, DigestIsContentNotIdentity) {
  StateWriter a;
  a.put_string("same");
  a.put_i64(7);
  StateWriter b;
  b.put_string(std::string("sa") + "me");
  b.put_i64(7);
  EXPECT_EQ(liberty::core::digest_slots(a.slots()),
            liberty::core::digest_slots(b.slots()));

  StateWriter c;
  c.put_string("different");
  c.put_i64(7);
  EXPECT_NE(liberty::core::digest_slots(a.slots()),
            liberty::core::digest_slots(c.slots()));
}

// The core guarantee: restore + replay reproduces the original execution
// transfer for transfer, ending in the same state digest.
TEST(Snapshot, RestoreReplayIsBitIdentical) {
  for (const auto& spec : {pipeline_spec(), stochastic_spec()}) {
    Netlist netlist;
    spec.build(netlist, registry());
    Simulator sim(netlist);

    std::vector<std::string> log;
    record_transfers(sim, log);

    for (int i = 0; i < 40; ++i) sim.step();
    const KernelSnapshot snap = sim.snapshot();
    EXPECT_EQ(snap.cycle, 40u);

    log.clear();
    for (int i = 0; i < 40; ++i) sim.step();
    const std::vector<std::string> original = log;
    const std::uint64_t end_digest = sim.snapshot().digest();

    sim.restore(snap);
    EXPECT_EQ(sim.now(), 40u);
    EXPECT_EQ(sim.snapshot().digest(), snap.digest());

    log.clear();
    for (int i = 0; i < 40; ++i) sim.step();
    EXPECT_EQ(log, original);
    EXPECT_EQ(sim.snapshot().digest(), end_digest);
  }
}

// Restored state must be loadable into a *fresh* elaboration of the same
// spec — that is how the oracle builds its bisection simulators.
TEST(Snapshot, RestoreIntoFreshNetlist) {
  const auto spec = stochastic_spec();
  Netlist first;
  spec.build(first, registry());
  Simulator sim_a(first);
  std::vector<std::string> log_a;
  record_transfers(sim_a, log_a);
  for (int i = 0; i < 30; ++i) sim_a.step();
  const KernelSnapshot snap = sim_a.snapshot();
  log_a.clear();
  for (int i = 0; i < 30; ++i) sim_a.step();

  Netlist second;
  spec.build(second, registry());
  Simulator sim_b(second);
  sim_b.restore(snap);
  EXPECT_EQ(sim_b.now(), 30u);
  std::vector<std::string> log_b;
  record_transfers(sim_b, log_b);
  for (int i = 0; i < 30; ++i) sim_b.step();
  EXPECT_EQ(log_b, log_a);
}

// Regression: the -O2 quiescence gate caches per-cycle resolutions and
// replays them while a region sleeps; a restore rewinds module state
// underneath those caches, so the kernel must invalidate all in-flight
// scheduler state (gate caches, backoff, fused-chain stamps) on restore or
// the replay serves stale cached values and diverges from the original.
TEST(Snapshot, RestoreUnderO2GatingReplaysBitIdentical) {
  for (const auto& spec : {pipeline_spec(), stochastic_spec()}) {
    Netlist netlist;
    spec.build(netlist, registry());
    liberty::opt::optimize(netlist, liberty::opt::OptOptions::for_level(2));
    for (const auto kind : {liberty::core::SchedulerKind::Dynamic,
                            liberty::core::SchedulerKind::Static}) {
      Simulator sim(netlist, kind, 0);
      std::vector<std::string> log;
      record_transfers(sim, log);

      for (int i = 0; i < 40; ++i) sim.step();
      const KernelSnapshot snap = sim.snapshot();
      log.clear();
      for (int i = 0; i < 40; ++i) sim.step();
      const std::vector<std::string> original = log;
      const std::uint64_t end_digest = sim.snapshot().digest();

      sim.restore(snap);
      log.clear();
      for (int i = 0; i < 40; ++i) sim.step();
      EXPECT_EQ(log, original) << "scheduler kind "
                               << static_cast<int>(kind);
      EXPECT_EQ(sim.snapshot().digest(), end_digest);
    }
  }
}

TEST(Snapshot, DigestEvolvesWithState) {
  Netlist netlist;
  pipeline_spec().build(netlist, registry());
  Simulator sim(netlist);
  const std::uint64_t d0 = sim.snapshot().digest();
  for (int i = 0; i < 25; ++i) sim.step();
  EXPECT_NE(sim.snapshot().digest(), d0);
}

TEST(Snapshot, RestoreRejectsShapeMismatch) {
  Netlist a;
  pipeline_spec().build(a, registry());
  Simulator sim_a(a);
  for (int i = 0; i < 5; ++i) sim_a.step();
  const KernelSnapshot snap = sim_a.snapshot();

  // Different module count: refuse outright.
  liberty::testing::NetSpec small;
  small.modules.push_back({"pcl.source", "src",
                           params({{"kind", Value(std::string("counter"))}})});
  small.modules.push_back({"pcl.sink", "snk", {}});
  small.edges.push_back({0, "out", 1, "in"});
  Netlist b;
  small.build(b, registry());
  Simulator sim_b(b);
  EXPECT_THROW(sim_b.restore(snap), SimulationError);

  // Same module count, different module types: the positional protocol
  // cannot line up, and the kernel must say so rather than misload.
  liberty::testing::NetSpec twisted = pipeline_spec();
  twisted.modules[1] = {"pcl.probe", "q", {}};
  Netlist c;
  twisted.build(c, registry());
  Simulator sim_c(c);
  EXPECT_THROW(sim_c.restore(snap), SimulationError);
}

}  // namespace
