# Empty dependencies file for test_mpl.
# This may be replaced when dependencies are built.
