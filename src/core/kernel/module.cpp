#include "liberty/core/module.hpp"

#include "liberty/support/error.hpp"

namespace liberty::core {

Port& Module::port(const std::string& name) const {
  for (const auto& p : ports_) {
    if (p->name() == name) return *p;
  }
  throw liberty::ElaborationError("module '" + name_ + "' has no port '" +
                                  name + "'");
}

bool Module::has_port(const std::string& name) const noexcept {
  for (const auto& p : ports_) {
    if (p->name() == name) return true;
  }
  return false;
}

Port& Module::in(const std::string& name) const {
  Port& p = port(name);
  if (p.dir() != PortDir::In) {
    throw liberty::ElaborationError("port '" + name + "' of module '" + name_ +
                                    "' is not an input");
  }
  return p;
}

Port& Module::out(const std::string& name) const {
  Port& p = port(name);
  if (p.dir() != PortDir::Out) {
    throw liberty::ElaborationError("port '" + name + "' of module '" + name_ +
                                    "' is not an output");
  }
  return p;
}

Port& Module::add_in(std::string name, AckMode default_ack,
                     std::size_t min_conns, std::size_t max_conns) {
  ports_.push_back(std::make_unique<Port>(this, std::move(name), PortDir::In,
                                          min_conns, max_conns, default_ack));
  return *ports_.back();
}

Port& Module::add_out(std::string name, std::size_t min_conns,
                      std::size_t max_conns) {
  ports_.push_back(std::make_unique<Port>(this, std::move(name), PortDir::Out,
                                          min_conns, max_conns,
                                          AckMode::Managed));
  return *ports_.back();
}

void Module::request_stop() noexcept {
  if (stop_flag_ != nullptr) {
    stop_flag_->store(true, std::memory_order_relaxed);
  }
}

}  // namespace liberty::core
