#include "liberty/pcl/source.hpp"

#include "liberty/core/opt.hpp"
#include "liberty/pcl/payloads.hpp"
#include "liberty/support/error.hpp"

namespace liberty::pcl {

using liberty::core::Cycle;
using liberty::core::Deps;
using liberty::core::Params;

Source::Source(const std::string& name, const Params& params)
    : Module(name),
      rng_(static_cast<std::uint64_t>(params.get_int("seed", 1))),
      out_(add_out("out", /*min_conns=*/0, /*max_conns=*/1)),
      kind_(params.get_string("kind", "counter")),
      period_(static_cast<std::uint64_t>(params.get_int("period", 1))),
      rate_(params.get_real("rate", 0.0)),
      count_(static_cast<std::uint64_t>(params.get_int("count", 0))),
      start_(static_cast<std::uint64_t>(params.get_int("start", 0))),
      range_(params.get_int("range", 1024)),
      queue_depth_(static_cast<std::size_t>(params.get_int("queue_depth", 0))),
      stamp_(params.get_bool("stamp", false)) {
  if (kind_ != "counter" && kind_ != "token" && kind_ != "random") {
    throw liberty::ElaborationError("pcl.source '" + name +
                                    "': unknown kind '" + kind_ + "'");
  }
  if (period_ == 0 && rate_ <= 0.0) {
    throw liberty::ElaborationError(
        "pcl.source '" + name + "': need period >= 1 or rate > 0");
  }
}

liberty::Value Source::make_value(std::uint64_t seq) {
  if (kind_ == "counter") return liberty::Value(static_cast<std::int64_t>(seq));
  if (kind_ == "random") return liberty::Value(rng_.range(0, range_ - 1));
  return liberty::Value();  // token
}

bool Source::arrival_now(Cycle c) {
  if (c < start_) return false;
  if (period_ == 1) return true;  // the common case, minus the division
  if (period_ != 0) return (c - start_) % period_ == 0;
  return rng_.chance(rate_);
}

void Source::cycle_start(Cycle c) {
  const bool exhausted = count_ != 0 && generated_ >= count_;
  if (!exhausted && arrival_now(c)) {
    liberty::Value v = make_value(generated_);
    if (stamp_) v = liberty::Value::make<Stamped>(std::move(v), c);
    ++generated_;
    if (queue_depth_ != 0 && backlog_.size() >= queue_depth_) {
      stats().bind(dropped_stat_, "dropped");
      dropped_stat_->inc();
    } else {
      backlog_.push_back(std::move(v));
    }
  }
  stats().bind(backlog_stat_, "backlog");
  backlog_stat_->add(static_cast<double>(backlog_.size()));
  if (!backlog_.empty()) {
    out_.send(backlog_.front());
  } else {
    out_.idle();
  }
}

void Source::end_of_cycle() {
  if (out_.transferred()) {
    backlog_.pop_front();
    ++emitted_;
    stats().bind(emitted_stat_, "emitted");
    emitted_stat_->inc();
  }
}

void Source::declare_deps(Deps& deps) const {
  deps.state_only(out_);
}

void Source::declare_opt(liberty::core::OptTraits& traits) const {
  // A plain token tap (one empty token, every cycle, forever) offers the
  // identical (enable, value) pair each cycle regardless of acks: the
  // backlog is never empty after cycle 0 and its front is always Value().
  // Counter/random/stamped sources vary their payload, rated and windowed
  // ones their enable.  Never sleepable: cycle_start samples the backlog
  // accumulator stat unconditionally.
  if (kind_ == "token" && period_ == 1 && start_ == 0 && count_ == 0 &&
      !stamp_) {
    traits.const_forward(out_, /*enabled=*/true, liberty::Value());
  }
}

void Source::save_state(liberty::core::StateWriter& w) const {
  liberty::core::save_rng(w, rng_);
  w.put_u64(generated_);
  w.put_u64(emitted_);
  w.put_size(backlog_.size());
  for (const auto& v : backlog_) w.put(v);
}

void Source::load_state(liberty::core::StateReader& r) {
  liberty::core::load_rng(r, rng_);
  generated_ = r.get_u64();
  emitted_ = r.get_u64();
  backlog_.clear();
  const std::size_t n = r.get_size();
  for (std::size_t i = 0; i < n; ++i) backlog_.push_back(r.get());
}

}  // namespace liberty::pcl
