file(REMOVE_RECURSE
  "CMakeFiles/liberty_mpl.dir/directory.cpp.o"
  "CMakeFiles/liberty_mpl.dir/directory.cpp.o.d"
  "CMakeFiles/liberty_mpl.dir/dma.cpp.o"
  "CMakeFiles/liberty_mpl.dir/dma.cpp.o.d"
  "CMakeFiles/liberty_mpl.dir/ordering.cpp.o"
  "CMakeFiles/liberty_mpl.dir/ordering.cpp.o.d"
  "CMakeFiles/liberty_mpl.dir/registry.cpp.o"
  "CMakeFiles/liberty_mpl.dir/registry.cpp.o.d"
  "CMakeFiles/liberty_mpl.dir/snoop.cpp.o"
  "CMakeFiles/liberty_mpl.dir/snoop.cpp.o.d"
  "libliberty_mpl.a"
  "libliberty_mpl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/liberty_mpl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
