// Deterministic pseudo-random number generation for statistical components.
//
// Simulation results must be bit-reproducible across runs and across
// schedulers, so every stochastic component (traffic generators, random
// replacement caches, lossy wireless channels, ...) owns its own Rng seeded
// from the specification.  The generator is xoshiro256**, which is fast,
// well distributed, and trivially embeddable without pulling in <random>'s
// unspecified-across-platforms distributions.
#pragma once

#include <array>
#include <cstdint>

namespace liberty {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initialize the state from a single seed via splitmix64.
  void reseed(std::uint64_t seed) {
    for (auto& word : state_) {
      seed += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit word.
  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound).  bound must be nonzero.
  std::uint64_t below(std::uint64_t bound) noexcept {
    // Debiased multiply-shift (Lemire).
    const std::uint64_t x = next();
    const unsigned __int128 m = static_cast<unsigned __int128>(x) * bound;
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform real in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p) noexcept { return uniform() < p; }

  /// Geometric inter-arrival sample for a Bernoulli-per-cycle process with
  /// rate `p`; returns the number of cycles until the next arrival (>= 1).
  std::uint64_t geometric(double p) noexcept {
    if (p >= 1.0) return 1;
    if (p <= 0.0) return ~0ULL;
    std::uint64_t n = 1;
    while (!chance(p)) ++n;
    return n;
  }

  /// Raw generator state, for kernel snapshot/restore: a restored module
  /// must draw the same stream it would have drawn uninterrupted.
  [[nodiscard]] const std::array<std::uint64_t, 4>& state() const noexcept {
    return state_;
  }
  void set_state(const std::array<std::uint64_t, 4>& s) noexcept {
    state_ = s;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace liberty
