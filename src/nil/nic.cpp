#include "liberty/nil/nic.hpp"

#include "liberty/pcl/payloads.hpp"
#include "liberty/support/error.hpp"
#include "liberty/upl/isa.hpp"

namespace liberty::nil {

using liberty::core::AckMode;
using liberty::core::Cycle;
using liberty::core::Deps;
using liberty::core::Netlist;
using liberty::core::Params;
using liberty::pcl::MemReq;
using liberty::pcl::MemResp;

// ---------------------------------------------------------------------------
// NicAssist
// ---------------------------------------------------------------------------

NicAssist::NicAssist(const std::string& name, const Params& params)
    : Module(name),
      host_req_(add_out("host_req", 0, 1)),
      host_resp_(add_in("host_resp", AckMode::AutoAccept, 0, 1)),
      net_tx_(add_out("net_tx", 0, 1)),
      net_rx_(add_in("net_rx", AckMode::AutoAccept, 0, 1)),
      mac_(static_cast<std::uint64_t>(params.get_int("mac", 0))) {}

std::int64_t NicAssist::mmio_read(std::uint64_t reg) {
  switch (reg) {
    case 0: return static_cast<std::int64_t>(dma_addr_);
    case 1: return static_cast<std::int64_t>(dma_len_);
    case 3: return mode_ == DmaMode::Idle ? 0 : 1;
    case 4: return static_cast<std::int64_t>(tx_dst_);
    case 5: return static_cast<std::int64_t>(rxq_.size());
    case 6:
      return rxq_.empty()
                 ? 0
                 : static_cast<std::int64_t>(rxq_.front()->payload.size());
    case 7:
      return rxq_.empty()
                 ? 0
                 : static_cast<std::int64_t>(rxq_.front()->src_mac);
    case 8: return static_cast<std::int64_t>(mac_);
    default: return 0;
  }
}

void NicAssist::mmio_write(std::uint64_t reg, std::int64_t v) {
  switch (reg) {
    case 0: dma_addr_ = static_cast<std::uint64_t>(v); return;
    case 1: dma_len_ = static_cast<std::uint64_t>(v); return;
    case 2:
      if (mode_ != DmaMode::Idle) {
        throw liberty::SimulationError("nil.nic_assist '" + name() +
                                       "': DMA command while busy");
      }
      if (v == 1 && dma_len_ > 0) {
        mode_ = DmaMode::Gather;
        dma_done_ = 0;
        dma_buf_.clear();
      } else if (v == 2 && !rxq_.empty()) {
        mode_ = DmaMode::Scatter;
        dma_done_ = 0;
      }
      return;
    case 4: tx_dst_ = static_cast<std::uint64_t>(v); return;
    case 8: mac_ = static_cast<std::uint64_t>(v); return;
    case 9:
      if (v == 1 && !rxq_.empty()) rxq_.pop_front();
      return;
    default:
      return;
  }
}

void NicAssist::cycle_start(Cycle) {
  if (!memq_.empty() && !mem_in_flight_) {
    host_req_.send(memq_.front());
  } else {
    host_req_.idle();
  }
  if (!txq_.empty()) {
    net_tx_.send(txq_.front());
  } else {
    net_tx_.idle();
  }
}

void NicAssist::end_of_cycle() {
  if (host_req_.transferred()) {
    memq_.pop_front();
    mem_in_flight_ = true;
  }
  if (net_tx_.transferred()) {
    txq_.pop_front();
    stats().counter("tx_frames").inc();
  }

  if (host_resp_.transferred()) {
    mem_in_flight_ = false;
    const auto resp = host_resp_.data().as<MemResp>();
    stats().counter("dma_words").inc();
    if (mode_ == DmaMode::Gather && !resp->was_write) {
      dma_buf_.push_back(resp->data);
      ++dma_done_;
      if (dma_done_ == dma_len_) {
        txq_.push_back(liberty::Value(std::static_pointer_cast<const Payload>(
            EthFrame::make(mac_, tx_dst_, dma_buf_))));
        mode_ = DmaMode::Idle;
      }
    } else if (mode_ == DmaMode::Scatter && resp->was_write) {
      ++dma_done_;
      if (rxq_.empty() || dma_done_ == rxq_.front()->payload.size()) {
        mode_ = DmaMode::Idle;
      }
    }
  }

  // Issue the next DMA word.
  if (!mem_in_flight_ && memq_.empty()) {
    if (mode_ == DmaMode::Gather && dma_done_ + memq_.size() < dma_len_) {
      memq_.push_back(liberty::Value::make<MemReq>(
          MemReq::Op::Read, dma_addr_ + dma_done_, 0, 0x71C0 + dma_done_));
    } else if (mode_ == DmaMode::Scatter && !rxq_.empty() &&
               dma_done_ < rxq_.front()->payload.size()) {
      memq_.push_back(liberty::Value::make<MemReq>(
          MemReq::Op::Write, dma_addr_ + dma_done_,
          rxq_.front()->payload[dma_done_], 0x71C1));
    }
  }

  // Receive path: check FCS, queue good frames.
  if (net_rx_.transferred()) {
    const auto frame = net_rx_.data().try_as<EthFrame>();
    if (frame == nullptr) {
      throw liberty::SimulationError("nil.nic_assist '" + name() +
                                     "': non-EthFrame on net_rx");
    }
    if (frame->fcs_ok()) {
      rxq_.push_back(frame);
      stats().counter("rx_frames").inc();
    } else {
      stats().counter("crc_errors").inc();
    }
  }
}

void NicAssist::declare_deps(Deps& deps) const {
  deps.state_only(host_req_);
  deps.state_only(net_tx_);
}

void NicAssist::save_state(liberty::core::StateWriter& w) const {
  w.put_u64(mac_);
  w.put_u64(dma_addr_);
  w.put_u64(dma_len_);
  w.put_u64(tx_dst_);
  w.put_u64(static_cast<std::uint64_t>(mode_));
  w.put_u64(dma_done_);
  w.put_size(dma_buf_.size());
  for (const std::int64_t word : dma_buf_) w.put_i64(word);
  w.put_size(memq_.size());
  for (const auto& v : memq_) w.put(v);
  w.put_bool(mem_in_flight_);
  w.put_size(txq_.size());
  for (const auto& v : txq_) w.put(v);
  w.put_size(rxq_.size());
  for (const auto& f : rxq_) {
    w.put(liberty::Value(std::static_pointer_cast<const Payload>(f)));
  }
}

void NicAssist::load_state(liberty::core::StateReader& r) {
  mac_ = r.get_u64();
  dma_addr_ = r.get_u64();
  dma_len_ = r.get_u64();
  tx_dst_ = r.get_u64();
  mode_ = static_cast<DmaMode>(r.get_u64());
  dma_done_ = r.get_u64();
  dma_buf_.clear();
  const std::size_t words = r.get_size();
  for (std::size_t i = 0; i < words; ++i) dma_buf_.push_back(r.get_i64());
  memq_.clear();
  const std::size_t mems = r.get_size();
  for (std::size_t i = 0; i < mems; ++i) memq_.push_back(r.get());
  mem_in_flight_ = r.get_bool();
  txq_.clear();
  const std::size_t txs = r.get_size();
  for (std::size_t i = 0; i < txs; ++i) txq_.push_back(r.get());
  rxq_.clear();
  const std::size_t rxs = r.get_size();
  for (std::size_t i = 0; i < rxs; ++i) rxq_.push_back(r.get().as<EthFrame>());
}

// ---------------------------------------------------------------------------
// Firmware
// ---------------------------------------------------------------------------

std::string nic_firmware(const NicFirmwareConfig& cfg) {
  const std::string M = std::to_string(cfg.mmio_base);
  auto mmio = [&cfg](int reg) {
    return std::to_string(cfg.mmio_base + reg);
  };
  return
      // r20 = mmio base, r21 = tx ring, r22 = rx ring, r23 = entries,
      // r24 = tx index, r25 = rx index, r26 = 4 (descriptor words)
      "  li r20, " + M + "\n"
      "  li r21, " + std::to_string(cfg.tx_ring) + "\n"
      "  li r22, " + std::to_string(cfg.rx_ring) + "\n"
      "  li r23, " + std::to_string(cfg.ring_entries) + "\n"
      "  li r24, 0\n"
      "  li r25, 0\n"
      "  li r26, 4\n"
      "main:\n"
      // ---- TX ring: descriptor = [addr, len, status, dst_mac] ----
      "  mul r1, r24, r26\n"
      "  add r1, r1, r21\n"
      "  lw r2, 2(r1)\n"          // status
      "  li r3, 1\n"
      "  bne r2, r3, rx_path\n"   // not ready
      "  lw r4, 0(r1)\n"          // payload address
      "  lw r5, 1(r1)\n"          // length
      "  lw r6, 3(r1)\n"          // destination MAC
      "  sw r4, " + mmio(0) + "(r0)\n"   // dma_addr
      "  sw r5, " + mmio(1) + "(r0)\n"   // dma_len
      "  sw r6, " + mmio(4) + "(r0)\n"   // tx_dst
      "  li r7, 1\n"
      "  sw r7, " + mmio(2) + "(r0)\n"   // dma_cmd = gather + transmit
      "wait_tx:\n"
      "  lw r8, " + mmio(3) + "(r0)\n"   // dma_status
      "  bne r8, r0, wait_tx\n"
      "  li r9, 2\n"
      "  sw r9, 2(r1)\n"          // descriptor done
      "  addi r24, r24, 1\n"
      "  blt r24, r23, rx_path\n"
      "  li r24, 0\n"
      // ---- RX ring: descriptor = [addr, len, status, src_mac] ----
      "rx_path:\n"
      "  lw r2, " + mmio(5) + "(r0)\n"   // frames waiting?
      "  beq r2, r0, main\n"
      "  mul r1, r25, r26\n"
      "  add r1, r1, r22\n"
      "  lw r3, 2(r1)\n"          // status: 1 = host gave us a free buffer
      "  li r4, 1\n"
      "  bne r3, r4, main\n"      // no buffer: frame waits in the assist
      "  lw r5, 0(r1)\n"          // buffer address
      "  sw r5, " + mmio(0) + "(r0)\n"   // dma_addr
      "  lw r6, " + mmio(6) + "(r0)\n"   // rx_len
      "  sw r6, 1(r1)\n"          // descriptor length
      "  lw r7, " + mmio(7) + "(r0)\n"   // rx_src
      "  sw r7, 3(r1)\n"
      "  li r8, 2\n"
      "  sw r8, " + mmio(2) + "(r0)\n"   // dma_cmd = scatter
      "wait_rx:\n"
      "  lw r9, " + mmio(3) + "(r0)\n"
      "  bne r9, r0, wait_rx\n"
      "  li r9, 1\n"
      "  sw r9, " + mmio(9) + "(r0)\n"   // rx_pop
      "  li r10, 2\n"
      "  sw r10, 2(r1)\n"         // descriptor filled
      "  addi r25, r25, 1\n"
      "  blt r25, r23, back\n"
      "  li r25, 0\n"
      "back:\n"
      "  j main\n";
}

ProgrammableNic build_programmable_nic(Netlist& netlist,
                                       const std::string& prefix,
                                       std::uint64_t mac,
                                       const NicFirmwareConfig& cfg) {
  ProgrammableNic nic;
  nic.core = &netlist.make<upl::SimpleCpu>(prefix + ".core", Params());
  Params ap;
  ap.set("mac", static_cast<std::int64_t>(mac));
  nic.assist = &netlist.make<NicAssist>(prefix + ".assist", ap);
  nic.core->set_program(upl::assemble(nic_firmware(cfg), prefix + ".fw"));

  nic.core->attach_mmio(static_cast<std::uint64_t>(cfg.mmio_base), 16,
                        *nic.assist);
  return nic;
}

}  // namespace liberty::nil
