// Communication Component Library (CCL / Orion) — umbrella header.
//
// "This consists of building blocks of communication fabrics.  Examples
// include buses and routers." (§3)
#pragma once

#include "liberty/ccl/fabric.hpp"
#include "liberty/ccl/flit.hpp"
#include "liberty/ccl/power.hpp"
#include "liberty/ccl/router.hpp"
#include "liberty/ccl/topology.hpp"
#include "liberty/ccl/traffic.hpp"
#include "liberty/ccl/wireless.hpp"
#include "liberty/core/registry.hpp"

namespace liberty::ccl {

/// Register every CCL template ("ccl.*") with `registry`.
void register_ccl(liberty::core::ModuleRegistry& registry);

}  // namespace liberty::ccl
