#include "liberty/mpl/ordering.hpp"

#include "liberty/pcl/payloads.hpp"
#include "liberty/support/error.hpp"

namespace liberty::mpl {

using liberty::core::AckMode;
using liberty::core::Cycle;
using liberty::core::Deps;
using liberty::core::Params;
using liberty::pcl::MemReq;
using liberty::pcl::MemResp;

OrderingCtl::OrderingCtl(const std::string& name, const Params& params)
    : Module(name),
      cpu_req_(add_in("cpu_req", AckMode::Managed, 0, 1)),
      cpu_resp_(add_out("cpu_resp", 0, 1)),
      mem_req_(add_out("mem_req", 0, 1)),
      mem_resp_(add_in("mem_resp", AckMode::AutoAccept, 0, 1)),
      depth_(static_cast<std::size_t>(params.get_int("depth", 8))),
      drain_delay_(
          static_cast<std::uint64_t>(params.get_int("drain_delay", 0))) {
  const std::string mode = params.get_string("mode", "tso");
  if (mode != "sc" && mode != "tso") {
    throw liberty::ElaborationError("mpl.ordering '" + name +
                                    "': unknown mode '" + mode + "'");
  }
  tso_ = mode == "tso";
}

void OrderingCtl::cycle_start(Cycle) {
  if (!cpu_respq_.empty()) {
    cpu_resp_.send(cpu_respq_.front());
  } else {
    cpu_resp_.idle();
  }
  // Loads bypass queued store drains (TSO's permitted reordering); under
  // SC loads travel through drainq_ in program order instead.
  offering_load_ = false;
  if (load_req_) {
    mem_req_.send(*load_req_);
    offering_load_ = true;
  } else if (!drainq_.empty() && drain_ready_.front() <= now()) {
    mem_req_.send(drainq_.front());
  } else {
    mem_req_.idle();
  }
  // Accept a new processor access when nothing of the relevant kind is in
  // flight.  Under SC, *any* outstanding access blocks; under TSO only an
  // outstanding load or a full store buffer does.
  bool can_accept;
  if (tso_) {
    can_accept = !pending_load_ && buffer_.size() < depth_;
  } else {
    can_accept = !pending_load_ && buffer_.empty() && drainq_.empty() &&
                 drain_tags_outstanding_ == 0;
  }
  if (can_accept) {
    cpu_req_.ack();
  } else {
    cpu_req_.nack();
    stats().counter("drain_stalls").inc();
  }
}

void OrderingCtl::end_of_cycle() {
  if (cpu_resp_.transferred()) cpu_respq_.pop_front();
  if (mem_req_.transferred()) {
    if (offering_load_) {
      load_req_.reset();
    } else {
      drainq_.pop_front();
      drain_ready_.pop_front();
    }
  }

  if (mem_resp_.transferred()) {
    const auto resp = mem_resp_.data().as<MemResp>();
    if (resp->tag >= (1u << 20)) {
      // A drained store completed.
      --drain_tags_outstanding_;
      if (!buffer_.empty()) buffer_.pop_front();
    } else {
      // Load (or SC store) response: forward to the processor.
      cpu_respq_.push_back(mem_resp_.data());
      pending_load_.reset();
    }
  }

  if (!cpu_req_.transferred()) return;
  const liberty::Value v = cpu_req_.data();
  const auto req = v.as<MemReq>();

  if (req->op == MemReq::Op::Write) {
    stats().counter("stores").inc();
    if (tso_) {
      // Complete immediately into the store buffer; drain in order.
      buffer_.push_back(BufferedStore{req->addr, req->data});
      drainq_.push_back(liberty::Value::make<MemReq>(
          MemReq::Op::Write, req->addr, req->data, next_tag_++));
      drain_ready_.push_back(now() + drain_delay_);
      ++drain_tags_outstanding_;
      cpu_respq_.push_back(
          liberty::Value::make<MemResp>(req->tag, req->data, true));
    } else {
      drainq_.push_back(v);
      drain_ready_.push_back(now());
      pending_load_ = v;  // SC: block until the write is globally done
    }
    return;
  }

  stats().counter("loads").inc();
  if (tso_) {
    // Forward from the youngest matching buffered store.
    for (auto it = buffer_.rbegin(); it != buffer_.rend(); ++it) {
      if (it->addr == req->addr) {
        stats().counter("forwards").inc();
        cpu_respq_.push_back(
            liberty::Value::make<MemResp>(req->tag, it->data, false));
        return;
      }
    }
  }
  pending_load_ = v;
  if (tso_) {
    load_req_ = v;  // priority path: may pass the buffered stores
  } else {
    drainq_.push_back(v);
    drain_ready_.push_back(now());
  }
}

void OrderingCtl::declare_deps(Deps& deps) const {
  deps.state_only(cpu_resp_);
  deps.state_only(mem_req_);
  deps.state_only(cpu_req_);
}

void OrderingCtl::save_state(liberty::core::StateWriter& w) const {
  // offering_load_ is per-cycle scratch, recomputed in cycle_start.
  w.put_size(buffer_.size());
  for (const BufferedStore& s : buffer_) {
    w.put_u64(s.addr);
    w.put_i64(s.data);
  }
  w.put_size(drainq_.size());
  for (const auto& v : drainq_) w.put(v);
  for (const liberty::core::Cycle c : drain_ready_) w.put_u64(c);
  w.put_size(cpu_respq_.size());
  for (const auto& v : cpu_respq_) w.put(v);
  w.put_bool(pending_load_.has_value());
  if (pending_load_) w.put(*pending_load_);
  w.put_bool(load_req_.has_value());
  if (load_req_) w.put(*load_req_);
  w.put_u64(drain_tags_outstanding_);
  w.put_u64(next_tag_);
}

void OrderingCtl::load_state(liberty::core::StateReader& r) {
  buffer_.clear();
  const std::size_t stores = r.get_size();
  for (std::size_t i = 0; i < stores; ++i) {
    const std::uint64_t addr = r.get_u64();
    const std::int64_t data = r.get_i64();
    buffer_.push_back(BufferedStore{addr, data});
  }
  drainq_.clear();
  drain_ready_.clear();
  const std::size_t drains = r.get_size();
  for (std::size_t i = 0; i < drains; ++i) drainq_.push_back(r.get());
  for (std::size_t i = 0; i < drains; ++i) drain_ready_.push_back(r.get_u64());
  cpu_respq_.clear();
  const std::size_t resps = r.get_size();
  for (std::size_t i = 0; i < resps; ++i) cpu_respq_.push_back(r.get());
  pending_load_.reset();
  if (r.get_bool()) pending_load_ = r.get();
  load_req_.reset();
  if (r.get_bool()) load_req_ = r.get();
  drain_tags_outstanding_ = r.get_u64();
  next_tag_ = r.get_u64();
}

}  // namespace liberty::mpl
