file(REMOVE_RECURSE
  "CMakeFiles/test_props.dir/test_props.cpp.o"
  "CMakeFiles/test_props.dir/test_props.cpp.o.d"
  "test_props"
  "test_props.pdb"
  "test_props[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_props.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
