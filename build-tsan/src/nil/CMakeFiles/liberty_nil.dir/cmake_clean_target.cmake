file(REMOVE_RECURSE
  "libliberty_nil.a"
)
