#include <typeindex>

#include "liberty/core/checkpoint.hpp"
#include "liberty/nil/nil.hpp"

namespace liberty::nil {

using liberty::core::ByteReader;
using liberty::core::ByteWriter;
using liberty::core::ModuleRegistry;
using liberty::core::simple_factory;

namespace {

void register_payload_codecs() {
  core::register_payload_codec(
      "nil.ethframe", std::type_index(typeid(EthFrame)),
      [](const Payload& p, ByteWriter& w) {
        const auto& f = static_cast<const EthFrame&>(p);
        w.put_u64(f.src_mac);
        w.put_u64(f.dst_mac);
        w.put_u32(static_cast<std::uint32_t>(f.payload.size()));
        for (const std::int64_t x : f.payload) w.put_i64(x);
        w.put_u32(f.fcs);
      },
      [](ByteReader& r) {
        const std::uint64_t src_mac = r.get_u64();
        const std::uint64_t dst_mac = r.get_u64();
        const std::uint32_t n = r.get_u32();
        std::vector<std::int64_t> payload;
        payload.reserve(n);
        for (std::uint32_t i = 0; i < n; ++i) payload.push_back(r.get_i64());
        // The FCS rides verbatim: a frame checkpointed mid-flight with a
        // corrupted FCS must come back still failing fcs_ok().
        const std::uint32_t fcs = r.get_u32();
        return Value::make<EthFrame>(src_mac, dst_mac, std::move(payload),
                                     fcs);
      });
}

}  // namespace

void register_nil(ModuleRegistry& r) {
  register_payload_codecs();
  r.register_template("nil.fabric_adapter",
                      "message <-> flit format converter",
                      simple_factory<FabricAdapter>());
  r.register_template("nil.nic_assist",
                      "programmable NIC hardware assists (DMA + MAC)",
                      simple_factory<NicAssist>());
}

}  // namespace liberty::nil
