#include "liberty/ccl/router.hpp"

#include "liberty/support/error.hpp"

namespace liberty::ccl {

using liberty::core::AckMode;
using liberty::core::Cycle;
using liberty::core::Deps;
using liberty::core::Params;

namespace {
PowerConfig power_config_from(const Params& params, std::size_t ports,
                              std::size_t vcs, std::size_t depth) {
  PowerConfig cfg;
  cfg.flit_bits =
      static_cast<std::size_t>(params.get_int("flit_bits", 64));
  cfg.ports = ports;
  cfg.vcs = vcs;
  cfg.buffer_depth = depth;
  cfg.vdd = params.get_real("vdd", 1.0);
  cfg.tech_scale = params.get_real("tech_scale", 1.0);
  return cfg;
}
}  // namespace

Router::Router(const std::string& name, const Params& params)
    : Module(name),
      in_(add_in("in", AckMode::Managed, 1)),
      out_(add_out("out", 1)),
      id_num_(static_cast<std::size_t>(params.get_int("id", 0))),
      nodes_(static_cast<std::size_t>(params.get_int("nodes", 1))),
      routing_(params.get_string("routing", "xy")),
      cols_(static_cast<std::size_t>(params.get_int("cols", 1))),
      rows_(static_cast<std::size_t>(params.get_int("rows", 1))),
      vcs_(static_cast<std::size_t>(params.get_int("vcs", 2))),
      depth_(static_cast<std::size_t>(params.get_int("depth", 4))),
      pipeline_(static_cast<std::uint64_t>(params.get_int("pipeline", 1))),
      power_(power_config_from(params, 5, vcs_, depth_)),
      thermal_(params.get_real("ambient_c", 45.0),
               params.get_real("r_thermal", 2.0),
               params.get_real("thermal_tau", 10000.0)) {
  if (routing_ != "xy" && routing_ != "torus_xy" && routing_ != "ring" &&
      routing_ != "dst" && routing_ != "custom") {
    throw liberty::ElaborationError("ccl.router '" + name +
                                    "': unknown routing '" + routing_ + "'");
  }
  if (vcs_ == 0 || depth_ == 0) {
    throw liberty::ElaborationError("ccl.router '" + name +
                                    "': vcs and depth must be >= 1");
  }
}

void Router::init() {
  buffers_.assign(in_.width() * vcs_, {});
  last_route_.assign(in_.width() * vcs_, 0);
  rr_.assign(out_.width(), 0);
  grant_.assign(out_.width(), -1);
  out_lock_.assign(out_.width(), -1);
}

std::size_t Router::route(const Flit& f) const {
  if (route_fn_) return route_fn_(f);
  if (routing_ == "dst") return f.dst % out_.width();
  if (f.dst == id_num_) return 0;  // local ejection
  if (routing_ == "ring") {
    // Shortest direction around the ring: 1 = clockwise (+1), 2 = ccw.
    const std::size_t fwd_dist = (f.dst + nodes_ - id_num_) % nodes_;
    return fwd_dist <= nodes_ - fwd_dist ? 1 : 2;
  }
  // XY dimension-ordered routing on a cols_ x rows_ mesh or torus.
  const std::size_t my_x = id_num_ % cols_;
  const std::size_t my_y = id_num_ / cols_;
  const std::size_t dx = f.dst % cols_;
  const std::size_t dy = f.dst / cols_;
  if (routing_ == "torus_xy") {
    // Shortest direction per dimension, wrap links allowed.
    if (dx != my_x) {
      const std::size_t east_dist = (dx + cols_ - my_x) % cols_;
      return east_dist <= cols_ - east_dist ? 1 : 2;
    }
    const std::size_t south_dist = (dy + rows_ - my_y) % rows_;
    return south_dist <= rows_ - south_dist ? 4 : 3;
  }
  if (dx > my_x) return 1;  // east
  if (dx < my_x) return 2;  // west
  if (dy > my_y) return 4;  // south (row index grows southward)
  return 3;                 // north
}

void Router::cycle_start(Cycle c) {
  power_.on_cycle();
  thermal_.step(power_.avg_power());

  // Switch allocation: for each output, round-robin over the buffers whose
  // eligible head wants it.  An output locked by an in-flight packet only
  // serves its owner (wormhole discipline).
  for (std::size_t o = 0; o < out_.width(); ++o) {
    std::vector<std::size_t> candidates;
    for (std::size_t b = 0; b < buffers_.size(); ++b) {
      if (out_lock_[o] >= 0 && static_cast<std::size_t>(out_lock_[o]) != b) {
        continue;
      }
      const auto& q = buffers_[b];
      if (q.empty() || q.front().out_port != o || q.front().ready > c) {
        continue;
      }
      // A new packet may claim the output only with its head flit.
      if (out_lock_[o] < 0 && !q.front().value.as<Flit>()->head) continue;
      candidates.push_back(b);
    }
    if (candidates.empty()) {
      grant_[o] = -1;
      out_.idle(o);
      continue;
    }
    power_.on_arbitration(candidates.size());
    if (candidates.size() > 1) {
      stats().bind(alloc_conflicts_stat_, "alloc_conflicts");
      alloc_conflicts_stat_->inc();
    }
    std::size_t win = candidates.front();
    for (const std::size_t b : candidates) {
      if (b >= rr_[o]) {
        win = b;
        break;
      }
    }
    grant_[o] = static_cast<int>(win);
    out_.send_at(o, buffers_[win].front().value);
  }

  std::size_t occupancy = 0;
  for (const auto& q : buffers_) occupancy += q.size();
  stats().bind(occupancy_stat_, "occupancy");
  occupancy_stat_->add(static_cast<double>(occupancy));
}

void Router::react() {
  // Input acceptance: a flit is admitted iff its VC's buffer has space.
  for (std::size_t i = 0; i < in_.width(); ++i) {
    if (in_.ack_driven(i) || !in_.forward_known(i)) continue;
    if (!in_.has_data(i)) {
      in_.nack(i);
      continue;
    }
    const auto flit = in_.data(i).try_as<Flit>();
    if (flit == nullptr) {
      throw liberty::SimulationError("ccl.router '" + name() +
                                     "': non-flit value on input " +
                                     std::to_string(i));
    }
    const std::size_t vc = flit->vc % vcs_;
    if (buffers_[buffer_index(i, vc)].size() < depth_) {
      in_.ack(i);
    } else {
      in_.nack(i);
      stats().bind(buffer_stalls_stat_, "buffer_stalls");
      buffer_stalls_stat_->inc();
    }
  }
}

void Router::end_of_cycle() {
  for (std::size_t o = 0; o < out_.width(); ++o) {
    if (grant_[o] < 0 || !out_.transferred(o)) continue;
    auto& q = buffers_[static_cast<std::size_t>(grant_[o])];
    const auto flit = q.front().value.as<Flit>();
    // Wormhole channel lock: held from head to tail.
    if (flit->head && !flit->tail) {
      out_lock_[o] = grant_[o];
    } else if (flit->tail) {
      out_lock_[o] = -1;
    }
    q.pop_front();
    power_.on_buffer_read();
    power_.on_crossbar_traversal();
    stats().bind(flits_out_stat_, "flits_out");
    flits_out_stat_->inc();
    if (o == 0) {
      stats().bind(delivered_stat_, "delivered");
      delivered_stat_->inc();
    }
    rr_[o] = (static_cast<std::size_t>(grant_[o]) + 1) % buffers_.size();
  }
  for (std::size_t i = 0; i < in_.width(); ++i) {
    if (!in_.transferred(i)) continue;
    const auto flit = in_.data(i).as<Flit>();
    const std::size_t vc = flit->vc % vcs_;
    // Heads decide the route; body/tail flits follow their head.
    const std::size_t buf = buffer_index(i, vc);
    const std::size_t out_port =
        flit->head ? route(*flit) : last_route_[buf];
    if (flit->head) last_route_[buf] = out_port;
    // Record the hop taken through this router on the stored copy.
    liberty::Value v(std::static_pointer_cast<const Payload>(flit->hopped()));
    buffers_[buf].push_back(Entry{std::move(v), out_port, now() + pipeline_});
    power_.on_buffer_write();
    stats().bind(flits_in_stat_, "flits_in");
    flits_in_stat_->inc();
  }
}

void Router::save_state(liberty::core::StateWriter& w) const {
  w.put_size(buffers_.size());
  for (const auto& q : buffers_) {
    w.put_size(q.size());
    for (const Entry& e : q) {
      w.put(e.value);
      w.put_size(e.out_port);
      w.put_u64(e.ready);
    }
  }
  for (const std::size_t p : last_route_) w.put_size(p);
  for (const std::size_t p : rr_) w.put_size(p);
  for (const int p : out_lock_) w.put_i64(p);
}

void Router::load_state(liberty::core::StateReader& r) {
  const std::size_t bufs = r.get_size();
  if (bufs != buffers_.size()) {
    throw liberty::SimulationError("ccl.router '" + name() +
                                   "': snapshot buffer count mismatch");
  }
  for (auto& q : buffers_) {
    q.clear();
    const std::size_t n = r.get_size();
    for (std::size_t i = 0; i < n; ++i) {
      liberty::Value v = r.get();
      const std::size_t out_port = r.get_size();
      const Cycle ready = r.get_u64();
      q.push_back(Entry{std::move(v), out_port, ready});
    }
  }
  for (auto& p : last_route_) p = r.get_size();
  for (auto& p : rr_) p = r.get_size();
  for (auto& p : out_lock_) p = static_cast<int>(r.get_i64());
}

void Router::declare_deps(Deps& deps) const {
  deps.state_only(out_);
  deps.depends(in_, {liberty::core::fwd(in_)});
}

}  // namespace liberty::ccl
