file(REMOVE_RECURSE
  "CMakeFiles/test_ccl.dir/test_ccl.cpp.o"
  "CMakeFiles/test_ccl.dir/test_ccl.cpp.o.d"
  "test_ccl"
  "test_ccl.pdb"
  "test_ccl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ccl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
