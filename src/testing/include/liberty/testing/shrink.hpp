// Greedy netlist shrinker: reduce a failing spec to a minimal reproducer.
//
// Classic delta-debugging adapted to netlists: repeatedly try to delete a
// module (splicing 1-in/1-out elements so the data path survives) or halve
// the cycle budget, keeping any candidate that still elaborates AND still
// fails the oracle.  Iterate to a fixed point.
#pragma once

#include <functional>

#include "liberty/testing/netspec.hpp"
#include "liberty/testing/oracle.hpp"

namespace liberty::testing {

struct ShrinkStats {
  std::size_t attempts = 0;   // candidate specs tried
  std::size_t accepted = 0;   // candidates that kept failing
};

/// Shrink `failing` (a spec for which run_oracle reports a divergence)
/// while `still_fails` holds.  The default predicate re-runs the oracle
/// with `config`.  Returns the reduced spec; `failing` is returned
/// unchanged if nothing could be removed.
[[nodiscard]] NetSpec shrink_netlist(
    const NetSpec& failing, const liberty::core::ModuleRegistry& registry,
    const OracleConfig& config = {}, ShrinkStats* stats = nullptr,
    const std::function<bool(const NetSpec&)>& still_fails = {});

}  // namespace liberty::testing
