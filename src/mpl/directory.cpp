#include "liberty/mpl/directory.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "liberty/pcl/payloads.hpp"
#include "liberty/support/error.hpp"

namespace liberty::mpl {

using liberty::core::AckMode;
using liberty::core::Cycle;
using liberty::core::Deps;
using liberty::core::Params;
using liberty::pcl::MemReq;
using liberty::pcl::MemResp;

namespace {
HomeMap home_map_from(const Params& params) {
  HomeMap m;
  m.home0 = static_cast<std::size_t>(params.get_int("home0", 0));
  m.num_homes = static_cast<std::size_t>(params.get_int("num_homes", 1));
  m.stride = static_cast<std::size_t>(params.get_int("home_stride", 1));
  m.line_words = static_cast<std::size_t>(params.get_int("line_words", 4));
  return m;
}
}  // namespace

// ---------------------------------------------------------------------------
// DirectoryCtl
// ---------------------------------------------------------------------------

DirectoryCtl::DirectoryCtl(const std::string& name, const Params& params)
    : Module(name),
      msg_in_(add_in("msg_in", AckMode::AutoAccept, 0, 1)),
      msg_out_(add_out("msg_out", 0, 1)),
      id_num_(static_cast<std::size_t>(params.get_int("id", 0))),
      map_(home_map_from(params)),
      latency_(static_cast<std::uint64_t>(params.get_int("latency", 12))) {}

void DirectoryCtl::send(CohMsg::Type type, std::uint64_t line,
                        std::size_t dst, std::vector<std::int64_t> words,
                        bool exclusive) {
  outq_.push_back(liberty::Value::make<CohMsg>(type, line, id_num_, dst, 0,
                                               std::move(words), exclusive));
  // Data replies pay the memory latency; control messages go immediately.
  out_ready_.push_back(type == CohMsg::Type::Data ? now() + latency_ : now());
}

std::vector<std::int64_t> DirectoryCtl::read_line(std::uint64_t line) const {
  std::vector<std::int64_t> words(map_.line_words);
  for (std::size_t i = 0; i < map_.line_words; ++i) {
    words[i] = peek(line + i);
  }
  return words;
}

void DirectoryCtl::cycle_start(Cycle c) {
  if (!outq_.empty() && out_ready_.front() <= c) {
    msg_out_.send(outq_.front());
  } else {
    msg_out_.idle();
  }
}

void DirectoryCtl::start_request(const CohMsg& msg) {
  DirEntry& e = dir_[msg.line];
  const bool is_getx = msg.type == CohMsg::Type::GetX;
  stats().counter(is_getx ? "getx" : "gets").inc();

  if (e.state == LineState::Modified) {
    // Fetch from the owner; reply when the WbData returns.
    stats().counter("fetches").inc();
    send(CohMsg::Type::Fetch, msg.line, e.owner, {}, /*invalidate=*/is_getx);
    busy_[msg.line] = Transaction{is_getx, msg.src, 0, true};
    return;
  }

  if (is_getx && !e.sharers.empty() &&
      !(e.sharers.size() == 1 && e.sharers.count(msg.src) == 1)) {
    // Invalidate every other sharer, then grant.
    Transaction t{true, msg.src, 0, false};
    for (const std::size_t s : e.sharers) {
      if (s == msg.src) continue;
      stats().counter("invs").inc();
      send(CohMsg::Type::Inv, msg.line, s);
      ++t.pending_acks;
    }
    busy_[msg.line] = t;
    return;
  }

  // Immediate grant.
  if (is_getx) {
    e.state = LineState::Modified;
    e.sharers.clear();
    e.owner = msg.src;
  } else {
    e.state = LineState::Shared;
    e.sharers.insert(msg.src);
  }
  stats().counter("data_sent").inc();
  send(CohMsg::Type::Data, msg.line, msg.src, read_line(msg.line), is_getx);
}

void DirectoryCtl::finish_transaction(std::uint64_t line) {
  const Transaction t = busy_.at(line);
  busy_.erase(line);
  DirEntry& e = dir_[line];
  if (t.is_getx) {
    e.state = LineState::Modified;
    e.sharers.clear();
    e.owner = t.requester;
  } else {
    e.state = LineState::Shared;
    e.sharers.insert(t.requester);
  }
  stats().counter("data_sent").inc();
  send(CohMsg::Type::Data, line, t.requester, read_line(line), t.is_getx);

  // Wake the next queued request for this line.
  auto wit = waiting_.find(line);
  if (wit != waiting_.end() && !wit->second.empty()) {
    const liberty::Value next = wit->second.front();
    wit->second.pop_front();
    if (wit->second.empty()) waiting_.erase(wit);
    handle(*next.as<CohMsg>());
  }
}

void DirectoryCtl::handle(const CohMsg& msg) {
  const std::size_t expected_home = map_.home_of(msg.line);
  if (expected_home != id_num_) {
    throw liberty::SimulationError(
        "mpl.directory '" + name() + "': message for line " +
        std::to_string(msg.line) + " belongs to home " +
        std::to_string(expected_home));
  }

  switch (msg.type) {
    case CohMsg::Type::GetS:
    case CohMsg::Type::GetX: {
      if (busy_.count(msg.line) != 0) {
        stats().counter("queued").inc();
        waiting_[msg.line].push_back(liberty::Value::make<CohMsg>(msg));
        return;
      }
      start_request(msg);
      return;
    }
    case CohMsg::Type::InvAck: {
      auto it = busy_.find(msg.line);
      if (it == busy_.end()) return;
      if (it->second.pending_acks > 0) --it->second.pending_acks;
      if (it->second.pending_acks == 0 && !it->second.waiting_fetch) {
        finish_transaction(msg.line);
      }
      return;
    }
    case CohMsg::Type::WbData: {
      // Memory update, whether a fetch response or a dirty eviction.
      for (std::size_t i = 0; i < msg.words.size(); ++i) {
        store_[msg.line + i] = msg.words[i];
      }
      auto it = busy_.find(msg.line);
      if (it != busy_.end() && it->second.waiting_fetch) {
        it->second.waiting_fetch = false;
        if (it->second.pending_acks == 0) finish_transaction(msg.line);
        return;
      }
      // Eviction: the owner gave up the line voluntarily.
      DirEntry& e = dir_[msg.line];
      if (e.state == LineState::Modified && e.owner == msg.src) {
        e.state = LineState::Uncached;
        e.sharers.clear();
      }
      return;
    }
    default:
      return;
  }
}

void DirectoryCtl::end_of_cycle() {
  if (msg_out_.transferred()) {
    outq_.pop_front();
    out_ready_.pop_front();
  }
  if (msg_in_.transferred()) handle(*msg_in_.data().as<CohMsg>());
}

void DirectoryCtl::declare_deps(Deps& deps) const {
  deps.state_only(msg_out_);
}

void DirectoryCtl::save_state(liberty::core::StateWriter& w) const {
  // Every map below is unordered; serialize sorted by key so equal states
  // digest identically regardless of insertion history (see MemoryArray).
  std::vector<std::pair<std::uint64_t, std::int64_t>> cells(store_.begin(),
                                                            store_.end());
  std::sort(cells.begin(), cells.end());
  w.put_size(cells.size());
  for (const auto& [addr, data] : cells) {
    w.put_u64(addr);
    w.put_i64(data);
  }

  std::vector<std::uint64_t> lines;
  lines.reserve(dir_.size());
  for (const auto& [line, entry] : dir_) lines.push_back(line);
  std::sort(lines.begin(), lines.end());
  w.put_size(lines.size());
  for (const std::uint64_t line : lines) {
    const DirEntry& e = dir_.at(line);
    w.put_u64(line);
    w.put_u64(static_cast<std::uint64_t>(e.state));
    w.put_size(e.sharers.size());
    for (const std::size_t s : e.sharers) w.put_size(s);
    w.put_size(e.owner);
  }

  lines.clear();
  for (const auto& [line, txn] : busy_) lines.push_back(line);
  std::sort(lines.begin(), lines.end());
  w.put_size(lines.size());
  for (const std::uint64_t line : lines) {
    const Transaction& t = busy_.at(line);
    w.put_u64(line);
    w.put_bool(t.is_getx);
    w.put_size(t.requester);
    w.put_size(t.pending_acks);
    w.put_bool(t.waiting_fetch);
  }

  lines.clear();
  for (const auto& [line, q] : waiting_) {
    if (!q.empty()) lines.push_back(line);
  }
  std::sort(lines.begin(), lines.end());
  w.put_size(lines.size());
  for (const std::uint64_t line : lines) {
    const auto& q = waiting_.at(line);
    w.put_u64(line);
    w.put_size(q.size());
    for (const auto& v : q) w.put(v);
  }

  w.put_size(outq_.size());
  for (const auto& v : outq_) w.put(v);
  for (const liberty::core::Cycle c : out_ready_) w.put_u64(c);
}

void DirectoryCtl::load_state(liberty::core::StateReader& r) {
  store_.clear();
  const std::size_t cells = r.get_size();
  for (std::size_t i = 0; i < cells; ++i) {
    const std::uint64_t addr = r.get_u64();
    store_[addr] = r.get_i64();
  }

  dir_.clear();
  const std::size_t entries = r.get_size();
  for (std::size_t i = 0; i < entries; ++i) {
    const std::uint64_t line = r.get_u64();
    DirEntry e;
    e.state = static_cast<LineState>(r.get_u64());
    const std::size_t sharers = r.get_size();
    for (std::size_t s = 0; s < sharers; ++s) e.sharers.insert(r.get_size());
    e.owner = r.get_size();
    dir_[line] = std::move(e);
  }

  busy_.clear();
  const std::size_t txns = r.get_size();
  for (std::size_t i = 0; i < txns; ++i) {
    const std::uint64_t line = r.get_u64();
    Transaction t;
    t.is_getx = r.get_bool();
    t.requester = r.get_size();
    t.pending_acks = r.get_size();
    t.waiting_fetch = r.get_bool();
    busy_[line] = t;
  }

  waiting_.clear();
  const std::size_t queues = r.get_size();
  for (std::size_t i = 0; i < queues; ++i) {
    const std::uint64_t line = r.get_u64();
    auto& q = waiting_[line];
    const std::size_t n = r.get_size();
    for (std::size_t j = 0; j < n; ++j) q.push_back(r.get());
  }

  outq_.clear();
  out_ready_.clear();
  const std::size_t outs = r.get_size();
  for (std::size_t i = 0; i < outs; ++i) outq_.push_back(r.get());
  for (std::size_t i = 0; i < outs; ++i) out_ready_.push_back(r.get_u64());
}

// ---------------------------------------------------------------------------
// DirCache
// ---------------------------------------------------------------------------

DirCache::DirCache(const std::string& name, const Params& params)
    : Module(name),
      cpu_req_(add_in("cpu_req", AckMode::Managed, 0, 1)),
      cpu_resp_(add_out("cpu_resp", 0, 1)),
      msg_out_(add_out("msg_out", 0, 1)),
      msg_in_(add_in("msg_in", AckMode::AutoAccept, 0, 1)),
      id_num_(static_cast<std::size_t>(params.get_int("id", 0))),
      model_(static_cast<std::size_t>(params.get_int("sets", 16)),
             static_cast<std::size_t>(params.get_int("ways", 2)),
             static_cast<std::size_t>(params.get_int("line_words", 4)),
             upl::replacement_from_string(
                 params.get_string("replacement", "lru"))),
      hit_latency_(
          static_cast<std::uint64_t>(params.get_int("hit_latency", 1))),
      map_(home_map_from(params)) {}

void DirCache::send(CohMsg::Type type, std::uint64_t line, std::size_t dst,
                    std::vector<std::int64_t> words, bool exclusive) {
  outq_.push_back(liberty::Value::make<CohMsg>(type, line, id_num_, dst, 0,
                                               std::move(words), exclusive));
}

void DirCache::cycle_start(Cycle c) {
  if (!respq_.empty() && resp_ready_.front() <= c) {
    cpu_resp_.send(respq_.front());
  } else {
    cpu_resp_.idle();
  }
  if (!outq_.empty()) {
    msg_out_.send(outq_.front());
  } else {
    msg_out_.idle();
  }
  if (!miss_) {
    cpu_req_.ack();
  } else {
    cpu_req_.nack();
  }
}

void DirCache::complete_locally(const liberty::Value& req_value) {
  const auto req = req_value.as<MemReq>();
  const std::uint64_t base = model_.line_addr(req->addr);
  auto& words = data_[base];
  const auto off = static_cast<std::size_t>(req->addr - base);
  std::int64_t result = 0;
  if (req->op == MemReq::Op::Read) {
    result = words[off];
  } else {
    words[off] = req->data;
  }
  respq_.push_back(liberty::Value::make<MemResp>(
      req->tag, result, req->op == MemReq::Op::Write));
  resp_ready_.push_back(now() + hit_latency_);
}

void DirCache::handle_cpu(const liberty::Value& v) {
  const auto req = v.as<MemReq>();
  const std::uint64_t base = model_.line_addr(req->addr);
  upl::CacheModel::Line* line = model_.lookup(req->addr);
  const bool write = req->op == MemReq::Op::Write;

  if (line != nullptr && (!write || line->meta == kModified)) {
    stats().counter("hits").inc();
    complete_locally(v);
    return;
  }
  if (line != nullptr) stats().counter("upgrades").inc();
  stats().counter("misses").inc();
  miss_ = Outstanding{v, base};
  send(write ? CohMsg::Type::GetX : CohMsg::Type::GetS, base,
       map_.home_of(base));
}

void DirCache::handle_msg(const CohMsg& msg) {
  switch (msg.type) {
    case CohMsg::Type::Data: {
      if (!miss_ || miss_->line != msg.line) return;  // stale reply
      // Upgrade grants target a line we still hold; plain fills allocate.
      upl::CacheModel::Line* line = model_.lookup(msg.line, /*touch=*/false);
      if (line == nullptr) {
        upl::CacheModel::Line& way = model_.victim(msg.line);
        if (way.valid) {
          const std::uint64_t victim =
              model_.addr_of(way, model_.set_of(msg.line));
          if (way.meta == kModified) {
            stats().counter("writebacks").inc();
            send(CohMsg::Type::WbData, victim, map_.home_of(victim),
                 data_[victim]);
          }
          data_.erase(victim);
        }
        model_.fill(way, msg.line, /*dirty=*/false);
        line = &way;
      }
      line->meta = msg.exclusive ? kModified : kShared;
      data_[msg.line] = msg.words;
      complete_locally(miss_->cpu_req);
      if (miss_->cpu_req.as<MemReq>()->op == MemReq::Op::Write) {
        line->meta = kModified;
      }
      miss_.reset();
      return;
    }
    case CohMsg::Type::Inv: {
      stats().counter("invalidations_rx").inc();
      model_.invalidate(msg.line);
      data_.erase(msg.line);
      send(CohMsg::Type::InvAck, msg.line, msg.src);
      return;
    }
    case CohMsg::Type::Fetch: {
      stats().counter("fetches_rx").inc();
      upl::CacheModel::Line* line = model_.lookup(msg.line, /*touch=*/false);
      std::vector<std::int64_t> words;
      if (line != nullptr) {
        words = data_[msg.line];
        if (msg.exclusive) {
          model_.invalidate(msg.line);
          data_.erase(msg.line);
        } else {
          line->meta = kShared;
        }
      }
      send(CohMsg::Type::WbData, msg.line, msg.src, std::move(words));
      return;
    }
    default:
      return;
  }
}

void DirCache::end_of_cycle() {
  if (cpu_resp_.transferred()) {
    respq_.pop_front();
    resp_ready_.pop_front();
  }
  if (msg_out_.transferred()) outq_.pop_front();
  if (msg_in_.transferred()) handle_msg(*msg_in_.data().as<CohMsg>());
  if (cpu_req_.transferred()) handle_cpu(cpu_req_.data());
}

void DirCache::declare_deps(Deps& deps) const {
  deps.state_only(cpu_resp_);
  deps.state_only(msg_out_);
  deps.state_only(cpu_req_);
}

void DirCache::save_state(liberty::core::StateWriter& w) const {
  model_.save(w);

  std::vector<std::uint64_t> lines;
  lines.reserve(data_.size());
  for (const auto& [line, words] : data_) lines.push_back(line);
  std::sort(lines.begin(), lines.end());
  w.put_size(lines.size());
  for (const std::uint64_t line : lines) {
    const auto& words = data_.at(line);
    w.put_u64(line);
    w.put_size(words.size());
    for (const std::int64_t word : words) w.put_i64(word);
  }

  w.put_bool(miss_.has_value());
  if (miss_) {
    w.put(miss_->cpu_req);
    w.put_u64(miss_->line);
  }

  w.put_size(outq_.size());
  for (const auto& v : outq_) w.put(v);
  w.put_size(respq_.size());
  for (const auto& v : respq_) w.put(v);
  for (const liberty::core::Cycle c : resp_ready_) w.put_u64(c);
}

void DirCache::load_state(liberty::core::StateReader& r) {
  model_.load(r);

  data_.clear();
  const std::size_t lines = r.get_size();
  for (std::size_t i = 0; i < lines; ++i) {
    const std::uint64_t line = r.get_u64();
    auto& words = data_[line];
    const std::size_t n = r.get_size();
    words.reserve(n);
    for (std::size_t j = 0; j < n; ++j) words.push_back(r.get_i64());
  }

  miss_.reset();
  if (r.get_bool()) {
    liberty::Value req = r.get();
    const std::uint64_t line = r.get_u64();
    miss_ = Outstanding{std::move(req), line};
  }

  outq_.clear();
  const std::size_t outs = r.get_size();
  for (std::size_t i = 0; i < outs; ++i) outq_.push_back(r.get());
  respq_.clear();
  resp_ready_.clear();
  const std::size_t resps = r.get_size();
  for (std::size_t i = 0; i < resps; ++i) respq_.push_back(r.get());
  for (std::size_t i = 0; i < resps; ++i) resp_ready_.push_back(r.get_u64());
}

}  // namespace liberty::mpl
