#include "liberty/obs/profiler.hpp"

#include <algorithm>

namespace liberty::obs {

void CycleProfiler::on_cycle_begin(liberty::core::Cycle c) {
  if (sink_ != nullptr) sink_->on_cycle_begin(c);
}

void CycleProfiler::on_cycle_end(liberty::core::Cycle c) {
  ++cycles_;
  if (sink_ != nullptr) sink_->on_cycle_end(c);
}

void CycleProfiler::on_phase(liberty::core::SchedPhase phase,
                             liberty::core::Cycle c, double seconds) {
  auto& t = phases_[static_cast<std::size_t>(phase)];
  t.seconds += seconds;
  ++t.count;
  if (sink_ != nullptr) sink_->on_phase(phase, c, seconds);
}

void CycleProfiler::on_wave(liberty::core::Cycle c, std::size_t wave,
                            std::size_t clusters, double seconds) {
  ++waves_;
  wave_clusters_ += clusters;
  wave_seconds_ += seconds;
  lane_wall_seconds_ += seconds;
  if (sink_ != nullptr) sink_->on_wave(c, wave, clusters, seconds);
}

void CycleProfiler::on_lane(liberty::core::Cycle c, std::size_t wave,
                            unsigned lane, double busy_seconds) {
  if (lane >= lanes_.size()) lanes_.resize(lane + 1);
  auto& t = lanes_[lane];
  t.busy_seconds += busy_seconds;
  ++t.waves;
  if (sink_ != nullptr) sink_->on_lane(c, wave, lane, busy_seconds);
}

void CycleProfiler::on_module_batch(const std::uint64_t* reacts,
                                    const double* seconds, std::size_t n) {
  if (n > mod_reacts_.size()) {
    mod_reacts_.resize(n, 0);
    mod_seconds_.resize(n, 0.0);
  }
  for (std::size_t i = 0; i < n; ++i) {
    mod_reacts_[i] += reacts[i];
    mod_seconds_[i] += seconds[i];
  }
}

double CycleProfiler::total_seconds() const noexcept {
  double total = 0.0;
  for (const auto& t : phases_) total += t.seconds;
  return total;
}

double CycleProfiler::lane_idle_seconds() const noexcept {
  double busy = 0.0;
  for (const auto& t : lanes_) busy += t.busy_seconds;
  const double wall =
      lane_wall_seconds_ * static_cast<double>(lanes_.size());
  return std::max(0.0, wall - busy);
}

void CycleProfiler::reset() {
  cycles_ = 0;
  phases_ = {};
  mod_reacts_.clear();
  mod_seconds_.clear();
  waves_ = 0;
  wave_clusters_ = 0;
  wave_seconds_ = 0.0;
  lane_wall_seconds_ = 0.0;
  lanes_.clear();
}

}  // namespace liberty::obs
