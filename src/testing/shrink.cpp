#include "liberty/testing/shrink.hpp"

#include <utility>
#include <vector>

namespace liberty::testing {

namespace {

/// Candidate with module `victim` deleted.  A 1-in/1-out victim is spliced
/// (its producer connects straight to its consumer); anything else is cut
/// together with every edge touching it — arity violations are caught when
/// the candidate fails to elaborate.
NetSpec remove_module(const NetSpec& spec, std::size_t victim) {
  std::vector<const EdgeDecl*> incoming;
  std::vector<const EdgeDecl*> outgoing;
  for (const EdgeDecl& e : spec.edges) {
    if (e.to == victim) incoming.push_back(&e);
    if (e.from == victim) outgoing.push_back(&e);
  }
  const bool splice = incoming.size() == 1 && outgoing.size() == 1 &&
                      incoming.front()->from != victim;

  NetSpec out;
  out.cycles = spec.cycles;
  std::vector<std::size_t> remap(spec.modules.size());
  for (std::size_t i = 0; i < spec.modules.size(); ++i) {
    if (i == victim) continue;
    remap[i] = out.modules.size();
    out.modules.push_back(spec.modules[i]);
  }
  for (const EdgeDecl& e : spec.edges) {
    if (e.from == victim || e.to == victim) {
      if (splice && &e == incoming.front()) {
        // The spliced edge crosses two original edges; any endpoint pins
        // belonged to the victim's wiring, so fall back to next-free.
        out.edges.push_back(EdgeDecl{remap[e.from], e.from_port,
                                     remap[outgoing.front()->to],
                                     outgoing.front()->to_port});
      }
      continue;
    }
    out.edges.push_back(EdgeDecl{remap[e.from], e.from_port, remap[e.to],
                                 e.to_port, e.from_ep, e.to_ep});
  }
  for (const MmioDecl& m : spec.mmios) {
    if (m.host == victim || m.device == victim) continue;
    out.mmios.push_back(
        MmioDecl{remap[m.host], remap[m.device], m.base, m.size});
  }
  return out;
}

bool elaborates(const NetSpec& spec,
                const liberty::core::ModuleRegistry& registry) {
  try {
    liberty::core::Netlist netlist;
    spec.build(netlist, registry);
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace

NetSpec shrink_netlist(const NetSpec& failing,
                       const liberty::core::ModuleRegistry& registry,
                       const OracleConfig& config, ShrinkStats* stats,
                       const std::function<bool(const NetSpec&)>& still_fails) {
  // Re-running the full oracle per candidate is the cost driver; skip
  // bisection while shrinking and only bisect the final reproducer.
  OracleConfig coarse = config;
  coarse.bisect = false;
  const auto fails = still_fails
                         ? still_fails
                         : std::function<bool(const NetSpec&)>(
                               [&](const NetSpec& s) {
                                 return !run_oracle(s, registry, coarse).ok;
                               });

  ShrinkStats local;
  ShrinkStats& st = stats != nullptr ? *stats : local;

  NetSpec current = failing;
  bool progress = true;
  while (progress) {
    progress = false;

    if (current.cycles > 8) {
      NetSpec cand = current;
      cand.cycles /= 2;
      ++st.attempts;
      try {
        if (fails(cand)) {
          current = std::move(cand);
          ++st.accepted;
          progress = true;
        }
      } catch (const std::exception&) {
        // The shorter run hit a different error; keep the longer budget.
      }
    }

    for (std::size_t m = 0; m < current.modules.size(); ++m) {
      NetSpec cand = remove_module(current, m);
      ++st.attempts;
      if (!elaborates(cand, registry)) continue;
      try {
        if (!fails(cand)) continue;
      } catch (const std::exception&) {
        continue;  // removal changed the failure mode; not a reproducer
      }
      current = std::move(cand);
      ++st.accepted;
      progress = true;
      break;  // module indices shifted; restart the scan
    }
  }
  return current;
}

}  // namespace liberty::testing
