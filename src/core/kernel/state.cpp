#include "liberty/core/state.hpp"

#include <variant>

namespace liberty::core {

namespace {

std::uint64_t mix_bytes(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

std::uint64_t digest_value(std::uint64_t h, const Value& v) {
  // Tag with the alternative index so e.g. int 1 and bool true differ.
  h = fnv1a_mix(h, static_cast<std::uint64_t>(v.raw().index()));
  if (v.is_bool()) return fnv1a_mix(h, v.as_bool() ? 1 : 0);
  if (v.is_int()) {
    return fnv1a_mix(h, static_cast<std::uint64_t>(v.as_int()));
  }
  if (v.is_real()) {
    const double d = v.as_real();
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(d));
    __builtin_memcpy(&bits, &d, sizeof(bits));
    return fnv1a_mix(h, bits);
  }
  if (v.is_string()) {
    const std::string& s = v.as_string();
    return mix_bytes(h, s.data(), s.size());
  }
  if (v.is_payload()) {
    // Content digest, never pointer identity: two independently built
    // simulators must agree on the digest of equivalent states.
    const std::string s = v.to_string();
    return mix_bytes(h, s.data(), s.size());
  }
  return h;  // token
}

std::uint64_t digest_slots(const std::vector<Value>& slots) {
  std::uint64_t h = kFnv1aInit;
  h = fnv1a_mix(h, slots.size());
  for (const Value& v : slots) h = digest_value(h, v);
  return h;
}

}  // namespace liberty::core
