# Empty dependencies file for test_upl_core.
# This may be replaced when dependencies are built.
