file(REMOVE_RECURSE
  "CMakeFiles/bench_reuse.dir/bench_reuse.cpp.o"
  "CMakeFiles/bench_reuse.dir/bench_reuse.cpp.o.d"
  "bench_reuse"
  "bench_reuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
