file(REMOVE_RECURSE
  "CMakeFiles/bench_orion.dir/bench_orion.cpp.o"
  "CMakeFiles/bench_orion.dir/bench_orion.cpp.o.d"
  "bench_orion"
  "bench_orion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_orion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
