// Coherence and message-passing payloads of the MPL (§3.4).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "liberty/pcl/payloads.hpp"
#include "liberty/support/value.hpp"

namespace liberty::mpl {

/// Every coherence transaction on a bus or network.
struct CohMsg final : Payload, pcl::Routable {
  enum class Type : std::uint8_t {
    GetS,     // read miss: request shared copy
    GetX,     // write miss / upgrade: request exclusive copy
    Data,     // line data response (exclusive flag distinguishes S/M grant)
    WbData,   // dirty eviction / fetch response toward home or memory
    Inv,      // directory -> sharer: invalidate
    InvAck,   // sharer -> directory
    Fetch,    // directory -> owner: surrender the line
    Done,     // snooping bus: requester closes its transaction
  };

  CohMsg(Type type_, std::uint64_t line_, std::size_t src_, std::size_t dst_,
         std::uint64_t tag_ = 0, std::vector<std::int64_t> words_ = {},
         bool exclusive_ = false)
      : type(type_),
        line(line_),
        src(src_),
        dst(dst_),
        tag(tag_),
        words(std::move(words_)),
        exclusive(exclusive_) {}

  Type type;
  std::uint64_t line;
  std::size_t src;
  std::size_t dst;
  std::uint64_t tag;
  std::vector<std::int64_t> words;
  bool exclusive;

  [[nodiscard]] std::size_t route_key() const override { return dst; }
  [[nodiscard]] std::string describe() const override {
    static const char* names[] = {"GetS", "GetX", "Data", "WbData",
                                  "Inv",  "InvAck", "Fetch", "Done"};
    return std::string(names[static_cast<int>(type)]) + "@" +
           std::to_string(line) + " " + std::to_string(src) + "->" +
           std::to_string(dst);
  }
};

/// One burst of a DMA transfer (message-passing substrate, §3.4).
struct DmaChunk final : Payload, pcl::Routable {
  DmaChunk(std::size_t dst_node_, std::uint64_t dst_addr_,
           std::vector<std::int64_t> words_, std::uint64_t xfer_id_,
           bool last_)
      : dst_node(dst_node_),
        dst_addr(dst_addr_),
        words(std::move(words_)),
        xfer_id(xfer_id_),
        last(last_) {}

  std::size_t dst_node;
  std::uint64_t dst_addr;
  std::vector<std::int64_t> words;
  std::uint64_t xfer_id;
  bool last;

  [[nodiscard]] std::size_t route_key() const override { return dst_node; }
  [[nodiscard]] std::string describe() const override {
    return "dma#" + std::to_string(xfer_id) + "->" + std::to_string(dst_node) +
           "@" + std::to_string(dst_addr) + " x" +
           std::to_string(words.size());
  }
};

}  // namespace liberty::mpl
