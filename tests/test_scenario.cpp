// The flagship rack-scale scenario (liberty::scenario) as a differential
// test target: cross-scheduler oracle identity over the full multi-library
// netlist, byte-exact trace replay, mid-flight snapshot/restore,
// checkpoint/rollback recovery from a NIC-channel fault, and the metrics
// golden.  docs/scenarios.md is the narrative companion.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "liberty/core/simulator.hpp"
#include "liberty/gen/compiled_scheduler.hpp"
#include "liberty/obs/metrics.hpp"
#include "liberty/opt/optimizer.hpp"
#include "liberty/resil/fault_plan.hpp"
#include "liberty/resil/injector.hpp"
#include "liberty/resil/recovery.hpp"
#include "liberty/resil/watchdog.hpp"
#include "liberty/scenario/rack.hpp"
#include "liberty/scenario/trace.hpp"
#include "liberty/scenario/trace_modules.hpp"
#include "liberty/testing/oracle.hpp"

#ifndef LIBERTY_REPO_ROOT
#error "LIBERTY_REPO_ROOT must point at the repository checkout"
#endif

namespace {

using liberty::core::Cycle;
using liberty::core::KernelSnapshot;
using liberty::core::Netlist;
using liberty::core::SchedulerKind;
using liberty::core::Simulator;
using liberty::scenario::RackConfig;
using liberty::scenario::TraceSink;
using liberty::scenario::TraceSource;
using liberty::testing::Candidate;
using liberty::testing::NetSpec;

liberty::core::ModuleRegistry& rack_registry() {
  static liberty::core::ModuleRegistry r = [] {
    liberty::core::ModuleRegistry reg;
    liberty::scenario::register_rack_libraries(reg);
    liberty::gen::ensure_registered();
    return reg;
  }();
  return r;
}

/// The small rack every test here shares: 2x1 mesh, one coherent core per
/// node, no OoO rider — big enough to cross every library boundary
/// (pcl/upl/ccl/mpl/nil/scenario), small enough for a tight cycle budget.
RackConfig tiny_rack() {
  RackConfig cfg;
  cfg.mesh_cols = 2;
  cfg.mesh_rows = 1;
  cfg.cores = 1;
  cfg.with_ooo = false;
  cfg.worker_iters = 8;
  cfg.requests_per_node = 2;
  cfg.cycles = 3000;
  return cfg;
}

/// Concatenated per-sink record renderings: the byte-exact replay artifact.
std::string all_records(const Netlist& netlist, const RackConfig& cfg) {
  std::string out;
  for (std::size_t n = 0; n < cfg.nodes(); ++n) {
    const auto* sink = dynamic_cast<const TraceSink*>(
        netlist.find("n" + std::to_string(n) + ".sink"));
    if (sink != nullptr) out += sink->render_records();
  }
  return out;
}

std::uint64_t completed_count(const Netlist& netlist, const RackConfig& cfg) {
  std::uint64_t done = 0;
  for (std::size_t n = 0; n < cfg.nodes(); ++n) {
    const auto* sink = dynamic_cast<const TraceSink*>(
        netlist.find("n" + std::to_string(n) + ".sink"));
    if (sink != nullptr) done += sink->completed();
  }
  return done;
}

// --- Trace format -----------------------------------------------------------

TEST(Trace, SyntheticRoundTripsThroughText) {
  liberty::scenario::TraceConfig cfg;
  cfg.nodes = 4;
  cfg.per_node = 6;
  cfg.seed = 42;
  const auto reqs = liberty::scenario::synthetic_trace(cfg);
  EXPECT_EQ(reqs.size(), 24u);
  const auto again = liberty::scenario::parse_trace(
      liberty::scenario::render_trace(reqs));
  ASSERT_EQ(again.size(), reqs.size());
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    EXPECT_EQ(again[i].id, reqs[i].id);
    EXPECT_EQ(again[i].cycle, reqs[i].cycle);
    EXPECT_EQ(again[i].src, reqs[i].src);
    EXPECT_EQ(again[i].dst, reqs[i].dst);
    EXPECT_EQ(again[i].words, reqs[i].words);
  }
  // Same seed, same trace; different seed, different trace.
  EXPECT_EQ(liberty::scenario::render_trace(
                liberty::scenario::synthetic_trace(cfg)),
            liberty::scenario::render_trace(reqs));
  cfg.seed = 43;
  EXPECT_NE(liberty::scenario::render_trace(
                liberty::scenario::synthetic_trace(cfg)),
            liberty::scenario::render_trace(reqs));
}

TEST(Trace, ParserRejectsMalformedInput) {
  EXPECT_THROW(liberty::scenario::parse_trace("req 1 2\n"), liberty::Error);
  EXPECT_THROW(liberty::scenario::parse_trace("req 1 0 1 1\n"),
               liberty::Error);  // words < 2
  EXPECT_THROW(liberty::scenario::parse_trace("nonsense\n"), liberty::Error);
  EXPECT_TRUE(liberty::scenario::parse_trace("# only a comment\n").empty());
}

// --- The oracle identity: tentpole acceptance criterion ---------------------

// The rack netlist — every component library at once — must be bit-identical
// (transfer trace, state digests, stats) under all four schedulers at both
// -O0 and -O2, proved by the differential oracle against the dynamic -O0
// reference.
TEST(Scenario, OracleIdentityAcrossSchedulersAndOptLevels) {
  const NetSpec spec = liberty::scenario::rack_netspec(tiny_rack());
  liberty::testing::OracleConfig oracle;
  oracle.snapshot_every = 256;
  oracle.candidates = {
      Candidate{SchedulerKind::Static, 0},
      Candidate{SchedulerKind::Parallel, 2},
      Candidate{SchedulerKind::Compiled, 0},
      Candidate{SchedulerKind::Dynamic, 0, /*opt_level=*/2},
      Candidate{SchedulerKind::Static, 0, /*opt_level=*/2},
      Candidate{SchedulerKind::Parallel, 2, /*opt_level=*/2},
      Candidate{SchedulerKind::Compiled, 0, /*opt_level=*/2},
  };
  const liberty::testing::OracleResult r =
      liberty::testing::run_oracle(spec, rack_registry(), oracle);
  EXPECT_TRUE(r.ok) << r.report();
}

// --- Replay determinism -----------------------------------------------------

// Same trace + same seed => byte-identical per-request latency records, on
// fresh elaborations and across scheduler kinds.
TEST(Scenario, ReplayIsByteIdentical) {
  const RackConfig cfg = tiny_rack();
  const NetSpec spec = liberty::scenario::rack_netspec(cfg);

  auto run = [&](SchedulerKind kind, int opt_level) {
    Netlist netlist;
    spec.build(netlist, rack_registry());
    liberty::opt::optimize(netlist,
                           liberty::opt::OptOptions::for_level(opt_level));
    Simulator sim(netlist, kind, kind == SchedulerKind::Parallel ? 2 : 0);
    sim.run(cfg.cycles);
    EXPECT_GT(completed_count(netlist, cfg), 0u);
    return all_records(netlist, cfg);
  };

  const std::string reference = run(SchedulerKind::Static, 0);
  EXPECT_NE(reference.find("rec "), std::string::npos) << reference;
  EXPECT_EQ(run(SchedulerKind::Static, 0), reference) << "fresh elaboration";
  EXPECT_EQ(run(SchedulerKind::Dynamic, 0), reference) << "dynamic";
  EXPECT_EQ(run(SchedulerKind::Parallel, 0), reference) << "parallel";
  EXPECT_EQ(run(SchedulerKind::Compiled, 2), reference) << "compiled -O2";
}

// An explicit trace file (here: the rendered synthetic trace fed back in
// through RackConfig::trace) replays exactly like the generator output.
TEST(Scenario, ExplicitTraceFileMatchesSynthetic) {
  const RackConfig implicit = tiny_rack();
  RackConfig explicit_cfg = tiny_rack();
  liberty::scenario::TraceConfig tc;
  tc.nodes = implicit.nodes();
  tc.per_node = implicit.requests_per_node;
  tc.seed = implicit.seed;
  explicit_cfg.trace =
      liberty::scenario::render_trace(liberty::scenario::synthetic_trace(tc));

  auto run = [&](const RackConfig& cfg) {
    Netlist netlist;
    liberty::scenario::rack_netspec(cfg).build(netlist, rack_registry());
    Simulator sim(netlist, SchedulerKind::Static, 0);
    sim.run(cfg.cycles);
    return all_records(netlist, cfg);
  };
  EXPECT_EQ(run(implicit), run(explicit_cfg));
}

// --- Snapshot / restore mid-flight ------------------------------------------

// Snapshot the rack with requests in flight inside NIC rings, mesh channels
// and coherence controllers; restore must rewind to the exact trajectory.
TEST(Scenario, SnapshotRestoreMidFlight) {
  const RackConfig cfg = tiny_rack();
  Netlist netlist;
  liberty::scenario::rack_netspec(cfg).build(netlist, rack_registry());
  Simulator sim(netlist, SchedulerKind::Static, 0);

  sim.run(cfg.cycles / 4);  // requests are mid-flight here
  const KernelSnapshot snap = sim.snapshot();
  sim.run(cfg.cycles - cfg.cycles / 4);
  const std::uint64_t end_digest = sim.snapshot().digest();
  const std::string end_records = all_records(netlist, cfg);
  EXPECT_GT(completed_count(netlist, cfg), 0u);

  sim.restore(snap);
  EXPECT_EQ(sim.snapshot().digest(), snap.digest());
  sim.run(cfg.cycles - cfg.cycles / 4);
  EXPECT_EQ(sim.snapshot().digest(), end_digest);
  EXPECT_EQ(all_records(netlist, cfg), end_records);
}

// --- Checkpoint/rollback recovery -------------------------------------------

/// Connection id of a NIC channel at node 0: the assist's net_tx link into
/// the fabric adapter.
liberty::core::ConnId nic_channel(const Netlist& netlist) {
  for (const auto& conn : netlist.connections()) {
    if (conn->producer() != nullptr && conn->consumer() != nullptr &&
        conn->producer()->name() == "n0.nic.assist" &&
        conn->consumer()->name() == "n0.nic.adapter") {
      return conn->id();
    }
  }
  ADD_FAILURE() << "no n0.nic.assist -> n0.nic.adapter connection found";
  return 0;
}

// A dead NIC link (drop_enable on assist -> adapter) detected by the
// watchdog divergence check; the Supervisor's rollback-and-retry must finish
// bit-identical to a run that never faulted.
TEST(Scenario, NicChannelFaultRecoversViaSupervisor) {
  RackConfig cfg = tiny_rack();
  cfg.cycles = 1200;
  const NetSpec spec = liberty::scenario::rack_netspec(cfg);

  // Fault-free supervised reference on a fresh elaboration.
  Netlist ref_netlist;
  spec.build(ref_netlist, rack_registry());
  liberty::resil::SupervisorConfig sup_cfg;
  sup_cfg.checkpoint_every = 128;
  liberty::resil::RecoveryReport ref;
  {
    liberty::resil::Supervisor sup(ref_netlist, sup_cfg);
    ref = sup.run(cfg.cycles);
  }
  ASSERT_TRUE(ref.completed) << ref.error;

  // Watchdog baseline from another fault-free twin.
  std::vector<std::vector<std::uint64_t>> baseline;
  {
    Netlist twin;
    spec.build(twin, rack_registry());
    Simulator sim(twin, SchedulerKind::Static, 0);
    liberty::resil::Watchdog rec;
    rec.record_baseline();
    rec.attach(sim);
    sim.run(cfg.cycles);
    baseline = rec.take_baseline();
  }

  Netlist netlist;
  spec.build(netlist, rack_registry());
  liberty::resil::FaultPlan plan;
  plan.seed = 0xace;
  liberty::resil::FaultSpec fault;
  fault.cls = liberty::resil::FaultClass::DropEnable;
  fault.connection = nic_channel(netlist);
  fault.from_cycle = 64;  // while node 0's requests are still in flight
  plan.faults.push_back(fault);

  liberty::resil::FaultInjector injector(plan);
  liberty::resil::Watchdog wd;
  wd.set_baseline(std::move(baseline));
  sup_cfg.policy = liberty::resil::RecoveryPolicy::RollbackRetry;
  liberty::resil::Supervisor sup(netlist, sup_cfg, &injector, &wd);
  const liberty::resil::RecoveryReport rep = sup.run(cfg.cycles);

  ASSERT_TRUE(rep.completed) << rep.error;
  EXPECT_GE(rep.rollbacks, 1);
  EXPECT_EQ(rep.cycles, cfg.cycles);
  EXPECT_EQ(rep.trace_hashes, ref.trace_hashes);
  EXPECT_EQ(rep.trace_digest(), ref.trace_digest());
  EXPECT_EQ(rep.state_digest, ref.state_digest);
  EXPECT_EQ(all_records(netlist, cfg), all_records(ref_netlist, cfg));
}

// --- Fuzz family ------------------------------------------------------------

TEST(Scenario, FuzzFamilyIsDeterministicPerSeed) {
  for (const std::uint64_t seed : {1ull, 7ull, 23ull}) {
    const NetSpec a = liberty::scenario::fuzz_rack_netspec(seed);
    const NetSpec b = liberty::scenario::fuzz_rack_netspec(seed);
    EXPECT_EQ(a.render(), b.render()) << "seed " << seed;
    // Every generated spec elaborates and runs.
    Netlist netlist;
    a.build(netlist, rack_registry());
    Simulator sim(netlist, SchedulerKind::Static, 0);
    EXPECT_EQ(sim.run(64), 64u);
  }
  EXPECT_NE(liberty::scenario::fuzz_rack_netspec(1).render(),
            liberty::scenario::fuzz_rack_netspec(2).render());
}

// --- Golden metrics ---------------------------------------------------------

bool updating() {
  const char* env = std::getenv("LIBERTY_UPDATE_GOLDEN");
  return env != nullptr && env[0] != '\0' && std::string(env) != "0";
}

void compare_or_update(const std::string& actual, const std::string& leaf) {
  const std::string path =
      std::string(LIBERTY_REPO_ROOT) + "/tests/golden/" + leaf;
  if (updating()) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good())
      << path << " is missing; regenerate with LIBERTY_UPDATE_GOLDEN=1";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(actual, expected.str())
      << "output of " << leaf << " drifted from its golden; if the change "
      << "is intentional, rerun with LIBERTY_UPDATE_GOLDEN=1 and review "
      << "the diff";
}

// The rack_sim metrics export (percentiles, throughput, power/thermal,
// module stats, scheduler counters) is a stable artifact: the exact JSON is
// checked in under tests/golden/ and refreshed with LIBERTY_UPDATE_GOLDEN.
TEST(Scenario, GoldenMetricsExport) {
  const RackConfig cfg = tiny_rack();
  Netlist netlist;
  liberty::scenario::rack_netspec(cfg).build(netlist, rack_registry());
  Simulator sim(netlist, SchedulerKind::Static, 0);
  const std::uint64_t ran = sim.run(cfg.cycles);

  std::uint64_t injected = 0;
  std::vector<double> latencies;
  for (std::size_t n = 0; n < cfg.nodes(); ++n) {
    const std::string base = "n" + std::to_string(n);
    if (const auto* src =
            dynamic_cast<const TraceSource*>(netlist.find(base + ".src"))) {
      injected += src->injected();
    }
    if (const auto* sink =
            dynamic_cast<const TraceSink*>(netlist.find(base + ".sink"))) {
      for (const auto& rec : sink->records()) {
        latencies.push_back(static_cast<double>(rec.done - rec.born));
      }
    }
  }
  std::sort(latencies.begin(), latencies.end());
  auto pct = [&](double q) {
    if (latencies.empty()) return 0.0;
    const auto rank =
        static_cast<std::size_t>(std::ceil(q * latencies.size()));
    return latencies[std::min(latencies.size() - 1,
                              rank == 0 ? 0 : rank - 1)];
  };

  liberty::obs::MetricsRegistry reg;
  reg.collect_modules(netlist);
  reg.collect_scheduler(sim.scheduler());
  reg.add_counter("rack.requests_injected", injected);
  reg.add_counter("rack.requests_completed", latencies.size());
  reg.add_scalar("rack.throughput_rpkc",
                 static_cast<double>(latencies.size()) * 1000.0 /
                     static_cast<double>(ran));
  liberty::obs::MetricsRegistry::Summary lat;
  lat.count = latencies.size();
  if (!latencies.empty()) {
    double sum = 0.0;
    for (const double l : latencies) sum += l;
    lat.mean = sum / static_cast<double>(latencies.size());
    lat.min = latencies.front();
    lat.max = latencies.back();
  }
  lat.has_quantiles = true;
  lat.p50 = pct(0.50);
  lat.p95 = pct(0.95);
  lat.p99 = pct(0.99);
  reg.add_summary("rack.latency", lat);
  const liberty::scenario::RackPowerReport power =
      liberty::scenario::rack_power_report(netlist, cfg);
  reg.add_scalar("rack.router_dynamic_pj", power.router_dynamic_pj);
  reg.add_scalar("rack.router_leakage_pj", power.router_leakage_pj);
  reg.add_scalar("rack.router_total_pj", power.router_total_pj);
  reg.add_scalar("rack.peak_temperature_c", power.peak_temperature_c);

  liberty::obs::RunMeta meta;
  meta.tool = "rack_sim";
  meta.spec = cfg.tag();
  meta.scheduler = "static";
  meta.threads = 0;
  meta.seed = cfg.seed;
  meta.cycles = ran;
  meta.git_rev = "golden";  // pinned: goldens must not depend on HEAD

  std::ostringstream json;
  reg.write_json(json, meta);
  compare_or_update(json.str(), "rack_metrics.json");
}

}  // namespace
