// E5 (paper Figure 2(d)): the hierarchical system-of-systems, measured.
//
// Sensor tiers feed aggregator boards over independent wireless channels;
// aggregators DMA their results over a shared ring backbone to a base-camp
// board.  We sweep the number of aggregator clusters.  Shape expectation:
// clusters operate concurrently, so end-to-end completion grows only with
// backbone serialization, not with cluster count.
#include "bench_util.hpp"

using namespace liberty;
using namespace liberty::bench;

namespace {

struct SosResult {
  std::uint64_t cycles = 0;
  std::uint64_t readings = 0;
  bool complete = true;
};

SosResult run_sos(std::size_t clusters, std::size_t sensors_per,
                  int samples) {
  core::Netlist nl;
  const std::size_t backbone_nodes = clusters + 1;  // + base camp
  ccl::Fabric ring = ccl::build_ring(nl, "backbone",
                                     backbone_nodes < 3 ? 3 : backbone_nodes);

  // Base camp.
  auto& camp_mem = nl.make<pcl::MemoryArray>("camp_mem",
                                             core::Params().set("latency", 2));
  auto& camp_dma = nl.make<mpl::DmaCtl>("camp_dma", core::Params());
  auto& camp_ni = nl.make<nil::FabricAdapter>(
      "camp_ni", core::Params().set("id", 0).set("vcs", 1));
  nl.connect(camp_dma.out("mem_req"), camp_mem.in("req"));
  nl.connect(camp_mem.out("resp"), camp_dma.in("mem_resp"));
  nl.connect(camp_dma.out("net_out"), camp_ni.in("msg_in"));
  nl.connect(camp_ni.out("msg_out"), camp_dma.in("net_in"));
  nl.connect_at(camp_ni.out("net_out"), 0, ring.inject_port(0), 0);
  nl.connect_at(ring.eject_port(0), 0, camp_ni.in("net_in"), 0);

  std::vector<mpl::DmaCtl*> agg_dmas;
  std::vector<ccl::TrafficSink*> agg_sinks;
  for (std::size_t c = 0; c < clusters; ++c) {
    const std::string tag = std::to_string(c);
    // Tier 1: one wireless channel per cluster, statistical sensors.
    auto& air = nl.make<ccl::WirelessChannel>(
        "air" + tag, core::Params().set("airtime", 4).set("loss", 0.02)
                         .set("seed", static_cast<std::int64_t>(c) + 2));
    auto& agg_rx = nl.make<ccl::TrafficSink>("aggrx" + tag, core::Params());
    for (std::size_t s = 0; s < sensors_per; ++s) {
      auto& g = nl.make<ccl::TrafficGen>(
          "sense" + tag + "_" + std::to_string(s),
          core::Params().set("id", static_cast<std::int64_t>(s))
              .set("nodes", static_cast<std::int64_t>(sensors_per + 1))
              .set("pattern", "fixed")
              .set("dst", static_cast<std::int64_t>(sensors_per))
              .set("rate", 0.01).set("count", samples)
              .set("seed", static_cast<std::int64_t>(c * 17 + s) + 1));
      nl.connect_at(g.out("out"), 0, air.in("in"), s);
    }
    nl.connect_at(air.out("out"), sensors_per, agg_rx.in("in"), 0);
    agg_sinks.push_back(&agg_rx);

    // Tier 2: aggregator board with DMA to the base camp.
    auto& mem = nl.make<pcl::MemoryArray>("aggmem" + tag,
                                          core::Params().set("latency", 1));
    auto& dma = nl.make<mpl::DmaCtl>("aggdma" + tag, core::Params());
    auto& ni = nl.make<nil::FabricAdapter>(
        "aggni" + tag,
        core::Params().set("id", static_cast<std::int64_t>(c + 1))
            .set("vcs", 1));
    agg_dmas.push_back(&dma);
    nl.connect(dma.out("mem_req"), mem.in("req"));
    nl.connect(mem.out("resp"), dma.in("mem_resp"));
    nl.connect(dma.out("net_out"), ni.in("msg_in"));
    nl.connect(ni.out("msg_out"), dma.in("net_in"));
    nl.connect_at(ni.out("net_out"), 0, ring.inject_port(c + 1), 0);
    nl.connect_at(ring.eject_port(c + 1), 0, ni.in("net_in"), 0);
    // Seed the "analyzed result" the aggregator will ship.
    mem.poke(100, static_cast<std::int64_t>(c) + 500);
  }
  nl.finalize();

  core::Simulator sim(nl, core::SchedulerKind::Static);
  SosResult r;
  // Phase 1: collect sensor data until each aggregator has most samples.
  const std::uint64_t want =
      static_cast<std::uint64_t>(samples) * sensors_per * 8 / 10;
  while (r.cycles < 300'000) {
    bool enough = true;
    for (auto* s : agg_sinks) enough = enough && s->received() >= want;
    if (enough) break;
    sim.step();
    ++r.cycles;
  }
  for (auto* s : agg_sinks) r.readings += s->received();
  // Phase 2: every aggregator ships its result to the camp, addresses
  // interleaved per cluster.
  for (std::size_t c = 0; c < clusters; ++c) {
    agg_dmas[c]->start_transfer(100, 0, 700 + c, 1);
  }
  std::uint64_t shipped_at = r.cycles;
  while (r.cycles < 400'000) {
    bool done = true;
    for (auto* d : agg_dmas) done = done && !d->tx_busy();
    if (done && camp_dma.rx_words() >= clusters) break;
    sim.step();
    ++r.cycles;
  }
  // Drain: let the final DMA writes land in base-camp memory.
  for (int i = 0; i < 200; ++i) sim.step();
  r.cycles += 200;
  (void)shipped_at;
  for (std::size_t c = 0; c < clusters; ++c) {
    if (camp_mem.peek(700 + c) != static_cast<std::int64_t>(c) + 500) {
      r.complete = false;
    }
  }
  return r;
}

}  // namespace

int main() {
  std::printf("E5: system of systems (Figure 2d) — sensor tiers -> "
              "aggregators -> base camp\n\n");
  Table t({"clusters", "sensors", "readings", "cycles", "complete"});
  for (const std::size_t clusters : {1u, 2u, 4u, 8u}) {
    const SosResult r = run_sos(clusters, 4, 10);
    t.row({fmt(static_cast<std::uint64_t>(clusters)),
           fmt(static_cast<std::uint64_t>(clusters * 4)), fmt(r.readings),
           fmt(r.cycles), r.complete ? "yes" : "NO"});
  }
  t.print();
  std::printf("\nshape check: clusters collect concurrently, so end-to-end "
              "time is dominated by per-cluster sensing, not cluster "
              "count.\n");
  return 0;
}
