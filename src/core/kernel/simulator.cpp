#include "liberty/core/simulator.hpp"

namespace liberty::core {

void Simulator::trace_transfers(std::ostream& os) {
  observe_transfers([&os](const Connection& c, Cycle cycle) {
    os << "@" << cycle << "  " << c.describe() << "  " << c.data().to_string()
       << '\n';
  });
}

}  // namespace liberty::core
