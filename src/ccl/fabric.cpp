#include "liberty/ccl/fabric.hpp"

#include "liberty/ccl/flit.hpp"
#include "liberty/pcl/payloads.hpp"
#include "liberty/support/error.hpp"

namespace liberty::ccl {

using liberty::core::AckMode;
using liberty::core::Cycle;
using liberty::core::Deps;
using liberty::core::Params;

// ---------------------------------------------------------------------------
// Link
// ---------------------------------------------------------------------------

namespace {
PowerConfig link_power_config(const Params& params) {
  PowerConfig cfg;
  cfg.link_mm = params.get_real("link_mm", 1.0);
  cfg.flit_bits = static_cast<std::size_t>(params.get_int("flit_bits", 64));
  cfg.vdd = params.get_real("vdd", 1.0);
  return cfg;
}
}  // namespace

Link::Link(const std::string& name, const Params& params)
    : Module(name),
      in_(add_in("in", AckMode::Managed, 0, 1)),
      out_(add_out("out", 0, 1)),
      latency_(static_cast<std::uint64_t>(params.get_int("latency", 1))),
      capacity_(static_cast<std::size_t>(params.get_int("capacity", 0))),
      power_(link_power_config(params)) {
  if (latency_ == 0) {
    throw liberty::ElaborationError("ccl.link '" + name +
                                    "': latency must be >= 1");
  }
  if (capacity_ == 0) capacity_ = static_cast<std::size_t>(latency_);
}

void Link::cycle_start(Cycle c) {
  if (!entries_.empty() && entries_.front().ready <= c) {
    out_.send(entries_.front().value);
  } else {
    out_.idle();
  }
  if (entries_.size() < capacity_) {
    in_.ack();
  } else {
    in_.nack();
  }
}

void Link::end_of_cycle() {
  if (out_.transferred()) entries_.pop_front();
  if (in_.transferred()) {
    entries_.push_back(Entry{in_.data(), now() + latency_});
    power_.on_traversal();
    stats().counter("traversals").inc();
  }
}

void Link::declare_deps(Deps& deps) const {
  deps.state_only(out_);
  deps.state_only(in_);
}

void Link::save_state(liberty::core::StateWriter& w) const {
  w.put_size(entries_.size());
  for (const Entry& e : entries_) {
    w.put(e.value);
    w.put_u64(e.ready);
  }
}

void Link::load_state(liberty::core::StateReader& r) {
  entries_.clear();
  const std::size_t n = r.get_size();
  for (std::size_t i = 0; i < n; ++i) {
    liberty::Value v = r.get();
    const Cycle ready = r.get_u64();
    entries_.push_back(Entry{std::move(v), ready});
  }
}

// ---------------------------------------------------------------------------
// Bus
// ---------------------------------------------------------------------------

Bus::Bus(const std::string& name, const Params& params)
    : Module(name),
      in_(add_in("in", AckMode::Managed, 1)),
      out_(add_out("out", 1)),
      occupancy_(static_cast<std::uint64_t>(params.get_int("occupancy", 1))),
      broadcast_(params.get_bool("broadcast", true)) {
  if (occupancy_ == 0) {
    throw liberty::ElaborationError("ccl.bus '" + name +
                                    "': occupancy must be >= 1");
  }
}

void Bus::init() { delivered_.assign(out_.width(), false); }

void Bus::cycle_start(Cycle c) {
  winner_ = -1;
  decided_ = false;
  if (busy_) {
    stats().counter("busy_cycles").inc();
    if (c >= deliver_at_) {
      for (std::size_t o = 0; o < out_.width(); ++o) {
        if (!delivered_[o] && wants(o)) {
          out_.send_at(o, current_);
        } else {
          out_.idle(o);
        }
      }
      return;
    }
  }
  for (std::size_t o = 0; o < out_.width(); ++o) out_.idle(o);
}

void Bus::react() {
  if (busy_) {
    for (std::size_t i = 0; i < in_.width(); ++i) in_.nack(i);
    return;
  }
  if (decided_) return;
  for (std::size_t i = 0; i < in_.width(); ++i) {
    if (!in_.forward_known(i)) return;  // wait for every offer
  }
  decided_ = true;
  std::vector<std::size_t> req;
  for (std::size_t i = 0; i < in_.width(); ++i) {
    if (in_.has_data(i)) req.push_back(i);
  }
  if (req.size() > 1) stats().counter("conflicts").inc();
  if (!req.empty()) {
    winner_ = static_cast<int>(req.front());
    for (const std::size_t i : req) {
      if (i >= rr_) {
        winner_ = static_cast<int>(i);
        break;
      }
    }
  }
  for (std::size_t i = 0; i < in_.width(); ++i) {
    if (static_cast<int>(i) == winner_) {
      in_.ack(i);  // latched into the bus this cycle
    } else {
      in_.nack(i);
    }
  }
}

bool Bus::wants(std::size_t o) const {
  if (broadcast_) return true;
  const auto* payload =
      std::get_if<std::shared_ptr<const Payload>>(&current_.raw());
  if (payload != nullptr) {
    if (const auto* r = dynamic_cast<const pcl::Routable*>(payload->get())) {
      return r->route_key() % out_.width() == o;
    }
  }
  return o == 0;
}

void Bus::end_of_cycle() {
  if (busy_) {
    bool all = true;
    for (std::size_t o = 0; o < out_.width(); ++o) {
      if (out_.transferred(o)) delivered_[o] = true;
      if (wants(o) && !delivered_[o]) all = false;
    }
    if (all) {
      busy_ = false;
      stats().counter("transactions").inc();
    }
    return;
  }
  if (winner_ >= 0 && in_.transferred(static_cast<std::size_t>(winner_))) {
    current_ = in_.data(static_cast<std::size_t>(winner_));
    busy_ = true;
    deliver_at_ = now() + occupancy_;
    delivered_.assign(out_.width(), false);
    rr_ = (static_cast<std::size_t>(winner_) + 1) % in_.width();
  }
}

void Bus::declare_deps(Deps& deps) const {
  deps.state_only(out_);
  deps.depends(in_, {liberty::core::fwd(in_)});
}

void Bus::save_state(liberty::core::StateWriter& w) const {
  // winner_/decided_ are per-cycle scratch (reset in cycle_start); the
  // persistent state is the arbitration pointer and the in-flight
  // transaction, whose Value only exists while the bus is busy.
  w.put_size(rr_);
  w.put_bool(busy_);
  if (busy_) {
    w.put(current_);
    w.put_u64(deliver_at_);
    for (std::size_t o = 0; o < delivered_.size(); ++o) {
      w.put_bool(delivered_[o]);
    }
  }
}

void Bus::load_state(liberty::core::StateReader& r) {
  rr_ = r.get_size();
  busy_ = r.get_bool();
  delivered_.assign(out_.width(), false);
  if (busy_) {
    current_ = r.get();
    deliver_at_ = r.get_u64();
    for (std::size_t o = 0; o < delivered_.size(); ++o) {
      delivered_[o] = r.get_bool();
    }
  } else {
    current_ = liberty::Value();
    deliver_at_ = 0;
  }
}

}  // namespace liberty::ccl
