// Property-style tests: randomized netlists must behave identically under
// both schedulers; support-library invariants hold across parameter
// sweeps.
#include <gtest/gtest.h>

#include <map>

#include "liberty/core/simulator.hpp"
#include "liberty/pcl/pcl.hpp"
#include "liberty/support/rng.hpp"
#include "liberty/support/stats.hpp"
#include "test_util.hpp"

namespace {

using liberty::Rng;
using liberty::Value;
using liberty::core::Netlist;
using liberty::core::Params;
using liberty::core::SchedulerKind;
using liberty::core::Simulator;
using namespace liberty::pcl;
using liberty::test::params;

// ---------------------------------------------------------------------------
// Random netlists: generate a layered dataflow graph from a seed and check
// that both schedulers produce bit-identical transfer counts and sink
// streams.  This is the strongest guarantee behind the paper's ref-[22]
// optimization: the analysis may reorder evaluation, never change results.
// ---------------------------------------------------------------------------

struct NetSignature {
  std::uint64_t transfers = 0;
  std::vector<std::int64_t> stream;
};

NetSignature run_random_net(std::uint64_t seed, SchedulerKind kind,
                            unsigned threads = 0) {
  Rng rng(seed);
  Netlist nl;

  // Layer 0: 2-4 sources.
  const std::size_t n_src = 2 + rng.below(3);
  std::vector<liberty::core::Module*> frontier;
  for (std::size_t i = 0; i < n_src; ++i) {
    frontier.push_back(&nl.make<Source>(
        "src" + std::to_string(i),
        params({{"kind", "counter"},
                {"period", static_cast<int>(1 + rng.below(3))},
                {"count", static_cast<int>(20 + rng.below(60))},
                {"seed", static_cast<int>(seed + i)}})));
  }

  // 2-4 middle layers of randomly chosen primitives.
  const std::size_t layers = 2 + rng.below(3);
  for (std::size_t l = 0; l < layers; ++l) {
    std::vector<liberty::core::Module*> next;
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      const std::string name = "m" + std::to_string(l) + "_" +
                               std::to_string(i);
      liberty::core::Module* m = nullptr;
      switch (rng.below(4)) {
        case 0:
          m = &nl.make<Queue>(
              name, params({{"depth", static_cast<int>(1 + rng.below(6))}}));
          break;
        case 1:
          m = &nl.make<Delay>(
              name,
              params({{"latency", static_cast<int>(1 + rng.below(4))}}));
          break;
        case 2:
          m = &nl.make<Buffer>(
              name,
              params({{"capacity", static_cast<int>(2 + rng.below(6))}}));
          break;
        default:
          m = &nl.make<Probe>(name, Params());
          break;
      }
      nl.connect(frontier[i]->out("out"), m->in("in"));
      next.push_back(m);
    }
    // Occasionally merge two lanes through an arbiter.
    if (next.size() >= 2 && rng.chance(0.5)) {
      auto& arb = nl.make<Arbiter>("arb" + std::to_string(l), Params());
      nl.connect(next[0]->out("out"), arb.in("in"));
      nl.connect(next[1]->out("out"), arb.in("in"));
      std::vector<liberty::core::Module*> merged{&arb};
      for (std::size_t k = 2; k < next.size(); ++k) merged.push_back(next[k]);
      next = merged;
    }
    frontier = next;
  }

  // Terminal sinks.
  NetSignature sig;
  std::vector<Sink*> sinks;
  for (std::size_t i = 0; i < frontier.size(); ++i) {
    auto& sink = nl.make<Sink>("sink" + std::to_string(i), Params());
    nl.connect(frontier[i]->out("out"), sink.in("in"));
    sinks.push_back(&sink);
  }
  nl.finalize();

  std::vector<std::int64_t>* stream = &sig.stream;
  for (auto* s : sinks) {
    s->set_consume_hook([stream](const Value& v, liberty::core::Cycle) {
      stream->push_back(v.is_int() ? v.as_int() : -1);
    });
  }

  Simulator sim(nl, kind, threads);
  sim.run(800);
  for (const auto& c : nl.connections()) sig.transfers += c->transfer_count();
  return sig;
}

class RandomNet : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomNet, SchedulersBitIdentical) {
  const NetSignature dyn = run_random_net(GetParam(), SchedulerKind::Dynamic);
  const NetSignature sta = run_random_net(GetParam(), SchedulerKind::Static);
  EXPECT_EQ(dyn.transfers, sta.transfers);
  EXPECT_EQ(dyn.stream, sta.stream);
  EXPECT_GT(dyn.transfers, 0u);
  for (const unsigned threads : {1u, 2u, 8u}) {
    const NetSignature par =
        run_random_net(GetParam(), SchedulerKind::Parallel, threads);
    EXPECT_EQ(dyn.transfers, par.transfers) << "parallel/" << threads;
    EXPECT_EQ(dyn.stream, par.stream) << "parallel/" << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomNet,
                         ::testing::Values(1u, 7u, 42u, 99u, 1234u, 5150u,
                                           8086u, 68000u, 271828u, 314159u));

// ---------------------------------------------------------------------------
// Conservation: whatever enters a lossless network leaves it.
// ---------------------------------------------------------------------------

class Conservation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Conservation, NoItemCreatedOrLost) {
  const auto run = [&](SchedulerKind kind, unsigned threads) {
    Rng rng(GetParam());
    Netlist nl;
    const int count = 30 + static_cast<int>(rng.below(50));
    auto& src = nl.make<Source>(
        "src", params({{"kind", "counter"}, {"period", 1}, {"count", count}}));
    auto& dm = nl.make<Demux>("dm", Params());
    auto& arb = nl.make<Arbiter>("arb", Params());
    auto& sink = nl.make<Sink>("sink", Params());
    const std::size_t fan = 2 + rng.below(3);
    dm.set_selector([fan](const Value& v) {
      return static_cast<std::size_t>(v.as_int()) % fan;
    });
    nl.connect(src.out("out"), dm.in("in"));
    for (std::size_t i = 0; i < fan; ++i) {
      auto& q = nl.make<Queue>(
          "q" + std::to_string(i),
          params({{"depth", static_cast<int>(1 + rng.below(5))}}));
      nl.connect_at(dm.out("out"), i, q.in("in"), 0);
      nl.connect(q.out("out"), arb.in("in"));
    }
    nl.connect(arb.out("out"), sink.in("in"));
    nl.finalize();
    Simulator sim(nl, kind, threads);
    sim.run(2000);
    EXPECT_EQ(sink.consumed(), static_cast<std::uint64_t>(count))
        << "scheduler " << sim.scheduler().kind_name();
  };
  run(SchedulerKind::Dynamic, 0);
  run(SchedulerKind::Static, 0);
  run(SchedulerKind::Parallel, 2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Conservation,
                         ::testing::Values(3u, 17u, 23u, 171u, 7777u));

// ---------------------------------------------------------------------------
// Support-library invariants
// ---------------------------------------------------------------------------

TEST(RngProps, DeterministicAndReseedable) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a.next(), b.next());
  a.reseed(42);
  Rng c(42);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(a.next(), c.next());
}

TEST(RngProps, BelowStaysInRange) {
  Rng r(7);
  for (const std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 2000; ++i) ASSERT_LT(r.below(bound), bound);
  }
}

TEST(RngProps, UniformIsRoughlyUniform) {
  Rng r(11);
  double sum = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

TEST(StatsProps, HistogramQuantilesOrdered) {
  liberty::Histogram h(64, 1.0);
  Rng r(5);
  for (int i = 0; i < 5000; ++i) h.add(static_cast<double>(r.below(60)));
  EXPECT_LE(h.quantile(0.25), h.quantile(0.5));
  EXPECT_LE(h.quantile(0.5), h.quantile(0.95));
  EXPECT_EQ(h.summary().count(), 5000u);
}

TEST(StatsProps, AccumulatorMinMaxMean) {
  liberty::Accumulator a;
  for (const double x : {3.0, -1.0, 7.0, 0.0}) a.add(x);
  EXPECT_EQ(a.min(), -1.0);
  EXPECT_EQ(a.max(), 7.0);
  EXPECT_DOUBLE_EQ(a.mean(), 9.0 / 4.0);
}

TEST(ValueProps, EqualityAndCoercions) {
  EXPECT_EQ(Value(std::int64_t{5}), Value(std::int64_t{5}));
  EXPECT_FALSE(Value(std::int64_t{5}) == Value(std::int64_t{6}));
  EXPECT_EQ(Value(true).as_int(), 1);
  EXPECT_EQ(Value(std::int64_t{0}).as_bool(), false);
  EXPECT_DOUBLE_EQ(Value(std::int64_t{3}).as_real(), 3.0);
  EXPECT_THROW(Value("x").as_int(), liberty::SimulationError);
  EXPECT_TRUE(Value().is_token());
}

TEST(ValueProps, PayloadRoundTrip) {
  const Value v = Value::make<liberty::pcl::Stamped>(Value(7), 123);
  const auto p = v.as<liberty::pcl::Stamped>();
  EXPECT_EQ(p->inner.as_int(), 7);
  EXPECT_EQ(p->born, 123u);
  EXPECT_EQ(v.try_as<liberty::pcl::MemReq>(), nullptr);
  EXPECT_THROW((void)v.as<liberty::pcl::MemReq>(), liberty::SimulationError);
}

TEST(ParamsProps, UnusedParametersDetected) {
  liberty::core::Params p;
  p.set("depth", 4).set("depht", 8);  // typo
  (void)p.get_int("depth", 0);
  const auto unused = p.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "depht");
}

TEST(ParamsProps, RegistryRejectsUnknownParams) {
  EXPECT_THROW(liberty::test::registry().instantiate(
                   "pcl.queue", "q",
                   liberty::test::params({{"depht", 4}})),
               liberty::ElaborationError);
}

TEST(RegistryProps, CatalogListsEveryLibrary) {
  const auto list = liberty::test::registry().list();
  bool has_pcl = false;
  for (const auto* info : list) {
    if (info->name.rfind("pcl.", 0) == 0) has_pcl = true;
  }
  EXPECT_TRUE(has_pcl);
  EXPECT_GE(list.size(), 13u);
}

}  // namespace
