// ChromeTraceWriter: streaming Chrome trace-event JSON exporter.
//
// Produces a `{"traceEvents":[...]}` document loadable by Perfetto /
// chrome://tracing.  Two synthetic "processes" organize the timeline:
//
//   pid 1  "liberty kernel"   tid 0 carries one "X" (complete) slice per
//                             scheduler phase per cycle; wave slices nest
//                             inside the resolve phase; tid 100+lane
//                             carries per-lane busy slices of the
//                             ParallelScheduler pool.
//   pid 2  "transfers"        one flow-event pair ("s" producer ->
//                             "f" consumer, tid = ModuleId) per completed
//                             channel transfer, reusing the kernel's
//                             TransferObserver seam.
//
// Timestamps are microseconds since writer construction; phase/wave/lane
// slices arrive from the kernel as (end, duration) and are emitted with
// ts = now - dur.  The writer is main-thread-only: it is installed as the
// *sink* of a CycleProfiler (which never forwards the worker-thread
// on_module_batch callback) or directly as the probe of a single-threaded
// scheduler, and transfer observers run during the serialized commit
// phase.
#pragma once

#include <chrono>
#include <cstdint>
#include <ostream>

#include "liberty/core/probe.hpp"
#include "liberty/obs/json.hpp"

namespace liberty::core {
class Simulator;
}  // namespace liberty::core

namespace liberty::obs {

class ChromeTraceWriter : public liberty::core::KernelProbe {
 public:
  explicit ChromeTraceWriter(std::ostream& os);
  ~ChromeTraceWriter() override;

  ChromeTraceWriter(const ChromeTraceWriter&) = delete;
  ChromeTraceWriter& operator=(const ChromeTraceWriter&) = delete;

  /// Install a transfer observer on `sim` that emits one flow-event pair
  /// per completed transfer, plus thread-name metadata naming every module
  /// of the netlist.  The simulator must outlive this writer's last cycle.
  void attach_transfers(liberty::core::Simulator& sim);

  /// Close the traceEvents array and the document.  Idempotent; also run
  /// by the destructor.  No events may be emitted afterwards.
  void finish();

  [[nodiscard]] std::uint64_t events_emitted() const noexcept {
    return events_;
  }

  // KernelProbe ------------------------------------------------------------
  void on_phase(liberty::core::SchedPhase phase, liberty::core::Cycle c,
                double seconds) override;
  void on_wave(liberty::core::Cycle c, std::size_t wave, std::size_t clusters,
               double seconds) override;
  void on_lane(liberty::core::Cycle c, std::size_t wave, unsigned lane,
               double busy_seconds) override;

 private:
  [[nodiscard]] double now_us() const;
  void emit(const char* json);
  void emit_thread_name(int pid, std::uint64_t tid, const char* name);

  std::ostream& os_;
  JsonWriter writer_;
  std::chrono::steady_clock::time_point t0_;
  bool finished_ = false;
  std::uint64_t events_ = 0;
  std::uint64_t flow_ids_ = 0;
  // Lanes whose thread_name metadata has been emitted (bitmask; lanes
  // beyond 63 just go unnamed, which Perfetto renders as "tid N").
  std::uint64_t named_lanes_ = 0;
};

}  // namespace liberty::obs
