file(REMOVE_RECURSE
  "CMakeFiles/lss_run.dir/lss_run.cpp.o"
  "CMakeFiles/lss_run.dir/lss_run.cpp.o.d"
  "lss_run"
  "lss_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lss_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
