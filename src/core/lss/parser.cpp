#include "liberty/core/lss/parser.hpp"

#include <fstream>
#include <sstream>

#include "liberty/core/lss/lexer.hpp"
#include "liberty/support/error.hpp"

namespace liberty::core::lss {

namespace {

class Parser {
 public:
  Parser(std::vector<Token> toks, std::string file)
      : toks_(std::move(toks)), file_(std::move(file)) {}

  Spec parse_spec() {
    Spec spec;
    while (!at(Tok::End)) spec.top.push_back(parse_stmt(/*in_module=*/false));
    return spec;
  }

 private:
  [[nodiscard]] const Token& cur() const { return toks_[pos_]; }
  [[nodiscard]] bool at(Tok t) const { return cur().kind == t; }

  const Token& advance() { return toks_[pos_++]; }

  const Token& expect(Tok t, const char* what) {
    if (!at(t)) {
      fail(std::string("expected ") + std::string(tok_name(t)) + " (" + what +
           "), found " + std::string(tok_name(cur().kind)));
    }
    return advance();
  }

  [[noreturn]] void fail(const std::string& msg) const {
    throw liberty::SpecError(file_, cur().line, cur().col, msg);
  }

  [[nodiscard]] SourceLoc loc() const {
    return SourceLoc{file_, cur().line, cur().col};
  }

  // --- statements ---------------------------------------------------------

  StmtPtr parse_stmt(bool in_module) {
    switch (cur().kind) {
      case Tok::KwParam: return parse_param();
      case Tok::KwInstance: return parse_instance();
      case Tok::KwConnect: return parse_connect();
      case Tok::KwFor: return parse_for(in_module);
      case Tok::KwIf: return parse_if(in_module);
      case Tok::KwModule:
        if (in_module) fail("module definitions cannot nest");
        return parse_module();
      case Tok::KwInport:
      case Tok::KwOutport:
        if (!in_module) fail("port declarations only appear inside modules");
        return parse_port();
      case Tok::KwExport:
        if (!in_module) fail("'export' only appears inside modules");
        return parse_export();
      default:
        fail("expected a statement, found " +
             std::string(tok_name(cur().kind)));
    }
  }

  std::vector<StmtPtr> parse_block(bool in_module) {
    expect(Tok::LBrace, "block");
    std::vector<StmtPtr> body;
    while (!at(Tok::RBrace)) body.push_back(parse_stmt(in_module));
    expect(Tok::RBrace, "block end");
    return body;
  }

  StmtPtr parse_param() {
    auto s = std::make_unique<Stmt>();
    s->kind = Stmt::Kind::Param;
    s->loc = loc();
    expect(Tok::KwParam, "param");
    s->param.name = expect(Tok::Ident, "parameter name").text;
    expect(Tok::Assign, "parameter default");
    s->param.default_value = parse_expr();
    expect(Tok::Semi, "parameter declaration");
    return s;
  }

  /// Accept an identifier, treating the keyword `in` as the identifier
  /// "in": it is the conventional name of input ports, and the for-loop
  /// context that needs the keyword never appears where a name does.
  std::string expect_name(const char* what) {
    if (at(Tok::KwIn)) {
      advance();
      return "in";
    }
    return expect(Tok::Ident, what).text;
  }

  std::vector<RefSeg> parse_name_segs() {
    std::vector<RefSeg> segs;
    while (true) {
      RefSeg seg;
      seg.ident = expect_name("name segment");
      if (at(Tok::LBracket)) {
        advance();
        seg.index = parse_expr();
        expect(Tok::RBracket, "index");
      }
      segs.push_back(std::move(seg));
      if (!at(Tok::Dot)) break;
      advance();
    }
    return segs;
  }

  std::string parse_template_path() {
    std::string path = expect(Tok::Ident, "template name").text;
    while (at(Tok::Dot)) {
      advance();
      path += '.';
      path += expect(Tok::Ident, "template name segment").text;
    }
    return path;
  }

  StmtPtr parse_instance() {
    auto s = std::make_unique<Stmt>();
    s->kind = Stmt::Kind::Instance;
    s->loc = loc();
    expect(Tok::KwInstance, "instance");
    s->instance.name = parse_name_segs();
    expect(Tok::Colon, "instance template");
    s->instance.template_path = parse_template_path();
    if (at(Tok::LBrace)) {
      advance();
      while (!at(Tok::RBrace)) {
        std::string pname = expect_name("parameter name");
        expect(Tok::Assign, "parameter value");
        s->instance.args.emplace_back(std::move(pname), parse_expr());
        expect(Tok::Semi, "parameter assignment");
      }
      expect(Tok::RBrace, "instance body");
    }
    expect(Tok::Semi, "instance declaration");
    return s;
  }

  Ref parse_ref() {
    Ref r;
    r.loc = loc();
    r.segs = parse_name_segs();
    if (r.segs.size() < 2) {
      throw liberty::SpecError(r.loc.file, r.loc.line, r.loc.col,
                               "reference must name instance.port");
    }
    return r;
  }

  StmtPtr parse_connect() {
    auto s = std::make_unique<Stmt>();
    s->kind = Stmt::Kind::Connect;
    s->loc = loc();
    expect(Tok::KwConnect, "connect");
    s->connect.from = parse_ref();
    expect(Tok::Arrow, "connection");
    s->connect.to = parse_ref();
    expect(Tok::Semi, "connect statement");
    return s;
  }

  StmtPtr parse_port() {
    auto s = std::make_unique<Stmt>();
    s->kind = Stmt::Kind::Port;
    s->loc = loc();
    s->port.is_input = at(Tok::KwInport);
    advance();
    s->port.name = expect_name("port name");
    expect(Tok::Semi, "port declaration");
    return s;
  }

  StmtPtr parse_export() {
    auto s = std::make_unique<Stmt>();
    s->kind = Stmt::Kind::Export;
    s->loc = loc();
    expect(Tok::KwExport, "export");
    s->exp.inner = parse_ref();
    expect(Tok::KwAs, "export alias");
    s->exp.alias = expect_name("exported port name");
    expect(Tok::Semi, "export statement");
    return s;
  }

  StmtPtr parse_for(bool in_module) {
    auto s = std::make_unique<Stmt>();
    s->kind = Stmt::Kind::For;
    s->loc = loc();
    expect(Tok::KwFor, "for");
    s->for_stmt.var = expect(Tok::Ident, "loop variable").text;
    expect(Tok::KwIn, "loop range");
    s->for_stmt.begin = parse_expr();
    expect(Tok::DotDot, "loop range");
    s->for_stmt.end = parse_expr();
    s->for_stmt.body = parse_block(in_module);
    return s;
  }

  StmtPtr parse_if(bool in_module) {
    auto s = std::make_unique<Stmt>();
    s->kind = Stmt::Kind::If;
    s->loc = loc();
    expect(Tok::KwIf, "if");
    s->if_stmt.cond = parse_expr();
    s->if_stmt.then_body = parse_block(in_module);
    if (at(Tok::KwElse)) {
      advance();
      if (at(Tok::KwIf)) {
        s->if_stmt.else_body.push_back(parse_if(in_module));
      } else {
        s->if_stmt.else_body = parse_block(in_module);
      }
    }
    return s;
  }

  StmtPtr parse_module() {
    auto s = std::make_unique<Stmt>();
    s->kind = Stmt::Kind::Module;
    s->loc = loc();
    expect(Tok::KwModule, "module");
    s->module_def.name = expect(Tok::Ident, "module name").text;
    s->module_def.body = parse_block(/*in_module=*/true);
    // Optional trailing semicolon after a module definition.
    if (at(Tok::Semi)) advance();
    return s;
  }

  // --- expressions (precedence climbing) -----------------------------------

  ExprPtr parse_expr() { return parse_ternary(); }

  ExprPtr parse_ternary() {
    ExprPtr cond = parse_or();
    if (!at(Tok::Question)) return cond;
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::Ternary;
    e->loc = loc();
    advance();
    e->a = std::move(cond);
    e->b = parse_expr();
    expect(Tok::Colon, "ternary");
    e->c = parse_expr();
    return e;
  }

  ExprPtr parse_or() {
    ExprPtr lhs = parse_and();
    while (at(Tok::OrOr)) {
      auto e = make_bin(BinOp::Or, std::move(lhs));
      advance();
      e->b = parse_and();
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprPtr parse_and() {
    ExprPtr lhs = parse_cmp();
    while (at(Tok::AndAnd)) {
      auto e = make_bin(BinOp::And, std::move(lhs));
      advance();
      e->b = parse_cmp();
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprPtr parse_cmp() {
    ExprPtr lhs = parse_add();
    while (true) {
      BinOp op;
      switch (cur().kind) {
        case Tok::Eq: op = BinOp::Eq; break;
        case Tok::Ne: op = BinOp::Ne; break;
        case Tok::Lt: op = BinOp::Lt; break;
        case Tok::Le: op = BinOp::Le; break;
        case Tok::Gt: op = BinOp::Gt; break;
        case Tok::Ge: op = BinOp::Ge; break;
        default: return lhs;
      }
      auto e = make_bin(op, std::move(lhs));
      advance();
      e->b = parse_add();
      lhs = std::move(e);
    }
  }

  ExprPtr parse_add() {
    ExprPtr lhs = parse_mul();
    while (at(Tok::Plus) || at(Tok::Minus)) {
      const BinOp op = at(Tok::Plus) ? BinOp::Add : BinOp::Sub;
      auto e = make_bin(op, std::move(lhs));
      advance();
      e->b = parse_mul();
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprPtr parse_mul() {
    ExprPtr lhs = parse_unary();
    while (at(Tok::Star) || at(Tok::Slash) || at(Tok::Percent)) {
      BinOp op = BinOp::Mul;
      if (at(Tok::Slash)) op = BinOp::Div;
      if (at(Tok::Percent)) op = BinOp::Mod;
      auto e = make_bin(op, std::move(lhs));
      advance();
      e->b = parse_unary();
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprPtr parse_unary() {
    if (at(Tok::Minus) || at(Tok::Not)) {
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::Unary;
      e->loc = loc();
      e->un_op = at(Tok::Minus) ? UnOp::Neg : UnOp::Not;
      advance();
      e->a = parse_unary();
      return e;
    }
    return parse_primary();
  }

  ExprPtr parse_primary() {
    auto e = std::make_unique<Expr>();
    e->loc = loc();
    switch (cur().kind) {
      case Tok::Int:
        e->kind = Expr::Kind::Literal;
        e->literal = liberty::Value(advance().int_val);
        return e;
      case Tok::Real:
        e->kind = Expr::Kind::Literal;
        e->literal = liberty::Value(advance().real_val);
        return e;
      case Tok::String:
        e->kind = Expr::Kind::Literal;
        e->literal = liberty::Value(advance().text);
        return e;
      case Tok::KwTrue:
        advance();
        e->kind = Expr::Kind::Literal;
        e->literal = liberty::Value(true);
        return e;
      case Tok::KwFalse:
        advance();
        e->kind = Expr::Kind::Literal;
        e->literal = liberty::Value(false);
        return e;
      case Tok::Ident:
        e->kind = Expr::Kind::Var;
        e->var = advance().text;
        return e;
      case Tok::LParen: {
        advance();
        ExprPtr inner = parse_expr();
        expect(Tok::RParen, "parenthesized expression");
        return inner;
      }
      default:
        fail("expected an expression, found " +
             std::string(tok_name(cur().kind)));
    }
  }

  ExprPtr make_bin(BinOp op, ExprPtr lhs) {
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::Binary;
    e->loc = loc();
    e->bin_op = op;
    e->a = std::move(lhs);
    return e;
  }

  std::vector<Token> toks_;
  std::string file_;
  std::size_t pos_ = 0;
};

}  // namespace

Spec parse(std::string_view source, const std::string& filename) {
  Parser p(tokenize(source, filename), filename);
  return p.parse_spec();
}

Spec parse_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw liberty::SpecError(path, 0, 0, "cannot open specification file");
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse(ss.str(), path);
}

}  // namespace liberty::core::lss
