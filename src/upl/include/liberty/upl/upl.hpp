// Uniprocessor Library (UPL) — umbrella header and registration.
//
// "This consists of the micro-architectural elements of general purpose and
// application specific processors." (§3)
#pragma once

#include "liberty/core/registry.hpp"
#include "liberty/upl/cache.hpp"
#include "liberty/upl/isa.hpp"
#include "liberty/upl/mem_protocol.hpp"
#include "liberty/upl/memctl.hpp"
#include "liberty/upl/ooo_core.hpp"
#include "liberty/upl/pipeline.hpp"
#include "liberty/upl/predictors.hpp"
#include "liberty/upl/simple_cpu.hpp"
#include "liberty/upl/workloads.hpp"

namespace liberty::upl {

/// Register every UPL template ("upl.*") with `registry`.
void register_upl(liberty::core::ModuleRegistry& registry);

}  // namespace liberty::upl
