// VcdTracer: dump per-connection transfer activity as a VCD waveform.
//
// The paper anticipates "an interactive system visualizer" on top of the
// constructed simulator.  Netlist::write_dot gives the structure; this
// gives the activity: one wire per connection, high on every cycle the
// connection completes a transfer, loadable in any VCD viewer (GTKWave
// etc.).  Time unit = one simulated cycle.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "liberty/core/netlist.hpp"
#include "liberty/core/simulator.hpp"

namespace liberty::core {

class VcdTracer {
 public:
  /// Writes the VCD header for `netlist` immediately; transfer events are
  /// recorded once attach()ed to a simulator.
  VcdTracer(const Netlist& netlist, std::ostream& os);

  /// Register with the simulator's transfer-observer hook.
  void attach(Simulator& sim);

  /// Emit the final pending time step (call after the run).
  void finish();

 private:
  void on_transfer(const Connection& c, Cycle cycle);
  void emit_cycle();
  [[nodiscard]] static std::string code_for(std::size_t index);

  std::ostream& os_;
  std::vector<std::string> codes_;  // per connection id
  std::vector<bool> prev_;
  std::vector<bool> cur_;
  Cycle cur_cycle_ = 0;
  bool started_ = false;
};

}  // namespace liberty::core
