#include "liberty/support/strings.hpp"

#include <cctype>

namespace liberty {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const auto pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i != 0) out += sep;
    out += items[i];
  }
  return out;
}

bool is_identifier(std::string_view s) {
  if (s.empty()) return false;
  const auto head = static_cast<unsigned char>(s.front());
  if (!(std::isalpha(head) || head == '_')) return false;
  for (char c : s.substr(1)) {
    const auto u = static_cast<unsigned char>(c);
    if (!(std::isalnum(u) || u == '_')) return false;
  }
  return true;
}

}  // namespace liberty
