file(REMOVE_RECURSE
  "CMakeFiles/grid.dir/grid.cpp.o"
  "CMakeFiles/grid.dir/grid.cpp.o.d"
  "grid"
  "grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
