# Empty dependencies file for refinement.
# This may be replaced when dependencies are built.
