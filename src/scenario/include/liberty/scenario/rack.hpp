// The flagship rack-scale scenario (docs/scenarios.md).
//
// rack_netspec() composes every library in the repository into one
// parameterized simulated rack, expressed as a testing::NetSpec so the
// identical system elaborates under all four schedulers, snapshots,
// bisects, and fuzzes like any other differential-test target:
//
//   * per node: a trace-driven host (TraceSource/TraceSink + a
//     pcl::MemoryArray as host memory), the NIL's programmable NIC
//     (LRISC firmware core + DMA/MAC assist bound through the MMIO seam),
//     and a nil::FabricAdapter onto the rack fabric;
//   * per node: a multicore compute plane — upl::SimpleCpu cores behind
//     mpl::OrderingCtl (SC or TSO) and mpl::DirCache L1s, exchanging
//     directory-protocol CohMsg traffic over a ccl::Bus with the node's
//     mpl::DirectoryCtl home, plus one behavioral upl::OoOCore running the
//     same worker program at a different abstraction level (§2.2);
//   * rack-wide: a cols x rows ccl wormhole mesh (the same wiring as
//     ccl::build_mesh, spelled with pinned NetSpec endpoints).
//
// This is the paper's thesis exercised end to end: five libraries, three
// abstraction levels, one structurally composed system.
#pragma once

#include <cstdint>
#include <string>

#include "liberty/core/netlist.hpp"
#include "liberty/core/registry.hpp"
#include "liberty/scenario/trace.hpp"
#include "liberty/testing/netspec.hpp"

namespace liberty::scenario {

/// Shape of one rack.  Node count is mesh_cols * mesh_rows (>= 2 so
/// traffic has somewhere to go).
struct RackConfig {
  std::size_t mesh_cols = 2;
  std::size_t mesh_rows = 2;
  std::size_t cores = 2;        // coherent SimpleCpu cores per node
  bool with_ooo = true;         // one behavioral OoO core per node
  std::string ordering = "tso";  // sc | tso
  std::size_t vcs = 2;          // fabric virtual channels
  std::int64_t link_latency = 1;
  std::size_t worker_iters = 32;  // read-modify-write loop length per core

  // Workload: `trace` text if nonempty, else a synthetic trace from
  // (seed, requests_per_node).
  std::string trace;
  std::uint64_t seed = 1;
  std::size_t requests_per_node = 4;

  liberty::core::Cycle cycles = 20000;

  [[nodiscard]] std::size_t nodes() const noexcept {
    return mesh_cols * mesh_rows;
  }
  /// Short identity tag for reports ("rack-2x2c2-tso-s1").
  [[nodiscard]] std::string tag() const;
};

/// The rack as a rebuildable spec.  Throws ElaborationError on a bad
/// config (fewer than 2 nodes, unknown ordering mode, ...).
[[nodiscard]] liberty::testing::NetSpec rack_netspec(const RackConfig& cfg);

/// The LRISC read-modify-write worker run by the compute planes; exposed
/// for tests that want to cross-check against the functional emulator.
[[nodiscard]] std::string worker_program(std::size_t node, std::size_t core,
                                         std::size_t cores,
                                         std::size_t iters);

/// A randomized small rack for the seeded fuzz family: geometry, core
/// count, ordering mode, VC count, and workload all derive from `seed`.
[[nodiscard]] liberty::testing::NetSpec fuzz_rack_netspec(std::uint64_t seed);

/// Aggregated Orion energy and thermal figures for a simulated rack.
struct RackPowerReport {
  double router_dynamic_pj = 0.0;
  double router_leakage_pj = 0.0;
  double router_total_pj = 0.0;
  double peak_temperature_c = 0.0;  // hottest router, lifetime peak
  double max_temperature_c = 0.0;   // hottest router, end of run
};

/// Collect the report from an elaborated rack netlist (by module name, so
/// it works on any netlist built from rack_netspec(cfg)).
[[nodiscard]] RackPowerReport rack_power_report(
    const liberty::core::Netlist& netlist, const RackConfig& cfg);

/// Register scenario.trace_source / scenario.trace_sink.
void register_scenario(liberty::core::ModuleRegistry& registry);

/// Register every library a rack needs: pcl, upl, ccl, mpl, nil, scenario.
void register_rack_libraries(liberty::core::ModuleRegistry& registry);

}  // namespace liberty::scenario
