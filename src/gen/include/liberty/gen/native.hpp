// liberty::gen — true native codegen (the fifth scheduler).
//
// Where CompiledScheduler lowers the netlist to bytecode and interprets
// it, NativeScheduler emits one specialized C++ translation unit for the
// netlist, drives the host toolchain to compile it into a shared object,
// dlopens the result, and executes the eligible part of the netlist as
// straight machine code over POD state — no Value variants, no deques, no
// virtual dispatch, no per-channel objects on the fast path.  Everything
// the emitter has no recipe for (user subclasses, gated or multi-node
// SCCs, fanout topologies) stays on the bytecode tapes of the base class,
// in the same run, so any netlist still executes and the two halves stay
// bit-identical with the dynamic reference.
//
// The whole facility sits behind the LIBERTY_NATIVE_CODEGEN CMake option
// (default OFF).  In an OFF build this header still compiles, the options
// struct still exists (front ends can parse their flags unconditionally),
// native_available() returns false, register_native_scheduler() is a
// no-op, and SchedulerKind::Native degrades to the compiled bytecode
// backend with a one-time notice (see core/simulator.hpp).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "liberty/gen/compiled_scheduler.hpp"

namespace liberty::obs {
class MetricsRegistry;
}

namespace liberty::gen {

/// Process-wide knobs for the native backend, read at scheduler
/// construction (lss_run --codegen-cache-dir / --dump-native-src map
/// straight onto these; tests adjust them around a scope).
struct NativeOptions {
  /// Artifact cache directory.  Resolution order: this field, the
  /// LIBERTY_NATIVE_CACHE_DIR environment variable, then
  /// <system-temp>/liberty-native-cache.
  std::string cache_dir;
  /// When nonempty, every generated translation unit is also written to
  /// this path (inspection / golden diffing).
  std::string dump_source_path;
  /// Optimization level handed to the host compiler (-O<n>).  Overridden
  /// by the LIBERTY_NATIVE_OPT environment variable when set.  Part of the
  /// cache key.
  int backend_opt = 2;
};
[[nodiscard]] NativeOptions& native_options();

/// True when this build carries the native backend
/// (-DLIBERTY_NATIVE_CODEGEN=ON).  Tests use this to skip cleanly.
[[nodiscard]] bool native_available() noexcept;

/// Number of host-compiler invocations this process has made (cache hits
/// do not count; the cache-hygiene test asserts it stays flat across a
/// second elaboration of the same netlist).
[[nodiscard]] std::uint64_t native_compile_invocations() noexcept;

// Hostile-toolchain counters (docs/codegen.md, "Cache hygiene").  All read
// zero in -DLIBERTY_NATIVE_CODEGEN=OFF builds and count process-wide.

/// Cached artifacts reused after passing manifest validation.
[[nodiscard]] std::uint64_t native_cache_hits() noexcept;
/// Cached artifacts renamed aside (truncated, content-hash mismatch, stale
/// ABI, missing manifest, or undlopenable) instead of being trusted.
[[nodiscard]] std::uint64_t native_cache_quarantined() noexcept;
/// Compiler invocations that were retries of a failed/timed-out attempt.
[[nodiscard]] std::uint64_t native_compile_retries() noexcept;
/// Compiler invocations killed at the wall-clock deadline
/// (LIBERTY_NATIVE_COMPILE_TIMEOUT_MS, default 60000).
[[nodiscard]] std::uint64_t native_compile_timeouts() noexcept;

/// Export the stable gen.native.cache.* counters (hits, quarantined,
/// compile_retries, compile_timeouts, compiles) into `reg`.
void export_native_metrics(obs::MetricsRegistry& reg);

/// Content-address of one built artifact: FNV-1a over the generated
/// source, the compiler identification line, and the backend -O level.
/// Pure (unit-testable): changing any ingredient — including only the
/// compiler version — keys out the stale entry.
[[nodiscard]] std::uint64_t native_cache_key(std::string_view source,
                                             std::string_view compiler_id,
                                             int backend_opt) noexcept;

/// Install the SchedulerKind::Native factory (idempotent).  No-op in
/// builds without LIBERTY_NATIVE_CODEGEN.  ensure_registered() calls this,
/// so front ends need nothing new.
void register_native_scheduler();

/// The fifth scheduler.  Defined only in LIBERTY_NATIVE_CODEGEN builds;
/// construct through Simulator(..., SchedulerKind::Native) or directly
/// when a test needs the introspection surface below.
class NativeScheduler final : public CompiledScheduler {
 public:
  explicit NativeScheduler(liberty::core::Netlist& netlist);
  ~NativeScheduler() override;

  [[nodiscard]] std::string_view kind_name() const override {
    return "native";
  }

  /// True while the dlopened image executes part of the netlist.  False
  /// when nothing was eligible, compilation failed (graceful degradation:
  /// the run continues on the bytecode tapes), or a fault hook forced
  /// retirement.
  [[nodiscard]] bool native_active() const noexcept;
  /// Modules / channels executed by the image (0 when inactive).
  [[nodiscard]] std::size_t native_module_count() const noexcept;
  [[nodiscard]] std::size_t native_channel_count() const noexcept;
  /// The generated translation unit (empty when nothing was eligible).
  [[nodiscard]] const std::string& native_source() const noexcept;

  void visit_counters(const CounterVisitor& visit) const override;
  void sync_module_state() override;
  void reimport_module_state() override;

 protected:
  void start_phase() override;
  void resolve_cycle() override;
  void update_phase(std::uint64_t eoc_token) override;

 private:
  struct Impl;
  void retire_to_bytecode();

  std::unique_ptr<Impl> impl_;
};

}  // namespace liberty::gen
