# Empty dependencies file for liberty_core.
# This may be replaced when dependencies are built.
