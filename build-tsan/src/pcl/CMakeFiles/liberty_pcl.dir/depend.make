# Empty dependencies file for liberty_pcl.
# This may be replaced when dependencies are built.
