// Recursive-descent parser for the LSS reproduction dialect.
#pragma once

#include <string>
#include <string_view>

#include "liberty/core/lss/ast.hpp"

namespace liberty::core::lss {

/// Parse `source` into a Spec.  Throws SpecError with file/line/column on
/// syntax errors.
[[nodiscard]] Spec parse(std::string_view source, const std::string& filename);

/// Convenience: read a file and parse it.
[[nodiscard]] Spec parse_file(const std::string& path);

}  // namespace liberty::core::lss
