# Empty dependencies file for liberty_support.
# This may be replaced when dependencies are built.
