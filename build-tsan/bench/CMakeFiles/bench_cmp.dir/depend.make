# Empty dependencies file for bench_cmp.
# This may be replaced when dependencies are built.
