// Orion-style power and thermal models (§3.3).
//
// "An early version of Orion was developed, focusing on wired
// interconnection networks ... Now, in addition to dynamic power, Orion
// characterizes leakage power as well as the thermal impact of networks."
//
// The model follows Orion's structure: per-event dynamic energy for the
// four router stages (buffer write, buffer read, arbitration, crossbar
// traversal) plus per-flit link traversal energy, and a static leakage
// power that accrues every cycle whether or not traffic flows.  Absolute
// constants are calibrated to the published Orion 100nm-era numbers
// (picojoules per 64-bit flit event); what the benchmarks reproduce is the
// *shape*: dynamic power scaling with load above a leakage floor, with
// buffers and crossbar dominating (see EXPERIMENTS.md E9).
#pragma once

#include <cstddef>
#include <cstdint>

namespace liberty::ccl {

/// Technology/geometry parameters for one router's power model.
struct PowerConfig {
  std::size_t flit_bits = 64;
  std::size_t ports = 5;          // mesh router: 4 neighbours + local
  std::size_t vcs = 2;
  std::size_t buffer_depth = 4;
  double vdd = 1.0;               // volts
  double tech_scale = 1.0;        // relative to the 100nm reference point

  // Reference energies at 100nm, 1.0 V, 64-bit flits (pJ per event).
  double buf_write_pj = 1.1;
  double buf_read_pj = 0.9;
  double arb_pj = 0.08;
  double xbar_pj = 1.5;
  double link_pj_per_mm = 0.45;
  double link_mm = 1.0;

  // Leakage: per-buffer-entry and per-crossbar static power (pJ/cycle).
  double leak_buf_entry_pj = 0.012;
  double leak_xbar_pj = 0.2;
};

/// Accumulates energy for one router instance.
class RouterPower {
 public:
  explicit RouterPower(const PowerConfig& cfg = {}) : cfg_(cfg) {}

  [[nodiscard]] const PowerConfig& config() const noexcept { return cfg_; }

  // Event hooks, called by the router as flits move.
  void on_buffer_write() { dyn_pj_ += scale(cfg_.buf_write_pj); }
  void on_buffer_read() { dyn_pj_ += scale(cfg_.buf_read_pj); }
  void on_arbitration(std::size_t requesters) {
    dyn_pj_ += scale(cfg_.arb_pj) * static_cast<double>(requesters);
  }
  void on_crossbar_traversal() { dyn_pj_ += scale(cfg_.xbar_pj); }

  /// Called once per simulated cycle.
  void on_cycle() {
    const auto entries = static_cast<double>(cfg_.ports * cfg_.vcs *
                                             cfg_.buffer_depth);
    leak_pj_ += scale(cfg_.leak_buf_entry_pj) * entries +
                scale(cfg_.leak_xbar_pj);
    ++cycles_;
  }

  [[nodiscard]] double dynamic_pj() const noexcept { return dyn_pj_; }
  [[nodiscard]] double leakage_pj() const noexcept { return leak_pj_; }
  [[nodiscard]] double total_pj() const noexcept { return dyn_pj_ + leak_pj_; }
  [[nodiscard]] std::uint64_t cycles() const noexcept { return cycles_; }
  /// Average power in pJ/cycle (equals watts at a 1 GHz clock and pJ).
  [[nodiscard]] double avg_power() const noexcept {
    return cycles_ == 0 ? 0.0
                        : total_pj() / static_cast<double>(cycles_);
  }

 private:
  [[nodiscard]] double scale(double pj) const noexcept {
    // Dynamic energy ~ C V^2; capacitance shrinks with feature size, and
    // we fold width scaling into tech_scale linearly (Orion's first-order
    // model).
    return pj * cfg_.vdd * cfg_.vdd * cfg_.tech_scale *
           (static_cast<double>(cfg_.flit_bits) / 64.0);
  }

  PowerConfig cfg_;
  double dyn_pj_ = 0.0;
  double leak_pj_ = 0.0;
  std::uint64_t cycles_ = 0;
};

/// Per-flit link energy.
class LinkPower {
 public:
  explicit LinkPower(const PowerConfig& cfg = {}) : cfg_(cfg) {}
  void on_traversal() {
    pj_ += cfg_.link_pj_per_mm * cfg_.link_mm * cfg_.vdd * cfg_.vdd *
           (static_cast<double>(cfg_.flit_bits) / 64.0);
  }
  [[nodiscard]] double total_pj() const noexcept { return pj_; }

 private:
  PowerConfig cfg_;
  double pj_ = 0.0;
};

/// First-order RC thermal model: temperature rises toward
/// ambient + power * r_thermal with time constant tau ("the thermal impact
/// of networks", §3.3).
class ThermalModel {
 public:
  ThermalModel(double ambient_c = 45.0, double r_thermal = 2.0,
               double tau_cycles = 10000.0)
      : ambient_(ambient_c), r_(r_thermal), tau_(tau_cycles), t_(ambient_c) {}

  /// Advance one cycle with the given instantaneous power (pJ/cycle).
  void step(double power) {
    const double target = ambient_ + power * r_;
    t_ += (target - t_) / tau_;
    peak_ = t_ > peak_ ? t_ : peak_;
  }

  [[nodiscard]] double temperature() const noexcept { return t_; }
  [[nodiscard]] double peak() const noexcept { return peak_; }

 private:
  double ambient_;
  double r_;
  double tau_;
  double t_;
  double peak_ = 0.0;
};

}  // namespace liberty::ccl
