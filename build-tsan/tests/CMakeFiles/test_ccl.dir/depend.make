# Empty dependencies file for test_ccl.
# This may be replaced when dependencies are built.
