#include "liberty/scenario/trace.hpp"

#include <algorithm>
#include <sstream>

#include "liberty/support/error.hpp"
#include "liberty/support/rng.hpp"

namespace liberty::scenario {

std::vector<TraceRequest> synthetic_trace(const TraceConfig& cfg) {
  if (cfg.nodes < 2) {
    throw liberty::ElaborationError(
        "scenario.trace: synthetic traces need >= 2 nodes");
  }
  if (cfg.min_words < 2 || cfg.max_words < cfg.min_words) {
    throw liberty::ElaborationError(
        "scenario.trace: need 2 <= min_words <= max_words");
  }
  liberty::Rng rng(cfg.seed);
  std::vector<TraceRequest> reqs;
  reqs.reserve(cfg.nodes * cfg.per_node);
  for (std::size_t src = 0; src < cfg.nodes; ++src) {
    std::uint64_t at = cfg.start;
    for (std::size_t k = 0; k < cfg.per_node; ++k) {
      TraceRequest r;
      r.cycle = at;
      r.src = src;
      // Uniform destination among the *other* nodes.
      r.dst = static_cast<std::size_t>(rng.below(cfg.nodes - 1));
      if (r.dst >= src) ++r.dst;
      r.words = cfg.min_words + static_cast<std::size_t>(rng.below(
                                    cfg.max_words - cfg.min_words + 1));
      reqs.push_back(r);
      at += 1 + rng.below(2 * cfg.mean_gap);
    }
  }
  std::stable_sort(reqs.begin(), reqs.end(),
                   [](const TraceRequest& a, const TraceRequest& b) {
                     if (a.cycle != b.cycle) return a.cycle < b.cycle;
                     return a.src < b.src;
                   });
  for (std::size_t i = 0; i < reqs.size(); ++i) reqs[i].id = i;
  return reqs;
}

std::string render_trace(const std::vector<TraceRequest>& reqs) {
  std::ostringstream os;
  os << "# liberty.trace v1\n";
  for (const TraceRequest& r : reqs) {
    os << "req " << r.cycle << ' ' << r.src << ' ' << r.dst << ' ' << r.words
       << '\n';
  }
  return os.str();
}

std::vector<TraceRequest> parse_trace(const std::string& text) {
  std::vector<TraceRequest> reqs;
  std::istringstream is(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string word;
    if (!(ls >> word)) continue;  // blank / comment-only line
    if (word != "req") {
      throw liberty::ElaborationError("scenario.trace: line " +
                                      std::to_string(lineno) +
                                      ": expected 'req', got '" + word + "'");
    }
    TraceRequest r;
    if (!(ls >> r.cycle >> r.src >> r.dst >> r.words)) {
      throw liberty::ElaborationError(
          "scenario.trace: line " + std::to_string(lineno) +
          ": expected 'req <cycle> <src> <dst> <words>'");
    }
    if (r.words < 2) {
      throw liberty::ElaborationError(
          "scenario.trace: line " + std::to_string(lineno) +
          ": payloads carry an id and a birth cycle, so words >= 2");
    }
    r.id = reqs.size();
    reqs.push_back(r);
  }
  return reqs;
}

}  // namespace liberty::scenario
