// Native codegen, part 1: eligibility analysis and the C++ emitter.
//
// analyze_native decides which part of the netlist the image may own;
// emit_native_source lowers that part to one self-contained translation
// unit.  The emitted code is a transliteration of the stock PCL hook
// bodies (src/pcl/{source,queue,delay,sink}.cpp) onto POD state — every
// counter increment, stat sample, and ring operation happens in the same
// cycle phase and the same order as the in-object originals, which is what
// makes the image bit-identical to the dynamic reference.  Any change to
// those hook bodies must be mirrored here (the oracle and the fuzz slice
// catch divergence).
#include <cstdint>
#include <string>
#include <typeinfo>
#include <vector>

#include "liberty/pcl/delay.hpp"
#include "liberty/pcl/queue.hpp"
#include "liberty/pcl/sink.hpp"
#include "liberty/pcl/source.hpp"
#include "native_impl.hpp"

namespace liberty::gen {

namespace core = liberty::core;
namespace pcl = liberty::pcl;

namespace {

// ---------------------------------------------------------------------------
// Eligibility.

/// Exact-type classification: a subclass of Source may override make_value
/// or arrival_now, so only the stock types themselves qualify.
bool classify(const core::Module& m, NativePlan::Kind& kind) {
  const auto& t = typeid(m);
  if (t == typeid(pcl::Source)) {
    kind = NativePlan::kSource;
    return true;
  }
  if (t == typeid(pcl::Queue)) {
    kind = NativePlan::kQueue;
    return true;
  }
  if (t == typeid(pcl::Delay)) {
    kind = NativePlan::kDelay;
    return true;
  }
  if (t == typeid(pcl::Sink)) {
    kind = NativePlan::kSink;
    return true;
  }
  return false;
}

/// Parameters the emitter has a recipe for (see the per-kind templates
/// below).  Anything else keeps the module on the bytecode tapes.
bool params_eligible(const core::Module& m, NativePlan::Kind kind,
                     bool& token) {
  switch (kind) {
    case NativePlan::kSource: {
      const auto& s = static_cast<const pcl::Source&>(m);
      if (s.value_kind() != "counter" && s.value_kind() != "token") {
        return false;  // kind=random draws the RNG per cycle
      }
      if (s.period() == 0) return false;  // rate arrivals draw the RNG
      if (s.backlog_capacity() != 0) return false;  // drop path
      if (s.stamps()) return false;  // Stamped payloads stay boxed
      token = s.value_kind() == "token";
      return true;
    }
    case NativePlan::kQueue:
      return !static_cast<const pcl::Queue&>(m).bypass_ack();
    case NativePlan::kDelay:
      return true;
    case NativePlan::kSink:
      return !static_cast<const pcl::Sink&>(m).has_consume_hook();
  }
  return false;
}

}  // namespace

NativePlan analyze_native(core::Netlist& netlist,
                          const core::ScheduleGraph& graph,
                          const core::OptPlan* plan) {
  NativePlan out;
  const auto& mods = netlist.modules();
  const auto& conns = netlist.connections();
  const auto& nodes = graph.nodes();
  const auto& sccs = graph.sccs();
  const auto& scc_of = graph.scc_of();

  // Connection degrees (over the whole netlist, so a passing degree check
  // proves the chain is a complete weakly-connected component — nothing
  // else touches its modules).
  std::vector<std::uint32_t> out_deg(mods.size(), 0), in_deg(mods.size(), 0);
  std::vector<std::int32_t> out_conn(mods.size(), -1),
      in_conn(mods.size(), -1);
  for (const auto& c : conns) {
    if (c->producer() != nullptr) {
      const auto id = c->producer()->id();
      ++out_deg[id];
      out_conn[id] = static_cast<std::int32_t>(c->id());
    }
    if (c->consumer() != nullptr) {
      const auto id = c->consumer()->id();
      ++in_deg[id];
      in_conn[id] = static_cast<std::int32_t>(c->id());
    }
  }

  // Channel nodes per connection.
  std::vector<std::int32_t> fwd_ch(conns.size(), -1), bwd_ch(conns.size(), -1);
  for (std::size_t ch = 0; ch < nodes.size(); ++ch) {
    const auto cid = nodes[ch].conn->id();
    if (nodes[ch].kind == core::ChannelKind::Forward) {
      fwd_ch[cid] = static_cast<std::int32_t>(ch);
    } else {
      bwd_ch[cid] = static_cast<std::int32_t>(ch);
    }
  }

  const auto chan_free = [&](std::int32_t ch) {
    if (ch < 0) return false;
    const auto scc = scc_of[static_cast<std::size_t>(ch)];
    if (sccs[scc].size() != 1 || graph.self_loop(scc)) return false;
    if (plan != nullptr &&
        (plan->channel_const[static_cast<std::size_t>(ch)] != 0 ||
         plan->chain_of_channel[static_cast<std::size_t>(ch)] >= 0)) {
      return false;
    }
    return true;
  };
  const auto conn_free = [&](const core::Connection& c) {
    return !c.has_transfer_gate() &&
           chan_free(fwd_ch[c.id()]) && chan_free(bwd_ch[c.id()]);
  };
  const auto module_free = [&](const core::Module& m) {
    return !netlist.is_quarantined(m.id()) &&
           (plan == nullptr || plan->elided[m.id()] == 0);
  };

  out.module_mask.assign(mods.size(), 0);
  out.scc_mask.assign(sccs.size(), 0);

  // Walk each candidate chain from its source.  All-or-nothing: the first
  // ineligible member abandons the whole chain untouched.
  for (const auto& mp : mods) {
    core::Module& src = *mp;
    NativePlan::Kind kind;
    bool token = false;
    if (!classify(src, kind) || kind != NativePlan::kSource) continue;
    if (!params_eligible(src, kind, token) || !module_free(src)) continue;
    if (out_deg[src.id()] != 1 || in_deg[src.id()] != 0) continue;

    std::vector<core::Module*> chain{&src};
    std::vector<NativePlan::Kind> kinds{NativePlan::kSource};
    std::vector<core::Connection*> links;
    core::Module* cur = &src;
    bool ok = true;
    while (true) {
      core::Connection* link = conns[out_conn[cur->id()]].get();
      if (link->consumer() == nullptr || !conn_free(*link)) {
        ok = false;
        break;
      }
      core::Module* next = link->consumer();
      NativePlan::Kind nk;
      bool ntoken = false;
      if (!classify(*next, nk) || nk == NativePlan::kSource ||
          !params_eligible(*next, nk, ntoken) || !module_free(*next) ||
          in_deg[next->id()] != 1) {
        ok = false;
        break;
      }
      links.push_back(link);
      chain.push_back(next);
      kinds.push_back(nk);
      if (nk == NativePlan::kSink) {
        ok = out_deg[next->id()] == 0 &&
             // The image resolves the sink's ack as ack := enable, which
             // is exactly (and only) the AutoAccept default.
             nodes[bwd_ch[link->id()]].driver == nullptr &&
             link->ack_mode() == core::AckMode::AutoAccept;
        break;
      }
      if (out_deg[next->id()] != 1) {
        ok = false;
        break;
      }
      cur = next;
    }
    if (!ok) continue;

    // Accept: assign slots and channel indexes in walk order.
    std::int32_t prev_chan = -1;
    for (std::size_t i = 0; i < chain.size(); ++i) {
      NativePlan::Slot slot;
      slot.module = chain[i];
      slot.kind = kinds[i];
      slot.token = token;
      slot.in_chan = prev_chan;
      if (i < links.size()) {
        slot.out_chan = static_cast<std::int32_t>(out.channels.size());
        out.channels.push_back(links[i]);
        out.channel_token.push_back(token ? 1 : 0);
        prev_chan = slot.out_chan;
      }
      out.slots.push_back(slot);
      out.module_mask[chain[i]->id()] = 1;
    }
    for (const core::Connection* link : links) {
      out.scc_mask[scc_of[static_cast<std::size_t>(fwd_ch[link->id()])]] = 1;
      out.scc_mask[scc_of[static_cast<std::size_t>(bwd_ch[link->id()])]] = 1;
    }
  }

  if (out.slots.empty()) {
    out.module_mask.clear();
    out.scc_mask.clear();
  }
  return out;
}

// ---------------------------------------------------------------------------
// Emission.

namespace {

std::string u64(std::uint64_t v) { return std::to_string(v) + "ull"; }

/// img.ch[i] accessor.
std::string ch(std::int32_t i) {
  return "img.ch[" + std::to_string(i) + "]";
}

}  // namespace

std::string emit_native_source(const NativePlan& plan) {
  std::string s;
  s.reserve(1 << 16);
  const auto L = [&](const std::string& line) {
    s += line;
    s += '\n';
  };

  // Per-kind instance indexes, in slot order.
  std::vector<std::size_t> idx(plan.slots.size(), 0);
  std::size_t n_src = 0, n_que = 0, n_del = 0, n_snk = 0;
  for (std::size_t i = 0; i < plan.slots.size(); ++i) {
    switch (plan.slots[i].kind) {
      case NativePlan::kSource: idx[i] = n_src++; break;
      case NativePlan::kQueue: idx[i] = n_que++; break;
      case NativePlan::kDelay: idx[i] = n_del++; break;
      case NativePlan::kSink: idx[i] = n_snk++; break;
    }
  }
  const auto dim = [](std::size_t n) {
    return std::to_string(n == 0 ? 1 : n);
  };

  L("// Generated by liberty native codegen (ABI v" +
    std::to_string(kLnAbiVersion) + ").  Do not edit: artifacts are");
  L("// content-addressed on this source; edits vanish at the next miss.");
  L("#include <cstdint>");
  L("");
  L("namespace {");
  L("");
  L("struct LnChan { unsigned char en; unsigned char ack; long long val; };");
  L("");
  L("struct LnHost {");
  L("  void* ctx;");
  L("  void (*stop)(void*, unsigned);");
  L("  void (*put_u64)(void*, unsigned long long);");
  L("  void (*put_i64)(void*, long long);");
  L("  void (*put_tok)(void*);");
  L("  unsigned long long (*get_u64)(void*);");
  L("  long long (*get_i64)(void*);");
  L("  void (*get_tok)(void*);");
  L("  void (*stat_counter)(void*, unsigned, const char*, unsigned long long);");
  L("  void (*stat_acc)(void*, unsigned, const char*, unsigned long long,");
  L("                   double, double, double);");
  L("};");
  L("");
  // Replicates liberty::Accumulator::add exactly (min/max keyed on the
  // post-increment count).
  L("struct Acc {");
  L("  unsigned long long n; double sum; double mn; double mx;");
  L("  void add(double x) {");
  L("    ++n; sum += x;");
  L("    mn = n == 1 ? x : (x < mn ? x : mn);");
  L("    mx = n == 1 ? x : (x > mx ? x : mx);");
  L("  }");
  L("  void reset() { n = 0; sum = 0.0; mn = 0.0; mx = 0.0; }");
  L("};");
  L("");
  L("struct Src { unsigned long long rng[4]; unsigned long long generated;");
  L("             unsigned long long emitted; unsigned long long backlog;");
  L("             Acc backlog_acc; unsigned long long emitted_delta; };");
  L("struct Que { unsigned long long head; unsigned long long size;");
  L("             long long* vals; Acc occ_acc; unsigned long long enq_delta;");
  L("             unsigned long long deq_delta;");
  L("             unsigned long long stall_delta; };");
  L("struct Del { unsigned long long head; unsigned long long size;");
  L("             long long* vals; unsigned long long* ready; };");
  L("struct Snk { unsigned long long consumed;");
  L("             unsigned long long consumed_delta; };");
  L("");
  L("struct Image {");
  L("  LnHost host;");
  L("  LnChan ch[" + std::to_string(plan.channels.size()) + "];");
  L("  Src src[" + dim(n_src) + "];");
  L("  Que que[" + dim(n_que) + "];");
  L("  Del del[" + dim(n_del) + "];");
  L("  Snk snk[" + dim(n_snk) + "];");
  L("};");
  L("");
  L("}  // namespace");
  L("");
  L("extern \"C\" {");
  L("");
  L("unsigned ln_abi_version() { return " + std::to_string(kLnAbiVersion) +
    "u; }");
  L("");

  // --- ln_create / ln_destroy --------------------------------------------
  L("void* ln_create(const LnHost* host) {");
  L("  Image* img = new Image();");
  L("  img->host = *host;");
  for (std::size_t i = 0; i < plan.slots.size(); ++i) {
    const NativePlan::Slot& sl = plan.slots[i];
    const std::string k = std::to_string(idx[i]);
    if (sl.kind == NativePlan::kQueue && !sl.token) {
      const auto& q = static_cast<const pcl::Queue&>(*sl.module);
      L("  img->que[" + k + "].vals = new long long[" +
        std::to_string(q.depth()) + "];");
    } else if (sl.kind == NativePlan::kDelay) {
      const auto& d = static_cast<const pcl::Delay&>(*sl.module);
      if (!sl.token) {
        L("  img->del[" + k + "].vals = new long long[" +
          std::to_string(d.capacity()) + "];");
      }
      L("  img->del[" + k + "].ready = new unsigned long long[" +
        std::to_string(d.capacity()) + "];");
    }
  }
  L("  return img;");
  L("}");
  L("");
  L("void ln_destroy(void* p) {");
  L("  Image* img = static_cast<Image*>(p);");
  if (n_que != 0) {
    L("  for (Que& q : img->que) delete[] q.vals;");
  }
  if (n_del != 0) {
    L("  for (Del& d : img->del) { delete[] d.vals; delete[] d.ready; }");
  }
  L("  delete img;");
  L("}");
  L("");
  L("LnChan* ln_chans(void* p) { return static_cast<Image*>(p)->ch; }");
  L("");

  // --- ln_start: every cycle_start body, slot order -----------------------
  L("void ln_start(void* p, unsigned long long cycle) {");
  L("  Image& img = *static_cast<Image*>(p);");
  L("  (void)cycle;");
  for (std::size_t i = 0; i < plan.slots.size(); ++i) {
    const NativePlan::Slot& sl = plan.slots[i];
    const std::string k = std::to_string(idx[i]);
    switch (sl.kind) {
      case NativePlan::kSource: {
        const auto& m = static_cast<const pcl::Source&>(*sl.module);
        L("  { // " + m.name());
        L("    Src& m = img.src[" + k + "];");
        // Transliterated Source::cycle_start: arrival test, generation,
        // backlog sample, offer.  Counter backlogs hold the consecutive
        // run [generated-backlog, generated), so a count suffices.
        std::string arrive;
        if (m.count_limit() != 0) {
          arrive = "m.generated < " + u64(m.count_limit());
        }
        if (m.start_cycle() != 0) {
          if (!arrive.empty()) arrive += " && ";
          arrive += "cycle >= " + u64(m.start_cycle());
        }
        if (m.period() != 1) {
          if (!arrive.empty()) arrive += " && ";
          arrive += "(cycle - " + u64(m.start_cycle()) + ") % " +
                    u64(m.period()) + " == 0ull";
        }
        if (arrive.empty()) {
          L("    { ++m.generated; ++m.backlog; }");
        } else {
          L("    if (" + arrive + ") { ++m.generated; ++m.backlog; }");
        }
        L("    m.backlog_acc.add(static_cast<double>(m.backlog));");
        if (sl.token) {
          L("    " + ch(sl.out_chan) + ".en = m.backlog != 0ull ? 1 : 0;");
        } else {
          L("    if (m.backlog != 0ull) {");
          L("      " + ch(sl.out_chan) + ".en = 1;");
          L("      " + ch(sl.out_chan) +
            ".val = static_cast<long long>(m.generated - m.backlog);");
          L("    } else { " + ch(sl.out_chan) + ".en = 0; }");
        }
        L("  }");
        break;
      }
      case NativePlan::kQueue: {
        const auto& m = static_cast<const pcl::Queue&>(*sl.module);
        L("  { // " + m.name());
        L("    Que& m = img.que[" + k + "];");
        L("    m.occ_acc.add(static_cast<double>(m.size));");
        if (sl.token) {
          L("    " + ch(sl.out_chan) + ".en = m.size != 0ull ? 1 : 0;");
        } else {
          L("    if (m.size != 0ull) {");
          L("      " + ch(sl.out_chan) + ".en = 1;");
          L("      " + ch(sl.out_chan) + ".val = m.vals[m.head];");
          L("    } else { " + ch(sl.out_chan) + ".en = 0; }");
        }
        L("    if (m.size < " + u64(m.depth()) + ") { " + ch(sl.in_chan) +
          ".ack = 1; }");
        L("    else { " + ch(sl.in_chan) + ".ack = 0; ++m.stall_delta; }");
        L("  }");
        break;
      }
      case NativePlan::kDelay: {
        const auto& m = static_cast<const pcl::Delay&>(*sl.module);
        L("  { // " + m.name());
        L("    Del& m = img.del[" + k + "];");
        L("    if (m.size != 0ull && m.ready[m.head] <= cycle) {");
        L("      " + ch(sl.out_chan) + ".en = 1;");
        if (!sl.token) {
          L("      " + ch(sl.out_chan) + ".val = m.vals[m.head];");
        }
        L("    } else { " + ch(sl.out_chan) + ".en = 0; }");
        L("    " + ch(sl.in_chan) + ".ack = m.size < " + u64(m.capacity()) +
          " ? 1 : 0;");
        L("  }");
        break;
      }
      case NativePlan::kSink:
        break;  // Sink has no cycle_start.
    }
  }
  L("}");
  L("");

  // --- ln_resolve: the only native channels still unresolved after start
  // are the sinks' AutoAccept backwards.
  L("void ln_resolve(void* p) {");
  L("  Image& img = *static_cast<Image*>(p);");
  bool any_sink = false;
  for (const NativePlan::Slot& sl : plan.slots) {
    if (sl.kind == NativePlan::kSink) {
      L("  " + ch(sl.in_chan) + ".ack = " + ch(sl.in_chan) + ".en;");
      any_sink = true;
    }
  }
  if (!any_sink) L("  (void)img;");
  L("}");
  L("");

  // --- ln_commit: every end_of_cycle body, slot order ---------------------
  L("void ln_commit(void* p, unsigned long long cycle) {");
  L("  Image& img = *static_cast<Image*>(p);");
  L("  (void)cycle;");
  for (std::size_t i = 0; i < plan.slots.size(); ++i) {
    const NativePlan::Slot& sl = plan.slots[i];
    const std::string k = std::to_string(idx[i]);
    switch (sl.kind) {
      case NativePlan::kSource: {
        L("  if (" + ch(sl.out_chan) + ".en && " + ch(sl.out_chan) +
          ".ack) {");
        L("    Src& m = img.src[" + k + "];");
        L("    --m.backlog; ++m.emitted; ++m.emitted_delta;");
        L("  }");
        break;
      }
      case NativePlan::kQueue: {
        const auto& m = static_cast<const pcl::Queue&>(*sl.module);
        L("  { Que& m = img.que[" + k + "];");
        // Pop before push, like Queue::end_of_cycle.
        if (sl.token) {
          L("    if (" + ch(sl.out_chan) + ".en && " + ch(sl.out_chan) +
            ".ack) { --m.size; ++m.deq_delta; }");
          L("    if (" + ch(sl.in_chan) + ".en && " + ch(sl.in_chan) +
            ".ack) { ++m.size; ++m.enq_delta; }");
        } else {
          L("    if (" + ch(sl.out_chan) + ".en && " + ch(sl.out_chan) +
            ".ack) {");
          L("      if (++m.head == " + u64(m.depth()) + ") m.head = 0ull;");
          L("      --m.size; ++m.deq_delta;");
          L("    }");
          L("    if (" + ch(sl.in_chan) + ".en && " + ch(sl.in_chan) +
            ".ack) {");
          L("      unsigned long long t = m.head + m.size;");
          L("      if (t >= " + u64(m.depth()) + ") t -= " + u64(m.depth()) +
            ";");
          L("      m.vals[t] = " + ch(sl.in_chan) + ".val;");
          L("      ++m.size; ++m.enq_delta;");
          L("    }");
        }
        L("  }");
        break;
      }
      case NativePlan::kDelay: {
        const auto& m = static_cast<const pcl::Delay&>(*sl.module);
        L("  { Del& m = img.del[" + k + "];");
        L("    if (" + ch(sl.out_chan) + ".en && " + ch(sl.out_chan) +
          ".ack) {");
        L("      if (++m.head == " + u64(m.capacity()) +
          ") m.head = 0ull;");
        L("      --m.size;");
        L("    }");
        L("    if (" + ch(sl.in_chan) + ".en && " + ch(sl.in_chan) +
          ".ack) {");
        L("      unsigned long long t = m.head + m.size;");
        L("      if (t >= " + u64(m.capacity()) + ") t -= " +
          u64(m.capacity()) + ";");
        if (!sl.token) {
          L("      m.vals[t] = " + ch(sl.in_chan) + ".val;");
        }
        L("      m.ready[t] = cycle + " + u64(m.latency()) + ";");
        L("      ++m.size;");
        L("    }");
        L("  }");
        break;
      }
      case NativePlan::kSink: {
        const auto& m = static_cast<const pcl::Sink&>(*sl.module);
        L("  { Snk& m = img.snk[" + k + "];");
        L("    if (" + ch(sl.in_chan) + ".en && " + ch(sl.in_chan) +
          ".ack) { ++m.consumed; ++m.consumed_delta; }");
        if (m.stop_after() != 0) {
          // Outside the transfer branch, like Sink::end_of_cycle: the stop
          // condition re-fires every cycle once reached.
          L("    if (m.consumed >= " + u64(m.stop_after()) +
            ") img.host.stop(img.host.ctx, " + std::to_string(i) + "u);");
        }
        L("  }");
        break;
      }
    }
  }
  L("}");
  L("");

  // --- ln_export / ln_import: mirror the save_state slot layouts ----------
  L("void ln_export(void* p, unsigned slot) {");
  L("  Image& img = *static_cast<Image*>(p);");
  L("  LnHost& h = img.host;");
  L("  switch (slot) {");
  for (std::size_t i = 0; i < plan.slots.size(); ++i) {
    const NativePlan::Slot& sl = plan.slots[i];
    const std::string k = std::to_string(idx[i]);
    L("    case " + std::to_string(i) + ": {");
    switch (sl.kind) {
      case NativePlan::kSource:
        L("      Src& m = img.src[" + k + "];");
        L("      h.put_u64(h.ctx, m.rng[0]); h.put_u64(h.ctx, m.rng[1]);");
        L("      h.put_u64(h.ctx, m.rng[2]); h.put_u64(h.ctx, m.rng[3]);");
        L("      h.put_u64(h.ctx, m.generated);");
        L("      h.put_u64(h.ctx, m.emitted);");
        L("      h.put_u64(h.ctx, m.backlog);");
        L("      for (unsigned long long j = 0; j < m.backlog; ++j) {");
        if (sl.token) {
          L("        h.put_tok(h.ctx);");
        } else {
          L("        h.put_i64(h.ctx,");
          L("                  static_cast<long long>(m.generated -"
            " m.backlog + j));");
        }
        L("      }");
        break;
      case NativePlan::kQueue: {
        const auto& q = static_cast<const pcl::Queue&>(*sl.module);
        L("      Que& m = img.que[" + k + "];");
        L("      h.put_u64(h.ctx, m.size);");
        L("      for (unsigned long long j = 0; j < m.size; ++j) {");
        if (sl.token) {
          L("        h.put_tok(h.ctx);");
        } else {
          L("        h.put_i64(h.ctx, m.vals[(m.head + j) % " +
            u64(q.depth()) + "]);");
        }
        L("      }");
        break;
      }
      case NativePlan::kDelay: {
        const auto& d = static_cast<const pcl::Delay&>(*sl.module);
        L("      Del& m = img.del[" + k + "];");
        L("      h.put_u64(h.ctx, m.size);");
        L("      for (unsigned long long j = 0; j < m.size; ++j) {");
        L("        unsigned long long t = (m.head + j) % " +
          u64(d.capacity()) + ";");
        if (sl.token) {
          L("        h.put_tok(h.ctx);");
        } else {
          L("        h.put_i64(h.ctx, m.vals[t]);");
        }
        L("        h.put_u64(h.ctx, m.ready[t]);");
        L("      }");
        break;
      }
      case NativePlan::kSink:
        L("      h.put_u64(h.ctx, img.snk[" + k + "].consumed);");
        break;
    }
    L("    } break;");
  }
  L("    default: break;");
  L("  }");
  L("}");
  L("");
  L("void ln_import(void* p, unsigned slot) {");
  L("  Image& img = *static_cast<Image*>(p);");
  L("  LnHost& h = img.host;");
  L("  switch (slot) {");
  for (std::size_t i = 0; i < plan.slots.size(); ++i) {
    const NativePlan::Slot& sl = plan.slots[i];
    const std::string k = std::to_string(idx[i]);
    L("    case " + std::to_string(i) + ": {");
    switch (sl.kind) {
      case NativePlan::kSource:
        L("      Src& m = img.src[" + k + "];");
        L("      m.rng[0] = h.get_u64(h.ctx); m.rng[1] = h.get_u64(h.ctx);");
        L("      m.rng[2] = h.get_u64(h.ctx); m.rng[3] = h.get_u64(h.ctx);");
        L("      m.generated = h.get_u64(h.ctx);");
        L("      m.emitted = h.get_u64(h.ctx);");
        L("      m.backlog = h.get_u64(h.ctx);");
        // Counter backlog values are the consecutive run ending at
        // generated-1 (the emitter only owns sources it generated for), so
        // the slots are consumed and the count representation stands.
        L("      for (unsigned long long j = 0; j < m.backlog; ++j) {");
        if (sl.token) {
          L("        h.get_tok(h.ctx);");
        } else {
          L("        (void)h.get_i64(h.ctx);");
        }
        L("      }");
        break;
      case NativePlan::kQueue: {
        L("      Que& m = img.que[" + k + "];");
        L("      m.head = 0ull;");
        L("      m.size = h.get_u64(h.ctx);");
        L("      for (unsigned long long j = 0; j < m.size; ++j) {");
        if (sl.token) {
          L("        h.get_tok(h.ctx);");
        } else {
          L("        m.vals[j] = h.get_i64(h.ctx);");
        }
        L("      }");
        break;
      }
      case NativePlan::kDelay: {
        L("      Del& m = img.del[" + k + "];");
        L("      m.head = 0ull;");
        L("      m.size = h.get_u64(h.ctx);");
        L("      for (unsigned long long j = 0; j < m.size; ++j) {");
        if (sl.token) {
          L("        h.get_tok(h.ctx);");
        } else {
          L("        m.vals[j] = h.get_i64(h.ctx);");
        }
        L("        m.ready[j] = h.get_u64(h.ctx);");
        L("      }");
        break;
      }
      case NativePlan::kSink:
        L("      img.snk[" + k + "].consumed = h.get_u64(h.ctx);");
        break;
    }
    L("    } break;");
  }
  L("    default: break;");
  L("  }");
  L("}");
  L("");

  // --- ln_flush_stats: shadow deltas -> host StatSet, then reset ----------
  // Counters flush only when nonzero (the in-object modules bind them on
  // first event); accumulators flush whenever they sampled (bound
  // unconditionally every cycle_start).
  L("void ln_flush_stats(void* p) {");
  L("  Image& img = *static_cast<Image*>(p);");
  L("  LnHost& h = img.host;");
  for (std::size_t i = 0; i < plan.slots.size(); ++i) {
    const NativePlan::Slot& sl = plan.slots[i];
    const std::string k = std::to_string(idx[i]);
    const std::string slot = std::to_string(i) + "u";
    const auto counter = [&](const std::string& obj, const std::string& fld,
                             const std::string& name) {
      L("    if (" + obj + "." + fld + " != 0ull) {");
      L("      h.stat_counter(h.ctx, " + slot + ", \"" + name + "\", " + obj +
        "." + fld + ");");
      L("      " + obj + "." + fld + " = 0ull;");
      L("    }");
    };
    const auto acc = [&](const std::string& obj, const std::string& fld,
                         const std::string& name) {
      L("    if (" + obj + "." + fld + ".n != 0ull) {");
      L("      h.stat_acc(h.ctx, " + slot + ", \"" + name + "\", " + obj +
        "." + fld + ".n, " + obj + "." + fld + ".sum, " + obj + "." + fld +
        ".mn, " + obj + "." + fld + ".mx);");
      L("      " + obj + "." + fld + ".reset();");
      L("    }");
    };
    switch (sl.kind) {
      case NativePlan::kSource:
        L("  { Src& m = img.src[" + k + "];");
        acc("m", "backlog_acc", "backlog");
        counter("m", "emitted_delta", "emitted");
        L("  }");
        break;
      case NativePlan::kQueue:
        L("  { Que& m = img.que[" + k + "];");
        acc("m", "occ_acc", "occupancy");
        counter("m", "enq_delta", "enqueued");
        counter("m", "deq_delta", "dequeued");
        counter("m", "stall_delta", "full_stalls");
        L("  }");
        break;
      case NativePlan::kDelay:
        break;  // Delay publishes no stats.
      case NativePlan::kSink:
        L("  { Snk& m = img.snk[" + k + "];");
        counter("m", "consumed_delta", "consumed");
        L("  }");
        break;
    }
  }
  L("}");
  L("");
  L("}  // extern \"C\"");
  return s;
}

}  // namespace liberty::gen
