
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_upl_core.cpp" "tests/CMakeFiles/test_upl_core.dir/test_upl_core.cpp.o" "gcc" "tests/CMakeFiles/test_upl_core.dir/test_upl_core.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/core/CMakeFiles/liberty_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/pcl/CMakeFiles/liberty_pcl.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/upl/CMakeFiles/liberty_upl.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/support/CMakeFiles/liberty_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
