file(REMOVE_RECURSE
  "libliberty_support.a"
)
