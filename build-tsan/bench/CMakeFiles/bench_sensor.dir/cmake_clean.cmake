file(REMOVE_RECURSE
  "CMakeFiles/bench_sensor.dir/bench_sensor.cpp.o"
  "CMakeFiles/bench_sensor.dir/bench_sensor.cpp.o.d"
  "bench_sensor"
  "bench_sensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
