#include "liberty/testing/fuzzer.hpp"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "liberty/support/rng.hpp"

namespace liberty::testing {

namespace {

using liberty::Rng;
using liberty::Value;

/// An open output endpoint awaiting a consumer.
struct Open {
  std::size_t module;
  std::string port;
};

struct Builder {
  NetSpec spec;
  Rng rng;
  std::uint64_t seed;

  explicit Builder(std::uint64_t s) : rng(s), seed(s) {}

  std::size_t add(std::string type, std::string name,
                  liberty::core::Params params) {
    spec.modules.push_back(
        ModuleDecl{std::move(type), std::move(name), std::move(params)});
    return spec.modules.size() - 1;
  }

  void connect(const Open& from, std::size_t to, const std::string& to_port) {
    spec.edges.push_back(EdgeDecl{from.module, from.port, to, to_port});
  }

  liberty::core::Params source_params(std::size_t i) {
    liberty::core::Params p;
    // Mostly counters (value identity checks ordering end to end); some
    // random sources so the Rng stream is part of the replayed state.
    p.set("kind", Value(rng.chance(0.6) ? std::string("counter")
                                        : std::string("random")));
    p.set("period", Value(static_cast<std::int64_t>(1 + rng.below(3))));
    if (rng.chance(0.3)) {
      p.set("count", Value(static_cast<std::int64_t>(20 + rng.below(100))));
    }
    p.set("seed", Value(static_cast<std::int64_t>((seed ^ (i * 0x9e37)) |
                                                  1)));
    return p;
  }
};

}  // namespace

NetSpec generate_netlist(std::uint64_t seed, const FuzzConfig& cfg) {
  Builder b(seed);
  b.spec.cycles = cfg.cycles;
  Rng& rng = b.rng;

  const auto span = [&rng](std::size_t lo, std::size_t hi) {
    return lo + rng.below(hi - lo + 1);
  };

  // Layer 0: sources.
  std::vector<Open> frontier;
  const std::size_t width = span(cfg.min_width, cfg.max_width);
  for (std::size_t i = 0; i < width; ++i) {
    const std::size_t m =
        b.add("pcl.source", "src" + std::to_string(i), b.source_params(i));
    frontier.push_back(Open{m, "out"});
  }

  // CCL flit traffic.  A statistical generator may join the shared layered
  // mix — flits are Routable, so queues, arbiters, crossbars and muxes
  // carry them unmodified, and pcl.sink absorbs any payload.  A second,
  // segregated gen -> delay -> traffic_sink lane keeps one pure flit
  // stream so the latency-accounting sink (which requires flits) is also
  // exercised.
  if (cfg.use_ccl_traffic) {
    const auto gen_params = [&](std::size_t id) {
      liberty::core::Params p;
      p.set("id", Value(static_cast<std::int64_t>(id)));
      p.set("nodes", Value(std::int64_t{4}));
      p.set("rate", Value(0.1 + 0.4 * rng.uniform()));
      p.set("seed", Value(static_cast<std::int64_t>(
                        (seed ^ (0xccf1 + id * 0x7f)) | 1)));
      return p;
    };
    if (rng.chance(0.5)) {
      const std::size_t g = b.add("ccl.traffic_gen", "flits", gen_params(1));
      frontier.push_back(Open{g, "out"});
    }
    if (rng.chance(0.4)) {
      liberty::core::Params dp;
      dp.set("latency", Value(static_cast<std::int64_t>(1 + rng.below(3))));
      const std::size_t g =
          b.add("ccl.traffic_gen", "ccl_gen", gen_params(2));
      const std::size_t d = b.add("pcl.delay", "ccl_delay", std::move(dp));
      const std::size_t s = b.add("ccl.traffic_sink", "ccl_sink", {});
      b.connect(Open{g, "out"}, d, "in");
      b.connect(Open{d, "out"}, s, "in");
    }
  }

  // Middle layers: each consumes the frontier and produces the next one.
  // Choices draw from the enabled module mix; 1-in/1-out elements are
  // always available so the frontier can never strand.
  const std::size_t layers = span(cfg.min_layers, cfg.max_layers);
  for (std::size_t l = 0; l < layers; ++l) {
    std::vector<Open> next;
    std::size_t n = 0;
    while (!frontier.empty()) {
      const std::string nm =
          "m" + std::to_string(l) + "_" + std::to_string(n++);
      enum Kind { kQueue, kDelay, kProbe, kFuncMap, kBuffer, kArbiter,
                  kTee, kCrossbar, kMux };
      std::vector<Kind> menu{kQueue, kDelay, kProbe, kFuncMap};
      if (cfg.use_buffer) menu.push_back(kBuffer);
      if (cfg.use_tee) menu.push_back(kTee);
      if (frontier.size() >= 2) {
        if (cfg.use_arbiter) menu.push_back(kArbiter);
        if (cfg.use_crossbar) menu.push_back(kCrossbar);
        if (cfg.use_mux) menu.push_back(kMux);
      }
      const Kind kind = menu[rng.below(menu.size())];

      const auto take = [&frontier](std::size_t k) {
        std::vector<Open> in(frontier.begin(),
                             frontier.begin() + static_cast<long>(k));
        frontier.erase(frontier.begin(), frontier.begin() + static_cast<long>(k));
        return in;
      };

      switch (kind) {
        case kQueue: {
          liberty::core::Params p;
          p.set("depth", Value(static_cast<std::int64_t>(1 + rng.below(4))));
          if (rng.chance(0.3)) p.set("bypass_ack", Value(true));
          const std::size_t m = b.add("pcl.queue", nm, std::move(p));
          b.connect(take(1)[0], m, "in");
          next.push_back(Open{m, "out"});
          break;
        }
        case kDelay: {
          liberty::core::Params p;
          p.set("latency", Value(static_cast<std::int64_t>(1 + rng.below(3))));
          const std::size_t m = b.add("pcl.delay", nm, std::move(p));
          b.connect(take(1)[0], m, "in");
          next.push_back(Open{m, "out"});
          break;
        }
        case kProbe: {
          const std::size_t m = b.add("pcl.probe", nm, {});
          b.connect(take(1)[0], m, "in");
          next.push_back(Open{m, "out"});
          break;
        }
        case kFuncMap: {
          const std::size_t m = b.add("pcl.funcmap", nm, {});
          b.connect(take(1)[0], m, "in");
          next.push_back(Open{m, "out"});
          break;
        }
        case kBuffer: {
          liberty::core::Params p;
          p.set("capacity", Value(static_cast<std::int64_t>(2 + rng.below(6))));
          p.set("issue", Value(rng.chance(0.5) ? std::string("fifo")
                                               : std::string("any")));
          const std::size_t m = b.add("pcl.buffer", nm, std::move(p));
          for (Open& o : take(span(1, std::min<std::size_t>(
                                          2, frontier.size())))) {
            b.connect(o, m, "in");
          }
          const std::size_t outs = span(1, 2);
          for (std::size_t o = 0; o < outs; ++o) next.push_back(Open{m, "out"});
          break;
        }
        case kArbiter: {
          static const char* kPolicies[] = {"round_robin", "priority", "lru"};
          liberty::core::Params p;
          p.set("policy", Value(std::string(kPolicies[rng.below(3)])));
          const std::size_t m = b.add("pcl.arbiter", nm, std::move(p));
          for (Open& o : take(span(2, std::min<std::size_t>(
                                          3, frontier.size())))) {
            b.connect(o, m, "in");
          }
          next.push_back(Open{m, "out"});
          break;
        }
        case kTee: {
          const std::size_t m = b.add("pcl.tee", nm, {});
          b.connect(take(1)[0], m, "in");
          const std::size_t outs = span(2, 3);
          for (std::size_t o = 0; o < outs; ++o) next.push_back(Open{m, "out"});
          break;
        }
        case kCrossbar: {
          const std::size_t m = b.add("pcl.crossbar", nm, {});
          for (Open& o : take(span(2, std::min<std::size_t>(
                                          3, frontier.size())))) {
            b.connect(o, m, "in");
          }
          const std::size_t outs = span(1, 3);
          for (std::size_t o = 0; o < outs; ++o) next.push_back(Open{m, "out"});
          break;
        }
        case kMux: {
          const std::size_t m = b.add("pcl.mux", nm, {});
          const std::vector<Open> in = take(span(2, std::min<std::size_t>(
                                                       3, frontier.size())));
          for (const Open& o : in) b.connect(o, m, "in");
          // Dedicated selection stream, bounded to the data width so the
          // selection is always in range.
          liberty::core::Params sp;
          sp.set("kind", Value(std::string("random")));
          sp.set("range", Value(static_cast<std::int64_t>(in.size())));
          sp.set("seed", Value(static_cast<std::int64_t>((seed ^ (n * 0x51))
                                                         | 1)));
          const std::size_t s = b.add("pcl.source", nm + "_sel", std::move(sp));
          b.connect(Open{s, "out"}, m, "sel");
          next.push_back(Open{m, "out"});
          break;
        }
      }
    }
    frontier = std::move(next);
  }

  // Feedback ring: arbiter -> delay -> tee -> {onward, queue -> arbiter}.
  // The ring contains a genuine cycle; queue and delay break it with
  // state-only ports, so it resolves like real looped hardware.
  if (cfg.use_arbiter && cfg.use_tee && rng.chance(cfg.feedback_prob)) {
    const std::size_t f = rng.below(frontier.size());
    liberty::core::Params qp;
    qp.set("depth", Value(static_cast<std::int64_t>(1 + rng.below(3))));
    const std::size_t arb = b.add("pcl.arbiter", "fb_arb", {});
    const std::size_t dly = b.add("pcl.delay", "fb_delay", {});
    const std::size_t tee = b.add("pcl.tee", "fb_tee", {});
    const std::size_t que = b.add("pcl.queue", "fb_queue", std::move(qp));
    b.connect(frontier[f], arb, "in");
    b.connect(Open{arb, "out"}, dly, "in");
    b.connect(Open{dly, "out"}, tee, "in");
    b.connect(Open{que, "out"}, arb, "in");  // closes the loop
    b.connect(Open{tee, "out"}, que, "in");
    frontier[f] = Open{tee, "out"};
  }

  // Final layer: sinks.  Every remaining open output lands on one.
  const std::size_t n_sinks =
      span(1, std::min(frontier.size(), cfg.max_width));
  std::vector<std::size_t> sinks;
  for (std::size_t i = 0; i < n_sinks; ++i) {
    sinks.push_back(b.add("pcl.sink", "sink" + std::to_string(i), {}));
  }
  for (std::size_t i = 0; i < frontier.size(); ++i) {
    // First pass round-robins so no sink is left unconnected.
    const std::size_t s =
        i < n_sinks ? i : rng.below(n_sinks);
    b.connect(frontier[i], sinks[s], "in");
  }

  return std::move(b.spec);
}

}  // namespace liberty::testing
