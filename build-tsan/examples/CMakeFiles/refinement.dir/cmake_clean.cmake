file(REMOVE_RECURSE
  "CMakeFiles/refinement.dir/refinement.cpp.o"
  "CMakeFiles/refinement.dir/refinement.cpp.o.d"
  "refinement"
  "refinement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/refinement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
