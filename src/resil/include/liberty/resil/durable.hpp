// DurableSupervisor: checkpoint/rollback supervision that survives process
// death (docs/resilience.md, "Durable checkpoints").
//
// The in-memory Supervisor already proves rollback bit-exactness; this
// layer spills the same KernelSnapshot — serialized by core/checkpoint.hpp
// — to a run directory and can cold-start a *fresh* simulator from the
// newest valid file.  Design rules, in priority order:
//
//   never an error     a corrupt, torn, truncated, version-skewed, or
//                      topology-mismatched checkpoint is skipped with a
//                      diagnostic; an empty or missing directory means
//                      "start from cycle 0".  Durability failures (ENOSPC,
//                      unserializable payloads) degrade the run to
//                      undurable, they do not fail it.
//   atomic publish     tmp file + fsync + rename + directory fsync; a
//                      reader never observes a half-written checkpoint
//                      under POSIX rename atomicity, and a crash mid-write
//                      leaves only a .tmp the scanner ignores.
//   bounded retention  only the newest `keep_last` checkpoints survive a
//                      spill (plus whatever a previous process left — the
//                      pruner removes those too).
//   bit-identity       the file embeds the per-cycle trace-hash prefix, so
//                      a resumed run's final trace digest equals the
//                      uninterrupted run's (the fork/SIGKILL harness in
//                      test_durable proves it for all five schedulers at
//                      -O0/-O2, including the rack scenario).
//
// The torn-write and ENOSPC *injection* paths live in the FaultInjector
// (FaultClass::TornCheckpoint / CheckpointEnospc): when the bound injector
// says the fault afflicts this spill cycle, the write is truncated at a
// seeded length or skipped entirely — deterministically, so the durability
// machinery itself is testable under the same seeded-fault discipline as
// the simulated system.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "liberty/core/checkpoint.hpp"
#include "liberty/resil/recovery.hpp"

namespace liberty::obs {
class MetricsRegistry;
}

namespace liberty::resil {

struct DurableConfig {
  std::string dir;             // run directory; created if missing
  std::size_t keep_last = 4;   // retention: newest K checkpoint files
  bool resume = false;         // cold-start from the newest valid file
  std::uint64_t aux_seed = 0;  // workload/plan seed echoed into the file
  /// Crash-harness aid: raise(SIGKILL) once this many cycles have
  /// committed (0 = off).  Exposed as lss_run/rack_sim --kill-at.
  core::Cycle kill_at = 0;
};

struct DurableStats {
  std::uint64_t checkpoints_written = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t resumes = 0;          // successful cold-starts from disk
  std::uint64_t corrupt_skipped = 0;  // rejected candidate files
  std::uint64_t write_failures = 0;   // failed/suppressed spills
};

/// One file considered during a resume scan.
struct CheckpointCandidate {
  std::string path;
  std::uint64_t bytes = 0;
  core::Cycle cycle = 0;    // from the filename (valid even when rejected)
  bool valid = false;
  std::string reason;       // why rejected; empty when valid
};

/// Scan `dir` for checkpoint files, newest-first, validating each against
/// `topology_hash` (pass 0 to skip the topology check).  Returns an empty
/// list for a missing or empty directory.  Never throws.
[[nodiscard]] std::vector<CheckpointCandidate> scan_checkpoints(
    const std::string& dir, std::uint64_t topology_hash);

/// Human-readable rendering of a resume scan — the shared message path of
/// lss_run --resume and rack_sim --resume diagnostics: every candidate
/// file found and why it was (or wasn't) usable.
[[nodiscard]] std::string describe_candidates(
    const std::string& dir, const std::vector<CheckpointCandidate>& list);

class DurableSupervisor : public Supervisor {
 public:
  DurableSupervisor(core::Netlist& netlist, SupervisorConfig cfg,
                    DurableConfig durable, FaultInjector* injector = nullptr,
                    Watchdog* watchdog = nullptr);

  [[nodiscard]] const DurableStats& stats() const noexcept { return stats_; }
  /// Durability diagnostics (skipped files, suppressed writes) — also
  /// appended to RecoveryReport::events as they happen.
  [[nodiscard]] const std::vector<std::string>& diagnostics() const noexcept {
    return diagnostics_;
  }
  /// The cycle the run resumed from (0 when starting fresh).
  [[nodiscard]] core::Cycle resumed_from() const noexcept {
    return resumed_cycle_;
  }

  /// Export the stable resil.supervisor.* counters.
  void export_metrics(obs::MetricsRegistry& reg) const;

 protected:
  void on_run_start(RecoveryReport& rep) override;
  void on_checkpoint(RecoveryReport& rep) override;
  void on_cycle_committed(core::Cycle now) override;

 private:
  void spill(RecoveryReport* rep);
  void prune();
  void note(RecoveryReport* rep, std::string msg);

  DurableConfig durable_;
  DurableStats stats_;
  std::vector<std::string> diagnostics_;
  core::Cycle resumed_cycle_ = 0;
  std::int64_t last_spilled_cycle_ = -1;
  bool encode_failed_ = false;  // one diagnostic, then stay quiet
};

}  // namespace liberty::resil
