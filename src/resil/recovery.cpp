#include "liberty/resil/recovery.hpp"

#include <utility>

#include "liberty/resil/injector.hpp"
#include "liberty/support/error.hpp"

namespace liberty::resil {

std::string_view policy_name(RecoveryPolicy p) noexcept {
  switch (p) {
    case RecoveryPolicy::Abort: return "abort";
    case RecoveryPolicy::RollbackRetry: return "rollback";
    case RecoveryPolicy::Quarantine: return "quarantine";
  }
  return "?";
}

RecoveryPolicy policy_from_name(std::string_view name) {
  if (name == "abort") return RecoveryPolicy::Abort;
  if (name == "rollback") return RecoveryPolicy::RollbackRetry;
  if (name == "quarantine") return RecoveryPolicy::Quarantine;
  throw liberty::Error("unknown recovery policy '" + std::string(name) +
                       "' (expected abort|rollback|quarantine)");
}

std::string RecoveryReport::summary() const {
  std::string s = completed ? "completed " : "FAILED after ";
  s += std::to_string(cycles) + " cycles";
  s += ", rollbacks=" + std::to_string(rollbacks);
  s += ", quarantines=" + std::to_string(quarantines);
  if (!error.empty()) s += ", error: " + error;
  return s;
}

Supervisor::Supervisor(core::Netlist& netlist, SupervisorConfig cfg,
                       FaultInjector* injector, Watchdog* watchdog)
    : netlist_(netlist),
      cfg_(cfg),
      injector_(injector),
      watchdog_(watchdog),
      recorder_(netlist) {}

Supervisor::~Supervisor() = default;

void Supervisor::build_simulator() {
  sim_ = std::make_unique<core::Simulator>(netlist_, cfg_.scheduler,
                                           cfg_.threads);
  if (cfg_.iteration_cap != 0) {
    sim_->scheduler().set_iteration_cap(cfg_.iteration_cap);
  }
  if (injector_ != nullptr) injector_->install(*sim_);
  if (watchdog_ != nullptr) {
    // Rollback soundness requires pre-commit aborts (see class comment).
    watchdog_->set_throw_on_violation(true);
    watchdog_->set_next(&recorder_);
    watchdog_->attach(*sim_);
  } else {
    sim_->set_probe(&recorder_);
  }
}

void Supervisor::take_checkpoint() { checkpoint_ = sim_->snapshot(); }

namespace {

/// Which module does a detected abort implicate?  The first still-active
/// fault spec whose onset has been reached: its module for handler faults,
/// the faulted connection's consumer otherwise.
[[nodiscard]] std::string blame_module(const FaultInjector* injector,
                                       const core::Netlist& netlist,
                                       core::Cycle at) {
  if (injector == nullptr) return "";
  for (const FaultSpec& f : injector->plan().faults) {
    if (f.masked || f.from_cycle > at) continue;
    if (f.cls == FaultClass::HandlerThrow) return f.module;
    if (f.connection < netlist.connection_count()) {
      const core::Module* consumer =
          netlist.connections()[f.connection]->consumer();
      if (consumer != nullptr) return consumer->name();
    }
  }
  return "";
}

}  // namespace

bool Supervisor::recover(RecoveryReport& rep, core::Cycle at,
                         const std::string& why) {
  (void)why;
  if (rep.rollbacks + rep.quarantines >= cfg_.max_recoveries) {
    rep.events.push_back("recovery budget exhausted (max " +
                         std::to_string(cfg_.max_recoveries) + ")");
    return false;
  }
  switch (cfg_.policy) {
    case RecoveryPolicy::Abort:
      rep.events.push_back("policy abort: giving up");
      return false;

    case RecoveryPolicy::RollbackRetry: {
      if (injector_ == nullptr) {
        rep.events.push_back("rollback: no injector, no fault site to mask");
        return false;
      }
      const int masked = injector_->mask_through(at);
      if (masked == 0) {
        rep.events.push_back(
            "rollback: no active fault site at or before cycle " +
            std::to_string(at));
        return false;
      }
      sim_->restore(checkpoint_);
      recorder_.truncate(checkpoint_.cycle);
      ++rep.rollbacks;
      rep.events.push_back("cycle " + std::to_string(at) +
                           ": rollback to checkpoint at cycle " +
                           std::to_string(checkpoint_.cycle) + ", " +
                           std::to_string(masked) + " fault site(s) masked");
      return true;
    }

    case RecoveryPolicy::Quarantine: {
      const std::string blame = blame_module(injector_, netlist_, at);
      core::Module* m = blame.empty() ? nullptr : netlist_.find(blame);
      if (m == nullptr) {
        rep.events.push_back("quarantine: cannot attribute a module");
        return false;
      }
      if (injector_ != nullptr) {
        injector_->mask_module(blame);
        for (const auto& c : netlist_.connections()) {
          if (c->consumer() == m) injector_->mask_connection(c->id());
        }
      }
      // Quarantine invalidates any optimizer facts about this module, and
      // the quarantined trajectory legitimately departs from the fault-free
      // baseline — drop both before rebuilding.
      netlist_.set_opt_plan(nullptr);
      netlist_.quarantine(*m);
      if (watchdog_ != nullptr) watchdog_->clear_baseline();
      build_simulator();
      sim_->restore(checkpoint_);
      recorder_.truncate(checkpoint_.cycle);
      ++rep.quarantines;
      rep.events.push_back("cycle " + std::to_string(at) +
                           ": quarantined module '" + blame +
                           "', resuming from checkpoint at cycle " +
                           std::to_string(checkpoint_.cycle));
      return true;
    }
  }
  return false;
}

RecoveryReport Supervisor::run(core::Cycle cycles) {
  RecoveryReport rep;
  build_simulator();
  netlist_.clear_stop();
  on_run_start(rep);
  take_checkpoint();
  on_checkpoint(rep);

  while (sim_->now() < cycles && !netlist_.stop_requested()) {
    bool aborted = false;
    try {
      sim_->step();
    } catch (const liberty::Error& e) {
      // step() bumps the cycle counter before running the cycle, so the
      // aborted cycle is now() - 1.
      const core::Cycle at = sim_->now() > 0 ? sim_->now() - 1 : 0;
      rep.events.push_back("cycle " + std::to_string(at) +
                           ": aborted: " + e.what());
      if (watchdog_ != nullptr) watchdog_->note_kernel_error(e.what(), at);
      if (!recover(rep, at, e.what())) {
        rep.error = e.what();
        break;
      }
      aborted = true;
    }
    if (!aborted) {
      if (cfg_.checkpoint_every != 0 &&
          sim_->now() % cfg_.checkpoint_every == 0) {
        take_checkpoint();
        on_checkpoint(rep);
      }
      on_cycle_committed(sim_->now());
    }
  }

  rep.completed = rep.error.empty();
  // On a terminal abort, now() already advanced past the cycle that never
  // finished — report only completed cycles.
  rep.cycles = rep.completed ? sim_->now()
                             : (sim_->now() > 0 ? sim_->now() - 1 : 0);
  rep.trace_hashes = recorder_.hashes();
  rep.trace_hashes.resize(rep.cycles, core::kFnv1aInit);
  rep.state_digest = sim_->snapshot().digest();
  return rep;
}

}  // namespace liberty::resil
