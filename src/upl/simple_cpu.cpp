#include "liberty/upl/simple_cpu.hpp"

#include "liberty/pcl/payloads.hpp"
#include "liberty/support/error.hpp"

namespace liberty::upl {

using liberty::core::AckMode;
using liberty::core::Cycle;
using liberty::core::Deps;
using liberty::core::Params;
using liberty::pcl::MemReq;
using liberty::pcl::MemResp;

SimpleCpu::SimpleCpu(const std::string& name, const Params& params)
    : Module(name),
      mem_req_(add_out("mem_req", 0, 1)),
      mem_resp_(add_in("mem_resp", AckMode::AutoAccept, 0, 1)),
      stop_on_halt_(params.get_bool("stop_on_halt", false)) {
  const std::string source = params.get_string("program", "");
  if (!source.empty()) set_program(assemble(source, name + ".program"));
}

void SimpleCpu::map_mmio(std::uint64_t base, std::uint64_t size, MmioRead rd,
                         MmioWrite wr) {
  mmio_.push_back(MmioRange{base, size, std::move(rd), std::move(wr)});
}

void SimpleCpu::attach_mmio(std::uint64_t base, std::uint64_t size,
                            liberty::core::MmioDevice& device) {
  map_mmio(
      base, size,
      [base, &device](std::uint64_t addr) {
        return device.mmio_read(addr - base);
      },
      [base, &device](std::uint64_t addr, std::int64_t v) {
        device.mmio_write(addr - base, v);
      });
}

const SimpleCpu::MmioRange* SimpleCpu::mmio_for(std::uint64_t addr) const {
  for (const auto& r : mmio_) {
    if (addr >= r.base && addr < r.base + r.size) return &r;
  }
  return nullptr;
}

void SimpleCpu::cycle_start(Cycle) {
  if (pending_ && !pending_->sent) {
    mem_req_.send(pending_->req);
  } else {
    mem_req_.idle();
  }
}

void SimpleCpu::execute_one() {
  if (!have_program_) {
    throw liberty::SimulationError("upl.simple_cpu '" + name() +
                                   "': no program attached");
  }
  static const Instr kHalt{Op::Halt, 0, 0, 0, 0};
  const Instr& i = pc_ < prog_.code.size() ? prog_.code[pc_] : kHalt;

  if (is_mem(i.op)) {
    const std::uint64_t addr =
        static_cast<std::uint64_t>(regs_[i.rs1] + i.imm);
    // Memory-mapped I/O completes in one cycle, against the device.
    if (const MmioRange* dev = mmio_for(addr)) {
      if (i.op == Op::Lw) {
        set_reg(i.rd, dev->read ? dev->read(addr) : 0);
      } else if (dev->write) {
        dev->write(addr, regs_[i.rs2]);
      }
      ++retired_;
      ++pc_;
      return;
    }
    pending_ = PendingMem{
        i.op == Op::Lw
            ? liberty::Value::make<MemReq>(MemReq::Op::Read, addr, 0,
                                           next_tag_)
            : liberty::Value::make<MemReq>(MemReq::Op::Write, addr,
                                           regs_[i.rs2], next_tag_),
        i, false};
    ++next_tag_;
    return;  // pc advances when the response arrives
  }

  const ExecResult r = evaluate(i, regs_[i.rs1], regs_[i.rs2], pc_);
  if (r.writes_reg) set_reg(i.rd, r.value);
  if (r.out) output_.push_back(*r.out);
  ++retired_;
  if (r.halts) {
    halted_ = true;
    stats().counter("halt_cycle").inc(now());
    if (stop_on_halt_) request_stop();
    return;
  }
  pc_ = r.taken ? r.target : pc_ + 1;
}

void SimpleCpu::end_of_cycle() {
  stats().counter("cycles").inc();
  if (halted_) return;

  if (pending_) {
    if (!pending_->sent && mem_req_.transferred()) pending_->sent = true;
    if (mem_resp_.transferred()) {
      const auto resp = mem_resp_.data().as<MemResp>();
      const Instr& i = pending_->instr;
      if (i.op == Op::Lw) set_reg(i.rd, resp->data);
      pending_.reset();
      ++retired_;
      ++pc_;
      stats().counter("instructions").inc();
    } else {
      stats().counter("mem_stall_cycles").inc();
    }
    return;
  }

  execute_one();
  if (!pending_ && !halted_) stats().counter("instructions").inc();
  if (pending_) stats().counter("mem_ops").inc();
}

void SimpleCpu::declare_deps(Deps& deps) const {
  deps.state_only(mem_req_);
}

void SimpleCpu::save_state(liberty::core::StateWriter& w) const {
  for (const std::int64_t r : regs_) w.put_i64(r);
  w.put_u64(pc_);
  w.put_bool(halted_);
  w.put_u64(retired_);
  w.put_u64(next_tag_);
  w.put_size(output_.size());
  for (const std::int64_t v : output_) w.put_i64(v);
  // The pending instruction needs no slot: pc does not advance until the
  // response arrives, so it is re-derived from prog_.code[pc_] on load.
  w.put_bool(pending_.has_value());
  if (pending_) {
    w.put(pending_->req);
    w.put_bool(pending_->sent);
  }
}

void SimpleCpu::load_state(liberty::core::StateReader& r) {
  for (auto& reg : regs_) reg = r.get_i64();
  pc_ = r.get_u64();
  halted_ = r.get_bool();
  retired_ = r.get_u64();
  next_tag_ = r.get_u64();
  output_.clear();
  const std::size_t outs = r.get_size();
  for (std::size_t i = 0; i < outs; ++i) output_.push_back(r.get_i64());
  pending_.reset();
  if (r.get_bool()) {
    liberty::Value req = r.get();
    const bool sent = r.get_bool();
    static const Instr kHalt{Op::Halt, 0, 0, 0, 0};
    const Instr& i = pc_ < prog_.code.size() ? prog_.code[pc_] : kHalt;
    pending_ = PendingMem{std::move(req), i, sent};
  }
}

}  // namespace liberty::upl
