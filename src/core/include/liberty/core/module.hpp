// Module: the unit of structural composition.
//
// "Like real hardware, each LSE module instance executes concurrently with
// other LSE module instances ... Each module instance is abstracted solely
// by its communication interface, with no assumptions about sequentiality of
// the internal computation." (§2.1)
//
// A module participates in simulation through four hooks:
//
//   init()         once, after the netlist is finalized; size internal state
//                  from the now-known port widths and parameters.
//   cycle_start(c) at the top of each cycle; drive every signal that depends
//                  only on sequential state (a queue offers its head and
//                  acks based on free space here).
//   react()        called (possibly many times) as this module's visible
//                  signals resolve during the cycle; must be MONOTONE: look
//                  only at known signals, drive outputs exactly once, and be
//                  idempotent.  Combinational modules (arbiters, muxes,
//                  allocators) live here.
//   end_of_cycle() after all signals resolved; commit sequential state by
//                  inspecting transferred() on endpoints.
//
// Modules additionally participate in kernel snapshot/restore through the
// save_state/load_state pair (see state.hpp): between cycles, save_state
// serializes everything the module needs to resume deterministically and
// load_state reads it back in the same order.  A module whose behaviour is
// a pure function of its ports needs neither override.
//
// Causality rule (documented contract, checked dynamically by the kernel's
// monotonicity errors): a module's *forward* drives may depend only on its
// input forward signals; *backward* drives may depend on anything.  This is
// the discipline that makes the paper's default-control handshake compose.
#pragma once

#include <atomic>
#include <cstddef>
#include <initializer_list>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "liberty/core/port.hpp"
#include "liberty/core/state.hpp"
#include "liberty/core/types.hpp"
#include "liberty/support/stats.hpp"

namespace liberty::core {

class Netlist;
class OptTraits;
class SchedulerBase;

/// Reference to one directional signal group of a port, used to declare
/// combinational dependencies for static scheduling.
struct SignalRef {
  const Port* port;
  ChannelKind kind;
};

[[nodiscard]] inline SignalRef fwd(const Port& p) {
  return {&p, ChannelKind::Forward};
}
[[nodiscard]] inline SignalRef bwd(const Port& p) {
  return {&p, ChannelKind::Backward};
}

/// Collects a module's declared combinational dependencies.  A *driven*
/// signal group is the forward side of an output port or the backward (ack)
/// side of an input port — the directions this module produces.  Sources are
/// the directions it observes.  Anything not declared is treated
/// conservatively (depends on every observable signal of the module), which
/// is always correct but may serialize the static schedule.
class Deps {
 public:
  /// Declare that signals this module drives on `driven` depend
  /// combinationally on exactly `sources` (empty list = state-only).
  void depends(const Port& driven, std::initializer_list<SignalRef> sources) {
    declared_[&driven] = std::vector<SignalRef>(sources);
  }
  void depends(const Port& driven, std::vector<SignalRef> sources) {
    declared_[&driven] = std::move(sources);
  }
  /// Declare that `driven` is produced from sequential state alone.
  void state_only(const Port& driven) { declared_[&driven] = {}; }

  [[nodiscard]] const std::map<const Port*, std::vector<SignalRef>>& declared()
      const noexcept {
    return declared_;
  }

 private:
  std::map<const Port*, std::vector<SignalRef>> declared_;
};

class Module {
 public:
  explicit Module(std::string name) : name_(std::move(name)) {}
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] ModuleId id() const noexcept { return id_; }

  /// Port lookup by name; throws ElaborationError when absent.
  [[nodiscard]] Port& port(const std::string& name) const;
  /// Directional lookups (also verify direction).
  [[nodiscard]] Port& in(const std::string& name) const;
  [[nodiscard]] Port& out(const std::string& name) const;
  [[nodiscard]] bool has_port(const std::string& name) const noexcept;

  [[nodiscard]] const std::vector<std::unique_ptr<Port>>& ports()
      const noexcept {
    return ports_;
  }

  // Simulation hooks (see file comment).
  virtual void init() {}
  virtual void cycle_start(Cycle) {}
  virtual void react() {}
  virtual void end_of_cycle() {}

  /// Declare combinational dependencies for the static scheduler.  The
  /// default declares nothing, which the scheduler treats conservatively.
  virtual void declare_deps(Deps&) const {}

  /// Declare optimizer-relevant facts (statelessness, purity, pass-through
  /// structure, constant drives, sleepability) for liberty::opt.  The
  /// default declares nothing, which leaves the module opaque to every
  /// pass — always sound.
  virtual void declare_opt(OptTraits&) const {}

  /// For modules that declared OptTraits::sleepable(): true when the
  /// module's drives next cycle would be identical to this cycle's given
  /// unchanged inputs (its state component is quiescent).  Queried by the
  /// quiescence-gating schedulers after end_of_cycle; irrelevant (and
  /// unqueried) unless sleepable was declared.
  [[nodiscard]] virtual bool can_sleep() const { return false; }

  /// Serialize all sequential state needed to resume deterministically
  /// (called between cycles by Simulator::snapshot).  Statistics are NOT
  /// part of the contract: a restored run replays behaviour, it does not
  /// rewind counters.
  virtual void save_state(StateWriter&) const {}
  /// Restore state saved by save_state, reading slots in the same order.
  virtual void load_state(StateReader&) {}

  /// Content digest of this module's saved state (FNV-1a over the
  /// save_state slot sequence).  Two independently constructed simulators
  /// in identical states produce identical digests — the comparison point
  /// of the differential oracle in liberty_testing.
  [[nodiscard]] std::uint64_t state_digest() const {
    StateWriter w;
    save_state(w);
    return digest_slots(w.slots());
  }

  [[nodiscard]] liberty::StatSet& stats() noexcept { return stats_; }
  [[nodiscard]] const liberty::StatSet& stats() const noexcept {
    return stats_;
  }

  /// Current cycle (valid during simulation hooks).
  [[nodiscard]] Cycle now() const noexcept { return now_; }

  /// Ask the simulator to stop after the current cycle completes.
  void request_stop() noexcept;

 protected:
  /// Create ports.  Called from constructors of concrete modules.
  Port& add_in(std::string name, AckMode default_ack = AckMode::Managed,
               std::size_t min_conns = 0,
               std::size_t max_conns = std::numeric_limits<std::size_t>::max());
  Port& add_out(std::string name, std::size_t min_conns = 0,
                std::size_t max_conns = std::numeric_limits<std::size_t>::max());

 private:
  friend class Netlist;
  friend class SchedulerBase;

  std::string name_;
  ModuleId id_ = 0;
  Cycle now_ = 0;
  std::atomic<bool>* stop_flag_ = nullptr;
  std::vector<std::unique_ptr<Port>> ports_;
  liberty::StatSet stats_;
};

}  // namespace liberty::core
