// ModuleRegistry: the shared catalog of module templates.
//
// §3 of the paper organizes components into functional libraries (PCL, UPL,
// CCL, MPL, NIL) that "can freely be used in other libraries".  Every
// library registers its templates here under "<library>.<template>" names
// (e.g. "pcl.queue", "ccl.router"), and both C++ model builders and the LSS
// elaborator instantiate from the same catalog — which is what makes
// cross-domain composition work without prior planning.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "liberty/core/module.hpp"
#include "liberty/core/params.hpp"
#include "liberty/support/error.hpp"

namespace liberty::core {

class ModuleRegistry {
 public:
  /// Factory: build a module instance with the given hierarchical instance
  /// name, customized by `params`.
  using Factory = std::function<std::unique_ptr<Module>(
      const std::string& instance_name, const Params& params)>;

  struct TemplateInfo {
    std::string name;
    std::string summary;
    Factory factory;
  };

  void register_template(std::string name, std::string summary,
                         Factory factory) {
    if (templates_.count(name) != 0) {
      throw liberty::ElaborationError("module template '" + name +
                                      "' registered twice");
    }
    auto& info = templates_[name];
    info.name = name;
    info.summary = std::move(summary);
    info.factory = std::move(factory);
  }

  [[nodiscard]] bool has(const std::string& name) const {
    return templates_.count(name) != 0;
  }

  [[nodiscard]] std::unique_ptr<Module> instantiate(
      const std::string& template_name, const std::string& instance_name,
      const Params& params) const {
    const auto it = templates_.find(template_name);
    if (it == templates_.end()) {
      throw liberty::ElaborationError("unknown module template '" +
                                      template_name + "'");
    }
    auto mod = it->second.factory(instance_name, params);
    const auto unused = params.unused();
    if (!unused.empty()) {
      std::string msg = "unknown parameter(s) for template '" + template_name +
                        "' (instance '" + instance_name + "'):";
      for (const auto& u : unused) msg += " " + u;
      throw liberty::ElaborationError(msg);
    }
    return mod;
  }

  /// Catalog listing ("during deployment, it serves as a catalog to help
  /// search for the appropriate match", §3).
  [[nodiscard]] std::vector<const TemplateInfo*> list() const {
    std::vector<const TemplateInfo*> out;
    out.reserve(templates_.size());
    for (const auto& [name, info] : templates_) {
      (void)name;
      out.push_back(&info);
    }
    return out;
  }

  /// The process-wide registry pre-populated with every component library
  /// linked into the binary.
  static ModuleRegistry& global();

 private:
  std::map<std::string, TemplateInfo> templates_;
};

/// Helper for the common case of a module constructible from
/// (name, params).
template <typename T>
ModuleRegistry::Factory simple_factory() {
  return [](const std::string& name, const Params& params) {
    return std::make_unique<T>(name, params);
  };
}

}  // namespace liberty::core
