#include "liberty/core/lss/lexer.hpp"

#include <cctype>
#include <map>

#include "liberty/support/error.hpp"

namespace liberty::core::lss {

std::string_view tok_name(Tok t) {
  switch (t) {
    case Tok::End: return "end of input";
    case Tok::Ident: return "identifier";
    case Tok::Int: return "integer literal";
    case Tok::Real: return "real literal";
    case Tok::String: return "string literal";
    case Tok::KwParam: return "'param'";
    case Tok::KwModule: return "'module'";
    case Tok::KwInstance: return "'instance'";
    case Tok::KwConnect: return "'connect'";
    case Tok::KwFor: return "'for'";
    case Tok::KwIn: return "'in'";
    case Tok::KwIf: return "'if'";
    case Tok::KwElse: return "'else'";
    case Tok::KwInport: return "'inport'";
    case Tok::KwOutport: return "'outport'";
    case Tok::KwExport: return "'export'";
    case Tok::KwAs: return "'as'";
    case Tok::KwTrue: return "'true'";
    case Tok::KwFalse: return "'false'";
    case Tok::LBrace: return "'{'";
    case Tok::RBrace: return "'}'";
    case Tok::LBracket: return "'['";
    case Tok::RBracket: return "']'";
    case Tok::LParen: return "'('";
    case Tok::RParen: return "')'";
    case Tok::Semi: return "';'";
    case Tok::Colon: return "':'";
    case Tok::Comma: return "','";
    case Tok::Dot: return "'.'";
    case Tok::DotDot: return "'..'";
    case Tok::Arrow: return "'->'";
    case Tok::Assign: return "'='";
    case Tok::Eq: return "'=='";
    case Tok::Ne: return "'!='";
    case Tok::Le: return "'<='";
    case Tok::Ge: return "'>='";
    case Tok::Lt: return "'<'";
    case Tok::Gt: return "'>'";
    case Tok::Plus: return "'+'";
    case Tok::Minus: return "'-'";
    case Tok::Star: return "'*'";
    case Tok::Slash: return "'/'";
    case Tok::Percent: return "'%'";
    case Tok::Not: return "'!'";
    case Tok::AndAnd: return "'&&'";
    case Tok::OrOr: return "'||'";
    case Tok::Question: return "'?'";
  }
  return "<invalid>";
}

namespace {

const std::map<std::string, Tok, std::less<>>& keywords() {
  static const std::map<std::string, Tok, std::less<>> kw = {
      {"param", Tok::KwParam},       {"module", Tok::KwModule},
      {"instance", Tok::KwInstance}, {"connect", Tok::KwConnect},
      {"for", Tok::KwFor},           {"in", Tok::KwIn},
      {"if", Tok::KwIf},             {"else", Tok::KwElse},
      {"inport", Tok::KwInport},     {"outport", Tok::KwOutport},
      {"export", Tok::KwExport},     {"as", Tok::KwAs},
      {"true", Tok::KwTrue},         {"false", Tok::KwFalse},
  };
  return kw;
}

}  // namespace

std::vector<Token> tokenize(std::string_view src, const std::string& file) {
  std::vector<Token> out;
  std::size_t i = 0;
  int line = 1;
  int col = 1;

  auto error = [&](const std::string& msg) -> void {
    throw liberty::SpecError(file, line, col, msg);
  };
  auto advance = [&](std::size_t n = 1) {
    for (std::size_t k = 0; k < n && i < src.size(); ++k, ++i) {
      if (src[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
  };
  auto peek = [&](std::size_t off = 0) -> char {
    return i + off < src.size() ? src[i + off] : '\0';
  };
  auto push = [&](Tok kind, int tline, int tcol) -> Token& {
    out.push_back(Token{kind, {}, 0, 0.0, tline, tcol});
    return out.back();
  };

  while (i < src.size()) {
    const char c = peek();
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance();
      continue;
    }
    // Comments.
    if (c == '/' && peek(1) == '/') {
      while (i < src.size() && peek() != '\n') advance();
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      advance(2);
      while (i < src.size() && !(peek() == '*' && peek(1) == '/')) advance();
      if (i >= src.size()) error("unterminated block comment");
      advance(2);
      continue;
    }

    const int tline = line;
    const int tcol = col;

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string ident;
      while (std::isalnum(static_cast<unsigned char>(peek())) ||
             peek() == '_') {
        ident += peek();
        advance();
      }
      const auto it = keywords().find(ident);
      if (it != keywords().end()) {
        push(it->second, tline, tcol);
      } else {
        push(Tok::Ident, tline, tcol).text = std::move(ident);
      }
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::string num;
      bool is_real = false;
      while (std::isdigit(static_cast<unsigned char>(peek()))) {
        num += peek();
        advance();
      }
      // '.' starts a fraction only when followed by a digit; "0..N" must
      // lex as Int DotDot.
      if (peek() == '.' &&
          std::isdigit(static_cast<unsigned char>(peek(1)))) {
        is_real = true;
        num += peek();
        advance();
        while (std::isdigit(static_cast<unsigned char>(peek()))) {
          num += peek();
          advance();
        }
      }
      if (peek() == 'e' || peek() == 'E') {
        is_real = true;
        num += peek();
        advance();
        if (peek() == '+' || peek() == '-') {
          num += peek();
          advance();
        }
        if (!std::isdigit(static_cast<unsigned char>(peek()))) {
          error("malformed exponent in numeric literal");
        }
        while (std::isdigit(static_cast<unsigned char>(peek()))) {
          num += peek();
          advance();
        }
      }
      if (is_real) {
        push(Tok::Real, tline, tcol).real_val = std::stod(num);
      } else {
        push(Tok::Int, tline, tcol).int_val = std::stoll(num);
      }
      continue;
    }

    if (c == '"') {
      advance();
      std::string s;
      while (i < src.size() && peek() != '"') {
        if (peek() == '\\') {
          advance();
          switch (peek()) {
            case 'n': s += '\n'; break;
            case 't': s += '\t'; break;
            case '\\': s += '\\'; break;
            case '"': s += '"'; break;
            default: error("unknown escape in string literal");
          }
          advance();
        } else {
          s += peek();
          advance();
        }
      }
      if (i >= src.size()) error("unterminated string literal");
      advance();  // closing quote
      push(Tok::String, tline, tcol).text = std::move(s);
      continue;
    }

    auto two = [&](char a, char b, Tok t) -> bool {
      if (c == a && peek(1) == b) {
        push(t, tline, tcol);
        advance(2);
        return true;
      }
      return false;
    };
    if (two('-', '>', Tok::Arrow)) continue;
    if (two('.', '.', Tok::DotDot)) continue;
    if (two('=', '=', Tok::Eq)) continue;
    if (two('!', '=', Tok::Ne)) continue;
    if (two('<', '=', Tok::Le)) continue;
    if (two('>', '=', Tok::Ge)) continue;
    if (two('&', '&', Tok::AndAnd)) continue;
    if (two('|', '|', Tok::OrOr)) continue;

    Tok single;
    switch (c) {
      case '{': single = Tok::LBrace; break;
      case '}': single = Tok::RBrace; break;
      case '[': single = Tok::LBracket; break;
      case ']': single = Tok::RBracket; break;
      case '(': single = Tok::LParen; break;
      case ')': single = Tok::RParen; break;
      case ';': single = Tok::Semi; break;
      case ':': single = Tok::Colon; break;
      case ',': single = Tok::Comma; break;
      case '.': single = Tok::Dot; break;
      case '=': single = Tok::Assign; break;
      case '<': single = Tok::Lt; break;
      case '>': single = Tok::Gt; break;
      case '+': single = Tok::Plus; break;
      case '-': single = Tok::Minus; break;
      case '*': single = Tok::Star; break;
      case '/': single = Tok::Slash; break;
      case '%': single = Tok::Percent; break;
      case '!': single = Tok::Not; break;
      case '?': single = Tok::Question; break;
      default:
        error(std::string("unexpected character '") + c + "'");
        return out;  // unreachable
    }
    push(single, tline, tcol);
    advance();
  }

  push(Tok::End, line, col);
  return out;
}

}  // namespace liberty::core::lss
