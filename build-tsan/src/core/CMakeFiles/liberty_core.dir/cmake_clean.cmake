file(REMOVE_RECURSE
  "CMakeFiles/liberty_core.dir/kernel/module.cpp.o"
  "CMakeFiles/liberty_core.dir/kernel/module.cpp.o.d"
  "CMakeFiles/liberty_core.dir/kernel/netlist.cpp.o"
  "CMakeFiles/liberty_core.dir/kernel/netlist.cpp.o.d"
  "CMakeFiles/liberty_core.dir/kernel/parallel_scheduler.cpp.o"
  "CMakeFiles/liberty_core.dir/kernel/parallel_scheduler.cpp.o.d"
  "CMakeFiles/liberty_core.dir/kernel/registry.cpp.o"
  "CMakeFiles/liberty_core.dir/kernel/registry.cpp.o.d"
  "CMakeFiles/liberty_core.dir/kernel/scheduler.cpp.o"
  "CMakeFiles/liberty_core.dir/kernel/scheduler.cpp.o.d"
  "CMakeFiles/liberty_core.dir/kernel/simulator.cpp.o"
  "CMakeFiles/liberty_core.dir/kernel/simulator.cpp.o.d"
  "CMakeFiles/liberty_core.dir/kernel/vcd.cpp.o"
  "CMakeFiles/liberty_core.dir/kernel/vcd.cpp.o.d"
  "CMakeFiles/liberty_core.dir/lss/elaborator.cpp.o"
  "CMakeFiles/liberty_core.dir/lss/elaborator.cpp.o.d"
  "CMakeFiles/liberty_core.dir/lss/lexer.cpp.o"
  "CMakeFiles/liberty_core.dir/lss/lexer.cpp.o.d"
  "CMakeFiles/liberty_core.dir/lss/parser.cpp.o"
  "CMakeFiles/liberty_core.dir/lss/parser.cpp.o.d"
  "libliberty_core.a"
  "libliberty_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/liberty_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
