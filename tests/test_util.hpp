// Shared helpers for the test suite.
#pragma once

#include <cstdint>
#include <vector>

#include "liberty/core/netlist.hpp"
#include "liberty/core/params.hpp"
#include "liberty/core/registry.hpp"
#include "liberty/core/simulator.hpp"
#include "liberty/pcl/pcl.hpp"

namespace liberty::test {

/// Registry with every library available to the test registered once.
inline liberty::core::ModuleRegistry& registry() {
  static liberty::core::ModuleRegistry r = [] {
    liberty::core::ModuleRegistry reg;
    liberty::pcl::register_pcl(reg);
    return reg;
  }();
  return r;
}

/// Params builder shorthand.
inline liberty::core::Params params(
    std::initializer_list<std::pair<const char*, liberty::Value>> kv) {
  liberty::core::Params p;
  for (const auto& [k, v] : kv) p.set(k, v);
  return p;
}

}  // namespace liberty::test
