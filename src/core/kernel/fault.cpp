// Out-of-line fault-seam slow paths (see liberty/core/fault.hpp).  Kept out
// of connection.hpp so the unfaulted inline resolve paths stay call-free.
#include "liberty/core/connection.hpp"
#include "liberty/core/fault.hpp"

namespace liberty::core {

void Connection::resolve_forward_faulted(Tristate enable, const Value& v) {
  Tristate mapped_enable = enable;
  Value mapped_value = v;
  fault_->filter_forward(*this, mapped_enable, mapped_value);
  resolve_forward_impl(mapped_enable, mapped_value);
}

void Connection::resolve_backward_faulted(Tristate intent) {
  Tristate mapped_intent = intent;
  fault_->filter_backward(*this, mapped_intent);
  resolve_backward_impl(mapped_intent);
}

}  // namespace liberty::core
