// Wireless fabric (§3.3: "wireless fabrics in sensor networks";
// "abstractions of different traffic patterns in mobile sensor networks").
//
// WirelessChannel models a shared CSMA medium: at most one packet is on the
// air at a time; while the medium is busy, would-be senders are deferred
// (carrier sense is free through the handshake — a nack is "channel
// busy").  When two or more deferred senders start in the same idle slot
// they collide and all their packets are lost.  Delivery additionally
// suffers i.i.d. loss with probability `loss`.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "liberty/ccl/flit.hpp"
#include "liberty/core/module.hpp"
#include "liberty/core/params.hpp"
#include "liberty/support/rng.hpp"

namespace liberty::ccl {

/// Parameters:
///   airtime   cycles a packet occupies the medium (>= 1)       [8]
///   loss      i.i.d. delivery loss probability                 [0.0]
///   seed      RNG seed for losses                              [1]
///
/// Inputs/outputs are indexed by radio id; flits are delivered to
/// out[dst].  Stats: sent, delivered, collisions, lost, busy_cycles.
class WirelessChannel : public liberty::core::Module {
 public:
  WirelessChannel(const std::string& name,
                  const liberty::core::Params& params);

  void cycle_start(liberty::core::Cycle c) override;
  void react() override;
  void end_of_cycle() override;
  void declare_deps(liberty::core::Deps& deps) const override;
  void save_state(liberty::core::StateWriter& w) const override;
  void load_state(liberty::core::StateReader& r) override;

 private:
  liberty::core::Port& in_;
  liberty::core::Port& out_;
  std::uint64_t airtime_;
  double loss_;
  liberty::Rng rng_;

  bool busy_ = false;
  liberty::core::Cycle free_at_ = 0;
  bool has_payload_ = false;  // current transmission survived collision
  liberty::Value tx_value_;   // packet currently on the air
  std::size_t tx_dst_ = 0;
  liberty::Value on_air_;     // completed packet awaiting receiver
  std::size_t dst_ = 0;
  bool delivered_pending_ = false;
};

}  // namespace liberty::ccl
