file(REMOVE_RECURSE
  "CMakeFiles/bench_cmp.dir/bench_cmp.cpp.o"
  "CMakeFiles/bench_cmp.dir/bench_cmp.cpp.o.d"
  "bench_cmp"
  "bench_cmp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
