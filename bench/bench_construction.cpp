// E1 (paper Figure 1): LSS -> constructor -> executable simulator.
//
// Measures the full construction pipeline (parse + elaborate + finalize +
// scheduler build) against specification size, and the resulting simulation
// throughput.  Shape expectation: construction scales ~linearly with
// instance count and is amortized within a few thousand simulated cycles.
#include <sstream>

#include "bench_util.hpp"

using namespace liberty;
using namespace liberty::bench;

namespace {

/// Generate an LSS spec with `lanes` parallel source->queue->delay->sink
/// chains (5 instances + 4 connections per lane, plus hierarchy).
std::string make_spec(int lanes) {
  std::ostringstream os;
  os << "module lane {\n"
        "  inport in; outport out;\n"
        "  instance q : pcl.queue { depth = 4; };\n"
        "  instance d : pcl.delay { latency = 2; };\n"
        "  connect q.out -> d.in;\n"
        "  export q.in as in;\n"
        "  export d.out as out;\n"
        "}\n"
        "param N = "
     << lanes
     << ";\n"
        "for i in 0 .. N {\n"
        "  instance src[i] : pcl.source { kind = \"counter\"; period = 2; };\n"
        "  instance ln[i] : lane;\n"
        "  instance sink[i] : pcl.sink;\n"
        "  connect src[i].out -> ln[i].in;\n"
        "  connect ln[i].out -> sink[i].in;\n"
        "}\n";
  return os.str();
}

}  // namespace

int main() {
  std::printf("E1: simulator construction (Figure 1 pipeline)\n\n");
  Table t({"instances", "construct_ms", "us/instance", "sim_kcycles/s",
           "xfers/cycle"});

  for (const int lanes : {8, 32, 128, 512, 1024}) {
    const std::string spec = make_spec(lanes);
    core::Netlist nl;
    std::unique_ptr<core::Simulator> sim;
    const double build_s = time_seconds([&] {
      core::lss::build_from_lss(spec, "gen.lss", nl, registry());
      sim = std::make_unique<core::Simulator>(nl,
                                              core::SchedulerKind::Static);
    });
    constexpr std::uint64_t kCycles = 2000;
    const double run_s = time_seconds([&] { sim->run(kCycles); });
    std::uint64_t xfers = 0;
    for (const auto& c : nl.connections()) xfers += c->transfer_count();
    t.row({fmt(static_cast<std::uint64_t>(nl.module_count())),
           fmt(build_s * 1e3, 3),
           fmt(build_s * 1e6 / static_cast<double>(nl.module_count()), 2),
           fmt(static_cast<double>(kCycles) / 1e3 / run_s, 1),
           fmt(static_cast<double>(xfers) / static_cast<double>(kCycles),
               2)});
  }
  t.print();
  std::printf("\nshape check: construction cost per instance is ~flat "
              "(linear total), and is amortized within ~2k cycles.\n");
  return 0;
}
