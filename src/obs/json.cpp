#include "liberty/obs/json.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "liberty/support/error.hpp"

namespace liberty::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::field(const char* key, double v) {
  prefix(key);
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  os_ << buf;
}

void JsonWriter::prefix(const char* key) {
  if (need_comma_) os_ << ',';
  if (depth_ > 0) {
    os_ << '\n';
    for (std::size_t i = 0; i < 2 * depth_; ++i) os_ << ' ';
  }
  if (key != nullptr) os_ << '"' << json_escape(key) << "\": ";
  need_comma_ = true;
}

void JsonWriter::open(char bracket, const char* key) {
  if (depth_ > 0) prefix(key);
  os_ << bracket;
  ++depth_;
  need_comma_ = false;
}

void JsonWriter::close(char bracket) {
  --depth_;
  os_ << '\n';
  for (std::size_t i = 0; i < 2 * depth_; ++i) os_ << ' ';
  os_ << bracket;
  need_comma_ = true;
  if (depth_ == 0) os_ << '\n';
}

const JsonValue* JsonValue::get(std::string_view key) const noexcept {
  if (kind != Kind::Object) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw liberty::Error("JSON parse error at offset " +
                         std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::String;
        v.string = parse_string();
        return v;
      }
      case 't':
      case 'f': {
        JsonValue v;
        v.kind = JsonValue::Kind::Bool;
        if (consume_literal("true")) {
          v.boolean = true;
        } else if (consume_literal("false")) {
          v.boolean = false;
        } else {
          fail("bad literal");
        }
        return v;
      }
      case 'n': {
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      }
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::Object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::Array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape");
            }
          }
          // Basic-multilingual-plane passthrough as UTF-8 (the obs formats
          // never emit surrogate pairs).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    JsonValue v;
    v.kind = JsonValue::Kind::Number;
    const std::string num(text_.substr(start, pos_ - start));
    char* end = nullptr;
    v.number = std::strtod(num.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("bad number '" + num + "'");
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue json_parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace liberty::obs
