// Statistical traffic workloads (§3.3: "modeling of traffic workloads").
//
// TrafficGen is the "statistical packet generator" of §2.2 — the abstract
// stand-in that a detailed processor + network interface can replace
// without touching the fabric model (bench_refinement measures exactly that
// swap).
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "liberty/ccl/flit.hpp"
#include "liberty/core/module.hpp"
#include "liberty/core/params.hpp"
#include "liberty/support/rng.hpp"

namespace liberty::ccl {

/// Injects single-flit packets with a configurable spatial pattern.
///
/// Parameters:
///   id          source node id                                   [0]
///   nodes       node count                                       [1]
///   pattern     uniform | transpose | bitcomplement | neighbor |
///               hotspot | fixed                                  [uniform]
///   rate        injection probability per cycle                  [0.1]
///   count       packets to inject (0 = unlimited)                [0]
///   dst         destination for pattern=fixed                    [0]
///   hotspot     hotspot node (pattern=hotspot)                   [0]
///   hotspot_frac fraction of traffic to the hotspot              [0.5]
///   cols        mesh columns (transpose)                         [1]
///   vcs         VCs flits are spread across (packet % vcs)       [2]
///   seed        RNG seed (combined with id)                      [1]
///
/// Stats: injected, backlog (open-loop source queue depth).
class TrafficGen : public liberty::core::Module {
 public:
  TrafficGen(const std::string& name, const liberty::core::Params& params);

  void cycle_start(liberty::core::Cycle c) override;
  void end_of_cycle() override;
  void declare_deps(liberty::core::Deps& deps) const override;
  void save_state(liberty::core::StateWriter& w) const override;
  void load_state(liberty::core::StateReader& r) override;

  [[nodiscard]] std::uint64_t injected() const noexcept { return injected_; }

 private:
  [[nodiscard]] std::size_t pick_destination();

  liberty::core::Port& out_;
  std::size_t id_num_;
  std::size_t nodes_;
  std::string pattern_;
  double rate_;
  std::uint64_t count_;
  std::size_t fixed_dst_;
  std::size_t hotspot_;
  double hotspot_frac_;
  std::size_t cols_;
  std::size_t vcs_;
  std::size_t length_;
  liberty::Rng rng_;

  std::deque<liberty::Value> backlog_;
  std::uint64_t generated_ = 0;
  std::uint64_t injected_ = 0;

  // Resolved-once stat handles (see StatSet::bind).
  liberty::Accumulator* backlog_stat_ = nullptr;
  liberty::Counter* injected_stat_ = nullptr;
};

/// Consumes flits and measures end-to-end latency and hop counts.
///
/// Stats: received, latency (histogram), hops (histogram).
class TrafficSink : public liberty::core::Module {
 public:
  TrafficSink(const std::string& name, const liberty::core::Params& params);

  void end_of_cycle() override;
  void save_state(liberty::core::StateWriter& w) const override;
  void load_state(liberty::core::StateReader& r) override;
  void declare_opt(liberty::core::OptTraits& traits) const override;
  [[nodiscard]] bool can_sleep() const override;

  [[nodiscard]] std::uint64_t received() const noexcept { return received_; }
  [[nodiscard]] double mean_latency() const;
  [[nodiscard]] double mean_hops() const;

 private:
  liberty::core::Port& in_;
  std::uint64_t stop_after_;
  std::uint64_t received_ = 0;

  // Resolved-once stat handles (see StatSet::bind).
  liberty::Counter* received_stat_ = nullptr;
  liberty::Counter* packets_stat_ = nullptr;
  liberty::Histogram* latency_stat_ = nullptr;
  liberty::Histogram* hops_stat_ = nullptr;
};

}  // namespace liberty::ccl
