
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pcl/arbiter.cpp" "src/pcl/CMakeFiles/liberty_pcl.dir/arbiter.cpp.o" "gcc" "src/pcl/CMakeFiles/liberty_pcl.dir/arbiter.cpp.o.d"
  "/root/repo/src/pcl/buffer.cpp" "src/pcl/CMakeFiles/liberty_pcl.dir/buffer.cpp.o" "gcc" "src/pcl/CMakeFiles/liberty_pcl.dir/buffer.cpp.o.d"
  "/root/repo/src/pcl/delay.cpp" "src/pcl/CMakeFiles/liberty_pcl.dir/delay.cpp.o" "gcc" "src/pcl/CMakeFiles/liberty_pcl.dir/delay.cpp.o.d"
  "/root/repo/src/pcl/memory_array.cpp" "src/pcl/CMakeFiles/liberty_pcl.dir/memory_array.cpp.o" "gcc" "src/pcl/CMakeFiles/liberty_pcl.dir/memory_array.cpp.o.d"
  "/root/repo/src/pcl/misc.cpp" "src/pcl/CMakeFiles/liberty_pcl.dir/misc.cpp.o" "gcc" "src/pcl/CMakeFiles/liberty_pcl.dir/misc.cpp.o.d"
  "/root/repo/src/pcl/queue.cpp" "src/pcl/CMakeFiles/liberty_pcl.dir/queue.cpp.o" "gcc" "src/pcl/CMakeFiles/liberty_pcl.dir/queue.cpp.o.d"
  "/root/repo/src/pcl/registry.cpp" "src/pcl/CMakeFiles/liberty_pcl.dir/registry.cpp.o" "gcc" "src/pcl/CMakeFiles/liberty_pcl.dir/registry.cpp.o.d"
  "/root/repo/src/pcl/routing.cpp" "src/pcl/CMakeFiles/liberty_pcl.dir/routing.cpp.o" "gcc" "src/pcl/CMakeFiles/liberty_pcl.dir/routing.cpp.o.d"
  "/root/repo/src/pcl/sink.cpp" "src/pcl/CMakeFiles/liberty_pcl.dir/sink.cpp.o" "gcc" "src/pcl/CMakeFiles/liberty_pcl.dir/sink.cpp.o.d"
  "/root/repo/src/pcl/source.cpp" "src/pcl/CMakeFiles/liberty_pcl.dir/source.cpp.o" "gcc" "src/pcl/CMakeFiles/liberty_pcl.dir/source.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/core/CMakeFiles/liberty_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/support/CMakeFiles/liberty_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
