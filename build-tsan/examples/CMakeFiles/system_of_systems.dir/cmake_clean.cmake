file(REMOVE_RECURSE
  "CMakeFiles/system_of_systems.dir/system_of_systems.cpp.o"
  "CMakeFiles/system_of_systems.dir/system_of_systems.cpp.o.d"
  "system_of_systems"
  "system_of_systems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/system_of_systems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
