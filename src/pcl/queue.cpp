#include "liberty/pcl/queue.hpp"

#include "liberty/support/error.hpp"

namespace liberty::pcl {

using liberty::core::AckMode;
using liberty::core::Cycle;
using liberty::core::Deps;
using liberty::core::Params;

Queue::Queue(const std::string& name, const Params& params)
    : Module(name),
      in_(add_in("in", AckMode::Managed, 0, 1)),
      out_(add_out("out", 0, 1)),
      depth_(static_cast<std::size_t>(params.get_int("depth", 8))),
      bypass_ack_(params.get_bool("bypass_ack", false)) {
  if (depth_ == 0) {
    throw liberty::ElaborationError("pcl.queue '" + name +
                                    "': depth must be >= 1");
  }
}

void Queue::cycle_start(Cycle) {
  stats().bind(occupancy_stat_, "occupancy");
  occupancy_stat_->add(static_cast<double>(items_.size()));
  if (!items_.empty()) {
    out_.send(items_.front());
  } else {
    out_.idle();
  }
  if (items_.size() < depth_) {
    in_.ack();
  } else if (!bypass_ack_) {
    in_.nack();
    stats().bind(full_stalls_stat_, "full_stalls");
    full_stalls_stat_->inc();
  }
  // When full with bypass_ack, the input ack resolves in react() once the
  // output ack is known.
}

void Queue::react() {
  if (bypass_ack_ && !in_.ack_driven() && out_.ack_known()) {
    if (out_.acked() && !items_.empty()) {
      in_.ack();  // head drains this cycle; its slot is reusable
    } else {
      in_.nack();
      stats().bind(full_stalls_stat_, "full_stalls");
      full_stalls_stat_->inc();
    }
  }
}

void Queue::end_of_cycle() {
  if (out_.transferred()) {
    items_.pop_front();
    stats().bind(dequeued_stat_, "dequeued");
    dequeued_stat_->inc();
  }
  if (in_.transferred()) {
    items_.push_back(in_.data());
    stats().bind(enqueued_stat_, "enqueued");
    enqueued_stat_->inc();
  }
}

void Queue::save_state(liberty::core::StateWriter& w) const {
  w.put_size(items_.size());
  for (const auto& v : items_) w.put(v);
}

void Queue::load_state(liberty::core::StateReader& r) {
  items_.clear();
  const std::size_t n = r.get_size();
  for (std::size_t i = 0; i < n; ++i) items_.push_back(r.get());
}

void Queue::declare_deps(Deps& deps) const {
  deps.state_only(out_);
  if (bypass_ack_) {
    deps.depends(in_, {liberty::core::bwd(out_)});
  } else {
    deps.state_only(in_);
  }
}

}  // namespace liberty::pcl
