// Elaborator: the "Liberty Simulator Constructor" of the paper's Figure 1.
//
// "LSE reads the LSS, instantiates module templates into module instances,
// and weaves the specification and module instances together to form an
// executable simulator." (§2)
//
// Elaboration walks the parsed specification, evaluating parameters and
// generative constructs (for/if), instantiating templates from the shared
// ModuleRegistry or from LSS-defined hierarchical modules, and connecting
// ports — producing a flat Netlist ready for simulator construction.
// Hierarchical modules are elaborated by inlining: instance "h" of a module
// containing "q" yields the flat instance "h.q", and the module's exported
// ports become aliases resolved at connect time.  This gives the paper's
// hierarchical composition with zero simulation-time overhead.
#pragma once

#include <map>
#include <string>
#include <string_view>

#include "liberty/core/lss/ast.hpp"
#include "liberty/core/netlist.hpp"
#include "liberty/core/registry.hpp"
#include "liberty/support/value.hpp"

namespace liberty::core::lss {

class Elaborator {
 public:
  explicit Elaborator(const ModuleRegistry& registry) : registry_(registry) {}

  /// Elaborate `spec` into `netlist`.  `overrides` replaces the default
  /// values of top-level `param` declarations (the host program's knob for
  /// sweeping a specification).  The netlist is left un-finalized so the
  /// caller may add instrumentation before finalize().
  void elaborate(const Spec& spec, Netlist& netlist,
                 const std::map<std::string, liberty::Value>& overrides = {});

 private:
  const ModuleRegistry& registry_;
};

/// One-call convenience: parse `source`, elaborate it against `registry`,
/// and finalize the netlist.
void build_from_lss(std::string_view source, const std::string& filename,
                    Netlist& netlist, const ModuleRegistry& registry,
                    const std::map<std::string, liberty::Value>& overrides = {});

}  // namespace liberty::core::lss
