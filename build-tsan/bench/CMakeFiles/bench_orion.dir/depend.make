# Empty dependencies file for bench_orion.
# This may be replaced when dependencies are built.
