#include "liberty/support/stats.hpp"

namespace liberty {

void StatSet::dump(std::ostream& os, const std::string& prefix) const {
  for (const auto& [name, c] : counters_) {
    os << prefix << '.' << name << " = " << c.value() << '\n';
  }
  for (const auto& [name, a] : accs_) {
    os << prefix << '.' << name << " : n=" << a.count() << " mean=" << a.mean()
       << " min=" << a.min() << " max=" << a.max() << '\n';
  }
  for (const auto& [name, h] : hists_) {
    const auto& s = h.summary();
    os << prefix << '.' << name << " : n=" << s.count() << " mean=" << s.mean()
       << " p50=" << h.quantile(0.5) << " p95=" << h.quantile(0.95)
       << " p99=" << h.quantile(0.99) << " max=" << s.max() << '\n';
  }
}

}  // namespace liberty
