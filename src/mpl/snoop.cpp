#include "liberty/mpl/snoop.hpp"

#include <algorithm>

#include "liberty/pcl/payloads.hpp"
#include "liberty/support/error.hpp"

namespace liberty::mpl {

using liberty::core::AckMode;
using liberty::core::Cycle;
using liberty::core::Deps;
using liberty::core::Params;
using liberty::pcl::MemReq;
using liberty::pcl::MemResp;

// ---------------------------------------------------------------------------
// SnoopCache
// ---------------------------------------------------------------------------

SnoopCache::SnoopCache(const std::string& name, const Params& params)
    : Module(name),
      cpu_req_(add_in("cpu_req", AckMode::Managed, 0, 1)),
      cpu_resp_(add_out("cpu_resp", 0, 1)),
      bus_out_(add_out("bus_out", 0, 1)),
      bus_in_(add_in("bus_in", AckMode::AutoAccept, 0, 1)),
      id_num_(static_cast<std::size_t>(params.get_int("id", 0))),
      model_(static_cast<std::size_t>(params.get_int("sets", 16)),
             static_cast<std::size_t>(params.get_int("ways", 2)),
             static_cast<std::size_t>(params.get_int("line_words", 4)),
             upl::replacement_from_string(
                 params.get_string("replacement", "lru"))),
      hit_latency_(
          static_cast<std::uint64_t>(params.get_int("hit_latency", 1))) {}

void SnoopCache::send(CohMsg::Type type, std::uint64_t line, std::size_t dst,
                      std::vector<std::int64_t> words, bool exclusive,
                      std::uint64_t tag) {
  outq_.push_back(liberty::Value::make<CohMsg>(type, line, id_num_, dst, tag,
                                               std::move(words), exclusive));
}

bool SnoopCache::sendable(const CohMsg& msg) const {
  if (msg.type != CohMsg::Type::GetS && msg.type != CohMsg::Type::GetX) {
    return true;  // data, writebacks, and Done always flow
  }
  return !txn_open_;  // a new request waits for the bus to go idle
}

void SnoopCache::cycle_start(Cycle c) {
  if (!respq_.empty() && resp_ready_.front() <= c) {
    cpu_resp_.send(respq_.front());
  } else {
    cpu_resp_.idle();
  }

  // Offer the first bus-eligible queued message.
  sending_.reset();
  for (std::size_t i = 0; i < outq_.size(); ++i) {
    if (sendable(*outq_[i].as<CohMsg>())) {
      sending_ = i;
      break;
    }
  }
  if (sending_) {
    bus_out_.send(outq_[*sending_]);
  } else {
    bus_out_.idle();
  }

  // One outstanding miss at a time.
  if (!miss_) {
    cpu_req_.ack();
  } else {
    cpu_req_.nack();
  }
}

void SnoopCache::complete_locally(const liberty::Value& req_value) {
  const auto req = req_value.as<MemReq>();
  const std::uint64_t base = model_.line_addr(req->addr);
  auto& words = data_[base];
  const auto off = static_cast<std::size_t>(req->addr - base);
  std::int64_t result = 0;
  if (req->op == MemReq::Op::Read) {
    result = words[off];
  } else {
    words[off] = req->data;
  }
  respq_.push_back(liberty::Value::make<MemResp>(
      req->tag, result, req->op == MemReq::Op::Write));
  resp_ready_.push_back(now() + hit_latency_);
}

void SnoopCache::handle_cpu(const liberty::Value& v) {
  const auto req = v.as<MemReq>();
  const std::uint64_t base = model_.line_addr(req->addr);
  upl::CacheModel::Line* line = model_.lookup(req->addr);

  if (line != nullptr) {
    const bool write = req->op == MemReq::Op::Write;
    if (!write || line->meta == kModified) {
      stats().counter("hits").inc();
      complete_locally(v);
      return;
    }
    // Write hit on S: upgrade.
    stats().counter("upgrades").inc();
    miss_ = Outstanding{v, base, /*upgrade=*/true, next_tag_++};
    send(CohMsg::Type::GetX, base, ~0ULL, {}, /*exclusive=*/true,
         miss_->tag);
    return;
  }

  stats().counter("misses").inc();
  miss_ = Outstanding{v, base, /*upgrade=*/false, next_tag_++};
  send(req->op == MemReq::Op::Read ? CohMsg::Type::GetS : CohMsg::Type::GetX,
       base, ~0ULL, {}, false, miss_->tag);
}

void SnoopCache::install_and_complete(const CohMsg& msg) {
  // Victim eviction (writeback if dirty M).
  upl::CacheModel::Line& way = model_.victim(msg.line);
  if (way.valid) {
    const std::uint64_t victim = model_.addr_of(way, model_.set_of(msg.line));
    if (way.meta == kModified) {
      stats().counter("writebacks").inc();
      send(CohMsg::Type::WbData, victim, ~0ULL, data_[victim]);
    }
    data_.erase(victim);
  }
  model_.fill(way, msg.line, /*dirty=*/false);
  way.meta = msg.exclusive ? kModified : kShared;
  data_[msg.line] = msg.words;
  complete_locally(miss_->cpu_req);
  if (miss_->cpu_req.as<MemReq>()->op == MemReq::Op::Write) {
    way.meta = kModified;
  }
  const std::uint64_t tag = miss_->tag;
  miss_.reset();
  send(CohMsg::Type::Done, msg.line, ~0ULL, {}, false, tag);
}

std::string SnoopCache::debug_state(std::uint64_t addr) const {
  std::string out = name() + ": ";
  if (const auto* line = model_.lookup(addr)) {
    out += "line " + std::to_string(model_.line_addr(addr)) +
           " meta=" + std::to_string(line->meta);
  } else {
    out += "line absent";
  }
  if (miss_) {
    out += " miss{line=" + std::to_string(miss_->line) +
           " upgrade=" + std::to_string(miss_->upgrade) + "}";
  }
  if (txn_open_) out += " txn_open(src=" + std::to_string(txn_src_) + ")";
  out += " outq=" + std::to_string(outq_.size());
  for (const auto& v : outq_) out += " [" + v.to_string() + "]";
  return out;
}

void SnoopCache::supply_from_writeback(const CohMsg& msg, bool exclusive) {
  for (const liberty::Value& v : outq_) {
    const auto pending = v.as<CohMsg>();
    if (pending->type == CohMsg::Type::WbData && pending->line == msg.line) {
      stats().counter("supplies_from_wb").inc();
      send(CohMsg::Type::Data, msg.line, msg.src, pending->words, exclusive,
           msg.tag);
      return;
    }
  }
}

void SnoopCache::snoop(const CohMsg& msg) {
  // Transaction bookkeeping first: requests open, the requester's Done
  // closes.
  switch (msg.type) {
    case CohMsg::Type::GetS:
    case CohMsg::Type::GetX:
      txn_open_ = true;
      txn_src_ = msg.src;
      break;
    case CohMsg::Type::Done:
      txn_open_ = false;
      return;
    default:
      break;
  }

  switch (msg.type) {
    case CohMsg::Type::GetS: {
      if (msg.src == id_num_) return;
      upl::CacheModel::Line* line = model_.lookup(msg.line, /*touch=*/false);
      if (line != nullptr && line->meta == kModified) {
        stats().counter("supplies").inc();
        send(CohMsg::Type::Data, msg.line, msg.src, data_[msg.line],
             /*exclusive=*/false, msg.tag);
        line->meta = kShared;  // memory reflects the broadcast data
      } else if (line == nullptr) {
        // Eviction race: memory may still believe we own this line while
        // our WbData waits in the queue — answer from it.
        supply_from_writeback(msg, /*exclusive=*/false);
      }
      return;
    }
    case CohMsg::Type::GetX: {
      upl::CacheModel::Line* line = model_.lookup(msg.line, /*touch=*/false);
      if (msg.src == id_num_) {
        // Our own request on the bus: an upgrade completes here.
        if (miss_ && miss_->upgrade && miss_->line == msg.line) {
          if (line != nullptr) {
            line->meta = kModified;
            complete_locally(miss_->cpu_req);
            const std::uint64_t tag = miss_->tag;
            miss_.reset();
            send(CohMsg::Type::Done, msg.line, ~0ULL, {}, false, tag);
          } else {
            // A racing writer took our S copy before our upgrade went out:
            // this same GetX now acts as a plain miss; the owner or memory
            // answers it with Data.
            miss_->upgrade = false;
          }
        }
        return;
      }
      if (line == nullptr) {
        supply_from_writeback(msg, /*exclusive=*/true);
        return;
      }
      stats().counter("invalidations_rx").inc();
      if (line->meta == kModified) {
        stats().counter("supplies").inc();
        send(CohMsg::Type::Data, msg.line, msg.src, data_[msg.line],
             /*exclusive=*/true, msg.tag);
      }
      model_.invalidate(msg.line);
      data_.erase(msg.line);
      return;
    }
    case CohMsg::Type::Data: {
      if (msg.dst == id_num_ && miss_ && !miss_->upgrade &&
          miss_->line == msg.line && msg.tag == miss_->tag) {
        install_and_complete(msg);
      }
      return;
    }
    default:
      return;  // WbData concerns only the memory
  }
}

void SnoopCache::end_of_cycle() {
  if (cpu_resp_.transferred()) {
    respq_.pop_front();
    resp_ready_.pop_front();
  }
  if (bus_out_.transferred() && sending_) {
    outq_.erase(outq_.begin() + static_cast<std::ptrdiff_t>(*sending_));
  }
  if (bus_in_.transferred()) snoop(*bus_in_.data().as<CohMsg>());
  if (cpu_req_.transferred()) handle_cpu(cpu_req_.data());
}

void SnoopCache::declare_deps(Deps& deps) const {
  deps.state_only(cpu_resp_);
  deps.state_only(bus_out_);
  deps.state_only(cpu_req_);
}

// ---------------------------------------------------------------------------
// SnoopMemory
// ---------------------------------------------------------------------------

SnoopMemory::SnoopMemory(const std::string& name, const Params& params)
    : Module(name),
      bus_in_(add_in("bus_in", AckMode::AutoAccept, 0, 1)),
      bus_out_(add_out("bus_out", 0, 1)),
      line_words_(static_cast<std::size_t>(params.get_int("line_words", 4))),
      latency_(static_cast<std::uint64_t>(params.get_int("latency", 12))) {}

void SnoopMemory::cycle_start(Cycle c) {
  if (!pending_.empty() && pending_.front().ready <= c) {
    bus_out_.send(pending_.front().msg);
  } else {
    bus_out_.idle();
  }
}

void SnoopMemory::end_of_cycle() {
  if (bus_out_.transferred()) pending_.pop_front();
  if (!bus_in_.transferred()) return;
  const auto msg = bus_in_.data().as<CohMsg>();
  switch (msg->type) {
    case CohMsg::Type::GetS:
    case CohMsg::Type::GetX: {
      const bool is_getx = msg->type == CohMsg::Type::GetX;
      const auto owned = owner_.find(msg->line);
      const bool cache_owns =
          owned != owner_.end() && owned->second != msg->src;
      if (cache_owns) {
        // The M owner (or its in-flight writeback) supplies.
        stats().counter("suppressed").inc();
      } else {
        // Respond — including to upgrade GetX: the upgrader may have lost
        // its S copy to a racing writer, and it cancels the response with
        // its Done when the upgrade succeeded after all.
        std::vector<std::int64_t> words(line_words_);
        for (std::size_t i = 0; i < line_words_; ++i) {
          words[i] = peek(msg->line + i);
        }
        pending_.push_back(PendingResp{
            liberty::Value::make<CohMsg>(CohMsg::Type::Data, msg->line,
                                         /*src=*/~0ULL, msg->src, msg->tag,
                                         std::move(words), is_getx),
            now() + latency_});
        stats().counter("responses").inc();
      }
      // The serialized GetX stream is the sole ownership authority.
      if (is_getx) owner_[msg->line] = msg->src;
      return;
    }
    case CohMsg::Type::Done: {
      // The transaction completed; drop any response of ours it no longer
      // needs (e.g. for an upgrade that succeeded without data).
      pending_.erase(
          std::remove_if(pending_.begin(), pending_.end(),
                         [&msg](const PendingResp& p) {
                           const auto resp = p.msg.as<CohMsg>();
                           return resp->line == msg->line &&
                                  resp->dst == msg->src &&
                                  resp->tag == msg->tag;
                         }),
          pending_.end());
      return;
    }
    case CohMsg::Type::Data:
    case CohMsg::Type::WbData: {
      stats().counter("reflections").inc();
      for (std::size_t i = 0; i < msg->words.size(); ++i) {
        store_[msg->line + i] = msg->words[i];
      }
      if (msg->type == CohMsg::Type::WbData) {
        const auto it = owner_.find(msg->line);
        if (it != owner_.end() && it->second == msg->src) owner_.erase(it);
      } else if (!msg->exclusive) {
        owner_.erase(msg->line);  // owner downgraded to S while supplying
      }
      return;
    }
    default:
      return;
  }
}

void SnoopMemory::declare_deps(Deps& deps) const {
  deps.state_only(bus_out_);
}

}  // namespace liberty::mpl
