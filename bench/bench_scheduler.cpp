// E8 (paper §2.3, ref [22]): fixing the model of computation makes the
// specification analyzable — the statically scheduled simulator beats the
// dynamic fixed-point scheduler.
//
// Shape expectation: static scheduling reduces react() invocations per
// cycle substantially (it calls each handler O(1) times on acyclic
// netlists) and wins wall-clock across netlist types; both schedulers
// produce identical results (asserted here and across the test suite).
#include "bench_util.hpp"

using namespace liberty;
using namespace liberty::bench;

namespace {

struct NetKind {
  const char* name;
  void (*build)(core::Netlist&);
};

void build_chains(core::Netlist& nl) {
  for (int i = 0; i < 64; ++i) {
    auto& src = nl.make<pcl::Source>(
        "s" + std::to_string(i),
        core::Params().set("kind", "counter").set("period", 1));
    auto& q = nl.make<pcl::Queue>("q" + std::to_string(i),
                                  core::Params().set("depth", 4));
    auto& d = nl.make<pcl::Delay>("d" + std::to_string(i),
                                  core::Params().set("latency", 3));
    auto& k = nl.make<pcl::Sink>("k" + std::to_string(i), core::Params());
    nl.connect(src.out("out"), q.in("in"));
    nl.connect(q.out("out"), d.in("in"));
    nl.connect(d.out("out"), k.in("in"));
  }
}

void build_mesh_net(core::Netlist& nl) {
  ccl::Fabric mesh = ccl::build_mesh(nl, "mesh", 4, 4);
  for (std::size_t i = 0; i < 16; ++i) {
    auto& g = nl.make<ccl::TrafficGen>(
        "g" + std::to_string(i),
        core::Params().set("id", static_cast<std::int64_t>(i))
            .set("nodes", 16).set("rate", 0.15).set("pattern", "uniform")
            .set("seed", 7));
    auto& s = nl.make<ccl::TrafficSink>("k" + std::to_string(i),
                                        core::Params());
    nl.connect_at(g.out("out"), 0, mesh.inject_port(i), 0);
    nl.connect_at(mesh.eject_port(i), 0, s.in("in"), 0);
  }
}

void build_arbiters(core::Netlist& nl) {
  // Combinational-heavy: arbiter trees (lots of react() activity).
  for (int t = 0; t < 8; ++t) {
    auto& arb = nl.make<pcl::Arbiter>("arb" + std::to_string(t),
                                      core::Params());
    auto& sink = nl.make<pcl::Sink>("k" + std::to_string(t), core::Params());
    for (int i = 0; i < 8; ++i) {
      auto& src = nl.make<pcl::Source>(
          "s" + std::to_string(t) + "_" + std::to_string(i),
          core::Params().set("kind", "token").set("period", 2));
      nl.connect(src.out("out"), arb.in("in"));
    }
    nl.connect(arb.out("out"), sink.in("in"));
  }
}

struct Result {
  double kcps = 0.0;             // kcycles per wall second
  double reacts_per_cycle = 0.0;
  std::uint64_t transfers = 0;
};

Result run(void (*build)(core::Netlist&), core::SchedulerKind kind,
           std::uint64_t cycles) {
  core::Netlist nl;
  build(nl);
  nl.finalize();
  core::Simulator sim(nl, kind);
  const double secs = time_seconds([&] { sim.run(cycles); });
  Result r;
  r.kcps = static_cast<double>(cycles) / 1e3 / secs;
  r.reacts_per_cycle = static_cast<double>(sim.scheduler().react_calls()) /
                       static_cast<double>(cycles);
  for (const auto& c : nl.connections()) r.transfers += c->transfer_count();
  return r;
}

}  // namespace

int main() {
  std::printf("E8: dynamic vs static scheduling (ref [22] optimization)\n\n");
  const NetKind kinds[] = {{"pipelines x64", build_chains},
                           {"mesh 4x4", build_mesh_net},
                           {"arbiter trees", build_arbiters}};
  constexpr std::uint64_t kCycles = 20'000;

  Table t({"netlist", "dyn kc/s", "static kc/s", "speedup", "dyn react/cyc",
           "static react/cyc"});
  for (const auto& k : kinds) {
    const Result dyn = run(k.build, core::SchedulerKind::Dynamic, kCycles);
    const Result sta = run(k.build, core::SchedulerKind::Static, kCycles);
    if (dyn.transfers != sta.transfers) {
      std::printf("ERROR: schedulers diverged on %s (%llu vs %llu)\n",
                  k.name, (unsigned long long)dyn.transfers,
                  (unsigned long long)sta.transfers);
      return 1;
    }
    t.row({k.name, fmt(dyn.kcps, 1), fmt(sta.kcps, 1),
           fmt(sta.kcps / dyn.kcps, 2), fmt(dyn.reacts_per_cycle, 2),
           fmt(sta.reacts_per_cycle, 2)});
  }
  t.print();
  std::printf("\nshape check: identical results; static scheduling reduces "
              "handler invocations and wins wall-clock.\n");
  return 0;
}
