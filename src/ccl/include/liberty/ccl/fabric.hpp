// Fabric elements: Link (point-to-point wire with latency + energy) and
// Bus (shared broadcast medium with arbitration) — §3.3's "buses and
// routers", spanning "on-chip buses ... to chip-to-chip electrical
// backplanes".
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "liberty/ccl/power.hpp"
#include "liberty/core/module.hpp"
#include "liberty/core/params.hpp"

namespace liberty::ccl {

/// Pipelined point-to-point link.
///
/// Parameters:
///   latency      traversal cycles (>= 1)                        [1]
///   capacity     flits in flight (0 = latency)                  [0]
///   link_mm      physical length for the energy model           [1.0]
///   flit_bits    width for the energy model                     [64]
///
/// Stats: traversals.  Energy via power().
class Link : public liberty::core::Module {
 public:
  Link(const std::string& name, const liberty::core::Params& params);

  void cycle_start(liberty::core::Cycle c) override;
  void end_of_cycle() override;
  void declare_deps(liberty::core::Deps& deps) const override;
  void save_state(liberty::core::StateWriter& w) const override;
  void load_state(liberty::core::StateReader& r) override;

  [[nodiscard]] const LinkPower& power() const noexcept { return power_; }

 private:
  struct Entry {
    liberty::Value value;
    liberty::core::Cycle ready;
  };

  liberty::core::Port& in_;
  liberty::core::Port& out_;
  std::uint64_t latency_;
  std::size_t capacity_;
  LinkPower power_;
  std::deque<Entry> entries_;
};

/// Shared bus: N masters arbitrate (round-robin); the winning transaction
/// occupies the bus for `occupancy` cycles and is then delivered either to
/// every output (broadcast = true — the snooping-coherence configuration)
/// or to the output selected by the payload's Routable key.
///
/// Parameters:
///   occupancy   bus cycles per transaction (>= 1)               [1]
///   broadcast   deliver to all outputs                          [true]
///
/// Stats: transactions, conflicts, busy_cycles.
class Bus : public liberty::core::Module {
 public:
  Bus(const std::string& name, const liberty::core::Params& params);

  void init() override;
  void cycle_start(liberty::core::Cycle c) override;
  void react() override;
  void end_of_cycle() override;
  void declare_deps(liberty::core::Deps& deps) const override;
  void save_state(liberty::core::StateWriter& w) const override;
  void load_state(liberty::core::StateReader& r) override;

 private:
  /// Should output `o` receive the current transaction?
  [[nodiscard]] bool wants(std::size_t o) const;

  liberty::core::Port& in_;
  liberty::core::Port& out_;
  std::uint64_t occupancy_;
  bool broadcast_;
  std::size_t rr_ = 0;

  // Transaction being delivered (bus already won, waiting for occupancy
  // and for every receiver to take its copy).
  bool busy_ = false;
  liberty::Value current_;
  liberty::core::Cycle deliver_at_ = 0;
  std::vector<bool> delivered_;
  int winner_ = -1;  // this cycle's arbitration result
  bool decided_ = false;
};

}  // namespace liberty::ccl
