// liberty::gen — compiled netlist execution.
//
// CompiledScheduler lowers the elaborated netlist to the bytecode of
// bytecode.hpp once at construction and thereafter runs each cycle by
// executing the three tapes.  It derives from AnalyzedScheduler so the
// schedule graph, SCC fixed-point iteration (run_scc), fused-chain sweeps,
// quiescence gate, fault seams and the generic cleanup endgame are shared
// with the static/parallel schedulers — the tapes replace only the per-cycle
// interpretation of that structure (virtual hook dispatch, per-node driver
// lookups, plan-fact branches), which is where the steady-state time goes.
//
// Semantics: the resolve tape mirrors StaticScheduler::resolve_cycle exactly
// (same SCC order, same react-then-default policy per node, same cleanup),
// so the compiled scheduler inherits the static scheduler's bit-identity
// with the dynamic baseline.  Because exactly one thread touches the
// channels, the constructor also switches the netlist's connections to
// relaxed channel publication (restored on destruction).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "liberty/core/scheduler.hpp"
#include "liberty/core/simulator.hpp"
#include "liberty/gen/bytecode.hpp"

namespace liberty::gen {

class CompiledScheduler : public liberty::core::AnalyzedScheduler {
 public:
  explicit CompiledScheduler(liberty::core::Netlist& netlist);
  ~CompiledScheduler() override;

  [[nodiscard]] std::string_view kind_name() const override {
    return "compiled";
  }

  [[nodiscard]] const Program& program() const noexcept { return program_; }

  /// Human-readable listing of the lowered program, one instruction per
  /// line with symbolic operands (lss_run --dump-bytecode; golden tests).
  [[nodiscard]] std::string disassemble() const;

  void visit_counters(const CounterVisitor& visit) const override;

 protected:
  void start_phase() override;
  void resolve_cycle() override;
  void update_phase(std::uint64_t eoc_token) override;

  void lower();
  void exec(const std::vector<Instr>& tape);

  Program program_;
  std::uint64_t eoc_token_ = 0;  // latched for the commit tape's EndGated

  // Exclusion masks consulted by lower(): modules (by ModuleId) and SCCs
  // (by schedule-graph SCC index) a derived backend executes itself, so
  // the tapes must not touch them.  Empty (the default, and always for
  // this class) means lower everything.  The native backend fills both
  // after compiling its image and re-lowers; the tapes then carry only the
  // residue it cannot execute natively.
  std::vector<char> native_module_;
  std::vector<char> native_scc_;

  // True when the current tapes carry gate forms (TrySleep / StartGated /
  // EndGated).  When the gate's measured cost-model guard later turns the
  // whole gate off, those forms become dead weight on every remaining
  // cycle, so start_phase re-lowers once against the now-disabled gate —
  // recompiling is how a compiled backend reacts to changed facts.
  // (Per-SCC retirement with the gate still alive does NOT re-lower: a
  // retired SCC's TrySleep degrades to one inline test, and surviving
  // SCCs still need their guards.)
  bool gated_program_ = false;

  // True when the resolve tape provably resolves every channel on its own
  // (no RunScc ops: multi-node SCC fixed points are the one construct whose
  // convergence loop needs the per-resolution hook counter).  In that mode
  // the constructor uninstalls the ResolveHooks — dropping a virtual call
  // plus thread-local bookkeeping from every channel resolution — and
  // resolve_cycle reconstructs the counters and the transferred dirty list
  // in one flat sweep after the tape halts, skipping the generic cleanup
  // endgame as well.  The checked-kernel audit still verifies full
  // resolution every cycle, so a lowering bug is loud, not silent.
  bool fast_resolve_ = false;
};

/// Make SchedulerKind::Compiled constructible: installs this backend's
/// factory into liberty_core's registration seam.  Idempotent; front ends
/// call it explicitly before building a Simulator because core cannot link
/// against gen (gen depends on the component libraries) and static-library
/// global initializers are not reliably pulled in.
void ensure_registered();

}  // namespace liberty::gen
