# Empty compiler generated dependencies file for liberty_nil.
# This may be replaced when dependencies are built.
