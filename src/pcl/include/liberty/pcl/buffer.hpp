// Buffer: the generalized buffering/scheduling structure.
//
// This is the paper's flagship reuse example: "a single module template can
// be instantiated to model a processor's instruction window, its reorder
// buffer, and the I/O buffers in a packet router" (§2.1).  The three roles
// differ only in issue discipline and readiness predicate, which are
// algorithmic parameters here:
//
//   router I/O buffer:   issue="fifo", ready = always            (plain FIFO)
//   reorder buffer:      issue="fifo", ready = completion check  (gated FIFO)
//   instruction window:  issue="any",  ready = operand check     (OOO issue)
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "liberty/core/module.hpp"
#include "liberty/core/params.hpp"

namespace liberty::pcl {

/// Capacity-limited buffer with configurable issue discipline.
///
/// Ports: `in` (width up to insert_width), `out` (width up to issue_width).
///
/// Parameters:
///   capacity      entries                                         [16]
///   issue         "fifo" (in order; head must be ready) or "any"
///                 (oldest-first scan over ready entries)          [fifo]
///
/// Algorithmic parameters (C++ hooks):
///   set_ready_fn(fn)  entry eligibility predicate                 [always]
///
/// Stats: inserted, issued, occupancy, issue_stalls.
class Buffer : public liberty::core::Module {
 public:
  using ReadyFn = std::function<bool(const liberty::Value&)>;

  Buffer(const std::string& name, const liberty::core::Params& params);

  void cycle_start(liberty::core::Cycle c) override;
  void end_of_cycle() override;
  void declare_deps(liberty::core::Deps& deps) const override;
  void save_state(liberty::core::StateWriter& w) const override;
  void load_state(liberty::core::StateReader& r) override;

  void set_ready_fn(ReadyFn fn) { ready_ = std::move(fn); }

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Mutable scan of buffered values, oldest first — lets controller
  /// modules (e.g. a writeback stage marking instructions complete) update
  /// entry state in place, the way hardware writes result tags into a
  /// window.  Intended for use from end_of_cycle() hooks.
  void for_each_entry(const std::function<void(liberty::Value&)>& fn) {
    for (auto& v : entries_) fn(v);
  }

 private:
  [[nodiscard]] bool is_ready(const liberty::Value& v) const {
    return !ready_ || ready_(v);
  }

  liberty::core::Port& in_;
  liberty::core::Port& out_;
  std::size_t capacity_;
  bool fifo_;
  ReadyFn ready_;
  std::deque<liberty::Value> entries_;
  std::vector<std::size_t> issued_idx_;  // entry index offered per out ep

  // Resolved-once stat handles (see StatSet::bind).
  liberty::Accumulator* occupancy_stat_ = nullptr;
  liberty::Counter* issued_stat_ = nullptr;
  liberty::Counter* inserted_stat_ = nullptr;
  liberty::Counter* issue_stalls_stat_ = nullptr;
};

}  // namespace liberty::pcl
