// Small string helpers used by the LSS front end and reporting code.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace liberty {

[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep);

/// Trim ASCII whitespace from both ends.
[[nodiscard]] std::string_view trim(std::string_view s);

[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);

/// Join items with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& items,
                               std::string_view sep);

/// True when `s` is a valid identifier: [A-Za-z_][A-Za-z0-9_]*.
[[nodiscard]] bool is_identifier(std::string_view s);

}  // namespace liberty
