// Topology builders: compose routers and links into fabrics.
//
// These are the C++ counterparts of hierarchical LSS modules: each returns
// handles to the routers and exposes the per-node local ports so that any
// injector/ejector pair — statistical generator, processor NI, coherence
// controller — can be attached (§2.2's interchangeability).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "liberty/ccl/router.hpp"
#include "liberty/core/netlist.hpp"
#include "liberty/core/params.hpp"

namespace liberty::ccl {

/// A built fabric: routers indexed by node id plus local-port accessors.
struct Fabric {
  std::vector<Router*> routers;

  /// Port/endpoint to connect a node's injector output to.
  [[nodiscard]] liberty::core::Port& inject_port(std::size_t node) const {
    return routers.at(node)->in("in");
  }
  /// Port/endpoint carrying flits ejected at `node` (endpoint 0).
  [[nodiscard]] liberty::core::Port& eject_port(std::size_t node) const {
    return routers.at(node)->out("out");
  }

  [[nodiscard]] double total_router_energy_pj() const {
    double pj = 0.0;
    for (const Router* r : routers) pj += r->power().total_pj();
    return pj;
  }
  [[nodiscard]] double total_dynamic_pj() const {
    double pj = 0.0;
    for (const Router* r : routers) pj += r->power().dynamic_pj();
    return pj;
  }
  [[nodiscard]] double total_leakage_pj() const {
    double pj = 0.0;
    for (const Router* r : routers) pj += r->power().leakage_pj();
    return pj;
  }
};

/// Build a cols x rows 2D mesh of XY routers named "<prefix>.r<id>", wired
/// with Link instances ("<prefix>.l<id>.<dir>").  `router_params` may set
/// vcs/depth/pipeline/power parameters; `link_latency` applies to every
/// hop wire.  Local endpoint 0 of every router is left unconnected for the
/// caller.
Fabric build_mesh(liberty::core::Netlist& netlist, const std::string& prefix,
                  std::size_t cols, std::size_t rows,
                  const liberty::core::Params& router_params = {},
                  std::int64_t link_latency = 1);

/// Build an N-node bidirectional ring (shortest-path routing).
Fabric build_ring(liberty::core::Netlist& netlist, const std::string& prefix,
                  std::size_t nodes,
                  const liberty::core::Params& router_params = {},
                  std::int64_t link_latency = 1);

/// Build a cols x rows 2D torus (mesh plus wrap links, wrap-aware XY
/// routing).  Note: with single-flit packets and endpoint sinks the wrap
/// channels cannot deadlock; multi-flit wormhole traffic on a torus would
/// need the dateline VC discipline, which is future work (DESIGN.md).
Fabric build_torus(liberty::core::Netlist& netlist, const std::string& prefix,
                   std::size_t cols, std::size_t rows,
                   const liberty::core::Params& router_params = {},
                   std::int64_t link_latency = 1);

}  // namespace liberty::ccl
