#include "liberty/resil/watchdog.hpp"

#include <algorithm>
#include <string_view>
#include <utility>

#include "liberty/core/connection.hpp"
#include "liberty/core/netlist.hpp"
#include "liberty/core/simulator.hpp"
#include "liberty/obs/metrics.hpp"
#include "liberty/support/error.hpp"

namespace liberty::resil {

// --- Shared hashing ---------------------------------------------------------

std::uint64_t mix_transfer(std::uint64_t h, const core::Connection& c) {
  h = core::fnv1a_mix(h, static_cast<std::uint64_t>(c.id()) + 1);
  return core::digest_value(h, c.data());
}

std::uint64_t hash_resolved_transfers(const core::Netlist& netlist) {
  std::uint64_t h = core::kFnv1aInit;
  for (const auto& c : netlist.connections()) {
    if (c->transferred()) h = mix_transfer(h, *c);
  }
  return h;
}

std::uint64_t fold_trace(const std::vector<std::uint64_t>& hashes) {
  std::uint64_t h = core::kFnv1aInit;
  for (const std::uint64_t cycle_hash : hashes) {
    h = core::fnv1a_mix(h, cycle_hash);
  }
  return h;
}

// --- TraceRecorder ----------------------------------------------------------

void TraceRecorder::on_cycle_resolved(core::Cycle cycle) {
  if (hashes_.size() <= cycle) hashes_.resize(cycle + 1, core::kFnv1aInit);
  hashes_[cycle] = hash_resolved_transfers(*netlist_);
  ChainedProbe::on_cycle_resolved(cycle);
}

void TraceRecorder::truncate(core::Cycle cycle) {
  if (hashes_.size() > cycle) hashes_.resize(cycle);
}

// --- Diagnostics ------------------------------------------------------------

std::string_view diagnostic_kind_name(Diagnostic::Kind kind) noexcept {
  switch (kind) {
    case Diagnostic::Kind::Protocol: return "protocol";
    case Diagnostic::Kind::Divergence: return "divergence";
    case Diagnostic::Kind::NonConvergence: return "non_convergence";
    case Diagnostic::Kind::HandlerFault: return "handler_fault";
    case Diagnostic::Kind::Livelock: return "livelock";
    case Diagnostic::Kind::KernelError: return "kernel_error";
  }
  return "?";
}

std::string Diagnostic::format() const {
  std::string s = "cycle " + std::to_string(cycle) + " " +
                  std::string(diagnostic_kind_name(kind)) + ": " + detail;
  if (!module.empty()) s += " [module '" + module + "']";
  if (!connection.empty()) s += " [" + connection + "]";
  return s;
}

// --- Watchdog ---------------------------------------------------------------

void Watchdog::attach(core::Simulator& sim) {
  netlist_ = &sim.netlist();
  kernel_acked_.clear();
  const auto& conns = netlist_->connections();
  for (std::size_t i = 0; i < conns.size(); ++i) {
    if (conns[i]->ack_mode() == core::AckMode::AutoAccept &&
        !conns[i]->has_transfer_gate()) {
      kernel_acked_.push_back(i);
    }
  }
  sim.set_probe(this);
}

void Watchdog::record_baseline() {
  recording_ = true;
  baseline_.clear();
}

std::vector<std::vector<std::uint64_t>> Watchdog::take_baseline() {
  recording_ = false;
  return std::move(baseline_);
}

void Watchdog::set_baseline(std::vector<std::vector<std::uint64_t>> baseline) {
  recording_ = false;
  baseline_ = std::move(baseline);
}

void Watchdog::clear_baseline() {
  recording_ = false;
  baseline_.clear();
}

void Watchdog::record(Diagnostic d) {
  ++total_;
  ++by_kind_[static_cast<std::size_t>(d.kind)];
  if (diagnostics_.size() < cfg_.max_diagnostics) {
    diagnostics_.push_back(std::move(d));
  }
}

void Watchdog::on_cycle_begin(core::Cycle cycle) {
  if (cfg_.cycle_wall_budget > 0.0) {
    cycle_start_ = std::chrono::steady_clock::now();
    timing_ = true;
  }
  ChainedProbe::on_cycle_begin(cycle);
}

void Watchdog::on_cycle_resolved(core::Cycle cycle) {
  ++cycles_checked_;
  const std::uint64_t before = total_;
  std::string first_violation;

  if (cfg_.protocol_checks) {
    const auto& conns = netlist_->connections();
    for (const std::size_t i : kernel_acked_) {
      const core::Connection& c = *conns[i];
      if (c.acked() == c.enabled()) continue;
      Diagnostic d;
      d.kind = Diagnostic::Kind::Protocol;
      d.cycle = cycle;
      d.module = c.consumer() != nullptr ? c.consumer()->name() : "";
      d.connection = c.describe();
      d.detail = std::string("kernel-owned ack disagrees with enable (") +
                 (c.enabled() ? "offered" : "idle") + " but " +
                 (c.acked() ? "accepted" : "refused") + ")";
      if (first_violation.empty()) first_violation = d.format();
      record(std::move(d));
    }
  }

  if (recording_ || !baseline_.empty()) {
    const auto& conns = netlist_->connections();
    std::vector<std::uint64_t> row(conns.size(), core::kFnv1aInit);
    for (std::size_t i = 0; i < conns.size(); ++i) {
      if (conns[i]->transferred()) {
        row[i] = mix_transfer(core::kFnv1aInit, *conns[i]);
      }
    }
    if (recording_) {
      if (baseline_.size() <= cycle) {
        baseline_.resize(cycle + 1,
                         std::vector<std::uint64_t>(conns.size(),
                                                    core::kFnv1aInit));
      }
      baseline_[cycle] = std::move(row);
    } else if (cycle < baseline_.size()) {
      const std::vector<std::uint64_t>& expect = baseline_[cycle];
      const std::size_t n = std::min(expect.size(), row.size());
      for (std::size_t i = 0; i < n; ++i) {
        if (row[i] == expect[i]) continue;
        const core::Connection& c = *conns[i];
        Diagnostic d;
        d.kind = Diagnostic::Kind::Divergence;
        d.cycle = cycle;
        d.module = c.consumer() != nullptr ? c.consumer()->name() : "";
        d.connection = c.describe();
        if (expect[i] == core::kFnv1aInit) {
          d.detail = "unexpected transfer (fault-free baseline has none)";
        } else if (row[i] == core::kFnv1aInit) {
          d.detail = "missing transfer (fault-free baseline has one)";
        } else {
          d.detail = "transferred payload differs from fault-free baseline";
        }
        if (first_violation.empty()) first_violation = d.format();
        record(std::move(d));
      }
    }
  }

  if (cfg_.throw_on_violation && total_ != before) {
    // Abort pre-commit: no end_of_cycle handler has run, so every earlier
    // checkpoint still holds fault-free state (rollback soundness).
    throw liberty::SimulationError("watchdog: " + first_violation);
  }
  ChainedProbe::on_cycle_resolved(cycle);
}

void Watchdog::on_cycle_end(core::Cycle cycle) {
  if (timing_) {
    timing_ = false;
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      cycle_start_)
            .count();
    if (seconds > cfg_.cycle_wall_budget) {
      // Record-only even in throwing mode: on_cycle_end is post-commit, so
      // aborting here could strand a half-observed cycle.
      Diagnostic d;
      d.kind = Diagnostic::Kind::Livelock;
      d.cycle = cycle;
      d.detail = "cycle took " + std::to_string(seconds) +
                 " s (budget " + std::to_string(cfg_.cycle_wall_budget) +
                 " s)";
      record(std::move(d));
    }
  }
  ChainedProbe::on_cycle_end(cycle);
}

namespace {

/// Pull the X out of the first "module 'X'" in an error message.
[[nodiscard]] std::string extract_module(const std::string& what) {
  const std::string key = "module '";
  const std::size_t at = what.find(key);
  if (at == std::string::npos) return "";
  const std::size_t start = at + key.size();
  const std::size_t end = what.find('\'', start);
  if (end == std::string::npos) return "";
  return what.substr(start, end - start);
}

}  // namespace

void Watchdog::note_kernel_error(const std::string& what, core::Cycle cycle) {
  if (what.rfind("watchdog: ", 0) == 0) return;  // already recorded
  Diagnostic d;
  d.cycle = cycle;
  d.detail = what;
  if (what.find("did not converge") != std::string::npos) {
    d.kind = Diagnostic::Kind::NonConvergence;
  } else if (what.find("injected handler fault") != std::string::npos ||
             what.find("handler") != std::string::npos) {
    d.kind = Diagnostic::Kind::HandlerFault;
    d.module = extract_module(what);
  } else {
    d.kind = Diagnostic::Kind::KernelError;
    d.module = extract_module(what);
  }
  record(std::move(d));
}

void Watchdog::export_metrics(obs::MetricsRegistry& reg) const {
  reg.add_counter("resil.watchdog.cycles_checked", cycles_checked_);
  reg.add_counter("resil.watchdog.violations", total_);
  for (std::size_t k = 0; k < Diagnostic::kKindCount; ++k) {
    reg.add_counter(
        "resil.watchdog." +
            std::string(diagnostic_kind_name(
                static_cast<Diagnostic::Kind>(k))),
        by_kind_[k]);
  }
  reg.add_counter("resil.watchdog.diagnostics_dropped",
                  total_ > diagnostics_.size()
                      ? total_ - diagnostics_.size()
                      : 0);
}

}  // namespace liberty::resil
