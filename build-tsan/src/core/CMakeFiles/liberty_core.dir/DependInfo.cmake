
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/kernel/module.cpp" "src/core/CMakeFiles/liberty_core.dir/kernel/module.cpp.o" "gcc" "src/core/CMakeFiles/liberty_core.dir/kernel/module.cpp.o.d"
  "/root/repo/src/core/kernel/netlist.cpp" "src/core/CMakeFiles/liberty_core.dir/kernel/netlist.cpp.o" "gcc" "src/core/CMakeFiles/liberty_core.dir/kernel/netlist.cpp.o.d"
  "/root/repo/src/core/kernel/parallel_scheduler.cpp" "src/core/CMakeFiles/liberty_core.dir/kernel/parallel_scheduler.cpp.o" "gcc" "src/core/CMakeFiles/liberty_core.dir/kernel/parallel_scheduler.cpp.o.d"
  "/root/repo/src/core/kernel/registry.cpp" "src/core/CMakeFiles/liberty_core.dir/kernel/registry.cpp.o" "gcc" "src/core/CMakeFiles/liberty_core.dir/kernel/registry.cpp.o.d"
  "/root/repo/src/core/kernel/scheduler.cpp" "src/core/CMakeFiles/liberty_core.dir/kernel/scheduler.cpp.o" "gcc" "src/core/CMakeFiles/liberty_core.dir/kernel/scheduler.cpp.o.d"
  "/root/repo/src/core/kernel/simulator.cpp" "src/core/CMakeFiles/liberty_core.dir/kernel/simulator.cpp.o" "gcc" "src/core/CMakeFiles/liberty_core.dir/kernel/simulator.cpp.o.d"
  "/root/repo/src/core/kernel/vcd.cpp" "src/core/CMakeFiles/liberty_core.dir/kernel/vcd.cpp.o" "gcc" "src/core/CMakeFiles/liberty_core.dir/kernel/vcd.cpp.o.d"
  "/root/repo/src/core/lss/elaborator.cpp" "src/core/CMakeFiles/liberty_core.dir/lss/elaborator.cpp.o" "gcc" "src/core/CMakeFiles/liberty_core.dir/lss/elaborator.cpp.o.d"
  "/root/repo/src/core/lss/lexer.cpp" "src/core/CMakeFiles/liberty_core.dir/lss/lexer.cpp.o" "gcc" "src/core/CMakeFiles/liberty_core.dir/lss/lexer.cpp.o.d"
  "/root/repo/src/core/lss/parser.cpp" "src/core/CMakeFiles/liberty_core.dir/lss/parser.cpp.o" "gcc" "src/core/CMakeFiles/liberty_core.dir/lss/parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/support/CMakeFiles/liberty_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
