# Empty compiler generated dependencies file for test_upl_isa.
# This may be replaced when dependencies are built.
