#include "liberty/upl/memctl.hpp"

#include "liberty/upl/mem_protocol.hpp"
#include "liberty/support/error.hpp"

namespace liberty::upl {

using liberty::core::AckMode;
using liberty::core::Cycle;
using liberty::core::Deps;
using liberty::core::Params;

MemoryCtl::MemoryCtl(const std::string& name, const Params& params)
    : Module(name),
      req_(add_in("req", AckMode::Managed, 0, 1)),
      resp_(add_out("resp", 0, 1)),
      latency_(static_cast<std::uint64_t>(params.get_int("latency", 20))),
      line_words_(static_cast<std::size_t>(params.get_int("line_words", 4))),
      bandwidth_(static_cast<std::size_t>(params.get_int("bandwidth", 1))) {
  if (latency_ == 0 || line_words_ == 0) {
    throw liberty::ElaborationError("upl.memctl '" + name +
                                    "': latency and line_words must be >= 1");
  }
}

void MemoryCtl::cycle_start(Cycle c) {
  if (!pending_.empty() && pending_.front().ready <= c) {
    resp_.send(pending_.front().resp);
  } else {
    resp_.idle();
  }
  // Simple bandwidth model: accept while the response pipe is shallow.
  if (pending_.size() < bandwidth_ * 4) {
    req_.ack();
  } else {
    req_.nack();
  }
}

void MemoryCtl::end_of_cycle() {
  if (resp_.transferred()) pending_.pop_front();
  if (!req_.transferred()) return;
  const auto r = req_.data().as<LineReq>();
  switch (r->kind) {
    case LineReq::Kind::Fetch:
    case LineReq::Kind::FetchExclusive: {
      stats().counter("fetches").inc();
      std::vector<std::int64_t> words(line_words_);
      for (std::size_t i = 0; i < line_words_; ++i) {
        words[i] = peek(r->line + i);
      }
      pending_.push_back(Pending{
          liberty::Value::make<LineResp>(
              r->line, r->tag, r->requester, std::move(words),
              r->kind == LineReq::Kind::FetchExclusive),
          now() + latency_});
      break;
    }
    case LineReq::Kind::Writeback: {
      stats().counter("writebacks").inc();
      for (std::size_t i = 0; i < r->words.size(); ++i) {
        store_[r->line + i] = r->words[i];
      }
      break;
    }
  }
}

void MemoryCtl::declare_deps(Deps& deps) const {
  deps.state_only(resp_);
  deps.state_only(req_);
}

}  // namespace liberty::upl
