file(REMOVE_RECURSE
  "CMakeFiles/test_ccl_wormhole.dir/test_ccl_wormhole.cpp.o"
  "CMakeFiles/test_ccl_wormhole.dir/test_ccl_wormhole.cpp.o.d"
  "test_ccl_wormhole"
  "test_ccl_wormhole.pdb"
  "test_ccl_wormhole[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ccl_wormhole.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
