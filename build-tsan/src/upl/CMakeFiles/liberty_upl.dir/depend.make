# Empty dependencies file for liberty_upl.
# This may be replaced when dependencies are built.
