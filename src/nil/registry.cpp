#include "liberty/nil/nil.hpp"

namespace liberty::nil {

using liberty::core::ModuleRegistry;
using liberty::core::simple_factory;

void register_nil(ModuleRegistry& r) {
  r.register_template("nil.fabric_adapter",
                      "message <-> flit format converter",
                      simple_factory<FabricAdapter>());
  r.register_template("nil.nic_assist",
                      "programmable NIC hardware assists (DMA + MAC)",
                      simple_factory<NicAssist>());
}

}  // namespace liberty::nil
