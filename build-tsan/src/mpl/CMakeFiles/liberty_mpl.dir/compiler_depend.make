# Empty compiler generated dependencies file for liberty_mpl.
# This may be replaced when dependencies are built.
