// FaultHook: the kernel-side seam for deterministic fault injection.
//
// Resilience testing (liberty::resil) needs to perturb the 3-signal
// handshake — corrupt an offered payload, drop or fabricate an ack, wedge a
// channel, make a handler throw — and it needs the *same* perturbation to
// happen under every scheduler and every optimization level, or the
// differential oracle would blame the injector instead of the bug under
// study.  The kernel therefore exposes exactly two interception points with
// a determinism contract, and knows nothing else about fault semantics:
//
//  * filter_forward / filter_backward run at the top of a channel's
//    resolution, before the idempotence compare, and may rewrite the signal
//    (and, forward, the value) about to be applied.  Because the mapped
//    result is what lands in the connection's state, idempotent re-drives
//    by modules or the kernel map identically and remain no-ops.
//
//  * begin_cycle runs on the main thread at the very top of run_cycle,
//    before any phase, and may throw — the one scheduler-invariant point at
//    which a "module handler failed" fault can abort a cycle while every
//    channel is still clean (module react() order differs per scheduler, so
//    throwing from inside resolution would not be).
//
// Determinism contract for implementations: the mapping applied to a channel
// must be a pure function of (connection identity, current cycle, incoming
// signal) — NEVER of the incoming value.  The -O2 quiescence gate caches and
// replays post-mapping values; a value-dependent mapping would compose with
// itself on replay and diverge from -O0.  liberty::resil::FaultInjector is
// the reference implementation; see docs/resilience.md.
//
// Module-safety contract: a forward mapping may corrupt or suppress an
// offer, but must never fabricate one (enable Negated -> Asserted).  Module
// handlers are entitled to trust their own side of the handshake — a
// producer that idled keys end-of-cycle bookkeeping on transferred() being
// false (e.g. pcl::Source pops its backlog only on a real transfer), and a
// forged offer makes it pop state it never staged.  Backward mappings may
// flip acks freely: both ack polarities are always-legal inputs to a
// producer, and a consumer that sees a transfer it nacked merely over-
// accepts (a modeled fault), it does not corrupt kernel state.
//
// Cost contract: with no hook installed, each resolution pays one pointer
// null-check (same budget as the KernelProbe seam; bench_scheduler keeps
// both under 2%).
#pragma once

#include "liberty/core/types.hpp"
#include "liberty/support/tristate.hpp"
#include "liberty/support/value.hpp"

namespace liberty::core {

class Connection;

class FaultHook {
 public:
  virtual ~FaultHook() = default;

  /// Top of run_cycle, main thread, channels unresolved.  May throw
  /// SimulationError to model a handler failure at a scheduler-invariant,
  /// recovery-friendly point (no partial cycle state exists yet).
  virtual void begin_cycle(Cycle) {}

  /// Map an about-to-apply forward resolution (enable + data) in place.
  virtual void filter_forward(const Connection&, Tristate& /*enable*/,
                              Value& /*data*/) {}

  /// Map an about-to-apply backward resolution (ack) in place.
  virtual void filter_backward(const Connection&, Tristate& /*ack*/) {}
};

}  // namespace liberty::core
