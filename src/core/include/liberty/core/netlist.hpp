// Netlist: owns all module instances and connections of one system model.
//
// This is the output of elaboration (whether the model was composed in C++
// or from an LSS specification) and the input to simulator construction —
// the "Customized and Interconnected Component Instances" box of the paper's
// Figure 1.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <unordered_map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "liberty/core/connection.hpp"
#include "liberty/core/module.hpp"
#include "liberty/core/opt.hpp"
#include "liberty/core/types.hpp"

namespace liberty::core {

class Netlist {
 public:
  Netlist() = default;
  Netlist(const Netlist&) = delete;
  Netlist& operator=(const Netlist&) = delete;

  /// Construct and own a module of concrete type T.
  template <typename T, typename... Args>
  T& make(Args&&... args) {
    auto mod = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *mod;
    add(std::move(mod));
    return ref;
  }

  Module& add(std::unique_ptr<Module> m);

  /// Find a module instance by its (hierarchical) name; nullptr if absent.
  [[nodiscard]] Module* find(const std::string& name) const noexcept;
  /// As find(), but throws ElaborationError when absent.
  [[nodiscard]] Module& get(const std::string& name) const;

  /// Connect the next free endpoint of `from` to the next free endpoint of
  /// `to`.  Returns the new connection.
  Connection& connect(Port& from, Port& to);
  /// Connect specific endpoint indexes.
  Connection& connect_at(Port& from, std::size_t from_idx, Port& to,
                         std::size_t to_idx);

  /// Validate arities, install ack modes, assign ids, and call init() on
  /// every module.  Must be called exactly once, before simulation.
  void finalize();
  [[nodiscard]] bool finalized() const noexcept { return finalized_; }

  [[nodiscard]] const std::vector<std::unique_ptr<Module>>& modules()
      const noexcept {
    return modules_;
  }
  [[nodiscard]] const std::vector<std::unique_ptr<Connection>>& connections()
      const noexcept {
    return conns_;
  }

  [[nodiscard]] std::size_t module_count() const noexcept {
    return modules_.size();
  }
  [[nodiscard]] std::size_t connection_count() const noexcept {
    return conns_.size();
  }

  /// True once any module has called Module::request_stop() this run.
  /// Atomic because modules may request a stop from parallel-scheduler
  /// worker threads.
  [[nodiscard]] bool stop_requested() const noexcept {
    return stop_flag_.load(std::memory_order_relaxed);
  }
  void clear_stop() noexcept {
    stop_flag_.store(false, std::memory_order_relaxed);
  }
  /// Force the stop flag (Simulator::restore re-arms it from a snapshot).
  void set_stop(bool v) noexcept {
    stop_flag_.store(v, std::memory_order_relaxed);
  }

  /// Structural fingerprint of the elaborated netlist: instance names,
  /// connection endpoints/refs, ack modes, and quarantine state.  Two
  /// netlists with equal hashes are state-compatible for checkpoint
  /// restore (same module order, same save/load layout *shape*).  The hash
  /// deliberately avoids typeid names so it is stable across compilers —
  /// a durable checkpoint written by one build loads in another.
  [[nodiscard]] std::uint64_t topology_hash() const;

  /// Dump all module statistics, one line per stat, prefixed by instance
  /// name.
  void dump_stats(std::ostream& os) const;

  /// Export the structure as a Graphviz DOT graph (the hook the paper's
  /// "interactive system visualizer" would consume).
  void write_dot(std::ostream& os) const;

  /// Quarantine a module (resil recovery): its handlers are never invoked
  /// again and every one of its Managed input connections falls back to the
  /// paper's default control semantics (AutoAccept — the kernel accepts
  /// everything offered); its output offers default to "offers nothing".
  /// Schedulers cache quarantine flags at construction, so this must be
  /// followed by a simulator rebuild — and any optimizer plan derived from
  /// the module's declared behaviour must be dropped first (quarantine
  /// invalidates constprop/fusion/gating facts about this module).  See
  /// docs/resilience.md for when this policy is unsound.
  void quarantine(Module& m);
  [[nodiscard]] bool is_quarantined(ModuleId id) const noexcept {
    return id < quarantined_.size() && quarantined_[id] != 0;
  }
  [[nodiscard]] std::size_t quarantined_count() const noexcept;

  /// Attach (or clear, with nullptr) the optimizer's plan.  Must be done
  /// before any scheduler is constructed; schedulers capture the plan at
  /// construction.  Null plan == simulate the netlist exactly as written.
  void set_opt_plan(std::shared_ptr<const OptPlan> plan) noexcept {
    opt_plan_ = std::move(plan);
  }
  [[nodiscard]] const OptPlan* opt_plan() const noexcept {
    return opt_plan_.get();
  }

 private:
  friend class SchedulerBase;

  bool finalized_ = false;
  std::atomic<bool> stop_flag_{false};
  std::vector<std::unique_ptr<Module>> modules_;
  std::unordered_map<std::string, Module*> by_name_;
  std::vector<std::unique_ptr<Connection>> conns_;
  std::vector<char> quarantined_;  // by ModuleId; empty until first use
  std::shared_ptr<const OptPlan> opt_plan_;
};

}  // namespace liberty::core
