#include "liberty/ccl/topology.hpp"

#include "liberty/ccl/fabric.hpp"

namespace liberty::ccl {

using liberty::core::Netlist;
using liberty::core::Params;

namespace {

/// Copy caller params and overlay geometry for one router.
Params router_params_for(const Params& base, std::size_t id,
                         std::size_t nodes, const std::string& routing,
                         std::size_t cols, std::size_t rows) {
  Params p;
  for (const auto& [k, v] : base.values()) p.set(k, v);
  p.set("id", static_cast<std::int64_t>(id));
  p.set("nodes", static_cast<std::int64_t>(nodes));
  p.set("routing", routing);
  p.set("cols", static_cast<std::int64_t>(cols));
  p.set("rows", static_cast<std::int64_t>(rows));
  return p;
}

/// Wire routers[a].out[dir_a] -> link -> routers[b].in[dir_b].
void wire(Netlist& nl, const std::string& name, Router& a, std::size_t dir_a,
          Router& b, std::size_t dir_b, std::int64_t latency) {
  Params lp;
  lp.set("latency", latency);
  auto& link = nl.make<Link>(name, lp);
  nl.connect_at(a.out("out"), dir_a, link.in("in"), 0);
  nl.connect_at(link.out("out"), 0, b.in("in"), dir_b);
}

}  // namespace

Fabric build_mesh(Netlist& nl, const std::string& prefix, std::size_t cols,
                  std::size_t rows, const Params& router_params,
                  std::int64_t link_latency) {
  Fabric f;
  const std::size_t n = cols * rows;
  f.routers.reserve(n);
  for (std::size_t id = 0; id < n; ++id) {
    f.routers.push_back(&nl.make<Router>(
        prefix + ".r" + std::to_string(id),
        router_params_for(router_params, id, n, "xy", cols, rows)));
  }
  // Directions: 1 = east, 2 = west, 3 = north, 4 = south.
  for (std::size_t y = 0; y < rows; ++y) {
    for (std::size_t x = 0; x < cols; ++x) {
      const std::size_t id = y * cols + x;
      if (x + 1 < cols) {
        const std::size_t east = id + 1;
        wire(nl, prefix + ".l" + std::to_string(id) + ".e", *f.routers[id], 1,
             *f.routers[east], 2, link_latency);
        wire(nl, prefix + ".l" + std::to_string(east) + ".w",
             *f.routers[east], 2, *f.routers[id], 1, link_latency);
      }
      if (y + 1 < rows) {
        const std::size_t south = id + cols;
        wire(nl, prefix + ".l" + std::to_string(id) + ".s", *f.routers[id], 4,
             *f.routers[south], 3, link_latency);
        wire(nl, prefix + ".l" + std::to_string(south) + ".n",
             *f.routers[south], 3, *f.routers[id], 4, link_latency);
      }
    }
  }
  return f;
}

Fabric build_torus(Netlist& nl, const std::string& prefix, std::size_t cols,
                   std::size_t rows, const Params& router_params,
                   std::int64_t link_latency) {
  Fabric f;
  const std::size_t n = cols * rows;
  f.routers.reserve(n);
  for (std::size_t id = 0; id < n; ++id) {
    f.routers.push_back(&nl.make<Router>(
        prefix + ".r" + std::to_string(id),
        router_params_for(router_params, id, n, "torus_xy", cols, rows)));
  }
  for (std::size_t y = 0; y < rows; ++y) {
    for (std::size_t x = 0; x < cols; ++x) {
      const std::size_t id = y * cols + x;
      const std::size_t east = y * cols + (x + 1) % cols;
      const std::size_t south = ((y + 1) % rows) * cols + x;
      wire(nl, prefix + ".l" + std::to_string(id) + ".e", *f.routers[id], 1,
           *f.routers[east], 2, link_latency);
      wire(nl, prefix + ".l" + std::to_string(east) + ".w", *f.routers[east],
           2, *f.routers[id], 1, link_latency);
      wire(nl, prefix + ".l" + std::to_string(id) + ".s", *f.routers[id], 4,
           *f.routers[south], 3, link_latency);
      wire(nl, prefix + ".l" + std::to_string(south) + ".n",
           *f.routers[south], 3, *f.routers[id], 4, link_latency);
    }
  }
  return f;
}

Fabric build_ring(Netlist& nl, const std::string& prefix, std::size_t nodes,
                  const Params& router_params, std::int64_t link_latency) {
  Fabric f;
  f.routers.reserve(nodes);
  for (std::size_t id = 0; id < nodes; ++id) {
    f.routers.push_back(&nl.make<Router>(
        prefix + ".r" + std::to_string(id),
        router_params_for(router_params, id, nodes, "ring", nodes, 1)));
  }
  for (std::size_t id = 0; id < nodes; ++id) {
    const std::size_t next = (id + 1) % nodes;
    // Clockwise: out[1] of id feeds in[2]... flits travelling clockwise
    // arrive from the counter-clockwise neighbour.
    wire(nl, prefix + ".l" + std::to_string(id) + ".cw", *f.routers[id], 1,
         *f.routers[next], 1, link_latency);
    wire(nl, prefix + ".l" + std::to_string(next) + ".ccw", *f.routers[next],
         2, *f.routers[id], 2, link_latency);
  }
  return f;
}

}  // namespace liberty::ccl
