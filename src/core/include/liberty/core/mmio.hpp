// Memory-mapped I/O interfaces: the library-neutral seam between a
// processor-like module that decodes addresses (an MmioHost) and a device
// module that exposes a register file (an MmioDevice).
//
// Concrete libraries already speak this protocol informally — the UPL's
// SimpleCpu routes address ranges to callbacks and the NIL's NicAssist
// exposes mmio_read/mmio_write — but the coupling used to be programmatic
// (build_programmable_nic wiring lambdas), which a rebuildable NetSpec
// cannot express.  These two interfaces give elaboration a declarative
// form: "bind device D into host H at [base, base+size)".  MMIO accesses
// complete inline within the host's cycle; they are architectural state
// transitions of the two modules, not channel transfers, so they need no
// scheduler involvement and remain bit-identical under every scheduler.
#pragma once

#include <cstdint>

namespace liberty::core {

/// A register-file endpoint addressable through a host's address decode.
/// Offsets are register indexes relative to the binding's base address.
class MmioDevice {
 public:
  virtual ~MmioDevice() = default;
  virtual std::int64_t mmio_read(std::uint64_t offset) = 0;
  virtual void mmio_write(std::uint64_t offset, std::int64_t value) = 0;
};

/// A module that decodes memory addresses and can divert a range of them
/// to an MmioDevice.  The device reference must outlive the host (both are
/// owned by the same Netlist, so elaboration-time binding is safe).
class MmioHost {
 public:
  virtual ~MmioHost() = default;
  virtual void attach_mmio(std::uint64_t base, std::uint64_t size,
                           MmioDevice& device) = 0;
};

}  // namespace liberty::core
