#include "liberty/core/simulator.hpp"

#include <string>

#include "liberty/support/error.hpp"

namespace liberty::core {

SchedulerKind scheduler_kind_from_name(std::string_view name) {
  if (name == "dyn" || name == "dynamic") return SchedulerKind::Dynamic;
  if (name == "static") return SchedulerKind::Static;
  if (name == "par" || name == "parallel") return SchedulerKind::Parallel;
  if (name == "comp" || name == "compiled") return SchedulerKind::Compiled;
  throw liberty::ElaborationError(
      "unknown scheduler kind '" + std::string(name) +
      "' (valid: dyn|dynamic, static, par|parallel, comp|compiled)");
}

namespace {
CompiledSchedulerFactory g_compiled_factory = nullptr;
}  // namespace

void set_compiled_scheduler_factory(CompiledSchedulerFactory factory) {
  g_compiled_factory = factory;
}

CompiledSchedulerFactory compiled_scheduler_factory() {
  return g_compiled_factory;
}

Simulator::Simulator(Netlist& netlist, SchedulerKind kind, unsigned threads)
    : netlist_(netlist) {
  switch (kind) {
    case SchedulerKind::Dynamic:
      sched_ = std::make_unique<DynamicScheduler>(netlist);
      break;
    case SchedulerKind::Static:
      sched_ = std::make_unique<StaticScheduler>(netlist);
      break;
    case SchedulerKind::Parallel:
      sched_ = std::make_unique<ParallelScheduler>(netlist, threads);
      break;
    case SchedulerKind::Compiled:
      if (g_compiled_factory == nullptr) {
        throw liberty::ElaborationError(
            "compiled scheduler requested but no backend is registered: "
            "link liberty_gen and call liberty::gen::ensure_registered() "
            "before constructing the Simulator");
      }
      sched_ = g_compiled_factory(netlist);
      break;
  }
}

KernelSnapshot Simulator::snapshot() const {
  KernelSnapshot snap;
  snap.cycle = now_;
  snap.stop_requested = netlist_.stop_requested();
  snap.module_state.reserve(netlist_.module_count());
  for (const auto& m : netlist_.modules()) {
    StateWriter w;
    m->save_state(w);
    snap.module_state.push_back(std::move(w).take());
  }
  return snap;
}

void Simulator::restore(const KernelSnapshot& snap) {
  const auto& modules = netlist_.modules();
  if (snap.module_state.size() != modules.size()) {
    throw liberty::SimulationError(
        "snapshot restore: netlist has " + std::to_string(modules.size()) +
        " modules, snapshot has " + std::to_string(snap.module_state.size()));
  }
  for (std::size_t i = 0; i < modules.size(); ++i) {
    StateReader r(snap.module_state[i], modules[i]->name());
    modules[i]->load_state(r);
    if (!r.exhausted()) {
      throw liberty::SimulationError(
          "snapshot restore: module '" + modules[i]->name() + "' left " +
          std::to_string(r.remaining()) +
          " state slot(s) unconsumed (save_state/load_state mismatch)");
    }
  }
  now_ = snap.cycle;
  netlist_.set_stop(snap.stop_requested);
  // Reset every piece of in-flight kernel state: the quiescence gate's
  // caches, backoff and asleep flags describe the pre-restore trajectory,
  // and if the last cycle aborted mid-resolve (watchdog violation,
  // injected fault) the channels and fused-chain sweep stamps are dirty.
  // recover_after_abort() wipes all of it; between clean cycles it is a
  // no-op re-initialization.
  scheduler().recover_after_abort();
}

void Simulator::trace_transfers(std::ostream& os) {
  observe_transfers([&os](const Connection& c, Cycle cycle) {
    os << "@" << cycle << "  " << c.describe() << "  " << c.data().to_string()
       << '\n';
  });
}

}  // namespace liberty::core
