#include "liberty/upl/memctl.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "liberty/upl/mem_protocol.hpp"
#include "liberty/support/error.hpp"

namespace liberty::upl {

using liberty::core::AckMode;
using liberty::core::Cycle;
using liberty::core::Deps;
using liberty::core::Params;

MemoryCtl::MemoryCtl(const std::string& name, const Params& params)
    : Module(name),
      req_(add_in("req", AckMode::Managed, 0, 1)),
      resp_(add_out("resp", 0, 1)),
      latency_(static_cast<std::uint64_t>(params.get_int("latency", 20))),
      line_words_(static_cast<std::size_t>(params.get_int("line_words", 4))),
      bandwidth_(static_cast<std::size_t>(params.get_int("bandwidth", 1))) {
  if (latency_ == 0 || line_words_ == 0) {
    throw liberty::ElaborationError("upl.memctl '" + name +
                                    "': latency and line_words must be >= 1");
  }
}

void MemoryCtl::cycle_start(Cycle c) {
  if (!pending_.empty() && pending_.front().ready <= c) {
    resp_.send(pending_.front().resp);
  } else {
    resp_.idle();
  }
  // Simple bandwidth model: accept while the response pipe is shallow.
  if (pending_.size() < bandwidth_ * 4) {
    req_.ack();
  } else {
    req_.nack();
  }
}

void MemoryCtl::end_of_cycle() {
  if (resp_.transferred()) pending_.pop_front();
  if (!req_.transferred()) return;
  const auto r = req_.data().as<LineReq>();
  switch (r->kind) {
    case LineReq::Kind::Fetch:
    case LineReq::Kind::FetchExclusive: {
      stats().counter("fetches").inc();
      std::vector<std::int64_t> words(line_words_);
      for (std::size_t i = 0; i < line_words_; ++i) {
        words[i] = peek(r->line + i);
      }
      pending_.push_back(Pending{
          liberty::Value::make<LineResp>(
              r->line, r->tag, r->requester, std::move(words),
              r->kind == LineReq::Kind::FetchExclusive),
          now() + latency_});
      break;
    }
    case LineReq::Kind::Writeback: {
      stats().counter("writebacks").inc();
      for (std::size_t i = 0; i < r->words.size(); ++i) {
        store_[r->line + i] = r->words[i];
      }
      break;
    }
  }
}

void MemoryCtl::save_state(liberty::core::StateWriter& w) const {
  std::vector<std::pair<std::uint64_t, std::int64_t>> cells(store_.begin(),
                                                            store_.end());
  std::sort(cells.begin(), cells.end());
  w.put_size(cells.size());
  for (const auto& [addr, data] : cells) {
    w.put_u64(addr);
    w.put_i64(data);
  }
  w.put_size(pending_.size());
  for (const auto& p : pending_) {
    w.put(p.resp);
    w.put_u64(p.ready);
  }
}

void MemoryCtl::load_state(liberty::core::StateReader& r) {
  store_.clear();
  const std::size_t cells = r.get_size();
  for (std::size_t i = 0; i < cells; ++i) {
    const std::uint64_t addr = r.get_u64();
    store_[addr] = r.get_i64();
  }
  pending_.clear();
  const std::size_t n = r.get_size();
  for (std::size_t i = 0; i < n; ++i) {
    liberty::Value resp = r.get();
    const Cycle ready = r.get_u64();
    pending_.push_back(Pending{std::move(resp), ready});
  }
}

void MemoryCtl::declare_deps(Deps& deps) const {
  deps.state_only(resp_);
  deps.state_only(req_);
}

}  // namespace liberty::upl
