# Empty compiler generated dependencies file for test_lss.
# This may be replaced when dependencies are built.
