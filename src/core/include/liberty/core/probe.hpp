// KernelProbe: the kernel-side half of the observability layer.
//
// The schedulers are the only code that knows when a cycle phase starts,
// which wave just ran, or how long a worker lane was busy — but the kernel
// must not depend on exporters or aggregation policy.  KernelProbe is the
// seam: a branch-on-null observer interface the scheduler invokes at
// well-defined serialization points.  liberty::obs implements it
// (CycleProfiler, ChromeTraceWriter); the kernel only ever sees this
// abstract interface.
//
// Cost contract: with no probe installed every instrumentation site is a
// single null/flag check (measured <2% on bench_scheduler, see
// docs/observability.md).  With a probe installed the kernel additionally
// reads the monotonic clock around each phase and each react() call.
//
// Threading contract: all callbacks are serialized.  They fire either on
// the main simulation thread, or (on_module_batch only) on a parallel
// worker thread while it holds the scheduler's pool mutex — never
// concurrently.  Probes may therefore aggregate into plain fields.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "liberty/core/types.hpp"

namespace liberty::core {

/// The fixed per-cycle phase sequence of SchedulerBase::run_cycle (see
/// docs/scheduling.md "The per-cycle contract").
enum class SchedPhase : std::uint8_t {
  CycleStart = 0,  // Module::cycle_start on every module
  Resolve = 1,     // fixed-point resolution (the scheduler-specific part)
  Update = 2,      // Module::end_of_cycle on every module
  Commit = 3,      // transfer commit + observers + channel reset
};

inline constexpr std::size_t kSchedPhaseCount = 4;

[[nodiscard]] constexpr std::string_view phase_name(SchedPhase p) noexcept {
  switch (p) {
    case SchedPhase::CycleStart: return "cycle_start";
    case SchedPhase::Resolve: return "resolve";
    case SchedPhase::Update: return "update";
    case SchedPhase::Commit: return "commit";
  }
  return "?";
}

class KernelProbe {
 public:
  virtual ~KernelProbe() = default;

  virtual void on_cycle_begin(Cycle) {}
  virtual void on_cycle_end(Cycle) {}

  /// Every channel of every connection has resolved for this cycle, but no
  /// end_of_cycle handler has run and no transfer has been committed yet.
  /// This is the invariant-checking window (resil::Watchdog): a probe that
  /// throws here aborts the cycle *before* any module commits state, so a
  /// rollback to an earlier checkpoint replays a fault-free trajectory.
  virtual void on_cycle_resolved(Cycle) {}

  /// Phase completed; `seconds` is its wall-clock duration.  Called at the
  /// end of the phase, so an exporter can reconstruct the start time.
  virtual void on_phase(SchedPhase, Cycle, double /*seconds*/) {}

  /// ParallelScheduler: one dispatched wave completed (all clusters done,
  /// workers joined).  `clusters` is the wave's cluster count, `seconds`
  /// the wall time between dispatch and join.
  virtual void on_wave(Cycle, std::size_t /*wave*/, std::size_t /*clusters*/,
                       double /*seconds*/) {}

  /// Per-lane busy time within the wave reported by the immediately
  /// preceding on_wave (lane 0 is the main thread).  Idle time is the
  /// wave's wall time minus the lane's busy time.
  virtual void on_lane(Cycle, std::size_t /*wave*/, unsigned /*lane*/,
                       double /*busy_seconds*/) {}

  /// Per-module react() attribution, flushed from a thread's accumulation
  /// buffers at a synchronization point: `reacts[id]` invocations and
  /// `seconds[id]` wall time for module id in [0, n).  Buffers are zeroed
  /// after the call; probes accumulate across batches.
  virtual void on_module_batch(const std::uint64_t* /*reacts*/,
                               const double* /*seconds*/, std::size_t /*n*/) {
  }
};

}  // namespace liberty::core
