#include "liberty/mpl/dma.hpp"

#include "liberty/pcl/payloads.hpp"
#include "liberty/support/error.hpp"

namespace liberty::mpl {

using liberty::core::AckMode;
using liberty::core::Cycle;
using liberty::core::Deps;
using liberty::core::Params;
using liberty::pcl::MemReq;
using liberty::pcl::MemResp;

DmaCtl::DmaCtl(const std::string& name, const Params& params)
    : Module(name),
      mem_req_(add_out("mem_req", 0, 1)),
      mem_resp_(add_in("mem_resp", AckMode::AutoAccept, 0, 1)),
      net_out_(add_out("net_out", 0, 1)),
      net_in_(add_in("net_in", AckMode::AutoAccept, 0, 1)),
      chunk_words_(static_cast<std::size_t>(params.get_int("chunk_words", 8))) {
  if (chunk_words_ == 0) {
    throw liberty::ElaborationError("mpl.dma '" + name +
                                    "': chunk_words must be >= 1");
  }
}

std::int64_t DmaCtl::mmio_read(std::uint64_t reg) const {
  switch (reg) {
    case 0: return static_cast<std::int64_t>(reg_src_);
    case 1: return static_cast<std::int64_t>(reg_dst_node_);
    case 2: return static_cast<std::int64_t>(reg_dst_addr_);
    case 3: return static_cast<std::int64_t>(reg_len_);
    case 4: return tx_busy() ? 1 : 0;
    case 5: return static_cast<std::int64_t>(rx_words_);
    case 6: return rx_done_ ? 1 : 0;
    default: return 0;
  }
}

void DmaCtl::mmio_write(std::uint64_t reg, std::int64_t v) {
  switch (reg) {
    case 0: reg_src_ = static_cast<std::uint64_t>(v); return;
    case 1: reg_dst_node_ = static_cast<std::uint64_t>(v); return;
    case 2: reg_dst_addr_ = static_cast<std::uint64_t>(v); return;
    case 3: reg_len_ = static_cast<std::uint64_t>(v); return;
    case 4:
      if (v == 1) {
        start_transfer(reg_src_, static_cast<std::size_t>(reg_dst_node_),
                       reg_dst_addr_, reg_len_);
      }
      return;
    case 6:
      if (v == 0) {
        rx_done_ = false;
        rx_words_ = 0;
      }
      return;
    default:
      return;
  }
}

void DmaCtl::start_transfer(std::uint64_t src_addr, std::size_t dst_node,
                            std::uint64_t dst_addr, std::uint64_t length) {
  if (tx_) {
    throw liberty::SimulationError("mpl.dma '" + name() +
                                   "': transfer started while busy");
  }
  if (length == 0) return;
  tx_ = TxState{src_addr, dst_node, dst_addr, length, 0, 0, {}, 0};
  stats().counter("transfers").inc();
}

void DmaCtl::cycle_start(Cycle) {
  if (!memq_.empty() && !mem_in_flight_) {
    mem_req_.send(memq_.front());
  } else {
    mem_req_.idle();
  }
  if (!netq_.empty()) {
    net_out_.send(netq_.front());
  } else {
    net_out_.idle();
  }
}

void DmaCtl::end_of_cycle() {
  if (mem_req_.transferred()) {
    memq_.pop_front();
    mem_in_flight_ = true;
  }
  if (net_out_.transferred()) {
    netq_.pop_front();
    stats().counter("tx_chunks").inc();
  }

  if (mem_resp_.transferred()) {
    mem_in_flight_ = false;
    const auto resp = mem_resp_.data().as<MemResp>();
    if (!resp->was_write && tx_) {
      tx_->data.push_back(resp->data);
      ++tx_->read_done;
      stats().counter("tx_words").inc();
      // Cut a chunk when enough data is gathered (or at the end).
      const bool last = tx_->read_done == tx_->length;
      while (tx_->sent_words < tx_->read_done &&
             (tx_->read_done - tx_->sent_words >= chunk_words_ || last)) {
        const std::uint64_t n =
            std::min<std::uint64_t>(chunk_words_,
                                    tx_->read_done - tx_->sent_words);
        std::vector<std::int64_t> words(
            tx_->data.begin() + static_cast<std::ptrdiff_t>(tx_->sent_words),
            tx_->data.begin() +
                static_cast<std::ptrdiff_t>(tx_->sent_words + n));
        const bool chunk_is_last = last && tx_->sent_words + n == tx_->length;
        netq_.push_back(liberty::Value::make<DmaChunk>(
            tx_->dst_node, tx_->dst_addr + tx_->sent_words, std::move(words),
            xfer_id_, chunk_is_last));
        tx_->sent_words += n;
      }
      if (last && tx_->sent_words == tx_->length) {
        ++xfer_id_;
        tx_.reset();
      }
    }
  }

  // Issue the next source read.
  if (tx_ && tx_->read_issued < tx_->length && memq_.empty() &&
      !mem_in_flight_) {
    memq_.push_back(liberty::Value::make<MemReq>(
        MemReq::Op::Read, tx_->src_addr + tx_->read_issued, 0,
        0xD3A0 + tx_->read_issued));
    ++tx_->read_issued;
  }

  // Receive side: queue writes for arriving chunks.
  if (net_in_.transferred()) {
    const auto chunk = net_in_.data().as<DmaChunk>();
    stats().counter("rx_chunks").inc();
    for (std::size_t i = 0; i < chunk->words.size(); ++i) {
      rx_writes_.emplace_back(chunk->dst_addr + i, chunk->words[i]);
    }
    if (chunk->last) rx_last_seen_ = true;
  }
  // Drain one receive write at a time through the memory port (writes share
  // the port with tx reads; rx has priority via queue order).
  if (!rx_writes_.empty() && memq_.empty() && !mem_in_flight_) {
    const auto [addr, v] = rx_writes_.front();
    rx_writes_.pop_front();
    memq_.push_back(
        liberty::Value::make<MemReq>(MemReq::Op::Write, addr, v, 0xD3A1));
    ++rx_words_;
    stats().counter("rx_words").inc();
  }
  if (rx_last_seen_ && rx_writes_.empty() && !mem_in_flight_ &&
      memq_.empty()) {
    rx_done_ = true;
    rx_last_seen_ = false;
  }
}

void DmaCtl::declare_deps(Deps& deps) const {
  deps.state_only(mem_req_);
  deps.state_only(net_out_);
}

}  // namespace liberty::mpl
