#include "liberty/testing/oracle.hpp"

#include <algorithm>
#include <memory>
#include <sstream>
#include <utility>

#include "liberty/core/state.hpp"
#include "liberty/gen/compiled_scheduler.hpp"
#include "liberty/obs/profiler.hpp"
#include "liberty/opt/optimizer.hpp"
#include "liberty/resil/injector.hpp"

namespace liberty::testing {

namespace {

using liberty::core::Connection;
using liberty::core::Cycle;
using liberty::core::KernelSnapshot;
using liberty::core::Netlist;
using liberty::core::SchedulerKind;
using liberty::core::Simulator;
using liberty::core::fnv1a_mix;
using liberty::core::kFnv1aInit;

std::uint64_t mix_bytes(std::uint64_t h, const std::string& s) {
  for (const unsigned char ch : s) {
    h ^= ch;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// One scheduler's coarse pass over the full cycle budget.
struct RunRecord {
  std::vector<KernelSnapshot> snaps;  // snapshot i taken at snap_cycles[i]
  std::vector<Cycle> snap_cycles;
  std::vector<std::uint64_t> window_hashes;  // transfers between snapshots
  std::string stats;
};

RunRecord run_full(const NetSpec& spec,
                   const liberty::core::ModuleRegistry& registry,
                   SchedulerKind kind, unsigned threads, Cycle every,
                   bool profile, int opt_level,
                   const liberty::resil::FaultPlan* plan) {
  Netlist netlist;
  spec.build(netlist, registry);
  if (opt_level > 0) {
    liberty::opt::optimize(netlist,
                           liberty::opt::OptOptions::for_level(opt_level));
  }
  // The injector must outlive the simulator (the scheduler's destructor
  // clears the per-connection hooks).
  std::unique_ptr<liberty::resil::FaultInjector> injector;
  if (plan != nullptr) {
    injector = std::make_unique<liberty::resil::FaultInjector>(*plan);
  }
  Simulator sim(netlist, kind, threads);
  if (injector != nullptr) injector->install(sim);
  // With config.profile the probe rides along purely to prove it cannot
  // perturb the comparison; its aggregates are discarded.
  liberty::obs::CycleProfiler prof;
  if (profile) sim.set_probe(&prof);

  RunRecord rec;
  std::uint64_t hash = kFnv1aInit;
  sim.observe_transfers([&hash](const Connection& c, Cycle cycle) {
    hash = fnv1a_mix(hash, c.id());
    hash = fnv1a_mix(hash, cycle);
    hash = mix_bytes(hash, c.data().to_string());
  });

  rec.snaps.push_back(sim.snapshot());
  rec.snap_cycles.push_back(0);
  for (Cycle c = 0; c < spec.cycles; ++c) {
    sim.step();
    if ((c + 1) % every == 0 || c + 1 == spec.cycles) {
      rec.window_hashes.push_back(hash);
      hash = kFnv1aInit;
      rec.snaps.push_back(sim.snapshot());
      rec.snap_cycles.push_back(c + 1);
    }
  }
  std::ostringstream oss;
  netlist.dump_stats(oss);
  rec.stats = oss.str();
  return rec;
}

std::string kind_name(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::Dynamic: return "dynamic";
    case SchedulerKind::Static: return "static";
    case SchedulerKind::Parallel: return "parallel";
    case SchedulerKind::Compiled: return "compiled";
    case SchedulerKind::Native: return "native";
  }
  return "?";
}

/// Phase 2: restore both schedulers to the last agreeing snapshot and
/// replay in lockstep to the exact divergent cycle.
Divergence bisect_window(const NetSpec& spec,
                         const liberty::core::ModuleRegistry& registry,
                         const Candidate& cand, const RunRecord& ref,
                         const RunRecord& other, std::size_t window,
                         const liberty::resil::FaultPlan* plan) {
  Divergence d;
  d.candidate = cand;

  Netlist nl_ref;
  Netlist nl_cand;
  spec.build(nl_ref, registry);
  spec.build(nl_cand, registry);
  if (cand.opt_level > 0) {
    liberty::opt::optimize(
        nl_cand, liberty::opt::OptOptions::for_level(cand.opt_level));
  }
  // Lockstep replay must suffer the same faults as the coarse runs did —
  // fault mappings are pure functions of (connection, cycle), so restoring
  // to a snapshot and replaying reproduces them exactly.
  std::unique_ptr<liberty::resil::FaultInjector> inj_ref;
  std::unique_ptr<liberty::resil::FaultInjector> inj_cand;
  if (plan != nullptr) {
    inj_ref = std::make_unique<liberty::resil::FaultInjector>(*plan);
    inj_cand = std::make_unique<liberty::resil::FaultInjector>(*plan);
  }
  Simulator sim_ref(nl_ref, SchedulerKind::Dynamic);
  Simulator sim_cand(nl_cand, cand.kind, cand.threads);
  if (inj_ref != nullptr) {
    inj_ref->install(sim_ref);
    inj_cand->install(sim_cand);
  }
  // Each side restores its own snapshot (their digests agree at `window`,
  // so the states are equal in content) — this is the restore/replay path
  // the snapshot API exists for.
  sim_ref.restore(ref.snaps[window]);
  sim_cand.restore(other.snaps[window]);

  std::vector<std::string> xfer_ref;
  std::vector<std::string> xfer_cand;
  const auto recorder = [](std::vector<std::string>& into) {
    return [&into](const Connection& c, Cycle cycle) {
      into.push_back("@" + std::to_string(cycle) + " conn#" +
                     std::to_string(c.id()) + " " + c.describe() + " = " +
                     c.data().to_string());
    };
  };
  sim_ref.observe_transfers(recorder(xfer_ref));
  sim_cand.observe_transfers(recorder(xfer_cand));

  const Cycle stop = ref.snap_cycles[window + 1];
  while (sim_ref.now() < stop) {
    const Cycle cycle = sim_ref.now();
    xfer_ref.clear();
    xfer_cand.clear();
    sim_ref.step();
    sim_cand.step();

    std::vector<std::string> differing;
    const auto& mods_ref = nl_ref.modules();
    const auto& mods_cand = nl_cand.modules();
    for (std::size_t i = 0; i < mods_ref.size(); ++i) {
      if (mods_ref[i]->state_digest() != mods_cand[i]->state_digest()) {
        differing.push_back(mods_ref[i]->name());
      }
    }
    if (xfer_ref != xfer_cand || !differing.empty()) {
      d.first_divergent_cycle = cycle;
      d.modules = std::move(differing);
      std::ostringstream oss;
      oss << "schedulers diverge at cycle " << cycle << " (dynamic vs "
          << cand.describe() << ")\n";
      if (!d.modules.empty()) {
        oss << "  modules with differing state:";
        for (const auto& m : d.modules) oss << " " << m;
        oss << "\n";
      }
      const std::size_t n =
          std::max(xfer_ref.size(), xfer_cand.size());
      for (std::size_t i = 0; i < n; ++i) {
        const std::string a = i < xfer_ref.size() ? xfer_ref[i] : "(none)";
        const std::string b = i < xfer_cand.size() ? xfer_cand[i] : "(none)";
        if (a != b) {
          oss << "  first transfer mismatch:\n    dynamic:   " << a
              << "\n    candidate: " << b << "\n";
          break;
        }
      }
      d.detail = oss.str();
      return d;
    }
  }

  // The window disagreed in aggregate but lockstep saw no per-cycle
  // difference (e.g. a hash collision) — report the window boundary.
  d.first_divergent_cycle = stop;
  d.detail = "divergence detected in window ending at cycle " +
             std::to_string(stop) + " but lockstep replay found no "
             "per-cycle difference (hash collision?)";
  return d;
}

}  // namespace

std::string Candidate::describe() const {
  std::string s = kind_name(kind);
  if (kind == liberty::core::SchedulerKind::Parallel) {
    s += "(" + std::to_string(threads) + "t)";
  }
  if (opt_level > 0) s += "-O" + std::to_string(opt_level);
  return s;
}

std::string OracleResult::report() const {
  if (ok) return "all schedulers agree";
  std::string out;
  for (const Divergence& d : divergences) {
    out += d.detail;
    if (!out.empty() && out.back() != '\n') out += '\n';
  }
  return out;
}

OracleResult run_oracle(const NetSpec& spec,
                        const liberty::core::ModuleRegistry& registry,
                        const OracleConfig& config) {
  // The compiled backend registers through a seam (core cannot link gen);
  // doing it here covers every oracle user unconditionally.
  liberty::gen::ensure_registered();

  std::vector<Candidate> candidates = config.candidates;
  if (candidates.empty()) {
    candidates = {Candidate{SchedulerKind::Static, 0},
                  Candidate{SchedulerKind::Parallel, 1},
                  Candidate{SchedulerKind::Parallel, 2},
                  Candidate{SchedulerKind::Parallel, 8},
                  Candidate{SchedulerKind::Compiled, 0},
                  Candidate{SchedulerKind::Compiled, 0, /*opt_level=*/2}};
#if defined(LIBERTY_NATIVE_CODEGEN)
    // The native backend rides the default matrix only when built in;
    // whatever the emitter declines runs on its bytecode fallback, so
    // every netlist is still a valid native candidate.
    candidates.push_back(Candidate{SchedulerKind::Native, 0});
    candidates.push_back(Candidate{SchedulerKind::Native, 0, /*opt_level=*/2});
#endif
  }

  const Cycle every =
      config.snapshot_every == 0 ? 16 : config.snapshot_every;
  const RunRecord ref = run_full(spec, registry, SchedulerKind::Dynamic,
                                 /*threads=*/0, every, config.profile,
                                 /*opt_level=*/0, config.fault_plan);

  OracleResult result;
  for (const Candidate& cand : candidates) {
    const RunRecord rec = run_full(spec, registry, cand.kind, cand.threads,
                                   every, config.profile, cand.opt_level,
                                   config.fault_plan);

    // First disagreeing window: window w spans snapshots w -> w+1.
    std::size_t bad_window = rec.window_hashes.size();
    for (std::size_t w = 0; w < rec.window_hashes.size(); ++w) {
      if (rec.window_hashes[w] != ref.window_hashes[w] ||
          rec.snaps[w + 1].digest() != ref.snaps[w + 1].digest()) {
        bad_window = w;
        break;
      }
    }

    if (bad_window == rec.window_hashes.size()) {
      if (rec.stats == ref.stats) continue;  // candidate agrees
      Divergence d;
      d.candidate = cand;
      d.detail = "stats dump differs between dynamic and " +
                 cand.describe() +
                 " although transfers and state agree:\n--- dynamic\n" +
                 ref.stats + "--- candidate\n" + rec.stats;
      result.ok = false;
      result.divergences.push_back(std::move(d));
      continue;
    }

    result.ok = false;
    if (config.bisect) {
      result.divergences.push_back(bisect_window(spec, registry, cand, ref,
                                                 rec, bad_window,
                                                 config.fault_plan));
    } else {
      Divergence d;
      d.candidate = cand;
      d.first_divergent_cycle = rec.snap_cycles[bad_window + 1];
      d.detail = "dynamic and " + cand.describe() +
                 " diverge in window ending at cycle " +
                 std::to_string(rec.snap_cycles[bad_window + 1]) +
                 " (bisection disabled)";
      result.divergences.push_back(std::move(d));
    }
  }
  return result;
}

}  // namespace liberty::testing
