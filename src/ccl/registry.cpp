#include "liberty/ccl/ccl.hpp"

namespace liberty::ccl {

using liberty::core::ModuleRegistry;
using liberty::core::simple_factory;

void register_ccl(ModuleRegistry& r) {
  r.register_template("ccl.router", "VC wormhole router with Orion power",
                      simple_factory<Router>());
  r.register_template("ccl.link", "pipelined link with energy model",
                      simple_factory<Link>());
  r.register_template("ccl.bus", "arbitrated shared (snooping) bus",
                      simple_factory<Bus>());
  r.register_template("ccl.traffic_gen", "statistical packet generator",
                      simple_factory<TrafficGen>());
  r.register_template("ccl.traffic_sink", "flit sink with latency stats",
                      simple_factory<TrafficSink>());
  r.register_template("ccl.wireless", "CSMA wireless channel",
                      simple_factory<WirelessChannel>());
}

}  // namespace liberty::ccl
