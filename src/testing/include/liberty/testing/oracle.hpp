// Differential oracle: prove N schedulers bit-identical on one netlist.
//
// The reference (dynamic) scheduler defines the semantics; every candidate
// (static, parallel at several thread counts) must match it exactly.  The
// oracle runs in two phases:
//
//   1. Coarse: each simulator runs the full cycle budget alone, taking a
//      kernel snapshot every `snapshot_every` cycles and folding every
//      completed transfer into a per-window trace hash.  Disagreement in
//      any window hash, snapshot digest, or the final stats dump flags the
//      candidate.
//   2. Bisect: the first disagreeing window brackets the bug.  Fresh
//      simulators are built for both schedulers, restored from their
//      last-agreeing snapshots (exercising Simulator::restore for real),
//      and replayed in lockstep — one cycle at a time, comparing the
//      transfer record and every module's state digest — until the exact
//      divergent cycle and the differing modules fall out.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "liberty/core/registry.hpp"
#include "liberty/core/simulator.hpp"
#include "liberty/testing/netspec.hpp"

namespace liberty::resil {
struct FaultPlan;
}

namespace liberty::testing {

struct Candidate {
  liberty::core::SchedulerKind kind = liberty::core::SchedulerKind::Static;
  unsigned threads = 0;  // parallel only; 0 = hardware concurrency
  /// Optimizer level applied to the candidate's netlist (opt::optimize)
  /// before its simulator is built.  The dynamic -O0 reference defines the
  /// semantics, so a nonzero level here proves the optimizer preserves
  /// transfer traces, state digests and stats bit-for-bit.
  int opt_level = 0;

  [[nodiscard]] std::string describe() const;
};

struct OracleConfig {
  /// Candidates checked against the dynamic reference.  Empty selects the
  /// default battery: static, parallel x {1, 2, 8} threads.
  std::vector<Candidate> candidates;
  liberty::core::Cycle snapshot_every = 16;
  bool bisect = true;  // phase 2 on divergence
  /// Attach a CycleProfiler to every coarse-phase simulator.  The probes
  /// must be invisible to simulation; running the oracle with this set
  /// proves profiling does not perturb results.
  bool profile = false;
  /// Inject this fault plan into every simulator the oracle builds
  /// (coarse and bisect phases alike).  Plans whose specs are restricted
  /// to one scheduler kind perturb only that kind, so the oracle must
  /// catch and bisect the induced divergence — the differential
  /// acceptance test for the resil injector.  Must outlive the call.
  const liberty::resil::FaultPlan* fault_plan = nullptr;
};

/// The oracle's verdict on one (spec, candidate) divergence.
struct Divergence {
  Candidate candidate;
  liberty::core::Cycle first_divergent_cycle = 0;
  std::vector<std::string> modules;  // whose state digests differ first
  std::string detail;                // human-readable report
};

struct OracleResult {
  bool ok = true;
  std::vector<Divergence> divergences;  // one per failing candidate

  [[nodiscard]] std::string report() const;
};

/// Run `spec` under the reference and every candidate; compare.
[[nodiscard]] OracleResult run_oracle(
    const NetSpec& spec, const liberty::core::ModuleRegistry& registry,
    const OracleConfig& config = {});

}  // namespace liberty::testing
