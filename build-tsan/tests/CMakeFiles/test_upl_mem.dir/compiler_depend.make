# Empty compiler generated dependencies file for test_upl_mem.
# This may be replaced when dependencies are built.
