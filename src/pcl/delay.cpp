#include "liberty/pcl/delay.hpp"

#include "liberty/core/opt.hpp"
#include "liberty/support/error.hpp"

namespace liberty::pcl {

using liberty::core::AckMode;
using liberty::core::Cycle;
using liberty::core::Deps;
using liberty::core::Params;

Delay::Delay(const std::string& name, const Params& params)
    : Module(name),
      in_(add_in("in", AckMode::Managed, 0, 1)),
      out_(add_out("out", 0, 1)),
      latency_(static_cast<std::uint64_t>(params.get_int("latency", 1))),
      capacity_(static_cast<std::size_t>(params.get_int("capacity", 0))) {
  if (latency_ == 0) {
    throw liberty::ElaborationError("pcl.delay '" + name +
                                    "': latency must be >= 1");
  }
  if (capacity_ == 0) capacity_ = static_cast<std::size_t>(latency_);
}

void Delay::cycle_start(Cycle c) {
  if (!items_.empty() && items_.front().ready <= c) {
    out_.send(items_.front().value);
  } else {
    out_.idle();
  }
  if (items_.size() < capacity_) {
    in_.ack();
  } else {
    in_.nack();
  }
}

void Delay::end_of_cycle() {
  if (out_.transferred()) items_.pop_front();
  if (in_.transferred()) {
    items_.push_back(Entry{in_.data(), now() + latency_});
  }
}

void Delay::save_state(liberty::core::StateWriter& w) const {
  w.put_size(items_.size());
  for (const auto& e : items_) {
    w.put(e.value);
    w.put_u64(e.ready);
  }
}

void Delay::load_state(liberty::core::StateReader& r) {
  items_.clear();
  const std::size_t n = r.get_size();
  for (std::size_t i = 0; i < n; ++i) {
    liberty::Value v = r.get();
    const Cycle ready = r.get_u64();
    items_.push_back(Entry{std::move(v), ready});
  }
}

void Delay::declare_deps(Deps& deps) const {
  deps.state_only(out_);
  deps.state_only(in_);
}

void Delay::declare_opt(liberty::core::OptTraits& traits) const {
  traits.sleepable();
}

bool Delay::can_sleep() const {
  // Empty *and* nothing left this cycle: the pipeline drove idle+ack this
  // cycle and will drive the same next cycle.  (Empty alone is not enough —
  // the last item may have left during this end_of_cycle, in which case
  // this cycle's drive was a send.)  Sampled before channel reset, so
  // transferred() is still valid.
  return items_.empty() && !out_.transferred();
}

}  // namespace liberty::pcl
