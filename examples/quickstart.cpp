// Quickstart: build a system from an LSS specification and simulate it.
//
// This walks the full Figure-1 pipeline of the paper: a Liberty Simulator
// Specification (written in the LSS dialect, including a hierarchical
// module definition and a generative for-loop) is parsed, elaborated
// against the component-library catalog, constructed into a simulator, and
// run.  It also emits the netlist as Graphviz DOT — the hook the paper's
// interactive visualizer would consume.
//
// Run:  ./quickstart            (prints stats)
//       ./quickstart --dot      (prints the DOT graph instead)
#include <iostream>
#include <string>

#include "liberty/ccl/ccl.hpp"
#include "liberty/core/lss/elaborator.hpp"
#include "liberty/core/registry.hpp"
#include "liberty/core/simulator.hpp"
#include "liberty/mpl/mpl.hpp"
#include "liberty/nil/nil.hpp"
#include "liberty/pcl/pcl.hpp"
#include "liberty/upl/upl.hpp"

namespace {

const char* kSpec = R"(
// Four producers feed a two-stage buffered funnel into one sink.
param N = 4;
param DEPTH = 8;

module buffered_lane {
  param depth = 4;
  inport in;
  outport out;
  instance q1 : pcl.queue { depth = depth; };
  instance d : pcl.delay { latency = 2; };
  connect q1.out -> d.in;
  export q1.in as in;
  export d.out as out;
}

instance arb : pcl.arbiter { policy = "round_robin"; };
instance outq : pcl.queue { depth = DEPTH; };
instance sink : pcl.sink { stop_after = 200; };

for i in 0 .. N {
  instance src[i] : pcl.source {
    kind = "counter"; period = 2; count = 50; seed = i + 1; stamp = true;
  };
  instance lane[i] : buffered_lane { depth = DEPTH / 2; };
  connect src[i].out -> lane[i].in;
  connect lane[i].out -> arb.in;
}
connect arb.out -> outq.in;
connect outq.out -> sink.in;
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace liberty;

  // One catalog, every library — the shared component contract is what
  // lets them interoperate (paper §2).
  core::ModuleRegistry registry;
  pcl::register_pcl(registry);
  upl::register_upl(registry);
  ccl::register_ccl(registry);
  mpl::register_mpl(registry);
  nil::register_nil(registry);

  core::Netlist netlist;
  core::lss::build_from_lss(kSpec, "quickstart.lss", netlist, registry);

  if (argc > 1 && std::string(argv[1]) == "--dot") {
    netlist.write_dot(std::cout);
    return 0;
  }

  std::cout << "elaborated " << netlist.module_count() << " module instances, "
            << netlist.connection_count() << " connections\n";

  core::Simulator sim(netlist, core::SchedulerKind::Static);
  const auto cycles = sim.run(10'000);
  std::cout << "simulated " << cycles << " cycles\n\n";
  netlist.dump_stats(std::cout);
  return 0;
}
