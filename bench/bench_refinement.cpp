// E7 (paper §2.2): mixed levels of abstraction on one fabric.
//
// The same 4x4 mesh is driven by (a) statistical generators at every node
// and (b) detailed processors + NIC injectors at every node producing
// comparable offered load.  Shape expectations: the abstract configuration
// simulates much faster (fewer modules, no instruction execution) while
// reproducing the detailed configuration's network latency to within a few
// cycles at matched load.
#include <deque>
#include <memory>

#include "bench_util.hpp"

using namespace liberty;
using namespace liberty::bench;

namespace {

class CpuInjector final : public core::Module {
 public:
  CpuInjector(const std::string& name, std::size_t src, std::size_t nodes)
      : Module(name), src_(src), nodes_(nodes) {
    out_ = &add_out("out", 0, 1);
  }
  void enqueue(std::int64_t v) { pending_.push_back(v); }
  void cycle_start(core::Cycle c) override {
    if (!pending_.empty()) {
      // Destination derived from the value (pseudo-uniform, never self).
      auto dst = static_cast<std::size_t>(pending_.front()) % (nodes_ - 1);
      if (dst >= src_) ++dst;
      auto flit = std::make_shared<ccl::Flit>(seq_, src_, dst, c);
      out_->send(liberty::Value(
          std::static_pointer_cast<const Payload>(std::move(flit))));
    } else {
      out_->idle();
    }
  }
  void end_of_cycle() override {
    if (out_->transferred()) {
      pending_.pop_front();
      ++seq_;
    }
  }
  void declare_deps(core::Deps& d) const override { d.state_only(*out_); }

 private:
  std::size_t src_;
  std::size_t nodes_;
  std::uint64_t seq_ = 0;
  std::deque<std::int64_t> pending_;
  core::Port* out_ = nullptr;
};

struct Observed {
  double latency = 0.0;
  double hops = 0.0;
  std::uint64_t delivered = 0;
  double wall_s = 0.0;
};

Observed run_abstract(std::uint64_t cycles, double rate) {
  core::Netlist nl;
  ccl::Fabric mesh = ccl::build_mesh(nl, "mesh", 4, 4);
  std::vector<ccl::TrafficSink*> sinks;
  for (std::size_t i = 0; i < 16; ++i) {
    auto& g = nl.make<ccl::TrafficGen>(
        "g" + std::to_string(i),
        core::Params().set("id", static_cast<std::int64_t>(i))
            .set("nodes", 16).set("rate", rate).set("pattern", "uniform")
            .set("seed", 33));
    auto& s = nl.make<ccl::TrafficSink>("s" + std::to_string(i),
                                        core::Params());
    sinks.push_back(&s);
    nl.connect_at(g.out("out"), 0, mesh.inject_port(i), 0);
    nl.connect_at(mesh.eject_port(i), 0, s.in("in"), 0);
  }
  nl.finalize();
  core::Simulator sim(nl, core::SchedulerKind::Static);
  Observed o;
  o.wall_s = time_seconds([&] { sim.run(cycles); });
  double lat = 0.0, hops = 0.0;
  for (auto* s : sinks) {
    o.delivered += s->received();
    lat += s->mean_latency() * static_cast<double>(s->received());
    hops += s->mean_hops() * static_cast<double>(s->received());
  }
  if (o.delivered != 0) {
    o.latency = lat / static_cast<double>(o.delivered);
    o.hops = hops / static_cast<double>(o.delivered);
  }
  return o;
}

Observed run_detailed(std::uint64_t cycles, int work_iters) {
  core::Netlist nl;
  ccl::Fabric mesh = ccl::build_mesh(nl, "mesh", 4, 4);
  std::vector<ccl::TrafficSink*> sinks;
  for (std::size_t i = 0; i < 16; ++i) {
    auto& cpu = nl.make<upl::SimpleCpu>("gp" + std::to_string(i),
                                        core::Params());
    auto& nic = nl.make<CpuInjector>("nic" + std::to_string(i), i, 16);
    auto& s = nl.make<ccl::TrafficSink>("s" + std::to_string(i),
                                        core::Params());
    // Detail also means each node carries a real memory hierarchy: the
    // send loop's loads/stores travel through an L1 and a memory
    // controller, exactly as they would in the full system model.
    auto& l1 = nl.make<upl::CacheModule>(
        "l1_" + std::to_string(i),
        core::Params().set("sets", 16).set("ways", 2).set("line_words", 4));
    auto& mc = nl.make<upl::MemoryCtl>(
        "mc" + std::to_string(i),
        core::Params().set("latency", 10).set("line_words", 4));
    nl.connect(cpu.out("mem_req"), l1.in("cpu_req"));
    nl.connect(l1.out("cpu_resp"), cpu.in("mem_resp"));
    nl.connect(l1.out("mem_req"), mc.in("req"));
    nl.connect(mc.out("resp"), l1.in("mem_resp"));
    sinks.push_back(&s);
    // Send loop: load a buffer word, combine, store back, send to the NIC,
    // then `work_iters` of busy work.
    cpu.set_program(upl::assemble(
        "  li r1, " + std::to_string(i * 13 + 1) + "\n"
        "  li r9, 0\n"
        "loop:\n"
        "  andi r10, r9, 63\n"
        "  lw r11, 256(r10)\n"
        "  li r8, 37\n"
        "  mul r1, r1, r8\n"
        "  add r1, r1, r11\n"
        "  li r8, 997\n"
        "  rem r1, r1, r8\n"
        "  sw r1, 256(r10)\n"
        "  sw r1, 4096(r0)\n"
        "  addi r9, r9, 1\n"
        "  li r4, 0\n"
        "work:\n"
        "  addi r4, r4, 1\n"
        "  slti r5, r4, " + std::to_string(work_iters) + "\n"
        "  bne r5, r0, work\n"
        "  j loop\n"));
    cpu.map_mmio(4096, 1, nullptr, [&nic](std::uint64_t, std::int64_t v) {
      nic.enqueue(v);
    });
    nl.connect_at(nic.out("out"), 0, mesh.inject_port(i), 0);
    nl.connect_at(mesh.eject_port(i), 0, s.in("in"), 0);
  }
  nl.finalize();
  core::Simulator sim(nl, core::SchedulerKind::Static);
  Observed o;
  o.wall_s = time_seconds([&] { sim.run(cycles); });
  double lat = 0.0, hops = 0.0;
  for (auto* s : sinks) {
    o.delivered += s->received();
    lat += s->mean_latency() * static_cast<double>(s->received());
    hops += s->mean_hops() * static_cast<double>(s->received());
  }
  if (o.delivered != 0) {
    o.latency = lat / static_cast<double>(o.delivered);
    o.hops = hops / static_cast<double>(o.delivered);
  }
  return o;
}

}  // namespace

int main() {
  std::printf("E7: statistical generator vs detailed processor + NIC on the "
              "same 4x4 mesh\n\n");
  constexpr std::uint64_t kCycles = 20'000;
  // A send loop with ~11 instructions of work yields roughly one packet
  // every ~25 cycles; match the statistical rate to the measured detailed
  // injection.
  const Observed det = run_detailed(kCycles, 4);
  const double matched_rate = static_cast<double>(det.delivered) / 16.0 /
                              static_cast<double>(kCycles);
  const Observed abs = run_abstract(kCycles, matched_rate);

  Table t({"injector", "delivered", "latency", "hops", "wall s",
           "sim speedup"});
  t.row({"detailed (cpu+nic)", fmt(det.delivered), fmt(det.latency, 2),
         fmt(det.hops, 2), fmt(det.wall_s, 3), "1.00x"});
  t.row({"abstract (statistical)", fmt(abs.delivered), fmt(abs.latency, 2),
         fmt(abs.hops, 2), fmt(abs.wall_s, 3),
         fmt(det.wall_s / abs.wall_s, 2) + "x"});
  t.print();
  std::printf("\nmatched offered load: %.4f flits/node/cycle\n",
              matched_rate);
  std::printf("shape check: the abstract model simulates faster and "
              "approximates the detailed network latency at matched load "
              "(within a few cycles).\n");
  return 0;
}
