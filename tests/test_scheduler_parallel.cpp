// Parallel wave scheduler: determinism against the semantics-defining
// dynamic baseline (identical VCD waveforms, transfer traces and final
// statistics at every thread count), schedule-shape introspection, and the
// threads knob.  This binary carries the `tsan` ctest label: a
// -DLIBERTY_SANITIZE=thread build runs it under ThreadSanitizer to check
// the wave/cluster execution for data races.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "liberty/core/simulator.hpp"
#include "liberty/core/vcd.hpp"
#include "liberty/opt/optimizer.hpp"
#include "liberty/pcl/pcl.hpp"
#include "test_util.hpp"

namespace {

using liberty::Value;
using liberty::core::Netlist;
using liberty::core::Params;
using liberty::core::ParallelScheduler;
using liberty::core::SchedulerKind;
using liberty::core::Simulator;
using namespace liberty::pcl;
using liberty::test::params;

// A deterministic netlist with independent lanes (parallelism to exploit),
// an arbiter merge (multi-node SCC) and a demux fan-out (selector state).
void build_mixed(Netlist& nl) {
  auto& src = nl.make<Source>(
      "src", params({{"kind", "counter"}, {"period", 1}, {"count", 200}}));
  auto& dm = nl.make<Demux>("dm", Params());
  dm.set_selector(
      [](const Value& v) { return static_cast<std::size_t>(v.as_int() % 2); });
  auto& arb = nl.make<Arbiter>("arb", Params());
  auto& sink = nl.make<Sink>("sink", Params());
  nl.connect(src.out("out"), dm.in("in"));
  for (std::size_t i = 0; i < 2; ++i) {
    auto& q = nl.make<Queue>("q" + std::to_string(i),
                             params({{"depth", static_cast<int>(2 + i)}}));
    nl.connect_at(dm.out("out"), i, q.in("in"), 0);
    nl.connect(q.out("out"), arb.in("in"));
  }
  nl.connect(arb.out("out"), sink.in("in"));

  // Four independent pipelines alongside: the wave schedule should expose
  // them as separately executable clusters.
  for (int i = 0; i < 4; ++i) {
    auto& s = nl.make<Source>(
        "ls" + std::to_string(i),
        params({{"kind", "counter"}, {"period", 1 + i % 2}}));
    auto& d = nl.make<Delay>("ld" + std::to_string(i),
                             params({{"latency", 1 + i}}));
    auto& k = nl.make<Sink>("lk" + std::to_string(i), Params());
    nl.connect(s.out("out"), d.in("in"));
    nl.connect(d.out("out"), k.in("in"));
  }
}

// Run `build` under a scheduler and capture everything observable: the VCD
// waveform, the textual transfer trace, and the per-module statistics dump.
std::string run_traced(void (*build)(Netlist&), SchedulerKind kind,
                       unsigned threads) {
  Netlist nl;
  build(nl);
  nl.finalize();
  Simulator sim(nl, kind, threads);
  std::ostringstream vcd;
  liberty::core::VcdTracer tracer(nl, vcd);
  tracer.attach(sim);
  std::ostringstream transfers;
  sim.trace_transfers(transfers);
  sim.run(300);
  tracer.finish();
  std::ostringstream stats;
  nl.dump_stats(stats);
  return vcd.str() + "\n--transfers--\n" + transfers.str() + "\n--stats--\n" +
         stats.str();
}

TEST(ParallelScheduler, TracesBitIdenticalToDynamicAtEveryThreadCount) {
  const std::string baseline =
      run_traced(build_mixed, SchedulerKind::Dynamic, 0);
  ASSERT_NE(baseline.find("--transfers--"), std::string::npos);
  for (const unsigned threads : {1u, 2u, 8u}) {
    EXPECT_EQ(baseline, run_traced(build_mixed, SchedulerKind::Parallel,
                                   threads))
        << "threads=" << threads;
  }
}

TEST(ParallelScheduler, MatchesStaticToo) {
  EXPECT_EQ(run_traced(build_mixed, SchedulerKind::Static, 0),
            run_traced(build_mixed, SchedulerKind::Parallel, 2));
}

TEST(ParallelScheduler, WaveShapeExposesIndependentLanes) {
  Netlist nl;
  build_mixed(nl);
  nl.finalize();
  ParallelScheduler sched(nl, 2);
  EXPECT_GE(sched.wave_count(), 2u);
  EXPECT_GT(sched.cluster_count(), sched.wave_count());
  // The four independent pipelines plus the demux/arbiter diamond must
  // yield at least four concurrently executable clusters in some wave.
  EXPECT_GE(sched.max_wave_width(), 4u);
}

TEST(ParallelScheduler, ThreadsKnobNormalizes) {
  Netlist nl;
  build_mixed(nl);
  nl.finalize();
  ParallelScheduler defaulted(nl, 0);
  EXPECT_GE(defaulted.threads(), 1u);  // 0 = hardware concurrency, >= 1
  ParallelScheduler three(nl, 3);
  EXPECT_EQ(three.threads(), 3u);
  EXPECT_EQ(three.kind_name(), "parallel");
}

TEST(ParallelScheduler, StopRequestHonoured) {
  const auto cycles_until_stop = [](SchedulerKind kind, unsigned threads) {
    Netlist nl;
    auto& src = nl.make<Source>(
        "src", params({{"kind", "counter"}, {"period", 1}}));
    auto& sink = nl.make<Sink>("sink", params({{"stop_after", 25}}));
    nl.connect(src.out("out"), sink.in("in"));
    nl.finalize();
    Simulator sim(nl, kind, threads);
    return sim.run(10'000);
  };
  const auto dyn = cycles_until_stop(SchedulerKind::Dynamic, 0);
  EXPECT_LT(dyn, 10'000u);
  EXPECT_EQ(dyn, cycles_until_stop(SchedulerKind::Parallel, 2));
}

// Bursty lanes: each lane sees one item every ~24-31 cycles and idles in
// between, so quiescence gating at -O2 puts the lane tails to sleep most
// cycles.  Under ThreadSanitizer this covers the gate's cross-thread paths:
// workers calling try_sleep for their own clusters, replaying boundary
// resolutions, and waking driver modules owned by other clusters.
void build_bursty(Netlist& nl) {
  for (int lane = 0; lane < 8; ++lane) {
    const std::string l = std::to_string(lane);
    auto& s = nl.make<Source>(
        "s" + l, params({{"kind", "counter"}, {"period", 24 + lane}}));
    auto& d = nl.make<Delay>("d" + l, params({{"latency", 2}}));
    auto& p = nl.make<Probe>("p" + l, Params());
    auto& k = nl.make<Sink>("k" + l, Params());
    nl.connect(s.out("out"), d.in("in"));
    nl.connect(d.out("out"), p.in("in"));
    nl.connect(p.out("out"), k.in("in"));
  }
}

// Like run_traced but optimizes the netlist first and optionally reports
// how often gated SCCs actually slept.
std::string run_traced_opt(void (*build)(Netlist&), SchedulerKind kind,
                           unsigned threads, int level,
                           std::uint64_t* sleeps = nullptr) {
  Netlist nl;
  build(nl);
  nl.finalize();
  liberty::opt::optimize(nl, liberty::opt::OptOptions::for_level(level));
  Simulator sim(nl, kind, threads);
  std::ostringstream vcd;
  liberty::core::VcdTracer tracer(nl, vcd);
  tracer.attach(sim);
  std::ostringstream transfers;
  sim.trace_transfers(transfers);
  sim.run(300);
  tracer.finish();
  std::ostringstream stats;
  nl.dump_stats(stats);
  if (sleeps != nullptr) {
    *sleeps = 0;
    sim.scheduler().visit_counters(
        [&](std::string_view name, std::uint64_t v) {
          if (name == "opt.scc_sleeps") *sleeps = v;
        });
  }
  return vcd.str() + "\n--transfers--\n" + transfers.str() + "\n--stats--\n" +
         stats.str();
}

TEST(ParallelScheduler, QuiescenceGatingBitIdenticalUnderWorkerPool) {
  const std::string baseline =
      run_traced(build_bursty, SchedulerKind::Dynamic, 0);
  for (const unsigned threads : {1u, 2u, 8u}) {
    std::uint64_t sleeps = 0;
    EXPECT_EQ(baseline, run_traced_opt(build_bursty, SchedulerKind::Parallel,
                                       threads, 2, &sleeps))
        << "threads=" << threads;
    // The lanes idle between bursts, so gating must have engaged — this is
    // a race-coverage test as much as a correctness one, and it would be
    // vacuous if every SCC stayed awake.
    EXPECT_GT(sleeps, 100u) << "threads=" << threads;
  }
}

TEST(ParallelScheduler, KindParsing) {
  using liberty::core::scheduler_kind_from_name;
  EXPECT_EQ(scheduler_kind_from_name("dyn"), SchedulerKind::Dynamic);
  EXPECT_EQ(scheduler_kind_from_name("dynamic"), SchedulerKind::Dynamic);
  EXPECT_EQ(scheduler_kind_from_name("static"), SchedulerKind::Static);
  EXPECT_EQ(scheduler_kind_from_name("par"), SchedulerKind::Parallel);
  EXPECT_EQ(scheduler_kind_from_name("parallel"), SchedulerKind::Parallel);
  EXPECT_THROW((void)scheduler_kind_from_name("greedy"),
               liberty::ElaborationError);
}

}  // namespace
