#include "liberty/resil/durable.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "liberty/obs/metrics.hpp"
#include "liberty/resil/injector.hpp"
#include "liberty/support/error.hpp"

namespace liberty::resil {

namespace fs = std::filesystem;

namespace {

constexpr const char* kPrefix = "ckpt-";
constexpr const char* kSuffix = ".lck";

[[nodiscard]] std::string checkpoint_filename(core::Cycle cycle) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%s%012llu%s", kPrefix,
                static_cast<unsigned long long>(cycle), kSuffix);
  return buf;
}

/// Cycle number encoded in a checkpoint filename; false when the name
/// doesn't match the ckpt-NNNN.lck pattern.
[[nodiscard]] bool filename_cycle(const std::string& name, core::Cycle& out) {
  const std::size_t plen = std::strlen(kPrefix);
  const std::size_t slen = std::strlen(kSuffix);
  if (name.size() <= plen + slen || name.rfind(kPrefix, 0) != 0 ||
      name.compare(name.size() - slen, slen, kSuffix) != 0) {
    return false;
  }
  const std::string digits = name.substr(plen, name.size() - plen - slen);
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  out = static_cast<core::Cycle>(std::strtoull(digits.c_str(), nullptr, 10));
  return true;
}

[[nodiscard]] bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

/// Write bytes durably: tmp file, fsync, atomic rename, directory fsync.
/// Returns false with `err` set on any syscall failure.
[[nodiscard]] bool write_atomic(const std::string& dir,
                                const std::string& final_name,
                                const std::string& bytes, std::string& err) {
  const std::string tmp = dir + "/." + final_name + ".tmp";
  const std::string final_path = dir + "/" + final_name;
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    err = "open " + tmp + ": " + std::strerror(errno);
    return false;
  }
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      err = "write " + tmp + ": " + std::strerror(errno);
      ::close(fd);
      ::unlink(tmp.c_str());
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    err = "fsync " + tmp + ": " + std::strerror(errno);
    ::close(fd);
    ::unlink(tmp.c_str());
    return false;
  }
  ::close(fd);
  if (::rename(tmp.c_str(), final_path.c_str()) != 0) {
    err = "rename to " + final_path + ": " + std::strerror(errno);
    ::unlink(tmp.c_str());
    return false;
  }
  // Persist the rename itself; without this a crash can forget the file.
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return true;
}

/// Seeded truncation point for an injected torn write: always a strict
/// prefix, deterministic in (seed, cycle).
[[nodiscard]] std::size_t torn_length(std::uint64_t seed, core::Cycle cycle,
                                      std::size_t full) {
  std::uint64_t h = core::kFnv1aInit;
  h = core::fnv1a_mix(h, seed);
  h = core::fnv1a_mix(h, static_cast<std::uint64_t>(cycle) + 1);
  return full == 0 ? 0 : static_cast<std::size_t>(h % full);
}

}  // namespace

std::vector<CheckpointCandidate> scan_checkpoints(
    const std::string& dir, std::uint64_t topology_hash) {
  std::vector<CheckpointCandidate> list;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (ec) break;
    if (!entry.is_regular_file(ec)) continue;
    CheckpointCandidate cand;
    cand.path = entry.path().string();
    if (!filename_cycle(entry.path().filename().string(), cand.cycle)) {
      continue;  // .tmp leftovers, foreign files
    }
    std::string bytes;
    if (!read_file(cand.path, bytes)) {
      cand.reason = "unreadable";
      list.push_back(std::move(cand));
      continue;
    }
    cand.bytes = bytes.size();
    core::CheckpointImage img;
    std::string why;
    if (!core::parse_checkpoint(bytes, img, why)) {
      cand.reason = why;
    } else if (topology_hash != 0 && img.topology_hash != topology_hash) {
      cand.reason = "topology mismatch (checkpoint belongs to a different "
                    "netlist shape)";
    } else {
      cand.valid = true;
      cand.cycle = img.snapshot.cycle;  // trust the file over the name
    }
    list.push_back(std::move(cand));
  }
  std::sort(list.begin(), list.end(),
            [](const CheckpointCandidate& a, const CheckpointCandidate& b) {
              if (a.cycle != b.cycle) return a.cycle > b.cycle;
              return a.path > b.path;
            });
  return list;
}

std::string describe_candidates(const std::string& dir,
                                const std::vector<CheckpointCandidate>& list) {
  std::string s = "checkpoint dir '" + dir + "': ";
  if (list.empty()) {
    std::error_code ec;
    s += fs::exists(dir, ec) ? "no checkpoint files found"
                             : "directory does not exist";
    return s;
  }
  s += std::to_string(list.size()) + " candidate(s):";
  for (const CheckpointCandidate& c : list) {
    s += "\n  " + fs::path(c.path).filename().string() + " (cycle " +
         std::to_string(c.cycle) + ", " + std::to_string(c.bytes) + " bytes): ";
    s += c.valid ? "ok" : "REJECTED: " + c.reason;
  }
  return s;
}

DurableSupervisor::DurableSupervisor(core::Netlist& netlist,
                                     SupervisorConfig cfg,
                                     DurableConfig durable,
                                     FaultInjector* injector,
                                     Watchdog* watchdog)
    : Supervisor(netlist, cfg, injector, watchdog),
      durable_(std::move(durable)) {
  if (durable_.dir.empty()) {
    throw liberty::Error("DurableConfig.dir must name a run directory");
  }
  std::error_code ec;
  fs::create_directories(durable_.dir, ec);
  if (ec) {
    diagnostics_.push_back("checkpoint dir '" + durable_.dir +
                           "' cannot be created: " + ec.message() +
                           " — running without durability");
  }
}

void DurableSupervisor::note(RecoveryReport* rep, std::string msg) {
  diagnostics_.push_back(msg);
  if (rep != nullptr) rep->events.push_back(std::move(msg));
}

void DurableSupervisor::on_run_start(RecoveryReport& rep) {
  if (!durable_.resume) return;
  const std::uint64_t topo = netlist_.topology_hash();
  const std::vector<CheckpointCandidate> candidates =
      scan_checkpoints(durable_.dir, topo);
  for (const CheckpointCandidate& cand : candidates) {
    if (!cand.valid) {
      ++stats_.corrupt_skipped;
      note(&rep, "resume: skipped " + fs::path(cand.path).filename().string() +
                     ": " + cand.reason);
      continue;
    }
    std::string bytes;
    core::CheckpointImage img;
    std::string why;
    if (!read_file(cand.path, bytes) ||
        !core::parse_checkpoint(bytes, img, why)) {
      ++stats_.corrupt_skipped;
      note(&rep, "resume: skipped " + fs::path(cand.path).filename().string() +
                     ": " + (why.empty() ? "unreadable" : why));
      continue;
    }
    try {
      sim_->restore(img.snapshot);
    } catch (const liberty::Error& e) {
      ++stats_.corrupt_skipped;
      note(&rep, "resume: skipped " + fs::path(cand.path).filename().string() +
                     ": restore failed: " + e.what());
      continue;
    }
    recorder_.preload(std::move(img.trace_hashes));
    resumed_cycle_ = img.snapshot.cycle;
    last_spilled_cycle_ = static_cast<std::int64_t>(img.snapshot.cycle);
    ++stats_.resumes;
    note(&rep, "resumed from " + fs::path(cand.path).filename().string() +
                   " at cycle " + std::to_string(resumed_cycle_));
    return;
  }
  // Nothing usable — start fresh, and show exactly what was found and why
  // it was rejected (the shared lss_run/rack_sim message path).
  note(&rep, describe_candidates(durable_.dir, candidates));
  note(&rep, "resume: no valid checkpoint; starting fresh from cycle 0");
}

void DurableSupervisor::on_checkpoint(RecoveryReport& rep) {
  if (static_cast<std::int64_t>(checkpoint_.cycle) == last_spilled_cycle_) {
    return;  // the resume point (or a rollback target) is already on disk
  }
  spill(&rep);
}

void DurableSupervisor::spill(RecoveryReport* rep) {
  const core::Cycle cycle = checkpoint_.cycle;
  if (injector_ != nullptr &&
      injector_->env_fault_fires(FaultClass::CheckpointEnospc, cycle)) {
    ++stats_.write_failures;
    if (stats_.write_failures == 1) {
      note(rep, "checkpoint at cycle " + std::to_string(cycle) +
                    " suppressed: injected ENOSPC (run continues undurable)");
    }
    return;
  }
  core::CheckpointImage img;
  img.topology_hash = netlist_.topology_hash();
  img.aux_seed = durable_.aux_seed;
  img.snapshot = checkpoint_;
  img.trace_hashes = recorder_.hashes();
  img.trace_hashes.resize(cycle, core::kFnv1aInit);
  std::string bytes;
  try {
    bytes = core::serialize_checkpoint(img);
  } catch (const liberty::Error& e) {
    ++stats_.write_failures;
    if (!encode_failed_) {
      encode_failed_ = true;
      note(rep, std::string("checkpoint serialization failed: ") + e.what() +
                    " (run continues undurable)");
    }
    return;
  }
  if (injector_ != nullptr &&
      injector_->env_fault_fires(FaultClass::TornCheckpoint, cycle)) {
    bytes.resize(torn_length(injector_->plan().seed, cycle, bytes.size()));
    note(rep, "checkpoint at cycle " + std::to_string(cycle) +
                  ": injected torn write (" + std::to_string(bytes.size()) +
                  " bytes)");
  }
  std::string err;
  if (!write_atomic(durable_.dir, checkpoint_filename(cycle), bytes, err)) {
    ++stats_.write_failures;
    if (stats_.write_failures == 1) {
      note(rep, "checkpoint write failed: " + err +
                    " (run continues undurable)");
    }
    return;
  }
  ++stats_.checkpoints_written;
  stats_.bytes_written += bytes.size();
  last_spilled_cycle_ = static_cast<std::int64_t>(cycle);
  prune();
}

void DurableSupervisor::prune() {
  if (durable_.keep_last == 0) return;
  // Retention is by filename cycle, validity-agnostic: a torn newest file
  // must not evict the older good one past the window, so keep_last counts
  // files, and the scanner still sees every survivor.
  std::vector<std::pair<core::Cycle, std::string>> files;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(durable_.dir, ec)) {
    if (ec) return;
    core::Cycle cycle = 0;
    if (!entry.is_regular_file(ec) ||
        !filename_cycle(entry.path().filename().string(), cycle)) {
      continue;
    }
    files.emplace_back(cycle, entry.path().string());
  }
  if (files.size() <= durable_.keep_last) return;
  std::sort(files.begin(), files.end());
  const std::size_t drop = files.size() - durable_.keep_last;
  for (std::size_t i = 0; i < drop; ++i) {
    fs::remove(files[i].second, ec);
  }
}

void DurableSupervisor::on_cycle_committed(core::Cycle now) {
  if (durable_.kill_at != 0 && now >= durable_.kill_at) {
    // The crash harness's guillotine: die exactly as SIGKILL from outside
    // would — no destructors, no flushes, mid-run.
    ::raise(SIGKILL);
  }
}

void DurableSupervisor::export_metrics(obs::MetricsRegistry& reg) const {
  reg.add_counter("resil.supervisor.checkpoints_written",
                  stats_.checkpoints_written);
  reg.add_counter("resil.supervisor.checkpoint_bytes", stats_.bytes_written);
  reg.add_counter("resil.supervisor.resumes", stats_.resumes);
  reg.add_counter("resil.supervisor.corrupt_skipped", stats_.corrupt_skipped);
  reg.add_counter("resil.supervisor.write_failures", stats_.write_failures);
}

}  // namespace liberty::resil
