#include "liberty/core/simulator.hpp"

#include <cstdio>
#include <string>

#include "liberty/support/error.hpp"

namespace liberty::core {

SchedulerKind scheduler_kind_from_name(std::string_view name) {
  if (name == "dyn" || name == "dynamic") return SchedulerKind::Dynamic;
  if (name == "static") return SchedulerKind::Static;
  if (name == "par" || name == "parallel") return SchedulerKind::Parallel;
  if (name == "comp" || name == "compiled") return SchedulerKind::Compiled;
  if (name == "native") return SchedulerKind::Native;
  throw liberty::ElaborationError(
      "unknown scheduler kind '" + std::string(name) +
      "' (valid: dyn|dynamic, static, par|parallel, comp|compiled, native)");
}

namespace {
CompiledSchedulerFactory g_compiled_factory = nullptr;
NativeSchedulerFactory g_native_factory = nullptr;
}  // namespace

void set_compiled_scheduler_factory(CompiledSchedulerFactory factory) {
  g_compiled_factory = factory;
}

CompiledSchedulerFactory compiled_scheduler_factory() {
  return g_compiled_factory;
}

void set_native_scheduler_factory(NativeSchedulerFactory factory) {
  g_native_factory = factory;
}

NativeSchedulerFactory native_scheduler_factory() {
  return g_native_factory;
}

Simulator::Simulator(Netlist& netlist, SchedulerKind kind, unsigned threads)
    : netlist_(netlist) {
  switch (kind) {
    case SchedulerKind::Dynamic:
      sched_ = std::make_unique<DynamicScheduler>(netlist);
      break;
    case SchedulerKind::Static:
      sched_ = std::make_unique<StaticScheduler>(netlist);
      break;
    case SchedulerKind::Parallel:
      sched_ = std::make_unique<ParallelScheduler>(netlist, threads);
      break;
    case SchedulerKind::Compiled:
      if (g_compiled_factory == nullptr) {
        throw liberty::ElaborationError(
            "compiled scheduler requested but no backend is registered: "
            "link liberty_gen and call liberty::gen::ensure_registered() "
            "before constructing the Simulator");
      }
      sched_ = g_compiled_factory(netlist);
      break;
    case SchedulerKind::Native:
      if (g_native_factory != nullptr) {
        sched_ = g_native_factory(netlist);
        break;
      }
      // Graceful degradation: a build without LIBERTY_NATIVE_CODEGEN still
      // accepts --scheduler native and runs the (bit-identical) compiled
      // bytecode backend, announcing the substitution once per process.
      if (g_compiled_factory == nullptr) {
        throw liberty::ElaborationError(
            "native scheduler requested but no backend is registered: "
            "link liberty_gen and call liberty::gen::ensure_registered() "
            "before constructing the Simulator");
      }
      {
        static const bool noticed = [] {
          std::fprintf(stderr,
                       "liberty: native codegen not built in "
                       "(LIBERTY_NATIVE_CODEGEN=OFF); --scheduler native "
                       "runs the compiled bytecode backend\n");
          return true;
        }();
        (void)noticed;
        sched_ = g_compiled_factory(netlist);
      }
      break;
  }
}

KernelSnapshot Simulator::snapshot() const {
  // Backends holding module state outside the module objects (native
  // codegen) publish it first so save_state serializes the real state.
  sched_->sync_module_state();
  KernelSnapshot snap;
  snap.cycle = now_;
  snap.stop_requested = netlist_.stop_requested();
  snap.module_state.reserve(netlist_.module_count());
  for (const auto& m : netlist_.modules()) {
    StateWriter w;
    m->save_state(w);
    snap.module_state.push_back(std::move(w).take());
  }
  return snap;
}

void Simulator::restore(const KernelSnapshot& snap) {
  const auto& modules = netlist_.modules();
  if (snap.module_state.size() != modules.size()) {
    throw liberty::SimulationError(
        "snapshot restore: netlist has " + std::to_string(modules.size()) +
        " modules, snapshot has " + std::to_string(snap.module_state.size()));
  }
  for (std::size_t i = 0; i < modules.size(); ++i) {
    StateReader r(snap.module_state[i], modules[i]->name());
    modules[i]->load_state(r);
    if (!r.exhausted()) {
      throw liberty::SimulationError(
          "snapshot restore: module '" + modules[i]->name() + "' left " +
          std::to_string(r.remaining()) +
          " state slot(s) unconsumed (save_state/load_state mismatch)");
    }
  }
  now_ = snap.cycle;
  netlist_.set_stop(snap.stop_requested);
  // Reset every piece of in-flight kernel state: the quiescence gate's
  // caches, backoff and asleep flags describe the pre-restore trajectory,
  // and if the last cycle aborted mid-resolve (watchdog violation,
  // injected fault) the channels and fused-chain sweep stamps are dirty.
  // recover_after_abort() wipes all of it; between clean cycles it is a
  // no-op re-initialization.
  scheduler().recover_after_abort();
  // The module objects now hold the restored state; a backend with
  // out-of-object module state (native codegen) reloads its images from
  // them.
  scheduler().reimport_module_state();
}

void Simulator::trace_transfers(std::ostream& os) {
  observe_transfers([&os](const Connection& c, Cycle cycle) {
    os << "@" << cycle << "  " << c.describe() << "  " << c.data().to_string()
       << '\n';
  });
}

}  // namespace liberty::core
