#include "liberty/core/simulator.hpp"

#include <string>

#include "liberty/support/error.hpp"

namespace liberty::core {

SchedulerKind scheduler_kind_from_name(std::string_view name) {
  if (name == "dyn" || name == "dynamic") return SchedulerKind::Dynamic;
  if (name == "static") return SchedulerKind::Static;
  if (name == "par" || name == "parallel") return SchedulerKind::Parallel;
  throw liberty::ElaborationError("unknown scheduler kind '" +
                                  std::string(name) +
                                  "' (expected dyn|static|parallel)");
}

void Simulator::trace_transfers(std::ostream& os) {
  observe_transfers([&os](const Connection& c, Cycle cycle) {
    os << "@" << cycle << "  " << c.describe() << "  " << c.data().to_string()
       << '\n';
  });
}

}  // namespace liberty::core
