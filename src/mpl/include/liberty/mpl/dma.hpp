// DMA controller (§3.4: "DMA controllers (for simulating low-overhead
// message-passing systems)").
//
// One DmaCtl per node gives the node a message-passing capability: software
// (or a test harness) programs a transfer through the register interface;
// the controller streams the source range out of local memory, ships it
// across the fabric in DmaChunk messages, and the peer controller writes it
// into remote memory, raising a completion flag the remote processor can
// poll.  The register block is exposed both as a C++ API and as MMIO
// callbacks pluggable into upl::SimpleCpu::map_mmio.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>

#include "liberty/core/module.hpp"
#include "liberty/core/params.hpp"
#include "liberty/mpl/messages.hpp"

namespace liberty::mpl {

/// Ports: mem_req/mem_resp (local memory, pcl::MemReq protocol),
/// net_out/net_in (DmaChunk messages, Routable — wire through a
/// nil::FabricAdapter or directly to the peer).
///
/// Register block (word offsets for mmio_read/mmio_write):
///   0 src_addr   1 dst_node   2 dst_addr   3 length
///   4 control: write 1 starts a transfer; read -> bit0 = tx busy
///   5 rx_words received so far (read)
///   6 rx_done: 1 once a `last` chunk has been written (write 0 clears)
///
/// Parameters: chunk_words (words per message)                    [8]
/// Stats: tx_chunks, rx_chunks, tx_words, rx_words.
class DmaCtl : public liberty::core::Module {
 public:
  DmaCtl(const std::string& name, const liberty::core::Params& params);

  void cycle_start(liberty::core::Cycle c) override;
  void end_of_cycle() override;
  void declare_deps(liberty::core::Deps& deps) const override;

  // Register interface.
  [[nodiscard]] std::int64_t mmio_read(std::uint64_t reg) const;
  void mmio_write(std::uint64_t reg, std::int64_t v);

  /// Convenience for tests/examples: program and start a transfer.
  void start_transfer(std::uint64_t src_addr, std::size_t dst_node,
                      std::uint64_t dst_addr, std::uint64_t length);

  [[nodiscard]] bool tx_busy() const noexcept { return tx_.has_value(); }
  [[nodiscard]] bool rx_done() const noexcept { return rx_done_; }
  [[nodiscard]] std::uint64_t rx_words() const noexcept { return rx_words_; }

 private:
  struct TxState {
    std::uint64_t src_addr;
    std::size_t dst_node;
    std::uint64_t dst_addr;
    std::uint64_t length;
    std::uint64_t read_issued = 0;   // words requested from local memory
    std::uint64_t read_done = 0;     // words received
    std::vector<std::int64_t> data;  // gathered source words
    std::uint64_t sent_words = 0;
  };

  liberty::core::Port& mem_req_;
  liberty::core::Port& mem_resp_;
  liberty::core::Port& net_out_;
  liberty::core::Port& net_in_;
  std::size_t chunk_words_;
  std::uint64_t xfer_id_ = 1;

  // Register file backing.
  std::uint64_t reg_src_ = 0;
  std::uint64_t reg_dst_node_ = 0;
  std::uint64_t reg_dst_addr_ = 0;
  std::uint64_t reg_len_ = 0;

  std::optional<TxState> tx_;
  std::deque<liberty::Value> memq_;   // outstanding local memory requests
  bool mem_in_flight_ = false;
  std::deque<liberty::Value> netq_;   // chunks awaiting transmission
  std::deque<std::pair<std::uint64_t, std::int64_t>> rx_writes_;
  bool rx_last_seen_ = false;
  bool rx_done_ = false;
  std::uint64_t rx_words_ = 0;
};

}  // namespace liberty::mpl
