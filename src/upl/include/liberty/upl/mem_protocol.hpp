// Line-granularity memory protocol shared by UPL caches, MPL coherence
// controllers, and memory controllers.
//
// CPU-side traffic uses the word-granularity pcl::MemReq/MemResp; below the
// first cache everything moves in lines.  Messages implement pcl::Routable
// (keyed by requester id) so the same PCL crossbars/demuxes route them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "liberty/pcl/payloads.hpp"
#include "liberty/support/value.hpp"

namespace liberty::upl {

/// Downstream request: fetch a line or write one back.
struct LineReq final : Payload, pcl::Routable {
  enum class Kind : std::uint8_t { Fetch, FetchExclusive, Writeback };

  LineReq(Kind kind_, std::uint64_t line_, std::uint64_t tag_,
          std::size_t requester_, std::vector<std::int64_t> words_ = {})
      : kind(kind_),
        line(line_),
        tag(tag_),
        requester(requester_),
        words(std::move(words_)) {}

  Kind kind;
  std::uint64_t line;       // base word address of the line
  std::uint64_t tag;        // matches the eventual LineResp
  std::size_t requester;    // cache/controller id (routing + coherence)
  std::vector<std::int64_t> words;  // payload for Writeback

  [[nodiscard]] std::size_t route_key() const override { return requester; }
  [[nodiscard]] std::string describe() const override {
    const char* k = kind == Kind::Fetch ? "fetch"
                    : kind == Kind::FetchExclusive ? "fetchx"
                                                   : "wb";
    return std::string(k) + "@" + std::to_string(line) + "#" +
           std::to_string(tag);
  }
};

/// Downstream response: the filled line.
struct LineResp final : Payload, pcl::Routable {
  LineResp(std::uint64_t line_, std::uint64_t tag_, std::size_t requester_,
           std::vector<std::int64_t> words_, bool exclusive_ = false)
      : line(line_),
        tag(tag_),
        requester(requester_),
        words(std::move(words_)),
        exclusive(exclusive_) {}

  std::uint64_t line;
  std::uint64_t tag;
  std::size_t requester;
  std::vector<std::int64_t> words;
  bool exclusive;  // coherence: granted in M/E rather than S

  [[nodiscard]] std::size_t route_key() const override { return requester; }
  [[nodiscard]] std::string describe() const override {
    return "fill@" + std::to_string(line) + "#" + std::to_string(tag);
  }
};

}  // namespace liberty::upl
