// Schedulers: per-cycle resolution of the reactive model of computation.
//
// LSE "fixes its MoC to a reactive model of computation" (§2.3).  Every
// cycle, all signals start Unknown and module handlers run until every
// channel of every connection is resolved; because handlers are monotone the
// result is a unique fixed point.  Signals no module drives are *defaulted*
// by the kernel (forward channels to "offers nothing", managed backward
// channels to "refuses") — this is what lets partial specifications simulate.
//
// Two interchangeable schedulers compute that fixed point:
//
//  * DynamicScheduler — event-driven worklist.  Whenever a channel resolves,
//    the module observing it is re-activated.  No knowledge of module
//    internals required; the baseline.
//
//  * StaticScheduler — exploits the dependency information modules declare
//    (Module::declare_deps) to order channel resolution topologically at
//    construction time, so that in the common (acyclic) case each handler
//    runs a constant number of times per cycle.  Genuine combinational
//    cycles are condensed into SCCs and only those iterate.  This implements
//    the paper's §2.3 claim (ref [22], Penry & August, DAC 2003) that fixing
//    the MoC makes the specification analyzable for optimization.
//
// Both schedulers produce bit-identical simulations; tests verify this on
// every component library and on randomized netlists.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "liberty/core/netlist.hpp"
#include "liberty/core/types.hpp"

namespace liberty::core {

class SchedulerBase : public ResolveHooks {
 public:
  using TransferObserver = std::function<void(const Connection&, Cycle)>;

  explicit SchedulerBase(Netlist& netlist);
  ~SchedulerBase() override;

  SchedulerBase(const SchedulerBase&) = delete;
  SchedulerBase& operator=(const SchedulerBase&) = delete;

  /// Execute one full cycle: cycle_start, resolve to fixed point, verify,
  /// end_of_cycle, notify observers, reset channels.
  void run_cycle(Cycle c);

  [[nodiscard]] virtual std::string_view kind_name() const = 0;

  void add_transfer_observer(TransferObserver obs) {
    observers_.push_back(std::move(obs));
  }

  /// Total react() invocations across all cycles (scheduler efficiency
  /// metric used by bench_scheduler).
  [[nodiscard]] std::uint64_t react_calls() const noexcept {
    return react_calls_;
  }
  /// Total kernel defaulting actions across all cycles.
  [[nodiscard]] std::uint64_t defaults_applied() const noexcept {
    return defaults_;
  }

 protected:
  virtual void resolve_cycle() = 0;

  void call_react(Module& m) {
    ++react_calls_;
    m.react();
  }
  /// Resolve an undriven forward channel to "offers nothing".
  void default_forward(Connection& c) {
    if (c.forward_known()) return;
    c.idle();
    c.note_defaulted();
    ++defaults_;
  }
  /// Resolve an undriven managed backward channel to "refuses".  Skipped
  /// when a gated intent is still pending (it resolves with its forward).
  void default_backward(Connection& c) {
    if (c.ack_known()) return;
    if (known(c.intent_)) return;
    c.nack();
    c.note_defaulted();
    ++defaults_;
  }
  /// Kernel drive for an AutoAccept backward channel whose forward is known.
  static void apply_auto_accept(Connection& c) {
    if (c.ack_known() || known(c.intent_)) return;
    if (c.enabled()) {
      c.ack();
    } else {
      c.nack();
    }
  }

  void install_hooks(ResolveHooks* h);

  /// Sum of connection generations: a cheap global progress measure.
  [[nodiscard]] std::uint64_t total_generation() const noexcept;

  Netlist& netlist_;
  std::vector<TransferObserver> observers_;
  std::uint64_t react_calls_ = 0;
  std::uint64_t defaults_ = 0;
};

/// Event-driven worklist scheduler (the semantics-defining baseline).
class DynamicScheduler final : public SchedulerBase {
 public:
  explicit DynamicScheduler(Netlist& netlist);

  [[nodiscard]] std::string_view kind_name() const override {
    return "dynamic";
  }

  void on_forward_resolved(Connection& c) override;
  void on_backward_resolved(Connection& c) override;

 protected:
  void resolve_cycle() override;

 private:
  void enqueue(Module* m);
  void drain();

  std::deque<Module*> worklist_;
  std::vector<bool> queued_;
};

/// Statically scheduled resolver built from declared dependencies.
class StaticScheduler final : public SchedulerBase {
 public:
  explicit StaticScheduler(Netlist& netlist);

  [[nodiscard]] std::string_view kind_name() const override {
    return "static";
  }

  void on_forward_resolved(Connection&) override {}
  void on_backward_resolved(Connection&) override {}

  /// Schedule shape introspection (tests and bench_scheduler reporting).
  [[nodiscard]] std::size_t scc_count() const noexcept {
    return sccs_.size();
  }
  [[nodiscard]] std::size_t largest_scc() const noexcept;
  [[nodiscard]] std::size_t channel_count() const noexcept {
    return nodes_.size();
  }

 protected:
  void resolve_cycle() override;

 private:
  struct Node {
    Connection* conn = nullptr;
    ChannelKind kind = ChannelKind::Forward;
    Module* driver = nullptr;  // nullptr => kernel-driven (AutoAccept ack)
  };

  void build_graph();
  void compute_sccs();
  [[nodiscard]] bool node_resolved(ChannelId id) const;
  void execute_node(ChannelId id);
  void run_scc(const std::vector<ChannelId>& group);
  void cleanup_unresolved();

  std::vector<Node> nodes_;                    // index == ChannelId
  std::vector<std::vector<ChannelId>> succs_;  // adjacency (dep -> dependent)
  std::vector<std::vector<ChannelId>> preds_;
  std::vector<std::vector<ChannelId>> sccs_;   // topological order
  std::vector<bool> self_loop_;                // per SCC index
};

}  // namespace liberty::core
