// Schedulers: per-cycle resolution of the reactive model of computation.
//
// LSE "fixes its MoC to a reactive model of computation" (§2.3).  Every
// cycle, all signals start Unknown and module handlers run until every
// channel of every connection is resolved; because handlers are monotone the
// result is a unique fixed point.  Signals no module drives are *defaulted*
// by the kernel (forward channels to "offers nothing", managed backward
// channels to "refuses") — this is what lets partial specifications simulate.
//
// Three interchangeable schedulers compute that fixed point:
//
//  * DynamicScheduler — event-driven worklist.  Whenever a channel resolves,
//    the module observing it is re-activated.  No knowledge of module
//    internals required; the baseline.
//
//  * StaticScheduler — exploits the dependency information modules declare
//    (Module::declare_deps) to order channel resolution topologically at
//    construction time, so that in the common (acyclic) case each handler
//    runs a constant number of times per cycle.  Genuine combinational
//    cycles are condensed into SCCs and only those iterate.  This implements
//    the paper's §2.3 claim (ref [22], Penry & August, DAC 2003) that fixing
//    the MoC makes the specification analyzable for optimization.
//
//  * ParallelScheduler — levelizes the same SCC condensation DAG into
//    execution *waves* (sets of SCCs with no dependencies between them),
//    coarsens each wave into per-module clusters so no module's react() is
//    ever invoked from two threads concurrently, and executes the clusters
//    of each wave on a persistent worker pool.  See docs/scheduling.md.
//
// All schedulers produce bit-identical simulations; tests verify this on
// every component library and on randomized netlists.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string_view>
#include <thread>
#include <vector>

#include "liberty/core/netlist.hpp"
#include "liberty/core/probe.hpp"
#include "liberty/core/types.hpp"

namespace liberty::core {

namespace detail {

/// Per-thread resolution bookkeeping shared by all schedulers.  Hooks fire
/// on whichever thread resolves a channel; accumulating into a thread-local
/// context keeps the hot path free of shared-counter contention, and the
/// schedulers fold the deltas back into their own totals at well-defined
/// synchronization points (end of run_cycle; end of each parallel wave).
struct ResolveCtx {
  std::uint64_t resolutions = 0;  // channel resolutions observed
  std::uint64_t reacts = 0;       // Module::react invocations
  std::uint64_t defaults = 0;     // kernel defaulting actions
  std::vector<Connection*> transferred;  // dirty list: completed transfers

  // Profiling lane (active only while a KernelProbe is installed): per-
  // module react attribution, flushed to the probe and zeroed at the same
  // synchronization points as the counters above.
  bool timing = false;
  std::vector<std::uint64_t> mod_reacts;
  std::vector<double> mod_seconds;

  void size_profile(std::size_t n_modules) {
    if (mod_reacts.size() < n_modules) {
      mod_reacts.resize(n_modules, 0);
      mod_seconds.resize(n_modules, 0.0);
    }
  }
};

extern thread_local ResolveCtx t_resolve_ctx;

void timed_react(Module& m, ResolveCtx& ctx);

}  // namespace detail

/// Channel dependency graph + SCC condensation of one netlist, built from
/// the dependencies modules declare.  This is the §2.3 analysis artifact;
/// the static scheduler walks its SCCs sequentially and the parallel
/// scheduler levelizes them into waves.
class ScheduleGraph {
 public:
  struct Node {
    Connection* conn = nullptr;
    ChannelKind kind = ChannelKind::Forward;
    Module* driver = nullptr;  // nullptr => kernel-driven (AutoAccept ack)
  };

  void build(Netlist& netlist);

  [[nodiscard]] const std::vector<Node>& nodes() const noexcept {
    return nodes_;
  }
  [[nodiscard]] const std::vector<std::vector<ChannelId>>& succs()
      const noexcept {
    return succs_;
  }
  [[nodiscard]] const std::vector<std::vector<ChannelId>>& preds()
      const noexcept {
    return preds_;
  }
  /// SCCs in topological order of the condensation.
  [[nodiscard]] const std::vector<std::vector<ChannelId>>& sccs()
      const noexcept {
    return sccs_;
  }
  [[nodiscard]] bool self_loop(std::size_t scc) const noexcept {
    return self_loop_[scc] != 0;
  }
  /// SCC index of each channel.
  [[nodiscard]] const std::vector<std::uint32_t>& scc_of() const noexcept {
    return scc_of_;
  }
  [[nodiscard]] std::size_t largest_scc() const noexcept;

  /// The module whose cluster is responsible for executing a node: the
  /// driver when one exists, otherwise (kernel-driven AutoAccept acks) the
  /// connection's producer, so the kernel drive happens on the same thread
  /// that resolved the forward channel.
  [[nodiscard]] Module* home_module(ChannelId ch) const noexcept {
    const Node& n = nodes_[ch];
    return n.driver != nullptr ? n.driver : n.conn->producer();
  }

 private:
  void add_module_edges(Netlist& netlist,
                        std::vector<std::vector<ChannelId>>& succs,
                        std::vector<std::vector<ChannelId>>& preds);
  void compute_sccs();

  std::vector<Node> nodes_;                    // index == ChannelId
  std::vector<std::vector<ChannelId>> succs_;  // adjacency (dep -> dependent)
  std::vector<std::vector<ChannelId>> preds_;
  std::vector<std::vector<ChannelId>> sccs_;   // topological order
  std::vector<std::uint32_t> scc_of_;          // per channel
  std::vector<char> self_loop_;                // per SCC index
};

/// Runtime state of the optimizer's quiescence-gating pass (OptPlan::gating).
///
/// The gate learns, per schedule-graph SCC, whether the SCC's result this
/// cycle is forced to equal last cycle's: every module driving a channel of
/// the SCC declared sleepable() and reports can_sleep(), the cached result
/// from last cycle is valid, and every boundary channel (predecessors
/// outside the SCC) resolved to exactly its cached signal and value.  When
/// all hold, the SCC's channels are *replayed* from the cache — each channel
/// still resolves, through the normal send/idle/ack/nack paths with all
/// hooks firing, so transfer traces, digests and stats stay bit-identical —
/// without invoking any module handler.  Modules all of whose driven
/// channels sit in candidate SCCs additionally skip cycle_start while
/// asleep, and skip end_of_cycle unless one of their connections transferred
/// this cycle (transfers must commit state wherever they land).
///
/// Thread-safety: per-SCC state is only touched by the cluster executing
/// that SCC (single writer per wave, waves separated by barriers); the
/// per-module asleep flags are atomic because wake decisions from one SCC's
/// cluster race reads from none but TSan-visible skip checks.  Cache
/// refresh and per-cycle reset run on the main thread between cycles.
class QuiescenceGate {
 public:
  using CounterVisitor =
      std::function<void(std::string_view name, std::uint64_t value)>;

  /// Derive candidate SCCs and gateable modules from the schedule graph and
  /// the optimizer plan.  No-op (gate stays disabled) when the plan has no
  /// gating or nothing qualifies.
  void build(const ScheduleGraph& graph, const OptPlan& plan,
             const std::vector<Module*>& modules);

  [[nodiscard]] bool enabled() const noexcept { return enabled_; }
  [[nodiscard]] bool is_candidate(std::uint32_t scc) const noexcept {
    return enabled_ && candidate_[scc] != 0;
  }
  /// Candidate SCC indices in topological order.
  [[nodiscard]] const std::vector<std::uint32_t>& candidates() const noexcept {
    return candidates_;
  }
  [[nodiscard]] bool module_asleep(ModuleId id) const noexcept {
    return enabled_ && asleep_[id].load(std::memory_order_relaxed) != 0;
  }
  /// Structural: may this module ever be marked asleep?  Lowering uses this
  /// to keep the asleep check out of opcodes for modules that cannot sleep
  /// (runtime retirement only ever shrinks the gateable set, so a gated
  /// opcode for a since-retired module degrades to one always-false test).
  [[nodiscard]] bool module_gateable(ModuleId id) const noexcept {
    return enabled_ && gateable_[id] != 0;
  }

  /// Reset per-cycle state and mark gateable quiescent modules asleep.
  /// A module sleeps only when every candidate SCC it drives is armed
  /// (not backed off) at `cycle` — so a backed-off SCC never has asleep
  /// drivers and its try_sleep fast path is a single compare.
  void begin_cycle(Cycle cycle);
  /// Decide SCC `scc` at its schedule slot: replay from cache when every
  /// driver can sleep and the boundary is unchanged (returns true), else
  /// wake any asleep drivers (running their deferred cycle_start for
  /// `cycle`, and reporting them through `woken` when non-null) and return
  /// false so the caller executes the SCC normally.
  /// The disabled/retired test is inline: schedulers and the compiled tape
  /// query the gate once per SCC (and once per module for the commit skip)
  /// every cycle, so after the cost-model guard turns the gate off these
  /// must cost one predictable branch — not an out-of-line call whose body
  /// immediately returns.
  bool try_sleep(std::uint32_t scc, Cycle cycle,
                 std::vector<Module*>* woken = nullptr) {
    if (!enabled_ || suspended_ || candidate_[scc] == 0) return false;
    return try_sleep_slow(scc, cycle, woken);
  }
  /// Stamp modules adjacent to this cycle's transfers (pre-dedup dirty
  /// list) so skip_end_of_cycle keeps their commit hook.
  void mark_transfers(const std::vector<Connection*>& transferred,
                      std::uint64_t token);
  [[nodiscard]] bool skip_end_of_cycle(const Module& m, std::uint64_t token) {
    return enabled_ && skip_end_of_cycle_slow(m, token);
  }
  /// Refresh caches from this cycle's resolved channels and re-sample
  /// can_sleep() for next cycle.  Main thread, before reset_channels.
  /// `cycle` is the cycle that just finished; SCCs backed off past the next
  /// cycle skip the (Value-copying) snapshot entirely.
  void refresh(Cycle cycle);
  /// Drop all learned state (Simulator::restore).
  void invalidate();

  void visit_counters(const CounterVisitor& visit) const;

  /// True while the measured cost-model guard runs its ungated sample
  /// window (nothing sleeps; see kCalibPeriod below).
  [[nodiscard]] bool suspended() const noexcept { return suspended_; }

 private:
  struct Ch {
    Connection* conn = nullptr;
    ChannelKind kind = ChannelKind::Forward;
    ChannelId id = 0;
  };
  struct SccInfo {
    std::vector<Ch> members;   // forwards first (replay order)
    std::vector<Ch> boundary;  // distinct predecessors outside the SCC
    std::vector<Module*> drivers;  // distinct, first-appearance order
  };

  bool try_sleep_slow(std::uint32_t scc, Cycle cycle,
                      std::vector<Module*>* woken);
  [[nodiscard]] bool skip_end_of_cycle_slow(const Module& m,
                                            std::uint64_t token);
  [[nodiscard]] bool boundary_unchanged(const SccInfo& si) const;
  void replay(const SccInfo& si);
  /// Permanently drop one SCC from gating: its drivers stop arming asleep
  /// (so cycle_start keeps running and the SCC resolves normally).
  void retire_scc(std::uint32_t scc);
  void clear_asleep() noexcept;
  /// Forget learned caches (cache validity, backoff, sampled sleep_ok)
  /// while keeping the candidate structure — used when gating resumes
  /// after a suspended window left the caches stale.
  void drop_caches();

  bool enabled_ = false;
  std::vector<SccInfo> info_;          // per SCC (empty unless candidate)
  std::vector<char> candidate_;        // per SCC
  std::vector<std::uint32_t> candidates_;
  std::vector<Module*> tracked_;       // drivers of candidates + gateable
  std::vector<std::vector<std::uint32_t>> sccs_of_;  // module -> driven SCCs
  std::vector<char> gateable_;         // per module
  std::vector<char> sleep_ok_;         // per module, sampled at refresh
  std::unique_ptr<std::atomic<std::uint8_t>[]> asleep_;  // per module
  std::vector<char> slept_;            // per SCC, current cycle
  std::vector<char> cache_valid_;      // per SCC
  // Exponential backoff for SCCs that keep failing to sleep: a failed
  // attempt schedules the next one `backoff_` cycles out (doubling to
  // kMaxBackoff) so persistently busy SCCs cost one counter compare per
  // cycle instead of a boundary compare plus a cache snapshot.
  static constexpr Cycle kMaxBackoff = 64;
  std::vector<Cycle> attempt_at_;      // per SCC: next attempt cycle
  std::vector<Cycle> backoff_;         // per SCC: current backoff span
  // Global retirement: every kAuditPeriod cycles refresh() totals the
  // sleep counters, and after two consecutive windows with zero sleeps the
  // gate disables itself for the rest of the run — a netlist that never
  // quiesces stops paying the per-cycle machinery entirely.
  static constexpr Cycle kAuditPeriod = 256;
  Cycle next_audit_ = kAuditPeriod;
  std::uint64_t sleeps_at_audit_ = 0;
  int zero_windows_ = 0;
  // Measured cost-model guard: gating is an optimization bet, and some
  // netlists lose it (boundary compares + cache replays + snapshot refresh
  // cost more than the handlers they skip).  The first kCalibPeriod-cycle
  // window after construction runs gated, the second runs *suspended*
  // (nothing sleeps, no snapshots), and refresh() compares the wall-clock
  // window times: the gate survives only when the gated window was
  // measurably faster (a >=2% win) — a marginal gate keeps costing every
  // remaining cycle, so the asymmetric risk says bail unless gating
  // provably pays.  Timing feeds the on/off decision only — gating
  // never changes simulation results — so bit-identity is untouched.
  // Additionally each audit window retires individual SCCs whose measured
  // sleep ratio is below 1/2: below that, the per-sleep replay plus the
  // per-cycle boundary/snapshot overhead cannot beat the skipped handlers.
  static constexpr Cycle kCalibPeriod = 384;
  enum class Calib : std::uint8_t { GatedWindow, UngatedWindow, Done };
  Calib calib_ = Calib::GatedWindow;
  bool suspended_ = false;
  bool win_started_ = false;
  Cycle win_end_ = 0;
  std::chrono::steady_clock::time_point win_start_{};
  double gated_seconds_ = 0.0;
  std::uint64_t sleeps_at_win_ = 0;
  std::vector<std::uint64_t> audit_scc_sleeps_;  // per SCC, at last audit
  std::uint64_t retired_sccs_ = 0;
  std::vector<Tristate> cached_sig_;   // per channel
  std::vector<Value> cached_val_;      // per channel (asserted forwards)
  std::vector<std::uint64_t> eoc_stamp_;  // per module: last transfer cycle
  // Counters.  Per-SCC vectors are single-writer (the SCC's cluster);
  // eoc_skips_ is main-thread only.
  std::vector<std::uint64_t> scc_sleeps_;
  std::vector<std::uint64_t> scc_wakes_;
  std::uint64_t eoc_skips_ = 0;
};

class FaultHook;

/// Fixed-point iteration guard: an SCC (static/parallel) or worklist
/// (dynamic) that exceeds this many passes in one cycle is reported as a
/// non-converging combinational loop instead of spinning.  Monotone channel
/// resolution structurally bounds genuine work well below this, so the
/// default never fires on a correct netlist; front ends lower it via
/// SchedulerBase::set_iteration_cap (lss_run --max-iters).
inline constexpr std::uint64_t kDefaultIterationCap = 1'000'000;

/// True when liberty_core was compiled with LIBERTY_CHECKED_KERNEL (the
/// full per-connection end-of-cycle audit).  The macro is private to the
/// core library, so out-of-tree backends that publish channel state lazily
/// (native codegen) query this to decide whether every connection object
/// must be driven for real each cycle.
[[nodiscard]] bool checked_kernel_enabled() noexcept;

class SchedulerBase : public ResolveHooks {
 public:
  using TransferObserver = std::function<void(const Connection&, Cycle)>;
  /// Introspection-counter visitor (see visit_counters).
  using CounterVisitor =
      std::function<void(std::string_view name, std::uint64_t value)>;

  explicit SchedulerBase(Netlist& netlist);
  ~SchedulerBase() override;

  SchedulerBase(const SchedulerBase&) = delete;
  SchedulerBase& operator=(const SchedulerBase&) = delete;

  /// Execute one full cycle: cycle_start, resolve to fixed point, verify,
  /// end_of_cycle, notify observers, reset channels.
  void run_cycle(Cycle c);

  [[nodiscard]] virtual std::string_view kind_name() const = 0;

  void add_transfer_observer(TransferObserver obs) {
    observers_.push_back(std::move(obs));
  }

  /// Install (or clear, with nullptr) the observability probe.  Must be
  /// called between cycles; the kernel never takes ownership.  With no
  /// probe installed all instrumentation reduces to null/flag checks.
  void set_probe(KernelProbe* probe) noexcept { probe_ = probe; }
  [[nodiscard]] KernelProbe* probe() const noexcept { return probe_; }

  /// Install (or clear, with nullptr) the deterministic fault-injection
  /// hook on every connection of this netlist (liberty/core/fault.hpp;
  /// liberty::resil::FaultInjector is the implementation).  Must be called
  /// between cycles; the kernel never takes ownership.
  void set_fault_hook(FaultHook* hook);
  [[nodiscard]] FaultHook* fault_hook() const noexcept { return fault_; }

  /// Cap fixed-point passes per cycle (0 = unlimited); exceeding it throws
  /// SimulationError naming the oscillating channel set.  The cap is a
  /// per-scheduler work measure, not part of the bit-identical semantics.
  void set_iteration_cap(std::uint64_t cap) noexcept { iter_cap_ = cap; }
  [[nodiscard]] std::uint64_t iteration_cap() const noexcept {
    return iter_cap_;
  }

  /// Reset mid-cycle kernel state after run_cycle aborted with an exception
  /// (watchdog violation, injected handler fault, non-convergence): wipes
  /// every channel, re-arms fused-chain sweep stamps, and drops the
  /// quiescence-gate caches.  Simulator::restore calls this unconditionally
  /// — between cycles it is a harmless no-op re-initialization.
  void recover_after_abort() noexcept;

  /// Visit every introspection counter of this scheduler, base counters
  /// first, then subclass-specific ones.  Counter names are stable,
  /// documented identifiers (docs/observability.md); the obs layer
  /// federates them into the MetricsRegistry without the kernel depending
  /// on any exporter.
  virtual void visit_counters(const CounterVisitor& visit) const;

  /// Total react() invocations across all cycles (scheduler efficiency
  /// metric used by bench_scheduler).
  [[nodiscard]] std::uint64_t react_calls() const noexcept {
    return react_calls_;
  }
  /// Total kernel defaulting actions across all cycles.
  [[nodiscard]] std::uint64_t defaults_applied() const noexcept {
    return defaults_;
  }
  /// Cycles executed by this scheduler (run_cycle invocations).
  [[nodiscard]] std::uint64_t cycles_run() const noexcept {
    return cycles_run_;
  }
  /// Total channel resolutions across all cycles.
  [[nodiscard]] std::uint64_t resolutions() const noexcept {
    return total_resolutions_;
  }
  /// Total transfers committed across all cycles.
  [[nodiscard]] std::uint64_t transfers_committed() const noexcept {
    return transfers_committed_;
  }

  // ResolveHooks: every scheduler counts resolutions and maintains the
  // transferred-connection dirty list; subclasses extend as needed.
  void on_forward_resolved(Connection& c) override { note_resolved(c); }
  void on_backward_resolved(Connection& c) override { note_resolved(c); }

  /// Drop all quiescence-gating state learned from previous cycles
  /// (Simulator::restore: cached channel values no longer describe the
  /// restored state).
  void invalidate_sleep_cache() noexcept { gate_.invalidate(); }

  /// The optimizer plan captured from the netlist at construction (null
  /// when simulating as written).
  [[nodiscard]] const OptPlan* opt_plan() const noexcept { return plan_; }

  /// State-authority seams for backends that execute some modules outside
  /// their C++ objects (the native codegen backend keeps POD images and
  /// shadow statistics in a dlopened object).  sync_module_state() writes
  /// the backend's authoritative state and statistics back into the module
  /// objects; Simulator calls it before taking a snapshot and after run()
  /// so save_state/stats dumps always describe the real simulation state.
  /// reimport_module_state() is the inverse: after Simulator::restore has
  /// rewritten the module objects, the backend reloads its images from
  /// them.  In-object backends (all four interpreters) need neither; the
  /// defaults are no-ops.
  virtual void sync_module_state() {}
  virtual void reimport_module_state() {}

 protected:
  virtual void resolve_cycle() = 0;

  /// Phase seams: run_cycle delegates the cycle_start and end_of_cycle
  /// sweeps to these virtuals so a backend with its own per-module
  /// schedule (the compiled scheduler's start/commit tapes) can replace
  /// the generic loops.  `cycle_` is valid when they run; overrides must
  /// preserve the base loops' observable behaviour exactly (now_ stamping,
  /// quarantine/elide/sleep skips, the end-of-cycle transfer gate).
  virtual void start_phase();
  virtual void update_phase(std::uint64_t eoc_token);

  /// Module::now_ is private with SchedulerBase as its friend; friendship
  /// does not extend to subclasses, so phase overrides stamp through this.
  static void set_now(Module& m, Cycle c) noexcept { m.now_ = c; }

  /// Switch every connection of this netlist between seq_cst (default)
  /// and relaxed channel-state publication.  A single-threaded backend
  /// drops the seq_cst store cost; must never be relaxed while a
  /// concurrent resolver (ParallelScheduler) could touch the channels.
  void set_relaxed_resolution(bool relaxed) noexcept;

  /// Record a channel resolution in the current thread's context.  When the
  /// resolution completes a transfer, the connection joins the dirty list
  /// (the seq_cst enable/ack ordering in Connection guarantees at least one
  /// of the two resolving threads sees the completed pair; duplicates are
  /// removed at end of cycle).
  static void note_resolved(Connection& c) {
    detail::ResolveCtx& ctx = detail::t_resolve_ctx;
    ++ctx.resolutions;
    if (c.transferred()) ctx.transferred.push_back(&c);
  }

  void call_react(Module& m) {
    if (any_quarantined_ && quarantined_[m.id()] != 0) return;
    detail::ResolveCtx& ctx = detail::t_resolve_ctx;
    ++ctx.reacts;
    if (ctx.timing) {
      detail::timed_react(m, ctx);
    } else {
      m.react();
    }
  }

  /// Quarantined module (Netlist::quarantine): its handlers never run; its
  /// channels fall to kernel defaults / AutoAccept control.  Flags are
  /// cached at construction — quarantining requires a simulator rebuild.
  [[nodiscard]] bool module_quarantined(ModuleId id) const noexcept {
    return any_quarantined_ && quarantined_[id] != 0;
  }
  /// Resolve an undriven forward channel to "offers nothing".
  static void default_forward(Connection& c);
  /// Resolve an undriven managed backward channel to "refuses".  Skipped
  /// when a gated intent is still pending (it resolves with its forward).
  static void default_backward(Connection& c);
  /// Kernel drive for an AutoAccept backward channel whose forward is
  /// known.
  static void apply_auto_accept(Connection& c);

  void install_hooks(ResolveHooks* h);

  /// Sum of connection generations: a cheap global progress measure.
  [[nodiscard]] std::uint64_t total_generation() const noexcept;

  /// Fold worker-thread deltas into this scheduler's totals (called by the
  /// parallel scheduler at wave joins, under its pool mutex).
  void absorb(const detail::ResolveCtx& delta);

  /// Flush `ctx`'s per-module profiling buffers into the probe and zero
  /// them.  Serialized by construction: called on the main thread between
  /// waves, or from a worker under the pool mutex.
  void flush_profile(detail::ResolveCtx& ctx);

  // ---- Optimizer consumption ---------------------------------------------
  //
  // All optimizer effects are annotations on the unchanged netlist: the
  // plan tells the scheduler which channels to pre-resolve (apply_consts),
  // which modules to skip entirely (elided), which module groups to
  // resolve with one fused sweep (run_chain), and whether quiescence
  // gating is on (gate_).  plan_ == nullptr restores -O0 behaviour with
  // one branch per hot-path site.

  /// Pre-resolve all provably constant channels (top of run_cycle; module
  /// re-drives of the same values are idempotent no-ops).
  void apply_consts();
  /// Attempt the forward and backward sweep of fused chain `idx`.  Safe to
  /// call repeatedly; each sweep runs at most once per cycle (stamped with
  /// cycles_run_+1, which is monotone even across snapshot restore).
  void run_chain(std::size_t idx);
  [[nodiscard]] bool module_elided(ModuleId id) const noexcept {
    return plan_ != nullptr && plan_->elided[id] != 0;
  }

  /// Per-chain runtime state: cycle stamps making each sweep single-shot,
  /// and sweep counters.  Single writer per wave (chain members are
  /// clustered together by the parallel scheduler), wave barriers order
  /// cross-thread access.
  struct ChainState {
    std::uint64_t fwd_stamp = 0;
    std::uint64_t bwd_stamp = 0;
    std::uint64_t fwd_sweeps = 0;
    std::uint64_t bwd_sweeps = 0;
  };

  const OptPlan* plan_ = nullptr;
  QuiescenceGate gate_;
  std::vector<ChainState> chain_state_;
  std::uint64_t opt_pre_resolved_ = 0;

  Netlist& netlist_;
  std::vector<TransferObserver> observers_;
  KernelProbe* probe_ = nullptr;
  FaultHook* fault_ = nullptr;
  std::uint64_t iter_cap_ = kDefaultIterationCap;
  // Quarantine flags cached from the netlist at construction (dense array:
  // checked inside call_react on the hot path).
  std::vector<char> quarantined_;
  bool any_quarantined_ = false;
  Cycle cycle_ = 0;  // cycle currently executing (valid inside run_cycle)
  std::uint64_t react_calls_ = 0;
  std::uint64_t defaults_ = 0;
  std::uint64_t cycles_run_ = 0;
  std::uint64_t total_resolutions_ = 0;
  std::uint64_t transfers_committed_ = 0;

  // Flattened "schedule tape": raw pointers in execution order, so the
  // per-cycle passes walk dense arrays instead of chasing unique_ptrs.
  std::vector<Module*> module_tape_;
  std::vector<Connection*> conn_tape_;

  // Per-cycle accounting merged from worker threads (parallel waves).
  std::uint64_t cycle_resolutions_ = 0;
  std::vector<Connection*> cycle_transferred_;

 private:
  void verify_resolved(Cycle cycle) const;
};

/// Event-driven worklist scheduler (the semantics-defining baseline).
/// The worklist is a fixed-capacity ring buffer (a module is queued at most
/// once, so capacity = module count suffices) with epoch-stamped queued
/// marks: a module is queued iff its stamp equals the current epoch, and
/// bumping the epoch un-queues everything in O(1) at cycle start.
class DynamicScheduler final : public SchedulerBase {
 public:
  explicit DynamicScheduler(Netlist& netlist);

  [[nodiscard]] std::string_view kind_name() const override {
    return "dynamic";
  }

  void on_forward_resolved(Connection& c) override;
  void on_backward_resolved(Connection& c) override;

  void visit_counters(const CounterVisitor& visit) const override;

  /// Modules actually inserted into the worklist ring (a module already
  /// queued this epoch does not count).
  [[nodiscard]] std::uint64_t worklist_pushes() const noexcept {
    return pushes_;
  }
  /// Largest ring occupancy ever observed (capacity sizing headroom).
  [[nodiscard]] std::size_t ring_high_water() const noexcept {
    return high_water_;
  }

 protected:
  void resolve_cycle() override;

 private:
  void enqueue(Module* m);
  void drain();

  std::vector<Module*> woken_scratch_;  // gate wake-ups pending enqueue
  std::uint64_t cycle_pops_ = 0;  // worklist pops this cycle (iteration cap)
  std::vector<Module*> ring_;  // power-of-two capacity ring buffer
  std::size_t mask_ = 0;
  std::size_t head_ = 0;
  std::size_t tail_ = 0;
  std::vector<std::uint64_t> queued_stamp_;  // == epoch_ <=> queued
  std::uint64_t epoch_ = 1;
  std::uint64_t pushes_ = 0;
  std::size_t high_water_ = 0;
};

/// Shared machinery of the analysis-driven schedulers (static & parallel):
/// node execution, SCC fixed-point iteration, and the endgame for channels
/// the schedule could not attribute.
class AnalyzedScheduler : public SchedulerBase {
 public:
  /// Schedule shape introspection (tests and bench_scheduler reporting).
  [[nodiscard]] std::size_t scc_count() const noexcept {
    return graph_.sccs().size();
  }
  [[nodiscard]] std::size_t largest_scc() const noexcept {
    return graph_.largest_scc();
  }
  [[nodiscard]] std::size_t channel_count() const noexcept {
    return graph_.nodes().size();
  }

  void visit_counters(const CounterVisitor& visit) const override;

  /// Total quiescence passes over multi-node SCC groups (run_scc inner
  /// iterations, summed over all SCCs); divide by cycles_run() for the
  /// per-cycle average.
  [[nodiscard]] std::uint64_t fixedpoint_passes() const noexcept;
  /// Per-SCC cumulative fixed-point pass counts (indexed like sccs()).
  /// Singleton SCCs without self-loops never iterate and stay zero.
  [[nodiscard]] const std::vector<std::uint64_t>& scc_iterations()
      const noexcept {
    return scc_iters_;
  }
  /// Times the global quiesce-then-default endgame had unresolved work.
  [[nodiscard]] std::uint64_t cleanup_activations() const noexcept {
    return cleanup_activations_;
  }

 protected:
  explicit AnalyzedScheduler(Netlist& netlist);

  [[nodiscard]] bool node_resolved(ChannelId id) const;
  void execute_node(ChannelId id);
  void run_scc(std::size_t scc_index);
  void cleanup_unresolved();
  /// Iteration cap exceeded in run_scc: report the SCC's channel chain as a
  /// non-converging combinational loop.
  [[noreturn]] void throw_nonconvergence(std::size_t scc_index,
                                         std::uint64_t passes) const;

  ScheduleGraph graph_;
  // Precomputed per-SCC execution state (replaces per-cycle driver
  // discovery and defaulting-order sorts in the old run_scc hot path).
  std::vector<std::vector<Module*>> scc_drivers_;
  std::vector<std::vector<ChannelId>> scc_order_;  // forwards first
  // Introspection counters.  scc_iters_ entries are only ever bumped by
  // the one thread executing that SCC's cluster, so plain counters are
  // safe under the parallel scheduler.
  std::vector<std::uint64_t> scc_iters_;
  std::uint64_t cleanup_activations_ = 0;
};

/// Statically scheduled sequential resolver built from declared
/// dependencies.
class StaticScheduler final : public AnalyzedScheduler {
 public:
  explicit StaticScheduler(Netlist& netlist);

  [[nodiscard]] std::string_view kind_name() const override {
    return "static";
  }

 protected:
  void resolve_cycle() override;
};

/// Wave-parallel resolver: SCCs of the condensation DAG are levelized into
/// waves, waves are coarsened into per-module clusters, and each wave's
/// clusters run concurrently on a persistent worker pool.
class ParallelScheduler final : public AnalyzedScheduler {
 public:
  /// `threads` == 0 selects std::thread::hardware_concurrency().
  explicit ParallelScheduler(Netlist& netlist, unsigned threads = 0);
  ~ParallelScheduler() override;

  [[nodiscard]] std::string_view kind_name() const override {
    return "parallel";
  }

  [[nodiscard]] unsigned threads() const noexcept { return threads_; }
  [[nodiscard]] std::size_t wave_count() const noexcept {
    return waves_.size();
  }
  [[nodiscard]] std::size_t cluster_count() const noexcept {
    return clusters_.size();
  }
  /// Largest number of independently executable clusters in any wave (the
  /// available parallelism of this netlist's schedule).
  [[nodiscard]] std::size_t max_wave_width() const noexcept;

  void visit_counters(const CounterVisitor& visit) const override;

  /// Waves handed to the worker pool vs. run inline on the main thread
  /// (narrow waves skip the cross-thread handoff), across all cycles.
  [[nodiscard]] std::uint64_t waves_dispatched() const noexcept {
    return waves_dispatched_;
  }
  [[nodiscard]] std::uint64_t waves_inline() const noexcept {
    return waves_inline_;
  }

 protected:
  void resolve_cycle() override;

 private:
  struct Cluster {
    std::vector<std::uint32_t> sccs;  // indices into graph_.sccs()
  };
  struct Wave {
    std::uint32_t first = 0;  // [first, last) into clusters_
    std::uint32_t last = 0;
  };

  void build_waves();
  void run_cluster(const Cluster& cl);
  void process_clusters();  // pull clusters via next_ until the wave is dry
  void dispatch_wave(const Wave& w, std::size_t wave_index, Cycle cycle);
  void worker_main(unsigned lane);

  unsigned threads_ = 1;
  std::vector<Cluster> clusters_;
  std::vector<Wave> waves_;
  std::uint64_t waves_dispatched_ = 0;
  std::uint64_t waves_inline_ = 0;

  // --- worker pool ---------------------------------------------------------
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::uint64_t job_epoch_ = 0;   // bumped per dispatched wave
  std::uint32_t job_first_ = 0;   // cluster range of the current wave
  std::uint32_t job_last_ = 0;
  std::size_t job_chunk_ = 1;
  bool job_profile_ = false;      // workers time their busy span this wave
  unsigned workers_active_ = 0;
  bool shutdown_ = false;
  std::exception_ptr worker_error_;
  std::vector<double> lane_busy_;  // per-lane busy seconds, current wave
  std::atomic<std::uint32_t> next_{0};  // chunked work-stealing index
  std::vector<std::jthread> pool_;
};

}  // namespace liberty::core
