#include "liberty/core/registry.hpp"

namespace liberty::core {

ModuleRegistry& ModuleRegistry::global() {
  static ModuleRegistry registry;
  return registry;
}

}  // namespace liberty::core
