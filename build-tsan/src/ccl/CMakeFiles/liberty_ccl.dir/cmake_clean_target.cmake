file(REMOVE_RECURSE
  "libliberty_ccl.a"
)
