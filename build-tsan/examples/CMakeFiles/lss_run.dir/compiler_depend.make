# Empty compiler generated dependencies file for lss_run.
# This may be replaced when dependencies are built.
