// Ethernet-style framing for the NIL (§3.5: "a network interface card
// (NIC) that translates between Ethernet and PCI formats").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "liberty/pcl/payloads.hpp"
#include "liberty/support/value.hpp"

namespace liberty::nil {

/// CRC-32 (IEEE 802.3 polynomial, bitwise reference implementation) over a
/// word vector — the frame check sequence of EthFrame.
[[nodiscard]] std::uint32_t crc32(const std::vector<std::int64_t>& words);

/// A network frame.  Routable by destination MAC so PCL/CCL fabrics can
/// carry frames directly.
struct EthFrame final : Payload, pcl::Routable {
  EthFrame(std::uint64_t src_mac_, std::uint64_t dst_mac_,
           std::vector<std::int64_t> payload_, std::uint32_t fcs_)
      : src_mac(src_mac_),
        dst_mac(dst_mac_),
        payload(std::move(payload_)),
        fcs(fcs_) {}

  /// Build a frame with a freshly computed FCS.
  [[nodiscard]] static std::shared_ptr<const EthFrame> make(
      std::uint64_t src, std::uint64_t dst,
      std::vector<std::int64_t> payload) {
    const std::uint32_t fcs = crc32(payload);
    return std::make_shared<const EthFrame>(src, dst, std::move(payload),
                                            fcs);
  }

  std::uint64_t src_mac;
  std::uint64_t dst_mac;
  std::vector<std::int64_t> payload;
  std::uint32_t fcs;

  [[nodiscard]] bool fcs_ok() const { return crc32(payload) == fcs; }

  [[nodiscard]] std::size_t route_key() const override {
    return static_cast<std::size_t>(dst_mac);
  }
  [[nodiscard]] std::string describe() const override {
    return "eth " + std::to_string(src_mac) + "->" + std::to_string(dst_mac) +
           " x" + std::to_string(payload.size());
  }
};

}  // namespace liberty::nil
