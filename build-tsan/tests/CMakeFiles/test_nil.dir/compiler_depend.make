# Empty compiler generated dependencies file for test_nil.
# This may be replaced when dependencies are built.
