#include "liberty/upl/isa.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <sstream>

#include "liberty/support/strings.hpp"

namespace liberty::upl {

const char* op_name(Op op) {
  switch (op) {
    case Op::Add: return "add";
    case Op::Sub: return "sub";
    case Op::Mul: return "mul";
    case Op::Div: return "div";
    case Op::Rem: return "rem";
    case Op::And: return "and";
    case Op::Or: return "or";
    case Op::Xor: return "xor";
    case Op::Sll: return "sll";
    case Op::Srl: return "srl";
    case Op::Sra: return "sra";
    case Op::Slt: return "slt";
    case Op::Addi: return "addi";
    case Op::Andi: return "andi";
    case Op::Ori: return "ori";
    case Op::Xori: return "xori";
    case Op::Slli: return "slli";
    case Op::Srli: return "srli";
    case Op::Slti: return "slti";
    case Op::Lw: return "lw";
    case Op::Sw: return "sw";
    case Op::Beq: return "beq";
    case Op::Bne: return "bne";
    case Op::Blt: return "blt";
    case Op::Bge: return "bge";
    case Op::Jal: return "jal";
    case Op::Jalr: return "jalr";
    case Op::Out: return "out";
    case Op::Halt: return "halt";
    case Op::Nop: return "nop";
  }
  return "?";
}

bool is_branch(Op op) {
  switch (op) {
    case Op::Beq: case Op::Bne: case Op::Blt: case Op::Bge:
    case Op::Jal: case Op::Jalr:
      return true;
    default:
      return false;
  }
}

bool is_mem(Op op) { return op == Op::Lw || op == Op::Sw; }

bool is_alu(Op op) { return !is_branch(op) && !is_mem(op) && op != Op::Halt &&
                            op != Op::Out && op != Op::Nop; }

std::string Instr::to_string() const {
  std::ostringstream os;
  os << op_name(op) << " rd=r" << int(rd) << " rs1=r" << int(rs1) << " rs2=r"
     << int(rs2) << " imm=" << imm;
  return os.str();
}

// ---------------------------------------------------------------------------
// Assembler
// ---------------------------------------------------------------------------

namespace {

struct PendingFixup {
  std::size_t instr_index;
  std::string label;
  int line;
};

[[noreturn]] void asm_fail(const std::string& file, int line,
                           const std::string& msg) {
  throw liberty::SpecError(file, line, 0, msg);
}

std::uint8_t parse_reg(const std::string& file, int line,
                       std::string_view tok) {
  tok = liberty::trim(tok);
  if (tok.size() < 2 || (tok[0] != 'r' && tok[0] != 'R')) {
    asm_fail(file, line, "expected register, got '" + std::string(tok) + "'");
  }
  int n = 0;
  for (char c : tok.substr(1)) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      asm_fail(file, line, "bad register '" + std::string(tok) + "'");
    }
    n = n * 10 + (c - '0');
  }
  if (n > 31) asm_fail(file, line, "register out of range: " + std::string(tok));
  return static_cast<std::uint8_t>(n);
}

bool parse_int(std::string_view tok, std::int64_t& out) {
  tok = liberty::trim(tok);
  if (tok.empty()) return false;
  std::size_t i = 0;
  bool neg = false;
  if (tok[0] == '-' || tok[0] == '+') {
    neg = tok[0] == '-';
    i = 1;
  }
  if (i >= tok.size()) return false;
  std::int64_t v = 0;
  // Hex support: 0x...
  if (tok.size() > i + 2 && tok[i] == '0' &&
      (tok[i + 1] == 'x' || tok[i + 1] == 'X')) {
    for (std::size_t k = i + 2; k < tok.size(); ++k) {
      const char c = tok[k];
      int d;
      if (c >= '0' && c <= '9') d = c - '0';
      else if (c >= 'a' && c <= 'f') d = c - 'a' + 10;
      else if (c >= 'A' && c <= 'F') d = c - 'A' + 10;
      else return false;
      v = v * 16 + d;
    }
  } else {
    for (std::size_t k = i; k < tok.size(); ++k) {
      if (!std::isdigit(static_cast<unsigned char>(tok[k]))) return false;
      v = v * 10 + (tok[k] - '0');
    }
  }
  out = neg ? -v : v;
  return true;
}

}  // namespace

Program assemble(const std::string& source, const std::string& filename) {
  Program prog;
  std::vector<PendingFixup> fixups;

  std::istringstream in(source);
  std::string raw;
  int lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    // Strip comments.
    for (const char marker : {';', '#'}) {
      const auto pos = raw.find(marker);
      if (pos != std::string::npos) raw.erase(pos);
    }
    std::string_view line = liberty::trim(raw);
    if (line.empty()) continue;

    // Labels (possibly several on one line before an instruction).
    while (true) {
      const auto colon = line.find(':');
      if (colon == std::string_view::npos) break;
      const std::string_view head = liberty::trim(line.substr(0, colon));
      if (!liberty::is_identifier(head)) {
        asm_fail(filename, lineno, "bad label '" + std::string(head) + "'");
      }
      if (prog.labels.count(std::string(head)) != 0) {
        asm_fail(filename, lineno, "duplicate label '" + std::string(head) +
                                      "'");
      }
      prog.labels[std::string(head)] = prog.code.size();
      line = liberty::trim(line.substr(colon + 1));
      if (line.empty()) break;
    }
    if (line.empty()) continue;

    // Mnemonic and operands.
    const auto sp = line.find_first_of(" \t");
    std::string mnem(line.substr(0, sp));
    std::transform(mnem.begin(), mnem.end(), mnem.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    std::string_view rest =
        sp == std::string_view::npos ? std::string_view{} : line.substr(sp);
    std::vector<std::string> ops;
    if (!liberty::trim(rest).empty()) {
      for (auto& tok : liberty::split(rest, ',')) {
        ops.push_back(std::string(liberty::trim(tok)));
      }
    }

    auto need = [&](std::size_t n) {
      if (ops.size() != n) {
        asm_fail(filename, lineno, mnem + " expects " + std::to_string(n) +
                                      " operand(s), got " +
                                      std::to_string(ops.size()));
      }
    };
    auto imm_or_label = [&](const std::string& tok, std::size_t idx) {
      std::int64_t v;
      if (parse_int(tok, v)) return v;
      if (!liberty::is_identifier(tok)) {
        asm_fail(filename, lineno, "bad immediate/label '" + tok + "'");
      }
      fixups.push_back(PendingFixup{idx, tok, lineno});
      return std::int64_t{0};
    };
    // `imm(rs)` memory operand.
    auto mem_operand = [&](const std::string& tok, std::int64_t& imm,
                           std::uint8_t& base) {
      const auto lp = tok.find('(');
      const auto rp = tok.find(')');
      if (lp == std::string::npos || rp == std::string::npos || rp < lp) {
        asm_fail(filename, lineno, "expected imm(rs) operand, got '" + tok +
                                      "'");
      }
      const std::string immtok = tok.substr(0, lp);
      if (immtok.empty()) {
        imm = 0;
      } else if (!parse_int(immtok, imm)) {
        asm_fail(filename, lineno, "bad displacement '" + immtok + "'");
      }
      base = parse_reg(filename, lineno, tok.substr(lp + 1, rp - lp - 1));
    };

    static const std::map<std::string, Op> rrr = {
        {"add", Op::Add}, {"sub", Op::Sub}, {"mul", Op::Mul},
        {"div", Op::Div}, {"rem", Op::Rem}, {"and", Op::And},
        {"or", Op::Or},   {"xor", Op::Xor}, {"sll", Op::Sll},
        {"srl", Op::Srl}, {"sra", Op::Sra}, {"slt", Op::Slt}};
    static const std::map<std::string, Op> rri = {
        {"addi", Op::Addi}, {"andi", Op::Andi}, {"ori", Op::Ori},
        {"xori", Op::Xori}, {"slli", Op::Slli}, {"srli", Op::Srli},
        {"slti", Op::Slti}};
    static const std::map<std::string, Op> branches = {
        {"beq", Op::Beq}, {"bne", Op::Bne}, {"blt", Op::Blt},
        {"bge", Op::Bge}};

    Instr ins;
    if (const auto it = rrr.find(mnem); it != rrr.end()) {
      need(3);
      ins.op = it->second;
      ins.rd = parse_reg(filename, lineno, ops[0]);
      ins.rs1 = parse_reg(filename, lineno, ops[1]);
      ins.rs2 = parse_reg(filename, lineno, ops[2]);
    } else if (const auto it2 = rri.find(mnem); it2 != rri.end()) {
      need(3);
      ins.op = it2->second;
      ins.rd = parse_reg(filename, lineno, ops[0]);
      ins.rs1 = parse_reg(filename, lineno, ops[1]);
      ins.imm = imm_or_label(ops[2], prog.code.size());
    } else if (const auto it3 = branches.find(mnem); it3 != branches.end()) {
      need(3);
      ins.op = it3->second;
      ins.rs1 = parse_reg(filename, lineno, ops[0]);
      ins.rs2 = parse_reg(filename, lineno, ops[1]);
      ins.imm = imm_or_label(ops[2], prog.code.size());
    } else if (mnem == "lw") {
      need(2);
      ins.op = Op::Lw;
      ins.rd = parse_reg(filename, lineno, ops[0]);
      mem_operand(ops[1], ins.imm, ins.rs1);
    } else if (mnem == "sw") {
      need(2);
      ins.op = Op::Sw;
      ins.rs2 = parse_reg(filename, lineno, ops[0]);  // store data
      mem_operand(ops[1], ins.imm, ins.rs1);
    } else if (mnem == "jal") {
      need(2);
      ins.op = Op::Jal;
      ins.rd = parse_reg(filename, lineno, ops[0]);
      ins.imm = imm_or_label(ops[1], prog.code.size());
    } else if (mnem == "jalr") {
      need(2);
      ins.op = Op::Jalr;
      ins.rd = parse_reg(filename, lineno, ops[0]);
      ins.rs1 = parse_reg(filename, lineno, ops[1]);
    } else if (mnem == "j") {
      need(1);
      ins.op = Op::Jal;
      ins.rd = 0;
      ins.imm = imm_or_label(ops[0], prog.code.size());
    } else if (mnem == "li") {
      need(2);
      ins.op = Op::Addi;
      ins.rd = parse_reg(filename, lineno, ops[0]);
      ins.rs1 = 0;
      if (!parse_int(ops[1], ins.imm)) {
        asm_fail(filename, lineno, "li needs an integer immediate");
      }
    } else if (mnem == "mv") {
      need(2);
      ins.op = Op::Addi;
      ins.rd = parse_reg(filename, lineno, ops[0]);
      ins.rs1 = parse_reg(filename, lineno, ops[1]);
      ins.imm = 0;
    } else if (mnem == "out") {
      need(1);
      ins.op = Op::Out;
      ins.rs1 = parse_reg(filename, lineno, ops[0]);
    } else if (mnem == "halt") {
      need(0);
      ins.op = Op::Halt;
    } else if (mnem == "nop") {
      need(0);
      ins.op = Op::Nop;
    } else if (mnem == ".word") {
      need(2);
      std::int64_t addr, val;
      if (!parse_int(ops[0], addr) || !parse_int(ops[1], val)) {
        asm_fail(filename, lineno, ".word expects two integers");
      }
      prog.data[static_cast<std::uint64_t>(addr)] = val;
      continue;
    } else {
      asm_fail(filename, lineno, "unknown mnemonic '" + mnem + "'");
    }
    prog.code.push_back(ins);
  }

  for (const auto& fix : fixups) {
    const auto it = prog.labels.find(fix.label);
    if (it == prog.labels.end()) {
      asm_fail(filename, fix.line, "undefined label '" + fix.label + "'");
    }
    prog.code[fix.instr_index].imm = static_cast<std::int64_t>(it->second);
  }
  return prog;
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

ExecResult evaluate(const Instr& i, std::int64_t a, std::int64_t b,
                    std::uint64_t pc) {
  ExecResult r;
  const auto ub = static_cast<std::uint64_t>(b);
  const auto sh = static_cast<std::uint64_t>(i.imm) & 63u;
  switch (i.op) {
    case Op::Add: r.value = a + b; r.writes_reg = true; break;
    case Op::Sub: r.value = a - b; r.writes_reg = true; break;
    case Op::Mul: r.value = a * b; r.writes_reg = true; break;
    case Op::Div: r.value = b == 0 ? -1 : a / b; r.writes_reg = true; break;
    case Op::Rem: r.value = b == 0 ? a : a % b; r.writes_reg = true; break;
    case Op::And: r.value = a & b; r.writes_reg = true; break;
    case Op::Or: r.value = a | b; r.writes_reg = true; break;
    case Op::Xor: r.value = a ^ b; r.writes_reg = true; break;
    case Op::Sll: r.value = a << (ub & 63u); r.writes_reg = true; break;
    case Op::Srl:
      r.value = static_cast<std::int64_t>(static_cast<std::uint64_t>(a) >>
                                          (ub & 63u));
      r.writes_reg = true;
      break;
    case Op::Sra: r.value = a >> (ub & 63u); r.writes_reg = true; break;
    case Op::Slt: r.value = a < b ? 1 : 0; r.writes_reg = true; break;
    case Op::Addi: r.value = a + i.imm; r.writes_reg = true; break;
    case Op::Andi: r.value = a & i.imm; r.writes_reg = true; break;
    case Op::Ori: r.value = a | i.imm; r.writes_reg = true; break;
    case Op::Xori: r.value = a ^ i.imm; r.writes_reg = true; break;
    case Op::Slli: r.value = a << sh; r.writes_reg = true; break;
    case Op::Srli:
      r.value = static_cast<std::int64_t>(static_cast<std::uint64_t>(a) >> sh);
      r.writes_reg = true;
      break;
    case Op::Slti: r.value = a < i.imm ? 1 : 0; r.writes_reg = true; break;
    case Op::Lw:
      r.mem_addr = static_cast<std::uint64_t>(a + i.imm);
      r.writes_reg = true;
      break;
    case Op::Sw:
      r.mem_addr = static_cast<std::uint64_t>(a + i.imm);
      r.value = b;  // store data travels in value
      break;
    case Op::Beq: r.taken = a == b; break;
    case Op::Bne: r.taken = a != b; break;
    case Op::Blt: r.taken = a < b; break;
    case Op::Bge: r.taken = a >= b; break;
    case Op::Jal:
      r.taken = true;
      r.value = static_cast<std::int64_t>(pc + 1);  // link
      r.writes_reg = i.rd != 0;
      break;
    case Op::Jalr:
      r.taken = true;
      r.value = static_cast<std::int64_t>(pc + 1);
      r.writes_reg = i.rd != 0;
      break;
    case Op::Out: r.out = a; break;
    case Op::Halt: r.halts = true; break;
    case Op::Nop: break;
  }
  if (r.taken) {
    r.target = i.op == Op::Jalr ? static_cast<std::uint64_t>(a + i.imm)
                                : static_cast<std::uint64_t>(i.imm);
  }
  return r;
}

void ArchState::apply(const Instr& i) {
  const std::int64_t a = regs_[i.rs1];
  const std::int64_t b = regs_[i.rs2];
  const ExecResult r = evaluate(i, a, b, pc_);
  if (i.op == Op::Lw) {
    set_reg(i.rd, load(r.mem_addr));
  } else if (i.op == Op::Sw) {
    store(r.mem_addr, r.value);
  } else if (r.writes_reg) {
    set_reg(i.rd, r.value);
  }
  if (r.out) out_.push_back(*r.out);
  if (r.halts) {
    halted_ = true;
    return;
  }
  pc_ = r.taken ? r.target : pc_ + 1;
}

bool ArchState::step() {
  if (halted_) return false;
  const Instr& i = fetch(pc_);
  apply(i);
  ++retired_;
  return !halted_;
}

std::uint64_t ArchState::run(std::uint64_t max_steps) {
  std::uint64_t n = 0;
  while (n < max_steps && !halted_) {
    step();
    ++n;
  }
  return retired_;
}

}  // namespace liberty::upl
