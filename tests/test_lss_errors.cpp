// LSS error paths: every malformed specification must die with a located,
// actionable diagnostic — never a crash, never a silently wrong netlist.
#include <gtest/gtest.h>

#include <string>

#include "liberty/core/lss/elaborator.hpp"
#include "liberty/core/scheduler.hpp"
#include "liberty/core/simulator.hpp"
#include "liberty/support/error.hpp"
#include "test_util.hpp"

namespace {

using liberty::test::registry;

/// Elaborate `src` and return the diagnostic it dies with ("" = accepted).
std::string diagnostic(const std::string& src) {
  liberty::core::Netlist netlist;
  try {
    liberty::core::lss::build_from_lss(src, "test.lss", netlist, registry());
  } catch (const liberty::Error& e) {
    return e.what();
  }
  return {};
}

void expect_diag(const std::string& src, const std::string& needle) {
  const std::string msg = diagnostic(src);
  ASSERT_FALSE(msg.empty()) << "spec was accepted:\n" << src;
  EXPECT_NE(msg.find(needle), std::string::npos)
      << "diagnostic \"" << msg << "\" lacks \"" << needle << "\"";
}

TEST(LssErrors, UnterminatedStringLiteral) {
  expect_diag("param P = \"oops;\n", "unterminated string literal");
}

TEST(LssErrors, UnterminatedBlockComment) {
  expect_diag("instance s : pcl.sink;\n/* runs off the end",
              "unterminated block comment");
}

TEST(LssErrors, UnknownEscapeInString) {
  expect_diag("param P = \"bad\\q\";\n", "unknown escape in string literal");
}

TEST(LssErrors, UnknownModuleTemplate) {
  expect_diag("instance x : no.such.thing;\n",
              "unknown module template 'no.such.thing'");
}

TEST(LssErrors, SelfRecursiveModuleHitsDepthLimit) {
  // A module that instantiates itself must be cut off by the depth
  // limiter, not by the process stack.
  expect_diag(
      "module a {\n"
      "  instance inner : a;\n"
      "}\n"
      "instance top : a;\n",
      "depth exceeds 256");
}

TEST(LssErrors, DeclaredPortNeverExported) {
  expect_diag(
      "module m {\n"
      "  inport in;\n"
      "  instance q : pcl.queue;\n"
      "}\n"
      "instance x : m;\n",
      "module 'm' declares port 'in' but never exports it");
}

TEST(LssErrors, ParamRedefinitionInSameScope) {
  expect_diag(
      "param P = 1;\n"
      "param P = 2;\n",
      "redefinition of 'P' in the same scope");
}

TEST(LssErrors, DuplicateInstanceName) {
  expect_diag(
      "instance a : pcl.sink;\n"
      "instance a : pcl.sink;\n",
      "duplicate module instance name 'a'");
}

TEST(LssErrors, UnderConnectedPortFailsFinalize) {
  // pcl.probe demands exactly one input connection; elaboration succeeds
  // but finalize must flag the dangling port.
  expect_diag("instance p : pcl.probe;\n", "requires at least 1");
}

TEST(LssErrors, ConnectToUnknownInstance) {
  expect_diag(
      "instance s : pcl.sink;\n"
      "connect ghost.out -> s.in;\n",
      "no instance named 'ghost'");
}

TEST(LssErrors, DiagnosticsCarrySourceLocation) {
  const std::string msg =
      diagnostic("instance x : no.such.module;\n");
  EXPECT_NE(msg.find("test.lss:1:"), std::string::npos) << msg;
}

// A specification with a purely combinational feedback ring elaborates
// fine — the failure is at runtime, when the fixed point cannot settle
// within the configured iteration cap (lss_run --max-iters).  The
// diagnostic must name the channel chain forming the loop and point at
// the knob, not just report a generic timeout.
TEST(LssErrors, CombinationalLoopDiagnosedWithChannelChain) {
  const std::string src =
      "instance src : pcl.source { kind = \"counter\"; period = 1; };\n"
      "instance arb : pcl.arbiter;\n"
      "instance tee : pcl.tee;\n"
      "instance snk : pcl.sink;\n"
      "connect src.out -> arb.in;\n"
      "connect arb.out -> tee.in;\n"
      "connect tee.out -> arb.in;\n"
      "connect tee.out -> snk.in;\n";
  liberty::core::Netlist netlist;
  liberty::core::lss::build_from_lss(src, "loop.lss", netlist, registry());
  // The analyzed scheduler isolates the ring as an SCC and counts fixed-
  // point passes per group, so the cap fires with the loop attributed
  // (the dynamic scheduler may trip the non-monotone-drive check first,
  // depending on worklist order).
  liberty::core::Simulator sim(netlist, liberty::core::SchedulerKind::Static,
                               0);
  sim.scheduler().set_iteration_cap(1);
  try {
    sim.run(10);
    FAIL() << "combinational loop converged under cap 1?";
  } catch (const liberty::SimulationError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("combinational loop via"), std::string::npos) << msg;
    EXPECT_NE(msg.find("arb"), std::string::npos) << msg;
    EXPECT_NE(msg.find("--max-iters"), std::string::npos) << msg;
  }
}

}  // namespace
