// Abstract syntax of the LSS reproduction dialect.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "liberty/support/value.hpp"

namespace liberty::core::lss {

struct SourceLoc {
  std::string file;
  int line = 0;
  int col = 0;
};

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class UnOp { Neg, Not };
enum class BinOp {
  Add, Sub, Mul, Div, Mod,
  Eq, Ne, Lt, Le, Gt, Ge,
  And, Or,
};

struct Expr {
  enum class Kind { Literal, Var, Unary, Binary, Ternary };

  Kind kind;
  SourceLoc loc;

  // Literal
  liberty::Value literal;
  // Var
  std::string var;
  // Unary / Binary / Ternary operands
  UnOp un_op = UnOp::Neg;
  BinOp bin_op = BinOp::Add;
  ExprPtr a, b, c;
};

// ---------------------------------------------------------------------------
// References:  seg ('.' seg)*  where  seg := ident ('[' expr ']')?
// The trailing index of the final segment denotes a port endpoint index;
// indexes on earlier segments select members of instance arrays.
// ---------------------------------------------------------------------------

struct RefSeg {
  std::string ident;
  ExprPtr index;  // may be null
};

struct Ref {
  std::vector<RefSeg> segs;
  SourceLoc loc;
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct ParamDecl {
  std::string name;
  ExprPtr default_value;
};

struct InstanceDecl {
  std::vector<RefSeg> name;        // possibly indexed, e.g. core[i]
  std::string template_path;       // "pcl.queue" or LSS module name
  std::vector<std::pair<std::string, ExprPtr>> args;
};

struct ConnectDecl {
  Ref from;
  Ref to;
};

struct PortDecl {
  bool is_input = true;
  std::string name;
};

struct ExportDecl {
  Ref inner;         // instance.port inside the module body
  std::string alias; // exported name
};

struct ForStmt {
  std::string var;
  ExprPtr begin;
  ExprPtr end;  // exclusive
  std::vector<StmtPtr> body;
};

struct IfStmt {
  ExprPtr cond;
  std::vector<StmtPtr> then_body;
  std::vector<StmtPtr> else_body;
};

struct ModuleDef {
  std::string name;
  std::vector<StmtPtr> body;
};

struct Stmt {
  enum class Kind { Param, Instance, Connect, Port, Export, For, If, Module };

  Kind kind;
  SourceLoc loc;

  // One of (by kind):
  ParamDecl param;
  InstanceDecl instance;
  ConnectDecl connect;
  PortDecl port;
  ExportDecl exp;
  ForStmt for_stmt;
  IfStmt if_stmt;
  ModuleDef module_def;
};

/// A parsed specification.
struct Spec {
  std::vector<StmtPtr> top;
};

}  // namespace liberty::core::lss
