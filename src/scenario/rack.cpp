#include "liberty/scenario/rack.hpp"

#include <algorithm>
#include <sstream>
#include <string>
#include <utility>

#include "liberty/ccl/ccl.hpp"
#include "liberty/ccl/router.hpp"
#include "liberty/core/registry.hpp"
#include "liberty/mpl/mpl.hpp"
#include "liberty/nil/nic.hpp"
#include "liberty/nil/nil.hpp"
#include "liberty/pcl/pcl.hpp"
#include "liberty/scenario/trace_modules.hpp"
#include "liberty/support/error.hpp"
#include "liberty/support/rng.hpp"
#include "liberty/upl/upl.hpp"

namespace liberty::scenario {

using liberty::core::Params;
using liberty::testing::EdgeDecl;
using liberty::testing::MmioDecl;
using liberty::testing::ModuleDecl;
using liberty::testing::NetSpec;

std::string RackConfig::tag() const {
  std::ostringstream os;
  os << "rack-" << mesh_cols << 'x' << mesh_rows << 'c' << cores;
  if (with_ooo) os << "+ooo";
  os << '-' << ordering << "-s" << seed;
  return os.str();
}

std::string worker_program(std::size_t node, std::size_t core,
                           std::size_t cores, std::size_t iters) {
  // A staggered read-modify-write sweep over a small shared region: all of
  // a node's cores increment the same two cache lines, so the directory
  // sees the full MSI repertoire (GetS, GetX, upgrades, invalidations,
  // fetches) under whichever ordering controller fronts the cores.
  const std::size_t base = 256;
  const std::size_t span = 8;  // two 4-word lines
  const std::size_t start = base + (node + core * 3) % span;
  std::ostringstream os;
  os << "  li r1, 0\n"
     << "  li r2, " << start << "\n"
     << "  li r5, " << base << "\n"
     << "  li r6, " << base + span << "\n"
     << "  li r7, " << iters << "\n"
     << "loop:\n"
     << "  lw r3, 0(r2)\n"
     << "  addi r3, r3, 1\n"
     << "  sw r3, 0(r2)\n"
     << "  addi r2, r2, 1\n"
     << "  blt r2, r6, nowrap\n"
     << "  mv r2, r5\n"
     << "nowrap:\n"
     << "  addi r1, r1, 1\n"
     << "  blt r1, r7, loop\n"
     << "  halt\n";
  (void)cores;
  return os.str();
}

NetSpec rack_netspec(const RackConfig& cfg) {
  const std::size_t nodes = cfg.nodes();
  if (nodes < 2) {
    throw liberty::ElaborationError(
        "scenario.rack: need at least 2 nodes (mesh_cols * mesh_rows)");
  }
  if (cfg.cores == 0) {
    throw liberty::ElaborationError("scenario.rack: cores must be >= 1");
  }
  if (cfg.ordering != "sc" && cfg.ordering != "tso") {
    throw liberty::ElaborationError("scenario.rack: unknown ordering '" +
                                    cfg.ordering + "'");
  }

  const std::string trace_text =
      !cfg.trace.empty()
          ? cfg.trace
          : render_trace(synthetic_trace(TraceConfig{
                nodes, cfg.requests_per_node, cfg.seed, 2, 8, 32, 96}));
  // Validate user-supplied traces up front for a clear error site.
  for (const TraceRequest& r : parse_trace(trace_text)) {
    if (r.src >= nodes || r.dst >= nodes) {
      throw liberty::ElaborationError(
          "scenario.rack: trace request " + std::to_string(r.id) +
          " references a node outside the " + std::to_string(nodes) +
          "-node rack");
    }
  }

  const nil::NicFirmwareConfig fw;  // rings/mmio at their documented homes

  NetSpec spec;
  spec.cycles = cfg.cycles;
  auto add = [&spec](const std::string& type, const std::string& name,
                     Params params) {
    spec.modules.push_back(ModuleDecl{type, name, std::move(params)});
    return spec.modules.size() - 1;
  };
  auto edge = [&spec](std::size_t from, const std::string& from_port,
                      std::size_t from_ep, std::size_t to,
                      const std::string& to_port, std::size_t to_ep) {
    spec.edges.push_back(EdgeDecl{from, from_port, to, to_port, from_ep,
                                  to_ep});
  };

  std::vector<std::size_t> adapters(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    const std::string n = "n" + std::to_string(i);
    const std::int64_t ii = static_cast<std::int64_t>(i);

    // --- NIC plane: host memory, trace endpoints, programmable NIC. ---
    const std::size_t host =
        add("pcl.memory_array", n + ".host",
            Params().set("latency", std::int64_t{1})
                .set("mshrs", std::int64_t{8})
                .set("ports", std::int64_t{4}));
    const std::size_t fw_core =
        add("upl.simple_cpu", n + ".nic.core",
            Params().set("program", nil::nic_firmware(fw)));
    const std::size_t assist =
        add("nil.nic_assist", n + ".nic.assist", Params().set("mac", ii));
    const std::size_t src =
        add("scenario.trace_source", n + ".src",
            Params().set("node", ii).set("trace", trace_text));
    const std::size_t sink =
        add("scenario.trace_sink", n + ".sink", Params().set("node", ii));
    const std::size_t adapter =
        add("nil.fabric_adapter", n + ".nic.adapter",
            Params().set("id", ii).set(
                "vcs", static_cast<std::int64_t>(cfg.vcs)));
    adapters[i] = adapter;

    spec.mmios.push_back(MmioDecl{
        fw_core, assist, static_cast<std::uint64_t>(fw.mmio_base), 16});

    // Host memory endpoints: 0 firmware, 1 DMA assist, 2 source, 3 sink.
    edge(fw_core, "mem_req", 0, host, "req", 0);
    edge(host, "resp", 0, fw_core, "mem_resp", 0);
    edge(assist, "host_req", 0, host, "req", 1);
    edge(host, "resp", 1, assist, "host_resp", 0);
    edge(src, "host_req", 0, host, "req", 2);
    edge(host, "resp", 2, src, "host_resp", 0);
    edge(sink, "host_req", 0, host, "req", 3);
    edge(host, "resp", 3, sink, "host_resp", 0);

    // MAC <-> fabric adapter <-> mesh local port (router endpoint 0).
    edge(assist, "net_tx", 0, adapter, "msg_in", 0);
    edge(adapter, "msg_out", 0, assist, "net_rx", 0);

    // --- Compute plane: cores behind ordering + coherent L1s, a CohMsg
    // bus, and the node's directory home (id = cores). ---
    const std::size_t bus =
        add("ccl.bus", n + ".cohbus", Params().set("broadcast", false));
    for (std::size_t c = 0; c < cfg.cores; ++c) {
      const std::string cn = n + ".cpu" + std::to_string(c);
      const std::int64_t cc = static_cast<std::int64_t>(c);
      const std::size_t cpu =
          add("upl.simple_cpu", cn,
              Params().set("program",
                           worker_program(i, c, cfg.cores,
                                          cfg.worker_iters)));
      const std::size_t ord = add(
          "mpl.ordering", n + ".ord" + std::to_string(c),
          Params().set("mode", cfg.ordering));
      const std::size_t l1 =
          add("mpl.dir_cache", n + ".l1" + std::to_string(c),
              Params().set("id", cc).set(
                  "home0", static_cast<std::int64_t>(cfg.cores)));
      edge(cpu, "mem_req", 0, ord, "cpu_req", 0);
      edge(ord, "cpu_resp", 0, cpu, "mem_resp", 0);
      edge(ord, "mem_req", 0, l1, "cpu_req", 0);
      edge(l1, "cpu_resp", 0, ord, "mem_resp", 0);
      edge(l1, "msg_out", 0, bus, "in", c);
      edge(bus, "out", c, l1, "msg_in", 0);
    }
    const std::size_t dir =
        add("mpl.directory", n + ".dir",
            Params()
                .set("id", static_cast<std::int64_t>(cfg.cores))
                .set("home0", static_cast<std::int64_t>(cfg.cores)));
    edge(dir, "msg_out", 0, bus, "in", cfg.cores);
    edge(bus, "out", cfg.cores, dir, "msg_in", 0);

    if (cfg.with_ooo) {
      // The same worker at a different abstraction level: a behavioral
      // OoO core with its own internal cache and predictor.
      add("upl.ooo_core", n + ".ooo",
          Params()
              .set("program",
                   worker_program(i, cfg.cores, cfg.cores,
                                  cfg.worker_iters))
              .set("stop_on_halt", false)
              .set("max_instrs", std::int64_t{100000}));
    }
  }

  // --- The rack fabric: a cols x rows wormhole mesh, wired exactly like
  // ccl::build_mesh (directions: 1 = east, 2 = west, 3 = north,
  // 4 = south), with each node's adapter on the local port (endpoint 0).
  std::vector<std::size_t> routers(nodes);
  for (std::size_t id = 0; id < nodes; ++id) {
    routers[id] =
        add("ccl.router", "mesh.r" + std::to_string(id),
            Params()
                .set("id", static_cast<std::int64_t>(id))
                .set("nodes", static_cast<std::int64_t>(nodes))
                .set("routing", std::string("xy"))
                .set("cols", static_cast<std::int64_t>(cfg.mesh_cols))
                .set("rows", static_cast<std::int64_t>(cfg.mesh_rows))
                .set("vcs", static_cast<std::int64_t>(cfg.vcs)));
    edge(adapters[id], "net_out", 0, routers[id], "in", 0);
    edge(routers[id], "out", 0, adapters[id], "net_in", 0);
  }
  auto wire = [&](const std::string& name, std::size_t a, std::size_t dir_a,
                  std::size_t b, std::size_t dir_b) {
    const std::size_t link =
        add("ccl.link", name, Params().set("latency", cfg.link_latency));
    edge(routers[a], "out", dir_a, link, "in", 0);
    edge(link, "out", 0, routers[b], "in", dir_b);
  };
  for (std::size_t y = 0; y < cfg.mesh_rows; ++y) {
    for (std::size_t x = 0; x < cfg.mesh_cols; ++x) {
      const std::size_t id = y * cfg.mesh_cols + x;
      if (x + 1 < cfg.mesh_cols) {
        const std::size_t east = id + 1;
        wire("mesh.l" + std::to_string(id) + ".e", id, 1, east, 2);
        wire("mesh.l" + std::to_string(east) + ".w", east, 2, id, 1);
      }
      if (y + 1 < cfg.mesh_rows) {
        const std::size_t south = id + cfg.mesh_cols;
        wire("mesh.l" + std::to_string(id) + ".s", id, 4, south, 3);
        wire("mesh.l" + std::to_string(south) + ".n", south, 3, id, 4);
      }
    }
  }

  return spec;
}

NetSpec fuzz_rack_netspec(std::uint64_t seed) {
  liberty::Rng rng(seed ^ 0x7ac6'5ce7'a11eULL);
  RackConfig cfg;
  cfg.mesh_cols = 2;
  cfg.mesh_rows = 1 + static_cast<std::size_t>(rng.below(2));
  cfg.cores = 1 + static_cast<std::size_t>(rng.below(2));
  cfg.with_ooo = rng.below(2) == 0;
  cfg.ordering = rng.below(2) == 0 ? "sc" : "tso";
  cfg.vcs = 1 + static_cast<std::size_t>(rng.below(2));
  cfg.link_latency = 1 + static_cast<std::int64_t>(rng.below(2));
  cfg.worker_iters = 8 + static_cast<std::size_t>(rng.below(17));
  cfg.requests_per_node = 2 + static_cast<std::size_t>(rng.below(3));
  cfg.seed = seed;
  cfg.cycles = 2500 + static_cast<liberty::core::Cycle>(rng.below(1000));
  return rack_netspec(cfg);
}

RackPowerReport rack_power_report(const liberty::core::Netlist& netlist,
                                  const RackConfig& cfg) {
  RackPowerReport rep;
  for (std::size_t id = 0; id < cfg.nodes(); ++id) {
    const auto* router = dynamic_cast<const liberty::ccl::Router*>(
        netlist.find("mesh.r" + std::to_string(id)));
    if (router == nullptr) continue;
    rep.router_dynamic_pj += router->power().dynamic_pj();
    rep.router_leakage_pj += router->power().leakage_pj();
    rep.router_total_pj += router->power().total_pj();
    rep.peak_temperature_c =
        std::max(rep.peak_temperature_c, router->thermal().peak());
    rep.max_temperature_c =
        std::max(rep.max_temperature_c, router->thermal().temperature());
  }
  return rep;
}

void register_scenario(liberty::core::ModuleRegistry& registry) {
  registry.register_template(
      "scenario.trace_source", "trace-driven request injector (TX ring)",
      liberty::core::simple_factory<TraceSource>());
  registry.register_template(
      "scenario.trace_sink", "RX-ring reaper with end-to-end latency stats",
      liberty::core::simple_factory<TraceSink>());
}

void register_rack_libraries(liberty::core::ModuleRegistry& registry) {
  liberty::pcl::register_pcl(registry);
  liberty::upl::register_upl(registry);
  liberty::ccl::register_ccl(registry);
  liberty::mpl::register_mpl(registry);
  liberty::nil::register_nil(registry);
  register_scenario(registry);
}

}  // namespace liberty::scenario
