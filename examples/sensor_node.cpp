// Sensor network (the paper's Figure 2(b)).
//
// "A sensor network node ... is composed of a general-purpose processor
// (GP) and a digital signal processor (DSP) from UPL, linked with a bus
// from CCL, and interfacing to a wireless radio component from CCL through
// a radio interface from NIL."
//
// Each node: a GP (upl::SimpleCpu) samples a sensor and writes readings to
// its radio through MMIO; the radio interface queues frames onto the shared
// CSMA wireless channel (ccl::WirelessChannel).  A gateway sink collects
// readings.  Losses and collisions are part of the physics; the periodic
// sender simply keeps reporting.
#include <cstdio>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "liberty/ccl/ccl.hpp"
#include "liberty/core/simulator.hpp"
#include "liberty/upl/upl.hpp"

using namespace liberty;
using core::Cycle;
using core::Params;

namespace {

/// Radio interface (NIL role): the GP writes a reading via MMIO; the radio
/// wraps it into a flit addressed to the gateway and contends for the
/// channel.
class RadioTx final : public core::Module {
 public:
  RadioTx(const std::string& name, std::size_t node_id, std::size_t gateway)
      : Module(name), id_(node_id), gateway_(gateway) {
    out_ = &add_out("out", 0, 1);
  }

  /// MMIO hook target: queue one reading for transmission.
  void enqueue(std::int64_t reading) {
    pending_.push_back(reading);
  }
  [[nodiscard]] std::size_t backlog() const { return pending_.size(); }

  void cycle_start(Cycle c) override {
    if (!pending_.empty()) {
      auto flit = std::make_shared<ccl::Flit>(seq_, id_, gateway_, c);
      flit->body = liberty::Value(pending_.front());
      out_->send(liberty::Value(
          std::static_pointer_cast<const Payload>(std::move(flit))));
    } else {
      out_->idle();
    }
  }
  void end_of_cycle() override {
    if (out_->transferred()) {
      pending_.pop_front();
      ++seq_;
      stats().counter("sent").inc();
    }
  }
  void declare_deps(core::Deps& deps) const override {
    deps.state_only(*out_);
  }

 private:
  std::size_t id_;
  std::size_t gateway_;
  std::uint64_t seq_ = 0;
  std::deque<std::int64_t> pending_;
  core::Port* out_ = nullptr;
};

/// Sensor firmware: sample (synthesize) a reading every ~64 cycles of busy
/// work, "filter" it (the DSP step: a small smoothing computation), and
/// write it to the radio's MMIO register.
std::string sensor_prog(int node, int samples) {
  return
         // Unsynchronized duty cycles: each node starts with its own offset
         // (otherwise every transmission collides on the CSMA channel).
         "  li r12, " + std::to_string(node * 29 + 3) + "\n"
         "off:\n"
         "  addi r12, r12, -1\n"
         "  bne r12, r0, off\n"
         "  li r5, " + std::to_string(node * 37 + 11) + "\n"  // sensor state
         "  li r6, 0\n"                                        // sample count
         "  li r7, " + std::to_string(samples) + "\n"
         "sample:\n"
         // synthesize a raw reading: state = state * 13 % 1000
         "  li r8, 13\n"
         "  mul r5, r5, r8\n"
         "  li r8, 1000\n"
         "  rem r5, r5, r8\n"
         // DSP step: smooth = (prev + raw) / 2
         "  add r9, r9, r5\n"
         "  li r8, 2\n"
         "  div r9, r9, r8\n"
         // transmit via the radio MMIO register at 4096
         "  sw r9, 4096(r0)\n"
         // idle loop between samples (sensor duty cycle)
         "  li r10, 0\n"
         "idle:\n"
         "  addi r10, r10, 1\n"
         "  slti r11, r10, 64\n"
         "  bne r11, r0, idle\n"
         "  addi r6, r6, 1\n"
         "  blt r6, r7, sample\n"
         "  halt\n";
}

}  // namespace

int main() {
  constexpr std::size_t kNodes = 6;
  constexpr std::size_t kGateway = kNodes;  // radio id of the gateway
  constexpr int kSamples = 20;

  core::Netlist nl;
  auto& air = nl.make<ccl::WirelessChannel>(
      "air", Params().set("airtime", 6).set("loss", 0.05).set("seed", 3));
  auto& gateway = nl.make<ccl::TrafficSink>("gateway", Params());

  std::vector<upl::SimpleCpu*> cpus;
  for (std::size_t i = 0; i < kNodes; ++i) {
    auto& gp = nl.make<upl::SimpleCpu>("gp" + std::to_string(i), Params());
    auto& radio =
        nl.make<RadioTx>("radio" + std::to_string(i), i, kGateway);
    gp.set_program(
        upl::assemble(sensor_prog(static_cast<int>(i), kSamples)));
    gp.map_mmio(4096, 1, nullptr,
                [&radio](std::uint64_t, std::int64_t v) { radio.enqueue(v); });
    cpus.push_back(&gp);
    nl.connect_at(radio.out("out"), 0, air.in("in"), i);
  }
  // Gateway: endpoint kGateway of the channel's output.
  nl.connect_at(air.out("out"), kGateway, gateway.in("in"), 0);
  nl.finalize();

  core::Simulator sim(nl, core::SchedulerKind::Static);
  std::uint64_t cycles = 0;
  while (cycles < 300'000) {
    bool done = true;
    for (const auto* cpu : cpus) done = done && cpu->halted();
    // Drain the channel after the last sensor halts.
    if (done && cycles > 0) {
      sim.run(500);
      cycles += 500;
      break;
    }
    sim.step();
    ++cycles;
  }

  const auto& air_stats = air.stats();
  std::printf("sensor field: %zu nodes, %d samples each, CSMA channel\n",
              kNodes, kSamples);
  std::printf("sent=%llu delivered=%llu collisions=%llu lost=%llu\n",
              (unsigned long long)air_stats.counter_value("sent"),
              (unsigned long long)air_stats.counter_value("delivered"),
              (unsigned long long)air_stats.counter_value("collisions"),
              (unsigned long long)air_stats.counter_value("lost"));
  std::printf("gateway received %llu readings, mean air latency %.1f cycles\n",
              (unsigned long long)gateway.received(), gateway.mean_latency());
  return gateway.received() > 0 ? 0 : 1;
}
