// Primitive Component Library behaviour, on both schedulers where timing
// matters.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "liberty/core/netlist.hpp"
#include "liberty/core/simulator.hpp"
#include "liberty/pcl/pcl.hpp"
#include "liberty/support/error.hpp"
#include "test_util.hpp"

namespace {

using liberty::Value;
using liberty::core::Cycle;
using liberty::core::Netlist;
using liberty::core::Params;
using liberty::core::SchedulerKind;
using liberty::core::Simulator;
using namespace liberty::pcl;
using liberty::test::params;

class PclParam : public ::testing::TestWithParam<SchedulerKind> {};

INSTANTIATE_TEST_SUITE_P(BothSchedulers, PclParam,
                         ::testing::Values(SchedulerKind::Dynamic,
                                           SchedulerKind::Static),
                         [](const auto& info) {
                           return info.param == SchedulerKind::Dynamic
                                      ? "Dynamic"
                                      : "Static";
                         });

// ---------------------------------------------------------------------------
// Delay
// ---------------------------------------------------------------------------

TEST_P(PclParam, DelayImposesExactLatency) {
  Netlist nl;
  auto& src = nl.make<Source>(
      "src",
      params({{"kind", "counter"}, {"count", 10}, {"period", 4},
              {"stamp", true}}));
  auto& dly = nl.make<Delay>("d", params({{"latency", 7}, {"capacity", 16}}));
  auto& sink = nl.make<Sink>("sink", Params());
  nl.connect(src.out("out"), dly.in("in"));
  nl.connect(dly.out("out"), sink.in("in"));
  nl.finalize();

  std::vector<double> latencies;
  sink.set_consume_hook([&latencies](const Value& v, Cycle c) {
    latencies.push_back(static_cast<double>(c - v.as<Stamped>()->born));
  });
  Simulator sim(nl, GetParam());
  sim.run(100);
  ASSERT_EQ(latencies.size(), 10u);
  // Accepted the cycle it is born, delivered exactly `latency` later.
  for (const double l : latencies) EXPECT_EQ(l, 7.0);
}

TEST_P(PclParam, DelayCapacityLimitsInFlight) {
  Netlist nl;
  auto& src = nl.make<Source>(
      "src", params({{"kind", "counter"}, {"count", 50}, {"period", 1}}));
  auto& dly = nl.make<Delay>("d", params({{"latency", 10}, {"capacity", 2}}));
  auto& sink = nl.make<Sink>("sink", Params());
  nl.connect(src.out("out"), dly.in("in"));
  nl.connect(dly.out("out"), sink.in("in"));
  nl.finalize();
  Simulator sim(nl, GetParam());
  sim.run(30);
  // With capacity 2 and latency 10, at most 2 in flight -> at most ~6
  // delivered in 30 cycles.
  EXPECT_LE(sink.consumed(), 6u);
  EXPECT_GT(sink.consumed(), 0u);
}

// ---------------------------------------------------------------------------
// Arbiter
// ---------------------------------------------------------------------------

TEST_P(PclParam, RoundRobinArbiterIsFair) {
  Netlist nl;
  constexpr int kInputs = 4;
  std::vector<Source*> srcs;
  auto& arb = nl.make<Arbiter>("arb", params({{"policy", "round_robin"}}));
  auto& sink = nl.make<Sink>("sink", Params());
  for (int i = 0; i < kInputs; ++i) {
    auto& s = nl.make<Source>(
        "src" + std::to_string(i),
        params({{"kind", "counter"}, {"period", 1}, {"count", 100}}));
    srcs.push_back(&s);
    nl.connect(s.out("out"), arb.in("in"));
  }
  nl.connect(arb.out("out"), sink.in("in"));
  nl.finalize();

  Simulator sim(nl, GetParam());
  sim.run(400);

  // All inputs always contend; round robin must share within one grant.
  std::vector<std::uint64_t> grants;
  for (int i = 0; i < kInputs; ++i) {
    grants.push_back(
        arb.stats().counter_value("grants_in" + std::to_string(i)));
  }
  const auto [lo, hi] = std::minmax_element(grants.begin(), grants.end());
  EXPECT_LE(*hi - *lo, 1u);
  EXPECT_EQ(sink.consumed(), 400u);
}

TEST_P(PclParam, PriorityArbiterStarvesLowPriority) {
  Netlist nl;
  auto& arb = nl.make<Arbiter>("arb", params({{"policy", "priority"}}));
  auto& sink = nl.make<Sink>("sink", Params());
  auto& hi = nl.make<Source>(
      "hi", params({{"kind", "token"}, {"period", 1}, {"count", 50}}));
  auto& lo = nl.make<Source>(
      "lo", params({{"kind", "token"}, {"period", 1}, {"count", 50}}));
  nl.connect(hi.out("out"), arb.in("in"));
  nl.connect(lo.out("out"), arb.in("in"));
  nl.connect(arb.out("out"), sink.in("in"));
  nl.finalize();
  Simulator sim(nl, GetParam());
  sim.run(50);
  EXPECT_EQ(arb.stats().counter_value("grants_in0"), 50u);
  EXPECT_EQ(arb.stats().counter_value("grants_in1"), 0u);
}

// ---------------------------------------------------------------------------
// Tee
// ---------------------------------------------------------------------------

TEST_P(PclParam, TeeBroadcastsToAllOutputs) {
  Netlist nl;
  auto& src = nl.make<Source>(
      "src", params({{"kind", "counter"}, {"count", 20}, {"period", 1}}));
  auto& tee = nl.make<Tee>("tee", Params());
  auto& s1 = nl.make<Sink>("s1", Params());
  auto& s2 = nl.make<Sink>("s2", Params());
  auto& s3 = nl.make<Sink>("s3", Params());
  nl.connect(src.out("out"), tee.in("in"));
  nl.connect(tee.out("out"), s1.in("in"));
  nl.connect(tee.out("out"), s2.in("in"));
  nl.connect(tee.out("out"), s3.in("in"));
  nl.finalize();
  Simulator sim(nl, GetParam());
  sim.run(40);
  EXPECT_EQ(s1.consumed(), 20u);
  EXPECT_EQ(s2.consumed(), 20u);
  EXPECT_EQ(s3.consumed(), 20u);
}

TEST_P(PclParam, TeeStallsWhenAnyBranchStalls) {
  Netlist nl;
  auto& src = nl.make<Source>(
      "src", params({{"kind", "counter"}, {"count", 20}, {"period", 1}}));
  auto& tee = nl.make<Tee>("tee", Params());
  auto& s1 = nl.make<Sink>("s1", Params());
  auto& s2 = nl.make<Sink>("s2", Params());
  nl.connect(src.out("out"), tee.in("in"));
  auto& gated = nl.connect(tee.out("out"), s1.in("in"));
  nl.connect(tee.out("out"), s2.in("in"));
  nl.finalize();
  // Branch 1 refuses everything: no broadcast ever completes.  Branch 2 may
  // take the first item (it is remembered as delivered), but the wedged
  // branch then stalls the stream for everyone.
  gated.set_transfer_gate([](const Value&) { return false; });
  Simulator sim(nl, GetParam());
  sim.run(40);
  EXPECT_EQ(s1.consumed(), 0u);
  EXPECT_LE(s2.consumed(), 1u);
  EXPECT_EQ(tee.stats().counter_value("broadcasts"), 0u);
}

// ---------------------------------------------------------------------------
// Demux / Crossbar
// ---------------------------------------------------------------------------

TEST_P(PclParam, DemuxRoutesByValue) {
  Netlist nl;
  auto& src = nl.make<Source>(
      "src", params({{"kind", "counter"}, {"count", 30}, {"period", 1}}));
  auto& dm = nl.make<Demux>("dm", Params());
  auto& s0 = nl.make<Sink>("s0", Params());
  auto& s1 = nl.make<Sink>("s1", Params());
  auto& s2 = nl.make<Sink>("s2", Params());
  dm.set_selector([](const Value& v) {
    return static_cast<std::size_t>(v.as_int() % 3);
  });
  nl.connect(src.out("out"), dm.in("in"));
  nl.connect(dm.out("out"), s0.in("in"));
  nl.connect(dm.out("out"), s1.in("in"));
  nl.connect(dm.out("out"), s2.in("in"));
  nl.finalize();
  Simulator sim(nl, GetParam());
  sim.run(60);
  EXPECT_EQ(s0.consumed(), 10u);
  EXPECT_EQ(s1.consumed(), 10u);
  EXPECT_EQ(s2.consumed(), 10u);
}

TEST_P(PclParam, CrossbarDeliversAllTrafficToCorrectOutputs) {
  Netlist nl;
  auto& xb = nl.make<Crossbar>("xb", Params());
  std::vector<Sink*> sinks;
  for (int i = 0; i < 2; ++i) {
    auto& s = nl.make<Source>(
        "src" + std::to_string(i),
        params({{"kind", "counter"}, {"count", 40}, {"period", 1}}));
    nl.connect(s.out("out"), xb.in("in"));
  }
  for (int o = 0; o < 2; ++o) {
    auto& s = nl.make<Sink>("sink" + std::to_string(o), Params());
    sinks.push_back(&s);
    nl.connect(xb.out("out"), s.in("in"));
  }
  nl.finalize();
  Simulator sim(nl, GetParam());
  sim.run(400);
  // Counter values 0..39 from both sources: evens to output 0, odds to 1.
  EXPECT_EQ(sinks[0]->consumed(), 40u);
  EXPECT_EQ(sinks[1]->consumed(), 40u);
  EXPECT_GT(xb.stats().counter_value("conflicts"), 0u);
}

// ---------------------------------------------------------------------------
// Buffer in its three §2.1 roles
// ---------------------------------------------------------------------------

TEST_P(PclParam, BufferAsPlainFifoPreservesOrder) {
  Netlist nl;
  auto& src = nl.make<Source>(
      "src", params({{"kind", "counter"}, {"count", 25}, {"period", 1}}));
  auto& buf = nl.make<Buffer>("buf",
                              params({{"capacity", 4}, {"issue", "fifo"}}));
  auto& sink = nl.make<Sink>("sink", Params());
  nl.connect(src.out("out"), buf.in("in"));
  nl.connect(buf.out("out"), sink.in("in"));
  nl.finalize();
  std::vector<std::int64_t> seen;
  sink.set_consume_hook(
      [&seen](const Value& v, Cycle) { seen.push_back(v.as_int()); });
  Simulator sim(nl, GetParam());
  sim.run(100);
  ASSERT_EQ(seen.size(), 25u);
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
}

TEST_P(PclParam, BufferAsWindowIssuesOutOfOrder) {
  // "any" issue with a readiness predicate that blocks multiples of 3
  // until cycle 30: later entries overtake them.
  Netlist nl;
  auto& src = nl.make<Source>(
      "src", params({{"kind", "counter"}, {"count", 12}, {"period", 1}}));
  auto& buf = nl.make<Buffer>("buf",
                              params({{"capacity", 16}, {"issue", "any"}}));
  auto& sink = nl.make<Sink>("sink", Params());
  nl.connect(src.out("out"), buf.in("in"));
  nl.connect(buf.out("out"), sink.in("in"));
  nl.finalize();

  bool unblock = false;
  buf.set_ready_fn([&unblock](const Value& v) {
    return unblock || (v.as_int() % 3 != 0);
  });
  std::vector<std::int64_t> seen;
  sink.set_consume_hook(
      [&seen](const Value& v, Cycle) { seen.push_back(v.as_int()); });
  Simulator sim(nl, GetParam());
  for (int i = 0; i < 30; ++i) sim.step();
  unblock = true;  // operands arrive: blocked entries become ready
  sim.run(70);
  ASSERT_EQ(seen.size(), 12u);
  EXPECT_FALSE(std::is_sorted(seen.begin(), seen.end()));
  // Everything still arrives exactly once.
  std::vector<std::int64_t> sorted = seen;
  std::sort(sorted.begin(), sorted.end());
  for (std::int64_t i = 0; i < 12; ++i) EXPECT_EQ(sorted[i], i);
}

TEST_P(PclParam, BufferAsRobHoldsHeadUntilComplete) {
  // FIFO issue with a gating predicate: the head (value 0) is not "complete"
  // until cycle 20, so nothing retires before then even though later
  // entries are complete.
  Netlist nl;
  auto& src = nl.make<Source>(
      "src", params({{"kind", "counter"}, {"count", 5}, {"period", 1}}));
  auto& rob = nl.make<Buffer>("rob",
                              params({{"capacity", 8}, {"issue", "fifo"}}));
  auto& sink = nl.make<Sink>("sink", Params());
  nl.connect(src.out("out"), rob.in("in"));
  nl.connect(rob.out("out"), sink.in("in"));
  nl.finalize();

  bool complete0 = false;
  rob.set_ready_fn([&complete0](const Value& v) {
    return v.as_int() != 0 || complete0;
  });
  std::vector<Cycle> retire_cycles;
  sink.set_consume_hook([&retire_cycles](const Value&, Cycle c) {
    retire_cycles.push_back(c);
  });

  Simulator sim(nl, GetParam());
  for (int i = 0; i < 20; ++i) sim.step();
  EXPECT_TRUE(retire_cycles.empty());
  complete0 = true;
  sim.run(30);
  ASSERT_EQ(retire_cycles.size(), 5u);
  EXPECT_GE(retire_cycles.front(), 20u);
}

// ---------------------------------------------------------------------------
// MemoryArray
// ---------------------------------------------------------------------------

TEST_P(PclParam, MemoryArrayReadsBackWrites) {
  Netlist nl;
  auto& mem = nl.make<MemoryArray>(
      "mem", params({{"latency", 3}, {"mshrs", 4}}));
  auto& sink = nl.make<Sink>("sink", Params());

  // Drive requests from a bespoke module.
  class Driver : public liberty::core::Module {
   public:
    explicit Driver(const std::string& name) : Module(name) {
      add_out("req", 1, 1);
    }
    void cycle_start(Cycle c) override {
      if (c < reqs_.size()) {
        out("req").send(reqs_[c]);
      } else {
        out("req").idle();
      }
    }
    void declare_deps(liberty::core::Deps& d) const override {
      d.state_only(out("req"));
    }
    std::vector<Value> reqs_;
  };
  auto& drv = nl.make<Driver>("drv");
  drv.reqs_.push_back(Value::make<MemReq>(MemReq::Op::Write, 100, 42, 1));
  drv.reqs_.push_back(Value::make<MemReq>(MemReq::Op::Write, 200, -7, 2));
  drv.reqs_.push_back(Value::make<MemReq>(MemReq::Op::Read, 100, 0, 3));
  drv.reqs_.push_back(Value::make<MemReq>(MemReq::Op::Read, 999, 0, 4));

  nl.connect(drv.out("req"), mem.in("req"));
  nl.connect(mem.out("resp"), sink.in("in"));
  nl.finalize();

  std::map<std::uint64_t, std::int64_t> resp;
  sink.set_consume_hook([&resp](const Value& v, Cycle) {
    const auto r = v.as<MemResp>();
    resp[r->tag] = r->data;
  });
  Simulator sim(nl, GetParam());
  sim.run(30);
  ASSERT_EQ(resp.size(), 4u);
  EXPECT_EQ(resp[3], 42);
  EXPECT_EQ(resp[4], 0);  // never written -> default
  EXPECT_EQ(mem.peek(200), -7);
}

// ---------------------------------------------------------------------------
// Probe / FuncMap
// ---------------------------------------------------------------------------

TEST_P(PclParam, ProbeIsTransparentAndCounts) {
  Netlist nl;
  auto& src = nl.make<Source>(
      "src", params({{"kind", "counter"}, {"count", 15}, {"period", 1}}));
  auto& probe = nl.make<Probe>("p", Params());
  auto& sink = nl.make<Sink>("sink", Params());
  nl.connect(src.out("out"), probe.in("in"));
  nl.connect(probe.out("out"), sink.in("in"));
  nl.finalize();
  Simulator sim(nl, GetParam());
  sim.run(30);
  EXPECT_EQ(sink.consumed(), 15u);
  EXPECT_EQ(probe.count(), 15u);
}

TEST_P(PclParam, FuncMapTransformsValues) {
  Netlist nl;
  auto& src = nl.make<Source>(
      "src", params({{"kind", "counter"}, {"count", 10}, {"period", 1}}));
  auto& fm = nl.make<FuncMap>("fm", Params());
  auto& sink = nl.make<Sink>("sink", Params());
  fm.set_fn([](const Value& v) { return Value(v.as_int() * 10); });
  nl.connect(src.out("out"), fm.in("in"));
  nl.connect(fm.out("out"), sink.in("in"));
  nl.finalize();
  std::vector<std::int64_t> seen;
  sink.set_consume_hook(
      [&seen](const Value& v, Cycle) { seen.push_back(v.as_int()); });
  Simulator sim(nl, GetParam());
  sim.run(30);
  ASSERT_EQ(seen.size(), 10u);
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], static_cast<std::int64_t>(i) * 10);
  }
}

// ---------------------------------------------------------------------------
// Source parameter space (property-style sweep)
// ---------------------------------------------------------------------------

class SourcePeriod : public ::testing::TestWithParam<int> {};

TEST_P(SourcePeriod, EmitsAtConfiguredPeriod) {
  const int period = GetParam();
  Netlist nl;
  auto& src = nl.make<Source>(
      "src",
      params({{"kind", "token"}, {"period", period}, {"count", 0}}));
  auto& sink = nl.make<Sink>("sink", Params());
  nl.connect(src.out("out"), sink.in("in"));
  nl.finalize();
  Simulator sim(nl);
  const Cycle horizon = 120;
  sim.run(horizon);
  EXPECT_EQ(sink.consumed(),
            (horizon + static_cast<Cycle>(period) - 1) /
                static_cast<Cycle>(period));
  (void)src;
}

INSTANTIATE_TEST_SUITE_P(Periods, SourcePeriod,
                         ::testing::Values(1, 2, 3, 5, 8, 40));

TEST(PclErrors, BadParamsRejected) {
  Netlist nl;
  EXPECT_THROW(nl.make<Queue>("q", liberty::test::params({{"depth", 0}})),
               liberty::ElaborationError);
  EXPECT_THROW(
      nl.make<Arbiter>("a", liberty::test::params({{"policy", "bogus"}})),
      liberty::ElaborationError);
  EXPECT_THROW(
      nl.make<Source>("s", liberty::test::params({{"kind", "bogus"}})),
      liberty::ElaborationError);
  EXPECT_THROW(nl.make<Delay>("d", liberty::test::params({{"latency", 0}})),
               liberty::ElaborationError);
}

}  // namespace
