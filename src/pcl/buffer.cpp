#include "liberty/pcl/buffer.hpp"

#include <algorithm>

#include "liberty/support/error.hpp"

namespace liberty::pcl {

using liberty::core::AckMode;
using liberty::core::Cycle;
using liberty::core::Deps;
using liberty::core::Params;

Buffer::Buffer(const std::string& name, const Params& params)
    : Module(name),
      in_(add_in("in", AckMode::Managed, 1)),
      out_(add_out("out", 0)),
      capacity_(static_cast<std::size_t>(params.get_int("capacity", 16))) {
  const std::string issue = params.get_string("issue", "fifo");
  if (issue != "fifo" && issue != "any") {
    throw liberty::ElaborationError("pcl.buffer '" + name +
                                    "': unknown issue policy '" + issue + "'");
  }
  fifo_ = issue == "fifo";
  if (capacity_ == 0) {
    throw liberty::ElaborationError("pcl.buffer '" + name +
                                    "': capacity must be >= 1");
  }
}

void Buffer::cycle_start(Cycle) {
  stats().bind(occupancy_stat_, "occupancy");
  occupancy_stat_->add(static_cast<double>(entries_.size()));

  // Offer ready entries to output endpoints, oldest first.
  issued_idx_.clear();
  std::size_t ep = 0;
  for (std::size_t i = 0; i < entries_.size() && ep < out_.width(); ++i) {
    if (is_ready(entries_[i])) {
      out_.send_at(ep, entries_[i]);
      issued_idx_.push_back(i);
      ++ep;
    } else if (fifo_) {
      stats().bind(issue_stalls_stat_, "issue_stalls");
      issue_stalls_stat_->inc();
      break;  // in-order: a stalled head blocks everything behind it
    }
  }
  for (; ep < out_.width(); ++ep) out_.idle(ep);

  // Accept as many inserts as there are free slots, in endpoint order.
  std::size_t free_slots = capacity_ - entries_.size();
  for (std::size_t i = 0; i < in_.width(); ++i) {
    if (free_slots > 0) {
      in_.ack(i);
      --free_slots;
    } else {
      in_.nack(i);
    }
  }
}

void Buffer::end_of_cycle() {
  // Remove issued entries that transferred (descending index so erase
  // positions stay valid).
  for (std::size_t k = issued_idx_.size(); k-- > 0;) {
    if (out_.transferred(k)) {
      entries_.erase(entries_.begin() +
                     static_cast<std::ptrdiff_t>(issued_idx_[k]));
      stats().bind(issued_stat_, "issued");
      issued_stat_->inc();
    }
  }
  for (std::size_t i = 0; i < in_.width(); ++i) {
    if (in_.transferred(i)) {
      entries_.push_back(in_.data(i));
      stats().bind(inserted_stat_, "inserted");
      inserted_stat_->inc();
    }
  }
  if (entries_.size() > capacity_) {
    throw liberty::SimulationError("pcl.buffer '" + name() +
                                   "': capacity overflow (internal)");
  }
}

void Buffer::save_state(liberty::core::StateWriter& w) const {
  w.put_size(entries_.size());
  for (const auto& v : entries_) w.put(v);
}

void Buffer::load_state(liberty::core::StateReader& r) {
  entries_.clear();
  const std::size_t n = r.get_size();
  for (std::size_t i = 0; i < n; ++i) entries_.push_back(r.get());
}

void Buffer::declare_deps(Deps& deps) const {
  deps.state_only(out_);
  deps.state_only(in_);
}

}  // namespace liberty::pcl
