#include "liberty/upl/ooo_core.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "liberty/support/error.hpp"

namespace liberty::upl {

using liberty::core::Cycle;
using liberty::core::Params;

OoOCore::OoOCore(const std::string& name, const Params& params)
    : Module(name),
      width_(static_cast<std::size_t>(params.get_int("width", 4))),
      window_size_(static_cast<std::size_t>(params.get_int("window", 32))),
      rob_size_(static_cast<std::size_t>(params.get_int("rob", 64))),
      pred_(make_predictor(params.get_string("predictor", "gshare"),
                           static_cast<std::size_t>(
                               params.get_int("predictor_entries", 1024)))),
      mispredict_penalty_(static_cast<std::uint64_t>(
          params.get_int("mispredict_penalty", 8))),
      mul_latency_(
          static_cast<std::uint64_t>(params.get_int("mul_latency", 3))),
      div_latency_(
          static_cast<std::uint64_t>(params.get_int("div_latency", 12))),
      load_hit_(static_cast<std::uint64_t>(params.get_int("load_hit", 2))),
      load_miss_(static_cast<std::uint64_t>(params.get_int("load_miss", 40))),
      max_instrs_(
          static_cast<std::uint64_t>(params.get_int("max_instrs", 1000000))),
      stop_on_halt_(params.get_bool("stop_on_halt", true)),
      dcache_(static_cast<std::size_t>(params.get_int("dcache_sets", 64)),
              static_cast<std::size_t>(params.get_int("dcache_ways", 4)),
              static_cast<std::size_t>(params.get_int("dcache_line", 4)),
              replacement_from_string(
                  params.get_string("dcache_replacement", "lru"))) {
  if (width_ == 0 || window_size_ == 0 || rob_size_ == 0) {
    throw liberty::ElaborationError(
        "upl.ooo_core: width/window/rob must be >= 1");
  }
  const std::string source = params.get_string("program", "");
  if (!source.empty()) set_program(assemble(source, name + ".program"));
}

void OoOCore::build_trace() {
  if (!have_program_) {
    throw liberty::SimulationError("upl.ooo_core '" + name() +
                                   "': no program attached");
  }
  ArchState st(prog_);
  while (!st.halted() && trace_.size() < max_instrs_) {
    TraceEntry e;
    e.pc = st.pc();
    e.instr = st.fetch(st.pc());
    const ExecResult r =
        evaluate(e.instr, st.reg(e.instr.rs1), st.reg(e.instr.rs2), st.pc());
    e.taken = r.taken;
    e.mem_addr = r.mem_addr;
    trace_.push_back(e);
    st.step();
  }
  output_ = st.output();
  trace_ready_ = true;
}

void OoOCore::init() { build_trace(); }

std::uint64_t OoOCore::exec_latency(const TraceEntry& e) {
  switch (e.instr.op) {
    case Op::Mul:
      return mul_latency_;
    case Op::Div:
    case Op::Rem:
      return div_latency_;
    case Op::Lw:
    case Op::Sw: {
      if (dcache_.lookup(e.mem_addr) != nullptr) {
        stats().counter("dcache_hits").inc();
        return load_hit_;
      }
      stats().counter("dcache_misses").inc();
      CacheModel::Line& victim = dcache_.victim(e.mem_addr);
      dcache_.fill(victim, e.mem_addr, e.instr.op == Op::Sw);
      return load_miss_;
    }
    default:
      return 1;
  }
}

void OoOCore::do_commit() {
  std::size_t committed = 0;
  while (committed < width_ && !rob_.empty()) {
    const InFlight& head = rob_.front();
    if (!head.issued || head.done > now()) break;
    ++commit_ptr_;
    rob_.pop_front();
    ++committed;
    stats().counter("retired").inc();
  }
}

void OoOCore::do_issue() {
  std::size_t issued = 0;
  for (auto& f : rob_) {
    if (issued >= width_) break;
    if (f.issued) continue;
    const TraceEntry& e = trace_[f.idx];
    // Operand readiness through the register scoreboard.
    std::uint64_t ready = now();
    ready = std::max(ready, reg_ready_[e.instr.rs1]);
    ready = std::max(ready, reg_ready_[e.instr.rs2]);
    // Loads obey earlier stores to the same address.
    if (e.instr.op == Op::Lw) {
      const auto it = store_ready_.find(e.mem_addr);
      if (it != store_ready_.end()) ready = std::max(ready, it->second);
    }
    if (ready > now()) continue;  // not ready: stays in the window
    f.issued = true;
    f.done = now() + exec_latency(e);
    if (e.instr.rd != 0 &&
        (is_alu(e.instr.op) || e.instr.op == Op::Lw ||
         e.instr.op == Op::Jal || e.instr.op == Op::Jalr)) {
      reg_ready_[e.instr.rd] = f.done;
    }
    if (e.instr.op == Op::Sw) store_ready_[e.mem_addr] = f.done;
    if (blocking_branch_ && *blocking_branch_ == f.idx) {
      // Mispredicted branch resolves: frontend refills after the penalty.
      fetch_stalled_until_ = f.done + mispredict_penalty_;
      blocking_branch_.reset();
    }
    ++issued;
  }
}

void OoOCore::do_fetch() {
  if (now() < fetch_stalled_until_ || blocking_branch_) return;
  std::size_t fetched = 0;
  while (fetched < width_ && fetch_ptr_ < trace_.size() &&
         rob_.size() < rob_size_) {
    // Window occupancy = unissued entries.
    std::size_t waiting = 0;
    for (const auto& f : rob_) {
      if (!f.issued) ++waiting;
    }
    if (waiting >= window_size_) {
      stats().counter("window_full_stalls").inc();
      break;
    }
    const TraceEntry& e = trace_[fetch_ptr_];
    rob_.push_back(InFlight{fetch_ptr_, false, 0});
    ++fetched;
    if (is_branch(e.instr.op)) {
      const bool conditional =
          e.instr.op != Op::Jal && e.instr.op != Op::Jalr;
      bool predicted_taken = true;  // jal/jalr assumed BTB-hit
      if (conditional) {
        predicted_taken = pred_->predict(e.pc);
        pred_->update(e.pc, e.taken);
      }
      if (conditional && predicted_taken != e.taken) {
        stats().counter("mispredicts").inc();
        blocking_branch_ = fetch_ptr_;
        ++fetch_ptr_;
        return;  // fetch stops until the branch resolves
      }
      stats().counter("correct_predictions").inc();
    }
    ++fetch_ptr_;
  }
}

void OoOCore::save_state(liberty::core::StateWriter& w) const {
  // trace_ and output_ are rebuilt deterministically by init(); only the
  // machine's progress through the trace is state.
  w.put_size(rob_.size());
  for (const InFlight& f : rob_) {
    w.put_size(f.idx);
    w.put_bool(f.issued);
    w.put_u64(f.done);
  }
  w.put_size(fetch_ptr_);
  w.put_size(commit_ptr_);
  for (const std::uint64_t c : reg_ready_) w.put_u64(c);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> stores(
      store_ready_.begin(), store_ready_.end());
  std::sort(stores.begin(), stores.end());
  w.put_size(stores.size());
  for (const auto& [addr, ready] : stores) {
    w.put_u64(addr);
    w.put_u64(ready);
  }
  w.put_u64(fetch_stalled_until_);
  w.put_bool(blocking_branch_.has_value());
  if (blocking_branch_) w.put_size(*blocking_branch_);
  pred_->save(w);
  dcache_.save(w);
}

void OoOCore::load_state(liberty::core::StateReader& r) {
  rob_.clear();
  const std::size_t inflight = r.get_size();
  for (std::size_t i = 0; i < inflight; ++i) {
    InFlight f;
    f.idx = r.get_size();
    f.issued = r.get_bool();
    f.done = r.get_u64();
    rob_.push_back(f);
  }
  fetch_ptr_ = r.get_size();
  commit_ptr_ = r.get_size();
  for (std::uint64_t& c : reg_ready_) c = r.get_u64();
  store_ready_.clear();
  const std::size_t stores = r.get_size();
  for (std::size_t i = 0; i < stores; ++i) {
    const std::uint64_t addr = r.get_u64();
    store_ready_[addr] = r.get_u64();
  }
  fetch_stalled_until_ = r.get_u64();
  blocking_branch_.reset();
  if (r.get_bool()) blocking_branch_ = r.get_size();
  pred_->load(r);
  dcache_.load(r);
}

void OoOCore::end_of_cycle() {
  if (done()) return;
  stats().counter("cycles").inc();
  do_commit();
  do_issue();
  do_fetch();
  std::size_t waiting = 0;
  for (const auto& f : rob_) {
    if (!f.issued) ++waiting;
  }
  stats().accumulator("window_occupancy").add(static_cast<double>(waiting));
  if (done()) {
    stats().counter("done_at").inc(now());
    if (stop_on_halt_) request_stop();
  }
}

}  // namespace liberty::upl
