#include "liberty/core/lss/elaborator.hpp"

#include <cmath>
#include <set>

#include "liberty/core/lss/parser.hpp"
#include "liberty/support/error.hpp"

namespace liberty::core::lss {

namespace {

[[noreturn]] void fail(const SourceLoc& loc, const std::string& msg) {
  throw liberty::SpecError(loc.file, loc.line, loc.col, msg);
}

/// Lexical environment: a stack of scopes mapping names to values.
class Env {
 public:
  void push() { scopes_.emplace_back(); }
  void pop() { scopes_.pop_back(); }

  void define(const SourceLoc& loc, const std::string& name,
              liberty::Value v) {
    auto& scope = scopes_.back();
    if (scope.count(name) != 0) {
      fail(loc, "redefinition of '" + name + "' in the same scope");
    }
    scope[name] = std::move(v);
  }

  [[nodiscard]] const liberty::Value* lookup(const std::string& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      const auto found = it->find(name);
      if (found != it->end()) return &found->second;
    }
    return nullptr;
  }

 private:
  std::vector<std::map<std::string, liberty::Value>> scopes_;
};

class Evaluator {
 public:
  explicit Evaluator(const Env& env) : env_(env) {}

  [[nodiscard]] liberty::Value eval(const Expr& e) const {
    switch (e.kind) {
      case Expr::Kind::Literal:
        return e.literal;
      case Expr::Kind::Var: {
        const liberty::Value* v = env_.lookup(e.var);
        if (v == nullptr) fail(e.loc, "undefined name '" + e.var + "'");
        return *v;
      }
      case Expr::Kind::Unary: {
        const liberty::Value a = eval(*e.a);
        if (e.un_op == UnOp::Not) return liberty::Value(!truthy(e.loc, a));
        if (a.is_real()) return liberty::Value(-a.as_real());
        return liberty::Value(-int_of(e.loc, a));
      }
      case Expr::Kind::Binary:
        return eval_binary(e);
      case Expr::Kind::Ternary:
        return truthy(e.loc, eval(*e.a)) ? eval(*e.b) : eval(*e.c);
    }
    fail(e.loc, "internal: bad expression kind");
  }

  [[nodiscard]] std::int64_t eval_int(const Expr& e) const {
    return int_of(e.loc, eval(e));
  }

 private:
  [[nodiscard]] static bool truthy(const SourceLoc& loc,
                                   const liberty::Value& v) {
    if (v.is_bool() || v.is_int()) return v.as_bool();
    fail(loc, "expected a boolean, got " + v.to_string());
  }

  [[nodiscard]] static std::int64_t int_of(const SourceLoc& loc,
                                           const liberty::Value& v) {
    if (v.is_int() || v.is_bool()) return v.as_int();
    fail(loc, "expected an integer, got " + v.to_string());
  }

  [[nodiscard]] liberty::Value eval_binary(const Expr& e) const {
    // Short-circuit logicals first.
    if (e.bin_op == BinOp::And) {
      return liberty::Value(truthy(e.loc, eval(*e.a)) &&
                            truthy(e.loc, eval(*e.b)));
    }
    if (e.bin_op == BinOp::Or) {
      return liberty::Value(truthy(e.loc, eval(*e.a)) ||
                            truthy(e.loc, eval(*e.b)));
    }

    const liberty::Value a = eval(*e.a);
    const liberty::Value b = eval(*e.b);

    if (e.bin_op == BinOp::Eq) return liberty::Value(a == b);
    if (e.bin_op == BinOp::Ne) return liberty::Value(!(a == b));

    // String concatenation and comparison.
    if (a.is_string() || b.is_string()) {
      if (!a.is_string() || !b.is_string()) {
        // Mixed string/number concatenation renders the number.
        auto str = [](const liberty::Value& v) {
          return v.is_string() ? v.as_string() : v.to_string();
        };
        if (e.bin_op == BinOp::Add) return liberty::Value(str(a) + str(b));
        fail(e.loc, "invalid operands to string operator");
      }
      switch (e.bin_op) {
        case BinOp::Add: return liberty::Value(a.as_string() + b.as_string());
        case BinOp::Lt: return liberty::Value(a.as_string() < b.as_string());
        case BinOp::Le: return liberty::Value(a.as_string() <= b.as_string());
        case BinOp::Gt: return liberty::Value(a.as_string() > b.as_string());
        case BinOp::Ge: return liberty::Value(a.as_string() >= b.as_string());
        default: fail(e.loc, "invalid string operator");
      }
    }

    // Numeric: promote to real when either side is real.
    if (a.is_real() || b.is_real()) {
      const double x = a.as_real();
      const double y = b.as_real();
      switch (e.bin_op) {
        case BinOp::Add: return liberty::Value(x + y);
        case BinOp::Sub: return liberty::Value(x - y);
        case BinOp::Mul: return liberty::Value(x * y);
        case BinOp::Div:
          if (y == 0.0) fail(e.loc, "division by zero");
          return liberty::Value(x / y);
        case BinOp::Mod:
          if (y == 0.0) fail(e.loc, "modulo by zero");
          return liberty::Value(std::fmod(x, y));
        case BinOp::Lt: return liberty::Value(x < y);
        case BinOp::Le: return liberty::Value(x <= y);
        case BinOp::Gt: return liberty::Value(x > y);
        case BinOp::Ge: return liberty::Value(x >= y);
        default: fail(e.loc, "invalid numeric operator");
      }
    }

    const std::int64_t x = int_of(e.loc, a);
    const std::int64_t y = int_of(e.loc, b);
    switch (e.bin_op) {
      case BinOp::Add: return liberty::Value(x + y);
      case BinOp::Sub: return liberty::Value(x - y);
      case BinOp::Mul: return liberty::Value(x * y);
      case BinOp::Div:
        if (y == 0) fail(e.loc, "division by zero");
        return liberty::Value(x / y);
      case BinOp::Mod:
        if (y == 0) fail(e.loc, "modulo by zero");
        return liberty::Value(x % y);
      case BinOp::Lt: return liberty::Value(x < y);
      case BinOp::Le: return liberty::Value(x <= y);
      case BinOp::Gt: return liberty::Value(x > y);
      case BinOp::Ge: return liberty::Value(x >= y);
      default: fail(e.loc, "invalid integer operator");
    }
  }

  const Env& env_;
};

/// A resolved connection endpoint reference.
struct EndpointRef {
  std::string instance;
  std::string port;
  bool has_index = false;
  std::size_t index = 0;
  SourceLoc loc;
};

class ElabContext {
 public:
  ElabContext(const ModuleRegistry& registry, Netlist& netlist)
      : registry_(registry), netlist_(netlist) {}

  void run(const Spec& spec,
           const std::map<std::string, liberty::Value>& overrides) {
    overrides_ = &overrides;
    env_.push();
    exec_block(spec.top, /*prefix=*/"", /*mctx=*/nullptr,
               /*top_level=*/true);
    env_.pop();
    apply_connects();
  }

 private:
  /// Per-hierarchical-module elaboration state.
  struct ModuleCtx {
    std::set<std::string> declared_ports;
    std::set<std::string> exported_ports;
    std::string prefix;  // "h." for instance h
  };

  struct PendingConnect {
    EndpointRef from;
    EndpointRef to;
  };

  void exec_block(const std::vector<StmtPtr>& stmts, const std::string& prefix,
                  ModuleCtx* mctx, bool top_level) {
    for (const auto& s : stmts) exec_stmt(*s, prefix, mctx, top_level);
  }

  void exec_stmt(const Stmt& s, const std::string& prefix, ModuleCtx* mctx,
                 bool top_level) {
    Evaluator ev(env_);
    switch (s.kind) {
      case Stmt::Kind::Param: {
        liberty::Value v;
        if (top_level && overrides_->count(s.param.name) != 0) {
          v = overrides_->at(s.param.name);
        } else {
          v = ev.eval(*s.param.default_value);
        }
        env_.define(s.loc, s.param.name, std::move(v));
        return;
      }
      case Stmt::Kind::Module: {
        if (modules_.count(s.module_def.name) != 0) {
          fail(s.loc, "module '" + s.module_def.name + "' defined twice");
        }
        modules_[s.module_def.name] = &s.module_def;
        return;
      }
      case Stmt::Kind::Instance:
        exec_instance(s, prefix);
        return;
      case Stmt::Kind::Connect: {
        PendingConnect pc;
        pc.from = resolve_ref(s.connect.from, prefix);
        pc.to = resolve_ref(s.connect.to, prefix);
        connects_.push_back(std::move(pc));
        return;
      }
      case Stmt::Kind::Port: {
        if (mctx == nullptr) fail(s.loc, "port declaration outside module");
        if (!mctx->declared_ports.insert(s.port.name).second) {
          fail(s.loc, "port '" + s.port.name + "' declared twice");
        }
        return;
      }
      case Stmt::Kind::Export: {
        if (mctx == nullptr) fail(s.loc, "'export' outside module");
        if (mctx->declared_ports.count(s.exp.alias) == 0) {
          fail(s.loc, "export of undeclared port '" + s.exp.alias + "'");
        }
        if (!mctx->exported_ports.insert(s.exp.alias).second) {
          fail(s.loc, "port '" + s.exp.alias + "' exported twice");
        }
        const EndpointRef inner = resolve_ref(s.exp.inner, mctx->prefix);
        if (inner.has_index) {
          fail(s.loc, "export target cannot carry an endpoint index");
        }
        // The alias chain is resolved transitively at connect time.
        const std::string alias_key =
            mctx->prefix.substr(0, mctx->prefix.size() - 1) + "." +
            s.exp.alias;
        aliases_[alias_key] = inner.instance + "." + inner.port;
        return;
      }
      case Stmt::Kind::For: {
        const std::int64_t begin = ev.eval_int(*s.for_stmt.begin);
        const std::int64_t end = ev.eval_int(*s.for_stmt.end);
        for (std::int64_t i = begin; i < end; ++i) {
          env_.push();
          env_.define(s.loc, s.for_stmt.var, liberty::Value(i));
          exec_block(s.for_stmt.body, prefix, mctx, top_level);
          env_.pop();
        }
        return;
      }
      case Stmt::Kind::If: {
        const liberty::Value cond = ev.eval(*s.if_stmt.cond);
        env_.push();
        if (cond.as_bool()) {
          exec_block(s.if_stmt.then_body, prefix, mctx, top_level);
        } else {
          exec_block(s.if_stmt.else_body, prefix, mctx, top_level);
        }
        env_.pop();
        return;
      }
    }
  }

  [[nodiscard]] std::string seg_to_string(const RefSeg& seg) const {
    Evaluator ev(env_);
    std::string out = seg.ident;
    if (seg.index) {
      out += '[' + std::to_string(ev.eval_int(*seg.index)) + ']';
    }
    return out;
  }

  void exec_instance(const Stmt& s, const std::string& prefix) {
    const InstanceDecl& decl = s.instance;
    std::string name = prefix;
    for (std::size_t i = 0; i < decl.name.size(); ++i) {
      if (i != 0) name += '.';
      name += seg_to_string(decl.name[i]);
    }

    // Evaluate customization arguments in the caller's environment.
    Evaluator ev(env_);
    Params params;
    std::vector<std::pair<std::string, liberty::Value>> arg_values;
    for (const auto& [pname, pexpr] : decl.args) {
      liberty::Value v = ev.eval(*pexpr);
      params.set(pname, v);
      arg_values.emplace_back(pname, std::move(v));
    }

    // LSS-defined hierarchical modules shadow registry templates.
    const auto lss_it = modules_.find(decl.template_path);
    if (lss_it != modules_.end()) {
      instantiate_lss_module(s.loc, *lss_it->second, name, arg_values);
      return;
    }

    if (!registry_.has(decl.template_path)) {
      fail(s.loc, "unknown module template '" + decl.template_path + "'");
    }
    try {
      netlist_.add(registry_.instantiate(decl.template_path, name, params));
    } catch (const liberty::ElaborationError& e) {
      fail(s.loc, e.what());
    }
  }

  void instantiate_lss_module(
      const SourceLoc& loc, const ModuleDef& def, const std::string& name,
      const std::vector<std::pair<std::string, liberty::Value>>& args) {
    if (++depth_ > kMaxDepth) {
      fail(loc, "module instantiation depth exceeds " +
                    std::to_string(kMaxDepth) +
                    " (unbounded recursive module?)");
    }

    // Hierarchical modules elaborate in a closed scope: only their declared
    // parameters are visible, with instance arguments overriding defaults.
    std::map<std::string, liberty::Value> arg_map(args.begin(), args.end());
    std::set<std::string> declared_params;
    for (const auto& st : def.body) {
      if (st->kind == Stmt::Kind::Param) declared_params.insert(st->param.name);
    }
    for (const auto& [pname, v] : arg_map) {
      (void)v;
      if (declared_params.count(pname) == 0) {
        fail(loc, "module '" + def.name + "' has no parameter '" + pname +
                      "'");
      }
    }

    env_.push();
    ModuleCtx mctx;
    mctx.prefix = name + ".";

    // Walk the body; param defaults yield to instance arguments.
    for (const auto& st : def.body) {
      if (st->kind == Stmt::Kind::Param) {
        const auto it = arg_map.find(st->param.name);
        if (it != arg_map.end()) {
          env_.define(st->loc, st->param.name, it->second);
        } else {
          Evaluator ev(env_);
          env_.define(st->loc, st->param.name,
                      ev.eval(*st->param.default_value));
        }
        continue;
      }
      exec_stmt(*st, mctx.prefix, &mctx, /*top_level=*/false);
    }

    // Every declared port must be exported, or connections to it would
    // dangle silently — exactly the class of error LSE exists to surface.
    for (const auto& p : mctx.declared_ports) {
      if (mctx.exported_ports.count(p) == 0) {
        fail(loc, "module '" + def.name + "' declares port '" + p +
                      "' but never exports it");
      }
    }

    env_.pop();
    --depth_;
  }

  [[nodiscard]] EndpointRef resolve_ref(const Ref& ref,
                                        const std::string& prefix) const {
    EndpointRef out;
    out.loc = ref.loc;
    Evaluator ev(env_);

    std::string inst = prefix;
    for (std::size_t i = 0; i + 1 < ref.segs.size(); ++i) {
      if (i != 0) inst += '.';
      inst += seg_to_string(ref.segs[i]);
    }
    const RefSeg& last = ref.segs.back();
    out.instance = std::move(inst);
    out.port = last.ident;
    if (last.index) {
      const std::int64_t idx = ev.eval_int(*last.index);
      if (idx < 0) fail(ref.loc, "negative endpoint index");
      out.has_index = true;
      out.index = static_cast<std::size_t>(idx);
    }
    return out;
  }

  void apply_connects() {
    for (const auto& pc : connects_) {
      Port& from = lookup_port(pc.from);
      Port& to = lookup_port(pc.to);
      try {
        const std::size_t fi =
            pc.from.has_index ? pc.from.index : from.next_free();
        const std::size_t ti = pc.to.has_index ? pc.to.index : to.next_free();
        netlist_.connect_at(from, fi, to, ti);
      } catch (const liberty::ElaborationError& e) {
        fail(pc.from.loc, e.what());
      }
    }
  }

  [[nodiscard]] Port& lookup_port(const EndpointRef& ref) const {
    // Follow export aliases transitively.
    std::string full = ref.instance + "." + ref.port;
    std::size_t hops = 0;
    while (true) {
      const auto it = aliases_.find(full);
      if (it == aliases_.end()) break;
      full = it->second;
      if (++hops > kMaxDepth) fail(ref.loc, "export alias cycle at " + full);
    }
    const auto dot = full.rfind('.');
    const std::string inst = full.substr(0, dot);
    const std::string port = full.substr(dot + 1);
    Module* m = netlist_.find(inst);
    if (m == nullptr) {
      fail(ref.loc, "no instance named '" + inst + "'");
    }
    try {
      return m->port(port);
    } catch (const liberty::ElaborationError& e) {
      fail(ref.loc, e.what());
    }
  }

  static constexpr std::size_t kMaxDepth = 256;

  const ModuleRegistry& registry_;
  Netlist& netlist_;
  const std::map<std::string, liberty::Value>* overrides_ = nullptr;
  Env env_;
  std::map<std::string, const ModuleDef*> modules_;
  std::map<std::string, std::string> aliases_;
  std::vector<PendingConnect> connects_;
  std::size_t depth_ = 0;
};

}  // namespace

void Elaborator::elaborate(
    const Spec& spec, Netlist& netlist,
    const std::map<std::string, liberty::Value>& overrides) {
  ElabContext ctx(registry_, netlist);
  ctx.run(spec, overrides);
}

void build_from_lss(std::string_view source, const std::string& filename,
                    Netlist& netlist, const ModuleRegistry& registry,
                    const std::map<std::string, liberty::Value>& overrides) {
  const Spec spec = parse(source, filename);
  Elaborator elab(registry);
  elab.elaborate(spec, netlist, overrides);
  netlist.finalize();
}

}  // namespace liberty::core::lss
