// E4 (paper Figure 2(c)): grids-in-a-box — message-passing boards over a
// board-to-board fabric.
//
// Every board DMA-ships a halo block to its ring successor; we sweep board
// count and halo size.  Shape expectation: the exchange pipeline overlaps,
// so completion time grows sub-linearly with board count (all transfers
// are concurrent) and ~linearly with halo size; aggregate bandwidth rises
// with boards until fabric serialization binds.
#include "bench_util.hpp"

using namespace liberty;
using namespace liberty::bench;

namespace {

struct GridResult {
  std::uint64_t cycles = 0;
  bool verified = true;
  double words_per_cycle = 0.0;
};

GridResult run_grid(std::size_t boards, int halo) {
  core::Netlist nl;
  ccl::Fabric ring = ccl::build_ring(nl, "fab", boards);
  std::vector<pcl::MemoryArray*> mems;
  std::vector<mpl::DmaCtl*> dmas;
  for (std::size_t i = 0; i < boards; ++i) {
    auto& mem = nl.make<pcl::MemoryArray>("mem" + std::to_string(i),
                                          core::Params().set("latency", 2));
    auto& dma = nl.make<mpl::DmaCtl>("dma" + std::to_string(i),
                                     core::Params().set("chunk_words", 8));
    auto& ni = nl.make<nil::FabricAdapter>(
        "ni" + std::to_string(i),
        core::Params().set("id", static_cast<std::int64_t>(i)).set("vcs", 1));
    mems.push_back(&mem);
    dmas.push_back(&dma);
    nl.connect(dma.out("mem_req"), mem.in("req"));
    nl.connect(mem.out("resp"), dma.in("mem_resp"));
    nl.connect(dma.out("net_out"), ni.in("msg_in"));
    nl.connect(ni.out("msg_out"), dma.in("net_in"));
    nl.connect_at(ni.out("net_out"), 0, ring.inject_port(i), 0);
    nl.connect_at(ring.eject_port(i), 0, ni.in("net_in"), 0);
  }
  nl.finalize();
  for (std::size_t i = 0; i < boards; ++i) {
    for (int w = 0; w < halo; ++w) {
      mems[i]->poke(1000 + static_cast<std::uint64_t>(w),
                    static_cast<std::int64_t>(i) * 1000 + w);
    }
    dmas[i]->start_transfer(1000, (i + 1) % boards, 2000,
                            static_cast<std::uint64_t>(halo));
  }
  core::Simulator sim(nl, core::SchedulerKind::Static);
  GridResult r;
  while (r.cycles < 1'000'000) {
    bool done = true;
    for (const auto* d : dmas) done = done && d->rx_done() && !d->tx_busy();
    if (done) break;
    sim.step();
    ++r.cycles;
  }
  for (std::size_t i = 0; i < boards; ++i) {
    const auto from = (i + boards - 1) % boards;
    for (int w = 0; w < halo; ++w) {
      if (mems[i]->peek(2000 + static_cast<std::uint64_t>(w)) !=
          static_cast<std::int64_t>(from) * 1000 + w) {
        r.verified = false;
      }
    }
  }
  r.words_per_cycle = static_cast<double>(boards) *
                      static_cast<double>(halo) /
                      static_cast<double>(r.cycles);
  return r;
}

}  // namespace

int main() {
  std::printf("E4: grid-in-a-box halo exchange (Figure 2c), ring fabric\n\n");
  std::printf("board sweep (32-word halo):\n\n");
  Table t({"boards", "cycles", "agg words/cyc", "verified"});
  for (const std::size_t n : {4u, 8u, 16u, 32u, 64u}) {
    const GridResult r = run_grid(n, 32);
    t.row({fmt(static_cast<std::uint64_t>(n)), fmt(r.cycles),
           fmt(r.words_per_cycle, 3), r.verified ? "yes" : "NO"});
  }
  t.print();

  std::printf("\nhalo-size sweep (8 boards):\n\n");
  Table h({"halo words", "cycles", "agg words/cyc"});
  for (const int halo : {8, 32, 128, 512}) {
    const GridResult r = run_grid(8, halo);
    h.row({fmt(static_cast<std::uint64_t>(halo)), fmt(r.cycles),
           fmt(r.words_per_cycle, 3)});
  }
  h.print();
  std::printf("\nshape check: neighbour exchanges overlap, so time is "
              "~flat in board count and ~linear in halo size; aggregate "
              "bandwidth scales with boards.\n");
  return 0;
}
