// Processor models vs the functional emulator: the structural 5-stage
// pipeline, the behavioral SimpleCpu, and the trace-driven OoO core must
// all retire the emulator's architectural results.
#include <gtest/gtest.h>

#include <tuple>

#include "liberty/core/simulator.hpp"
#include "liberty/pcl/pcl.hpp"
#include "liberty/upl/upl.hpp"
#include "test_util.hpp"

namespace {

using liberty::Value;
using liberty::core::Netlist;
using liberty::core::Params;
using liberty::core::SchedulerKind;
using liberty::core::Simulator;
using namespace liberty::upl;
using liberty::test::params;

/// Golden result from the emulator.
struct Golden {
  std::vector<std::int64_t> output;
  std::uint64_t retired = 0;
};

Golden run_emulator(const Program& prog) {
  ArchState st(prog);
  st.run(2'000'000);
  return Golden{st.output(), st.instructions_retired()};
}

/// Assemble a full pipeline + L1 + memory system and run to halt.
struct PipelineRun {
  std::vector<std::int64_t> output;
  std::uint64_t retired = 0;
  std::uint64_t cycles = 0;
  std::uint64_t mispredicts = 0;
  std::uint64_t squashed = 0;
  double dcache_miss_rate = 0.0;
};

PipelineRun run_pipeline(const Program& prog, SchedulerKind kind,
                         const Params& core_params,
                         std::uint64_t max_cycles = 500'000) {
  Netlist nl;
  InorderCore core = build_inorder_core(nl, "cpu", prog, core_params);
  auto& l1 = nl.make<CacheModule>(
      "l1", params({{"sets", 16}, {"ways", 2}, {"line_words", 4},
                    {"hit_latency", 1}, {"mshrs", 2}}));
  auto& mem = nl.make<MemoryCtl>(
      "mem", params({{"latency", 10}, {"line_words", 4}}));
  nl.connect(core.mem->out("dreq"), l1.in("cpu_req"));
  nl.connect(l1.out("cpu_resp"), core.mem->in("dresp"));
  nl.connect(l1.out("mem_req"), mem.in("req"));
  nl.connect(mem.out("resp"), l1.in("mem_resp"));
  nl.finalize();
  for (const auto& [addr, v] : prog.data) mem.poke(addr, v);

  Simulator sim(nl, kind);
  const auto cycles = sim.run(max_cycles);

  PipelineRun out;
  out.output = core.state->output;
  out.retired = core.state->retired;
  out.cycles = cycles;
  out.mispredicts = core.fetch->stats().counter_value("mispredicts");
  out.squashed = core.state->squashed;
  out.dcache_miss_rate = l1.miss_rate();
  EXPECT_TRUE(core.state->halted) << "pipeline did not reach HALT";
  return out;
}

// ---------------------------------------------------------------------------
// Pipeline == emulator, across workloads x schedulers
// ---------------------------------------------------------------------------

struct WorkloadCase {
  const char* name;
  std::string asm_text;
};

std::vector<WorkloadCase> workload_cases() {
  return {
      {"sum", workloads::sum_loop(200)},
      {"fib", workloads::fibonacci(25)},
      {"array", workloads::array_sum(64)},
      {"sieve", workloads::sieve(80)},
      {"matmul", workloads::matmul(4)},
      {"chase", workloads::pointer_chase(32, 8, 100)},
  };
}

class PipelineVsEmulator
    : public ::testing::TestWithParam<std::tuple<int, SchedulerKind>> {};

TEST_P(PipelineVsEmulator, ArchitecturalResultsMatch) {
  const WorkloadCase wc = workload_cases()[static_cast<std::size_t>(
      std::get<0>(GetParam()))];
  const Program prog = assemble(wc.asm_text, wc.name);
  const Golden gold = run_emulator(prog);
  const PipelineRun run =
      run_pipeline(prog, std::get<1>(GetParam()),
                   params({{"predictor", "bimodal"}}));
  EXPECT_EQ(run.output, gold.output) << wc.name;
  EXPECT_EQ(run.retired, gold.retired) << wc.name;
  EXPECT_GE(run.cycles, gold.retired);  // CPI >= 1 without superscalar
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, PipelineVsEmulator,
    ::testing::Combine(::testing::Range(0, 6),
                       ::testing::Values(SchedulerKind::Dynamic,
                                         SchedulerKind::Static)),
    [](const auto& info) {
      return workload_cases()[static_cast<std::size_t>(
                                  std::get<0>(info.param))].name +
             std::string(std::get<1>(info.param) == SchedulerKind::Dynamic
                             ? "_Dynamic"
                             : "_Static");
    });

// ---------------------------------------------------------------------------
// Predictor quality is visible in pipeline timing
// ---------------------------------------------------------------------------

class PredictorSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(PredictorSweep, CorrectResultsAnyPredictor) {
  const Program prog = assemble(workloads::sieve(60));
  const Golden gold = run_emulator(prog);
  const PipelineRun run = run_pipeline(
      prog, SchedulerKind::Dynamic, params({{"predictor", GetParam()}}));
  EXPECT_EQ(run.output, gold.output);
  EXPECT_EQ(run.retired, gold.retired);
}

INSTANTIATE_TEST_SUITE_P(Kinds, PredictorSweep,
                         ::testing::Values("taken", "not_taken", "bimodal",
                                           "gshare", "tournament"));

TEST(PredictorTiming, BimodalBeatsStaticNotTakenOnLoops) {
  // A hot loop branches backward-taken every iteration; static not-taken
  // mispredicts every time, bimodal converges to ~0.
  const Program prog = assemble(workloads::sum_loop(300));
  const PipelineRun nt = run_pipeline(prog, SchedulerKind::Dynamic,
                                      params({{"predictor", "not_taken"}}));
  const PipelineRun bi = run_pipeline(prog, SchedulerKind::Dynamic,
                                      params({{"predictor", "bimodal"}}));
  EXPECT_GT(nt.mispredicts, bi.mispredicts * 10);
  EXPECT_GT(nt.squashed, bi.squashed);
  // In this 1-wide, no-forwarding pipeline the redirect penalty hides
  // behind the scoreboard stall on the loop-carried addi->bge dependence,
  // so cycles may tie — but bimodal must never be slower.
  EXPECT_LE(bi.cycles, nt.cycles);
}

TEST(PipelineTiming, SquashesAccountedAndBounded) {
  const Program prog = assemble(workloads::sieve(60));
  const PipelineRun run = run_pipeline(prog, SchedulerKind::Dynamic,
                                       params({{"predictor", "not_taken"}}));
  EXPECT_GT(run.mispredicts, 0u);
  EXPECT_GT(run.squashed, 0u);
  // At most ~2 wrong-path instructions per mispredict in a 5-stage inorder.
  EXPECT_LE(run.squashed, run.mispredicts * 3);
}

TEST(PipelineTiming, CacheMissesSlowThePointerChase) {
  // Stride 8 with 4-word lines: every hop a new line; tiny cache thrashes.
  const Program prog = assemble(workloads::pointer_chase(64, 8, 400));
  const PipelineRun run = run_pipeline(prog, SchedulerKind::Dynamic,
                                       params({{"predictor", "bimodal"}}));
  EXPECT_GT(run.dcache_miss_rate, 0.1);
  // Contrast: unit-stride array sum mostly hits.
  const Program prog2 = assemble(workloads::array_sum(64));
  const PipelineRun run2 = run_pipeline(prog2, SchedulerKind::Dynamic,
                                        params({{"predictor", "bimodal"}}));
  EXPECT_LT(run2.dcache_miss_rate, run.dcache_miss_rate);
}

// ---------------------------------------------------------------------------
// SimpleCpu
// ---------------------------------------------------------------------------

TEST(SimpleCpuTest, MatchesEmulatorThroughMemoryArray) {
  const Program prog = assemble(workloads::array_sum(32));
  const Golden gold = run_emulator(prog);

  Netlist nl;
  auto& cpu = nl.make<SimpleCpu>("cpu", params({{"stop_on_halt", true}}));
  auto& mem = nl.make<liberty::pcl::MemoryArray>(
      "mem", params({{"latency", 2}, {"mshrs", 2}}));
  nl.connect(cpu.out("mem_req"), mem.in("req"));
  nl.connect(mem.out("resp"), cpu.in("mem_resp"));
  nl.finalize();
  cpu.set_program(prog);
  for (const auto& [addr, v] : prog.data) mem.poke(addr, v);

  Simulator sim(nl);
  sim.run(200'000);
  EXPECT_TRUE(cpu.halted());
  EXPECT_EQ(cpu.output(), gold.output);
  EXPECT_EQ(cpu.retired(), gold.retired);
}

TEST(SimpleCpuTest, MmioBypassesMemory) {
  const Program prog = assemble(R"(
    li r1, 4096
    lw r2, 0(r1)      ; device read
    addi r2, r2, 1
    sw r2, 1(r1)      ; device write
    out r2
    halt
  )");
  Netlist nl;
  auto& cpu = nl.make<SimpleCpu>("cpu", params({{"stop_on_halt", true}}));
  nl.finalize();
  cpu.set_program(prog);
  std::int64_t written = 0;
  cpu.map_mmio(
      4096, 16, [](std::uint64_t) { return std::int64_t{41}; },
      [&written](std::uint64_t, std::int64_t v) { written = v; });
  Simulator sim(nl);
  sim.run(100);
  EXPECT_EQ(cpu.output().at(0), 42);
  EXPECT_EQ(written, 42);
}

// ---------------------------------------------------------------------------
// OoO core
// ---------------------------------------------------------------------------

TEST(OoOCoreTest, RetiresEverythingWithCorrectOutput) {
  const Program prog = assemble(workloads::fibonacci(30));
  const Golden gold = run_emulator(prog);
  Netlist nl;
  auto& core = nl.make<OoOCore>("ooo", Params());
  core.set_program(prog);  // must precede finalize(): init() builds the trace
  nl.finalize();
  Simulator sim(nl);
  sim.run(100'000);
  EXPECT_TRUE(core.done());
  EXPECT_EQ(core.output(), gold.output);
  EXPECT_EQ(core.retired(), gold.retired);
}

TEST(OoOCoreTest, WiderWindowRaisesIpc) {
  const Program prog = assemble(workloads::matmul(6));
  auto run_with_window = [&prog](int window) {
    Netlist nl;
    auto& core = nl.make<OoOCore>(
        "ooo", liberty::test::params({{"window", window}, {"rob", 128}}));
    core.set_program(prog);
    nl.finalize();
    Simulator sim(nl);
    sim.run(2'000'000);
    EXPECT_TRUE(core.done());
    return core.ipc();
  };
  const double ipc2 = run_with_window(2);
  const double ipc32 = run_with_window(32);
  EXPECT_GT(ipc32, ipc2);
}

TEST(OoOCoreTest, OutperformsInorderOnIlp) {
  const Program prog = assemble(workloads::matmul(5));
  const Golden gold = run_emulator(prog);

  Netlist nl;
  auto& core = nl.make<OoOCore>("ooo", Params());
  core.set_program(prog);
  nl.finalize();
  Simulator sim(nl);
  sim.run(2'000'000);
  ASSERT_TRUE(core.done());
  EXPECT_EQ(core.output(), gold.output);

  const PipelineRun inorder = run_pipeline(prog, SchedulerKind::Dynamic,
                                           params({{"predictor", "gshare"}}));
  const double inorder_ipc =
      static_cast<double>(inorder.retired) / static_cast<double>(inorder.cycles);
  EXPECT_GT(core.ipc(), inorder_ipc);
}

}  // namespace
