// rack_sim: the flagship rack-scale scenario as a command-line tool
// (docs/scenarios.md).
//
//   rack_sim [options]
//     --cols N / --rows N   mesh geometry (nodes = cols*rows)   [2 / 2]
//     --cores N             coherent cores per node             [2]
//     --no-ooo              drop the per-node behavioral OoO core
//     --ordering sc|tso     memory ordering controller mode     [tso]
//     --vcs N               fabric virtual channels             [2]
//     --link-latency N      mesh link latency                   [1]
//     --iters N             worker read-modify-write iterations [32]
//     --trace FILE          replay a trace file (see docs/scenarios.md);
//                           default: synthetic from --seed/--requests
//     --seed N              synthetic workload seed             [1]
//     --requests N          synthetic requests per node         [4]
//     --cycles N            cycles to simulate                  [20000]
//     --scheduler dyn|static|parallel|compiled|native           [static]
//     --threads N           workers for --scheduler parallel    [0]
//     --opt-level N         elaboration-time optimizer 0..2     [2]
//     --metrics FILE        liberty.metrics JSON (module stats +
//                           scheduler counters + rack.* aggregates)
//     --metrics-csv FILE    same as flat CSV
//     --digest              print trace + state digests for
//                           bit-exactness comparisons
//     --records             print every sink's per-request records
//     --print-spec          print the NetSpec rendering and exit
//     --quiet               suppress the per-module statistics dump
//
// Durability (docs/resilience.md, "Durable checkpoints") — same flags and
// same diagnostic message path as lss_run:
//     --checkpoint-dir DIR  spill checkpoints to DIR and run supervised
//     --checkpoint-every N  spill interval in cycles              [64]
//     --checkpoint-keep K   retention: newest K checkpoint files  [4]
//     --resume              cold-start from the newest valid checkpoint;
//                           corrupt/torn files are listed and skipped
//     --kill-at N           raise(SIGKILL) after cycle N commits
//
// Options also accept --flag=value spelling.  The run always reports
// injected/completed request counts, end-to-end latency percentiles
// (p50/p95/p99), throughput, and the mesh's Orion energy and thermal
// aggregates.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "liberty/core/simulator.hpp"
#include "liberty/gen/compiled_scheduler.hpp"
#include "liberty/gen/native.hpp"
#include "liberty/obs/metrics.hpp"
#include "liberty/opt/optimizer.hpp"
#include "liberty/resil/durable.hpp"
#include "liberty/resil/recovery.hpp"
#include "liberty/resil/watchdog.hpp"
#include "liberty/scenario/rack.hpp"
#include "liberty/scenario/trace_modules.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--cols N] [--rows N] [--cores N] [--no-ooo]\n"
      "       [--ordering sc|tso] [--vcs N] [--link-latency N] [--iters N]\n"
      "       [--trace FILE] [--seed N] [--requests N] [--cycles N]\n"
      "       [--scheduler dyn|static|parallel|compiled|native] [--threads N]\n"
      "       [--opt-level N] [--metrics FILE] [--metrics-csv FILE]\n"
      "       [--digest] [--records] [--print-spec] [--quiet]\n"
      "       [--checkpoint-dir DIR] [--checkpoint-every N]\n"
      "       [--checkpoint-keep K] [--resume] [--kill-at N]\n",
      argv0);
  return 2;
}

/// Nearest-rank percentile of a sorted sample (exact, unlike the
/// bucket-estimated histogram quantiles the module stats export).
double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = std::ceil(q * static_cast<double>(sorted.size()));
  const std::size_t idx =
      std::min(sorted.size() - 1,
               static_cast<std::size_t>(std::max(rank - 1.0, 0.0)));
  return sorted[idx];
}

}  // namespace

int main(int argc, char** argv) {
  liberty::scenario::RackConfig cfg;
  auto kind = liberty::core::SchedulerKind::Static;
  unsigned threads = 0;
  int opt_level = 2;
  std::string trace_path;
  std::string metrics_path;
  std::string metrics_csv_path;
  bool want_digest = false;
  bool want_records = false;
  bool print_spec = false;
  bool quiet = false;
  std::string checkpoint_dir;
  std::uint64_t checkpoint_every = 64;
  std::uint64_t checkpoint_keep = 4;
  bool want_resume = false;
  std::uint64_t kill_at = 0;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string inline_value;
    bool has_inline = false;
    if (arg.rfind("--", 0) == 0) {
      if (const auto eq = arg.find('='); eq != std::string::npos) {
        inline_value = arg.substr(eq + 1);
        arg.resize(eq);
        has_inline = true;
      }
    }
    auto next = [&]() -> const char* {
      if (has_inline) return inline_value.c_str();
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--cols") {
      cfg.mesh_cols = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--rows") {
      cfg.mesh_rows = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--cores") {
      cfg.cores = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--no-ooo") {
      cfg.with_ooo = false;
    } else if (arg == "--ordering") {
      cfg.ordering = next();
    } else if (arg == "--vcs") {
      cfg.vcs = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--link-latency") {
      cfg.link_latency =
          static_cast<std::int64_t>(std::strtoll(next(), nullptr, 10));
    } else if (arg == "--iters") {
      cfg.worker_iters = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--trace") {
      trace_path = next();
    } else if (arg == "--seed") {
      cfg.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--requests") {
      cfg.requests_per_node = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--cycles") {
      cfg.cycles = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--scheduler") {
      try {
        kind = liberty::core::scheduler_kind_from_name(next());
      } catch (const liberty::Error& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
      }
    } else if (arg == "--threads") {
      threads = static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--opt-level") {
      opt_level = static_cast<int>(std::strtol(next(), nullptr, 10));
      if (opt_level < 0 || opt_level > 2) return usage(argv[0]);
    } else if (arg == "--metrics") {
      metrics_path = next();
    } else if (arg == "--metrics-csv") {
      metrics_csv_path = next();
    } else if (arg == "--digest") {
      want_digest = true;
    } else if (arg == "--records") {
      want_records = true;
    } else if (arg == "--print-spec") {
      print_spec = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--checkpoint-dir") {
      checkpoint_dir = next();
    } else if (arg == "--checkpoint-every") {
      checkpoint_every = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--checkpoint-keep") {
      checkpoint_keep = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--resume") {
      want_resume = true;
    } else if (arg == "--kill-at") {
      kill_at = std::strtoull(next(), nullptr, 10);
    } else {
      return usage(argv[0]);
    }
  }
  if ((want_resume || kill_at != 0) && checkpoint_dir.empty()) {
    std::fprintf(stderr,
                 "error: --resume/--kill-at require --checkpoint-dir\n");
    return 2;
  }

  try {
    if (!trace_path.empty()) {
      std::ifstream in(trace_path, std::ios::binary);
      if (!in.good()) {
        std::fprintf(stderr, "error: cannot read %s\n", trace_path.c_str());
        return 1;
      }
      std::ostringstream text;
      text << in.rdbuf();
      cfg.trace = text.str();
    }

    liberty::core::ModuleRegistry registry;
    liberty::scenario::register_rack_libraries(registry);
    liberty::gen::ensure_registered();

    const liberty::testing::NetSpec spec =
        liberty::scenario::rack_netspec(cfg);
    if (print_spec) {
      std::fputs(spec.render().c_str(), stdout);
      return 0;
    }

    liberty::core::Netlist netlist;
    spec.build(netlist, registry);
    const liberty::opt::OptReport rep = liberty::opt::optimize(
        netlist, liberty::opt::OptOptions::for_level(opt_level));
    if (!quiet) std::printf("%s\n", rep.summary().c_str());

    // Durable mode routes through the DurableSupervisor (spill + resume +
    // --kill-at); otherwise a bare simulator runs the scenario.  Both end
    // with the netlist carrying the same module state, so the aggregate
    // reporting below is shared.
    std::unique_ptr<liberty::core::Simulator> sim_owner;
    std::unique_ptr<liberty::resil::DurableSupervisor> sup;
    std::unique_ptr<liberty::resil::TraceRecorder> recorder;
    std::uint64_t ran = 0;
    std::uint64_t trace_digest = 0;
    std::uint64_t state_digest = 0;
    if (!checkpoint_dir.empty()) {
      liberty::resil::SupervisorConfig scfg;
      scfg.scheduler = kind;
      scfg.threads = threads;
      scfg.checkpoint_every = checkpoint_every;
      scfg.policy = liberty::resil::RecoveryPolicy::Abort;
      liberty::resil::DurableConfig dcfg;
      dcfg.dir = checkpoint_dir;
      dcfg.keep_last = checkpoint_keep;
      dcfg.resume = want_resume;
      dcfg.aux_seed = cfg.seed;
      dcfg.kill_at = kill_at;
      sup = std::make_unique<liberty::resil::DurableSupervisor>(netlist, scfg,
                                                                dcfg);
      const liberty::resil::RecoveryReport rrep = sup->run(cfg.cycles);
      for (const std::string& ev : rrep.events) {
        std::fprintf(stderr, "recovery: %s\n", ev.c_str());
      }
      if (!rrep.completed) {
        std::fprintf(stderr, "error: %s\n", rrep.error.c_str());
        return 1;
      }
      ran = rrep.cycles;
      trace_digest = rrep.trace_digest();
      state_digest = rrep.state_digest;
    } else {
      sim_owner =
          std::make_unique<liberty::core::Simulator>(netlist, kind, threads);
      if (want_digest) {
        recorder = std::make_unique<liberty::resil::TraceRecorder>(netlist);
        sim_owner->set_probe(recorder.get());
      }
      ran = sim_owner->run(cfg.cycles);
      if (want_digest) {
        trace_digest = liberty::resil::fold_trace(recorder->hashes());
        state_digest = sim_owner->snapshot().digest();
      }
    }

    // Rack-level aggregates from the trace endpoints.
    std::uint64_t injected = 0;
    std::vector<double> latencies;
    for (std::size_t n = 0; n < cfg.nodes(); ++n) {
      const std::string base = "n" + std::to_string(n);
      if (const auto* src =
              dynamic_cast<const liberty::scenario::TraceSource*>(
                  netlist.find(base + ".src"))) {
        injected += src->injected();
      }
      const auto* sink = dynamic_cast<const liberty::scenario::TraceSink*>(
          netlist.find(base + ".sink"));
      if (sink == nullptr) continue;
      if (want_records) std::fputs(sink->render_records().c_str(), stdout);
      for (const auto& rec : sink->records()) {
        latencies.push_back(rec.done >= rec.born
                                ? static_cast<double>(rec.done - rec.born)
                                : 0.0);
      }
    }
    std::sort(latencies.begin(), latencies.end());
    const double p50 = percentile(latencies, 0.50);
    const double p95 = percentile(latencies, 0.95);
    const double p99 = percentile(latencies, 0.99);
    const double throughput =
        ran == 0 ? 0.0
                 : static_cast<double>(latencies.size()) * 1000.0 /
                       static_cast<double>(ran);
    const liberty::scenario::RackPowerReport power =
        liberty::scenario::rack_power_report(netlist, cfg);

    std::printf(
        "%s: %zu instances, %llu cycles simulated\n"
        "requests: injected=%llu completed=%zu\n"
        "latency cycles: p50=%.0f p95=%.0f p99=%.0f\n"
        "throughput: %.3f requests/kcycle\n"
        "mesh energy: dynamic=%.1fpJ leakage=%.1fpJ total=%.1fpJ\n"
        "mesh thermal: peak=%.2fC end=%.2fC\n",
        cfg.tag().c_str(), netlist.module_count(),
        static_cast<unsigned long long>(ran),
        static_cast<unsigned long long>(injected), latencies.size(), p50, p95,
        p99, throughput, power.router_dynamic_pj, power.router_leakage_pj,
        power.router_total_pj, power.peak_temperature_c,
        power.max_temperature_c);

    if (want_digest) {
      std::printf("digest: trace=%016llx state=%016llx cycles=%llu\n",
                  static_cast<unsigned long long>(trace_digest),
                  static_cast<unsigned long long>(state_digest),
                  static_cast<unsigned long long>(ran));
    }

    if (!metrics_path.empty() || !metrics_csv_path.empty()) {
      liberty::obs::MetricsRegistry reg;
      reg.collect_modules(netlist);
      liberty::core::Simulator* live_sim =
          sup != nullptr ? sup->simulator() : sim_owner.get();
      if (live_sim != nullptr) reg.collect_scheduler(live_sim->scheduler());
      if (sup != nullptr) sup->export_metrics(reg);
      liberty::gen::export_native_metrics(reg);
      reg.add_counter("rack.requests_injected", injected);
      reg.add_counter("rack.requests_completed", latencies.size());
      reg.add_scalar("rack.throughput_rpkc", throughput);
      liberty::obs::MetricsRegistry::Summary lat;
      lat.count = latencies.size();
      if (!latencies.empty()) {
        double sum = 0.0;
        for (const double l : latencies) sum += l;
        lat.mean = sum / static_cast<double>(latencies.size());
        lat.min = latencies.front();
        lat.max = latencies.back();
      }
      lat.has_quantiles = true;
      lat.p50 = p50;
      lat.p95 = p95;
      lat.p99 = p99;
      reg.add_summary("rack.latency", lat);
      reg.add_scalar("rack.router_dynamic_pj", power.router_dynamic_pj);
      reg.add_scalar("rack.router_leakage_pj", power.router_leakage_pj);
      reg.add_scalar("rack.router_total_pj", power.router_total_pj);
      reg.add_scalar("rack.peak_temperature_c", power.peak_temperature_c);
      liberty::obs::RunMeta meta;
      meta.tool = "rack_sim";
      meta.spec = cfg.tag();
      if (live_sim != nullptr) {
        meta.scheduler = std::string(live_sim->scheduler().kind_name());
      }
      meta.threads = threads;
      meta.seed = cfg.seed;
      meta.cycles = ran;
      meta.git_rev = liberty::obs::current_git_rev();
      if (!metrics_path.empty()) {
        std::ofstream mf(metrics_path);
        reg.write_json(mf, meta);
      }
      if (!metrics_csv_path.empty()) {
        std::ofstream mf(metrics_csv_path);
        reg.write_csv(mf, meta);
      }
    }

    if (!quiet) netlist.dump_stats(std::cout);
    return 0;
  } catch (const liberty::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
