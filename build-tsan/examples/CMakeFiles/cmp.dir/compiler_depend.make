# Empty compiler generated dependencies file for cmp.
# This may be replaced when dependencies are built.
