#include "liberty/core/scheduler.hpp"

#include <algorithm>

#include "liberty/support/error.hpp"

namespace liberty::core {

// ---------------------------------------------------------------------------
// SchedulerBase
// ---------------------------------------------------------------------------

SchedulerBase::SchedulerBase(Netlist& netlist) : netlist_(netlist) {
  if (!netlist.finalized()) {
    throw liberty::ElaborationError(
        "scheduler requires a finalized netlist");
  }
}

SchedulerBase::~SchedulerBase() { install_hooks(nullptr); }

void SchedulerBase::install_hooks(ResolveHooks* h) {
  for (const auto& c : netlist_.connections()) c->set_hooks(h);
}

std::uint64_t SchedulerBase::total_generation() const noexcept {
  std::uint64_t sum = 0;
  for (const auto& c : netlist_.connections()) sum += c->generation();
  return sum;
}

void SchedulerBase::run_cycle(Cycle cycle) {
  for (const auto& m : netlist_.modules()) m->now_ = cycle;
  for (const auto& m : netlist_.modules()) m->cycle_start(cycle);
  resolve_cycle();
  for (const auto& c : netlist_.connections()) {
    if (!c->fully_resolved()) {
      throw liberty::SimulationError("internal: unresolved connection " +
                                     c->describe() + " at end of cycle " +
                                     std::to_string(cycle));
    }
  }
  for (const auto& m : netlist_.modules()) m->end_of_cycle();
  if (!observers_.empty()) {
    for (const auto& c : netlist_.connections()) {
      if (c->transferred()) {
        for (const auto& obs : observers_) obs(*c, cycle);
      }
    }
  }
  for (const auto& c : netlist_.connections()) c->commit_and_reset();
}

// ---------------------------------------------------------------------------
// DynamicScheduler
// ---------------------------------------------------------------------------

DynamicScheduler::DynamicScheduler(Netlist& netlist)
    : SchedulerBase(netlist), queued_(netlist.module_count(), false) {
  install_hooks(this);
}

void DynamicScheduler::enqueue(Module* m) {
  if (m == nullptr || queued_[m->id()]) return;
  queued_[m->id()] = true;
  worklist_.push_back(m);
}

void DynamicScheduler::drain() {
  while (!worklist_.empty()) {
    Module* m = worklist_.front();
    worklist_.pop_front();
    queued_[m->id()] = false;
    call_react(*m);
  }
}

void DynamicScheduler::on_forward_resolved(Connection& c) {
  // Default control: the consumer accepts everything offered.
  if (c.ack_mode() == AckMode::AutoAccept) apply_auto_accept(c);
  enqueue(c.consumer());
}

void DynamicScheduler::on_backward_resolved(Connection& c) {
  enqueue(c.producer());
}

void DynamicScheduler::resolve_cycle() {
  // Every module reacts at least once per cycle so that purely combinational
  // modules run even when none of their inputs produced an event (e.g. all
  // inputs unconnected, reading port defaults).
  for (const auto& m : netlist_.modules()) enqueue(m.get());
  drain();
  // Quiescent: no module will drive anything further without new
  // information.  Default undriven forward channels one at a time (each may
  // unblock reactions downstream), then undriven backward channels.
  for (const auto& c : netlist_.connections()) {
    if (!c->forward_known()) {
      default_forward(*c);
      drain();
    }
  }
  for (const auto& c : netlist_.connections()) {
    if (!c->ack_known()) {
      default_backward(*c);
      drain();
    }
  }
}

// ---------------------------------------------------------------------------
// StaticScheduler
// ---------------------------------------------------------------------------

StaticScheduler::StaticScheduler(Netlist& netlist) : SchedulerBase(netlist) {
  build_graph();
  compute_sccs();
}

void StaticScheduler::build_graph() {
  const auto& conns = netlist_.connections();
  nodes_.resize(conns.size() * 2);
  succs_.resize(nodes_.size());
  preds_.resize(nodes_.size());

  for (const auto& c : conns) {
    const ChannelId f = forward_channel(c->id());
    const ChannelId b = backward_channel(c->id());
    nodes_[f] = Node{c.get(), ChannelKind::Forward, c->producer()};
    if (c->ack_mode() == AckMode::AutoAccept) {
      nodes_[b] = Node{c.get(), ChannelKind::Backward, nullptr};
    } else {
      nodes_[b] = Node{c.get(), ChannelKind::Backward, c->consumer()};
    }
  }

  auto add_edge = [this](ChannelId from, ChannelId to) {
    succs_[from].push_back(to);
    preds_[to].push_back(from);
  };

  // Kernel-driven acks depend exactly on their own forward channel.
  for (const auto& c : conns) {
    if (c->ack_mode() == AckMode::AutoAccept) {
      add_edge(forward_channel(c->id()), backward_channel(c->id()));
    }
  }

  // Channels of a port, split by direction of observation from the owning
  // module's perspective.
  auto port_channels = [](const Port& p, ChannelKind k) {
    std::vector<ChannelId> out;
    for (std::size_t i = 0; i < p.width(); ++i) {
      if (const Connection* c = p.connection(i)) {
        out.push_back(k == ChannelKind::Forward ? forward_channel(c->id())
                                                : backward_channel(c->id()));
      }
    }
    return out;
  };

  for (const auto& m : netlist_.modules()) {
    Deps deps;
    m->declare_deps(deps);

    // Everything this module can observe (conservative source set).
    std::vector<ChannelId> all_observed;
    for (const auto& p : m->ports()) {
      const auto k = p->dir() == PortDir::In ? ChannelKind::Forward
                                             : ChannelKind::Backward;
      for (ChannelId ch : port_channels(*p, k)) all_observed.push_back(ch);
    }

    for (const auto& p : m->ports()) {
      // The signal group this module drives on port p: forward for outputs,
      // backward (ack) for managed inputs.
      std::vector<ChannelId> driven;
      if (p->dir() == PortDir::Out) {
        driven = port_channels(*p, ChannelKind::Forward);
      } else {
        for (std::size_t i = 0; i < p->width(); ++i) {
          const Connection* c = p->connection(i);
          if (c != nullptr && c->ack_mode() == AckMode::Managed) {
            driven.push_back(backward_channel(c->id()));
          }
        }
      }
      if (driven.empty()) continue;

      const auto it = deps.declared().find(p.get());
      std::vector<ChannelId> sources;
      if (it == deps.declared().end()) {
        sources = all_observed;
      } else {
        for (const SignalRef& ref : it->second) {
          for (ChannelId ch : port_channels(*ref.port, ref.kind)) {
            sources.push_back(ch);
          }
        }
      }
      for (ChannelId s : sources) {
        for (ChannelId d : driven) {
          if (s != d) add_edge(s, d);
        }
      }
    }
  }

  // Deduplicate adjacency lists.
  auto dedupe = [](std::vector<std::vector<ChannelId>>& adj) {
    for (auto& lst : adj) {
      std::sort(lst.begin(), lst.end());
      lst.erase(std::unique(lst.begin(), lst.end()), lst.end());
    }
  };
  dedupe(succs_);
  dedupe(preds_);
}

void StaticScheduler::compute_sccs() {
  // Iterative Tarjan.  SCCs are emitted sinks-first (reverse topological
  // order of the condensation); we reverse at the end.
  const std::size_t n = nodes_.size();
  constexpr std::size_t kUnvisited = static_cast<std::size_t>(-1);
  std::vector<std::size_t> index(n, kUnvisited);
  std::vector<std::size_t> low(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<ChannelId> stack;
  std::size_t next_index = 0;

  struct Frame {
    ChannelId v;
    std::size_t child = 0;
  };
  std::vector<Frame> call_stack;

  for (ChannelId root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    call_stack.push_back({root, 0});
    index[root] = low[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;

    while (!call_stack.empty()) {
      Frame& fr = call_stack.back();
      const ChannelId v = fr.v;
      if (fr.child < succs_[v].size()) {
        const ChannelId w = succs_[v][fr.child++];
        if (index[w] == kUnvisited) {
          index[w] = low[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          call_stack.push_back({w, 0});
        } else if (on_stack[w]) {
          low[v] = std::min(low[v], index[w]);
        }
      } else {
        if (low[v] == index[v]) {
          std::vector<ChannelId> scc;
          while (true) {
            const ChannelId w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            scc.push_back(w);
            if (w == v) break;
          }
          std::sort(scc.begin(), scc.end());
          sccs_.push_back(std::move(scc));
        }
        call_stack.pop_back();
        if (!call_stack.empty()) {
          const ChannelId parent = call_stack.back().v;
          low[parent] = std::min(low[parent], low[v]);
        }
      }
    }
  }
  std::reverse(sccs_.begin(), sccs_.end());

  self_loop_.resize(sccs_.size(), false);
  for (std::size_t i = 0; i < sccs_.size(); ++i) {
    if (sccs_[i].size() == 1) {
      const ChannelId v = sccs_[i][0];
      self_loop_[i] = std::binary_search(succs_[v].begin(), succs_[v].end(), v);
    }
  }
}

std::size_t StaticScheduler::largest_scc() const noexcept {
  std::size_t best = 0;
  for (const auto& s : sccs_) best = std::max(best, s.size());
  return best;
}

bool StaticScheduler::node_resolved(ChannelId id) const {
  const Node& n = nodes_[id];
  return n.kind == ChannelKind::Forward ? n.conn->forward_known()
                                        : n.conn->ack_known();
}

void StaticScheduler::execute_node(ChannelId id) {
  const Node& n = nodes_[id];
  Connection& c = *n.conn;
  if (n.kind == ChannelKind::Forward) {
    if (c.forward_known()) return;
    call_react(*n.driver);
    if (!c.forward_known()) default_forward(c);
  } else {
    if (c.ack_known()) return;
    if (n.driver == nullptr) {
      // AutoAccept: forward is topologically ordered before us, so the
      // offer is known (or was defaulted) by now.
      if (c.forward_known()) apply_auto_accept(c);
    } else {
      call_react(*n.driver);
      if (!c.ack_known()) default_backward(c);
    }
  }
}

void StaticScheduler::run_scc(const std::vector<ChannelId>& group) {
  // Distinct driver modules of the group.
  std::vector<Module*> drivers;
  for (ChannelId ch : group) {
    Module* d = nodes_[ch].driver;
    if (d != nullptr &&
        std::find(drivers.begin(), drivers.end(), d) == drivers.end()) {
      drivers.push_back(d);
    }
  }

  // Channels are defaulted forwards-first so that a gated or auto ack never
  // has to wait on an unknown offer within the group.
  std::vector<ChannelId> order = group;
  std::sort(order.begin(), order.end(), [this](ChannelId a, ChannelId b) {
    const bool af = nodes_[a].kind == ChannelKind::Forward;
    const bool bf = nodes_[b].kind == ChannelKind::Forward;
    if (af != bf) return af;
    return a < b;
  });

  auto group_generation = [this, &group]() {
    std::uint64_t sum = 0;
    for (ChannelId ch : group) sum += nodes_[ch].conn->generation();
    return sum;
  };

  while (true) {
    // React to quiescence within the group.
    while (true) {
      const std::uint64_t before = group_generation();
      for (Module* d : drivers) call_react(*d);
      for (ChannelId ch : group) {
        const Node& n = nodes_[ch];
        if (n.kind == ChannelKind::Backward && n.driver == nullptr &&
            n.conn->forward_known()) {
          apply_auto_accept(*n.conn);
        }
      }
      if (group_generation() == before) break;
    }
    // Default the first still-unresolved channel and go around again.
    ChannelId target = 0;
    bool found = false;
    for (ChannelId ch : order) {
      if (!node_resolved(ch)) {
        target = ch;
        found = true;
        break;
      }
    }
    if (!found) return;
    const Node& n = nodes_[target];
    if (n.kind == ChannelKind::Forward) {
      default_forward(*n.conn);
    } else if (n.driver == nullptr) {
      apply_auto_accept(*n.conn);
    } else {
      default_backward(*n.conn);
    }
  }
}

void StaticScheduler::cleanup_unresolved() {
  // Rare endgame for channels the schedule could not attribute (e.g. a
  // gated ack whose intent was pending on a forward in a later SCC).
  // Mirrors the dynamic scheduler's quiesce-then-default loop globally.
  while (true) {
    bool any = false;
    for (ChannelId ch = 0; ch < nodes_.size(); ++ch) {
      if (!node_resolved(ch)) {
        any = true;
        break;
      }
    }
    if (!any) return;
    while (true) {
      const std::uint64_t before = total_generation();
      for (const auto& m : netlist_.modules()) call_react(*m);
      for (const auto& c : netlist_.connections()) {
        if (c->ack_mode() == AckMode::AutoAccept && c->forward_known()) {
          apply_auto_accept(*c);
        }
      }
      if (total_generation() == before) break;
    }
    for (ChannelId ch = 0; ch < nodes_.size(); ++ch) {
      if (!node_resolved(ch)) {
        execute_node(ch);
        break;
      }
    }
  }
}

void StaticScheduler::resolve_cycle() {
  for (std::size_t i = 0; i < sccs_.size(); ++i) {
    const auto& group = sccs_[i];
    if (group.size() == 1 && !self_loop_[i]) {
      execute_node(group[0]);
    } else {
      run_scc(group);
    }
  }
  cleanup_unresolved();
}

}  // namespace liberty::core
