// E8 (paper §2.3, ref [22]): fixing the model of computation makes the
// specification analyzable — the statically scheduled simulator beats the
// dynamic fixed-point scheduler, and the same analysis levelizes the
// schedule into waves the parallel scheduler runs on a worker pool (see
// docs/scheduling.md).
//
// Shape expectation: static scheduling reduces react() invocations per
// cycle substantially (it calls each handler O(1) times on acyclic
// netlists) and wins wall-clock across netlist types; the parallel
// scheduler matches static's react counts and wins additionally on wide
// netlists when real cores are available (on a single-core host its
// barrier overhead makes it lose — the JSON records whichever is true).
// All schedulers produce identical results (asserted here and across the
// test suite).
//
// Artifact: BENCH_scheduler.json in the working directory, one record per
// (netlist, scheduler) with wall-clock and react-call counts.
#include "bench_util.hpp"

using namespace liberty;
using namespace liberty::bench;

namespace {

struct NetKind {
  const char* name;
  void (*build)(core::Netlist&);
};

void build_chains(core::Netlist& nl) {
  for (int i = 0; i < 64; ++i) {
    auto& src = nl.make<pcl::Source>(
        "s" + std::to_string(i),
        core::Params().set("kind", "counter").set("period", 1));
    auto& q = nl.make<pcl::Queue>("q" + std::to_string(i),
                                  core::Params().set("depth", 4));
    auto& d = nl.make<pcl::Delay>("d" + std::to_string(i),
                                  core::Params().set("latency", 3));
    auto& k = nl.make<pcl::Sink>("k" + std::to_string(i), core::Params());
    nl.connect(src.out("out"), q.in("in"));
    nl.connect(q.out("out"), d.in("in"));
    nl.connect(d.out("out"), k.in("in"));
  }
}

void build_mesh(core::Netlist& nl, std::size_t side) {
  ccl::Fabric mesh = ccl::build_mesh(nl, "mesh", side, side);
  const std::size_t nodes = side * side;
  for (std::size_t i = 0; i < nodes; ++i) {
    auto& g = nl.make<ccl::TrafficGen>(
        "g" + std::to_string(i),
        core::Params().set("id", static_cast<std::int64_t>(i))
            .set("nodes", static_cast<std::int64_t>(nodes))
            .set("rate", 0.15).set("pattern", "uniform").set("seed", 7));
    auto& s = nl.make<ccl::TrafficSink>("k" + std::to_string(i),
                                        core::Params());
    nl.connect_at(g.out("out"), 0, mesh.inject_port(i), 0);
    nl.connect_at(mesh.eject_port(i), 0, s.in("in"), 0);
  }
}

void build_mesh_4x4(core::Netlist& nl) { build_mesh(nl, 4); }
void build_mesh_8x8(core::Netlist& nl) { build_mesh(nl, 8); }

void build_arbiters(core::Netlist& nl) {
  // Combinational-heavy: arbiter trees (lots of react() activity).
  for (int t = 0; t < 8; ++t) {
    auto& arb = nl.make<pcl::Arbiter>("arb" + std::to_string(t),
                                      core::Params());
    auto& sink = nl.make<pcl::Sink>("k" + std::to_string(t), core::Params());
    for (int i = 0; i < 8; ++i) {
      auto& src = nl.make<pcl::Source>(
          "s" + std::to_string(t) + "_" + std::to_string(i),
          core::Params().set("kind", "token").set("period", 2));
      nl.connect(src.out("out"), arb.in("in"));
    }
    nl.connect(arb.out("out"), sink.in("in"));
  }
}

struct Result {
  double wall_s = 0.0;
  double kcps = 0.0;             // kcycles per wall second
  std::uint64_t react_calls = 0;
  double reacts_per_cycle = 0.0;
  std::uint64_t transfers = 0;
  unsigned threads = 0;          // parallel only
  std::uint64_t waves = 0;       // parallel only
  std::uint64_t max_wave_width = 0;
  std::vector<std::pair<std::string, std::uint64_t>> kernel;
};

Result run(void (*build)(core::Netlist&), const SchedulerSpec& spec,
           std::uint64_t cycles) {
  core::Netlist nl;
  build(nl);
  nl.finalize();
  core::Simulator sim(nl, spec.kind, spec.threads);
  Result r;
  r.wall_s = time_seconds([&] { sim.run(cycles); });
  r.kcps = static_cast<double>(cycles) / 1e3 / r.wall_s;
  r.react_calls = sim.scheduler().react_calls();
  r.reacts_per_cycle = static_cast<double>(r.react_calls) /
                       static_cast<double>(cycles);
  for (const auto& c : nl.connections()) r.transfers += c->transfer_count();
  if (auto* par =
          dynamic_cast<core::ParallelScheduler*>(&sim.scheduler())) {
    r.threads = par->threads();
    r.waves = par->wave_count();
    r.max_wave_width = par->max_wave_width();
  }
  r.kernel = kernel_counters(sim.scheduler());
  return r;
}

}  // namespace

int main() {
  std::printf(
      "E8: dynamic vs static vs parallel scheduling (ref [22] optimization)\n\n");
  const NetKind kinds[] = {{"pipelines x64", build_chains},
                           {"mesh 4x4", build_mesh_4x4},
                           {"mesh 8x8", build_mesh_8x8},
                           {"arbiter trees", build_arbiters}};
  constexpr std::uint64_t kCycles = 20'000;
  const auto specs = scheduler_matrix();

  FILE* json_file = std::fopen("BENCH_scheduler.json", "w");
  JsonWriter json(json_file);
  json.begin_object();
  json.field("bench", "scheduler");
  json.field("cycles", kCycles);
  json.begin_array("netlists");

  Table t({"netlist", "dyn kc/s", "static kc/s", "par kc/s", "static/dyn",
           "par/dyn", "dyn react/cyc", "static react/cyc"});
  for (const auto& k : kinds) {
    json.object();
    json.field("name", k.name);
    json.begin_array("schedulers");
    std::vector<Result> results;
    for (const auto& spec : specs) {
      const Result r = run(k.build, spec, kCycles);
      results.push_back(r);
      json.object();
      json.field("name", spec.label);
      json.field("wall_s", r.wall_s);
      json.field("kcycles_per_s", r.kcps);
      json.field("react_calls", r.react_calls);
      json.field("reacts_per_cycle", r.reacts_per_cycle);
      json.field("transfers", r.transfers);
      if (spec.kind == core::SchedulerKind::Parallel) {
        json.field("threads", r.threads);
        json.field("waves", r.waves);
        json.field("max_wave_width", r.max_wave_width);
      }
      emit_kernel_counters(json, r.kernel);
      json.end_object();
    }
    json.end_array();
    json.end_object();

    const Result& dyn = results[0];
    const Result& sta = results[1];
    const Result& par = results[2];
    if (dyn.transfers != sta.transfers || dyn.transfers != par.transfers) {
      std::printf("ERROR: schedulers diverged on %s (%llu / %llu / %llu)\n",
                  k.name, (unsigned long long)dyn.transfers,
                  (unsigned long long)sta.transfers,
                  (unsigned long long)par.transfers);
      std::fclose(json_file);
      return 1;
    }
    t.row({k.name, fmt(dyn.kcps, 1), fmt(sta.kcps, 1), fmt(par.kcps, 1),
           fmt(sta.kcps / dyn.kcps, 2), fmt(par.kcps / dyn.kcps, 2),
           fmt(dyn.reacts_per_cycle, 2), fmt(sta.reacts_per_cycle, 2)});
  }
  json.end_array();
  json.end_object();
  std::fclose(json_file);

  t.print();
  std::printf("\nshape check: identical results; static scheduling reduces "
              "handler invocations and wins wall-clock; parallel adds "
              "speedup only when hardware threads are available.\n"
              "wrote BENCH_scheduler.json\n");
  return 0;
}
