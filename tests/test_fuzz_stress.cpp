// The long differential sweep: 500 fuzzed netlists, each run under the
// dynamic reference plus static, parallel(1,2,8) and compiled candidates —
// and then again with dynamic/static/parallel(2)/compiled at optimizer
// level 2 — requiring bit-identical transfers, state digests, and
// statistics.  Carries the
// `fuzz` CTest label so it can be targeted (or excluded) with `ctest -L
// fuzz` / `ctest -LE fuzz`.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

#include "liberty/ccl/ccl.hpp"
#include "liberty/gen/compiled_scheduler.hpp"
#include "liberty/gen/native.hpp"
#include "liberty/scenario/rack.hpp"
#include "liberty/testing/fuzzer.hpp"
#include "liberty/testing/oracle.hpp"
#include "test_util.hpp"

namespace {

using liberty::core::SchedulerKind;
using liberty::testing::Candidate;

TEST(FuzzStress, FiveHundredSeedsZeroDivergence) {
  liberty::core::ModuleRegistry registry;
  liberty::pcl::register_pcl(registry);
  liberty::ccl::register_ccl(registry);
  const liberty::testing::FuzzConfig cfg;
  liberty::testing::OracleConfig oracle;
  oracle.candidates = {
      Candidate{SchedulerKind::Static, 0},
      Candidate{SchedulerKind::Parallel, 1},
      Candidate{SchedulerKind::Parallel, 2},
      Candidate{SchedulerKind::Parallel, 8},
      Candidate{SchedulerKind::Compiled, 0},
      Candidate{SchedulerKind::Dynamic, 0, /*opt_level=*/2},
      Candidate{SchedulerKind::Static, 0, /*opt_level=*/2},
      Candidate{SchedulerKind::Parallel, 2, /*opt_level=*/2},
      Candidate{SchedulerKind::Compiled, 0, /*opt_level=*/2},
  };
  for (std::uint64_t seed = 1; seed <= 500; ++seed) {
    const liberty::testing::NetSpec spec =
        liberty::testing::generate_netlist(seed, cfg);
    const liberty::testing::OracleResult r =
        liberty::testing::run_oracle(spec, registry, oracle);
    ASSERT_TRUE(r.ok) << "seed " << seed << "\n"
                      << r.report() << spec.render();
  }
}

// The rack family: seeded full-system netlists (every component library at
// once — hosts, NIC firmware cores, coherence planes, the wormhole mesh)
// through the same differential oracle.  Smaller battery than the pcl/ccl
// sweep because each netlist is two orders of magnitude bigger.
TEST(FuzzStress, RackFamilyFiveHundredSeedsZeroDivergence) {
  liberty::core::ModuleRegistry registry;
  liberty::scenario::register_rack_libraries(registry);
  liberty::gen::ensure_registered();
  liberty::testing::OracleConfig oracle;
  oracle.snapshot_every = 256;
  oracle.candidates = {
      Candidate{SchedulerKind::Static, 0},
      Candidate{SchedulerKind::Parallel, 2},
      Candidate{SchedulerKind::Compiled, 0},
      Candidate{SchedulerKind::Static, 0, /*opt_level=*/2},
      Candidate{SchedulerKind::Compiled, 0, /*opt_level=*/2},
  };
  for (std::uint64_t seed = 1; seed <= 500; ++seed) {
    const liberty::testing::NetSpec spec =
        liberty::scenario::fuzz_rack_netspec(seed);
    const liberty::testing::OracleResult r =
        liberty::testing::run_oracle(spec, registry, oracle);
    ASSERT_TRUE(r.ok) << "rack seed " << seed << "\n"
                      << r.report() << spec.render();
  }
}

// Native-codegen slice: 200 fuzzed netlists against the native scheduler
// at -O0 and -O2.  Chains the emitter declines run on the bytecode
// fallback inside the same scheduler, so every generated netlist is a
// valid candidate.  Skips cleanly in LIBERTY_NATIVE_CODEGEN=OFF builds.
TEST(FuzzStress, NativeTwoHundredSeedsZeroDivergence) {
  if (!liberty::gen::native_available()) {
    GTEST_SKIP() << "built with LIBERTY_NATIVE_CODEGEN=OFF";
  }
  liberty::gen::ensure_registered();
  // One shared artifact cache for the whole sweep, and -O0 host compiles:
  // distinct netlist shapes each cost one toolchain invocation, repeats
  // are cache hits.
  char tmpl[] = "/tmp/liberty-native-fuzz-XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  liberty::gen::native_options().cache_dir = tmpl;
  liberty::gen::native_options().backend_opt = 0;

  liberty::core::ModuleRegistry registry;
  liberty::pcl::register_pcl(registry);
  liberty::ccl::register_ccl(registry);
  const liberty::testing::FuzzConfig cfg;
  liberty::testing::OracleConfig oracle;
  oracle.candidates = {
      Candidate{SchedulerKind::Native, 0},
      Candidate{SchedulerKind::Native, 0, /*opt_level=*/2},
  };
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const liberty::testing::NetSpec spec =
        liberty::testing::generate_netlist(seed, cfg);
    const liberty::testing::OracleResult r =
        liberty::testing::run_oracle(spec, registry, oracle);
    if (!r.ok) {
      liberty::gen::native_options() = liberty::gen::NativeOptions{};
      std::filesystem::remove_all(tmpl);
    }
    ASSERT_TRUE(r.ok) << "native seed " << seed << "\n"
                      << r.report() << spec.render();
  }
  liberty::gen::native_options() = liberty::gen::NativeOptions{};
  std::error_code ec;
  std::filesystem::remove_all(tmpl, ec);
}

}  // namespace
