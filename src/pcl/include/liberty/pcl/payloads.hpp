// Domain-independent payload types used by PCL primitives.
#pragma once

#include <cstdint>
#include <string>

#include "liberty/support/value.hpp"

namespace liberty::pcl {

/// Payloads that know which output of a demux/crossbar they want.
/// Domain payloads (ccl::Flit, mpl::CoherenceMsg, ...) implement this so
/// that the *same* routing primitive serves every library — the paper's
/// cross-library reuse claim in miniature.
class Routable {
 public:
  virtual ~Routable() = default;
  [[nodiscard]] virtual std::size_t route_key() const = 0;
};

/// Memory transaction request, the protocol of pcl::MemoryArray.
struct MemReq final : Payload {
  enum class Op : std::uint8_t { Read, Write };

  MemReq(Op op_, std::uint64_t addr_, std::int64_t data_ = 0,
         std::uint64_t tag_ = 0)
      : op(op_), addr(addr_), data(data_), tag(tag_) {}

  Op op;
  std::uint64_t addr;
  std::int64_t data;
  std::uint64_t tag;

  [[nodiscard]] std::string describe() const override {
    return (op == Op::Read ? "rd@" : "wr@") + std::to_string(addr) + "#" +
           std::to_string(tag);
  }
};

/// Memory transaction response.
struct MemResp final : Payload {
  MemResp(std::uint64_t tag_, std::int64_t data_, bool was_write_)
      : tag(tag_), data(data_), was_write(was_write_) {}

  std::uint64_t tag;
  std::int64_t data;
  bool was_write;

  [[nodiscard]] std::string describe() const override {
    return "resp#" + std::to_string(tag) + "=" + std::to_string(data);
  }
};

/// Generic timestamped item: wraps any value with its creation cycle so
/// sinks can measure end-to-end latency without domain knowledge.
struct Stamped final : Payload {
  Stamped(liberty::Value inner_, std::uint64_t born_)
      : inner(std::move(inner_)), born(born_) {}

  liberty::Value inner;
  std::uint64_t born;

  [[nodiscard]] std::string describe() const override {
    return "stamped(" + inner.to_string() + "@" + std::to_string(born) + ")";
  }
};

}  // namespace liberty::pcl
