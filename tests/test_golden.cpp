// Golden-output regression tests for the example LSS specifications.
//
// Each spec is elaborated and simulated for a fixed cycle count under the
// static scheduler; the statistics dump (and, for funnel, the VCD
// waveform) must match the checked-in golden files byte for byte.
//
// Updating goldens after an intentional behaviour change:
//
//   LIBERTY_UPDATE_GOLDEN=1 ctest -R Golden
//
// then review the diff of tests/golden/ like any other code change.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "liberty/ccl/ccl.hpp"
#include "liberty/core/lss/elaborator.hpp"
#include "liberty/core/lss/parser.hpp"
#include "liberty/core/simulator.hpp"
#include "liberty/core/vcd.hpp"
#include "liberty/pcl/pcl.hpp"
#include "liberty/upl/upl.hpp"

#ifndef LIBERTY_REPO_ROOT
#error "LIBERTY_REPO_ROOT must point at the repository checkout"
#endif

namespace {

using liberty::core::Netlist;
using liberty::core::SchedulerKind;
using liberty::core::Simulator;

liberty::core::ModuleRegistry& full_registry() {
  static liberty::core::ModuleRegistry r = [] {
    liberty::core::ModuleRegistry reg;
    liberty::pcl::register_pcl(reg);
    liberty::upl::register_upl(reg);
    liberty::ccl::register_ccl(reg);
    return reg;
  }();
  return r;
}

bool updating() {
  const char* env = std::getenv("LIBERTY_UPDATE_GOLDEN");
  return env != nullptr && env[0] != '\0' && std::string(env) != "0";
}

std::string golden_path(const std::string& leaf) {
  return std::string(LIBERTY_REPO_ROOT) + "/tests/golden/" + leaf;
}

std::string spec_path(const std::string& leaf) {
  return std::string(LIBERTY_REPO_ROOT) + "/examples/specs/" + leaf;
}

void compare_or_update(const std::string& actual, const std::string& leaf) {
  const std::string path = golden_path(leaf);
  if (updating()) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good())
      << path << " is missing; regenerate with LIBERTY_UPDATE_GOLDEN=1";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(actual, expected.str())
      << "output of " << leaf << " drifted from its golden; if the change "
      << "is intentional, rerun with LIBERTY_UPDATE_GOLDEN=1 and review "
      << "the diff";
}

/// Elaborate + run one spec; return the stats dump (and optionally fill
/// `vcd` with the transfer waveform).
std::string run_spec(const std::string& lss_leaf, std::uint64_t cycles,
                     std::string* vcd = nullptr) {
  const auto spec = liberty::core::lss::parse_file(spec_path(lss_leaf));
  Netlist netlist;
  liberty::core::lss::Elaborator elab(full_registry());
  elab.elaborate(spec, netlist);
  netlist.finalize();

  Simulator sim(netlist, SchedulerKind::Static);
  std::ostringstream vcd_stream;
  std::unique_ptr<liberty::core::VcdTracer> tracer;
  if (vcd != nullptr) {
    tracer = std::make_unique<liberty::core::VcdTracer>(netlist, vcd_stream);
    tracer->attach(sim);
  }
  sim.run(cycles);
  if (tracer) {
    tracer->finish();
    *vcd = vcd_stream.str();
  }
  std::ostringstream stats;
  netlist.dump_stats(stats);
  return stats.str();
}

TEST(Golden, FunnelStatsAndVcd) {
  std::string vcd;
  const std::string stats = run_spec("funnel.lss", 300, &vcd);
  compare_or_update(stats, "funnel.stats.txt");
  compare_or_update(vcd, "funnel.vcd");
}

TEST(Golden, BusnetStats) {
  compare_or_update(run_spec("busnet.lss", 300), "busnet.stats.txt");
}

TEST(Golden, CpuStats) {
  compare_or_update(run_spec("cpu.lss", 500), "cpu.stats.txt");
}

}  // namespace
