#include "liberty/core/checkpoint.hpp"

#include <array>
#include <cstring>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "liberty/support/error.hpp"

namespace liberty::core {

// --- byte-level primitives -------------------------------------------------

void ByteWriter::put_real(double x) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(x));
  std::memcpy(&bits, &x, sizeof(bits));
  put_u64(bits);
}

void ByteWriter::put_string(std::string_view s) {
  if (s.size() > 0xffffffffULL) {
    throw liberty::SimulationError("checkpoint string too long");
  }
  put_u32(static_cast<std::uint32_t>(s.size()));
  buf_.append(s.data(), s.size());
}

void ByteWriter::patch_u64(std::size_t at, std::uint64_t x) {
  if (at + 8 > buf_.size()) {
    throw liberty::SimulationError("checkpoint patch out of range");
  }
  for (int i = 0; i < 8; ++i) {
    buf_[at + static_cast<std::size_t>(i)] =
        static_cast<char>((x >> (8 * i)) & 0xffU);
  }
}

std::uint8_t ByteReader::get_u8() {
  if (pos_ >= bytes_.size()) {
    throw liberty::SimulationError("checkpoint underflow at byte " +
                                   std::to_string(pos_));
  }
  return static_cast<std::uint8_t>(bytes_[pos_++]);
}

std::uint64_t ByteReader::get_le(int n) {
  if (remaining() < static_cast<std::size_t>(n)) {
    throw liberty::SimulationError("checkpoint underflow at byte " +
                                   std::to_string(pos_));
  }
  std::uint64_t x = 0;
  for (int i = 0; i < n; ++i) {
    x |= static_cast<std::uint64_t>(
             static_cast<std::uint8_t>(bytes_[pos_ + static_cast<std::size_t>(i)]))
         << (8 * i);
  }
  pos_ += static_cast<std::size_t>(n);
  return x;
}

double ByteReader::get_real() {
  const std::uint64_t bits = get_u64();
  double x = 0.0;
  std::memcpy(&x, &bits, sizeof(x));
  return x;
}

std::string ByteReader::get_string() {
  const std::uint32_t n = get_u32();
  if (remaining() < n) {
    throw liberty::SimulationError("checkpoint string underflow at byte " +
                                   std::to_string(pos_));
  }
  std::string s(bytes_.substr(pos_, n));
  pos_ += n;
  return s;
}

std::uint32_t crc32_bytes(const void* data, std::size_t n,
                          std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1U) != 0 ? 0xedb88320U ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = seed ^ 0xffffffffU;
  const auto* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ p[i]) & 0xffU] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffU;
}

// --- payload codecs --------------------------------------------------------

namespace {

struct Codec {
  PayloadEncoder encode;
  PayloadDecoder decode;
};

struct CodecRegistry {
  std::mutex mu;
  std::unordered_map<std::string, Codec> by_name;
  std::unordered_map<std::type_index, std::string> name_by_type;
};

CodecRegistry& codecs() {
  static CodecRegistry r;
  return r;
}

// Value wire tags (format v1 — append-only).
enum : std::uint8_t {
  kTagToken = 0,
  kTagBool = 1,
  kTagInt = 2,
  kTagReal = 3,
  kTagString = 4,
  kTagPayload = 5,
};

}  // namespace

void register_payload_codec(std::string name, std::type_index type,
                            PayloadEncoder encode, PayloadDecoder decode) {
  CodecRegistry& r = codecs();
  const std::lock_guard<std::mutex> lock(r.mu);
  if (r.by_name.count(name) != 0) return;  // idempotent re-registration
  r.name_by_type.emplace(type, name);
  r.by_name.emplace(std::move(name), Codec{std::move(encode),
                                           std::move(decode)});
}

bool payload_codec_registered(std::string_view name) {
  CodecRegistry& r = codecs();
  const std::lock_guard<std::mutex> lock(r.mu);
  return r.by_name.count(std::string(name)) != 0;
}

void encode_value(ByteWriter& w, const liberty::Value& v) {
  if (v.is_token()) {
    w.put_u8(kTagToken);
  } else if (v.is_bool()) {
    w.put_u8(kTagBool);
    w.put_u8(v.as_bool() ? 1 : 0);
  } else if (v.is_int()) {
    w.put_u8(kTagInt);
    w.put_i64(v.as_int());
  } else if (v.is_real()) {
    w.put_u8(kTagReal);
    w.put_real(v.as_real());
  } else if (v.is_string()) {
    w.put_u8(kTagString);
    w.put_string(v.as_string());
  } else {
    const auto& p =
        std::get<std::shared_ptr<const liberty::Payload>>(v.raw());
    if (p == nullptr) {
      w.put_u8(kTagToken);  // a null payload carries no information
      return;
    }
    std::string name;
    PayloadEncoder encode;
    {
      CodecRegistry& r = codecs();
      const std::lock_guard<std::mutex> lock(r.mu);
      const auto it = r.name_by_type.find(std::type_index(typeid(*p)));
      if (it != r.name_by_type.end()) {
        name = it->second;
        encode = r.by_name.at(name).encode;
      }
    }
    if (name.empty()) {
      throw liberty::SimulationError(
          "no payload codec registered for '" + p->describe() +
          "' — this state cannot be made durable");
    }
    w.put_u8(kTagPayload);
    w.put_string(name);
    encode(*p, w);
  }
}

liberty::Value decode_value(ByteReader& r) {
  switch (r.get_u8()) {
    case kTagToken: return liberty::Value();
    case kTagBool: return liberty::Value(r.get_u8() != 0);
    case kTagInt: return liberty::Value(r.get_i64());
    case kTagReal: return liberty::Value(r.get_real());
    case kTagString: return liberty::Value(r.get_string());
    case kTagPayload: {
      const std::string name = r.get_string();
      PayloadDecoder decode;
      {
        CodecRegistry& reg = codecs();
        const std::lock_guard<std::mutex> lock(reg.mu);
        const auto it = reg.by_name.find(name);
        if (it != reg.by_name.end()) decode = it->second.decode;
      }
      if (!decode) {
        throw liberty::SimulationError("unknown payload codec '" + name +
                                       "' (library not linked?)");
      }
      return decode(r);
    }
    default:
      throw liberty::SimulationError("unknown value tag in checkpoint");
  }
}

// --- checkpoint container --------------------------------------------------
//
// Layout (all little-endian):
//   u32 magic  u32 version  u64 body_len          -- 16-byte prelude
//   body: u64 topology_hash  u64 cycle  u8 stop  u64 aux_seed
//         u64 module_count  { u32 slot_count  slots... }*
//         u64 trace_count   { u64 hash }*
//   u32 crc32 over prelude+body                    -- trailer

std::string serialize_checkpoint(const CheckpointImage& img) {
  ByteWriter w;
  w.put_u32(kCheckpointMagic);
  w.put_u32(kCheckpointVersion);
  w.put_u64(0);  // body_len, backpatched below
  const std::size_t body_start = w.size();
  w.put_u64(img.topology_hash);
  w.put_u64(img.snapshot.cycle);
  w.put_u8(img.snapshot.stop_requested ? 1 : 0);
  w.put_u64(img.aux_seed);
  w.put_u64(img.snapshot.module_state.size());
  for (const auto& slots : img.snapshot.module_state) {
    if (slots.size() > 0xffffffffULL) {
      throw liberty::SimulationError("checkpoint module state too large");
    }
    w.put_u32(static_cast<std::uint32_t>(slots.size()));
    for (const liberty::Value& v : slots) encode_value(w, v);
  }
  w.put_u64(img.trace_hashes.size());
  for (const std::uint64_t h : img.trace_hashes) w.put_u64(h);
  w.patch_u64(8, w.size() - body_start);
  const std::uint32_t crc = crc32_bytes(w.bytes().data(), w.size());
  w.put_u32(crc);
  return std::move(w).take();
}

bool parse_checkpoint(std::string_view bytes, CheckpointImage& out,
                      std::string& why) {
  constexpr std::size_t kPrelude = 16;
  constexpr std::size_t kTrailer = 4;
  if (bytes.size() < kPrelude + kTrailer) {
    why = "truncated: " + std::to_string(bytes.size()) +
          " bytes, header needs " + std::to_string(kPrelude + kTrailer);
    return false;
  }
  try {
    ByteReader r(bytes);
    const std::uint32_t magic = r.get_u32();
    if (magic != kCheckpointMagic) {
      why = "bad magic (not a liberty checkpoint)";
      return false;
    }
    const std::uint32_t version = r.get_u32();
    if (version != kCheckpointVersion) {
      why = "unsupported format version " + std::to_string(version) +
            " (this build reads v" + std::to_string(kCheckpointVersion) + ")";
      return false;
    }
    const std::uint64_t body_len = r.get_u64();
    if (bytes.size() != kPrelude + body_len + kTrailer) {
      why = "torn write: file is " + std::to_string(bytes.size()) +
            " bytes, header declares " +
            std::to_string(kPrelude + body_len + kTrailer);
      return false;
    }
    const std::uint32_t want =
        crc32_bytes(bytes.data(), kPrelude + body_len);
    const std::uint32_t got =
        static_cast<std::uint32_t>(
            static_cast<std::uint8_t>(bytes[kPrelude + body_len])) |
        (static_cast<std::uint32_t>(
             static_cast<std::uint8_t>(bytes[kPrelude + body_len + 1]))
         << 8) |
        (static_cast<std::uint32_t>(
             static_cast<std::uint8_t>(bytes[kPrelude + body_len + 2]))
         << 16) |
        (static_cast<std::uint32_t>(
             static_cast<std::uint8_t>(bytes[kPrelude + body_len + 3]))
         << 24);
    if (want != got) {
      why = "crc mismatch (corrupt or torn write)";
      return false;
    }
    out.topology_hash = r.get_u64();
    out.snapshot.cycle = r.get_u64();
    out.snapshot.stop_requested = r.get_u8() != 0;
    out.aux_seed = r.get_u64();
    const std::uint64_t modules = r.get_u64();
    if (modules > body_len) {  // cheap sanity bound before allocating
      why = "implausible module count";
      return false;
    }
    out.snapshot.module_state.clear();
    out.snapshot.module_state.reserve(modules);
    for (std::uint64_t m = 0; m < modules; ++m) {
      const std::uint32_t slot_count = r.get_u32();
      std::vector<liberty::Value> slots;
      slots.reserve(slot_count);
      for (std::uint32_t s = 0; s < slot_count; ++s) {
        slots.push_back(decode_value(r));
      }
      out.snapshot.module_state.push_back(std::move(slots));
    }
    const std::uint64_t traces = r.get_u64();
    if (traces > body_len) {
      why = "implausible trace-hash count";
      return false;
    }
    out.trace_hashes.clear();
    out.trace_hashes.reserve(traces);
    for (std::uint64_t t = 0; t < traces; ++t) {
      out.trace_hashes.push_back(r.get_u64());
    }
    if (r.pos() != kPrelude + body_len) {
      why = "trailing garbage inside checkpoint body";
      return false;
    }
  } catch (const liberty::Error& e) {
    why = e.what();
    return false;
  }
  why.clear();
  return true;
}

}  // namespace liberty::core
