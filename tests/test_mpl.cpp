// MPL: snooping and directory coherence with real processors, memory
// ordering controllers (SC vs TSO litmus), and DMA message passing.
#include <gtest/gtest.h>

#include "liberty/ccl/ccl.hpp"
#include "liberty/core/simulator.hpp"
#include "liberty/mpl/mpl.hpp"
#include "liberty/nil/fabric_adapter.hpp"
#include "liberty/pcl/pcl.hpp"
#include "liberty/upl/upl.hpp"
#include "test_util.hpp"

namespace {

using liberty::Value;
using liberty::core::Netlist;
using liberty::core::Params;
using liberty::core::SchedulerKind;
using liberty::core::Simulator;
using namespace liberty::mpl;
using namespace liberty::upl;
using liberty::nil::FabricAdapter;
using liberty::test::params;

// ---------------------------------------------------------------------------
// Snooping-bus rig
// ---------------------------------------------------------------------------

struct SnoopRig {
  Netlist nl;
  std::vector<SimpleCpu*> cpus;
  std::vector<SnoopCache*> caches;
  SnoopMemory* memory = nullptr;
  liberty::ccl::Bus* bus = nullptr;
};

void build_snoop_rig(SnoopRig& rig, const std::vector<Program>& programs,
                     OrderingCtl** out_orderings = nullptr,
                     const std::string& ordering_mode = "") {
  const std::size_t n = programs.size();
  rig.bus = &rig.nl.make<liberty::ccl::Bus>("bus", params({{"occupancy", 1}}));
  rig.memory = &rig.nl.make<SnoopMemory>(
      "memory", params({{"line_words", 4}, {"latency", 6}}));
  for (std::size_t i = 0; i < n; ++i) {
    auto& cpu = rig.nl.make<SimpleCpu>("cpu" + std::to_string(i), Params());
    auto& cache = rig.nl.make<SnoopCache>(
        "l1_" + std::to_string(i),
        params({{"id", static_cast<int>(i)}, {"sets", 8}, {"ways", 2},
                {"line_words", 4}}));
    cpu.set_program(programs[i]);
    rig.cpus.push_back(&cpu);
    rig.caches.push_back(&cache);
    if (!ordering_mode.empty()) {
      auto& ord = rig.nl.make<OrderingCtl>(
          "ord" + std::to_string(i),
          params({{"mode", ordering_mode}, {"drain_delay", 20}}));
      if (out_orderings != nullptr) out_orderings[i] = &ord;
      rig.nl.connect(cpu.out("mem_req"), ord.in("cpu_req"));
      rig.nl.connect(ord.out("cpu_resp"), cpu.in("mem_resp"));
      rig.nl.connect(ord.out("mem_req"), cache.in("cpu_req"));
      rig.nl.connect(cache.out("cpu_resp"), ord.in("mem_resp"));
    } else {
      rig.nl.connect(cpu.out("mem_req"), cache.in("cpu_req"));
      rig.nl.connect(cache.out("cpu_resp"), cpu.in("mem_resp"));
    }
    rig.nl.connect(cache.out("bus_out"), rig.bus->in("in"));
    rig.nl.connect(rig.bus->out("out"), cache.in("bus_in"));
  }
  rig.nl.connect(rig.memory->out("bus_out"), rig.bus->in("in"));
  rig.nl.connect(rig.bus->out("out"), rig.memory->in("bus_in"));
  rig.nl.finalize();
}

/// Run until every cpu halts (or the cycle bound trips).
template <typename CpuVec>
std::uint64_t run_until_halted(Simulator& sim, const CpuVec& cpus,
                               std::uint64_t max_cycles) {
  std::uint64_t c = 0;
  while (c < max_cycles) {
    bool all = true;
    for (const auto* cpu : cpus) all = all && cpu->halted();
    if (all) break;
    sim.step();
    ++c;
  }
  return c;
}

class MplSched : public ::testing::TestWithParam<SchedulerKind> {};
INSTANTIATE_TEST_SUITE_P(BothSchedulers, MplSched,
                         ::testing::Values(SchedulerKind::Dynamic,
                                           SchedulerKind::Static),
                         [](const auto& info) {
                           return info.param == SchedulerKind::Dynamic
                                      ? "Dynamic"
                                      : "Static";
                         });

TEST_P(MplSched, SnoopProducerConsumerSharesMemoryCorrectly) {
  SnoopRig rig;
  build_snoop_rig(rig, {assemble(workloads::producer(10, 400)),
                        assemble(workloads::consumer(10, 400))});
  Simulator sim(rig.nl, GetParam());
  const auto cycles = run_until_halted(sim, rig.cpus, 100000);
  ASSERT_TRUE(rig.cpus[0]->halted());
  ASSERT_TRUE(rig.cpus[1]->halted());
  ASSERT_EQ(rig.cpus[1]->output().size(), 1u);
  EXPECT_EQ(rig.cpus[1]->output()[0], 45);  // sum 0..9
  EXPECT_LT(cycles, 100000u);
  // The spin/invalidate dance must have exercised the protocol.
  EXPECT_GT(rig.caches[1]->stats().counter_value("invalidations_rx"), 0u);
}

TEST_P(MplSched, SnoopPingPongCounter) {
  // Two cores alternately increment a shared counter until it reaches 20,
  // using a turn flag: core i may increment when counter % 2 == i.
  auto prog = [](int me) {
    return assemble(
        "  li r10, " + std::to_string(me) + "\n"
        "  li r11, 20\n"
        "loop:\n"
        "  lw r1, 64(r0)\n"       // counter
        "  bge r1, r11, done\n"
        "  rem r2, r1, r0\n"      // placeholder (rem by zero = r1)
        "  andi r2, r1, 1\n"
        "  bne r2, r10, loop\n"   // not my turn
        "  addi r1, r1, 1\n"
        "  sw r1, 64(r0)\n"
        "  j loop\n"
        "done:\n"
        "  lw r1, 64(r0)\n"
        "  out r1\n"
        "  halt\n");
  };
  SnoopRig rig;
  build_snoop_rig(rig, {prog(0), prog(1)});
  Simulator sim(rig.nl, GetParam());
  run_until_halted(sim, rig.cpus, 300000);
  ASSERT_TRUE(rig.cpus[0]->halted());
  ASSERT_TRUE(rig.cpus[1]->halted());
  // Both cores read the counter coherently at exit; memory itself may be
  // stale while the last writer still holds the line in M.
  EXPECT_GE(rig.cpus[0]->output().at(0), 20);
  EXPECT_GE(rig.cpus[1]->output().at(0), 20);
  // Line 64 must have migrated repeatedly.
  EXPECT_GT(rig.caches[0]->stats().counter_value("supplies") +
                rig.caches[1]->stats().counter_value("supplies"),
            5u);
}

TEST(MplSnoop, FourCoresFalseSharingStillCorrect) {
  // Four cores each increment a distinct word of the SAME line N times.
  std::vector<Program> progs;
  for (int i = 0; i < 4; ++i) {
    progs.push_back(assemble(
        "  li r2, 0\n"
        "  li r3, 25\n"
        "loop:\n"
        "  lw r1, " + std::to_string(128 + i) + "(r0)\n"
        "  addi r1, r1, 1\n"
        "  sw r1, " + std::to_string(128 + i) + "(r0)\n"
        "  addi r2, r2, 1\n"
        "  blt r2, r3, loop\n"
        "  lw r1, " + std::to_string(128 + i) + "(r0)\n"
        "  out r1\n"
        "  halt\n"));
  }
  SnoopRig rig;
  build_snoop_rig(rig, progs);
  Simulator sim(rig.nl);
  run_until_halted(sim, rig.cpus, 400000);
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(rig.cpus[i]->halted());
    // Only core i writes word i, so a coherent final read is exactly 25;
    // the memory image itself may lag while a cache holds the line in M.
    ASSERT_EQ(rig.cpus[i]->output().size(), 1u);
    EXPECT_EQ(rig.cpus[i]->output()[0], 25) << "word " << i;
  }
}

// ---------------------------------------------------------------------------
// Memory ordering: Dekker litmus
// ---------------------------------------------------------------------------

std::pair<std::int64_t, std::int64_t> run_dekker(const std::string& mode) {
  // flag0 at 16, flag1 at 32 (different lines with line_words = 4).  Each
  // core first warms the *other* flag's line into its cache so that the
  // critical load can hit locally — the window in which a TSO store buffer
  // makes the (0, 0) outcome observable.
  const Program p0 = assemble(
      "  lw r9, 32(r0)\n"
      "  li r1, 1\n"
      "  sw r1, 16(r0)\n"
      "  lw r2, 32(r0)\n"
      "  out r2\n"
      "  halt\n");
  const Program p1 = assemble(
      "  lw r9, 16(r0)\n"
      "  li r1, 1\n"
      "  sw r1, 32(r0)\n"
      "  lw r2, 16(r0)\n"
      "  out r2\n"
      "  halt\n");
  SnoopRig rig;
  OrderingCtl* ords[2] = {nullptr, nullptr};
  build_snoop_rig(rig, {p0, p1}, ords, mode);
  Simulator sim(rig.nl);
  run_until_halted(sim, rig.cpus, 50000);
  EXPECT_TRUE(rig.cpus[0]->halted());
  EXPECT_TRUE(rig.cpus[1]->halted());
  return {rig.cpus[0]->output().at(0), rig.cpus[1]->output().at(0)};
}

TEST(MplOrdering, DekkerForbiddenUnderSc) {
  const auto [r0, r1] = run_dekker("sc");
  EXPECT_FALSE(r0 == 0 && r1 == 0)
      << "SC must not allow both loads to miss both stores";
}

TEST(MplOrdering, DekkerObservableUnderTso) {
  const auto [r0, r1] = run_dekker("tso");
  // Symmetric cores with store buffers: both loads bypass the buffered
  // stores and read 0 — the canonical TSO relaxation.
  EXPECT_EQ(r0, 0);
  EXPECT_EQ(r1, 0);
}

TEST(MplOrdering, TsoForwardsOwnStores) {
  // A core must still see its *own* store (store->load forwarding).
  const Program p = assemble(
      "  li r1, 7\n"
      "  sw r1, 16(r0)\n"
      "  lw r2, 16(r0)\n"
      "  out r2\n"
      "  halt\n");
  SnoopRig rig;
  OrderingCtl* ords[1] = {nullptr};
  build_snoop_rig(rig, {p}, ords, "tso");
  Simulator sim(rig.nl);
  run_until_halted(sim, rig.cpus, 10000);
  EXPECT_EQ(rig.cpus[0]->output().at(0), 7);
  EXPECT_GT(ords[0]->stats().counter_value("forwards"), 0u);
}

// ---------------------------------------------------------------------------
// Directory coherence over a mesh
// ---------------------------------------------------------------------------

struct DirRig {
  Netlist nl;
  liberty::ccl::Fabric mesh;
  std::vector<SimpleCpu*> cpus;
  std::vector<DirCache*> caches;
  DirectoryCtl* dir = nullptr;
};

void build_dir_rig(DirRig& rig, const std::vector<Program>& programs,
                   std::size_t home_node) {
  rig.mesh = liberty::ccl::build_mesh(rig.nl, "mesh", 2, 2);
  for (std::size_t i = 0; i < programs.size(); ++i) {
    auto& cpu = rig.nl.make<SimpleCpu>("cpu" + std::to_string(i), Params());
    auto& cache = rig.nl.make<DirCache>(
        "l1_" + std::to_string(i),
        params({{"id", static_cast<int>(i)}, {"sets", 8}, {"ways", 2},
                {"line_words", 4},
                {"home0", static_cast<int>(home_node)}}));
    auto& ni = rig.nl.make<FabricAdapter>(
        "ni" + std::to_string(i),
        params({{"id", static_cast<int>(i)}, {"vcs", 1}}));
    cpu.set_program(programs[i]);
    rig.cpus.push_back(&cpu);
    rig.caches.push_back(&cache);
    rig.nl.connect(cpu.out("mem_req"), cache.in("cpu_req"));
    rig.nl.connect(cache.out("cpu_resp"), cpu.in("mem_resp"));
    rig.nl.connect(cache.out("msg_out"), ni.in("msg_in"));
    rig.nl.connect(ni.out("msg_out"), cache.in("msg_in"));
    rig.nl.connect_at(ni.out("net_out"), 0, rig.mesh.inject_port(i), 0);
    rig.nl.connect_at(rig.mesh.eject_port(i), 0, ni.in("net_in"), 0);
  }
  rig.dir = &rig.nl.make<DirectoryCtl>(
      "dir", params({{"id", static_cast<int>(home_node)},
                     {"home0", static_cast<int>(home_node)},
                     {"line_words", 4}, {"latency", 6}}));
  auto& ni = rig.nl.make<FabricAdapter>(
      "ni_dir",
      params({{"id", static_cast<int>(home_node)}, {"vcs", 1}}));
  rig.nl.connect(rig.dir->out("msg_out"), ni.in("msg_in"));
  rig.nl.connect(ni.out("msg_out"), rig.dir->in("msg_in"));
  rig.nl.connect_at(ni.out("net_out"), 0, rig.mesh.inject_port(home_node), 0);
  rig.nl.connect_at(rig.mesh.eject_port(home_node), 0, ni.in("net_in"), 0);
  rig.nl.finalize();
}

TEST_P(MplSched, DirectoryProducerConsumerOverMesh) {
  DirRig rig;
  build_dir_rig(rig, {assemble(workloads::producer(10, 400)),
                      assemble(workloads::consumer(10, 400))},
                /*home_node=*/3);
  Simulator sim(rig.nl, GetParam());
  const auto cycles = run_until_halted(sim, rig.cpus, 300000);
  ASSERT_TRUE(rig.cpus[0]->halted());
  ASSERT_TRUE(rig.cpus[1]->halted());
  EXPECT_EQ(rig.cpus[1]->output().at(0), 45);
  EXPECT_LT(cycles, 300000u);
  EXPECT_GT(rig.dir->stats().counter_value("invs"), 0u);
  EXPECT_GT(rig.dir->stats().counter_value("fetches"), 0u);
}

TEST(MplDirectory, WritebackOnEvictionReachesHome) {
  // One core writes many distinct lines (more than the cache holds) and
  // halts; dirty evictions must land in the directory's memory.
  const Program p = assemble(
      "  li r1, 0\n"
      "  li r2, 40\n"
      "loop:\n"
      "  slli r3, r1, 2\n"        // addr = i * 4 (one word per line)
      "  addi r4, r1, 1000\n"
      "  sw r4, 0(r3)\n"
      "  addi r1, r1, 1\n"
      "  blt r1, r2, loop\n"
      "  halt\n");
  DirRig rig;
  build_dir_rig(rig, {p}, 3);
  Simulator sim(rig.nl);
  run_until_halted(sim, rig.cpus, 300000);
  ASSERT_TRUE(rig.cpus[0]->halted());
  EXPECT_GT(rig.caches[0]->stats().counter_value("writebacks"), 0u);
  // Spot-check some values that must have been written back (cache holds
  // 16 lines; the first lines written were evicted).
  std::uint64_t written_back = 0;
  for (std::uint64_t i = 0; i < 40; ++i) {
    if (rig.dir->peek(i * 4) == static_cast<std::int64_t>(i) + 1000) {
      ++written_back;
    }
  }
  EXPECT_GE(written_back, 20u);
}

// ---------------------------------------------------------------------------
// DMA message passing
// ---------------------------------------------------------------------------

TEST_P(MplSched, DmaTransfersMemoryBetweenNodes) {
  Netlist nl;
  auto& mem_a = nl.make<liberty::pcl::MemoryArray>(
      "mem_a", params({{"latency", 2}}));
  auto& mem_b = nl.make<liberty::pcl::MemoryArray>(
      "mem_b", params({{"latency", 2}}));
  auto& dma_a = nl.make<DmaCtl>("dma_a", params({{"chunk_words", 4}}));
  auto& dma_b = nl.make<DmaCtl>("dma_b", params({{"chunk_words", 4}}));
  nl.connect(dma_a.out("mem_req"), mem_a.in("req"));
  nl.connect(mem_a.out("resp"), dma_a.in("mem_resp"));
  nl.connect(dma_b.out("mem_req"), mem_b.in("req"));
  nl.connect(mem_b.out("resp"), dma_b.in("mem_resp"));
  nl.connect(dma_a.out("net_out"), dma_b.in("net_in"));
  nl.connect(dma_b.out("net_out"), dma_a.in("net_in"));
  nl.finalize();

  for (int i = 0; i < 10; ++i) {
    mem_a.poke(100 + static_cast<std::uint64_t>(i), i * 11);
  }
  dma_a.start_transfer(100, /*dst_node=*/1, 200, 10);

  Simulator sim(nl, GetParam());
  for (int i = 0; i < 5000 && !dma_b.rx_done(); ++i) sim.step();
  ASSERT_TRUE(dma_b.rx_done());
  EXPECT_FALSE(dma_a.tx_busy());
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(mem_b.peek(200 + static_cast<std::uint64_t>(i)), i * 11);
  }
  EXPECT_EQ(dma_b.rx_words(), 10u);
}

TEST(MplDma, MmioRegisterInterfaceDrivesTransfer) {
  Netlist nl;
  auto& mem_a = nl.make<liberty::pcl::MemoryArray>(
      "mem_a", params({{"latency", 1}}));
  auto& mem_b = nl.make<liberty::pcl::MemoryArray>(
      "mem_b", params({{"latency", 1}}));
  auto& dma_a = nl.make<DmaCtl>("dma_a", Params());
  auto& dma_b = nl.make<DmaCtl>("dma_b", Params());
  nl.connect(dma_a.out("mem_req"), mem_a.in("req"));
  nl.connect(mem_a.out("resp"), dma_a.in("mem_resp"));
  nl.connect(dma_b.out("mem_req"), mem_b.in("req"));
  nl.connect(mem_b.out("resp"), dma_b.in("mem_resp"));
  nl.connect(dma_a.out("net_out"), dma_b.in("net_in"));
  nl.connect(dma_b.out("net_out"), dma_a.in("net_in"));
  nl.finalize();

  mem_a.poke(50, 777);
  // Program through the register block the way firmware would.
  dma_a.mmio_write(0, 50);   // src
  dma_a.mmio_write(1, 1);    // dst node
  dma_a.mmio_write(2, 60);   // dst addr
  dma_a.mmio_write(3, 1);    // length
  dma_a.mmio_write(4, 1);    // go
  EXPECT_EQ(dma_a.mmio_read(4), 1);  // busy

  Simulator sim(nl);
  for (int i = 0; i < 1000 && dma_b.mmio_read(6) == 0; ++i) sim.step();
  EXPECT_EQ(dma_b.mmio_read(6), 1);
  EXPECT_EQ(mem_b.peek(60), 777);
  dma_b.mmio_write(6, 0);  // clear
  EXPECT_EQ(dma_b.mmio_read(6), 0);
}

}  // namespace
