// CycleProfiler: the KernelProbe implementation that turns the kernel's
// raw timing callbacks into attributed aggregates.
//
// The kernel only times (steady_clock reads around phases, waves, lanes
// and individual react() calls — see liberty/core/probe.hpp); this class
// decides what those samples *mean*:
//
//   per phase     wall seconds and invocation count for each SchedPhase
//                 (cycle_start, resolve, update, commit)
//   per module    react() invocations and attributed seconds, indexed by
//                 ModuleId (delivered pre-aggregated via on_module_batch)
//   per wave      dispatched-wave count, total cluster occupancy, and
//                 summed wave wall time (ParallelScheduler only)
//   per lane      busy seconds per worker lane; idle time is derived as
//                 (lane count x wave wall) - busy
//
// A profiler may chain to a *sink* — another KernelProbe (in practice
// ChromeTraceWriter) that receives the cycle/phase/wave/lane events for
// streaming export.  on_module_batch is NOT forwarded: batches arrive
// from worker threads under the pool mutex, and sinks are main-thread
// writers.  All other callbacks are serialized by the kernel's contract.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "liberty/core/probe.hpp"

namespace liberty::obs {

class CycleProfiler : public liberty::core::KernelProbe {
 public:
  struct PhaseTotals {
    double seconds = 0.0;
    std::uint64_t count = 0;
  };
  struct LaneTotals {
    double busy_seconds = 0.0;
    std::uint64_t waves = 0;
  };

  /// Chain a downstream probe that receives cycle/phase/wave/lane events
  /// (nullptr to unchain).  The sink must only be swapped while no
  /// simulation is running.
  void set_sink(liberty::core::KernelProbe* sink) noexcept { sink_ = sink; }

  // KernelProbe ------------------------------------------------------------
  void on_cycle_begin(liberty::core::Cycle c) override;
  void on_cycle_end(liberty::core::Cycle c) override;
  void on_phase(liberty::core::SchedPhase phase, liberty::core::Cycle c,
                double seconds) override;
  void on_wave(liberty::core::Cycle c, std::size_t wave, std::size_t clusters,
               double seconds) override;
  void on_lane(liberty::core::Cycle c, std::size_t wave, unsigned lane,
               double busy_seconds) override;
  void on_module_batch(const std::uint64_t* reacts, const double* seconds,
                       std::size_t n) override;

  // Aggregates -------------------------------------------------------------
  [[nodiscard]] std::uint64_t cycles() const noexcept { return cycles_; }
  [[nodiscard]] const std::array<PhaseTotals,
                                 liberty::core::kSchedPhaseCount>&
  phases() const noexcept {
    return phases_;
  }
  /// Sum of all phase wall seconds (== profiled run_cycle wall time).
  [[nodiscard]] double total_seconds() const noexcept;

  [[nodiscard]] const std::vector<std::uint64_t>& module_reacts()
      const noexcept {
    return mod_reacts_;
  }
  [[nodiscard]] const std::vector<double>& module_seconds() const noexcept {
    return mod_seconds_;
  }

  [[nodiscard]] std::uint64_t waves() const noexcept { return waves_; }
  [[nodiscard]] std::uint64_t wave_clusters() const noexcept {
    return wave_clusters_;
  }
  [[nodiscard]] double wave_seconds() const noexcept { return wave_seconds_; }
  [[nodiscard]] const std::vector<LaneTotals>& lanes() const noexcept {
    return lanes_;
  }
  /// Idle seconds across all lanes: for every dispatched wave each lane is
  /// occupied for the wave's wall time, so idle = waves x wall - busy.
  [[nodiscard]] double lane_idle_seconds() const noexcept;

  void reset();

 private:
  liberty::core::KernelProbe* sink_ = nullptr;

  std::uint64_t cycles_ = 0;
  std::array<PhaseTotals, liberty::core::kSchedPhaseCount> phases_{};
  std::vector<std::uint64_t> mod_reacts_;
  std::vector<double> mod_seconds_;

  std::uint64_t waves_ = 0;
  std::uint64_t wave_clusters_ = 0;
  double wave_seconds_ = 0.0;
  // Wall seconds during which each lane was mobilized (sum of wave wall
  // times), used to derive idle time per lane.
  double lane_wall_seconds_ = 0.0;
  std::vector<LaneTotals> lanes_;
};

}  // namespace liberty::obs
