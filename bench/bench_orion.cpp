// E9 (paper §3.3, Orion): router/link dynamic + leakage power and thermal
// impact versus offered load.
//
// Shape expectations (Orion's published behaviour): dynamic power scales
// ~linearly with accepted traffic above a load-independent leakage floor;
// wider flits cost proportionally more energy; temperature tracks power.
#include "bench_util.hpp"

using namespace liberty;
using namespace liberty::bench;

namespace {

struct PowerPoint {
  double accepted = 0.0;   // flits/node/cycle actually delivered
  double dyn_pj_cycle = 0.0;
  double leak_pj_cycle = 0.0;
  double peak_temp = 0.0;
  double latency = 0.0;
};

PowerPoint run_load(double rate, int flit_bits) {
  constexpr std::size_t kDim = 8;  // 8x8 mesh, as in the Orion paper
  constexpr std::uint64_t kCycles = 4000;
  core::Netlist nl;
  ccl::Fabric mesh = ccl::build_mesh(
      nl, "mesh", kDim, kDim,
      core::Params().set("flit_bits", flit_bits).set("vcs", 2).set("depth",
                                                                   4));
  std::vector<ccl::TrafficSink*> sinks;
  for (std::size_t i = 0; i < kDim * kDim; ++i) {
    auto& g = nl.make<ccl::TrafficGen>(
        "g" + std::to_string(i),
        core::Params().set("id", static_cast<std::int64_t>(i))
            .set("nodes", static_cast<std::int64_t>(kDim * kDim))
            .set("rate", rate).set("pattern", "uniform").set("seed", 21));
    auto& s = nl.make<ccl::TrafficSink>("s" + std::to_string(i),
                                        core::Params());
    sinks.push_back(&s);
    nl.connect_at(g.out("out"), 0, mesh.inject_port(i), 0);
    nl.connect_at(mesh.eject_port(i), 0, s.in("in"), 0);
  }
  nl.finalize();
  core::Simulator sim(nl, core::SchedulerKind::Static);
  sim.run(kCycles);

  PowerPoint p;
  std::uint64_t recv = 0;
  double lat = 0.0;
  for (auto* s : sinks) {
    recv += s->received();
    lat += s->mean_latency() * static_cast<double>(s->received());
  }
  p.accepted = static_cast<double>(recv) /
               static_cast<double>(kDim * kDim) /
               static_cast<double>(kCycles);
  p.latency = recv == 0 ? 0.0 : lat / static_cast<double>(recv);
  const double cycles_total =
      static_cast<double>(kCycles) * static_cast<double>(kDim * kDim);
  p.dyn_pj_cycle = mesh.total_dynamic_pj() / cycles_total;
  p.leak_pj_cycle = mesh.total_leakage_pj() / cycles_total;
  for (const ccl::Router* r : mesh.routers) {
    p.peak_temp = std::max(p.peak_temp, r->thermal().peak());
  }
  return p;
}

}  // namespace

int main() {
  std::printf("E9: Orion power model — 8x8 mesh, uniform traffic\n\n");
  Table t({"offered", "accepted", "dyn pJ/cyc/rtr", "leak pJ/cyc/rtr",
           "peak temp C", "latency"});
  for (const double rate : {0.0, 0.05, 0.1, 0.2, 0.3, 0.45}) {
    const PowerPoint p = run_load(rate, 64);
    t.row({fmt(rate, 2), fmt(p.accepted, 3), fmt(p.dyn_pj_cycle, 2),
           fmt(p.leak_pj_cycle, 2), fmt(p.peak_temp, 1), fmt(p.latency, 1)});
  }
  t.print();

  std::printf("\nflit width scaling at load 0.2:\n\n");
  Table w({"flit bits", "dyn pJ/cyc/rtr", "leak pJ/cyc/rtr"});
  for (const int bits : {32, 64, 128}) {
    const PowerPoint p = run_load(0.2, bits);
    w.row({fmt(static_cast<std::uint64_t>(bits)), fmt(p.dyn_pj_cycle, 2),
           fmt(p.leak_pj_cycle, 2)});
  }
  w.print();
  std::printf("\nshape check: dynamic power rises ~linearly with accepted "
              "load over a constant leakage floor; energy scales with flit "
              "width; temperature tracks power.\n");
  return 0;
}
