file(REMOVE_RECURSE
  "CMakeFiles/sensor_node.dir/sensor_node.cpp.o"
  "CMakeFiles/sensor_node.dir/sensor_node.cpp.o.d"
  "sensor_node"
  "sensor_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensor_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
