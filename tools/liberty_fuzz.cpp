// liberty_fuzz: command-line driver for the differential fuzz harness.
//
// Generates seeded random netlists, runs each under the dynamic reference
// scheduler plus a battery of candidates (static, parallel at several
// thread counts), and reports any divergence down to the exact cycle via
// snapshot/restore bisection.  Every run is reproducible from its seed:
//
//   liberty_fuzz --seed 42                 # one netlist, full oracle
//   liberty_fuzz --seed 1 --count 500      # seeds 1..500
//   liberty_fuzz --seed 7 --print-spec     # show the generated netlist
//   liberty_fuzz --seed 7 --shrink         # reduce a failure to a minimal
//                                          # reproducer before reporting
//   liberty_fuzz --seed 7 --inject-fault static:50:1
//                                          # test the harness itself: corrupt
//                                          # one scheduler and watch the
//                                          # oracle catch and bisect it
//
// Exit status: 0 = all seeds passed, 1 = divergence found, 2 = bad usage.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "liberty/ccl/ccl.hpp"
#include "liberty/core/scheduler.hpp"
#include "liberty/core/simulator.hpp"
#include "liberty/obs/metrics.hpp"
#include "liberty/obs/profiler.hpp"
#include "liberty/obs/trace.hpp"
#include "liberty/pcl/pcl.hpp"
#include "liberty/resil/fault_plan.hpp"
#include "liberty/resil/injector.hpp"
#include "liberty/gen/compiled_scheduler.hpp"
#include "liberty/resil/watchdog.hpp"
#include "liberty/scenario/rack.hpp"
#include "liberty/testing/fuzzer.hpp"
#include "liberty/testing/netspec.hpp"
#include "liberty/testing/oracle.hpp"
#include "liberty/testing/shrink.hpp"

namespace {

constexpr const char* kUsage = R"(usage: liberty_fuzz [options]
  --seed S            first seed (default 1)
  --count N           number of consecutive seeds to run (default 1)
  --family F          netlist family: pcl (default; the pcl/ccl dataflow
                      generator) or rack (full-system rack scenarios from
                      liberty::scenario — hosts, NIC firmware, coherence,
                      mesh; the --no-* / --feedback / --cycles generator
                      knobs do not apply)
  --cycles C          cycle budget per netlist (default 200)
  --snapshot-every K  snapshot interval for the oracle (default 16)
  --feedback P        probability of a feedback ring, 0..1 (default 0.5)
  --no-arbiter        exclude pcl.arbiter from the module mix
  --no-tee            exclude pcl.tee
  --no-crossbar       exclude pcl.crossbar
  --no-mux            exclude pcl.mux
  --no-buffer         exclude pcl.buffer
  --no-ccl            exclude ccl.traffic_gen / ccl.traffic_sink
  --opt-level N       also run each candidate scheduler at optimizer level
                      N (default 2; 0 disables the optimized candidates)
  --print-spec        print each generated netlist before running it
  --shrink            on failure, shrink to a minimal reproducer
  --no-bisect         skip snapshot/restore bisection on divergence
  --inject-fault K:C:N  drop acks under scheduler K (dynamic|static|parallel)
                      from cycle C on connection N (harness self-test; sugar
                      for a one-spec --faults plan restricted to K)
  --faults FILE       inject the liberty.faultplan JSON plan FILE into every
                      oracle simulator
  --fault-matrix      run the resil coverage matrix instead of fuzzing:
                      every fault class injected into a reference pipeline
                      and detected by the watchdog, plus a false-positive
                      sweep over fault-free fuzzed netlists
  --profile FILE      run every oracle simulator with a kernel profiler
                      attached (proving probes cannot perturb results) and
                      write a Chrome trace of the first seed's reference run
  --metrics FILE      as --profile, but write the liberty.metrics JSON dump
                      of the first seed's reference run
  --heartbeat N       print a progress line every N seeds
  --help              this text
)";

struct Options {
  std::uint64_t seed = 1;
  std::uint64_t count = 1;
  liberty::testing::FuzzConfig fuzz;
  liberty::testing::OracleConfig oracle;
  // Owned here; oracle.fault_plan points at it while set.
  std::unique_ptr<liberty::resil::FaultPlan> fault_plan;
  std::string profile_path;
  std::string metrics_path;
  std::uint64_t heartbeat = 0;
  std::string family = "pcl";
  int opt_level = 2;
  bool print_spec = false;
  bool shrink = false;
  bool fault_matrix = false;
};

bool parse_u64(const char* s, std::uint64_t& out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') return false;
  out = v;
  return true;
}

/// K:C:N — the pre-FaultPlan CLI shape, kept for compatibility: a drop_ack
/// spec on connection N from cycle C, restricted to scheduler kind K.
bool parse_fault(const std::string& arg, liberty::resil::FaultSpec& f) {
  const std::size_t c1 = arg.find(':');
  const std::size_t c2 = arg.find(':', c1 == std::string::npos ? c1 : c1 + 1);
  if (c1 == std::string::npos || c2 == std::string::npos) return false;
  f.scheduler = arg.substr(0, c1);
  std::uint64_t cycle = 0;
  std::uint64_t conn = 0;
  if (!parse_u64(arg.substr(c1 + 1, c2 - c1 - 1).c_str(), cycle)) return false;
  if (!parse_u64(arg.substr(c2 + 1).c_str(), conn)) return false;
  if (f.scheduler != "dynamic" && f.scheduler != "static" &&
      f.scheduler != "parallel") {
    return false;
  }
  f.cls = liberty::resil::FaultClass::DropAck;
  f.from_cycle = cycle;
  f.connection = static_cast<liberty::core::ConnId>(conn);
  return true;
}

int parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    // Accept --flag=value as well as --flag value.
    std::string inline_value;
    bool has_inline = false;
    if (a.rfind("--", 0) == 0) {
      if (const auto eq = a.find('='); eq != std::string::npos) {
        inline_value = a.substr(eq + 1);
        a.resize(eq);
        has_inline = true;
      }
    }
    const auto next = [&]() -> const char* {
      if (has_inline) return inline_value.c_str();
      if (i + 1 >= argc) {
        std::cerr << "liberty_fuzz: " << a << " needs a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (a == "--help" || a == "-h") {
      std::cout << kUsage;
      std::exit(0);
    } else if (a == "--seed") {
      const char* v = next();
      if (v == nullptr || !parse_u64(v, opt.seed)) return 2;
    } else if (a == "--count") {
      const char* v = next();
      if (v == nullptr || !parse_u64(v, opt.count)) return 2;
    } else if (a == "--family") {
      const char* v = next();
      if (v == nullptr) return 2;
      opt.family = v;
      if (opt.family != "pcl" && opt.family != "rack") {
        std::cerr << "liberty_fuzz: --family wants pcl or rack\n";
        return 2;
      }
    } else if (a == "--cycles") {
      std::uint64_t c = 0;
      const char* v = next();
      if (v == nullptr || !parse_u64(v, c) || c == 0) return 2;
      opt.fuzz.cycles = static_cast<liberty::core::Cycle>(c);
    } else if (a == "--snapshot-every") {
      std::uint64_t k = 0;
      const char* v = next();
      if (v == nullptr || !parse_u64(v, k) || k == 0) return 2;
      opt.oracle.snapshot_every = static_cast<liberty::core::Cycle>(k);
    } else if (a == "--feedback") {
      const char* v = next();
      if (v == nullptr) return 2;
      opt.fuzz.feedback_prob = std::strtod(v, nullptr);
    } else if (a == "--no-arbiter") {
      opt.fuzz.use_arbiter = false;
    } else if (a == "--no-tee") {
      opt.fuzz.use_tee = false;
    } else if (a == "--no-crossbar") {
      opt.fuzz.use_crossbar = false;
    } else if (a == "--no-mux") {
      opt.fuzz.use_mux = false;
    } else if (a == "--no-buffer") {
      opt.fuzz.use_buffer = false;
    } else if (a == "--no-ccl") {
      opt.fuzz.use_ccl_traffic = false;
    } else if (a == "--opt-level") {
      std::uint64_t level = 0;
      const char* v = next();
      if (v == nullptr || !parse_u64(v, level) || level > 2) return 2;
      opt.opt_level = static_cast<int>(level);
    } else if (a == "--print-spec") {
      opt.print_spec = true;
    } else if (a == "--shrink") {
      opt.shrink = true;
    } else if (a == "--no-bisect") {
      opt.oracle.bisect = false;
    } else if (a == "--inject-fault") {
      liberty::resil::FaultSpec fault;
      const char* v = next();
      if (v == nullptr || !parse_fault(v, fault)) {
        std::cerr << "liberty_fuzz: --inject-fault wants kind:cycle:conn\n";
        return 2;
      }
      if (opt.fault_plan == nullptr) {
        opt.fault_plan = std::make_unique<liberty::resil::FaultPlan>();
      }
      opt.fault_plan->faults.push_back(std::move(fault));
    } else if (a == "--faults") {
      const char* v = next();
      if (v == nullptr) return 2;
      try {
        opt.fault_plan = std::make_unique<liberty::resil::FaultPlan>(
            liberty::resil::FaultPlan::load(v));
      } catch (const std::exception& e) {
        std::cerr << "liberty_fuzz: " << e.what() << "\n";
        return 2;
      }
    } else if (a == "--fault-matrix") {
      opt.fault_matrix = true;
    } else if (a == "--profile") {
      const char* v = next();
      if (v == nullptr) return 2;
      opt.profile_path = v;
      opt.oracle.profile = true;
    } else if (a == "--metrics") {
      const char* v = next();
      if (v == nullptr) return 2;
      opt.metrics_path = v;
      opt.oracle.profile = true;
    } else if (a == "--heartbeat") {
      const char* v = next();
      if (v == nullptr || !parse_u64(v, opt.heartbeat)) return 2;
    } else {
      std::cerr << "liberty_fuzz: unknown option " << a << "\n" << kUsage;
      return 2;
    }
  }
  return 0;
}

/// Instrumented reference (dynamic) run of one spec: writes the --profile
/// trace and/or --metrics dump requested on the command line.
void write_artifacts(const liberty::testing::NetSpec& spec,
                     const liberty::core::ModuleRegistry& registry,
                     std::uint64_t seed, const Options& opt) {
  liberty::core::Netlist netlist;
  spec.build(netlist, registry);
  liberty::core::Simulator sim(netlist,
                               liberty::core::SchedulerKind::Dynamic);
  liberty::obs::CycleProfiler prof;
  std::unique_ptr<liberty::obs::ChromeTraceWriter> trace;
  std::ofstream trace_file;
  if (!opt.profile_path.empty()) {
    trace_file.open(opt.profile_path);
    trace = std::make_unique<liberty::obs::ChromeTraceWriter>(trace_file);
    trace->attach_transfers(sim);
    prof.set_sink(trace.get());
  }
  sim.set_probe(&prof);
  const auto ran = sim.run(spec.cycles);
  if (trace) trace->finish();
  if (!opt.metrics_path.empty()) {
    liberty::obs::MetricsRegistry reg;
    reg.collect_modules(netlist);
    reg.collect_scheduler(sim.scheduler());
    reg.collect_profile(prof, &netlist);
    liberty::obs::RunMeta meta;
    meta.tool = "liberty_fuzz";
    meta.spec = "seed " + std::to_string(seed);
    meta.scheduler = "dynamic";
    meta.seed = seed;
    meta.cycles = ran;
    meta.git_rev = liberty::obs::current_git_rev();
    std::ofstream mf(opt.metrics_path);
    reg.write_json(mf, meta);
  }
}

// --- --fault-matrix: the resil coverage matrix ------------------------------

/// Reference pipeline for the matrix: a period-2 source so the queue
/// alternates between offering and idling — both ack polarities get
/// exercised, which is what makes drop_ack *and* spurious_ack observable.
liberty::testing::NetSpec matrix_spec() {
  using liberty::Value;
  liberty::testing::NetSpec spec;
  spec.cycles = 120;
  liberty::core::Params src;
  src.set("kind", Value(std::string("counter")));
  src.set("period", Value(std::int64_t{2}));
  liberty::core::Params q;
  q.set("depth", Value(std::int64_t{3}));
  spec.modules.push_back({"pcl.source", "src", src});
  spec.modules.push_back({"pcl.queue", "q", q});
  spec.modules.push_back({"pcl.sink", "snk", {}});
  spec.edges.push_back({0, "out", 1, "in"});  // conn 0: src -> q (managed)
  spec.edges.push_back({1, "out", 2, "in"});  // conn 1: q -> snk (auto ack)
  return spec;
}

/// Fault-free reference run of `spec`: the watchdog baseline to diff
/// against.
std::vector<std::vector<std::uint64_t>> record_baseline(
    const liberty::testing::NetSpec& spec,
    const liberty::core::ModuleRegistry& registry) {
  liberty::core::Netlist netlist;
  spec.build(netlist, registry);
  liberty::resil::Watchdog wd;
  wd.record_baseline();
  liberty::core::Simulator sim(netlist, liberty::core::SchedulerKind::Static);
  wd.attach(sim);
  sim.run(spec.cycles);
  return wd.take_baseline();
}

struct MatrixRow {
  bool detected = false;
  std::string via;          // protocol | divergence | handler_fault | ...
  std::string attribution;  // the first diagnostic, formatted
};

MatrixRow run_matrix_case(
    const liberty::testing::NetSpec& spec,
    const liberty::core::ModuleRegistry& registry,
    const std::vector<std::vector<std::uint64_t>>& baseline,
    liberty::resil::FaultClass cls) {
  namespace resil = liberty::resil;
  resil::FaultPlan plan;
  plan.seed = 0xfa;
  resil::FaultSpec f;
  f.cls = cls;
  f.from_cycle = 40;
  if (cls == resil::FaultClass::HandlerThrow) {
    f.module = "q";
  } else if (cls == resil::FaultClass::DropAck ||
             cls == resil::FaultClass::SpuriousAck) {
    f.connection = 1;  // the kernel-owned (AutoAccept) ack
  } else {
    f.connection = 0;  // the managed forward channel
  }
  plan.faults.push_back(std::move(f));

  liberty::core::Netlist netlist;
  spec.build(netlist, registry);
  resil::FaultInjector injector(plan);
  resil::Watchdog wd;
  wd.set_baseline(baseline);
  liberty::core::Simulator sim(netlist, liberty::core::SchedulerKind::Static);
  injector.install(sim);
  wd.attach(sim);
  try {
    sim.run(spec.cycles);
  } catch (const liberty::Error& e) {
    wd.note_kernel_error(e.what(), sim.now() > 0 ? sim.now() - 1 : 0);
  }

  MatrixRow row;
  if (wd.violation_count() > 0) {
    row.detected = true;
    const resil::Diagnostic& d = wd.diagnostics().front();
    row.via = std::string(resil::diagnostic_kind_name(d.kind));
    row.attribution = d.format();
  }
  return row;
}

/// Watchdog violations on a fault-free run of `spec` (must be zero).
std::uint64_t false_positive_count(
    const liberty::testing::NetSpec& spec,
    const liberty::core::ModuleRegistry& registry) {
  auto baseline = record_baseline(spec, registry);
  liberty::core::Netlist netlist;
  spec.build(netlist, registry);
  liberty::resil::Watchdog wd;
  wd.set_baseline(std::move(baseline));
  liberty::core::Simulator sim(netlist, liberty::core::SchedulerKind::Static);
  wd.attach(sim);
  sim.run(spec.cycles);
  return wd.violation_count();
}

int run_fault_matrix(const liberty::core::ModuleRegistry& registry,
                     const Options& opt) {
  namespace resil = liberty::resil;
  const liberty::testing::NetSpec spec = matrix_spec();
  const auto baseline = record_baseline(spec, registry);

  std::size_t detected = 0;
  std::size_t kernel_classes = 0;
  std::cout << "fault-vs-detection coverage matrix (static scheduler, "
            << spec.cycles << " cycles, onset cycle 40):\n";
  for (std::size_t k = 0; k < resil::kFaultClassCount; ++k) {
    const auto cls = static_cast<resil::FaultClass>(k);
    if (resil::is_env_fault(cls)) {
      // Environment faults corrupt the checkpoint path, not a connection —
      // the watchdog has no seam to observe. The durable resume harness
      // (tests/test_durable.cpp) covers their detection.
      std::cout << "  " << resil::fault_class_name(cls)
                << ": N/A (environment fault; covered by durable resume)\n";
      continue;
    }
    ++kernel_classes;
    const MatrixRow row = run_matrix_case(spec, registry, baseline, cls);
    std::cout << "  " << resil::fault_class_name(cls) << ": "
              << (row.detected ? "DETECTED via " + row.via : "MISSED");
    if (row.detected) std::cout << "  (" << row.attribution << ")";
    std::cout << "\n";
    if (row.detected) ++detected;
  }

  // False-positive leg: the watchdog must stay silent on fault-free runs —
  // the matrix pipeline plus a sweep of fuzzed topologies.
  std::uint64_t fp = false_positive_count(spec, registry);
  std::uint64_t clean_runs = 1;
  for (std::uint64_t s = 1; s <= 10; ++s) {
    fp += false_positive_count(
        liberty::testing::generate_netlist(s, opt.fuzz), registry);
    ++clean_runs;
  }
  std::cout << "  false positives on " << clean_runs
            << " fault-free runs: " << fp << "\n";

  const bool ok = detected == kernel_classes && fp == 0;
  std::cout << (ok ? "coverage: " : "COVERAGE FAILURE: ") << detected << "/"
            << kernel_classes << " classes detected, " << fp
            << " false positives\n";
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (const int rc = parse_args(argc, argv, opt); rc != 0) return rc;

  liberty::core::ModuleRegistry registry;
  if (opt.family == "rack") {
    // Full-system netlists include compiled-scheduler candidates, so the
    // gen backend must be linked in and registered up front.
    liberty::scenario::register_rack_libraries(registry);
    liberty::gen::ensure_registered();
  } else {
    liberty::pcl::register_pcl(registry);
    liberty::ccl::register_ccl(registry);
  }

  if (opt.fault_matrix) return run_fault_matrix(registry, opt);
  opt.oracle.fault_plan = opt.fault_plan.get();

  // Candidate battery: every scheduler unoptimized, then again at
  // --opt-level so each fuzzed netlist also proves the elaboration-time
  // optimizer sound (bit-identical transfers, digests, and stats).  The
  // fault-injection self-test keeps the battery unoptimized so exactly the
  // targeted scheduler kind diverges and blame stays unambiguous.
  {
    using liberty::core::SchedulerKind;
    using liberty::testing::Candidate;
    opt.oracle.candidates = {
        Candidate{SchedulerKind::Static, 0},
        Candidate{SchedulerKind::Parallel, 1},
        Candidate{SchedulerKind::Parallel, 2},
        Candidate{SchedulerKind::Parallel, 8},
        Candidate{SchedulerKind::Compiled, 0},
    };
    if (opt.opt_level > 0 && opt.fault_plan == nullptr) {
      opt.oracle.candidates.push_back(
          Candidate{SchedulerKind::Dynamic, 0, opt.opt_level});
      opt.oracle.candidates.push_back(
          Candidate{SchedulerKind::Static, 0, opt.opt_level});
      opt.oracle.candidates.push_back(
          Candidate{SchedulerKind::Parallel, 2, opt.opt_level});
      opt.oracle.candidates.push_back(
          Candidate{SchedulerKind::Parallel, 8, opt.opt_level});
      opt.oracle.candidates.push_back(
          Candidate{SchedulerKind::Compiled, 0, opt.opt_level});
    }
  }

  std::uint64_t failures = 0;
  for (std::uint64_t s = opt.seed; s < opt.seed + opt.count; ++s) {
    liberty::testing::NetSpec spec;
    try {
      spec = opt.family == "rack"
                 ? liberty::scenario::fuzz_rack_netspec(s)
                 : liberty::testing::generate_netlist(s, opt.fuzz);
    } catch (const std::exception& e) {
      std::cerr << "seed " << s << ": generator error: " << e.what() << "\n";
      return 1;
    }
    if (opt.print_spec) {
      std::cout << "# seed " << s << "\n" << spec.render();
    }
    if (s == opt.seed &&
        (!opt.profile_path.empty() || !opt.metrics_path.empty())) {
      try {
        write_artifacts(spec, registry, s, opt);
      } catch (const std::exception& e) {
        std::cerr << "seed " << s << ": artifact error: " << e.what() << "\n";
        return 1;
      }
    }

    liberty::testing::OracleResult result;
    try {
      result = liberty::testing::run_oracle(spec, registry, opt.oracle);
    } catch (const std::exception& e) {
      std::cerr << "seed " << s << ": oracle error: " << e.what() << "\n"
                << spec.render();
      ++failures;
      continue;
    }
    if (result.ok) {
      if (opt.count == 1 || opt.print_spec) {
        std::cout << "seed " << s << ": ok (" << spec.modules.size()
                  << " modules, " << spec.edges.size() << " connections, "
                  << spec.cycles << " cycles)\n";
      }
      if (opt.heartbeat != 0) {
        const std::uint64_t done = s - opt.seed + 1;
        if (done % opt.heartbeat == 0) {
          std::cerr << "heartbeat: " << done << "/" << opt.count
                    << " seeds, " << failures << " failures\n";
        }
      }
      continue;
    }

    ++failures;
    std::cout << "seed " << s << ": DIVERGENCE\n" << result.report();
    if (opt.shrink) {
      liberty::testing::ShrinkStats st;
      const liberty::testing::NetSpec reduced =
          liberty::testing::shrink_netlist(spec, registry, opt.oracle, &st);
      std::cout << "shrink: " << spec.modules.size() << " -> "
                << reduced.modules.size() << " modules ("
                << st.attempts << " candidates, " << st.accepted
                << " accepted)\n"
                << "minimal reproducer:\n" << reduced.render()
                << liberty::testing::run_oracle(reduced, registry, opt.oracle)
                       .report();
    } else {
      std::cout << "reproduce with: liberty_fuzz --seed " << s
                << " --cycles " << spec.cycles << " --print-spec\n";
    }
  }

  if (opt.count > 1) {
    std::cout << (opt.count - failures) << "/" << opt.count
              << " seeds passed\n";
  }
  return failures == 0 ? 0 : 1;
}
