// Integration: miniature versions of the paper's Figure-2 systems run as
// tests, under both schedulers — the cross-library composability claims as
// executable checks.
#include <gtest/gtest.h>

#include <deque>
#include <memory>

#include "liberty/ccl/ccl.hpp"
#include "liberty/core/lss/elaborator.hpp"
#include "liberty/core/simulator.hpp"
#include "liberty/mpl/mpl.hpp"
#include "liberty/nil/nil.hpp"
#include "liberty/pcl/pcl.hpp"
#include "liberty/upl/upl.hpp"
#include "test_util.hpp"

namespace {

using liberty::Payload;
using liberty::Value;
using liberty::core::Netlist;
using liberty::core::Params;
using liberty::core::SchedulerKind;
using liberty::core::Simulator;
using liberty::test::params;

/// Every library in one catalog (test_util::registry() carries only PCL so
/// kernel-level tests need not link the world).
liberty::core::ModuleRegistry& full_registry() {
  static liberty::core::ModuleRegistry r = [] {
    liberty::core::ModuleRegistry reg;
    liberty::pcl::register_pcl(reg);
    liberty::upl::register_upl(reg);
    liberty::ccl::register_ccl(reg);
    liberty::mpl::register_mpl(reg);
    liberty::nil::register_nil(reg);
    return reg;
  }();
  return r;
}

class Integration : public ::testing::TestWithParam<SchedulerKind> {};
INSTANTIATE_TEST_SUITE_P(BothSchedulers, Integration,
                         ::testing::Values(SchedulerKind::Dynamic,
                                           SchedulerKind::Static),
                         [](const auto& info) {
                           return info.param == SchedulerKind::Dynamic
                                      ? "Dynamic"
                                      : "Static";
                         });

// ---------------------------------------------------------------------------
// Figure 2(a): two coherent cores + directory on a mesh compute a parallel
// sum through shared memory.
// ---------------------------------------------------------------------------

TEST_P(Integration, CmpParallelSumThroughCoherentMemory) {
  Netlist nl;
  auto mesh = liberty::ccl::build_mesh(nl, "noc", 2, 2);
  constexpr int kHome = 3;
  std::vector<liberty::upl::SimpleCpu*> cpus;

  const char* progs[2] = {
      // Core 0: sum 0..19 into 512, set flag 516... then read partner's.
      "  li r1, 0\n  li r2, 0\n  li r3, 20\n"
      "l0:\n  add r1, r1, r2\n  addi r2, r2, 1\n  blt r2, r3, l0\n"
      "  sw r1, 512(r0)\n  li r4, 1\n  sw r4, 520(r0)\n"
      "s0:\n  lw r5, 524(r0)\n  beq r5, r0, s0\n"
      "  lw r6, 516(r0)\n  add r7, r1, r6\n  out r7\n  halt\n",
      // Core 1: sum 20..39 into 516, set flag 524, wait for 520.
      "  li r1, 0\n  li r2, 20\n  li r3, 40\n"
      "l1:\n  add r1, r1, r2\n  addi r2, r2, 1\n  blt r2, r3, l1\n"
      "  sw r1, 516(r0)\n  li r4, 1\n  sw r4, 524(r0)\n"
      "s1:\n  lw r5, 520(r0)\n  beq r5, r0, s1\n"
      "  lw r6, 512(r0)\n  add r7, r1, r6\n  out r7\n  halt\n"};

  for (int i = 0; i < 2; ++i) {
    auto& cpu = nl.make<liberty::upl::SimpleCpu>("gp" + std::to_string(i),
                                                 Params());
    auto& l1 = nl.make<liberty::mpl::DirCache>(
        "l1_" + std::to_string(i),
        params({{"id", i}, {"sets", 8}, {"line_words", 4},
                {"home0", kHome}}));
    auto& ni = nl.make<liberty::nil::FabricAdapter>(
        "ni" + std::to_string(i), params({{"id", i}, {"vcs", 1}}));
    cpu.set_program(liberty::upl::assemble(progs[i]));
    cpus.push_back(&cpu);
    nl.connect(cpu.out("mem_req"), l1.in("cpu_req"));
    nl.connect(l1.out("cpu_resp"), cpu.in("mem_resp"));
    nl.connect(l1.out("msg_out"), ni.in("msg_in"));
    nl.connect(ni.out("msg_out"), l1.in("msg_in"));
    nl.connect_at(ni.out("net_out"), 0, mesh.inject_port(i), 0);
    nl.connect_at(mesh.eject_port(i), 0, ni.in("net_in"), 0);
  }
  auto& dir = nl.make<liberty::mpl::DirectoryCtl>(
      "dir", params({{"id", kHome}, {"home0", kHome}, {"line_words", 4}}));
  auto& dni = nl.make<liberty::nil::FabricAdapter>(
      "dni", params({{"id", kHome}, {"vcs", 1}}));
  nl.connect(dir.out("msg_out"), dni.in("msg_in"));
  nl.connect(dni.out("msg_out"), dir.in("msg_in"));
  nl.connect_at(dni.out("net_out"), 0, mesh.inject_port(kHome), 0);
  nl.connect_at(mesh.eject_port(kHome), 0, dni.in("net_in"), 0);
  nl.finalize();

  Simulator sim(nl, GetParam());
  std::uint64_t cycles = 0;
  while (cycles < 400'000 && !(cpus[0]->halted() && cpus[1]->halted())) {
    sim.step();
    ++cycles;
  }
  ASSERT_TRUE(cpus[0]->halted() && cpus[1]->halted());
  const std::int64_t total = (39 * 40) / 2;  // sum 0..39
  EXPECT_EQ(cpus[0]->output().at(0), total);
  EXPECT_EQ(cpus[1]->output().at(0), total);
}

// ---------------------------------------------------------------------------
// Figure 2(c): DMA halo exchange over a ring, through fabric adapters.
// ---------------------------------------------------------------------------

TEST_P(Integration, GridRingShiftVerifies) {
  constexpr std::size_t kBoards = 4;
  Netlist nl;
  auto ring = liberty::ccl::build_ring(nl, "fab", kBoards);
  std::vector<liberty::pcl::MemoryArray*> mems;
  std::vector<liberty::mpl::DmaCtl*> dmas;
  for (std::size_t i = 0; i < kBoards; ++i) {
    auto& mem = nl.make<liberty::pcl::MemoryArray>(
        "mem" + std::to_string(i), params({{"latency", 1}}));
    auto& dma = nl.make<liberty::mpl::DmaCtl>("dma" + std::to_string(i),
                                              Params());
    auto& ni = nl.make<liberty::nil::FabricAdapter>(
        "ni" + std::to_string(i),
        params({{"id", static_cast<int>(i)}, {"vcs", 1}}));
    mems.push_back(&mem);
    dmas.push_back(&dma);
    nl.connect(dma.out("mem_req"), mem.in("req"));
    nl.connect(mem.out("resp"), dma.in("mem_resp"));
    nl.connect(dma.out("net_out"), ni.in("msg_in"));
    nl.connect(ni.out("msg_out"), dma.in("net_in"));
    nl.connect_at(ni.out("net_out"), 0, ring.inject_port(i), 0);
    nl.connect_at(ring.eject_port(i), 0, ni.in("net_in"), 0);
  }
  nl.finalize();
  for (std::size_t i = 0; i < kBoards; ++i) {
    for (int w = 0; w < 6; ++w) {
      mems[i]->poke(50 + static_cast<std::uint64_t>(w),
                    static_cast<std::int64_t>(i * 100 + w));
    }
    dmas[i]->start_transfer(50, (i + 1) % kBoards, 80, 6);
  }
  Simulator sim(nl, GetParam());
  std::uint64_t cycles = 0;
  while (cycles < 50'000) {
    bool done = true;
    for (auto* d : dmas) done = done && d->rx_done() && !d->tx_busy();
    if (done) break;
    sim.step();
    ++cycles;
  }
  for (std::size_t i = 0; i < kBoards; ++i) {
    const std::size_t from = (i + kBoards - 1) % kBoards;
    for (int w = 0; w < 6; ++w) {
      EXPECT_EQ(mems[i]->peek(80 + static_cast<std::uint64_t>(w)),
                static_cast<std::int64_t>(from * 100 + w))
          << "board " << i << " word " << w;
    }
  }
}

// ---------------------------------------------------------------------------
// LSS-built network: generators and sinks around a bus, entirely from a
// specification string, using three libraries from the shared catalog.
// ---------------------------------------------------------------------------

TEST_P(Integration, LssDrivesCrossLibraryComposition) {
  const char* spec = R"(
    param SENDERS = 3;
    instance bus : ccl.bus { occupancy = 2; broadcast = false; };
    for i in 0 .. SENDERS {
      instance gen[i] : ccl.traffic_gen {
        id = i; nodes = SENDERS + 1; pattern = "fixed"; dst = SENDERS;
        rate = 0.5; count = 15; seed = i + 1;
      };
      connect gen[i].out -> bus.in;
    }
    instance q : pcl.queue { depth = 4; };
    instance sink : ccl.traffic_sink { stop_after = 45; };
    connect bus.out -> q.in;
    connect q.out -> sink.in;
  )";
  Netlist nl;
  liberty::core::lss::build_from_lss(spec, "t.lss", nl, full_registry());
  Simulator sim(nl, GetParam());
  sim.run(5000);
  auto* sink =
      dynamic_cast<liberty::ccl::TrafficSink*>(nl.find("sink"));
  ASSERT_NE(sink, nullptr);
  EXPECT_EQ(sink->received(), 45u);
}

// ---------------------------------------------------------------------------
// Programmable NIC to programmable NIC over a lossy-free wire: a frame
// composed by one firmware lands in the other host's RX ring.
// ---------------------------------------------------------------------------

TEST_P(Integration, TwoNicsExchangeFramesOverAWire) {
  Netlist nl;
  liberty::nil::NicFirmwareConfig cfg;
  std::vector<liberty::pcl::MemoryArray*> hosts;
  std::vector<liberty::nil::ProgrammableNic> nics;
  for (int i = 0; i < 2; ++i) {
    auto& host = nl.make<liberty::pcl::MemoryArray>(
        "host" + std::to_string(i),
        params({{"latency", 1}, {"mshrs", 4}, {"ports", 2}}));
    auto nic = liberty::nil::build_programmable_nic(
        nl, "nic" + std::to_string(i), /*mac=*/static_cast<std::uint64_t>(i),
        cfg);
    nl.connect_at(nic.core->out("mem_req"), 0, host.in("req"), 0);
    nl.connect_at(host.out("resp"), 0, nic.core->in("mem_resp"), 0);
    nl.connect_at(nic.assist->out("host_req"), 0, host.in("req"), 1);
    nl.connect_at(host.out("resp"), 1, nic.assist->in("host_resp"), 0);
    hosts.push_back(&host);
    nics.push_back(nic);
  }
  nl.connect(nics[0].assist->out("net_tx"), nics[1].assist->in("net_rx"));
  nl.connect(nics[1].assist->out("net_tx"), nics[0].assist->in("net_rx"));
  nl.finalize();

  // Host 0 posts a TX descriptor to MAC 1; host 1 posts an RX buffer.
  const auto tx0 = static_cast<std::uint64_t>(cfg.tx_ring);
  const auto rx0 = static_cast<std::uint64_t>(cfg.rx_ring);
  for (int w = 0; w < 3; ++w) {
    hosts[0]->poke(100 + static_cast<std::uint64_t>(w), 42 + w);
  }
  hosts[0]->poke(tx0 + 0, 100);
  hosts[0]->poke(tx0 + 1, 3);
  hosts[0]->poke(tx0 + 3, 1);  // destination MAC 1
  hosts[1]->poke(rx0 + 0, 200);
  hosts[1]->poke(rx0 + 2, 1);  // free buffer
  hosts[0]->poke(tx0 + 2, 1);  // go

  Simulator sim(nl, GetParam());
  std::uint64_t cycles = 0;
  while (cycles < 30'000 && hosts[1]->peek(rx0 + 2) != 2) {
    sim.step();
    ++cycles;
  }
  ASSERT_EQ(hosts[1]->peek(rx0 + 2), 2) << "frame never landed";
  EXPECT_EQ(hosts[1]->peek(rx0 + 3), 0);  // source MAC
  for (int w = 0; w < 3; ++w) {
    EXPECT_EQ(hosts[1]->peek(200 + static_cast<std::uint64_t>(w)), 42 + w);
  }
}

}  // namespace

namespace {

// ---------------------------------------------------------------------------
// A full structural 5-stage CPU from pure LSS: stages rendezvous on the
// CoreHub "core" key, the program is an LSS string parameter.
// ---------------------------------------------------------------------------

TEST(IntegrationLss, StructuralCpuFromSpecRetiresProgram) {
  liberty::upl::CoreHub::reset();  // independent of any earlier hub users
  const char* spec = R"(
    instance f : upl.fetch {
      core = "t_cpu";
      predictor = "bimodal";
      program = "  li r1, 0
  li r2, 1
  li r3, 50
loop:
  add r1, r1, r2
  addi r2, r2, 1
  bge r3, r2, loop
  out r1
  halt
";
    };
    instance d : upl.decode { core = "t_cpu"; };
    instance x : upl.execute { core = "t_cpu"; };
    instance m : upl.mem { core = "t_cpu"; };
    instance w : upl.writeback { core = "t_cpu"; };
    instance l1 : upl.cache { sets = 8; ways = 2; line_words = 4; };
    instance mc : upl.memctl { latency = 8; line_words = 4; };
    connect f.out -> d.in;
    connect d.out -> x.in;
    connect x.out -> m.in;
    connect m.out -> w.in;
    connect x.resolve -> f.resolve;
    connect m.dreq -> l1.cpu_req;
    connect l1.cpu_resp -> m.dresp;
    connect l1.mem_req -> mc.req;
    connect mc.resp -> l1.mem_resp;
  )";
  Netlist nl;
  liberty::core::lss::build_from_lss(spec, "cpu.lss", nl, full_registry());
  Simulator sim(nl, SchedulerKind::Static);
  sim.run(50'000);
  const auto state = liberty::upl::CoreHub::get("t_cpu");
  EXPECT_TRUE(state->halted);
  ASSERT_EQ(state->output.size(), 1u);
  EXPECT_EQ(state->output[0], 50 * 51 / 2);
  liberty::upl::CoreHub::reset();
}

}  // namespace
