// lss_run: the Liberty simulator constructor as a command-line tool.
//
//   lss_run SPEC.lss [options]
//     --cycles N          cycles to simulate                [10000]
//     --param NAME=VALUE  override a top-level param (repeatable;
//                         integers, reals, true/false, or strings)
//     --scheduler dyn|static|parallel|compiled|native       [static]
//     --threads N         worker threads for --scheduler parallel
//                         (0 = hardware concurrency)        [0]
//     --opt-level N       elaboration-time optimizer level 0..2 [2]
//     --opt-report        print the optimizer's per-item report
//     --dot FILE          write the netlist as Graphviz DOT and exit
//                         (annotated with optimizer conclusions at -O1+)
//     --dump-bytecode     print the compiled backend's lowered program
//                         (docs/codegen.md) and exit
//     --codegen-cache-dir DIR  artifact cache for --scheduler native
//                         (default: LIBERTY_NATIVE_CACHE_DIR or the
//                         system temp directory)
//     --dump-native-src FILE  also write the native backend's generated
//                         C++ translation unit to FILE
//     --vcd FILE          also record a VCD transfer waveform
//     --profile FILE      write a Chrome trace-event JSON profile
//                         (load in Perfetto / chrome://tracing)
//     --metrics FILE      write the liberty.metrics JSON dump (module
//                         stats + scheduler counters + profile + watchdog)
//     --metrics-csv FILE  same metrics as flat CSV
//     --heartbeat N       print a progress line every N cycles
//     --quiet             suppress the statistics dump
//
// Resilience (docs/resilience.md):
//     --faults FILE       inject a liberty.faultplan JSON plan
//     --watchdog          run the invariant watchdog; with --faults a
//                         fault-free twin run records the divergence
//                         baseline first.  Violations exit 1.
//     --max-iters N       fixed-point iteration cap (combinational-loop
//                         guard); 0 keeps the scheduler default
//     --checkpoint-every N  snapshot interval for --recover        [64]
//     --recover POLICY    supervise with abort|rollback|quarantine
//                         recovery (ignores --vcd/--profile)
//     --digest            print trace + state digests for bit-exactness
//                         comparisons
//
// Durability (docs/resilience.md, "Durable checkpoints") — these imply the
// supervised loop (with policy abort unless --recover says otherwise):
//     --checkpoint-dir DIR  spill each checkpoint to DIR (atomic
//                         tmp+fsync+rename files; see --checkpoint-every)
//     --checkpoint-keep K retention: newest K checkpoint files      [4]
//     --resume            cold-start from the newest valid checkpoint in
//                         --checkpoint-dir; corrupt/torn files are listed
//                         and skipped, an empty dir starts from cycle 0
//     --kill-at N         raise(SIGKILL) after cycle N commits (crash-
//                         recovery harness aid)
//
// Options also accept --flag=value spelling.
//
// This is the Figure-1 pipeline end to end: specification in, executable
// simulator out, with the full component catalog available — plus the
// observability exporters of docs/observability.md.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>

#include "liberty/ccl/ccl.hpp"
#include "liberty/core/lss/elaborator.hpp"
#include "liberty/core/lss/parser.hpp"
#include "liberty/core/simulator.hpp"
#include "liberty/core/vcd.hpp"
#include "liberty/gen/compiled_scheduler.hpp"
#include "liberty/gen/native.hpp"
#include "liberty/mpl/mpl.hpp"
#include "liberty/nil/nil.hpp"
#include "liberty/obs/metrics.hpp"
#include "liberty/obs/profiler.hpp"
#include "liberty/obs/trace.hpp"
#include "liberty/opt/optimizer.hpp"
#include "liberty/pcl/pcl.hpp"
#include "liberty/resil/durable.hpp"
#include "liberty/resil/fault_plan.hpp"
#include "liberty/resil/injector.hpp"
#include "liberty/resil/recovery.hpp"
#include "liberty/resil/watchdog.hpp"
#include "liberty/upl/upl.hpp"

namespace {

liberty::Value parse_value(const std::string& text) {
  if (text == "true") return liberty::Value(true);
  if (text == "false") return liberty::Value(false);
  try {
    std::size_t used = 0;
    if (text.find('.') != std::string::npos ||
        text.find('e') != std::string::npos) {
      const double d = std::stod(text, &used);
      if (used == text.size()) return liberty::Value(d);
    } else {
      const long long i = std::stoll(text, &used);
      if (used == text.size()) {
        return liberty::Value(static_cast<std::int64_t>(i));
      }
    }
  } catch (const std::exception&) {
    // falls through to string
  }
  return liberty::Value(text);
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s SPEC.lss [--cycles N] [--param NAME=VALUE]...\n"
               "       [--scheduler dyn|static|parallel|compiled|native]\n"
               "       [--threads N] [--opt-level N] [--opt-report]\n"
               "       [--dot FILE] [--dump-bytecode]\n"
               "       [--codegen-cache-dir DIR] [--dump-native-src FILE]\n"
               "       [--vcd FILE] [--profile FILE]\n"
               "       [--metrics FILE] [--metrics-csv FILE]\n"
               "       [--heartbeat N] [--quiet]\n"
               "       [--faults FILE] [--watchdog] [--max-iters N]\n"
               "       [--checkpoint-every N] [--recover POLICY] [--digest]\n"
               "       [--checkpoint-dir DIR] [--checkpoint-keep K]\n"
               "       [--resume] [--kill-at N]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  std::string spec_path;
  std::uint64_t cycles = 10'000;
  std::map<std::string, liberty::Value> overrides;
  auto kind = liberty::core::SchedulerKind::Static;
  unsigned threads = 0;
  std::string dot_path;
  bool dump_bytecode = false;
  std::string vcd_path;
  std::string profile_path;
  std::string metrics_path;
  std::string metrics_csv_path;
  std::uint64_t heartbeat = 0;
  int opt_level = 2;
  bool opt_report = false;
  bool quiet = false;
  std::string faults_path;
  bool want_watchdog = false;
  std::uint64_t max_iters = 0;
  std::uint64_t checkpoint_every = 64;
  std::string recover_policy;
  bool want_digest = false;
  std::string checkpoint_dir;
  std::uint64_t checkpoint_keep = 4;
  bool want_resume = false;
  std::uint64_t kill_at = 0;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    // Accept --flag=value as well as --flag value.
    std::string inline_value;
    bool has_inline = false;
    if (arg.rfind("--", 0) == 0) {
      if (const auto eq = arg.find('='); eq != std::string::npos) {
        inline_value = arg.substr(eq + 1);
        arg.resize(eq);
        has_inline = true;
      }
    }
    auto next = [&]() -> const char* {
      if (has_inline) return inline_value.c_str();
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--cycles") {
      cycles = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--param") {
      const std::string kv = next();
      const auto eq = kv.find('=');
      if (eq == std::string::npos) return usage(argv[0]);
      overrides[kv.substr(0, eq)] = parse_value(kv.substr(eq + 1));
    } else if (arg == "--scheduler") {
      try {
        kind = liberty::core::scheduler_kind_from_name(next());
      } catch (const liberty::Error& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
      }
    } else if (arg == "--threads") {
      threads = static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--opt-level") {
      opt_level = static_cast<int>(std::strtol(next(), nullptr, 10));
      if (opt_level < 0 || opt_level > 2) return usage(argv[0]);
    } else if (arg == "--opt-report") {
      opt_report = true;
    } else if (arg == "--dot") {
      dot_path = next();
    } else if (arg == "--dump-bytecode") {
      dump_bytecode = true;
    } else if (arg == "--codegen-cache-dir") {
      liberty::gen::native_options().cache_dir = next();
    } else if (arg == "--dump-native-src") {
      liberty::gen::native_options().dump_source_path = next();
    } else if (arg == "--vcd") {
      vcd_path = next();
    } else if (arg == "--profile") {
      profile_path = next();
    } else if (arg == "--metrics") {
      metrics_path = next();
    } else if (arg == "--metrics-csv") {
      metrics_csv_path = next();
    } else if (arg == "--heartbeat") {
      heartbeat = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--faults") {
      faults_path = next();
    } else if (arg == "--watchdog") {
      want_watchdog = true;
    } else if (arg == "--max-iters") {
      max_iters = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--checkpoint-every") {
      checkpoint_every = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--recover") {
      recover_policy = next();
    } else if (arg == "--digest") {
      want_digest = true;
    } else if (arg == "--checkpoint-dir") {
      checkpoint_dir = next();
    } else if (arg == "--checkpoint-keep") {
      checkpoint_keep = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--resume") {
      want_resume = true;
    } else if (arg == "--kill-at") {
      kill_at = std::strtoull(next(), nullptr, 10);
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else {
      spec_path = arg;
    }
  }
  if (spec_path.empty()) return usage(argv[0]);
  if ((want_resume || kill_at != 0) && checkpoint_dir.empty()) {
    std::fprintf(stderr,
                 "error: --resume/--kill-at require --checkpoint-dir\n");
    return 2;
  }

  liberty::core::ModuleRegistry registry;
  liberty::pcl::register_pcl(registry);
  liberty::upl::register_upl(registry);
  liberty::ccl::register_ccl(registry);
  liberty::mpl::register_mpl(registry);
  liberty::nil::register_nil(registry);
  liberty::gen::ensure_registered();

  try {
    const auto spec = liberty::core::lss::parse_file(spec_path);
    liberty::core::Netlist netlist;
    liberty::core::lss::Elaborator elab(registry);
    elab.elaborate(spec, netlist, overrides);
    netlist.finalize();

    const liberty::opt::OptReport rep = liberty::opt::optimize(
        netlist, liberty::opt::OptOptions::for_level(opt_level));
    if (!quiet) std::printf("%s\n", rep.summary().c_str());
    if (opt_report && !rep.detail.empty()) {
      std::fputs(rep.detail.c_str(), stdout);
    }

    if (!dot_path.empty()) {
      std::ofstream dot(dot_path);
      liberty::opt::write_annotated_dot(netlist, dot);
      std::printf("wrote %s (%zu instances, %zu connections)\n",
                  dot_path.c_str(), netlist.module_count(),
                  netlist.connection_count());
      return 0;
    }

    if (dump_bytecode) {
      liberty::gen::CompiledScheduler compiled(netlist);
      std::fputs(compiled.disassemble().c_str(), stdout);
      return 0;
    }

    // Resilience wiring.  The injector must outlive the simulator (the
    // scheduler's destructor clears the per-connection hooks).
    std::unique_ptr<liberty::resil::FaultInjector> injector;
    if (!faults_path.empty()) {
      injector = std::make_unique<liberty::resil::FaultInjector>(
          liberty::resil::FaultPlan::load(faults_path));
    }
    liberty::resil::Watchdog watchdog;

    // Divergence detection needs a fault-free reference trace.  LSS
    // elaboration is pure, so a twin elaborated from the same spec at the
    // same -O level transfers identically — record its per-cycle baseline
    // before the faulted run starts.
    if (want_watchdog && injector != nullptr) {
      liberty::core::Netlist twin;
      liberty::core::lss::Elaborator(registry).elaborate(spec, twin,
                                                         overrides);
      twin.finalize();
      liberty::opt::optimize(twin,
                             liberty::opt::OptOptions::for_level(opt_level));
      liberty::core::Simulator ref(twin,
                                   liberty::core::SchedulerKind::Static, 0);
      liberty::resil::Watchdog rec;
      rec.record_baseline();
      rec.attach(ref);
      ref.run(cycles);
      watchdog.set_baseline(rec.take_baseline());
    }

    if (!recover_policy.empty() || !checkpoint_dir.empty()) {
      // Supervised run: the Supervisor owns the simulator and the
      // simulate-detect-recover loop (docs/resilience.md).  With a
      // checkpoint directory the DurableSupervisor variant also spills
      // each checkpoint to disk and (--resume) cold-starts from the
      // newest valid file.
      liberty::resil::SupervisorConfig scfg;
      scfg.scheduler = kind;
      scfg.threads = threads;
      scfg.checkpoint_every = checkpoint_every;
      scfg.policy = recover_policy.empty()
                        ? liberty::resil::RecoveryPolicy::Abort
                        : liberty::resil::policy_from_name(recover_policy);
      scfg.iteration_cap = max_iters;
      std::unique_ptr<liberty::resil::Supervisor> sup_owner;
      liberty::resil::DurableSupervisor* dsup = nullptr;
      if (!checkpoint_dir.empty()) {
        liberty::resil::DurableConfig dcfg;
        dcfg.dir = checkpoint_dir;
        dcfg.keep_last = checkpoint_keep;
        dcfg.resume = want_resume;
        dcfg.kill_at = kill_at;
        auto owner = std::make_unique<liberty::resil::DurableSupervisor>(
            netlist, scfg, dcfg, injector.get(),
            want_watchdog ? &watchdog : nullptr);
        dsup = owner.get();
        sup_owner = std::move(owner);
      } else {
        sup_owner = std::make_unique<liberty::resil::Supervisor>(
            netlist, scfg, injector.get(),
            want_watchdog ? &watchdog : nullptr);
      }
      liberty::resil::Supervisor& sup = *sup_owner;
      const liberty::resil::RecoveryReport rep = sup.run(cycles);
      for (const std::string& ev : rep.events) {
        std::fprintf(stderr, "recovery: %s\n", ev.c_str());
      }
      if (want_watchdog) {
        for (const auto& d : watchdog.diagnostics()) {
          std::fprintf(stderr, "watchdog: %s\n", d.format().c_str());
        }
      }
      std::printf("%s\n", rep.summary().c_str());
      if (want_digest) {
        std::printf("digest: trace=%016llx state=%016llx cycles=%llu\n",
                    static_cast<unsigned long long>(rep.trace_digest()),
                    static_cast<unsigned long long>(rep.state_digest),
                    static_cast<unsigned long long>(rep.cycles));
      }
      if (!metrics_path.empty() || !metrics_csv_path.empty()) {
        liberty::obs::MetricsRegistry reg;
        reg.collect_modules(netlist);
        if (sup.simulator() != nullptr) {
          reg.collect_scheduler(sup.simulator()->scheduler());
        }
        if (want_watchdog) watchdog.export_metrics(reg);
        if (dsup != nullptr) dsup->export_metrics(reg);
        liberty::gen::export_native_metrics(reg);
        liberty::obs::RunMeta meta;
        meta.tool = "lss_run";
        meta.spec = spec_path;
        if (sup.simulator() != nullptr) {
          meta.scheduler =
              std::string(sup.simulator()->scheduler().kind_name());
        }
        meta.threads = threads;
        meta.cycles = rep.cycles;
        meta.git_rev = liberty::obs::current_git_rev();
        if (!metrics_path.empty()) {
          std::ofstream mf(metrics_path);
          reg.write_json(mf, meta);
        }
        if (!metrics_csv_path.empty()) {
          std::ofstream mf(metrics_csv_path);
          reg.write_csv(mf, meta);
        }
      }
      if (!rep.completed) {
        std::fprintf(stderr, "error: %s\n", rep.error.c_str());
        return 1;
      }
      return 0;
    }

    liberty::core::Simulator sim(netlist, kind, threads);
    if (max_iters > 0) sim.scheduler().set_iteration_cap(max_iters);
    if (injector != nullptr) injector->install(sim);
    std::unique_ptr<liberty::core::VcdTracer> tracer;
    std::ofstream vcd_file;
    if (!vcd_path.empty()) {
      vcd_file.open(vcd_path);
      tracer = std::make_unique<liberty::core::VcdTracer>(netlist, vcd_file);
      tracer->attach(sim);
    }

    // Observability: the profiler is the kernel probe; the trace writer
    // (when requested) chains behind it as a sink.  --metrics alone still
    // profiles so the dump can attribute time per module and phase.
    liberty::obs::CycleProfiler profiler;
    std::unique_ptr<liberty::obs::ChromeTraceWriter> trace;
    std::ofstream trace_file;
    const bool want_profile = !profile_path.empty() || !metrics_path.empty() ||
                              !metrics_csv_path.empty();
    if (!profile_path.empty()) {
      trace_file.open(profile_path);
      trace = std::make_unique<liberty::obs::ChromeTraceWriter>(trace_file);
      trace->attach_transfers(sim);
      profiler.set_sink(trace.get());
    }
    // Probe chain on the kernel's single slot: watchdog -> trace recorder
    // -> profiler (the watchdog reports before forwarding, the recorder
    // hashes each resolved cycle for --digest).
    liberty::core::KernelProbe* chain = nullptr;
    if (want_profile) chain = &profiler;
    std::unique_ptr<liberty::resil::TraceRecorder> recorder;
    if (want_digest) {
      recorder = std::make_unique<liberty::resil::TraceRecorder>(netlist);
      recorder->set_next(chain);
      chain = recorder.get();
    }
    if (want_watchdog) {
      watchdog.set_next(chain);
      watchdog.attach(sim);
    } else if (chain != nullptr) {
      sim.set_probe(chain);
    }

    std::uint64_t ran = 0;
    std::string sim_error;
    try {
      if (heartbeat == 0) {
        ran = sim.run(cycles);
      } else {
        while (ran < cycles) {
          const std::uint64_t chunk = std::min(heartbeat, cycles - ran);
          const auto step = sim.run(chunk);
          ran += step;
          std::fprintf(stderr, "heartbeat: cycle %llu/%llu\n",
                       static_cast<unsigned long long>(ran),
                       static_cast<unsigned long long>(cycles));
          if (step < chunk) break;  // a module requested a stop
        }
      }
    } catch (const liberty::Error& e) {
      // After a throwing cycle, now() already advanced past the aborted
      // cycle — the last *completed* cycle is now() - 1.
      sim_error = e.what();
      ran = sim.now() > 0 ? sim.now() - 1 : 0;
      if (want_watchdog) watchdog.note_kernel_error(sim_error, ran);
    }
    if (tracer) tracer->finish();
    if (trace) trace->finish();

    if (want_watchdog) {
      for (const auto& d : watchdog.diagnostics()) {
        std::fprintf(stderr, "watchdog: %s\n", d.format().c_str());
      }
      std::fprintf(stderr, "watchdog: %llu violation(s) over %llu cycle(s)\n",
                   static_cast<unsigned long long>(watchdog.violation_count()),
                   static_cast<unsigned long long>(watchdog.cycles_checked()));
    }
    if (want_digest) {
      const std::uint64_t trace_digest =
          liberty::resil::fold_trace(recorder->hashes());
      std::printf("digest: trace=%016llx state=%016llx cycles=%llu\n",
                  static_cast<unsigned long long>(trace_digest),
                  static_cast<unsigned long long>(sim.snapshot().digest()),
                  static_cast<unsigned long long>(ran));
    }

    if (!metrics_path.empty() || !metrics_csv_path.empty()) {
      liberty::obs::MetricsRegistry reg;
      reg.collect_modules(netlist);
      reg.collect_scheduler(sim.scheduler());
      reg.collect_profile(profiler, &netlist);
      if (want_watchdog) watchdog.export_metrics(reg);
      liberty::gen::export_native_metrics(reg);
      liberty::obs::RunMeta meta;
      meta.tool = "lss_run";
      meta.spec = spec_path;
      meta.scheduler = std::string(sim.scheduler().kind_name());
      meta.threads = threads;
      meta.cycles = ran;
      meta.git_rev = liberty::obs::current_git_rev();
      if (!metrics_path.empty()) {
        std::ofstream mf(metrics_path);
        reg.write_json(mf, meta);
      }
      if (!metrics_csv_path.empty()) {
        std::ofstream mf(metrics_csv_path);
        reg.write_csv(mf, meta);
      }
    }

    std::printf("%s: %zu instances, %zu connections, %llu cycles simulated\n",
                spec_path.c_str(), netlist.module_count(),
                netlist.connection_count(),
                static_cast<unsigned long long>(ran));
    if (!quiet) netlist.dump_stats(std::cout);
    if (!sim_error.empty()) {
      std::fprintf(stderr, "error: %s\n", sim_error.c_str());
      return 1;
    }
    return want_watchdog && watchdog.violation_count() > 0 ? 1 : 0;
  } catch (const liberty::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
