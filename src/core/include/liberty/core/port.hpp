// Ports: a module's communication interface.
//
// "Modules specify their interface to other modules via ports.  Each port
// represents an input or output channel for the module, and may have
// multiple connections so that users can easily scale the bandwidth a module
// instance has to the other blocks." (§2.1)
//
// A port therefore owns an ordered list of endpoints; each endpoint is
// either bound to a Connection or unconnected.  Unconnected endpoints get
// the module template's default semantics (§2.2: "each module template can
// provide default semantics when some of its ports are left unconnected"):
// an unconnected input endpoint presents either nothing or a configured
// constant every cycle, and an unconnected output endpoint is auto-acked (or
// auto-nacked) so partial specifications still produce working simulators.
#pragma once

#include <cstddef>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "liberty/core/connection.hpp"
#include "liberty/support/error.hpp"

namespace liberty::core {

class Module;

enum class PortDir : std::uint8_t { In, Out };

class Port {
 public:
  Port(Module* owner, std::string name, PortDir dir, std::size_t min_conns,
       std::size_t max_conns, AckMode default_ack)
      : owner_(owner),
        name_(std::move(name)),
        dir_(dir),
        min_conns_(min_conns),
        max_conns_(max_conns),
        default_ack_(default_ack) {}

  Port(const Port&) = delete;
  Port& operator=(const Port&) = delete;

  [[nodiscard]] Module* owner() const noexcept { return owner_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] PortDir dir() const noexcept { return dir_; }

  /// Number of endpoints (grows as connections are made).
  [[nodiscard]] std::size_t width() const noexcept { return conns_.size(); }

  [[nodiscard]] bool connected(std::size_t i = 0) const noexcept {
    return i < conns_.size() && conns_[i] != nullptr;
  }
  [[nodiscard]] Connection* connection(std::size_t i = 0) const noexcept {
    return i < conns_.size() ? conns_[i] : nullptr;
  }

  // ---- Input-side accessors (valid when dir == In) ------------------------

  /// True once this endpoint's forward channel is resolved this cycle.
  [[nodiscard]] bool forward_known(std::size_t i = 0) const {
    const auto* c = connection(i);
    return c == nullptr || c->forward_known();
  }
  /// True when data is being offered on this endpoint this cycle.
  [[nodiscard]] bool has_data(std::size_t i = 0) const {
    const auto* c = connection(i);
    if (c == nullptr) return default_value_.has_value();
    return c->forward_known() && c->enabled();
  }
  [[nodiscard]] const Value& data(std::size_t i = 0) const {
    const auto* c = connection(i);
    if (c == nullptr) {
      if (default_value_) return *default_value_;
      throw liberty::SimulationError("read of unconnected input endpoint " +
                                     ref(i));
    }
    return c->data();
  }
  void ack(std::size_t i = 0) {
    if (auto* c = connection(i)) c->ack();
  }
  void nack(std::size_t i = 0) {
    if (auto* c = connection(i)) c->nack();
  }
  [[nodiscard]] bool ack_driven(std::size_t i = 0) const {
    const auto* c = connection(i);
    return c == nullptr || c->ack_known();
  }

  // ---- Output-side accessors (valid when dir == Out) ----------------------

  void send(const Value& v) { send_at(0, v); }
  void send_at(std::size_t i, const Value& v) {
    if (auto* c = connection(i)) c->send(v);
  }
  void idle(std::size_t i = 0) {
    if (auto* c = connection(i)) c->idle();
  }
  [[nodiscard]] bool sent(std::size_t i = 0) const {
    const auto* c = connection(i);
    return c != nullptr && c->forward_known() && c->enabled();
  }
  [[nodiscard]] bool ack_known(std::size_t i = 0) const {
    const auto* c = connection(i);
    return c == nullptr || c->ack_known();
  }
  [[nodiscard]] bool acked(std::size_t i = 0) const {
    const auto* c = connection(i);
    if (c == nullptr) return unconnected_ack_;
    return c->ack_known() && c->acked();
  }

  // ---- Shared -------------------------------------------------------------

  /// True when this endpoint completes a transfer this cycle (valid once the
  /// cycle is fully resolved; unconnected outputs "transfer" into the void
  /// when they sent and the default ack accepts).
  [[nodiscard]] bool transferred(std::size_t i = 0) const {
    const auto* c = connection(i);
    if (c == nullptr) {
      if (dir_ == PortDir::In) return false;
      return false;  // nothing was actually sent anywhere
    }
    return c->transferred();
  }

  /// Default value presented by unconnected *input* endpoints.  Unset means
  /// "offers nothing" (the common default).
  void set_default_value(Value v) { default_value_ = std::move(v); }
  [[nodiscard]] const std::optional<Value>& default_value() const noexcept {
    return default_value_;
  }

  /// Whether unconnected *output* endpoints report acked().  Defaults to
  /// true so that producers with nowhere to send do not stall.
  void set_unconnected_ack(bool a) noexcept { unconnected_ack_ = a; }
  [[nodiscard]] bool unconnected_ack() const noexcept {
    return unconnected_ack_;
  }

  [[nodiscard]] AckMode default_ack_mode() const noexcept {
    return default_ack_;
  }

  [[nodiscard]] std::size_t min_connections() const noexcept {
    return min_conns_;
  }
  [[nodiscard]] std::size_t max_connections() const noexcept {
    return max_conns_;
  }

  [[nodiscard]] std::string ref(std::size_t i) const;

  /// First unbound endpoint index (append semantics for connect()).
  [[nodiscard]] std::size_t next_free() const noexcept {
    for (std::size_t i = 0; i < conns_.size(); ++i) {
      if (conns_[i] == nullptr) return i;
    }
    return conns_.size();
  }

 private:
  friend class Netlist;

  /// Bind a connection at endpoint `i`, growing the endpoint list.
  void bind(std::size_t i, Connection* c) {
    if (i >= conns_.size()) conns_.resize(i + 1, nullptr);
    if (conns_[i] != nullptr) {
      throw liberty::ElaborationError("endpoint already connected: " + ref(i));
    }
    conns_[i] = c;
  }

  Module* owner_;
  std::string name_;
  PortDir dir_;
  std::size_t min_conns_;
  std::size_t max_conns_;
  AckMode default_ack_;
  std::optional<Value> default_value_;
  bool unconnected_ack_ = true;
  std::vector<Connection*> conns_;
};

}  // namespace liberty::core
