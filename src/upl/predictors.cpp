#include "liberty/upl/predictors.hpp"

namespace liberty::upl {

std::unique_ptr<Predictor> make_predictor(const std::string& kind,
                                          std::size_t entries) {
  if (kind == "taken") return std::make_unique<StaticPredictor>(true);
  if (kind == "not_taken") return std::make_unique<StaticPredictor>(false);
  if (kind == "bimodal") return std::make_unique<BimodalPredictor>(entries);
  if (kind == "gshare") return std::make_unique<GSharePredictor>(entries * 4);
  if (kind == "tournament") {
    return std::make_unique<TournamentPredictor>(entries);
  }
  throw liberty::ElaborationError("unknown predictor kind '" + kind + "'");
}

}  // namespace liberty::upl
