// Three-valued signal logic used by the Liberty reactive model of
// computation.  Within a clock cycle every control signal starts Unknown and
// resolves monotonically to Asserted or Negated exactly once; it never
// changes again until the next cycle.  This monotonicity is what guarantees
// that the per-cycle reactive evaluation reaches a unique fixed point.
#pragma once

#include <cstdint>
#include <ostream>
#include <string_view>

namespace liberty {

enum class Tristate : std::uint8_t {
  Unknown = 0,
  Negated = 1,
  Asserted = 2,
};

[[nodiscard]] constexpr bool known(Tristate t) noexcept {
  return t != Tristate::Unknown;
}

[[nodiscard]] constexpr bool asserted(Tristate t) noexcept {
  return t == Tristate::Asserted;
}

[[nodiscard]] constexpr bool negated(Tristate t) noexcept {
  return t == Tristate::Negated;
}

[[nodiscard]] constexpr Tristate to_tristate(bool b) noexcept {
  return b ? Tristate::Asserted : Tristate::Negated;
}

[[nodiscard]] constexpr std::string_view to_string(Tristate t) noexcept {
  switch (t) {
    case Tristate::Unknown: return "unknown";
    case Tristate::Negated: return "negated";
    case Tristate::Asserted: return "asserted";
  }
  return "invalid";
}

inline std::ostream& operator<<(std::ostream& os, Tristate t) {
  return os << to_string(t);
}

}  // namespace liberty
