// The long differential sweep: 500 fuzzed netlists, each run under the
// dynamic reference plus static, parallel(1,2,8) and compiled candidates —
// and then again with dynamic/static/parallel(2)/compiled at optimizer
// level 2 — requiring bit-identical transfers, state digests, and
// statistics.  Carries the
// `fuzz` CTest label so it can be targeted (or excluded) with `ctest -L
// fuzz` / `ctest -LE fuzz`.
#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <utility>

#include "liberty/ccl/ccl.hpp"
#include "liberty/gen/compiled_scheduler.hpp"
#include "liberty/gen/native.hpp"
#include "liberty/resil/durable.hpp"
#include "liberty/resil/recovery.hpp"
#include "liberty/scenario/rack.hpp"
#include "liberty/testing/fuzzer.hpp"
#include "liberty/testing/oracle.hpp"
#include "test_util.hpp"

namespace {

using liberty::core::SchedulerKind;
using liberty::testing::Candidate;

TEST(FuzzStress, FiveHundredSeedsZeroDivergence) {
  liberty::core::ModuleRegistry registry;
  liberty::pcl::register_pcl(registry);
  liberty::ccl::register_ccl(registry);
  const liberty::testing::FuzzConfig cfg;
  liberty::testing::OracleConfig oracle;
  oracle.candidates = {
      Candidate{SchedulerKind::Static, 0},
      Candidate{SchedulerKind::Parallel, 1},
      Candidate{SchedulerKind::Parallel, 2},
      Candidate{SchedulerKind::Parallel, 8},
      Candidate{SchedulerKind::Compiled, 0},
      Candidate{SchedulerKind::Dynamic, 0, /*opt_level=*/2},
      Candidate{SchedulerKind::Static, 0, /*opt_level=*/2},
      Candidate{SchedulerKind::Parallel, 2, /*opt_level=*/2},
      Candidate{SchedulerKind::Compiled, 0, /*opt_level=*/2},
  };
  for (std::uint64_t seed = 1; seed <= 500; ++seed) {
    const liberty::testing::NetSpec spec =
        liberty::testing::generate_netlist(seed, cfg);
    const liberty::testing::OracleResult r =
        liberty::testing::run_oracle(spec, registry, oracle);
    ASSERT_TRUE(r.ok) << "seed " << seed << "\n"
                      << r.report() << spec.render();
  }
}

// The rack family: seeded full-system netlists (every component library at
// once — hosts, NIC firmware cores, coherence planes, the wormhole mesh)
// through the same differential oracle.  Smaller battery than the pcl/ccl
// sweep because each netlist is two orders of magnitude bigger.
TEST(FuzzStress, RackFamilyFiveHundredSeedsZeroDivergence) {
  liberty::core::ModuleRegistry registry;
  liberty::scenario::register_rack_libraries(registry);
  liberty::gen::ensure_registered();
  liberty::testing::OracleConfig oracle;
  oracle.snapshot_every = 256;
  oracle.candidates = {
      Candidate{SchedulerKind::Static, 0},
      Candidate{SchedulerKind::Parallel, 2},
      Candidate{SchedulerKind::Compiled, 0},
      Candidate{SchedulerKind::Static, 0, /*opt_level=*/2},
      Candidate{SchedulerKind::Compiled, 0, /*opt_level=*/2},
  };
  for (std::uint64_t seed = 1; seed <= 500; ++seed) {
    const liberty::testing::NetSpec spec =
        liberty::scenario::fuzz_rack_netspec(seed);
    const liberty::testing::OracleResult r =
        liberty::testing::run_oracle(spec, registry, oracle);
    ASSERT_TRUE(r.ok) << "rack seed " << seed << "\n"
                      << r.report() << spec.render();
  }
}

// Crash-recovery slice: SIGKILL a durable rack run at 100 seeded cycles
// and prove every resume reaches the uninterrupted digest bit-identically
// (docs/resilience.md, "Durable checkpoints").  The scheduler rotates
// across the kinds so the spill/resume path is exercised under each
// kernel.
TEST(FuzzStress, RackKillResumeHundredSeededCyclesBitIdentical) {
  liberty::core::ModuleRegistry registry;
  liberty::scenario::register_rack_libraries(registry);
  liberty::gen::ensure_registered();
  liberty::scenario::RackConfig cfg;  // default 2x2 mesh
  cfg.requests_per_node = 2;
  cfg.worker_iters = 8;
  cfg.cycles = 400;
  const liberty::testing::NetSpec spec = liberty::scenario::rack_netspec(cfg);

  const auto run_durable = [&](SchedulerKind kind, unsigned threads,
                               const std::string& dir, bool resume,
                               liberty::core::Cycle kill_at) {
    liberty::core::Netlist nl;
    spec.build(nl, registry);
    liberty::resil::SupervisorConfig scfg;
    scfg.scheduler = kind;
    scfg.threads = threads;
    scfg.checkpoint_every = 16;
    scfg.policy = liberty::resil::RecoveryPolicy::Abort;
    liberty::resil::DurableConfig dcfg;
    dcfg.dir = dir;
    dcfg.keep_last = 4;
    dcfg.resume = resume;
    dcfg.kill_at = kill_at;
    liberty::resil::DurableSupervisor sup(nl, scfg, dcfg);
    const liberty::resil::RecoveryReport rep = sup.run(cfg.cycles);
    EXPECT_TRUE(rep.completed) << rep.summary();
    return std::make_pair(rep.trace_digest(), rep.state_digest);
  };

  const struct {
    SchedulerKind kind;
    unsigned threads;
  } kinds[] = {{SchedulerKind::Dynamic, 0},
               {SchedulerKind::Static, 0},
               {SchedulerKind::Parallel, 2},
               {SchedulerKind::Compiled, 0}};

  // One uninterrupted reference digest per scheduler kind.
  std::pair<std::uint64_t, std::uint64_t> full[4];
  for (std::size_t k = 0; k < 4; ++k) {
    char tmpl[] = "/tmp/liberty-rack-ref-XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    full[k] = run_durable(kinds[k].kind, kinds[k].threads, tmpl, false, 0);
    std::error_code ec;
    std::filesystem::remove_all(tmpl, ec);
  }
  ASSERT_EQ(full[0], full[1]);  // schedulers agree before we start killing
  ASSERT_EQ(full[0], full[2]);
  ASSERT_EQ(full[0], full[3]);

  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    // Seeded kill cycle in [10, 390): past the first spill, before the end.
    const liberty::core::Cycle kill_at =
        10 + (seed * 2654435761ULL) % (cfg.cycles - 20);
    const auto& kc = kinds[seed % 4];
    char tmpl[] = "/tmp/liberty-rack-kill-XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    const std::string dir = tmpl;

    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // Child: dies by SIGKILL when kill_at commits.
      liberty::core::Netlist nl;
      spec.build(nl, registry);
      liberty::resil::SupervisorConfig scfg;
      scfg.scheduler = kc.kind;
      scfg.threads = kc.threads;
      scfg.checkpoint_every = 16;
      liberty::resil::DurableConfig dcfg;
      dcfg.dir = dir;
      dcfg.keep_last = 4;
      dcfg.kill_at = kill_at;
      liberty::resil::DurableSupervisor sup(nl, scfg, dcfg);
      (void)sup.run(cfg.cycles);
      ::_exit(42);  // kill_at never fired: the parent flags this
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
        << "seed " << seed << ": child survived its kill cycle " << kill_at
        << " (status " << status << ")";

    const auto resumed = run_durable(kc.kind, kc.threads, dir, true, 0);
    EXPECT_EQ(resumed, full[seed % 4])
        << "seed " << seed << " killed at " << kill_at << " diverged";
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  }
}

// Native-codegen slice: 200 fuzzed netlists against the native scheduler
// at -O0 and -O2.  Chains the emitter declines run on the bytecode
// fallback inside the same scheduler, so every generated netlist is a
// valid candidate.  Skips cleanly in LIBERTY_NATIVE_CODEGEN=OFF builds.
TEST(FuzzStress, NativeTwoHundredSeedsZeroDivergence) {
  if (!liberty::gen::native_available()) {
    GTEST_SKIP() << "built with LIBERTY_NATIVE_CODEGEN=OFF";
  }
  liberty::gen::ensure_registered();
  // One shared artifact cache for the whole sweep, and -O0 host compiles:
  // distinct netlist shapes each cost one toolchain invocation, repeats
  // are cache hits.
  char tmpl[] = "/tmp/liberty-native-fuzz-XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  liberty::gen::native_options().cache_dir = tmpl;
  liberty::gen::native_options().backend_opt = 0;

  liberty::core::ModuleRegistry registry;
  liberty::pcl::register_pcl(registry);
  liberty::ccl::register_ccl(registry);
  const liberty::testing::FuzzConfig cfg;
  liberty::testing::OracleConfig oracle;
  oracle.candidates = {
      Candidate{SchedulerKind::Native, 0},
      Candidate{SchedulerKind::Native, 0, /*opt_level=*/2},
  };
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const liberty::testing::NetSpec spec =
        liberty::testing::generate_netlist(seed, cfg);
    const liberty::testing::OracleResult r =
        liberty::testing::run_oracle(spec, registry, oracle);
    if (!r.ok) {
      liberty::gen::native_options() = liberty::gen::NativeOptions{};
      std::filesystem::remove_all(tmpl);
    }
    ASSERT_TRUE(r.ok) << "native seed " << seed << "\n"
                      << r.report() << spec.render();
  }
  liberty::gen::native_options() = liberty::gen::NativeOptions{};
  std::error_code ec;
  std::filesystem::remove_all(tmpl, ec);
}

}  // namespace
