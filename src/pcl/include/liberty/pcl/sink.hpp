// Sink: consumes values, measures latency of Stamped payloads, and can end
// the simulation after a target item count — the measurement end of most
// testbenches.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "liberty/core/module.hpp"
#include "liberty/core/params.hpp"

namespace liberty::pcl {

/// Consumes everything offered on its input port (AutoAccept ack).
///
/// Parameters:
///   stop_after   request simulation stop after consuming this many values
///                (0 = never)                                       [0]
///
/// Stats: consumed; latency histogram when values are pcl::Stamped.
class Sink : public liberty::core::Module {
 public:
  using ConsumeHook =
      std::function<void(const liberty::Value&, liberty::core::Cycle)>;

  Sink(const std::string& name, const liberty::core::Params& params);

  void end_of_cycle() override;
  void save_state(liberty::core::StateWriter& w) const override;
  void load_state(liberty::core::StateReader& r) override;
  void declare_opt(liberty::core::OptTraits& traits) const override;
  [[nodiscard]] bool can_sleep() const override;

  /// Algorithmic parameter: called for every consumed value.
  void set_consume_hook(ConsumeHook hook) { hook_ = std::move(hook); }

  [[nodiscard]] std::uint64_t consumed() const noexcept { return consumed_; }
  [[nodiscard]] std::uint64_t stop_after() const noexcept {
    return stop_after_;
  }
  [[nodiscard]] bool has_consume_hook() const noexcept {
    return static_cast<bool>(hook_);
  }

 private:
  liberty::core::Port& in_;
  std::uint64_t stop_after_;
  std::uint64_t consumed_ = 0;
  ConsumeHook hook_;

  // Resolved-once stat handles (see StatSet::bind).
  liberty::Counter* consumed_stat_ = nullptr;
  liberty::Histogram* latency_stat_ = nullptr;
};

}  // namespace liberty::pcl
