// Observability subsystem: the trace/metrics exporters produce valid,
// schema-conformant JSON; the kernel profiler's books balance against the
// scheduler's own counters; and — the load-bearing invariant — probes and
// transfer observers are pure observers: every scheduler reports the same
// transfer stream, with or without profiling attached.
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "liberty/ccl/ccl.hpp"
#include "liberty/core/simulator.hpp"
#include "liberty/obs/json.hpp"
#include "liberty/obs/metrics.hpp"
#include "liberty/obs/profiler.hpp"
#include "liberty/obs/trace.hpp"
#include "liberty/pcl/pcl.hpp"
#include "liberty/testing/fuzzer.hpp"
#include "liberty/testing/netspec.hpp"
#include "liberty/testing/oracle.hpp"
#include "test_util.hpp"

namespace {

using liberty::core::Connection;
using liberty::core::Cycle;
using liberty::core::Netlist;
using liberty::core::SchedulerKind;
using liberty::core::Simulator;
using liberty::obs::ChromeTraceWriter;
using liberty::obs::CycleProfiler;
using liberty::obs::JsonValue;
using liberty::obs::MetricsRegistry;
using liberty::obs::RunMeta;
using liberty::obs::json_parse;
using liberty::testing::FuzzConfig;
using liberty::testing::NetSpec;
using liberty::testing::generate_netlist;

/// Generated netlists may weave in CCL flit traffic.
liberty::core::ModuleRegistry& fuzz_registry() {
  static liberty::core::ModuleRegistry r = [] {
    liberty::core::ModuleRegistry reg;
    liberty::pcl::register_pcl(reg);
    liberty::ccl::register_ccl(reg);
    return reg;
  }();
  return r;
}

/// src -> queue -> sink pipeline with steady traffic.
void build_pipeline(Netlist& nl) {
  auto& src = nl.make<liberty::pcl::Source>(
      "src", liberty::test::params({{"kind", liberty::Value(std::string(
                                                 "counter"))},
                                    {"period", liberty::Value(
                                                   std::int64_t{1})}}));
  auto& q = nl.make<liberty::pcl::Queue>(
      "q", liberty::test::params({{"depth", liberty::Value(std::int64_t{4})}}));
  auto& snk = nl.make<liberty::pcl::Sink>("snk", liberty::core::Params());
  nl.connect(src.out("out"), q.in("in"));
  nl.connect(q.out("out"), snk.in("in"));
  nl.finalize();
}

// --- JSON helpers ----------------------------------------------------------

TEST(ObsJson, WriterParserRoundTrip) {
  std::ostringstream oss;
  {
    liberty::obs::JsonWriter w(oss);
    w.begin_object();
    w.field("name", "a \"quoted\"\nvalue");
    w.field("count", std::uint64_t{42});
    w.field("ratio", 0.25);
    w.field("on", true);
    w.begin_array("items");
    w.element_raw("{\"x\":1}");
    w.element_raw("2");
    w.end_array();
    w.end_object();
  }
  const JsonValue doc = json_parse(oss.str());
  ASSERT_TRUE(doc.is_object());
  ASSERT_NE(doc.get("name"), nullptr);
  EXPECT_EQ(doc.get("name")->string, "a \"quoted\"\nvalue");
  EXPECT_DOUBLE_EQ(doc.get("count")->number, 42.0);
  EXPECT_DOUBLE_EQ(doc.get("ratio")->number, 0.25);
  EXPECT_TRUE(doc.get("on")->boolean);
  ASSERT_TRUE(doc.get("items")->is_array());
  ASSERT_EQ(doc.get("items")->array.size(), 2u);
  EXPECT_DOUBLE_EQ(doc.get("items")->array[0].get("x")->number, 1.0);
}

TEST(ObsJson, ParserRejectsGarbage) {
  EXPECT_THROW(json_parse("{\"a\": }"), liberty::Error);
  EXPECT_THROW(json_parse("{} trailing"), liberty::Error);
  EXPECT_THROW(json_parse("{\"a\": 1"), liberty::Error);
}

// --- Chrome trace ----------------------------------------------------------

TEST(ObsTrace, StructurallyValidChromeTrace) {
  Netlist nl;
  build_pipeline(nl);
  Simulator sim(nl, SchedulerKind::Parallel, 2);

  std::ostringstream trace_out;
  CycleProfiler prof;
  ChromeTraceWriter trace(trace_out);
  trace.attach_transfers(sim);
  prof.set_sink(&trace);
  sim.set_probe(&prof);

  constexpr Cycle kCycles = 50;
  sim.run(kCycles);
  trace.finish();

  std::uint64_t transfers = 0;
  for (const auto& c : nl.connections()) transfers += c->transfer_count();
  ASSERT_GT(transfers, 0u);

  const JsonValue doc = json_parse(trace_out.str());
  ASSERT_TRUE(doc.is_object());
  const JsonValue* events = doc.get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_FALSE(events->array.empty());

  std::map<std::string, std::size_t> by_ph;
  std::map<std::string, std::size_t> phase_slices;
  for (const JsonValue& ev : events->array) {
    ASSERT_TRUE(ev.is_object());
    const JsonValue* ph = ev.get("ph");
    ASSERT_NE(ph, nullptr);
    ASSERT_TRUE(ph->is_string());
    ++by_ph[ph->string];
    ASSERT_NE(ev.get("pid"), nullptr);
    if (ph->string == "X") {
      // Complete events carry numeric ts and dur.
      ASSERT_NE(ev.get("ts"), nullptr);
      ASSERT_TRUE(ev.get("ts")->is_number());
      ASSERT_NE(ev.get("dur"), nullptr);
      ASSERT_TRUE(ev.get("dur")->is_number());
      EXPECT_GE(ev.get("dur")->number, 0.0);
      if (const JsonValue* cat = ev.get("cat");
          cat != nullptr && cat->string == "phase") {
        ++phase_slices[ev.get("name")->string];
      }
    }
  }
  // One slice per phase per cycle.
  for (const char* phase : {"cycle_start", "resolve", "update", "commit"}) {
    EXPECT_EQ(phase_slices[phase], kCycles) << phase;
  }
  // One flow-event pair per transfer.
  EXPECT_EQ(by_ph["s"], transfers);
  EXPECT_EQ(by_ph["f"], transfers);
  EXPECT_GT(by_ph["M"], 0u);  // process/thread metadata present
}

// --- Metrics ---------------------------------------------------------------

TEST(ObsMetrics, JsonSchemaRoundTrip) {
  Netlist nl;
  build_pipeline(nl);
  Simulator sim(nl, SchedulerKind::Dynamic);
  CycleProfiler prof;
  sim.set_probe(&prof);
  constexpr Cycle kCycles = 40;
  sim.run(kCycles);

  MetricsRegistry reg;
  reg.collect_modules(nl);
  reg.collect_scheduler(sim.scheduler());
  reg.collect_profile(prof, &nl);
  RunMeta meta;
  meta.tool = "test_obs";
  meta.spec = "pipeline";
  meta.scheduler = "dynamic";
  meta.cycles = kCycles;
  meta.git_rev = "test";

  std::ostringstream oss;
  reg.write_json(oss, meta);
  const JsonValue doc = json_parse(oss.str());
  ASSERT_TRUE(doc.is_object());
  ASSERT_NE(doc.get("schema"), nullptr);
  EXPECT_EQ(doc.get("schema")->string, liberty::obs::kMetricsSchemaName);
  EXPECT_DOUBLE_EQ(doc.get("schema_version")->number,
                   liberty::obs::kMetricsSchemaVersion);
  const JsonValue* m = doc.get("meta");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->get("tool")->string, "test_obs");
  EXPECT_DOUBLE_EQ(m->get("cycles")->number, kCycles);

  const JsonValue* counters = doc.get("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_TRUE(counters->is_object());
  const JsonValue* cycles_run = counters->get("scheduler.cycles_run");
  ASSERT_NE(cycles_run, nullptr);
  EXPECT_DOUBLE_EQ(cycles_run->number, kCycles);
  const JsonValue* prof_cycles = counters->get("profile.cycles");
  ASSERT_NE(prof_cycles, nullptr);
  EXPECT_DOUBLE_EQ(prof_cycles->number, kCycles);
  // Module stats federate under module.<instance>.
  bool has_module_metric = false;
  for (const auto& [key, value] : counters->object) {
    if (key.rfind("module.", 0) == 0) has_module_metric = true;
  }
  EXPECT_TRUE(has_module_metric);
  ASSERT_NE(doc.get("scalars"), nullptr);
  ASSERT_NE(doc.get("summaries"), nullptr);
}

TEST(ObsMetrics, CsvHasMetaAndRows) {
  MetricsRegistry reg;
  reg.add_counter("scheduler.cycles_run", 7);
  MetricsRegistry::Summary s;
  s.count = 2;
  s.mean = 1.5;
  s.has_quantiles = true;
  s.p50 = 1.0;
  s.p95 = 2.0;
  s.p99 = 2.0;
  reg.add_summary("module.q.occupancy", s);
  RunMeta meta;
  meta.tool = "test_obs";
  std::ostringstream oss;
  reg.write_csv(oss, meta);
  const std::string out = oss.str();
  EXPECT_EQ(out.rfind("section,name,field,value\n", 0), 0u) << out;
  EXPECT_NE(out.find("meta,schema,value,liberty.metrics"), std::string::npos);
  EXPECT_NE(out.find("counter,scheduler.cycles_run,value,7"),
            std::string::npos);
  EXPECT_NE(out.find("summary,module.q.occupancy,p99,2"), std::string::npos);
}

// --- Profiler accounting ---------------------------------------------------

TEST(ObsProfiler, BooksBalanceAgainstSchedulerCounters) {
  Netlist nl;
  build_pipeline(nl);
  Simulator sim(nl, SchedulerKind::Dynamic);
  CycleProfiler prof;
  sim.set_probe(&prof);
  constexpr Cycle kCycles = 30;
  sim.run(kCycles);

  EXPECT_EQ(prof.cycles(), kCycles);
  for (const auto& phase : prof.phases()) {
    EXPECT_EQ(phase.count, kCycles);
    EXPECT_GE(phase.seconds, 0.0);
  }
  // Every react() the scheduler counted was attributed to some module.
  std::uint64_t attributed = 0;
  for (const std::uint64_t r : prof.module_reacts()) attributed += r;
  EXPECT_EQ(attributed, sim.scheduler().react_calls());
}

TEST(ObsProfiler, ParallelLanesAccounted) {
  Netlist nl;
  build_pipeline(nl);
  Simulator sim(nl, SchedulerKind::Parallel, 2);
  CycleProfiler prof;
  sim.set_probe(&prof);
  sim.run(25);

  std::uint64_t attributed = 0;
  for (const std::uint64_t r : prof.module_reacts()) attributed += r;
  EXPECT_EQ(attributed, sim.scheduler().react_calls());
  // Wave/lane accounting only exists when waves were actually dispatched
  // to the pool (narrow waves run inline).
  if (prof.waves() > 0) {
    EXPECT_FALSE(prof.lanes().empty());
    EXPECT_GE(prof.lane_idle_seconds(), 0.0);
  }
}

// --- Observer identity across schedulers -----------------------------------

std::vector<std::string> record_transfers(const NetSpec& spec,
                                          SchedulerKind kind,
                                          unsigned threads, bool profile) {
  Netlist nl;
  spec.build(nl, fuzz_registry());
  Simulator sim(nl, kind, threads);
  CycleProfiler prof;
  if (profile) sim.set_probe(&prof);
  std::vector<std::string> events;
  sim.observe_transfers([&events](const Connection& c, Cycle cycle) {
    events.push_back("@" + std::to_string(cycle) + " conn#" +
                     std::to_string(c.id()) + " = " + c.data().to_string());
  });
  sim.run(spec.cycles);
  return events;
}

TEST(ObsIdentity, TransferObserverIdenticalAcrossSchedulers) {
  FuzzConfig cfg;
  cfg.feedback_prob = 1.0;  // always thread a feedback ring into the net
  bool saw_transfers = false;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const NetSpec spec = generate_netlist(seed, cfg);
    const auto ref = record_transfers(spec, SchedulerKind::Dynamic, 0,
                                      /*profile=*/false);
    saw_transfers = saw_transfers || !ref.empty();
    // Same events in the same order — under every scheduler, and
    // indifferent to an attached profiler.
    EXPECT_EQ(record_transfers(spec, SchedulerKind::Dynamic, 0, true), ref)
        << "seed " << seed;
    EXPECT_EQ(record_transfers(spec, SchedulerKind::Static, 0, true), ref)
        << "seed " << seed;
    EXPECT_EQ(record_transfers(spec, SchedulerKind::Parallel, 1, true), ref)
        << "seed " << seed;
    EXPECT_EQ(record_transfers(spec, SchedulerKind::Parallel, 4, true), ref)
        << "seed " << seed;
  }
  EXPECT_TRUE(saw_transfers);
}

TEST(ObsIdentity, OracleSweepPassesWithProfilingEnabled) {
  liberty::testing::OracleConfig oracle;
  oracle.profile = true;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const NetSpec spec = generate_netlist(seed, FuzzConfig{});
    const auto result =
        liberty::testing::run_oracle(spec, fuzz_registry(), oracle);
    EXPECT_TRUE(result.ok) << "seed " << seed << "\n" << result.report();
  }
}

}  // namespace
