// Fundamental kernel types.
#pragma once

#include <cstddef>
#include <cstdint>

namespace liberty::core {

/// Simulation time, in clock cycles.  The Liberty model of computation is
/// synchronous: all modules share one logical clock, and within each cycle
/// signals resolve to a fixed point before state is committed.
using Cycle = std::uint64_t;

/// Dense identifier of a connection within a netlist.
using ConnId = std::size_t;

/// Dense identifier of a module instance within a netlist.
using ModuleId = std::size_t;

/// A "channel" is one direction of one connection, the unit of scheduling:
/// the forward channel carries (enable, data) downstream, the backward
/// channel carries ack upstream.
using ChannelId = std::size_t;

enum class ChannelKind : std::uint8_t { Forward = 0, Backward = 1 };

[[nodiscard]] constexpr ChannelId forward_channel(ConnId c) noexcept {
  return c * 2;
}
[[nodiscard]] constexpr ChannelId backward_channel(ConnId c) noexcept {
  return c * 2 + 1;
}
[[nodiscard]] constexpr ConnId channel_conn(ChannelId ch) noexcept {
  return ch / 2;
}
[[nodiscard]] constexpr ChannelKind channel_kind(ChannelId ch) noexcept {
  return (ch % 2 == 0) ? ChannelKind::Forward : ChannelKind::Backward;
}

}  // namespace liberty::core
