// Durable checkpoint serialization: the byte-level substrate under the
// resil DurableSupervisor (docs/resilience.md, "Durable checkpoints").
//
// A KernelSnapshot is an in-process object graph: per-module Value slots
// that may share immutable Payload objects by pointer.  To survive process
// death those slots must become bytes and come back — across builds,
// compilers, and optimization levels.  Three pieces make that work:
//
//   ByteWriter / ByteReader   little-endian fixed-width primitives with
//                             length-prefixed strings; the reader throws
//                             SimulationError on underflow so torn input
//                             can never be silently misparsed.
//   payload codec registry    component libraries register an
//                             encoder/decoder pair per Payload subclass
//                             under a stable wire name ("ccl.flit", ...).
//                             Registration rides the existing register_*()
//                             entry points, so linking a library makes its
//                             payloads durable.  Encoding a payload with no
//                             codec throws — the durable layer degrades to
//                             "no checkpoint this run" with a diagnostic
//                             rather than writing an unreadable file.
//   checkpoint format v1      a versioned container: magic, version, body
//                             length, netlist topology hash, cycle, stop
//                             flag, aux seed, per-module slot vectors
//                             (module Rng state rides in the slots via
//                             save_rng), the per-cycle trace-hash prefix
//                             (so a resumed run can reproduce the full-run
//                             trace digest), and a trailing CRC32 over
//                             everything before it.  parse_checkpoint
//                             rejects — with a reason, never an exception —
//                             anything truncated, bit-flipped, version-
//                             skewed, or undecodable.
//
// The topology hash (Netlist::topology_hash) is structural — instance
// names, endpoint refs, ack modes, quarantine state — deliberately not
// typeid names, so the same model hashes identically under different
// compilers and a golden checkpoint stays loadable forever.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <typeindex>
#include <vector>

#include "liberty/core/simulator.hpp"
#include "liberty/core/types.hpp"
#include "liberty/support/value.hpp"

namespace liberty::core {

// --- byte-level primitives -------------------------------------------------

class ByteWriter {
 public:
  void put_u8(std::uint8_t x) { buf_.push_back(static_cast<char>(x)); }
  void put_u16(std::uint16_t x) { put_le(x, 2); }
  void put_u32(std::uint32_t x) { put_le(x, 4); }
  void put_u64(std::uint64_t x) { put_le(x, 8); }
  void put_i64(std::int64_t x) { put_u64(static_cast<std::uint64_t>(x)); }
  void put_real(double x);
  void put_bytes(const void* data, std::size_t n) {
    buf_.append(static_cast<const char*>(data), n);
  }
  /// u32 length prefix + raw bytes.
  void put_string(std::string_view s);

  [[nodiscard]] const std::string& bytes() const noexcept { return buf_; }
  [[nodiscard]] std::string take() && { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }

  /// Overwrite 8 bytes at `at` (body-length backpatching).
  void patch_u64(std::size_t at, std::uint64_t x);

 private:
  void put_le(std::uint64_t x, int n) {
    for (int i = 0; i < n; ++i) {
      buf_.push_back(static_cast<char>((x >> (8 * i)) & 0xffU));
    }
  }
  std::string buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes) : bytes_(bytes) {}

  [[nodiscard]] std::uint8_t get_u8();
  [[nodiscard]] std::uint16_t get_u16() {
    return static_cast<std::uint16_t>(get_le(2));
  }
  [[nodiscard]] std::uint32_t get_u32() {
    return static_cast<std::uint32_t>(get_le(4));
  }
  [[nodiscard]] std::uint64_t get_u64() { return get_le(8); }
  [[nodiscard]] std::int64_t get_i64() {
    return static_cast<std::int64_t>(get_u64());
  }
  [[nodiscard]] double get_real();
  [[nodiscard]] std::string get_string();

  [[nodiscard]] std::size_t pos() const noexcept { return pos_; }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return bytes_.size() - pos_;
  }
  [[nodiscard]] bool exhausted() const noexcept {
    return pos_ == bytes_.size();
  }

 private:
  [[nodiscard]] std::uint64_t get_le(int n);
  std::string_view bytes_;
  std::size_t pos_ = 0;
};

/// CRC-32 (IEEE 802.3 polynomial, reflected) over `n` bytes; chain calls by
/// passing the previous return as `seed`.
[[nodiscard]] std::uint32_t crc32_bytes(const void* data, std::size_t n,
                                        std::uint32_t seed = 0);

// --- payload codecs --------------------------------------------------------

using PayloadEncoder =
    std::function<void(const liberty::Payload&, ByteWriter&)>;
using PayloadDecoder = std::function<liberty::Value(ByteReader&)>;

/// Register a codec for one Payload subclass under a stable wire `name`.
/// Idempotent by name: re-registering the same name is a no-op, so the
/// component libraries' register_*() entry points may run repeatedly.
void register_payload_codec(std::string name, std::type_index type,
                            PayloadEncoder encode, PayloadDecoder decode);
[[nodiscard]] bool payload_codec_registered(std::string_view name);

/// Serialize one Value (recursively: payloads may embed Values).  Throws
/// SimulationError when a payload type has no registered codec.
void encode_value(ByteWriter& w, const liberty::Value& v);
/// Inverse of encode_value.  Throws SimulationError on an unknown codec
/// name or malformed bytes.
[[nodiscard]] liberty::Value decode_value(ByteReader& r);

// --- checkpoint container --------------------------------------------------

inline constexpr std::uint32_t kCheckpointMagic = 0x504b434cU;  // "LCKP"
inline constexpr std::uint32_t kCheckpointVersion = 1;

struct CheckpointImage {
  std::uint64_t topology_hash = 0;  // Netlist::topology_hash() at save
  std::uint64_t aux_seed = 0;       // workload/plan seed echo (diagnostics)
  KernelSnapshot snapshot;          // cycle, stop flag, module slots
  std::vector<std::uint64_t> trace_hashes;  // per-cycle prefix [0, cycle)
};

/// Serialize to the on-disk v1 format.  Throws SimulationError when a slot
/// holds a payload with no registered codec.
[[nodiscard]] std::string serialize_checkpoint(const CheckpointImage& img);

/// Parse bytes back into `out`.  Returns false with a human-readable
/// `why` on any defect (truncation, CRC mismatch, bad magic/version,
/// unknown payload codec) — never throws for malformed input.  Topology
/// compatibility is the caller's check: compare out.topology_hash.
[[nodiscard]] bool parse_checkpoint(std::string_view bytes,
                                    CheckpointImage& out, std::string& why);

}  // namespace liberty::core
