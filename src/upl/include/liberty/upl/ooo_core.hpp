// OoOCore: a behavioral out-of-order processor model.
//
// Where pipeline.hpp models a core *structurally* (five communicating
// modules), OoOCore models one *behaviorally*: a single module that replays
// the program's dynamic instruction trace (produced by the functional
// emulator) through a timing model with a fetch width, an instruction
// window, a reorder buffer, latency-typed functional units, an online
// branch predictor, and an internal data cache.  The pair demonstrates the
// paper's §2.2 point that models at different abstraction levels coexist in
// one system: both are just modules.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "liberty/core/module.hpp"
#include "liberty/core/params.hpp"
#include "liberty/upl/cache.hpp"
#include "liberty/upl/isa.hpp"
#include "liberty/upl/predictors.hpp"

namespace liberty::upl {

/// Parameters:
///   width               fetch/issue/commit width               [4]
///   window              instruction window capacity            [32]
///   rob                 reorder buffer capacity                [64]
///   predictor           direction predictor kind               [gshare]
///   mispredict_penalty  extra frontend refill cycles           [8]
///   mul_latency / div_latency                                  [3 / 12]
///   load_hit / load_miss  dcache hit / miss latency            [2 / 40]
///   dcache_sets / dcache_ways / dcache_line                    [64/4/4]
///   max_instrs          trace length bound                     [1000000]
///   stop_on_halt        request simulation stop at completion  [true]
///   program             LRISC assembly text, assembled at construction [""]
///
/// The program is attached with set_program() or the `program` parameter.
/// Stats: retired, cycles, mispredicts, dcache_hits, dcache_misses,
/// window_occupancy.
class OoOCore : public liberty::core::Module {
 public:
  OoOCore(const std::string& name, const liberty::core::Params& params);

  /// The program is copied; the core owns everything it replays.
  void set_program(Program prog) {
    prog_ = std::move(prog);
    have_program_ = true;
  }

  void init() override;
  void end_of_cycle() override;
  void save_state(liberty::core::StateWriter& w) const override;
  void load_state(liberty::core::StateReader& r) override;

  [[nodiscard]] bool done() const noexcept {
    return trace_ready_ && commit_ptr_ >= trace_.size();
  }
  [[nodiscard]] std::uint64_t retired() const noexcept { return commit_ptr_; }
  [[nodiscard]] double ipc() const {
    const auto cycles = stats().counter_value("cycles");
    return cycles == 0 ? 0.0
                       : static_cast<double>(commit_ptr_) /
                             static_cast<double>(cycles);
  }
  [[nodiscard]] const std::vector<std::int64_t>& output() const noexcept {
    return output_;
  }

 private:
  struct TraceEntry {
    Instr instr;
    std::uint64_t pc = 0;
    bool taken = false;          // branch outcome
    std::uint64_t mem_addr = 0;  // loads/stores
  };

  /// A trace entry in flight through the machine.
  struct InFlight {
    std::size_t idx = 0;        // trace index
    bool issued = false;
    std::uint64_t done = 0;     // completion cycle (valid once issued)
  };

  void build_trace();
  [[nodiscard]] std::uint64_t exec_latency(const TraceEntry& e);
  void do_commit();
  void do_issue();
  void do_fetch();

  Program prog_;
  bool have_program_ = false;
  std::size_t width_;
  std::size_t window_size_;
  std::size_t rob_size_;
  std::unique_ptr<Predictor> pred_;
  std::uint64_t mispredict_penalty_;
  std::uint64_t mul_latency_;
  std::uint64_t div_latency_;
  std::uint64_t load_hit_;
  std::uint64_t load_miss_;
  std::uint64_t max_instrs_;
  bool stop_on_halt_;
  CacheModel dcache_;

  std::vector<TraceEntry> trace_;
  std::vector<std::int64_t> output_;
  bool trace_ready_ = false;

  std::deque<InFlight> rob_;       // in program order; window = unissued
  std::size_t fetch_ptr_ = 0;      // next trace index to fetch
  std::size_t commit_ptr_ = 0;     // retired count
  std::uint64_t reg_ready_[32] = {};
  std::unordered_map<std::uint64_t, std::uint64_t> store_ready_;
  std::uint64_t fetch_stalled_until_ = 0;
  std::optional<std::size_t> blocking_branch_;  // trace idx awaiting resolve
};

}  // namespace liberty::upl
