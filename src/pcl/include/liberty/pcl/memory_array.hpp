// MemoryArray: request/response storage primitive.
//
// §3.1 names memory arrays among the PCL primitives, and §3 notes "the
// memory array primitive component ... can double as bus queuing buffers
// for CCL as well as caches in UPL".  UPL's cache module and MPL's memory
// controller both instantiate it.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>

#include "liberty/core/module.hpp"
#include "liberty/core/params.hpp"

namespace liberty::pcl {

/// Accepts pcl::MemReq values on `req`, produces pcl::MemResp values on
/// `resp` after a fixed access latency.  Multiple outstanding requests are
/// pipelined up to `mshrs` entries.  Responses return on the `resp`
/// endpoint with the same index as the `req` endpoint that carried the
/// request, so several masters can share one memory.
///
/// Parameters:
///   latency   access latency in cycles (>= 1)                 [1]
///   mshrs     maximum outstanding requests                    [4]
///   ports     requests accepted per cycle                     [1]
///
/// Stats: reads, writes, busy_stalls.
class MemoryArray : public liberty::core::Module {
 public:
  MemoryArray(const std::string& name, const liberty::core::Params& params);

  void cycle_start(liberty::core::Cycle c) override;
  void end_of_cycle() override;
  void declare_deps(liberty::core::Deps& deps) const override;
  void save_state(liberty::core::StateWriter& w) const override;
  void load_state(liberty::core::StateReader& r) override;

  /// Backdoor access (program loading, checking final state in tests).
  void poke(std::uint64_t addr, std::int64_t data) { store_[addr] = data; }
  [[nodiscard]] std::int64_t peek(std::uint64_t addr) const {
    const auto it = store_.find(addr);
    return it == store_.end() ? 0 : it->second;
  }

 private:
  struct Pending {
    liberty::Value resp;
    liberty::core::Cycle ready;
    std::size_t src_ep;  // respond on the matching endpoint
  };

  liberty::core::Port& req_;
  liberty::core::Port& resp_;
  std::uint64_t latency_;
  std::size_t mshrs_;
  std::size_t ports_;
  std::unordered_map<std::uint64_t, std::int64_t> store_;
  std::deque<Pending> pending_;

  // Resolved-once stat handles (see StatSet::bind).
  liberty::Counter* reads_stat_ = nullptr;
  liberty::Counter* writes_stat_ = nullptr;
  liberty::Counter* busy_stalls_stat_ = nullptr;
};

}  // namespace liberty::pcl
