// Request traces for the rack scenario (docs/scenarios.md).
//
// A trace is the workload of a whole rack: an ordered list of requests,
// each saying "at cycle C (or later), node SRC sends node DST a payload of
// W words".  Traces come from a file (`trace` CLI flag of rack_sim), from
// the seeded synthetic generator below, or are embedded verbatim in a
// NetSpec parameter so the differential oracle can rebuild the identical
// workload under every scheduler.
//
// Text format ("liberty.trace v1", one request per line):
//
//     # comment
//     req <cycle> <src> <dst> <words>
//
// Request ids are assigned by line order; payload word 0 carries the id
// and word 1 the injection cycle, which is how the sink measures
// end-to-end latency without side channels.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace liberty::scenario {

/// One rack-level request: src sends dst a `words`-word payload no
/// earlier than `cycle`.
struct TraceRequest {
  std::uint64_t id = 0;
  std::uint64_t cycle = 0;  // earliest injection cycle at the source
  std::size_t src = 0;
  std::size_t dst = 0;
  std::size_t words = 2;  // payload length; >= 2 (header: id, birth)
};

/// Synthetic workload shape.  Same config + same seed => the same trace,
/// bit for bit, on every platform (liberty::Rng is xoshiro256**).
struct TraceConfig {
  std::size_t nodes = 4;
  std::size_t per_node = 8;   // requests injected by each node
  std::uint64_t seed = 1;
  std::size_t min_words = 2;  // payload bounds, inclusive
  std::size_t max_words = 8;
  std::uint64_t start = 32;     // earliest injection cycle
  std::uint64_t mean_gap = 96;  // mean cycles between a node's requests
};

/// Deterministic synthetic trace: per node, requests at cumulative random
/// gaps, each to a uniform other node with a uniform payload size; the
/// merged list is ordered by (cycle, src) and ids assigned in that order.
[[nodiscard]] std::vector<TraceRequest> synthetic_trace(
    const TraceConfig& cfg);

/// Render to / parse from the text format above.  parse_trace throws
/// liberty::ElaborationError on malformed input and reassigns ids by line
/// order.
[[nodiscard]] std::string render_trace(const std::vector<TraceRequest>& reqs);
[[nodiscard]] std::vector<TraceRequest> parse_trace(const std::string& text);

}  // namespace liberty::scenario
