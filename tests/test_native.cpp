// Native codegen backend (liberty::gen native): eligibility, bit-identity
// against the dynamic reference at -O0 and -O2, graceful degradation when
// the toolchain fails, artifact-cache hygiene, and mid-flight
// snapshot/restore.  The cache-key unit tests run in every build; the
// rest skip cleanly when LIBERTY_NATIVE_CODEGEN is OFF.
#include <gtest/gtest.h>
#include <sys/stat.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "liberty/core/state.hpp"
#include "liberty/gen/native.hpp"
#include "liberty/opt/optimizer.hpp"
#include "liberty/scenario/rack.hpp"
#include "liberty/testing/oracle.hpp"
#include "test_util.hpp"

namespace {

using liberty::Value;
using liberty::core::Connection;
using liberty::core::Cycle;
using liberty::core::Netlist;
using liberty::core::Params;
using liberty::core::SchedulerKind;
using liberty::core::Simulator;
using liberty::pcl::Delay;
using liberty::pcl::Queue;
using liberty::pcl::Sink;
using liberty::pcl::Source;
using liberty::test::params;

// ---------------------------------------------------------------------------
// Cache key: pure, present in every build.

TEST(NativeCacheKey, EveryIngredientKeysTheArtifact) {
  const std::string src = "extern \"C\" int f();";
  const auto base = liberty::gen::native_cache_key(src, "g++ 12.2.0", 2);
  EXPECT_EQ(base, liberty::gen::native_cache_key(src, "g++ 12.2.0", 2));
  EXPECT_NE(base, liberty::gen::native_cache_key(src + " ", "g++ 12.2.0", 2));
  // A compiler upgrade alone must retire the cache entry.
  EXPECT_NE(base, liberty::gen::native_cache_key(src, "g++ 13.1.0", 2));
  EXPECT_NE(base, liberty::gen::native_cache_key(src, "g++ 12.2.0", 0));
}

TEST(NativeCacheKey, FieldBoundariesDoNotCollide) {
  EXPECT_NE(liberty::gen::native_cache_key("ab", "c", 0),
            liberty::gen::native_cache_key("a", "bc", 0));
}

// ---------------------------------------------------------------------------
// Build-configuration gates: both of these run (and pass) whether or not
// the backend was built; the first documents the skip, the second proves
// SchedulerKind::Native always yields a working simulator.

TEST(NativeBackend, AvailabilityGate) {
  if (!liberty::gen::native_available()) {
    GTEST_SKIP() << "built with LIBERTY_NATIVE_CODEGEN=OFF; "
                    "--scheduler native degrades to compiled bytecode";
  }
}

TEST(NativeBackend, NativeKindAlwaysConstructs) {
  liberty::gen::ensure_registered();
  Netlist nl;
  auto& s = nl.make<Source>(
      "s", params({{"kind", "counter"}, {"period", 1}, {"count", 20}}));
  auto& k = nl.make<Sink>("k", params({{"stop_after", 20}}));
  nl.connect(s.out("out"), k.in("in"));
  nl.finalize();
  Simulator sim(nl, SchedulerKind::Native);
  sim.run(100);
  EXPECT_EQ(k.consumed(), 20u);
}

#if defined(LIBERTY_NATIVE_CODEGEN)

using liberty::gen::NativeScheduler;

/// Every fixture run gets its own artifact cache (and cleans it up), so
/// invocation-count assertions cannot see artifacts from other tests.
class NativeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!liberty::gen::native_available()) {
      GTEST_SKIP() << "built with LIBERTY_NATIVE_CODEGEN=OFF";
    }
    liberty::gen::ensure_registered();
    char tmpl[] = "/tmp/liberty-native-test-XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    cache_dir_ = tmpl;
    liberty::gen::native_options().cache_dir = cache_dir_;
  }
  void TearDown() override {
    liberty::gen::native_options() = liberty::gen::NativeOptions{};
    if (!cache_dir_.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(cache_dir_, ec);
    }
  }
  std::string cache_dir_;
};

/// Two emitter-eligible chains (one counter lane with a delay, one token
/// lane) plus, optionally, a rate-driven stochastic chain the emitter has
/// no recipe for — that one must keep running on the bytecode tapes of
/// the same scheduler.
void build_chains(Netlist& nl, bool with_residue) {
  auto& a0 = nl.make<Source>(
      "a0", params({{"kind", "counter"}, {"period", 1}, {"count", 400}}));
  auto& a1 = nl.make<Queue>("a1", params({{"depth", 4}}));
  auto& a2 = nl.make<Delay>("a2", params({{"latency", 3}}));
  auto& a3 = nl.make<Sink>("a3", Params());
  nl.connect(a0.out("out"), a1.in("in"));
  nl.connect(a1.out("out"), a2.in("in"));
  nl.connect(a2.out("out"), a3.in("in"));

  auto& b0 = nl.make<Source>(
      "b0", params({{"kind", "token"}, {"period", 3}, {"start", 5}}));
  auto& b1 = nl.make<Queue>("b1", params({{"depth", 2}}));
  auto& b2 = nl.make<Sink>("b2", Params());
  nl.connect(b0.out("out"), b1.in("in"));
  nl.connect(b1.out("out"), b2.in("in"));

  if (with_residue) {
    auto& c0 = nl.make<Source>(
        "c0", params({{"kind", "random"}, {"period", 0}, {"rate", 0.6},
                      {"seed", 11}, {"stamp", true}}));
    auto& c1 = nl.make<Queue>("c1", params({{"depth", 3}}));
    auto& c2 = nl.make<Sink>("c2", Params());
    nl.connect(c0.out("out"), c1.in("in"));
    nl.connect(c1.out("out"), c2.in("in"));
  }
  nl.finalize();
}

struct RunResult {
  std::vector<std::string> transfers;
  std::string digest;
  std::string stats;
};

RunResult run_chains(SchedulerKind kind, bool with_residue, int opt_level,
                     Cycle cycles) {
  Netlist nl;
  build_chains(nl, with_residue);
  if (opt_level > 0) {
    (void)liberty::opt::optimize(
        nl, liberty::opt::OptOptions::for_level(opt_level));
  }
  Simulator sim(nl, kind);
  RunResult r;
  sim.observe_transfers([&r](const Connection& c, Cycle cycle) {
    r.transfers.push_back(std::to_string(cycle) + ":" +
                          std::to_string(c.id()) + "=" +
                          c.data().to_string());
  });
  sim.run(cycles);
  r.digest = sim.snapshot().digest();
  std::ostringstream oss;
  nl.dump_stats(oss);
  r.stats = oss.str();
  return r;
}

TEST_F(NativeTest, EligibleChainsRunOnTheImage) {
  Netlist nl;
  build_chains(nl, /*with_residue=*/true);
  NativeScheduler sched(nl);
  EXPECT_TRUE(sched.native_active());
  EXPECT_EQ(sched.native_module_count(), 7u);   // chains a (4) + b (3)
  EXPECT_EQ(sched.native_channel_count(), 5u);  // 3 + 2 links
  EXPECT_NE(sched.native_source().find("ln_start"), std::string::npos);
}

TEST_F(NativeTest, WholeNetlistFallsBackWhenNothingIsEligible) {
  Netlist nl;
  auto& s = nl.make<Source>(
      "s", params({{"kind", "random"}, {"period", 0}, {"rate", 0.5}}));
  auto& k = nl.make<Sink>("k", Params());
  nl.connect(s.out("out"), k.in("in"));
  nl.finalize();
  NativeScheduler sched(nl);
  EXPECT_FALSE(sched.native_active());
  EXPECT_TRUE(sched.native_source().empty());
}

TEST_F(NativeTest, BitIdenticalToDynamicAtO0AndO2) {
  for (const int opt_level : {0, 2}) {
    const RunResult dyn =
        run_chains(SchedulerKind::Dynamic, true, opt_level, 600);
    const RunResult nat =
        run_chains(SchedulerKind::Native, true, opt_level, 600);
    EXPECT_EQ(dyn.transfers, nat.transfers) << "-O" << opt_level;
    EXPECT_EQ(dyn.digest, nat.digest) << "-O" << opt_level;
    EXPECT_EQ(dyn.stats, nat.stats) << "-O" << opt_level;
    EXPECT_FALSE(nat.transfers.empty());
  }
}

TEST_F(NativeTest, ForcedCompileFailureDegradesToBytecode) {
  ASSERT_EQ(::setenv("LIBERTY_NATIVE_FORCE_FAIL", "1", 1), 0);
  Netlist nl;
  build_chains(nl, /*with_residue=*/false);
  NativeScheduler degraded(nl);
  EXPECT_FALSE(degraded.native_active());
  ::unsetenv("LIBERTY_NATIVE_FORCE_FAIL");

  // The degraded scheduler still runs the netlist bit-identically.
  const RunResult dyn = run_chains(SchedulerKind::Dynamic, false, 0, 300);
  ASSERT_EQ(::setenv("LIBERTY_NATIVE_FORCE_FAIL", "1", 1), 0);
  const RunResult nat = run_chains(SchedulerKind::Native, false, 0, 300);
  ::unsetenv("LIBERTY_NATIVE_FORCE_FAIL");
  EXPECT_EQ(dyn.transfers, nat.transfers);
  EXPECT_EQ(dyn.digest, nat.digest);
  EXPECT_EQ(dyn.stats, nat.stats);
}

TEST_F(NativeTest, SecondElaborationHitsTheCache) {
  const auto build_once = [] {
    Netlist nl;
    build_chains(nl, /*with_residue=*/false);
    NativeScheduler sched(nl);
    return sched.native_active();
  };
  const std::uint64_t before = liberty::gen::native_compile_invocations();
  ASSERT_TRUE(build_once());
  const std::uint64_t after_first = liberty::gen::native_compile_invocations();
  EXPECT_EQ(after_first, before + 1);  // cold: exactly one compile
  ASSERT_TRUE(build_once());
  // Identical netlist, same cache: the artifact is reused, the host
  // compiler is not invoked again.
  EXPECT_EQ(liberty::gen::native_compile_invocations(), after_first);
}

TEST_F(NativeTest, MidFlightSnapshotRestoreReplaysIdentically) {
  Netlist nl;
  build_chains(nl, /*with_residue=*/true);
  Simulator sim(nl, SchedulerKind::Native);
  sim.run(75);
  const auto snap = sim.snapshot();
  sim.run(50);
  const auto first = sim.snapshot().digest();

  sim.restore(snap);
  EXPECT_EQ(sim.snapshot().digest(), snap.digest());
  sim.run(50);
  EXPECT_EQ(sim.snapshot().digest(), first);

  // And the replayed trajectory is the dynamic one: a fresh dynamic
  // simulator reaches the same state digest at the same cycle.
  Netlist ref;
  build_chains(ref, /*with_residue=*/true);
  Simulator dyn(ref, SchedulerKind::Dynamic);
  dyn.run(125);
  EXPECT_EQ(dyn.snapshot().digest(), first);
}

TEST_F(NativeTest, TruncatedCacheArtifactIsQuarantinedAndRunDegrades) {
  const auto build_once = [] {
    Netlist nl;
    build_chains(nl, /*with_residue=*/false);
    NativeScheduler sched(nl);
    return sched.native_active();
  };
  ASSERT_TRUE(build_once());  // populate the cache

  // Truncate the cached image, simulating a torn write or partial copy.
  std::filesystem::path so;
  for (const auto& e : std::filesystem::directory_iterator(cache_dir_)) {
    if (e.path().extension() == ".so") so = e.path();
  }
  ASSERT_FALSE(so.empty());
  std::filesystem::resize_file(so, std::filesystem::file_size(so) / 2);

  // The next elaboration detects the size mismatch against the manifest,
  // quarantines the artifact, and degrades to bytecode — it does NOT
  // recompile behind the operator's back, and it does not dlopen garbage.
  const std::uint64_t compiles = liberty::gen::native_compile_invocations();
  const std::uint64_t quarantined = liberty::gen::native_cache_quarantined();
  ASSERT_FALSE(build_once());
  EXPECT_EQ(liberty::gen::native_compile_invocations(), compiles);
  EXPECT_EQ(liberty::gen::native_cache_quarantined(), quarantined + 1);
  EXPECT_FALSE(std::filesystem::exists(so));
  EXPECT_TRUE(std::filesystem::exists(so.string() + ".quarantined"));

  // The degraded run is still bit-identical to dynamic...
  const RunResult dyn = run_chains(SchedulerKind::Dynamic, false, 0, 300);
  const RunResult nat = run_chains(SchedulerKind::Native, false, 0, 300);
  EXPECT_EQ(dyn.transfers, nat.transfers);
  EXPECT_EQ(dyn.digest, nat.digest);

  // ...and the slot is vacant, so the next elaboration recompiles.
  ASSERT_TRUE(build_once());
  EXPECT_GT(liberty::gen::native_compile_invocations(), compiles);
}

TEST_F(NativeTest, HungCompilerIsKilledRetriedAndDegradesToBytecode) {
  // A fake compiler that identifies itself but never finishes compiling.
  const std::string fake = cache_dir_ + "/fakecc";
  {
    std::ofstream f(fake);
    f << "#!/bin/sh\n"
         "if [ \"$1\" = \"--version\" ]; then echo fakecc 1.0; exit 0; fi\n"
         "sleep 30\n";
  }
  ASSERT_EQ(::chmod(fake.c_str(), 0755), 0);
  ASSERT_EQ(::setenv("LIBERTY_NATIVE_CXX", fake.c_str(), 1), 0);
  ASSERT_EQ(::setenv("LIBERTY_NATIVE_COMPILE_TIMEOUT_MS", "150", 1), 0);

  const std::uint64_t compiles = liberty::gen::native_compile_invocations();
  const std::uint64_t timeouts = liberty::gen::native_compile_timeouts();
  const std::uint64_t retries = liberty::gen::native_compile_retries();
  Netlist nl;
  build_chains(nl, /*with_residue=*/false);
  NativeScheduler degraded(nl);
  ::unsetenv("LIBERTY_NATIVE_CXX");
  ::unsetenv("LIBERTY_NATIVE_COMPILE_TIMEOUT_MS");

  // Both attempts hit the wall-clock deadline and were killed; the retry
  // was counted; the scheduler fell back to bytecode instead of hanging.
  EXPECT_FALSE(degraded.native_active());
  EXPECT_EQ(liberty::gen::native_compile_invocations(), compiles + 2);
  EXPECT_EQ(liberty::gen::native_compile_timeouts(), timeouts + 2);
  EXPECT_EQ(liberty::gen::native_compile_retries(), retries + 1);
}

TEST_F(NativeTest, RackScenarioDigestMatchesDynamic) {
  liberty::core::ModuleRegistry registry;
  liberty::scenario::register_rack_libraries(registry);
  liberty::scenario::RackConfig cfg;  // default 2x2 mesh
  cfg.cycles = 2000;
  liberty::testing::NetSpec spec = liberty::scenario::rack_netspec(cfg);
  liberty::testing::OracleConfig oracle;
  oracle.snapshot_every = 256;
  oracle.candidates = {
      liberty::testing::Candidate{SchedulerKind::Native, 0},
      liberty::testing::Candidate{SchedulerKind::Native, 0, /*opt_level=*/2},
  };
  const liberty::testing::OracleResult r =
      liberty::testing::run_oracle(spec, registry, oracle);
  EXPECT_TRUE(r.ok) << r.report();
}

#endif  // LIBERTY_NATIVE_CODEGEN

}  // namespace
