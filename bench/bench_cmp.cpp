// E2 (paper Figure 2(a)): chip multi-processor scaling.
//
// GP cores (UPL) + coherent L1s (MPL) + NIs (NIL) on a mesh NoC (CCL),
// directory home at the last node.  Each core executes a fixed slice of
// independent work through the coherent memory system; we sweep core count
// and report completion time, speedup over 1 core, and NoC load.
// Shape expectation: near-linear speedup while the directory and NoC are
// unsaturated, flattening as the shared home node becomes the bottleneck.
#include "bench_util.hpp"

using namespace liberty;
using namespace liberty::bench;

namespace {

std::string slice_prog(int id, int elems) {
  const int base = 1024 + id * 256;
  return "  li r1, 0\n"
         "  li r2, " + std::to_string(elems) + "\n"
         "  li r3, " + std::to_string(base) + "\n"
         "init:\n"
         "  add r4, r3, r1\n"
         "  sw r1, 0(r4)\n"
         "  addi r1, r1, 1\n"
         "  blt r1, r2, init\n"
         "  li r1, 0\n"
         "  li r5, 0\n"
         "sum:\n"
         "  add r4, r3, r1\n"
         "  lw r6, 0(r4)\n"
         "  add r5, r5, r6\n"
         "  addi r1, r1, 1\n"
         "  blt r1, r2, sum\n"
         "  out r5\n"
         "  halt\n";
}

struct CmpResult {
  std::uint64_t cycles = 0;
  std::uint64_t noc_flits = 0;
  double noc_pj = 0.0;
  bool correct = true;
};

CmpResult run_cmp(int cores, std::size_t dim, int elems) {
  core::Netlist nl;
  ccl::Fabric mesh = ccl::build_mesh(nl, "noc", dim, dim);
  const std::size_t home = dim * dim - 1;
  std::vector<upl::SimpleCpu*> cpus;
  for (int i = 0; i < cores; ++i) {
    auto& cpu = nl.make<upl::SimpleCpu>("gp" + std::to_string(i),
                                        core::Params());
    auto& l1 = nl.make<mpl::DirCache>(
        "l1_" + std::to_string(i),
        core::Params().set("id", i).set("sets", 32).set("ways", 2)
            .set("line_words", 4)
            .set("home0", static_cast<std::int64_t>(home)));
    auto& ni = nl.make<nil::FabricAdapter>(
        "ni" + std::to_string(i), core::Params().set("id", i).set("vcs", 1));
    cpu.set_program(upl::assemble(slice_prog(i, elems)));
    cpus.push_back(&cpu);
    nl.connect(cpu.out("mem_req"), l1.in("cpu_req"));
    nl.connect(l1.out("cpu_resp"), cpu.in("mem_resp"));
    nl.connect(l1.out("msg_out"), ni.in("msg_in"));
    nl.connect(ni.out("msg_out"), l1.in("msg_in"));
    nl.connect_at(ni.out("net_out"), 0, mesh.inject_port(i), 0);
    nl.connect_at(mesh.eject_port(i), 0, ni.in("net_in"), 0);
  }
  auto& dir = nl.make<mpl::DirectoryCtl>(
      "dir", core::Params().set("id", static_cast<std::int64_t>(home))
                 .set("home0", static_cast<std::int64_t>(home))
                 .set("line_words", 4).set("latency", 8));
  auto& dni = nl.make<nil::FabricAdapter>(
      "dni", core::Params().set("id", static_cast<std::int64_t>(home))
                 .set("vcs", 1));
  nl.connect(dir.out("msg_out"), dni.in("msg_in"));
  nl.connect(dni.out("msg_out"), dir.in("msg_in"));
  nl.connect_at(dni.out("net_out"), 0, mesh.inject_port(home), 0);
  nl.connect_at(mesh.eject_port(home), 0, dni.in("net_in"), 0);
  nl.finalize();

  core::Simulator sim(nl, core::SchedulerKind::Static);
  CmpResult r;
  while (r.cycles < 3'000'000) {
    bool all = true;
    for (const auto* c : cpus) all = all && c->halted();
    if (all) break;
    sim.step();
    ++r.cycles;
  }
  const std::int64_t expect =
      static_cast<std::int64_t>(elems) * (elems - 1) / 2;
  for (const auto* c : cpus) {
    if (c->output().empty() || c->output()[0] != expect) r.correct = false;
  }
  for (const ccl::Router* rt : mesh.routers) {
    r.noc_flits += rt->stats().counter_value("flits_out");
  }
  r.noc_pj = mesh.total_router_energy_pj();
  return r;
}

}  // namespace

int main() {
  std::printf("E2: CMP scaling (Figure 2a), per-core slice of 64 words\n\n");
  constexpr int kElems = 64;
  Table t({"cores", "mesh", "cycles", "speedup*", "noc flits", "noc pJ",
           "correct"});
  const CmpResult base = run_cmp(1, 2, kElems);
  struct Cfg {
    int cores;
    std::size_t dim;
  };
  for (const Cfg cfg : {Cfg{1, 2}, Cfg{2, 2}, Cfg{3, 2}, Cfg{8, 3},
                        Cfg{15, 4}}) {
    const CmpResult r = run_cmp(cfg.cores, cfg.dim, kElems);
    // Throughput speedup: total work grows with cores at ~constant time.
    const double speedup = static_cast<double>(cfg.cores) *
                           static_cast<double>(base.cycles) /
                           static_cast<double>(r.cycles);
    t.row({fmt(static_cast<std::uint64_t>(cfg.cores)),
           std::to_string(cfg.dim) + "x" + std::to_string(cfg.dim),
           fmt(r.cycles), fmt(speedup, 2), fmt(r.noc_flits),
           fmt(r.noc_pj, 0), r.correct ? "yes" : "NO"});
  }
  t.print();
  std::printf("\n(*) work scales with cores: speedup = cores x t1 / tN.\n"
              "shape check: near-linear throughput scaling until the single "
              "directory home saturates.\n");
  return 0;
}
