#include "liberty/pcl/routing.hpp"

#include "liberty/core/opt.hpp"
#include "liberty/pcl/payloads.hpp"
#include "liberty/support/error.hpp"

namespace liberty::pcl {

using liberty::core::AckMode;
using liberty::core::bwd;
using liberty::core::Cycle;
using liberty::core::Deps;
using liberty::core::fwd;
using liberty::core::Params;

// ---------------------------------------------------------------------------
// Tee
// ---------------------------------------------------------------------------

Tee::Tee(const std::string& name, const Params& params)
    : Module(name),
      in_(add_in("in", AckMode::Managed, 1, 1)),
      out_(add_out("out", 1)) {
  (void)params;
}

void Tee::init() { delivered_.assign(out_.width(), false); }

void Tee::react() {
  if (in_.forward_known()) {
    if (in_.has_data()) {
      for (std::size_t i = 0; i < out_.width(); ++i) {
        if (delivered_[i]) {
          out_.idle(i);  // this branch already took the current item
        } else {
          out_.send_at(i, in_.data());
        }
      }
    } else {
      for (std::size_t i = 0; i < out_.width(); ++i) out_.idle(i);
    }
  }
  if (!in_.ack_driven()) {
    bool all_known = true;
    bool all_taken = true;
    for (std::size_t i = 0; i < out_.width(); ++i) {
      if (delivered_[i]) continue;
      if (!out_.ack_known(i)) {
        all_known = false;
        break;
      }
      all_taken = all_taken && out_.acked(i);
    }
    if (all_known) {
      if (all_taken) {
        in_.ack();  // the last outstanding branch accepts this cycle
      } else {
        in_.nack();
      }
    }
  }
}

void Tee::end_of_cycle() {
  if (in_.transferred()) {
    // Broadcast complete: every branch has the item.
    stats().bind(broadcasts_stat_, "broadcasts");
    broadcasts_stat_->inc();
    delivered_.assign(out_.width(), false);
    return;
  }
  for (std::size_t i = 0; i < out_.width(); ++i) {
    if (out_.transferred(i)) delivered_[i] = true;
  }
}

void Tee::save_state(liberty::core::StateWriter& w) const {
  w.put_size(delivered_.size());
  for (const bool d : delivered_) w.put_bool(d);
}

void Tee::load_state(liberty::core::StateReader& r) {
  delivered_.assign(r.get_size(), false);
  for (std::size_t i = 0; i < delivered_.size(); ++i) {
    delivered_[i] = r.get_bool();
  }
}

void Tee::declare_deps(Deps& deps) const {
  deps.depends(out_, {fwd(in_)});
  deps.depends(in_, {bwd(out_)});
}

void Tee::declare_opt(liberty::core::OptTraits& traits) const {
  // Not a pass-through: the input ack depends on the delivered_ bookkeeping
  // across all branches, so Tee is gateable but never fused.
  traits.sleepable();
}

bool Tee::can_sleep() const {
  // delivered_ mutates only when something transferred this cycle; with no
  // transfers the drives repeat verbatim next cycle.
  if (in_.transferred()) return false;
  for (std::size_t i = 0; i < out_.width(); ++i) {
    if (out_.transferred(i)) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Mux
// ---------------------------------------------------------------------------

Mux::Mux(const std::string& name, const Params& params)
    : Module(name),
      in_(add_in("in", AckMode::Managed, 1)),
      sel_(add_in("sel", AckMode::AutoAccept, 1, 1)),
      out_(add_out("out", 0, 1)) {
  (void)params;
}

void Mux::react() {
  if (!sel_.forward_known()) return;
  const bool have_sel = sel_.has_data();
  std::size_t sel = 0;
  if (have_sel) {
    const std::int64_t raw = sel_.data().as_int();
    if (raw < 0 || static_cast<std::size_t>(raw) >= in_.width()) {
      throw liberty::SimulationError("pcl.mux '" + name() +
                                     "': selection out of range: " +
                                     std::to_string(raw));
    }
    sel = static_cast<std::size_t>(raw);
  }

  // Forward the selected offer once it is known.
  if (have_sel) {
    if (in_.forward_known(sel) && !out_.sent() ) {
      if (in_.has_data(sel)) {
        out_.send(in_.data(sel));
      } else {
        out_.idle();
      }
    }
  } else {
    out_.idle();
  }

  // Acks: unselected inputs are refused; the selected one mirrors the
  // output's ack.
  for (std::size_t i = 0; i < in_.width(); ++i) {
    if (have_sel && i == sel) continue;
    in_.nack(i);
  }
  if (have_sel && !in_.ack_driven(sel) && out_.ack_known()) {
    if (out_.acked()) {
      in_.ack(sel);
    } else {
      in_.nack(sel);
    }
  }
}

void Mux::declare_deps(Deps& deps) const {
  deps.depends(out_, {fwd(in_), fwd(sel_)});
  deps.depends(in_, {fwd(in_), fwd(sel_), bwd(out_)});
}

// ---------------------------------------------------------------------------
// Demux
// ---------------------------------------------------------------------------

Demux::Demux(const std::string& name, const Params& params)
    : Module(name),
      in_(add_in("in", AckMode::Managed, 1, 1)),
      out_(add_out("out", 1)) {
  (void)params;
}

std::size_t Demux::route(const liberty::Value& v) const {
  std::size_t key = 0;
  if (selector_) {
    key = selector_(v);
  } else if (auto routable = v.try_as<Payload>();
             routable != nullptr) {
    const auto* r = dynamic_cast<const Routable*>(routable.get());
    if (r == nullptr) {
      throw liberty::SimulationError("pcl.demux '" + name() +
                                     "': payload is not Routable");
    }
    key = r->route_key();
  } else {
    key = static_cast<std::size_t>(v.as_int());
  }
  if (key >= out_.width()) {
    throw liberty::SimulationError("pcl.demux '" + name() +
                                   "': route key " + std::to_string(key) +
                                   " exceeds output width " +
                                   std::to_string(out_.width()));
  }
  return key;
}

void Demux::react() {
  if (!in_.forward_known()) return;
  if (!in_.has_data()) {
    for (std::size_t i = 0; i < out_.width(); ++i) out_.idle(i);
    if (!in_.ack_driven()) in_.nack();
    return;
  }
  const std::size_t target = route(in_.data());
  for (std::size_t i = 0; i < out_.width(); ++i) {
    if (i == target) {
      out_.send_at(i, in_.data());
    } else {
      out_.idle(i);
    }
  }
  if (!in_.ack_driven() && out_.ack_known(target)) {
    if (out_.acked(target)) {
      in_.ack();
    } else {
      in_.nack();
    }
  }
}

void Demux::declare_deps(Deps& deps) const {
  deps.depends(out_, {fwd(in_)});
  deps.depends(in_, {fwd(in_), bwd(out_)});
}

// ---------------------------------------------------------------------------
// Crossbar
// ---------------------------------------------------------------------------

Crossbar::Crossbar(const std::string& name, const Params& params)
    : Module(name),
      in_(add_in("in", AckMode::Managed, 1)),
      out_(add_out("out", 1)) {
  (void)params;
}

void Crossbar::init() { rr_.assign(out_.width(), 0); }

std::size_t Crossbar::route(const liberty::Value& v) const {
  std::size_t key = 0;
  if (selector_) {
    key = selector_(v);
  } else if (auto payload = v.try_as<Payload>(); payload != nullptr) {
    const auto* r = dynamic_cast<const Routable*>(payload.get());
    if (r == nullptr) {
      throw liberty::SimulationError("pcl.crossbar '" + name() +
                                     "': payload is not Routable");
    }
    key = r->route_key();
  } else {
    key = static_cast<std::size_t>(v.as_int());
  }
  return key % out_.width();
}

void Crossbar::cycle_start(Cycle) {
  decided_ = false;
  grant_.assign(out_.width(), -1);
}

void Crossbar::react() {
  if (!decided_) {
    // Wait for every input offer, then match inputs to outputs.
    for (std::size_t i = 0; i < in_.width(); ++i) {
      if (!in_.forward_known(i)) return;
    }
    decided_ = true;
    std::vector<std::vector<std::size_t>> wanting(out_.width());
    for (std::size_t i = 0; i < in_.width(); ++i) {
      if (in_.has_data(i)) wanting[route(in_.data(i))].push_back(i);
    }
    for (std::size_t o = 0; o < out_.width(); ++o) {
      const auto& req = wanting[o];
      if (req.empty()) {
        out_.idle(o);
        continue;
      }
      if (req.size() > 1) {
        stats().bind(conflicts_stat_, "conflicts");
        conflicts_stat_->inc();
      }
      // Round-robin among the requesters of this output.
      std::size_t win = req.front();
      for (const std::size_t i : req) {
        if (i >= rr_[o]) {
          win = i;
          break;
        }
      }
      grant_[o] = static_cast<int>(win);
      out_.send_at(o, in_.data(win));
    }
    // Inputs that lost (or had nothing) are refused now.
    for (std::size_t i = 0; i < in_.width(); ++i) {
      bool granted = false;
      for (std::size_t o = 0; o < out_.width(); ++o) {
        if (grant_[o] == static_cast<int>(i)) granted = true;
      }
      if (!granted) in_.nack(i);
    }
  }
  // Winner acks mirror their output's ack.
  for (std::size_t o = 0; o < out_.width(); ++o) {
    if (grant_[o] < 0) continue;
    const auto i = static_cast<std::size_t>(grant_[o]);
    if (!in_.ack_driven(i) && out_.ack_known(o)) {
      if (out_.acked(o)) {
        in_.ack(i);
      } else {
        in_.nack(i);
      }
    }
  }
}

void Crossbar::end_of_cycle() {
  for (std::size_t o = 0; o < out_.width(); ++o) {
    if (grant_[o] >= 0 && out_.transferred(o)) {
      stats().bind(xfers_stat_, "xfers");
      xfers_stat_->inc();
      rr_[o] = (static_cast<std::size_t>(grant_[o]) + 1) % in_.width();
    }
  }
}

void Crossbar::save_state(liberty::core::StateWriter& w) const {
  w.put_size(rr_.size());
  for (const std::size_t p : rr_) w.put_size(p);
}

void Crossbar::load_state(liberty::core::StateReader& r) {
  rr_.assign(r.get_size(), 0);
  for (auto& p : rr_) p = r.get_size();
}

void Crossbar::declare_deps(Deps& deps) const {
  deps.depends(out_, {fwd(in_)});
  deps.depends(in_, {fwd(in_), bwd(out_)});
}

}  // namespace liberty::pcl
