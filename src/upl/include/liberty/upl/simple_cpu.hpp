// SimpleCPU: a behavioral in-order processor with a structural memory port.
//
// One instruction per cycle except loads/stores, which travel through the
// `mem_req`/`mem_resp` ports (pcl::MemReq protocol) and stall the core until
// their response returns — so cache, interconnect, and coherence timing all
// show up in the core's CPI, while the core itself stays at a high level of
// abstraction.  This is the "GP" block of the paper's Figure 2 systems, and
// the abstraction-level counterpart of the detailed structural pipeline in
// pipeline.hpp (§2.2: modules at different levels of detail interoperate
// behind identical port contracts).
//
// Memory-mapped I/O: address ranges registered with map_mmio() bypass the
// memory port and invoke device callbacks instead (1-cycle access).  The
// NIL's programmable network interface runs its firmware on exactly this
// mechanism.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "liberty/core/mmio.hpp"
#include "liberty/core/module.hpp"
#include "liberty/core/params.hpp"
#include "liberty/upl/isa.hpp"

namespace liberty::upl {

/// Parameters:
///   stop_on_halt   request simulation stop when HALT retires    [false]
///   program        LRISC assembly text, assembled at construction [""]
///
/// A program may also be attached with set_program(); the `program` string
/// parameter exists so rebuildable NetSpecs (oracle, fuzzer, scenarios) can
/// express complete systems.  As an MmioHost the cpu accepts declarative
/// device bindings (attach_mmio) in addition to raw map_mmio callbacks.
/// Stats: instructions, mem_stall_cycles, cycles.
class SimpleCpu : public liberty::core::Module, public liberty::core::MmioHost {
 public:
  using MmioRead = std::function<std::int64_t(std::uint64_t addr)>;
  using MmioWrite = std::function<void(std::uint64_t addr, std::int64_t v)>;

  SimpleCpu(const std::string& name, const liberty::core::Params& params);

  /// The program is copied; the cpu owns everything it executes.
  void set_program(Program prog) {
    prog_ = std::move(prog);
    have_program_ = true;
  }
  /// Route [base, base+size) to device callbacks instead of memory.
  void map_mmio(std::uint64_t base, std::uint64_t size, MmioRead rd,
                MmioWrite wr);
  /// MmioHost: route [base, base+size) to a device register file.
  void attach_mmio(std::uint64_t base, std::uint64_t size,
                   liberty::core::MmioDevice& device) override;

  void cycle_start(liberty::core::Cycle c) override;
  void end_of_cycle() override;
  void declare_deps(liberty::core::Deps& deps) const override;
  void save_state(liberty::core::StateWriter& w) const override;
  void load_state(liberty::core::StateReader& r) override;

  [[nodiscard]] bool halted() const noexcept { return halted_; }
  [[nodiscard]] std::uint64_t retired() const noexcept { return retired_; }
  [[nodiscard]] const std::vector<std::int64_t>& output() const noexcept {
    return output_;
  }
  [[nodiscard]] std::int64_t reg(std::size_t i) const { return regs_[i]; }
  void set_reg(std::size_t i, std::int64_t v) {
    if (i != 0) regs_[i] = v;
  }
  [[nodiscard]] std::uint64_t pc() const noexcept { return pc_; }

 private:
  struct MmioRange {
    std::uint64_t base;
    std::uint64_t size;
    MmioRead read;
    MmioWrite write;
  };

  [[nodiscard]] const MmioRange* mmio_for(std::uint64_t addr) const;
  void execute_one();

  liberty::core::Port& mem_req_;
  liberty::core::Port& mem_resp_;
  bool stop_on_halt_;

  Program prog_;
  bool have_program_ = false;
  std::vector<std::int64_t> regs_ = std::vector<std::int64_t>(32, 0);
  std::uint64_t pc_ = 0;
  bool halted_ = false;
  std::uint64_t retired_ = 0;
  std::vector<std::int64_t> output_;
  std::vector<MmioRange> mmio_;

  // In-flight memory operation.
  struct PendingMem {
    liberty::Value req;
    Instr instr;
    bool sent = false;
  };
  std::optional<PendingMem> pending_;
  std::uint64_t next_tag_ = 1;
};

}  // namespace liberty::upl
