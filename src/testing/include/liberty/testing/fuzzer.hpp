// Netlist fuzzer: seeded random generation of structurally valid netlists.
//
// Generated systems are layered dataflow graphs — sources feeding a random
// mix of PCL primitives feeding sinks — optionally threaded with a feedback
// ring (arbiter -> delay -> tee -> queue -> back to the arbiter), which is
// the topology class the paper's reactive MoC exists to make well-defined.
// Every structural choice is drawn from one Rng seeded by `seed`, so a
// failing seed reproduces its netlist exactly, on any machine.
#pragma once

#include <cstdint>

#include "liberty/testing/netspec.hpp"

namespace liberty::testing {

struct FuzzConfig {
  std::size_t min_width = 2;   // modules per layer
  std::size_t max_width = 4;
  std::size_t min_layers = 1;  // middle (non-source, non-sink) layers
  std::size_t max_layers = 4;
  double feedback_prob = 0.5;  // chance of adding the feedback ring

  // Module-mix switches (CLI flags map straight onto these).
  bool use_arbiter = true;
  bool use_tee = true;
  bool use_crossbar = true;
  bool use_mux = true;
  bool use_buffer = true;
  // CCL flit traffic woven into the topology (requires a registry with
  // register_ccl; flits are Routable, so PCL steering carries them).
  bool use_ccl_traffic = true;

  liberty::core::Cycle cycles = 200;
};

/// Generate the netlist for `seed`.  Deterministic: equal (seed, config)
/// pairs yield equal specs.
[[nodiscard]] NetSpec generate_netlist(std::uint64_t seed,
                                       const FuzzConfig& config = {});

}  // namespace liberty::testing
