#include "liberty/ccl/traffic.hpp"

#include "liberty/core/opt.hpp"
#include "liberty/support/error.hpp"

namespace liberty::ccl {

using liberty::core::AckMode;
using liberty::core::Cycle;
using liberty::core::Deps;
using liberty::core::Params;

TrafficGen::TrafficGen(const std::string& name, const Params& params)
    : Module(name),
      out_(add_out("out", 0, 1)),
      id_num_(static_cast<std::size_t>(params.get_int("id", 0))),
      nodes_(static_cast<std::size_t>(params.get_int("nodes", 1))),
      pattern_(params.get_string("pattern", "uniform")),
      rate_(params.get_real("rate", 0.1)),
      count_(static_cast<std::uint64_t>(params.get_int("count", 0))),
      fixed_dst_(static_cast<std::size_t>(params.get_int("dst", 0))),
      hotspot_(static_cast<std::size_t>(params.get_int("hotspot", 0))),
      hotspot_frac_(params.get_real("hotspot_frac", 0.5)),
      cols_(static_cast<std::size_t>(params.get_int("cols", 1))),
      vcs_(static_cast<std::size_t>(params.get_int("vcs", 2))),
      length_(static_cast<std::size_t>(params.get_int("length", 1))),
      rng_(static_cast<std::uint64_t>(params.get_int("seed", 1)) * 0x9e37 +
           id_num_) {
  if (pattern_ != "uniform" && pattern_ != "transpose" &&
      pattern_ != "bitcomplement" && pattern_ != "neighbor" &&
      pattern_ != "hotspot" && pattern_ != "fixed") {
    throw liberty::ElaborationError("ccl.traffic_gen '" + name +
                                    "': unknown pattern '" + pattern_ + "'");
  }
}

std::size_t TrafficGen::pick_destination() {
  switch (pattern_[0]) {
    case 't': {  // transpose (square mesh)
      const std::size_t x = id_num_ % cols_;
      const std::size_t y = id_num_ / cols_;
      return (x * (nodes_ / cols_) + y) % nodes_;
    }
    case 'b': {  // bitcomplement
      return (~id_num_) & (nodes_ - 1);
    }
    case 'n':  // neighbor
      return (id_num_ + 1) % nodes_;
    case 'h':  // hotspot
      if (rng_.chance(hotspot_frac_)) return hotspot_;
      [[fallthrough]];
    case 'u': {  // uniform (excluding self)
      if (nodes_ <= 1) return id_num_;
      std::size_t d = static_cast<std::size_t>(rng_.below(nodes_ - 1));
      if (d >= id_num_) ++d;
      return d;
    }
    default:  // fixed
      return fixed_dst_;
  }
}

void TrafficGen::cycle_start(Cycle c) {
  const bool exhausted = count_ != 0 && generated_ >= count_;
  if (!exhausted && rng_.chance(rate_)) {
    const std::size_t dst = pick_destination();
    if (dst != id_num_) {
      const std::uint64_t pkt = generated_ | (id_num_ << 40);
      const std::size_t vc = generated_ % vcs_;
      for (std::size_t k = 0; k < length_; ++k) {
        auto flit = std::make_shared<Flit>(pkt, id_num_, dst, c, vc,
                                           /*head=*/k == 0,
                                           /*tail=*/k + 1 == length_);
        backlog_.push_back(liberty::Value(
            std::static_pointer_cast<const Payload>(std::move(flit))));
      }
    }
    ++generated_;
  }
  stats().bind(backlog_stat_, "backlog");
  backlog_stat_->add(static_cast<double>(backlog_.size()));
  if (!backlog_.empty()) {
    out_.send(backlog_.front());
  } else {
    out_.idle();
  }
}

void TrafficGen::end_of_cycle() {
  if (out_.transferred()) {
    backlog_.pop_front();
    ++injected_;
    stats().bind(injected_stat_, "injected");
    injected_stat_->inc();
  }
}

void TrafficGen::declare_deps(Deps& deps) const { deps.state_only(out_); }

void TrafficGen::save_state(liberty::core::StateWriter& w) const {
  liberty::core::save_rng(w, rng_);
  w.put_u64(generated_);
  w.put_u64(injected_);
  w.put_size(backlog_.size());
  for (const auto& v : backlog_) w.put(v);
}

void TrafficGen::load_state(liberty::core::StateReader& r) {
  liberty::core::load_rng(r, rng_);
  generated_ = r.get_u64();
  injected_ = r.get_u64();
  backlog_.clear();
  const std::size_t n = r.get_size();
  for (std::size_t i = 0; i < n; ++i) backlog_.push_back(r.get());
}

// ---------------------------------------------------------------------------
// TrafficSink
// ---------------------------------------------------------------------------

TrafficSink::TrafficSink(const std::string& name, const Params& params)
    : Module(name),
      in_(add_in("in", AckMode::AutoAccept)),
      stop_after_(
          static_cast<std::uint64_t>(params.get_int("stop_after", 0))) {}

void TrafficSink::end_of_cycle() {
  for (std::size_t i = 0; i < in_.width(); ++i) {
    if (!in_.transferred(i)) continue;
    const auto flit = in_.data(i).as<Flit>();
    ++received_;
    stats().bind(received_stat_, "received");
    received_stat_->inc();
    if (flit->tail) {
      stats().bind(packets_stat_, "packets");
      packets_stat_->inc();
    }
    stats().bind(latency_stat_, "latency", 512, 1.0);
    latency_stat_->add(static_cast<double>(now() - flit->born));
    stats().bind(hops_stat_, "hops", 32, 1.0);
    hops_stat_->add(static_cast<double>(flit->hops));
  }
  if (stop_after_ != 0 && received_ >= stop_after_) request_stop();
}

void TrafficSink::declare_opt(liberty::core::OptTraits& traits) const {
  traits.sleepable();
}

bool TrafficSink::can_sleep() const {
  // Drives nothing; transfers into an asleep module still run its
  // end_of_cycle, so the stats and stop_after trigger are preserved.
  return true;
}

void TrafficSink::save_state(liberty::core::StateWriter& w) const {
  w.put_u64(received_);
}

void TrafficSink::load_state(liberty::core::StateReader& r) {
  received_ = r.get_u64();
}

double TrafficSink::mean_latency() const {
  const auto it = stats().histograms().find("latency");
  return it == stats().histograms().end() ? 0.0 : it->second.summary().mean();
}

double TrafficSink::mean_hops() const {
  const auto it = stats().histograms().find("hops");
  return it == stats().histograms().end() ? 0.0 : it->second.summary().mean();
}

}  // namespace liberty::ccl
