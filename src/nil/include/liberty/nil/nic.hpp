// The programmable network interface (§3.5).
//
// "We are currently developing a network interface simulator, with an
// initial target of properly modeling the MIPS-based Tigon-2 programmable
// network interface chipset at a level of detail sufficient to simulate the
// firmware that supports its deployment as a Gigabit Ethernet interface."
//
// The reproduction models the same organization with LRISC in place of
// MIPS (see DESIGN.md, Substitutions):
//
//   * NicAssist — the NIC's hardware assists: a register block (driven by
//     the firmware core through MMIO), a host-memory DMA engine speaking
//     pcl::MemReq, and MAC tx/rx ports carrying EthFrame values with FCS
//     generation/checking.
//   * firmware — an LRISC program (nic_firmware()) running on a
//     upl::SimpleCpu, servicing descriptor rings exactly the way the
//     Tigon-2 firmware services its send/receive rings: poll the TX ring
//     for ready descriptors, command the assist to DMA the payload and
//     transmit, complete the descriptor; poll RX status, allocate from the
//     RX ring, command the DMA into the host buffer, complete.
//   * build_programmable_nic() — assembles core + assist and wires MMIO.
//
// Host-side protocol (word-addressed host memory):
//   TX ring at `tx_ring`, N descriptors of 3 words: [addr, len, status]
//   (status: 0 empty, 1 ready, 2 done).  RX ring at `rx_ring`, same
//   layout; the host pre-fills addr with a buffer and status 1 (free),
//   the NIC writes len and status 2 (filled) plus the payload.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "liberty/core/mmio.hpp"
#include "liberty/core/module.hpp"
#include "liberty/core/netlist.hpp"
#include "liberty/core/params.hpp"
#include "liberty/nil/ethernet.hpp"
#include "liberty/upl/simple_cpu.hpp"

namespace liberty::nil {

/// Hardware assists of the programmable NIC.
///
/// Ports: host_req/host_resp (DMA to host memory, pcl::MemReq), net_tx
/// (out, EthFrame), net_rx (in, EthFrame).
///
/// Register block (offsets for mmio_read/mmio_write):
///    0 dma_addr     host address for the next DMA
///    1 dma_len
///    2 dma_cmd      write 1 = gather+transmit (uses tx_dst as dest MAC);
///                   write 2 = scatter the head RX frame to dma_addr
///    3 dma_status   read: 1 while a DMA/transmit is in flight
///    4 tx_dst       destination MAC for the next transmit
///    5 rx_status    read: number of received frames waiting
///    6 rx_len       read: payload length of the head RX frame
///    7 rx_src       read: source MAC of the head RX frame
///    8 mac          this NIC's MAC address (r/w)
///    9 rx_pop       write 1: drop the head RX frame (after scatter)
///
/// Parameters: mac (station address)    [0]
/// Stats: tx_frames, rx_frames, crc_errors, dma_words.
///
/// The register block is exposed through the core::MmioDevice interface,
/// so a NetSpec can bind the assist into any MmioHost declaratively.
class NicAssist : public liberty::core::Module,
                  public liberty::core::MmioDevice {
 public:
  NicAssist(const std::string& name, const liberty::core::Params& params);

  void cycle_start(liberty::core::Cycle c) override;
  void end_of_cycle() override;
  void declare_deps(liberty::core::Deps& deps) const override;
  void save_state(liberty::core::StateWriter& w) const override;
  void load_state(liberty::core::StateReader& r) override;

  [[nodiscard]] std::int64_t mmio_read(std::uint64_t reg) override;
  void mmio_write(std::uint64_t reg, std::int64_t v) override;

 private:
  enum class DmaMode : std::uint8_t { Idle, Gather, Scatter };

  liberty::core::Port& host_req_;
  liberty::core::Port& host_resp_;
  liberty::core::Port& net_tx_;
  liberty::core::Port& net_rx_;

  std::uint64_t mac_;

  // Register file.
  std::uint64_t dma_addr_ = 0;
  std::uint64_t dma_len_ = 0;
  std::uint64_t tx_dst_ = 0;

  // DMA engine state.
  DmaMode mode_ = DmaMode::Idle;
  std::uint64_t dma_done_ = 0;
  std::vector<std::int64_t> dma_buf_;
  std::deque<liberty::Value> memq_;
  bool mem_in_flight_ = false;

  // Frame queues.
  std::deque<liberty::Value> txq_;                       // ready to send
  std::deque<std::shared_ptr<const EthFrame>> rxq_;      // received, good FCS
};

/// A fully assembled programmable NIC.
struct ProgrammableNic {
  upl::SimpleCpu* core = nullptr;  // runs the firmware
  NicAssist* assist = nullptr;
};

/// Firmware parameters baked into the generated LRISC program.
struct NicFirmwareConfig {
  int tx_ring = 8192;    // host address of the TX descriptor ring
  int rx_ring = 8448;    // host address of the RX descriptor ring
  int ring_entries = 8;  // descriptors per ring
  int mmio_base = 61440; // where the assist registers are mapped (0xF000)
};

/// The LRISC firmware servicing both rings (see file comment).
[[nodiscard]] std::string nic_firmware(const NicFirmwareConfig& cfg);

/// Build "<prefix>.core" (SimpleCpu running nic_firmware) and
/// "<prefix>.assist", map the assist's registers into the core at
/// cfg.mmio_base, and return both.  The caller connects:
///   assist.host_req/host_resp  -> the host memory,
///   assist.net_tx/net_rx       -> the wire (link, channel, fabric).
ProgrammableNic build_programmable_nic(liberty::core::Netlist& netlist,
                                       const std::string& prefix,
                                       std::uint64_t mac,
                                       const NicFirmwareConfig& cfg = {});

}  // namespace liberty::nil
