// Iterative refinement (paper §2.2).
//
// "A model of an interconnect network may have connected to it a
// statistical packet generator used to simulate network traffic.  However,
// it is possible to replace the statistical packet generator with a network
// interface controller for a microprocessor simply by replacing the packet
// generator.  In this way, the same interconnect model can be used with an
// abstract statistical model, as well as a detailed microprocessor model."
//
// The SAME 3x3 mesh is driven twice:
//   (a) abstract:  ccl::TrafficGen at node 0 (statistical injection)
//   (b) detailed:  upl::SimpleCpu running a send loop through a RadioTx-
//                  style injector (a processor deciding when to send)
// Nothing about the mesh changes between the runs — only the injector
// instance.  The example prints both latency profiles side by side.
#include <cstdio>
#include <deque>
#include <memory>
#include <string>

#include "liberty/ccl/ccl.hpp"
#include "liberty/core/simulator.hpp"
#include "liberty/upl/upl.hpp"

using namespace liberty;
using core::Cycle;
using core::Params;

namespace {

/// Minimal processor-attached network injector (the "NIC" of the detailed
/// configuration): MMIO writes become flits.
class CpuInjector final : public core::Module {
 public:
  CpuInjector(const std::string& name, std::size_t src, std::size_t dst)
      : Module(name), src_(src), dst_(dst) {
    out_ = &add_out("out", 0, 1);
  }
  void enqueue(std::int64_t v) { pending_.push_back(v); }

  void cycle_start(Cycle c) override {
    if (!pending_.empty()) {
      auto flit = std::make_shared<ccl::Flit>(seq_, src_, dst_, c);
      flit->body = liberty::Value(pending_.front());
      out_->send(liberty::Value(
          std::static_pointer_cast<const Payload>(std::move(flit))));
    } else {
      out_->idle();
    }
  }
  void end_of_cycle() override {
    if (out_->transferred()) {
      pending_.pop_front();
      ++seq_;
    }
  }
  void declare_deps(core::Deps& deps) const override {
    deps.state_only(*out_);
  }

 private:
  std::size_t src_;
  std::size_t dst_;
  std::uint64_t seq_ = 0;
  std::deque<std::int64_t> pending_;
  core::Port* out_ = nullptr;
};

struct RunResult {
  std::uint64_t delivered = 0;
  double mean_latency = 0.0;
  double mean_hops = 0.0;
};

RunResult run_statistical(int packets) {
  core::Netlist nl;
  ccl::Fabric mesh = ccl::build_mesh(nl, "mesh", 3, 3);
  auto& gen = nl.make<ccl::TrafficGen>(
      "gen", Params().set("pattern", "fixed").set("dst", 8)
                 .set("rate", 0.08).set("count", packets)
                 .set("id", 0).set("nodes", 9).set("seed", 12));
  auto& sink = nl.make<ccl::TrafficSink>("sink", Params());
  nl.connect_at(gen.out("out"), 0, mesh.inject_port(0), 0);
  nl.connect_at(mesh.eject_port(8), 0, sink.in("in"), 0);
  nl.finalize();
  core::Simulator sim(nl);
  sim.run(static_cast<std::uint64_t>(packets) * 40 + 2000);
  return RunResult{sink.received(), sink.mean_latency(), sink.mean_hops()};
}

RunResult run_detailed(int packets) {
  core::Netlist nl;
  ccl::Fabric mesh = ccl::build_mesh(nl, "mesh", 3, 3);
  auto& cpu = nl.make<upl::SimpleCpu>("gp", Params());
  auto& nic = nl.make<CpuInjector>("nic", 0, 8);
  auto& sink = nl.make<ccl::TrafficSink>("sink", Params());
  // Send loop: compute a value, store to the NIC register, ~12 cycles of
  // work between packets (comparable offered load to the 0.08 generator).
  cpu.set_program(upl::assemble(
      "  li r1, 0\n"
      "  li r2, " + std::to_string(packets) + "\n"
      "loop:\n"
      "  mul r3, r1, r1\n"
      "  sw r3, 4096(r0)\n"
      "  li r4, 0\n"
      "work:\n"
      "  addi r4, r4, 1\n"
      "  slti r5, r4, 4\n"
      "  bne r5, r0, work\n"
      "  addi r1, r1, 1\n"
      "  blt r1, r2, loop\n"
      "  halt\n"));
  cpu.map_mmio(4096, 1, nullptr,
               [&nic](std::uint64_t, std::int64_t v) { nic.enqueue(v); });
  nl.connect_at(nic.out("out"), 0, mesh.inject_port(0), 0);
  nl.connect_at(mesh.eject_port(8), 0, sink.in("in"), 0);
  nl.finalize();
  core::Simulator sim(nl);
  sim.run(static_cast<std::uint64_t>(packets) * 40 + 2000);
  return RunResult{sink.received(), sink.mean_latency(), sink.mean_hops()};
}

}  // namespace

int main() {
  constexpr int kPackets = 200;
  const RunResult abstract = run_statistical(kPackets);
  const RunResult detailed = run_detailed(kPackets);

  std::printf("same 3x3 mesh, two injector abstractions (%d packets):\n\n",
              kPackets);
  std::printf("%-22s %10s %14s %10s\n", "injector", "delivered",
              "mean latency", "mean hops");
  std::printf("%-22s %10llu %14.2f %10.2f\n", "statistical (ccl)",
              (unsigned long long)abstract.delivered, abstract.mean_latency,
              abstract.mean_hops);
  std::printf("%-22s %10llu %14.2f %10.2f\n", "processor + NIC (upl)",
              (unsigned long long)detailed.delivered, detailed.mean_latency,
              detailed.mean_hops);
  std::printf("\nthe fabric model is untouched between runs; only the\n"
              "injector instance changed (paper section 2.2).\n");
  return (abstract.delivered == kPackets && detailed.delivered == kPackets)
             ? 0
             : 1;
}
