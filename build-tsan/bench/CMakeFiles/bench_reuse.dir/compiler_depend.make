# Empty compiler generated dependencies file for bench_reuse.
# This may be replaced when dependencies are built.
