// Microarchitectural ablations: parameter changes must move timing in the
// physically sensible direction while never changing architectural results.
#include <gtest/gtest.h>

#include "liberty/core/simulator.hpp"
#include "liberty/upl/upl.hpp"
#include "test_util.hpp"

namespace {

using liberty::core::Netlist;
using liberty::core::Params;
using liberty::core::SchedulerKind;
using liberty::core::Simulator;
using namespace liberty::upl;
using liberty::test::params;

struct OooOut {
  std::uint64_t cycles = 0;
  std::vector<std::int64_t> output;
};

OooOut run_ooo(const Program& prog, const Params& p) {
  Netlist nl;
  auto& core = nl.make<OoOCore>("ooo", p);
  core.set_program(prog);
  nl.finalize();
  Simulator sim(nl);
  sim.run(3'000'000);
  EXPECT_TRUE(core.done());
  return OooOut{core.stats().counter_value("cycles"), core.output()};
}

TEST(OooAblation, MispredictPenaltyCostsCycles) {
  const Program prog = assemble(workloads::sieve(120));
  const OooOut cheap = run_ooo(
      prog, params({{"mispredict_penalty", 1}, {"predictor", "not_taken"}}));
  const OooOut costly = run_ooo(
      prog, params({{"mispredict_penalty", 30}, {"predictor", "not_taken"}}));
  EXPECT_EQ(cheap.output, costly.output);
  EXPECT_GT(costly.cycles, cheap.cycles);
}

TEST(OooAblation, BetterPredictorSavesCycles) {
  const Program prog = assemble(workloads::sieve(120));
  const OooOut nt = run_ooo(
      prog, params({{"predictor", "not_taken"}, {"mispredict_penalty", 12}}));
  const OooOut gs = run_ooo(
      prog, params({{"predictor", "gshare"}, {"mispredict_penalty", 12}}));
  EXPECT_EQ(nt.output, gs.output);
  EXPECT_LT(gs.cycles, nt.cycles);
}

TEST(OooAblation, SlowerMemoryHurtsPointerChase) {
  const Program prog = assemble(workloads::pointer_chase(64, 8, 300));
  const OooOut fast = run_ooo(
      prog, params({{"load_miss", 10}, {"dcache_sets", 2},
                    {"dcache_ways", 1}}));
  const OooOut slow = run_ooo(
      prog, params({{"load_miss", 120}, {"dcache_sets", 2},
                    {"dcache_ways", 1}}));
  EXPECT_EQ(fast.output, slow.output);
  EXPECT_GT(slow.cycles, fast.cycles * 2);
}

TEST(OooAblation, RobCapacityBoundsOutstandingWork) {
  const Program prog = assemble(workloads::matmul(6));
  const OooOut small = run_ooo(prog, params({{"rob", 4}, {"window", 4}}));
  const OooOut big = run_ooo(prog, params({{"rob", 128}, {"window", 64}}));
  EXPECT_EQ(small.output, big.output);
  EXPECT_GT(small.cycles, big.cycles);
}

// ---------------------------------------------------------------------------
// Structural pipeline ablations
// ---------------------------------------------------------------------------

struct PipeOut {
  std::uint64_t cycles = 0;
  std::vector<std::int64_t> output;
};

PipeOut run_pipe(const Program& prog, const Params& p) {
  Netlist nl;
  InorderCore core = build_inorder_core(nl, "cpu", prog, p);
  auto& l1 = nl.make<CacheModule>(
      "l1", params({{"sets", 16}, {"ways", 2}, {"line_words", 4}}));
  auto& mem = nl.make<MemoryCtl>("mem", params({{"latency", 10}}));
  nl.connect(core.mem->out("dreq"), l1.in("cpu_req"));
  nl.connect(l1.out("cpu_resp"), core.mem->in("dresp"));
  nl.connect(l1.out("mem_req"), mem.in("req"));
  nl.connect(mem.out("resp"), l1.in("mem_resp"));
  nl.finalize();
  Simulator sim(nl, SchedulerKind::Static);
  const auto cycles = sim.run(2'000'000);
  EXPECT_TRUE(core.state->halted);
  return PipeOut{cycles, core.state->output};
}

TEST(PipelineAblation, DivLatencyShowsInDivHeavyCode) {
  // A loop dominated by division.
  const Program prog = assemble(
      "  li r1, 1000000\n"
      "  li r2, 7\n"
      "  li r3, 0\n"
      "loop:\n"
      "  div r1, r1, r2\n"
      "  addi r3, r3, 1\n"
      "  bne r1, r0, loop\n"
      "  out r3\n"
      "  halt\n");
  const PipeOut fast = run_pipe(prog, params({{"div_latency", 2}}));
  const PipeOut slow = run_pipe(prog, params({{"div_latency", 40}}));
  EXPECT_EQ(fast.output, slow.output);
  EXPECT_GT(slow.cycles, fast.cycles);
}

TEST(PipelineAblation, MulLatencyIrrelevantWithoutMuls) {
  const Program prog = assemble(workloads::sum_loop(150));
  const PipeOut a = run_pipe(prog, params({{"mul_latency", 1}}));
  const PipeOut b = run_pipe(prog, params({{"mul_latency", 50}}));
  EXPECT_EQ(a.output, b.output);
  EXPECT_EQ(a.cycles, b.cycles);  // no mul in the workload
}

}  // namespace
