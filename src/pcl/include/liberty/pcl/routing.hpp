// Dataflow steering primitives: Tee (fan-out), Mux (select by control),
// Demux (route by content), Crossbar (N x M with per-output arbitration).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "liberty/core/module.hpp"
#include "liberty/core/params.hpp"

namespace liberty::pcl {

/// Replicates its input to every connected output endpoint.  The input is
/// accepted only once *all* outputs have accepted (synchronous broadcast).
/// Branches that accept early are remembered across cycles so a stalled
/// branch neither loses the value for itself nor duplicates it to others.
class Tee : public liberty::core::Module {
 public:
  Tee(const std::string& name, const liberty::core::Params& params);

  void init() override;
  void react() override;
  void end_of_cycle() override;
  void declare_deps(liberty::core::Deps& deps) const override;
  void declare_opt(liberty::core::OptTraits& traits) const override;
  [[nodiscard]] bool can_sleep() const override;
  void save_state(liberty::core::StateWriter& w) const override;
  void load_state(liberty::core::StateReader& r) override;

 private:
  liberty::core::Port& in_;
  liberty::core::Port& out_;
  std::vector<bool> delivered_;  // per-branch: current item already taken
  liberty::Counter* broadcasts_stat_ = nullptr;  // resolved-once stat handle
};

/// Selects one data input according to the integer on the `sel` port.
/// With no selection offered, the output idles and all inputs are refused.
class Mux : public liberty::core::Module {
 public:
  Mux(const std::string& name, const liberty::core::Params& params);

  void react() override;
  void declare_deps(liberty::core::Deps& deps) const override;

 private:
  liberty::core::Port& in_;
  liberty::core::Port& sel_;
  liberty::core::Port& out_;
};

/// Routes each input value to one output endpoint chosen by a selector.
///
/// The default selector understands pcl::Routable payloads (route_key()
/// modulo the output width) and integer values; set_selector() installs an
/// arbitrary policy — an algorithmic parameter in the paper's sense.
class Demux : public liberty::core::Module {
 public:
  using Selector = std::function<std::size_t(const liberty::Value&)>;

  Demux(const std::string& name, const liberty::core::Params& params);

  void react() override;
  void declare_deps(liberty::core::Deps& deps) const override;

  void set_selector(Selector s) { selector_ = std::move(s); }

 private:
  [[nodiscard]] std::size_t route(const liberty::Value& v) const;

  liberty::core::Port& in_;
  liberty::core::Port& out_;
  Selector selector_;
};

/// N-input M-output crossbar: each input routes (Demux-style selector) to
/// an output; per-output round-robin arbitration among competing inputs.
///
/// Stats: xfers, conflicts.
class Crossbar : public liberty::core::Module {
 public:
  using Selector = std::function<std::size_t(const liberty::Value&)>;

  Crossbar(const std::string& name, const liberty::core::Params& params);

  void cycle_start(liberty::core::Cycle c) override;
  void react() override;
  void end_of_cycle() override;
  void init() override;
  void declare_deps(liberty::core::Deps& deps) const override;
  void save_state(liberty::core::StateWriter& w) const override;
  void load_state(liberty::core::StateReader& r) override;

  void set_selector(Selector s) { selector_ = std::move(s); }

 private:
  [[nodiscard]] std::size_t route(const liberty::Value& v) const;

  liberty::core::Port& in_;
  liberty::core::Port& out_;
  Selector selector_;
  std::vector<std::size_t> rr_;      // per-output rotation pointer
  std::vector<int> grant_;           // per-output granted input, -1 none

  // Resolved-once stat handles (see StatSet::bind).
  liberty::Counter* conflicts_stat_ = nullptr;
  liberty::Counter* xfers_stat_ = nullptr;
  bool decided_ = false;
};

}  // namespace liberty::pcl
