#include "liberty/core/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <utility>

#include "liberty/core/fault.hpp"
#include "liberty/support/error.hpp"

namespace liberty::core {

namespace detail {
thread_local ResolveCtx t_resolve_ctx;

// Out of line so the untimed call_react fast path stays branch+call only.
void timed_react(Module& m, ResolveCtx& ctx) {
  const auto t0 = std::chrono::steady_clock::now();
  m.react();
  const auto t1 = std::chrono::steady_clock::now();
  const ModuleId id = m.id();
  if (id < ctx.mod_reacts.size()) {
    ++ctx.mod_reacts[id];
    ctx.mod_seconds[id] += std::chrono::duration<double>(t1 - t0).count();
  }
}
}  // namespace detail

namespace {
[[nodiscard]] inline double seconds_between(
    std::chrono::steady_clock::time_point a,
    std::chrono::steady_clock::time_point b) noexcept {
  return std::chrono::duration<double>(b - a).count();
}
}  // namespace

// ---------------------------------------------------------------------------
// ScheduleGraph
// ---------------------------------------------------------------------------

void ScheduleGraph::build(Netlist& netlist) {
  const auto& conns = netlist.connections();
  nodes_.resize(conns.size() * 2);
  succs_.resize(nodes_.size());
  preds_.resize(nodes_.size());

  for (const auto& c : conns) {
    const ChannelId f = forward_channel(c->id());
    const ChannelId b = backward_channel(c->id());
    nodes_[f] = Node{c.get(), ChannelKind::Forward, c->producer()};
    if (c->ack_mode() == AckMode::AutoAccept) {
      nodes_[b] = Node{c.get(), ChannelKind::Backward, nullptr};
    } else {
      nodes_[b] = Node{c.get(), ChannelKind::Backward, c->consumer()};
    }
  }

  // Kernel-driven acks depend exactly on their own forward channel.
  for (const auto& c : conns) {
    if (c->ack_mode() == AckMode::AutoAccept) {
      const ChannelId f = forward_channel(c->id());
      const ChannelId b = backward_channel(c->id());
      succs_[f].push_back(b);
      preds_[b].push_back(f);
    }
  }

  add_module_edges(netlist, succs_, preds_);

  // Deduplicate adjacency lists.
  auto dedupe = [](std::vector<std::vector<ChannelId>>& adj) {
    for (auto& lst : adj) {
      std::sort(lst.begin(), lst.end());
      lst.erase(std::unique(lst.begin(), lst.end()), lst.end());
    }
  };
  dedupe(succs_);
  dedupe(preds_);

  compute_sccs();
}

void ScheduleGraph::add_module_edges(
    Netlist& netlist, std::vector<std::vector<ChannelId>>& succs,
    std::vector<std::vector<ChannelId>>& preds) {
  auto add_edge = [&succs, &preds](ChannelId from, ChannelId to) {
    succs[from].push_back(to);
    preds[to].push_back(from);
  };

  // Channels of a port, split by direction of observation from the owning
  // module's perspective.
  auto port_channels = [](const Port& p, ChannelKind k) {
    std::vector<ChannelId> out;
    for (std::size_t i = 0; i < p.width(); ++i) {
      if (const Connection* c = p.connection(i)) {
        out.push_back(k == ChannelKind::Forward ? forward_channel(c->id())
                                                : backward_channel(c->id()));
      }
    }
    return out;
  };

  for (const auto& m : netlist.modules()) {
    Deps deps;
    m->declare_deps(deps);

    // Everything this module can observe (conservative source set).
    std::vector<ChannelId> all_observed;
    for (const auto& p : m->ports()) {
      const auto k = p->dir() == PortDir::In ? ChannelKind::Forward
                                             : ChannelKind::Backward;
      for (ChannelId ch : port_channels(*p, k)) all_observed.push_back(ch);
    }

    for (const auto& p : m->ports()) {
      // The signal group this module drives on port p: forward for outputs,
      // backward (ack) for managed inputs.
      std::vector<ChannelId> driven;
      if (p->dir() == PortDir::Out) {
        driven = port_channels(*p, ChannelKind::Forward);
      } else {
        for (std::size_t i = 0; i < p->width(); ++i) {
          const Connection* c = p->connection(i);
          if (c != nullptr && c->ack_mode() == AckMode::Managed) {
            driven.push_back(backward_channel(c->id()));
          }
        }
      }
      if (driven.empty()) continue;

      const auto it = deps.declared().find(p.get());
      std::vector<ChannelId> sources;
      if (it == deps.declared().end()) {
        sources = all_observed;
      } else {
        for (const SignalRef& ref : it->second) {
          for (ChannelId ch : port_channels(*ref.port, ref.kind)) {
            sources.push_back(ch);
          }
        }
      }
      for (ChannelId s : sources) {
        for (ChannelId d : driven) {
          if (s != d) add_edge(s, d);
        }
      }
    }
  }
}

void ScheduleGraph::compute_sccs() {
  // Iterative Tarjan.  SCCs are emitted sinks-first (reverse topological
  // order of the condensation); we reverse at the end.
  const std::size_t n = nodes_.size();
  constexpr std::size_t kUnvisited = static_cast<std::size_t>(-1);
  std::vector<std::size_t> index(n, kUnvisited);
  std::vector<std::size_t> low(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<ChannelId> stack;
  std::size_t next_index = 0;

  struct Frame {
    ChannelId v;
    std::size_t child = 0;
  };
  std::vector<Frame> call_stack;

  for (ChannelId root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    call_stack.push_back({root, 0});
    index[root] = low[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;

    while (!call_stack.empty()) {
      Frame& fr = call_stack.back();
      const ChannelId v = fr.v;
      if (fr.child < succs_[v].size()) {
        const ChannelId w = succs_[v][fr.child++];
        if (index[w] == kUnvisited) {
          index[w] = low[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          call_stack.push_back({w, 0});
        } else if (on_stack[w]) {
          low[v] = std::min(low[v], index[w]);
        }
      } else {
        if (low[v] == index[v]) {
          std::vector<ChannelId> scc;
          while (true) {
            const ChannelId w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            scc.push_back(w);
            if (w == v) break;
          }
          std::sort(scc.begin(), scc.end());
          sccs_.push_back(std::move(scc));
        }
        call_stack.pop_back();
        if (!call_stack.empty()) {
          const ChannelId parent = call_stack.back().v;
          low[parent] = std::min(low[parent], low[v]);
        }
      }
    }
  }
  std::reverse(sccs_.begin(), sccs_.end());

  scc_of_.assign(n, 0);
  self_loop_.assign(sccs_.size(), 0);
  for (std::size_t i = 0; i < sccs_.size(); ++i) {
    for (ChannelId ch : sccs_[i]) {
      scc_of_[ch] = static_cast<std::uint32_t>(i);
    }
    if (sccs_[i].size() == 1) {
      const ChannelId v = sccs_[i][0];
      self_loop_[i] =
          std::binary_search(succs_[v].begin(), succs_[v].end(), v) ? 1 : 0;
    }
  }
}

std::size_t ScheduleGraph::largest_scc() const noexcept {
  std::size_t best = 0;
  for (const auto& s : sccs_) best = std::max(best, s.size());
  return best;
}

// ---------------------------------------------------------------------------
// QuiescenceGate
// ---------------------------------------------------------------------------

void QuiescenceGate::build(const ScheduleGraph& graph, const OptPlan& plan,
                           const std::vector<Module*>& modules) {
  if (!plan.gating) return;
  const auto& sccs = graph.sccs();
  const auto& nodes = graph.nodes();
  const auto& scc_of = graph.scc_of();
  const std::size_t n_scc = sccs.size();
  const std::size_t n_mod = modules.size();
  const std::size_t n_ch = nodes.size();

  // Candidate SCCs: every channel gate-free (a transfer gate is arbitrary
  // user code whose invocation pattern replay must not change), every
  // driver sleepable and not elided (kernel-driven AutoAccept acks are
  // fine), and not entirely constant (those are already pre-resolved).
  candidate_.assign(n_scc, 0);
  for (std::size_t i = 0; i < n_scc; ++i) {
    bool ok = true;
    bool all_const = true;
    // Structural cost model: a replay only pays when it saves module
    // handler work.  A driverless SCC (kernel-driven AutoAccept acks) is
    // replayed at the same cost the kernel drive has, and an SCC fully
    // covered by a fused chain is already resolved by one sweep that is
    // strictly cheaper than per-channel replays — gating either is pure
    // overhead (the passthrough-netlist -O2 regression).
    bool any_driver = false;
    bool all_chained = true;
    for (ChannelId ch : sccs[i]) {
      const ScheduleGraph::Node& n = nodes[ch];
      if (n.conn->has_transfer_gate()) {
        ok = false;
        break;
      }
      if (n.driver != nullptr) {
        any_driver = true;
        if (!plan.module_sleepable(n.driver->id()) ||
            plan.module_elided(n.driver->id())) {
          ok = false;
          break;
        }
      }
      if (ch >= plan.channel_const.size() || plan.channel_const[ch] == 0) {
        all_const = false;
      }
      if (ch >= plan.chain_of_channel.size() ||
          plan.chain_of_channel[ch] < 0) {
        all_chained = false;
      }
    }
    if (ok && !all_const && any_driver && !all_chained) candidate_[i] = 1;
  }

  // Gateable modules may skip cycle_start/end_of_cycle while asleep, so
  // every channel they drive must sit in a candidate SCC (otherwise that
  // channel's normal execution still needs the module's drives).
  std::vector<char> drives_ok(n_mod, 1);
  for (ChannelId ch = 0; ch < n_ch; ++ch) {
    const Module* d = nodes[ch].driver;
    if (d != nullptr && candidate_[scc_of[ch]] == 0) drives_ok[d->id()] = 0;
  }
  gateable_.assign(n_mod, 0);
  for (std::size_t id = 0; id < n_mod; ++id) {
    if (plan.module_sleepable(id) && !plan.module_elided(id) &&
        drives_ok[id] != 0) {
      gateable_[id] = 1;
    }
  }

  info_.assign(n_scc, SccInfo{});
  candidates_.clear();
  for (std::size_t i = 0; i < n_scc; ++i) {
    if (candidate_[i] == 0) continue;
    candidates_.push_back(static_cast<std::uint32_t>(i));
    SccInfo& si = info_[i];

    // Members forwards-first so replayed acks never precede their offers.
    std::vector<ChannelId> order = sccs[i];
    std::sort(order.begin(), order.end(), [&nodes](ChannelId a, ChannelId b) {
      const bool af = nodes[a].kind == ChannelKind::Forward;
      const bool bf = nodes[b].kind == ChannelKind::Forward;
      if (af != bf) return af;
      return a < b;
    });
    for (ChannelId ch : order) {
      si.members.push_back(Ch{nodes[ch].conn, nodes[ch].kind, ch});
    }

    std::vector<ChannelId> boundary;
    for (ChannelId ch : sccs[i]) {
      for (ChannelId p : graph.preds()[ch]) {
        if (scc_of[p] != i) boundary.push_back(p);
      }
    }
    std::sort(boundary.begin(), boundary.end());
    boundary.erase(std::unique(boundary.begin(), boundary.end()),
                   boundary.end());
    for (ChannelId p : boundary) {
      si.boundary.push_back(Ch{nodes[p].conn, nodes[p].kind, p});
    }

    for (ChannelId ch : sccs[i]) {
      Module* d = nodes[ch].driver;
      if (d != nullptr &&
          std::find(si.drivers.begin(), si.drivers.end(), d) ==
              si.drivers.end()) {
        si.drivers.push_back(d);
      }
    }
  }
  if (candidates_.empty()) return;

  enabled_ = true;
  sleep_ok_.assign(n_mod, 0);
  asleep_ = std::make_unique<std::atomic<std::uint8_t>[]>(n_mod);
  for (std::size_t i = 0; i < n_mod; ++i) {
    asleep_[i].store(0, std::memory_order_relaxed);
  }
  slept_.assign(n_scc, 0);
  cache_valid_.assign(n_scc, 0);
  attempt_at_.assign(n_scc, 0);
  backoff_.assign(n_scc, 0);
  cached_sig_.assign(n_ch, Tristate::Unknown);
  cached_val_.assign(n_ch, Value());
  eoc_stamp_.assign(n_mod, 0);
  scc_sleeps_.assign(n_scc, 0);
  scc_wakes_.assign(n_scc, 0);
  audit_scc_sleeps_.assign(n_scc, 0);

  // Modules whose can_sleep() we sample each cycle: drivers of candidate
  // SCCs (replay eligibility) plus gateable modules that drive nothing
  // (e.g. pure sinks, whose win is the skipped end_of_cycle).
  std::vector<char> seen(n_mod, 0);
  for (std::uint32_t s : candidates_) {
    for (Module* d : info_[s].drivers) seen[d->id()] = 1;
  }
  for (std::size_t id = 0; id < n_mod; ++id) {
    if (gateable_[id] != 0) seen[id] = 1;
  }
  tracked_.clear();
  for (Module* m : modules) {
    if (seen[m->id()] != 0) tracked_.push_back(m);
  }
  sccs_of_.assign(n_mod, {});
  for (std::uint32_t s : candidates_) {
    for (Module* d : info_[s].drivers) sccs_of_[d->id()].push_back(s);
  }
}

void QuiescenceGate::begin_cycle(Cycle cycle) {
  if (!enabled_ || suspended_) return;
  std::fill(slept_.begin(), slept_.end(), 0);
  for (Module* m : tracked_) {
    const ModuleId id = m->id();
    bool armed = gateable_[id] != 0 && sleep_ok_[id] != 0;
    if (armed) {
      for (const std::uint32_t s : sccs_of_[id]) {
        if (cycle < attempt_at_[s]) {
          armed = false;
          break;
        }
      }
    }
    asleep_[id].store(armed ? 1 : 0, std::memory_order_relaxed);
  }
}

bool QuiescenceGate::boundary_unchanged(const SccInfo& si) const {
  for (const Ch& b : si.boundary) {
    Tristate cur = Tristate::Unknown;
    if (b.kind == ChannelKind::Forward) {
      if (b.conn->forward_known()) {
        cur = b.conn->enabled() ? Tristate::Asserted : Tristate::Negated;
      }
    } else {
      if (b.conn->ack_known()) {
        cur = b.conn->acked() ? Tristate::Asserted : Tristate::Negated;
      }
    }
    if (!known(cur) || cur != cached_sig_[b.id]) return false;
    if (b.kind == ChannelKind::Forward && cur == Tristate::Asserted &&
        !(b.conn->data() == cached_val_[b.id])) {
      return false;
    }
  }
  return true;
}

void QuiescenceGate::replay(const SccInfo& si) {
  // Drive each member channel from the cache through the normal resolution
  // paths so every hook fires — bit-identity on traces and counters follows
  // because the values are exactly what re-running the drivers would
  // produce (unchanged boundary + quiescent state).  Channels something
  // already resolved (constants, a late-woken driver's cycle_start) are
  // left alone; the cached value matches by the same argument.
  for (const Ch& c : si.members) {
    if (c.kind == ChannelKind::Forward) {
      if (c.conn->forward_known()) continue;
      if (cached_sig_[c.id] == Tristate::Asserted) {
        c.conn->send(cached_val_[c.id]);
      } else {
        c.conn->idle();
      }
    } else {
      if (c.conn->ack_known()) continue;
      if (cached_sig_[c.id] == Tristate::Asserted) {
        c.conn->ack();
      } else {
        c.conn->nack();
      }
    }
  }
}

bool QuiescenceGate::try_sleep_slow(std::uint32_t scc, Cycle cycle,
                                    std::vector<Module*>* woken) {
  // enabled_/suspended_/candidate_ were already tested by the inline wrapper.
  SccInfo& si = info_[scc];
  const auto wake_drivers = [&] {
    for (Module* d : si.drivers) {
      if (asleep_[d->id()].exchange(0, std::memory_order_relaxed) != 0) {
        d->cycle_start(cycle);  // deferred start now that it must run
        if (woken != nullptr) woken->push_back(d);
      }
    }
  };
  if (cycle < attempt_at_[scc]) {
    // Backed off after repeated failed attempts: skip the boundary compare
    // (and refresh skips the snapshot) until the window expires.  Not a
    // wake — begin_cycle never marks a backed-off SCC's drivers asleep, so
    // there is nothing to undo.
    return false;
  }
  bool ok = cache_valid_[scc] != 0;
  if (ok) {
    for (Module* d : si.drivers) {
      if (sleep_ok_[d->id()] == 0) {
        ok = false;
        break;
      }
    }
  }
  if (ok) ok = boundary_unchanged(si);
  if (!ok) {
    wake_drivers();
    ++scc_wakes_[scc];
    backoff_[scc] = std::min<Cycle>(
        backoff_[scc] == 0 ? 1 : backoff_[scc] * 2, kMaxBackoff);
    attempt_at_[scc] = cycle + backoff_[scc];
    cache_valid_[scc] = 0;  // goes stale while backed off
    return false;
  }
  replay(si);
  slept_[scc] = 1;
  ++scc_sleeps_[scc];
  backoff_[scc] = 0;
  return true;
}

void QuiescenceGate::mark_transfers(
    const std::vector<Connection*>& transferred, std::uint64_t token) {
  if (!enabled_ || suspended_) return;
  for (const Connection* c : transferred) {
    eoc_stamp_[c->producer()->id()] = token;
    eoc_stamp_[c->consumer()->id()] = token;
  }
}

bool QuiescenceGate::skip_end_of_cycle_slow(const Module& m,
                                            std::uint64_t token) {
  const ModuleId id = m.id();
  if (asleep_[id].load(std::memory_order_relaxed) == 0) return false;
  if (eoc_stamp_[id] == token) return false;  // adjacent transfer: commit
  ++eoc_skips_;
  return true;
}

void QuiescenceGate::retire_scc(std::uint32_t scc) {
  candidate_[scc] = 0;
  cache_valid_[scc] = 0;
  ++retired_sccs_;
  // The drivers may no longer sleep: a non-candidate SCC is resolved
  // normally, which needs their cycle_start drives.  Clearing gateable_ is
  // conservative for drivers shared with surviving SCCs; that sharing is
  // rare and correctness beats the lost skip.
  for (Module* d : info_[scc].drivers) {
    gateable_[d->id()] = 0;
    asleep_[d->id()].store(0, std::memory_order_relaxed);
  }
}

void QuiescenceGate::clear_asleep() noexcept {
  for (std::size_t i = 0; i < sleep_ok_.size(); ++i) {
    asleep_[i].store(0, std::memory_order_relaxed);
  }
}

void QuiescenceGate::drop_caches() {
  std::fill(sleep_ok_.begin(), sleep_ok_.end(), 0);
  std::fill(cache_valid_.begin(), cache_valid_.end(), 0);
  std::fill(slept_.begin(), slept_.end(), 0);
  std::fill(attempt_at_.begin(), attempt_at_.end(), 0);
  std::fill(backoff_.begin(), backoff_.end(), 0);
  clear_asleep();
}

void QuiescenceGate::refresh(Cycle cycle) {
  if (!enabled_) return;
  if (calib_ != Calib::Done) {
    const auto now = std::chrono::steady_clock::now();
    if (!win_started_) {
      win_started_ = true;
      win_start_ = now;
      win_end_ = cycle + kCalibPeriod;
    } else if (cycle >= win_end_) {
      const double secs = seconds_between(win_start_, now);
      if (calib_ == Calib::GatedWindow) {
        gated_seconds_ = secs;
        // SCCs whose measured sleep ratio over the gated sample fell below
        // 1/2 can never recoup their boundary-compare + replay + snapshot
        // overhead; drop them before timing the ungated sample.
        std::size_t remaining = 0;
        for (std::uint32_t s : candidates_) {
          if (candidate_[s] == 0) continue;
          if (scc_sleeps_[s] * 2 < kCalibPeriod) {
            retire_scc(s);
          } else {
            ++remaining;
          }
        }
        if (remaining == 0) {
          enabled_ = false;
          clear_asleep();
          return;
        }
        calib_ = Calib::UngatedWindow;
        suspended_ = true;
        clear_asleep();
        win_start_ = now;
        win_end_ = cycle + kCalibPeriod;
        return;
      }
      // Ungated sample finished: keep the gate only when the gated window
      // was measurably *faster* (at least a 2% win).  A marginal gate is
      // dropped: its replay/snapshot machinery keeps costing every cycle
      // for the rest of the run, while the calibration sample is short and
      // noisy — the asymmetric risk says bail unless gating provably pays.
      suspended_ = false;
      calib_ = Calib::Done;
      if (gated_seconds_ > secs * 0.98) {
        enabled_ = false;
        clear_asleep();
        return;
      }
      // The suspended window left every cache and can_sleep sample stale;
      // relearn from scratch and restart the audit clock.
      drop_caches();
      std::uint64_t total = 0;
      for (std::uint32_t s : candidates_) {
        if (candidate_[s] == 0) continue;
        total += scc_sleeps_[s];
        audit_scc_sleeps_[s] = scc_sleeps_[s];
      }
      sleeps_at_audit_ = total;
      next_audit_ = cycle + kAuditPeriod;
      zero_windows_ = 0;
    }
    if (suspended_) return;
  }
  if (calib_ == Calib::Done && cycle >= next_audit_) {
    std::uint64_t total = 0;
    std::size_t remaining = 0;
    for (std::uint32_t s : candidates_) {
      if (candidate_[s] == 0) continue;
      total += scc_sleeps_[s];
      // Ongoing per-SCC sleep-ratio guard: workloads change phase, and an
      // SCC that stopped sleeping at least half the time is now a net
      // loss.  Retirement is permanent (never-slower beats sometimes-
      // faster for an optimization that must not regress).
      if ((scc_sleeps_[s] - audit_scc_sleeps_[s]) * 2 < kAuditPeriod) {
        retire_scc(s);
      } else {
        audit_scc_sleeps_[s] = scc_sleeps_[s];
        ++remaining;
      }
    }
    zero_windows_ = total == sleeps_at_audit_ ? zero_windows_ + 1 : 0;
    sleeps_at_audit_ = total;
    next_audit_ = cycle + kAuditPeriod;
    if (zero_windows_ >= 2 || remaining == 0) {
      // Nothing here ever sleeps — retire.  Counters remain reported (they
      // read candidates_, not enabled_) and every asleep/candidate query
      // now short-circuits on enabled_.
      enabled_ = false;
      clear_asleep();
      return;
    }
  }
  for (std::uint32_t s : candidates_) {
    if (candidate_[s] == 0) continue;  // retired by the cost-model guard
    if (slept_[s] != 0) continue;  // cache is already this cycle's values
    // Backed-off SCCs re-snapshot on the cycle before their next attempt,
    // restoring the invariant that a consulted cache is exactly one cycle
    // old (the can_sleep() contract is a single-step promise).
    if (cycle + 1 < attempt_at_[s]) continue;
    SccInfo& si = info_[s];
    const auto snap = [this](const Ch& c) {
      if (c.kind == ChannelKind::Forward) {
        const bool en = c.conn->enabled();
        cached_sig_[c.id] = en ? Tristate::Asserted : Tristate::Negated;
        cached_val_[c.id] = en ? c.conn->data() : Value();
      } else {
        cached_sig_[c.id] =
            c.conn->acked() ? Tristate::Asserted : Tristate::Negated;
      }
    };
    for (const Ch& c : si.members) snap(c);
    for (const Ch& c : si.boundary) snap(c);
    cache_valid_[s] = 1;
  }
  for (Module* m : tracked_) {
    sleep_ok_[m->id()] = m->can_sleep() ? 1 : 0;
  }
}

void QuiescenceGate::invalidate() {
  if (!enabled_) return;
  drop_caches();
}

void QuiescenceGate::visit_counters(const CounterVisitor& visit) const {
  visit("opt.gated_sccs", candidates_.size());
  std::uint64_t sleeps = 0;
  std::uint64_t wakes = 0;
  std::uint64_t replayed = 0;
  for (std::uint32_t s : candidates_) {
    sleeps += scc_sleeps_[s];
    wakes += scc_wakes_[s];
    replayed += scc_sleeps_[s] * info_[s].members.size();
  }
  visit("opt.scc_sleeps", sleeps);
  visit("opt.scc_wakes", wakes);
  visit("opt.replayed_resolutions", replayed);
  visit("opt.eoc_skips", eoc_skips_);
  visit("opt.retired_sccs", retired_sccs_);
}

// ---------------------------------------------------------------------------
// SchedulerBase
// ---------------------------------------------------------------------------

SchedulerBase::SchedulerBase(Netlist& netlist) : netlist_(netlist) {
  if (!netlist.finalized()) {
    throw liberty::ElaborationError(
        "scheduler requires a finalized netlist");
  }
  module_tape_.reserve(netlist.module_count());
  for (const auto& m : netlist.modules()) module_tape_.push_back(m.get());
  conn_tape_.reserve(netlist.connection_count());
  for (const auto& c : netlist.connections()) conn_tape_.push_back(c.get());
  plan_ = netlist.opt_plan();
  if (plan_ != nullptr) chain_state_.resize(plan_->chains.size());
  quarantined_.assign(netlist.module_count(), 0);
  for (const Module* m : module_tape_) {
    if (netlist.is_quarantined(m->id())) {
      quarantined_[m->id()] = 1;
      any_quarantined_ = true;
    }
  }
  install_hooks(this);
}

SchedulerBase::~SchedulerBase() {
  install_hooks(nullptr);
  // Fault hooks are per-scheduler installations; never leave a dangling
  // injector pointer behind for the next scheduler built on this netlist.
  if (fault_ != nullptr) set_fault_hook(nullptr);
}

void SchedulerBase::set_fault_hook(FaultHook* hook) {
  fault_ = hook;
  for (Connection* c : conn_tape_) c->set_fault_hook(hook);
}

void SchedulerBase::recover_after_abort() noexcept {
  for (Connection* c : conn_tape_) c->reset_channels();
  // A cycle aborted mid-resolve leaves fused-chain stamps holding the
  // aborted cycle's token (cycles_run_ was never bumped), which would
  // silently skip the sweeps on retry; zero is never a valid token.
  for (ChainState& st : chain_state_) {
    st.fwd_stamp = 0;
    st.bwd_stamp = 0;
  }
  gate_.invalidate();
  cycle_transferred_.clear();
  cycle_resolutions_ = 0;
  detail::t_resolve_ctx.transferred.clear();
}

void SchedulerBase::install_hooks(ResolveHooks* h) {
  for (const auto& c : netlist_.connections()) c->set_hooks(h);
}

std::uint64_t SchedulerBase::total_generation() const noexcept {
  std::uint64_t sum = 0;
  for (const Connection* c : conn_tape_) sum += c->generation();
  return sum;
}

void SchedulerBase::default_forward(Connection& c) {
  if (c.forward_known()) return;
  c.idle();
  c.note_defaulted();
  ++detail::t_resolve_ctx.defaults;
}

void SchedulerBase::default_backward(Connection& c) {
  if (c.ack_known()) return;
  if (known(c.intent_.load(std::memory_order_relaxed))) return;
  c.nack();
  c.note_defaulted();
  ++detail::t_resolve_ctx.defaults;
}

void SchedulerBase::apply_auto_accept(Connection& c) {
  if (c.ack_known() || known(c.intent_.load(std::memory_order_relaxed))) {
    return;
  }
  if (c.enabled()) {
    c.ack();
  } else {
    c.nack();
  }
}

void SchedulerBase::apply_consts() {
  // Forwards come before backwards in the plan so that an AutoAccept ack
  // constant always finds its offer already known.  Channels a module
  // already resolved (none at cycle top, but defensively) are left alone;
  // the module's own later drives of these values are idempotent no-ops.
  for (const OptPlan::ConstChannel& cc : plan_->consts) {
    Connection& c = *cc.conn;
    if (cc.kind == ChannelKind::Forward) {
      if (c.forward_known()) continue;
      if (cc.asserted) {
        c.send(cc.value);
      } else {
        c.idle();
      }
    } else {
      if (c.ack_known()) continue;
      if (cc.asserted) {
        c.ack();
      } else {
        c.nack();
      }
    }
    ++opt_pre_resolved_;
  }
}

void SchedulerBase::run_chain(std::size_t idx) {
  const OptPlan::Chain& ch = plan_->chains[idx];
  ChainState& st = chain_state_[idx];
  const std::uint64_t token = cycles_run_ + 1;
  // Under fault injection a drive may land rewritten, so the sweep must
  // propagate what actually resolved on each link (what an unfused member
  // would observe), not its local pre-mapping copy.
  const bool faulted = fault_ != nullptr;
  if (st.fwd_stamp != token && ch.links.front()->forward_known()) {
    // One pass down the chain resolves every member's output.  A link that
    // is already resolved (constant, quiescence replay, or a member react
    // from the cleanup endgame) is adopted as-is — its value was produced
    // by the member's transform already, preserving exactly-once transform
    // invocation.
    bool en = ch.links.front()->enabled();
    Value v = en ? ch.links.front()->data() : Value();
    for (std::size_t i = 0; i < ch.members.size(); ++i) {
      Connection* out = ch.links[i + 1];
      if (out->forward_known()) {
        en = out->enabled();
        if (en) v = out->data();
        continue;
      }
      if (en) {
        if (ch.transforms[i]) v = ch.transforms[i](v);
        out->send(v);
      } else {
        out->idle();
      }
      if (faulted) {
        en = out->enabled();
        v = en ? out->data() : Value();
      }
    }
    st.fwd_stamp = token;
    ++st.fwd_sweeps;
  }
  if (st.bwd_stamp != token && ch.links.back()->ack_known()) {
    // One pass back up propagates the tail ack to every member input (all
    // interior links are Managed by construction of the fusion pass).
    bool a = ch.links.back()->acked();
    for (std::size_t i = ch.members.size(); i-- > 0;) {
      Connection* in = ch.links[i];
      if (in->ack_known()) {
        a = in->acked();
        continue;
      }
      if (a) {
        in->ack();
      } else {
        in->nack();
      }
      if (faulted) a = in->acked();
    }
    st.bwd_stamp = token;
    ++st.bwd_sweeps;
  }
}

void SchedulerBase::absorb(const detail::ResolveCtx& delta) {
  cycle_resolutions_ += delta.resolutions;
  react_calls_ += delta.reacts;
  defaults_ += delta.defaults;
  cycle_transferred_.insert(cycle_transferred_.end(),
                            delta.transferred.begin(),
                            delta.transferred.end());
}

void SchedulerBase::flush_profile(detail::ResolveCtx& ctx) {
  if (probe_ == nullptr) return;
  const std::size_t n =
      std::min(ctx.mod_reacts.size(), module_tape_.size());
  if (n == 0) return;
  probe_->on_module_batch(ctx.mod_reacts.data(), ctx.mod_seconds.data(), n);
  std::fill(ctx.mod_reacts.begin(), ctx.mod_reacts.begin() + n, 0);
  std::fill(ctx.mod_seconds.begin(), ctx.mod_seconds.begin() + n, 0.0);
}

void SchedulerBase::visit_counters(const CounterVisitor& visit) const {
  visit("cycles_run", cycles_run_);
  visit("react_calls", react_calls_);
  visit("defaults_applied", defaults_);
  visit("resolutions", total_resolutions_);
  visit("transfers_committed", transfers_committed_);
  if (plan_ != nullptr) {
    visit("opt.pre_resolved", opt_pre_resolved_);
    std::uint64_t elided = 0;
    for (const char e : plan_->elided) elided += (e != 0) ? 1 : 0;
    visit("opt.elided_modules", elided);
    visit("opt.fused_chains", plan_->chains.size());
    std::uint64_t fwd_sweeps = 0;
    std::uint64_t bwd_sweeps = 0;
    for (const ChainState& st : chain_state_) {
      fwd_sweeps += st.fwd_sweeps;
      bwd_sweeps += st.bwd_sweeps;
    }
    visit("opt.fwd_sweeps", fwd_sweeps);
    visit("opt.bwd_sweeps", bwd_sweeps);
    gate_.visit_counters(visit);
  }
}

bool checked_kernel_enabled() noexcept {
#if defined(LIBERTY_CHECKED_KERNEL)
  return true;
#else
  return false;
#endif
}

void SchedulerBase::verify_resolved(Cycle cycle) const {
#if defined(LIBERTY_CHECKED_KERNEL)
  constexpr bool kChecked = true;
#else
  constexpr bool kChecked = false;
#endif
  // Cheap always-on aggregate check: every channel resolves exactly once per
  // cycle, so the per-cycle resolution count must be 2x the connection
  // count.  The full per-connection audit (which also produces a precise
  // diagnostic) runs only in checked builds or when the aggregate is off
  // (e.g. a channel was driven outside run_cycle).
  const std::uint64_t expected = 2 * conn_tape_.size();
  if (cycle_resolutions_ == expected && !kChecked) return;
  for (const Connection* c : conn_tape_) {
    if (!c->fully_resolved()) {
      throw liberty::SimulationError("internal: unresolved connection " +
                                     c->describe() + " at end of cycle " +
                                     std::to_string(cycle));
    }
  }
}

void SchedulerBase::run_cycle(Cycle cycle) {
  cycle_ = cycle;
  // Fault seam, before any phase: channels are clean and no handler has
  // run, so a throwing hook (injected handler fault) aborts at a
  // scheduler-invariant, recovery-friendly point.
  if (fault_ != nullptr) fault_->begin_cycle(cycle);
  detail::ResolveCtx& ctx = detail::t_resolve_ctx;
  const std::uint64_t r0 = ctx.resolutions;
  const std::uint64_t k0 = ctx.reacts;
  const std::uint64_t d0 = ctx.defaults;
  ctx.transferred.clear();
  cycle_resolutions_ = 0;
  cycle_transferred_.clear();

  // Observability: with a probe installed the cycle is timed phase by
  // phase and react() calls are attributed per module; with none, the
  // whole block below is a single null check per phase boundary.
  KernelProbe* const probe = probe_;
  using clock = std::chrono::steady_clock;
  clock::time_point mark;
  if (probe != nullptr) {
    probe->on_cycle_begin(cycle);
    ctx.size_profile(module_tape_.size());
    ctx.timing = true;
    mark = clock::now();
  }
  const auto end_phase = [&](SchedPhase p) {
    const clock::time_point now = clock::now();
    probe->on_phase(p, cycle, seconds_between(mark, now));
    mark = now;
  };

  const bool opt = plan_ != nullptr;
  if (opt) {
    gate_.begin_cycle(cycle);
    apply_consts();
  }

  start_phase();
  if (probe != nullptr) end_phase(SchedPhase::CycleStart);

  resolve_cycle();

  {
    detail::ResolveCtx delta;
    delta.resolutions = ctx.resolutions - r0;
    delta.reacts = ctx.reacts - k0;
    delta.defaults = ctx.defaults - d0;
    delta.transferred = std::move(ctx.transferred);
    ctx.transferred.clear();
    absorb(delta);
  }

  verify_resolved(cycle);
  // Invariant window: everything resolved, nothing committed.  A probe
  // (resil::Watchdog) that throws here aborts the cycle with module state
  // still untouched by it — the rollback-soundness anchor.
  if (probe != nullptr) {
    probe->on_cycle_resolved(cycle);
    end_phase(SchedPhase::Resolve);
  }

  // Transfers force end_of_cycle on their endpoint modules even when
  // asleep: a transfer commits state wherever it lands.  The dirty list is
  // pre-dedup here; duplicate marks are harmless.
  const std::uint64_t eoc_token = cycles_run_ + 1;
  if (opt) gate_.mark_transfers(cycle_transferred_, eoc_token);
  update_phase(eoc_token);
  if (probe != nullptr) end_phase(SchedPhase::Update);

  // Commit transfers from the dirty list in canonical (connection id) order
  // so observer streams are identical across schedulers; concurrent forward/
  // backward resolution may record a transfer twice, hence the unique().
  std::vector<Connection*>& dirty = cycle_transferred_;
  std::sort(dirty.begin(), dirty.end(),
            [](const Connection* a, const Connection* b) {
              return a->id() < b->id();
            });
  dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());
  for (Connection* c : dirty) {
    c->note_transfer();
    for (const auto& obs : observers_) obs(*c, cycle);
  }

  // Snapshot this cycle's channel values and module quiescence for next
  // cycle's gating decisions, before the channels are wiped.
  if (opt) gate_.refresh(cycle);

  for (Connection* c : conn_tape_) c->reset_channels();

  total_resolutions_ += cycle_resolutions_;
  transfers_committed_ += dirty.size();
  ++cycles_run_;

  if (probe != nullptr) {
    end_phase(SchedPhase::Commit);
    flush_profile(ctx);
    ctx.timing = false;
    probe->on_cycle_end(cycle);
  }
}

void SchedulerBase::start_phase() {
  const bool opt = plan_ != nullptr;
  const Cycle cycle = cycle_;
  for (Module* m : module_tape_) {
    m->now_ = cycle;
    if (any_quarantined_ && quarantined_[m->id()] != 0) continue;
    if (opt && (plan_->elided[m->id()] != 0 ||
                gate_.module_asleep(m->id()))) {
      continue;  // elided: dead logic; asleep: deferred (or replayed) start
    }
    m->cycle_start(cycle);
  }
}

void SchedulerBase::update_phase(std::uint64_t eoc_token) {
  const bool opt = plan_ != nullptr;
  for (Module* m : module_tape_) {
    if (any_quarantined_ && quarantined_[m->id()] != 0) continue;
    if (opt && (plan_->elided[m->id()] != 0 ||
                gate_.skip_end_of_cycle(*m, eoc_token))) {
      continue;
    }
    m->end_of_cycle();
  }
}

void SchedulerBase::set_relaxed_resolution(bool relaxed) noexcept {
  for (Connection* c : conn_tape_) c->set_relaxed(relaxed);
}

// ---------------------------------------------------------------------------
// DynamicScheduler
// ---------------------------------------------------------------------------

DynamicScheduler::DynamicScheduler(Netlist& netlist) : SchedulerBase(netlist) {
  const std::size_t n = netlist.module_count();
  std::size_t cap = 2;
  while (cap < n + 1) cap <<= 1;
  ring_.resize(cap);
  mask_ = cap - 1;
  queued_stamp_.assign(n, 0);
  if (plan_ != nullptr && plan_->gating) {
    // The dynamic scheduler has no schedule graph of its own; build one
    // just to derive the gate's candidate SCCs and boundary sets (the
    // graph itself is not retained).
    ScheduleGraph graph;
    graph.build(netlist);
    gate_.build(graph, *plan_, module_tape_);
  }
}

void DynamicScheduler::enqueue(Module* m) {
  if (m == nullptr) return;
  const ModuleId id = m->id();
  if (id >= queued_stamp_.size()) {
    throw liberty::SimulationError(
        "module '" + m->name() + "' (id " + std::to_string(id) +
        ") is unknown to this scheduler; the netlist grew after scheduler "
        "construction — rebuild the simulator after adding modules");
  }
  if (any_quarantined_ && quarantined_[id] != 0) return;
  if (plan_ != nullptr &&
      (plan_->elided[id] != 0 || gate_.module_asleep(id))) {
    return;  // never activate dead or sleeping modules
  }
  if (queued_stamp_[id] == epoch_) return;
  queued_stamp_[id] = epoch_;
  ring_[tail_] = m;
  tail_ = (tail_ + 1) & mask_;
  ++pushes_;
  const std::size_t occupancy = (tail_ - head_) & mask_;
  if (occupancy > high_water_) high_water_ = occupancy;
}

void DynamicScheduler::visit_counters(const CounterVisitor& visit) const {
  SchedulerBase::visit_counters(visit);
  visit("worklist_pushes", pushes_);
  visit("worklist_high_water", high_water_);
  visit("worklist_capacity", ring_.size());
}

void DynamicScheduler::drain() {
  // The cap is scaled by module count: a healthy cycle legitimately pops
  // each module a small constant number of times, so "passes" here means
  // worklist pops per module.  On overflow, report the channels still
  // unresolved — those are what the churn is circling.
  const std::uint64_t pop_limit =
      iter_cap_ == 0 ? 0 : iter_cap_ * (module_tape_.size() + 1);
  while (head_ != tail_) {
    if (pop_limit != 0 && ++cycle_pops_ > pop_limit) {
      std::string chain;
      std::size_t listed = 0;
      for (const Connection* c : conn_tape_) {
        if (c->fully_resolved()) continue;
        if (listed != 0) chain += " -> ";
        if (++listed > 6) {
          chain += "...";
          break;
        }
        chain += c->describe();
      }
      if (chain.empty()) chain = "(worklist churn, all channels resolved)";
      throw liberty::SimulationError(
          "combinational loop via " + chain +
          " did not converge within the fixed-point iteration cap (" +
          std::to_string(iter_cap_) + " passes) at cycle " +
          std::to_string(cycle_) +
          "; raise the cap (--max-iters) or break the loop with a "
          "sequential module");
    }
    Module* m = ring_[head_];
    head_ = (head_ + 1) & mask_;
    queued_stamp_[m->id()] = epoch_ - 1;
    if (plan_ != nullptr) {
      const std::int32_t chain = plan_->chain_of_module[m->id()];
      if (chain >= 0) {
        // Fused pass-through chain: one sweep resolves the whole chain in
        // place of this member's react.
        run_chain(static_cast<std::size_t>(chain));
        continue;
      }
    }
    call_react(*m);
  }
}

void DynamicScheduler::on_forward_resolved(Connection& c) {
  note_resolved(c);
  // Default control: the consumer accepts everything offered.
  if (c.ack_mode() == AckMode::AutoAccept) apply_auto_accept(c);
  enqueue(c.consumer());
}

void DynamicScheduler::on_backward_resolved(Connection& c) {
  note_resolved(c);
  enqueue(c.producer());
}

void DynamicScheduler::resolve_cycle() {
  cycle_pops_ = 0;
  // Quiescence-gating decision phase, in topological order.  This runs
  // after the cycle_start loop, so state-only drives of awake producers
  // (e.g. an exhausted Source idling) are already resolved and upstream
  // boundaries are decidable; boundaries that resolve only through later
  // reacts conservatively wake their SCCs.  Replays fire the resolution
  // hooks, which enqueue awake downstream consumers as usual.
  if (gate_.enabled()) {
    woken_scratch_.clear();
    for (const std::uint32_t s : gate_.candidates()) {
      gate_.try_sleep(s, cycle_, &woken_scratch_);
    }
    for (Module* m : woken_scratch_) enqueue(m);
  }
  // Every module reacts at least once per cycle so that purely combinational
  // modules run even when none of their inputs produced an event (e.g. all
  // inputs unconnected, reading port defaults).
  for (Module* m : module_tape_) enqueue(m);
  drain();
  // Quiescent: no module will drive anything further without new
  // information.  Default undriven forward channels one at a time (each may
  // unblock reactions downstream), then undriven backward channels.
  for (Connection* c : conn_tape_) {
    if (!c->forward_known()) {
      default_forward(*c);
      drain();
    }
  }
  for (Connection* c : conn_tape_) {
    if (!c->ack_known()) {
      default_backward(*c);
      drain();
    }
  }
  // The ring is empty; bumping the epoch un-queues every mark in O(1) so
  // the next cycle (whose cycle_start drives enqueue reactions) starts
  // clean.
  ++epoch_;
}

// ---------------------------------------------------------------------------
// AnalyzedScheduler
// ---------------------------------------------------------------------------

std::uint64_t AnalyzedScheduler::fixedpoint_passes() const noexcept {
  std::uint64_t sum = 0;
  for (const std::uint64_t n : scc_iters_) sum += n;
  return sum;
}

void AnalyzedScheduler::visit_counters(const CounterVisitor& visit) const {
  SchedulerBase::visit_counters(visit);
  visit("scc_count", scc_count());
  visit("largest_scc", largest_scc());
  visit("fixedpoint_passes", fixedpoint_passes());
  std::uint64_t busiest = 0;
  for (const std::uint64_t n : scc_iters_) busiest = std::max(busiest, n);
  visit("fixedpoint_passes_busiest_scc", busiest);
  visit("cleanup_activations", cleanup_activations_);
}

AnalyzedScheduler::AnalyzedScheduler(Netlist& netlist)
    : SchedulerBase(netlist) {
  graph_.build(netlist);

  // Precompute per-SCC execution state so run_scc does no per-cycle driver
  // discovery, sorting, or allocation.
  const auto& sccs = graph_.sccs();
  scc_drivers_.resize(sccs.size());
  scc_order_.resize(sccs.size());
  scc_iters_.assign(sccs.size(), 0);
  for (std::size_t i = 0; i < sccs.size(); ++i) {
    if (sccs[i].size() == 1 && !graph_.self_loop(i)) continue;

    // Distinct driver modules, in order of first appearance.  Elided
    // modules never react (their driven channels are all constant).
    for (ChannelId ch : sccs[i]) {
      Module* d = graph_.nodes()[ch].driver;
      if (d != nullptr && !module_elided(d->id()) &&
          std::find(scc_drivers_[i].begin(), scc_drivers_[i].end(), d) ==
              scc_drivers_[i].end()) {
        scc_drivers_[i].push_back(d);
      }
    }

    // Channels are defaulted forwards-first so that a gated or auto ack
    // never has to wait on an unknown offer within the group.
    scc_order_[i] = sccs[i];
    std::sort(scc_order_[i].begin(), scc_order_[i].end(),
              [this](ChannelId a, ChannelId b) {
                const bool af = graph_.nodes()[a].kind == ChannelKind::Forward;
                const bool bf = graph_.nodes()[b].kind == ChannelKind::Forward;
                if (af != bf) return af;
                return a < b;
              });
  }

  if (plan_ != nullptr && plan_->gating) {
    gate_.build(graph_, *plan_, module_tape_);
  }
}

bool AnalyzedScheduler::node_resolved(ChannelId id) const {
  const ScheduleGraph::Node& n = graph_.nodes()[id];
  return n.kind == ChannelKind::Forward ? n.conn->forward_known()
                                        : n.conn->ack_known();
}

void AnalyzedScheduler::execute_node(ChannelId id) {
  const ScheduleGraph::Node& n = graph_.nodes()[id];
  Connection& c = *n.conn;
  if (plan_ != nullptr) {
    if (plan_->channel_const[id] != 0) return;  // pre-resolved at cycle top
    const std::int32_t chain = plan_->chain_of_channel[id];
    if (chain >= 0) {
      // Fused chain: the sweep resolves this channel (and the rest of the
      // chain's channels in this direction) in one pass.  Topological
      // order guarantees the chain's upstream end is known by now, so the
      // fallback below is defensive only.
      run_chain(static_cast<std::size_t>(chain));
      if (node_resolved(id)) return;
    }
  }
  if (n.kind == ChannelKind::Forward) {
    if (c.forward_known()) return;
    call_react(*n.driver);
    if (!c.forward_known()) default_forward(c);
  } else {
    if (c.ack_known()) return;
    if (n.driver == nullptr) {
      // AutoAccept: forward is topologically ordered before us, so the
      // offer is known (or was defaulted) by now.
      if (c.forward_known()) apply_auto_accept(c);
    } else {
      call_react(*n.driver);
      if (!c.ack_known()) default_backward(c);
    }
  }
}

void AnalyzedScheduler::run_scc(std::size_t scc_index) {
  const std::vector<ChannelId>& group = graph_.sccs()[scc_index];
  const std::vector<Module*>& drivers = scc_drivers_[scc_index];
  const std::vector<ChannelId>& order = scc_order_[scc_index];
  // Progress is detected through the thread-local resolution counter (every
  // resolution this thread causes is observed by the hooks), replacing the
  // old O(group) generation polling per pass with an O(1) check.
  const std::uint64_t* resolutions = &detail::t_resolve_ctx.resolutions;
  std::uint64_t passes = 0;

  while (true) {
    // React to quiescence within the group.
    while (true) {
      ++scc_iters_[scc_index];
      if (iter_cap_ != 0 && ++passes > iter_cap_) {
        throw_nonconvergence(scc_index, passes);
      }
      const std::uint64_t before = *resolutions;
      for (Module* d : drivers) call_react(*d);
      for (ChannelId ch : group) {
        const ScheduleGraph::Node& n = graph_.nodes()[ch];
        if (n.kind == ChannelKind::Backward && n.driver == nullptr &&
            n.conn->forward_known()) {
          apply_auto_accept(*n.conn);
        }
      }
      if (*resolutions == before) break;
    }
    // Default the first still-unresolved channel and go around again.
    ChannelId target = 0;
    bool found = false;
    for (ChannelId ch : order) {
      if (!node_resolved(ch)) {
        target = ch;
        found = true;
        break;
      }
    }
    if (!found) return;
    const ScheduleGraph::Node& n = graph_.nodes()[target];
    if (n.kind == ChannelKind::Forward) {
      default_forward(*n.conn);
    } else if (n.driver == nullptr) {
      apply_auto_accept(*n.conn);
    } else {
      default_backward(*n.conn);
    }
  }
}

void AnalyzedScheduler::throw_nonconvergence(std::size_t scc_index,
                                             std::uint64_t passes) const {
  // Attribute the oscillation: the SCC's member connections are the
  // combinational loop (one entry per connection — forwards only, so the
  // chain reads as the data path).
  std::string chain;
  std::size_t listed = 0;
  for (ChannelId ch : graph_.sccs()[scc_index]) {
    const ScheduleGraph::Node& n = graph_.nodes()[ch];
    if (n.kind != ChannelKind::Forward) continue;
    if (listed != 0) chain += " -> ";
    if (++listed > 6) {
      chain += "...";
      break;
    }
    chain += n.conn->describe();
  }
  if (chain.empty() && !graph_.sccs()[scc_index].empty()) {
    chain = graph_.nodes()[graph_.sccs()[scc_index][0]].conn->describe();
  }
  throw liberty::SimulationError(
      "combinational loop via " + chain +
      " did not converge within the fixed-point iteration cap (" +
      std::to_string(passes - 1) + " passes) at cycle " +
      std::to_string(cycle_) +
      "; raise the cap (--max-iters) or break the loop with a sequential "
      "module");
}

void AnalyzedScheduler::cleanup_unresolved() {
  // Rare endgame for channels the schedule could not attribute (e.g. a
  // gated ack whose intent was pending on a forward in a later SCC).
  // Mirrors the dynamic scheduler's quiesce-then-default loop globally.
  const std::size_t n_nodes = graph_.nodes().size();
  const std::uint64_t* resolutions = &detail::t_resolve_ctx.resolutions;
  const std::uint64_t activation_limit =
      iter_cap_ == 0 ? 0 : iter_cap_ * (n_nodes + 1);
  std::uint64_t activations = 0;
  while (true) {
    bool any = false;
    ChannelId first_unresolved = 0;
    for (ChannelId ch = 0; ch < n_nodes; ++ch) {
      if (!node_resolved(ch)) {
        any = true;
        first_unresolved = ch;
        break;
      }
    }
    if (!any) return;
    if (activation_limit != 0 && ++activations > activation_limit) {
      throw_nonconvergence(graph_.scc_of()[first_unresolved], activations);
    }
    ++cleanup_activations_;
    while (true) {
      const std::uint64_t before = *resolutions;
      for (Module* m : module_tape_) call_react(*m);
      for (Connection* c : conn_tape_) {
        if (c->ack_mode() == AckMode::AutoAccept && c->forward_known()) {
          apply_auto_accept(*c);
        }
      }
      if (*resolutions == before) break;
    }
    for (ChannelId ch = 0; ch < n_nodes; ++ch) {
      if (!node_resolved(ch)) {
        execute_node(ch);
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// StaticScheduler
// ---------------------------------------------------------------------------

StaticScheduler::StaticScheduler(Netlist& netlist)
    : AnalyzedScheduler(netlist) {}

void StaticScheduler::resolve_cycle() {
  const auto& sccs = graph_.sccs();
  const bool gating = gate_.enabled();
  for (std::size_t i = 0; i < sccs.size(); ++i) {
    if (gating &&
        gate_.try_sleep(static_cast<std::uint32_t>(i), cycle_)) {
      continue;  // replayed from cache
    }
    if (sccs[i].size() == 1 && !graph_.self_loop(i)) {
      execute_node(sccs[i][0]);
    } else {
      run_scc(i);
    }
  }
  cleanup_unresolved();
}

}  // namespace liberty::core
