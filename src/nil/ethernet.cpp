#include "liberty/nil/ethernet.hpp"

namespace liberty::nil {

std::uint32_t crc32(const std::vector<std::int64_t>& words) {
  std::uint32_t crc = 0xFFFFFFFFu;
  auto feed = [&crc](std::uint8_t byte) {
    crc ^= byte;
    for (int k = 0; k < 8; ++k) {
      crc = (crc >> 1) ^ (0xEDB88320u & (~(crc & 1u) + 1u));
    }
  };
  for (const std::int64_t w : words) {
    const auto u = static_cast<std::uint64_t>(w);
    for (int b = 0; b < 8; ++b) {
      feed(static_cast<std::uint8_t>(u >> (8 * b)));
    }
  }
  return ~crc;
}

}  // namespace liberty::nil
