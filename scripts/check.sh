#!/usr/bin/env bash
# One-command verification: build and test the release configuration, then
# the ASan+UBSan configuration (and ThreadSanitizer if requested).
#
#   scripts/check.sh            # release + asan-ubsan
#   scripts/check.sh --tsan     # additionally build tsan and run `ctest -L tsan`
#   scripts/check.sh --quick    # release only, skipping the `fuzz` label
#
# Exits non-zero on the first failing build or test.
set -euo pipefail

cd "$(dirname "$0")/.."

run_tsan=0
quick=0
for arg in "$@"; do
  case "$arg" in
    --tsan) run_tsan=1 ;;
    --quick) quick=1 ;;
    *) echo "usage: $0 [--tsan] [--quick]" >&2; exit 2 ;;
  esac
done

jobs="$(nproc 2>/dev/null || echo 2)"

echo "=== release build ==="
cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build build -j "$jobs"
echo "=== release tests ==="
if [ "$quick" -eq 1 ]; then
  ctest --test-dir build --output-on-failure -j "$jobs" -LE fuzz
  exit 0
fi
ctest --test-dir build --output-on-failure -j "$jobs"

echo "=== asan+ubsan build ==="
cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DLIBERTY_SANITIZE=address+undefined >/dev/null
cmake --build build-asan -j "$jobs"
echo "=== asan+ubsan tests ==="
ctest --test-dir build-asan --output-on-failure -j "$jobs" -LE fuzz

if [ "$run_tsan" -eq 1 ]; then
  echo "=== tsan build ==="
  cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DLIBERTY_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "$jobs"
  echo "=== tsan tests (label: tsan) ==="
  ctest --test-dir build-tsan --output-on-failure -j "$jobs" -L tsan
fi

echo "all checks passed"
