// Threaded-code interpreter for the compiled backend's bytecode.
//
// On GNU-compatible compilers exec() uses computed goto: every opcode body
// ends by indexing a label table with the next instruction's opcode and
// jumping straight to it, so the dispatch branch is distributed across the
// opcode bodies (one indirect jump each, separately predicted) instead of
// funneling through a single switch at the loop head.  Elsewhere the same
// bodies compile as a conventional switch loop; VM_CASE/VM_NEXT/VM_JUMP
// abstract the difference so there is exactly one definition per opcode.
//
// The devirtualized bodies call hooks as static_cast<T&>(m).T::hook() —
// direct calls the compiler can inline — which is sound because lowering
// emitted the opcode only after an exact typeid match.
#include "devirt.hpp"
#include "liberty/gen/compiled_scheduler.hpp"

namespace liberty::gen {

namespace core = liberty::core;

namespace {

// Devirtualized react: same bookkeeping as SchedulerBase::call_react, minus
// the quarantine test (lowering never emits a react opcode for a
// quarantined driver) and the virtual dispatch.  The profiling lane must
// stay virtual — timed_react attributes by module, not by static type.
template <typename T>
inline void react_as(core::Module& m) {
  core::detail::ResolveCtx& ctx = core::detail::t_resolve_ctx;
  ++ctx.reacts;
  if (ctx.timing) {
    core::detail::timed_react(m, ctx);
  } else {
    static_cast<T&>(m).T::react();
  }
}

}  // namespace

void CompiledScheduler::start_phase() {
  if (gated_program_ && !gate_.enabled()) {
    // The measured cost-model guard turned the quiescence gate off for
    // good (it never re-enables), leaving every TrySleep/StartGated/
    // EndGated in the tapes as a per-cycle tax with no possible payoff.
    // Recompile against the dead gate: lower() now emits the unguarded
    // forms, and this branch never fires again (gated_program_ is reset).
    lower();
  }
  // The base loop stamps now_ on every module, including ones whose hooks
  // are skipped this cycle (quarantined, elided, asleep): any hook that
  // does run later — a deferred wake's cycle_start, a transfer-forced
  // end_of_cycle — must observe the current cycle.
  const core::Cycle cycle = cycle_;
  for (core::Module* m : module_tape_) set_now(*m, cycle);
  exec(program_.start);
}

void CompiledScheduler::resolve_cycle() {
  exec(program_.resolve);
  if (!fast_resolve_) {
    // Same endgame as the static scheduler: anything the schedule could not
    // attribute (or a mid-cycle wake left unresolved) quiesces to defaults.
    cleanup_unresolved();
    return;
  }
  // Hooks are uninstalled (fast_resolve_): every channel resolved exactly
  // once — pre-resolved constants, tape ops, gate replays and pending-ack
  // drains included — so the counter is a constant and the transferred
  // dirty list falls out of one flat state sweep.  run_cycle absorbs the
  // context right after this returns; verify_resolved still audits the
  // everything-resolved claim in checked builds.
  core::detail::ResolveCtx& ctx = core::detail::t_resolve_ctx;
  ctx.resolutions += 2 * static_cast<std::uint64_t>(conn_tape_.size());
  for (core::Connection* c : conn_tape_) {
    if (c->transferred()) ctx.transferred.push_back(c);
  }
}

void CompiledScheduler::update_phase(std::uint64_t eoc_token) {
  eoc_token_ = eoc_token;
  exec(program_.commit);
}

void CompiledScheduler::exec(const std::vector<Instr>& tape) {
  core::Module* const* const mods = module_tape_.data();
  core::Connection* const* const conns = conn_tape_.data();
  const core::Cycle cycle = cycle_;
  const Instr* pc = tape.data();

#if defined(__GNUC__) || defined(__clang__)
#define VM_CASE(name) vm_##name:
#define VM_NEXT()                                                \
  do {                                                           \
    ++pc;                                                        \
    goto* kDispatch[static_cast<std::size_t>(pc->op)];           \
  } while (0)
#define VM_JUMP(n)                                               \
  do {                                                           \
    pc += (n);                                                   \
    goto* kDispatch[static_cast<std::size_t>(pc->op)];           \
  } while (0)
#define VM_END()
  // Label table, in exact Op enum order (the X-macro lists keep it so).
  static const void* const kDispatch[] = {
#define VM_ADDR(K) &&vm_Start##K,
      LIBERTY_GEN_START_KINDS(VM_ADDR)
#undef VM_ADDR
      &&vm_StartGated,
      &&vm_StartVirtual,
      &&vm_TrySleep,
      &&vm_RunScc,
      &&vm_Chain,
      &&vm_AutoAck,
      &&vm_DefFwd,
      &&vm_DefBwd,
#define VM_ADDR(K) &&vm_Fwd##K,
      LIBERTY_GEN_REACT_KINDS(VM_ADDR)
#undef VM_ADDR
      &&vm_FwdVirtual,
#define VM_ADDR(K) &&vm_Bwd##K,
      LIBERTY_GEN_REACT_KINDS(VM_ADDR)
#undef VM_ADDR
      &&vm_BwdVirtual,
#define VM_ADDR(K) &&vm_End##K,
      LIBERTY_GEN_COMMIT_KINDS(VM_ADDR)
#undef VM_ADDR
      &&vm_EndGated,
      &&vm_EndVirtual,
      &&vm_Halt,
  };
  goto* kDispatch[static_cast<std::size_t>(pc->op)];
#else
#define VM_CASE(name) case Op::name:
#define VM_NEXT()  \
  do {             \
    ++pc;          \
    goto vm_loop;  \
  } while (0)
#define VM_JUMP(n) \
  do {             \
    pc += (n);     \
    goto vm_loop;  \
  } while (0)
#define VM_END() }
vm_loop:
  switch (pc->op) {
#endif

  // ---- start phase ------------------------------------------------------
#define VM_START_OP(K)                                           \
  VM_CASE(Start##K) {                                            \
    static_cast<LIBERTY_GEN_TYPE(K)&>(*mods[pc->a])              \
        .LIBERTY_GEN_TYPE(K)::cycle_start(cycle);                \
  }                                                              \
  VM_NEXT();
  LIBERTY_GEN_START_KINDS(VM_START_OP)
#undef VM_START_OP

  VM_CASE(StartGated) {
    core::Module& m = *mods[pc->a];
    if (!gate_.module_asleep(m.id())) m.cycle_start(cycle);
  }
  VM_NEXT();

  VM_CASE(StartVirtual) { mods[pc->a]->cycle_start(cycle); }
  VM_NEXT();

  // ---- resolve phase ----------------------------------------------------
  VM_CASE(TrySleep) {
    // Replayed from cache: the next pc->b instructions are this SCC's.
    if (gate_.try_sleep(pc->a, cycle)) VM_JUMP(pc->b + 1);
  }
  VM_NEXT();

  VM_CASE(RunScc) { run_scc(pc->a); }
  VM_NEXT();

  VM_CASE(Chain) {
    run_chain(pc->a);
    // Defensive, exactly like execute_node: topological order guarantees
    // the chain's upstream end was known, so the sweep resolved pc->b.
    if (!node_resolved(pc->b)) execute_node(pc->b);
  }
  VM_NEXT();

  VM_CASE(AutoAck) {
    core::Connection& c = *conns[pc->a];
    if (!c.ack_known() && c.forward_known()) apply_auto_accept(c);
  }
  VM_NEXT();

  VM_CASE(DefFwd) { default_forward(*conns[pc->a]); }
  VM_NEXT();

  VM_CASE(DefBwd) { default_backward(*conns[pc->a]); }
  VM_NEXT();

#define VM_FWD_OP(K)                                             \
  VM_CASE(Fwd##K) {                                              \
    core::Connection& c = *conns[pc->b];                         \
    if (!c.forward_known()) {                                    \
      react_as<LIBERTY_GEN_TYPE(K)>(*mods[pc->a]);               \
      if (!c.forward_known()) default_forward(c);                \
    }                                                            \
  }                                                              \
  VM_NEXT();
  LIBERTY_GEN_REACT_KINDS(VM_FWD_OP)
#undef VM_FWD_OP

  VM_CASE(FwdVirtual) {
    core::Connection& c = *conns[pc->b];
    if (!c.forward_known()) {
      call_react(*mods[pc->a]);
      if (!c.forward_known()) default_forward(c);
    }
  }
  VM_NEXT();

#define VM_BWD_OP(K)                                             \
  VM_CASE(Bwd##K) {                                              \
    core::Connection& c = *conns[pc->b];                         \
    if (!c.ack_known()) {                                        \
      react_as<LIBERTY_GEN_TYPE(K)>(*mods[pc->a]);               \
      if (!c.ack_known()) default_backward(c);                   \
    }                                                            \
  }                                                              \
  VM_NEXT();
  LIBERTY_GEN_REACT_KINDS(VM_BWD_OP)
#undef VM_BWD_OP

  VM_CASE(BwdVirtual) {
    core::Connection& c = *conns[pc->b];
    if (!c.ack_known()) {
      call_react(*mods[pc->a]);
      if (!c.ack_known()) default_backward(c);
    }
  }
  VM_NEXT();

  // ---- commit phase -----------------------------------------------------
#define VM_END_OP(K)                                             \
  VM_CASE(End##K) {                                              \
    static_cast<LIBERTY_GEN_TYPE(K)&>(*mods[pc->a])              \
        .LIBERTY_GEN_TYPE(K)::end_of_cycle();                    \
  }                                                              \
  VM_NEXT();
  LIBERTY_GEN_COMMIT_KINDS(VM_END_OP)
#undef VM_END_OP

  VM_CASE(EndGated) {
    core::Module& m = *mods[pc->a];
    if (!gate_.skip_end_of_cycle(m, eoc_token_)) m.end_of_cycle();
  }
  VM_NEXT();

  VM_CASE(EndVirtual) { mods[pc->a]->end_of_cycle(); }
  VM_NEXT();

  VM_CASE(Halt) { return; }

  VM_END()

#undef VM_CASE
#undef VM_NEXT
#undef VM_JUMP
#undef VM_END
}

}  // namespace liberty::gen
