#include "liberty/pcl/arbiter.hpp"

#include "liberty/support/error.hpp"

namespace liberty::pcl {

using liberty::core::AckMode;
using liberty::core::Cycle;
using liberty::core::Deps;
using liberty::core::Params;

Arbiter::Arbiter(const std::string& name, const Params& params)
    : Module(name),
      in_(add_in("in", AckMode::Managed, 1)),
      out_(add_out("out", 0, 1)),
      policy_(params.get_string("policy", "round_robin")) {
  if (policy_ != "round_robin" && policy_ != "priority" && policy_ != "lru") {
    throw liberty::ElaborationError("pcl.arbiter '" + name +
                                    "': unknown policy '" + policy_ + "'");
  }
}

void Arbiter::init() { last_grant_.assign(in_.width(), 0); }

void Arbiter::cycle_start(Cycle) {
  winner_ = -2;
  losers_nacked_ = false;
}

int Arbiter::select(const std::vector<std::size_t>& req) const {
  if (req.empty()) return -1;
  if (policy_ == "priority") return static_cast<int>(req.front());
  if (policy_ == "lru") {
    std::size_t best = req.front();
    for (const std::size_t i : req) {
      if (last_grant_[i] < last_grant_[best]) best = i;
    }
    return static_cast<int>(best);
  }
  // round_robin: first requester at or after the rotating pointer.
  for (const std::size_t i : req) {
    if (i >= rr_next_) return static_cast<int>(i);
  }
  return static_cast<int>(req.front());
}

void Arbiter::react() {
  // Decide the winner once every input's offer is known.
  if (winner_ == -2) {
    std::vector<std::size_t> requesters;
    for (std::size_t i = 0; i < in_.width(); ++i) {
      if (!in_.forward_known(i)) return;  // wait for full information
      if (in_.has_data(i)) requesters.push_back(i);
    }
    winner_ = select(requesters);
    if (requesters.size() > 1) {
      stats().bind(conflicts_stat_, "conflicts");
      conflicts_stat_->inc();
    }
    if (winner_ >= 0) {
      out_.send(in_.data(static_cast<std::size_t>(winner_)));
    } else {
      out_.idle();
    }
    // Losers are refused immediately; the winner's ack mirrors the output's.
    for (std::size_t i = 0; i < in_.width(); ++i) {
      if (static_cast<int>(i) != winner_) in_.nack(i);
    }
    losers_nacked_ = true;
  }
  if (winner_ >= 0 && !in_.ack_driven(static_cast<std::size_t>(winner_)) &&
      out_.ack_known()) {
    if (out_.acked()) {
      in_.ack(static_cast<std::size_t>(winner_));
    } else {
      in_.nack(static_cast<std::size_t>(winner_));
    }
  }
}

void Arbiter::end_of_cycle() {
  if (winner_ >= 0 && out_.transferred()) {
    const auto w = static_cast<std::size_t>(winner_);
    stats().bind(grants_stat_, "grants");
    grants_stat_->inc();
    if (grants_in_stat_.size() != in_.width()) {
      grants_in_stat_.resize(in_.width(), nullptr);
    }
    stats().bind(grants_in_stat_[w], "grants_in" + std::to_string(w));
    grants_in_stat_[w]->inc();
    last_grant_[w] = now() + 1;
    rr_next_ = (w + 1) % in_.width();
  }
}

void Arbiter::save_state(liberty::core::StateWriter& w) const {
  w.put_size(rr_next_);
  w.put_size(last_grant_.size());
  for (const std::uint64_t g : last_grant_) w.put_u64(g);
}

void Arbiter::load_state(liberty::core::StateReader& r) {
  rr_next_ = r.get_size();
  last_grant_.assign(r.get_size(), 0);
  for (auto& g : last_grant_) g = r.get_u64();
}

void Arbiter::declare_deps(Deps& deps) const {
  deps.depends(out_, {liberty::core::fwd(in_)});
  deps.depends(in_, {liberty::core::fwd(in_), liberty::core::bwd(out_)});
}

}  // namespace liberty::pcl
