file(REMOVE_RECURSE
  "CMakeFiles/liberty_ccl.dir/fabric.cpp.o"
  "CMakeFiles/liberty_ccl.dir/fabric.cpp.o.d"
  "CMakeFiles/liberty_ccl.dir/registry.cpp.o"
  "CMakeFiles/liberty_ccl.dir/registry.cpp.o.d"
  "CMakeFiles/liberty_ccl.dir/router.cpp.o"
  "CMakeFiles/liberty_ccl.dir/router.cpp.o.d"
  "CMakeFiles/liberty_ccl.dir/topology.cpp.o"
  "CMakeFiles/liberty_ccl.dir/topology.cpp.o.d"
  "CMakeFiles/liberty_ccl.dir/traffic.cpp.o"
  "CMakeFiles/liberty_ccl.dir/traffic.cpp.o.d"
  "CMakeFiles/liberty_ccl.dir/wireless.cpp.o"
  "CMakeFiles/liberty_ccl.dir/wireless.cpp.o.d"
  "libliberty_ccl.a"
  "libliberty_ccl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/liberty_ccl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
