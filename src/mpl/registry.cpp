#include "liberty/mpl/mpl.hpp"

namespace liberty::mpl {

using liberty::core::ModuleRegistry;
using liberty::core::simple_factory;

void register_mpl(ModuleRegistry& r) {
  r.register_template("mpl.snoop_cache", "MSI snooping coherent cache",
                      simple_factory<SnoopCache>());
  r.register_template("mpl.snoop_memory", "memory controller on a snoop bus",
                      simple_factory<SnoopMemory>());
  r.register_template("mpl.dir_cache", "directory-protocol coherent cache",
                      simple_factory<DirCache>());
  r.register_template("mpl.directory", "full-map MSI directory + memory",
                      simple_factory<DirectoryCtl>());
  r.register_template("mpl.ordering", "SC/TSO memory ordering controller",
                      simple_factory<OrderingCtl>());
  r.register_template("mpl.dma", "DMA controller for message passing",
                      simple_factory<DmaCtl>());
}

}  // namespace liberty::mpl
