// Network Interface Library (NIL) — umbrella header.
//
// "This consists of components that serve as interfaces across network
// boundaries and in between networks and processors." (§3)
#pragma once

#include "liberty/core/registry.hpp"
#include "liberty/nil/ethernet.hpp"
#include "liberty/nil/fabric_adapter.hpp"
#include "liberty/nil/nic.hpp"

namespace liberty::nil {

/// Register every NIL template ("nil.*") with `registry`.
void register_nil(liberty::core::ModuleRegistry& registry);

}  // namespace liberty::nil
