#include "liberty/scenario/trace_modules.hpp"

#include <algorithm>
#include <sstream>

#include "liberty/pcl/payloads.hpp"
#include "liberty/support/error.hpp"

namespace liberty::scenario {

using liberty::core::AckMode;
using liberty::core::Cycle;
using liberty::core::Deps;
using liberty::core::Params;
using liberty::pcl::MemReq;
using liberty::pcl::MemResp;

// ---------------------------------------------------------------------------
// TraceSource
// ---------------------------------------------------------------------------

TraceSource::TraceSource(const std::string& name, const Params& params)
    : Module(name),
      host_req_(add_out("host_req", 0, 1)),
      host_resp_(add_in("host_resp", AckMode::AutoAccept, 0, 1)),
      node_(static_cast<std::size_t>(params.get_int("node", 0))),
      tx_ring_(static_cast<std::uint64_t>(params.get_int("tx_ring", 8192))),
      entries_(static_cast<std::uint64_t>(params.get_int("ring_entries", 8))),
      payload_base_(
          static_cast<std::uint64_t>(params.get_int("payload_base", 4096))),
      slot_stride_(
          static_cast<std::uint64_t>(params.get_int("slot_stride", 64))) {
  if (entries_ == 0 || slot_stride_ == 0) {
    throw liberty::ElaborationError(
        "scenario.trace_source '" + name +
        "': ring_entries and slot_stride must be >= 1");
  }
  for (const TraceRequest& r : parse_trace(params.get_string("trace", ""))) {
    if (r.src != node_) continue;
    if (r.words > slot_stride_) {
      throw liberty::ElaborationError(
          "scenario.trace_source '" + name + "': request " +
          std::to_string(r.id) + " payload exceeds slot_stride");
    }
    reqs_.push_back(r);
  }
}

std::int64_t TraceSource::payload_word(std::size_t k) const {
  const TraceRequest& r = reqs_[next_];
  if (k == 0) return static_cast<std::int64_t>(r.id);
  if (k == 1) return static_cast<std::int64_t>(born_);
  return static_cast<std::int64_t>(r.id * 7919 + k);  // deterministic fill
}

void TraceSource::issue_read(std::uint64_t addr) {
  op_ = Flight{liberty::Value::make<MemReq>(MemReq::Op::Read, addr, 0,
                                            next_tag_++),
               false};
}

void TraceSource::issue_write(std::uint64_t addr, std::int64_t data) {
  op_ = Flight{liberty::Value::make<MemReq>(MemReq::Op::Write, addr, data,
                                            next_tag_++),
               false};
}

void TraceSource::cycle_start(Cycle) {
  if (op_ && !op_->sent) {
    host_req_.send(op_->req);
  } else {
    host_req_.idle();
  }
}

void TraceSource::maybe_start() {
  if (phase_ != Phase::Idle || next_ >= reqs_.size()) return;
  if (now() < reqs_[next_].cycle) return;
  phase_ = Phase::Poll;
  issue_read(desc_addr() + 2);
}

void TraceSource::advance(std::int64_t resp) {
  switch (phase_) {
    case Phase::Poll:
      // The slot is usable when empty (0) or already completed (2).
      if (resp == 0 || resp == 2) {
        born_ = now();
        word_ = 0;
        phase_ = Phase::Payload;
        issue_write(payload_addr() + word_, payload_word(word_));
      } else {
        stats().counter("poll_retries").inc();
        issue_read(desc_addr() + 2);
      }
      break;
    case Phase::Payload:
      ++word_;
      if (word_ < reqs_[next_].words) {
        issue_write(payload_addr() + word_, payload_word(word_));
      } else {
        phase_ = Phase::DescAddr;
        issue_write(desc_addr() + 0,
                    static_cast<std::int64_t>(payload_addr()));
      }
      break;
    case Phase::DescAddr:
      phase_ = Phase::DescLen;
      issue_write(desc_addr() + 1,
                  static_cast<std::int64_t>(reqs_[next_].words));
      break;
    case Phase::DescLen:
      phase_ = Phase::DescDst;
      issue_write(desc_addr() + 3, static_cast<std::int64_t>(reqs_[next_].dst));
      break;
    case Phase::DescDst:
      // Status = 1 last: the firmware must not see a half-built descriptor.
      phase_ = Phase::DescGo;
      issue_write(desc_addr() + 2, 1);
      break;
    case Phase::DescGo:
      stats().counter("injected").inc();
      ++injected_;
      slot_ = (slot_ + 1) % entries_;
      ++next_;
      phase_ = Phase::Idle;
      break;
    case Phase::Idle:
      break;  // no transaction is ever in flight while idle
  }
}

void TraceSource::end_of_cycle() {
  if (op_ && !op_->sent && host_req_.transferred()) op_->sent = true;
  if (host_resp_.transferred()) {
    const auto resp = host_resp_.data().as<MemResp>();
    op_.reset();
    advance(resp->data);
  }
  if (!op_) maybe_start();
}

void TraceSource::declare_deps(Deps& deps) const {
  deps.state_only(host_req_);
}

void TraceSource::save_state(liberty::core::StateWriter& w) const {
  w.put_u64(static_cast<std::uint64_t>(phase_));
  w.put_size(next_);
  w.put_u64(slot_);
  w.put_size(word_);
  w.put_u64(born_);
  w.put_bool(op_.has_value());
  if (op_) {
    w.put(op_->req);
    w.put_bool(op_->sent);
  }
  w.put_u64(injected_);
  w.put_u64(next_tag_);
}

void TraceSource::load_state(liberty::core::StateReader& r) {
  phase_ = static_cast<Phase>(r.get_u64());
  next_ = r.get_size();
  slot_ = r.get_u64();
  word_ = r.get_size();
  born_ = r.get_u64();
  op_.reset();
  if (r.get_bool()) {
    Flight f;
    f.req = r.get();
    f.sent = r.get_bool();
    op_ = std::move(f);
  }
  injected_ = r.get_u64();
  next_tag_ = r.get_u64();
}

// ---------------------------------------------------------------------------
// TraceSink
// ---------------------------------------------------------------------------

TraceSink::TraceSink(const std::string& name, const Params& params)
    : Module(name),
      host_req_(add_out("host_req", 0, 1)),
      host_resp_(add_in("host_resp", AckMode::AutoAccept, 0, 1)),
      node_(static_cast<std::size_t>(params.get_int("node", 0))),
      rx_ring_(static_cast<std::uint64_t>(params.get_int("rx_ring", 8448))),
      entries_(static_cast<std::uint64_t>(params.get_int("ring_entries", 8))),
      buf_base_(static_cast<std::uint64_t>(params.get_int("buf_base", 6144))),
      slot_stride_(
          static_cast<std::uint64_t>(params.get_int("slot_stride", 64))),
      latency_buckets_(static_cast<std::size_t>(
          params.get_int("latency_buckets", 64))),
      latency_bucket_width_(static_cast<double>(
          params.get_int("latency_bucket_width", 32))) {
  if (entries_ == 0 || slot_stride_ == 0) {
    throw liberty::ElaborationError(
        "scenario.trace_sink '" + name +
        "': ring_entries and slot_stride must be >= 1");
  }
  // First transaction: arm slot 0's buffer address.  Ports may not be
  // driven from a constructor, so only the pending op is staged here.
  issue_write(desc_addr() + 0, static_cast<std::int64_t>(buf_addr()));
}

void TraceSink::issue_read(std::uint64_t addr) {
  op_ = Flight{liberty::Value::make<MemReq>(MemReq::Op::Read, addr, 0,
                                            next_tag_++),
               false};
}

void TraceSink::issue_write(std::uint64_t addr, std::int64_t data) {
  op_ = Flight{liberty::Value::make<MemReq>(MemReq::Op::Write, addr, data,
                                            next_tag_++),
               false};
}

void TraceSink::cycle_start(Cycle) {
  if (op_ && !op_->sent) {
    host_req_.send(op_->req);
  } else {
    host_req_.idle();
  }
}

void TraceSink::finish_record() {
  Record rec;
  rec.id = len_ >= 1 ? static_cast<std::uint64_t>(buf_[0]) : 0;
  rec.src = src_;
  rec.born = len_ >= 2 ? static_cast<std::uint64_t>(buf_[1]) : seen_;
  rec.done = seen_;
  rec.words = static_cast<std::size_t>(len_);
  records_.push_back(rec);
  stats().counter("completed").inc();
  const double lat = rec.done >= rec.born
                         ? static_cast<double>(rec.done - rec.born)
                         : 0.0;
  stats().histogram("latency", latency_buckets_, latency_bucket_width_)
      .add(lat);
  stats().accumulator("latency_cycles").add(lat);
}

void TraceSink::advance(std::int64_t resp) {
  switch (phase_) {
    case Phase::ArmAddr:
      phase_ = Phase::ArmStatus;
      issue_write(desc_addr() + 2, 1);
      break;
    case Phase::ArmStatus:
      ++slot_;
      if (slot_ < entries_) {
        phase_ = Phase::ArmAddr;
        issue_write(desc_addr() + 0, static_cast<std::int64_t>(buf_addr()));
      } else {
        slot_ = 0;
        phase_ = Phase::Poll;
        issue_read(desc_addr() + 2);
      }
      break;
    case Phase::Poll:
      if (resp == 2) {
        seen_ = now();
        phase_ = Phase::ReadLen;
        issue_read(desc_addr() + 1);
      } else {
        slot_ = (slot_ + 1) % entries_;
        issue_read(desc_addr() + 2);
      }
      break;
    case Phase::ReadLen:
      len_ = resp < 0 ? 0
                      : std::min(static_cast<std::uint64_t>(resp),
                                 slot_stride_);
      phase_ = Phase::ReadSrc;
      issue_read(desc_addr() + 3);
      break;
    case Phase::ReadSrc:
      src_ = static_cast<std::uint64_t>(resp);
      buf_.clear();
      word_ = 0;
      if (len_ > 0) {
        phase_ = Phase::ReadWord;
        issue_read(buf_addr() + word_);
      } else {
        finish_record();
        phase_ = Phase::Rearm;
        issue_write(desc_addr() + 2, 1);
      }
      break;
    case Phase::ReadWord:
      buf_.push_back(resp);
      ++word_;
      if (word_ < len_) {
        issue_read(buf_addr() + word_);
      } else {
        finish_record();
        phase_ = Phase::Rearm;
        issue_write(desc_addr() + 2, 1);
      }
      break;
    case Phase::Rearm:
      slot_ = (slot_ + 1) % entries_;
      phase_ = Phase::Poll;
      issue_read(desc_addr() + 2);
      break;
  }
}

void TraceSink::end_of_cycle() {
  if (op_ && !op_->sent && host_req_.transferred()) op_->sent = true;
  if (host_resp_.transferred()) {
    const auto resp = host_resp_.data().as<MemResp>();
    op_.reset();
    advance(resp->data);
  }
}

void TraceSink::declare_deps(Deps& deps) const {
  deps.state_only(host_req_);
}

std::string TraceSink::render_records() const {
  std::ostringstream os;
  os << "# sink node " << node_ << '\n';
  for (const Record& rec : records_) {
    os << "rec " << rec.id << " src=" << rec.src << " born=" << rec.born
       << " done=" << rec.done << " words=" << rec.words << '\n';
  }
  return os.str();
}

void TraceSink::save_state(liberty::core::StateWriter& w) const {
  w.put_u64(static_cast<std::uint64_t>(phase_));
  w.put_u64(slot_);
  w.put_size(word_);
  w.put_u64(len_);
  w.put_u64(src_);
  w.put_u64(seen_);
  w.put_size(buf_.size());
  for (const std::int64_t v : buf_) w.put_i64(v);
  w.put_bool(op_.has_value());
  if (op_) {
    w.put(op_->req);
    w.put_bool(op_->sent);
  }
  w.put_size(records_.size());
  for (const Record& rec : records_) {
    w.put_u64(rec.id);
    w.put_u64(rec.src);
    w.put_u64(rec.born);
    w.put_u64(rec.done);
    w.put_size(rec.words);
  }
  w.put_u64(next_tag_);
}

void TraceSink::load_state(liberty::core::StateReader& r) {
  phase_ = static_cast<Phase>(r.get_u64());
  slot_ = r.get_u64();
  word_ = r.get_size();
  len_ = r.get_u64();
  src_ = r.get_u64();
  seen_ = r.get_u64();
  buf_.clear();
  const std::size_t words = r.get_size();
  for (std::size_t i = 0; i < words; ++i) buf_.push_back(r.get_i64());
  op_.reset();
  if (r.get_bool()) {
    Flight f;
    f.req = r.get();
    f.sent = r.get_bool();
    op_ = std::move(f);
  }
  records_.clear();
  const std::size_t recs = r.get_size();
  for (std::size_t i = 0; i < recs; ++i) {
    Record rec;
    rec.id = r.get_u64();
    rec.src = r.get_u64();
    rec.born = r.get_u64();
    rec.done = r.get_u64();
    rec.words = r.get_size();
    records_.push_back(rec);
  }
  next_tag_ = r.get_u64();
}

}  // namespace liberty::scenario
