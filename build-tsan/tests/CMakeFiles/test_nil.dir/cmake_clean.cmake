file(REMOVE_RECURSE
  "CMakeFiles/test_nil.dir/test_nil.cpp.o"
  "CMakeFiles/test_nil.dir/test_nil.cpp.o.d"
  "test_nil"
  "test_nil.pdb"
  "test_nil[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
