// Workload library: LRISC assembly kernels used by tests, examples, and
// benchmarks (the synthetic stand-ins for the paper-era benchmark suites —
// see DESIGN.md, "Substitutions").
//
// Every workload ends by OUT-ing a checksum and HALTing, so correctness is
// checked the same way on the emulator and on every timing model.
#pragma once

#include <string>

namespace liberty::upl::workloads {

/// Sum of 1..n (loop, branch-heavy, no memory).  OUTs the sum.
[[nodiscard]] std::string sum_loop(int n);

/// Iterative Fibonacci; OUTs fib(n).
[[nodiscard]] std::string fibonacci(int n);

/// Store then sum an array of `n` elements (streaming memory).
/// OUTs the sum of 0..n-1.
[[nodiscard]] std::string array_sum(int n);

/// Pointer chase: build a linked ring of `n` nodes with stride `stride`
/// (cache-hostile when stride exceeds the line size), walk it `steps`
/// times.  OUTs the final node address.
[[nodiscard]] std::string pointer_chase(int n, int stride, int steps);

/// Dense matrix multiply C = A x B for size x size matrices (initialized
/// in-program).  OUTs C[0][0] and C[size-1][size-1].
[[nodiscard]] std::string matmul(int size);

/// Sieve of Eratosthenes up to n; OUTs the prime count (data-dependent
/// branches: a predictor stress test).
[[nodiscard]] std::string sieve(int n);

/// Producer loop writing `n` words to a shared buffer at `base`, then a
/// flag word — one half of the MPL shared-memory handshake tests.
[[nodiscard]] std::string producer(int n, int base);

/// Consumer loop spinning on the flag, then summing the buffer.  OUTs the
/// sum.
[[nodiscard]] std::string consumer(int n, int base);

}  // namespace liberty::upl::workloads
