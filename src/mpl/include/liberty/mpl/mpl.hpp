// Multiprocessor Component Library (MPL) — umbrella header.
//
// "The MPL includes the modular components required for implementing a
// structural specification of a multiprocessor" (§3.4): coherence engines
// (snooping + directory), DMA controllers, and memory ordering controllers.
#pragma once

#include "liberty/core/registry.hpp"
#include "liberty/mpl/directory.hpp"
#include "liberty/mpl/dma.hpp"
#include "liberty/mpl/messages.hpp"
#include "liberty/mpl/ordering.hpp"
#include "liberty/mpl/snoop.hpp"

namespace liberty::mpl {

/// Register every MPL template ("mpl.*") with `registry`.
void register_mpl(liberty::core::ModuleRegistry& registry);

}  // namespace liberty::mpl
