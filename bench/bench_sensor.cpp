// E3 (paper Figure 2(b)): sensor network over the CSMA wireless fabric.
//
// Statistical sensor sources contend for the shared medium; we sweep node
// count and channel loss.  Shape expectation: delivery ratio degrades with
// contention (collisions grow superlinearly in offered load) and with
// channel loss; latency rises as the medium saturates.
#include "bench_util.hpp"

using namespace liberty;
using namespace liberty::bench;

namespace {

struct AirResult {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t collisions = 0;
  double latency = 0.0;
};

AirResult run_field(std::size_t nodes, double rate, double loss) {
  core::Netlist nl;
  auto& air = nl.make<ccl::WirelessChannel>(
      "air", core::Params().set("airtime", 6).set("loss", loss)
                 .set("seed", 5));
  auto& gw = nl.make<ccl::TrafficSink>("gw", core::Params());
  for (std::size_t i = 0; i < nodes; ++i) {
    auto& g = nl.make<ccl::TrafficGen>(
        "g" + std::to_string(i),
        core::Params().set("id", static_cast<std::int64_t>(i))
            .set("nodes", static_cast<std::int64_t>(nodes + 1))
            .set("pattern", "fixed")
            .set("dst", static_cast<std::int64_t>(nodes))
            .set("rate", rate)
            .set("seed", static_cast<std::int64_t>(i) * 7 + 1));
    nl.connect_at(g.out("out"), 0, air.in("in"), i);
  }
  nl.connect_at(air.out("out"), nodes, gw.in("in"), 0);
  nl.finalize();
  core::Simulator sim(nl, core::SchedulerKind::Static);
  sim.run(20'000);
  AirResult r;
  r.sent = air.stats().counter_value("sent");
  r.delivered = air.stats().counter_value("delivered");
  r.collisions = air.stats().counter_value("collisions");
  r.latency = gw.mean_latency();
  return r;
}

}  // namespace

int main() {
  std::printf("E3: wireless sensor field (Figure 2b), airtime 6 cycles\n\n");
  std::printf("contention sweep (loss = 0):\n\n");
  Table t({"nodes", "rate", "sent", "delivered", "ratio", "collisions",
           "latency"});
  for (const std::size_t n : {2u, 4u, 8u, 16u}) {
    const AirResult r = run_field(n, 0.02, 0.0);
    t.row({fmt(static_cast<std::uint64_t>(n)), "0.02", fmt(r.sent),
           fmt(r.delivered),
           fmt(r.sent == 0 ? 0.0
                           : static_cast<double>(r.delivered) /
                                 static_cast<double>(r.sent),
               2),
           fmt(r.collisions), fmt(r.latency, 1)});
  }
  t.print();

  std::printf("\nloss sweep (8 nodes, rate 0.02):\n\n");
  Table l({"loss", "sent", "delivered", "ratio"});
  for (const double loss : {0.0, 0.1, 0.3, 0.5}) {
    const AirResult r = run_field(8, 0.02, loss);
    l.row({fmt(loss, 2), fmt(r.sent), fmt(r.delivered),
           fmt(r.sent == 0 ? 0.0
                           : static_cast<double>(r.delivered) /
                                 static_cast<double>(r.sent),
               2)});
  }
  l.print();
  std::printf("\nshape check: collisions and delivery loss grow with node "
              "count at fixed per-node rate; extra i.i.d. loss compounds "
              "multiplicatively.\n");
  return 0;
}
