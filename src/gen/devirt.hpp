// Private to liberty_gen: the devirtualization universe.
//
// Maps stock PCL/CCL module classes to bytecode kinds.  classify() matches
// by *exact* typeid — a user subclass of a stock module must keep its
// virtual dispatch (it may override any hook), so it deliberately falls
// through to Kind::Unknown and lowers to the CALL_VIRTUAL opcodes.
#pragma once

#include <typeinfo>

#include "liberty/ccl/router.hpp"
#include "liberty/ccl/traffic.hpp"
#include "liberty/core/module.hpp"
#include "liberty/gen/bytecode.hpp"
#include "liberty/pcl/arbiter.hpp"
#include "liberty/pcl/buffer.hpp"
#include "liberty/pcl/delay.hpp"
#include "liberty/pcl/memory_array.hpp"
#include "liberty/pcl/misc.hpp"
#include "liberty/pcl/queue.hpp"
#include "liberty/pcl/routing.hpp"
#include "liberty/pcl/sink.hpp"
#include "liberty/pcl/source.hpp"

namespace liberty::gen {

// Every devirtualized kind (union of the per-phase lists in bytecode.hpp).
#define LIBERTY_GEN_ALL_KINDS(X)                                          \
  X(Source) X(Sink) X(Queue) X(Delay) X(Arbiter) X(Probe) X(FuncMap)   \
  X(Tee) X(Mux) X(Demux) X(Crossbar) X(Buffer) X(MemoryArray)          \
  X(Router) X(TrafficGen) X(TrafficSink)

// Kind -> concrete class.
#define LIBERTY_GEN_TYPE_Source liberty::pcl::Source
#define LIBERTY_GEN_TYPE_Sink liberty::pcl::Sink
#define LIBERTY_GEN_TYPE_Queue liberty::pcl::Queue
#define LIBERTY_GEN_TYPE_Delay liberty::pcl::Delay
#define LIBERTY_GEN_TYPE_Arbiter liberty::pcl::Arbiter
#define LIBERTY_GEN_TYPE_Probe liberty::pcl::Probe
#define LIBERTY_GEN_TYPE_FuncMap liberty::pcl::FuncMap
#define LIBERTY_GEN_TYPE_Tee liberty::pcl::Tee
#define LIBERTY_GEN_TYPE_Mux liberty::pcl::Mux
#define LIBERTY_GEN_TYPE_Demux liberty::pcl::Demux
#define LIBERTY_GEN_TYPE_Crossbar liberty::pcl::Crossbar
#define LIBERTY_GEN_TYPE_Buffer liberty::pcl::Buffer
#define LIBERTY_GEN_TYPE_MemoryArray liberty::pcl::MemoryArray
#define LIBERTY_GEN_TYPE_Router liberty::ccl::Router
#define LIBERTY_GEN_TYPE_TrafficGen liberty::ccl::TrafficGen
#define LIBERTY_GEN_TYPE_TrafficSink liberty::ccl::TrafficSink
#define LIBERTY_GEN_TYPE(K) LIBERTY_GEN_TYPE_##K

enum class Kind : std::uint8_t {
#define LIBERTY_GEN_KIND(K) K,
  LIBERTY_GEN_ALL_KINDS(LIBERTY_GEN_KIND)
#undef LIBERTY_GEN_KIND
  Unknown,
};

[[nodiscard]] inline Kind classify(const liberty::core::Module& m) {
  const std::type_info& t = typeid(m);
#define LIBERTY_GEN_MATCH(K) \
  if (t == typeid(LIBERTY_GEN_TYPE(K))) return Kind::K;
  LIBERTY_GEN_ALL_KINDS(LIBERTY_GEN_MATCH)
#undef LIBERTY_GEN_MATCH
  return Kind::Unknown;
}

// Per-phase opcode of a kind; false when the kind does not override the
// phase's hook (the base hook is an empty no-op -> no instruction at all).
[[nodiscard]] inline bool start_op(Kind k, Op& op) noexcept {
  switch (k) {
#define LIBERTY_GEN_MAP(K) \
  case Kind::K:            \
    op = Op::Start##K;     \
    return true;
    LIBERTY_GEN_START_KINDS(LIBERTY_GEN_MAP)
#undef LIBERTY_GEN_MAP
    default:
      return false;
  }
}

[[nodiscard]] inline bool fwd_op(Kind k, Op& op) noexcept {
  switch (k) {
#define LIBERTY_GEN_MAP(K) \
  case Kind::K:            \
    op = Op::Fwd##K;       \
    return true;
    LIBERTY_GEN_REACT_KINDS(LIBERTY_GEN_MAP)
#undef LIBERTY_GEN_MAP
    default:
      return false;
  }
}

[[nodiscard]] inline bool bwd_op(Kind k, Op& op) noexcept {
  switch (k) {
#define LIBERTY_GEN_MAP(K) \
  case Kind::K:            \
    op = Op::Bwd##K;       \
    return true;
    LIBERTY_GEN_REACT_KINDS(LIBERTY_GEN_MAP)
#undef LIBERTY_GEN_MAP
    default:
      return false;
  }
}

[[nodiscard]] inline bool end_op(Kind k, Op& op) noexcept {
  switch (k) {
#define LIBERTY_GEN_MAP(K) \
  case Kind::K:            \
    op = Op::End##K;       \
    return true;
    LIBERTY_GEN_COMMIT_KINDS(LIBERTY_GEN_MAP)
#undef LIBERTY_GEN_MAP
    default:
      return false;
  }
}

}  // namespace liberty::gen
