// Small PCL primitives: Probe (pass-through instrumentation), FuncMap
// (combinational transform), Fork helper constants.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "liberty/core/module.hpp"
#include "liberty/core/params.hpp"

namespace liberty::pcl {

/// Transparent wire with instrumentation: forwards its input to its output
/// combinationally, counting items and invoking an optional observer.
/// Dropping a Probe onto any connection is the LSS user's oscilloscope.
class Probe : public liberty::core::Module {
 public:
  using Observer =
      std::function<void(const liberty::Value&, liberty::core::Cycle)>;

  Probe(const std::string& name, const liberty::core::Params& params);

  void react() override;
  void end_of_cycle() override;
  void declare_deps(liberty::core::Deps& deps) const override;
  void declare_opt(liberty::core::OptTraits& traits) const override;
  [[nodiscard]] bool can_sleep() const override;
  void save_state(liberty::core::StateWriter& w) const override;
  void load_state(liberty::core::StateReader& r) override;

  void set_observer(Observer obs) { obs_ = std::move(obs); }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }

 private:
  liberty::core::Port& in_;
  liberty::core::Port& out_;
  Observer obs_;
  std::uint64_t count_ = 0;
  liberty::Counter* items_stat_ = nullptr;  // resolved-once stat handle
};

/// Combinational value transform: out = fn(in).  The transform is an
/// algorithmic parameter; the default is identity.
class FuncMap : public liberty::core::Module {
 public:
  using Fn = std::function<liberty::Value(const liberty::Value&)>;

  FuncMap(const std::string& name, const liberty::core::Params& params);

  void react() override;
  void declare_deps(liberty::core::Deps& deps) const override;
  void declare_opt(liberty::core::OptTraits& traits) const override;
  [[nodiscard]] bool can_sleep() const override;

  void set_fn(Fn fn) { fn_ = std::move(fn); }

 private:
  liberty::core::Port& in_;
  liberty::core::Port& out_;
  Fn fn_;
};

}  // namespace liberty::pcl
