// CCL topologies: torus wrap routing, link power accounting, and larger
// fabric sanity under both schedulers.
#include <gtest/gtest.h>

#include "liberty/ccl/ccl.hpp"
#include "liberty/core/simulator.hpp"
#include "test_util.hpp"

namespace {

using liberty::Value;
using liberty::core::Netlist;
using liberty::core::Params;
using liberty::core::SchedulerKind;
using liberty::core::Simulator;
using namespace liberty::ccl;
using liberty::test::params;

class Topology : public ::testing::TestWithParam<SchedulerKind> {};
INSTANTIATE_TEST_SUITE_P(BothSchedulers, Topology,
                         ::testing::Values(SchedulerKind::Dynamic,
                                           SchedulerKind::Static),
                         [](const auto& info) {
                           return info.param == SchedulerKind::Dynamic
                                      ? "Dynamic"
                                      : "Static";
                         });

TEST_P(Topology, TorusWrapLinksShortenCornerToCorner) {
  // On a 4x4 MESH, 0 -> 15 takes 7 router hops (3 + 3 + source).  On a
  // 4x4 TORUS the wrap links cut each dimension to distance 1: 3 hops.
  auto run = [&](bool torus) {
    Netlist nl;
    Fabric f = torus ? build_torus(nl, "t", 4, 4)
                     : build_mesh(nl, "m", 4, 4);
    auto& gen = nl.make<TrafficGen>(
        "gen", params({{"pattern", "fixed"}, {"dst", 15}, {"rate", 0.2},
                       {"count", 20}, {"id", 0}, {"nodes", 16}}));
    auto& sink = nl.make<TrafficSink>("sink", Params());
    nl.connect_at(gen.out("out"), 0, f.inject_port(0), 0);
    nl.connect_at(f.eject_port(15), 0, sink.in("in"), 0);
    nl.finalize();
    Simulator sim(nl, GetParam());
    sim.run(1200);
    EXPECT_EQ(sink.received(), 20u);
    return sink.mean_hops();
  };
  EXPECT_DOUBLE_EQ(run(false), 7.0);
  EXPECT_DOUBLE_EQ(run(true), 3.0);
}

TEST_P(Topology, TorusDeliversUniformTraffic) {
  Netlist nl;
  Fabric torus = build_torus(nl, "t", 3, 3);
  std::uint64_t injected = 0;
  std::vector<TrafficSink*> sinks;
  std::vector<TrafficGen*> gens;
  for (std::size_t i = 0; i < 9; ++i) {
    auto& g = nl.make<TrafficGen>(
        "g" + std::to_string(i),
        params({{"pattern", "uniform"}, {"rate", 0.1}, {"count", 25},
                {"id", static_cast<int>(i)}, {"nodes", 9}, {"seed", 4}}));
    auto& s = nl.make<TrafficSink>("s" + std::to_string(i), Params());
    gens.push_back(&g);
    sinks.push_back(&s);
    nl.connect_at(g.out("out"), 0, torus.inject_port(i), 0);
    nl.connect_at(torus.eject_port(i), 0, s.in("in"), 0);
  }
  nl.finalize();
  Simulator sim(nl, GetParam());
  sim.run(4000);
  std::uint64_t received = 0;
  for (auto* g : gens) injected += g->injected();
  for (auto* s : sinks) received += s->received();
  EXPECT_EQ(received, injected);
  EXPECT_EQ(received, 9u * 25u);
}

TEST(TopologyPower, LinkEnergyCountsTraversals) {
  Netlist nl;
  auto& src = nl.make<TrafficGen>(
      "src", params({{"pattern", "fixed"}, {"dst", 1}, {"rate", 1.0},
                     {"count", 10}, {"id", 0}, {"nodes", 2}}));
  auto& link = nl.make<Link>("link", params({{"latency", 2},
                                             {"link_mm", 3.0}}));
  auto& sink = nl.make<TrafficSink>("sink", Params());
  nl.connect(src.out("out"), link.in("in"));
  nl.connect(link.out("out"), sink.in("in"));
  nl.finalize();
  Simulator sim(nl);
  sim.run(200);
  EXPECT_EQ(sink.received(), 10u);
  EXPECT_EQ(link.stats().counter_value("traversals"), 10u);
  // 10 traversals x 0.45 pJ/mm x 3 mm.
  EXPECT_NEAR(link.power().total_pj(), 10 * 0.45 * 3.0, 1e-9);
}

TEST(TopologyRouting, CustomRouteFunctionOverridesDefault) {
  // Force everything out of the local port regardless of destination.
  Netlist nl;
  auto& r = nl.make<Router>(
      "r", params({{"id", 0}, {"nodes", 4}, {"routing", "custom"}}));
  r.set_route_fn([](const Flit&) { return std::size_t{0}; });
  auto& gen = nl.make<TrafficGen>(
      "g", params({{"pattern", "fixed"}, {"dst", 3}, {"rate", 1.0},
                   {"count", 5}, {"id", 0}, {"nodes", 4}}));
  auto& sink = nl.make<TrafficSink>("s", Params());
  nl.connect_at(gen.out("out"), 0, r.in("in"), 0);
  nl.connect_at(r.out("out"), 0, sink.in("in"), 0);
  nl.finalize();
  Simulator sim(nl);
  sim.run(100);
  EXPECT_EQ(sink.received(), 5u);  // dst 3 ejected locally anyway
}

}  // namespace
