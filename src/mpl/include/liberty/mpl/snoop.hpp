// Bus-based snooping MSI coherence (§3.4: "bus-based snooping for small
// scale multiprocessors").
//
// SnoopCache instances and one SnoopMemory hang off a broadcast ccl::Bus;
// every transaction is observed by everyone, which is both the protocol's
// correctness mechanism and its scaling limit (bench_coherence measures the
// crossover against the directory protocol).
//
// The protocol uses **atomic transactions**, like the classic MSI buses it
// models: at most one GetS/GetX is open on the bus at any time.  Each agent
// tracks the open transaction from the broadcast stream itself — a GetS or
// GetX opens it, the requester's explicit Done closes it — and holds its
// own requests while a foreign transaction is open (data traffic flows
// freely).  This serializes conflicting requests completely, which is what
// makes the protocol simple; its cost in bandwidth is exactly the scaling
// wall the directory protocol removes.
//
// Protocol notes:
//  * MSI states live in CacheModel::Line::meta (1 = S, 2 = M).
//  * An M owner supplies data on a remote GetS (downgrading to S) or GetX
//    (invalidating); memory reflects every Data/WbData broadcast, so lines
//    in S are always clean in memory.
//  * SnoopMemory tracks line ownership from the serialized GetX/WbData
//    stream and stays silent whenever a cache owns the line, so exactly
//    one supplier answers each request.
//  * A write hit on S issues an upgrade GetX; it completes when the cache
//    observes its own GetX with the S copy still present.  If a racing
//    writer invalidated the copy first, the same GetX simply acts as a
//    plain miss and the cache waits for Data.
//  * Eviction race: a cache whose M line is in its outgoing WbData queue
//    still answers requests for it from that queue.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "liberty/core/module.hpp"
#include "liberty/core/params.hpp"
#include "liberty/mpl/messages.hpp"
#include "liberty/upl/cache.hpp"

namespace liberty::mpl {

/// Coherent L1 for the snooping bus.
///
/// Ports: cpu_req/cpu_resp (pcl::MemReq protocol), bus_out (to the bus),
/// bus_in (from the bus, sees every transaction including its own).
///
/// Parameters: id (cache id, must be unique), sets, ways, line_words,
/// hit_latency.
///
/// Stats: hits, misses, upgrades, supplies, supplies_from_wb,
/// invalidations_rx, writebacks.
class SnoopCache : public liberty::core::Module {
 public:
  SnoopCache(const std::string& name, const liberty::core::Params& params);

  void cycle_start(liberty::core::Cycle c) override;
  void end_of_cycle() override;
  void declare_deps(liberty::core::Deps& deps) const override;

  [[nodiscard]] std::size_t cache_id() const noexcept { return id_num_; }

  /// Human-readable protocol state for one line (debugging aid).
  [[nodiscard]] std::string debug_state(std::uint64_t addr) const;

 private:
  static constexpr std::int64_t kShared = 1;
  static constexpr std::int64_t kModified = 2;

  struct Outstanding {
    liberty::Value cpu_req;  // the stalled MemReq
    std::uint64_t line = 0;
    bool upgrade = false;    // GetX while holding S
    std::uint64_t tag = 0;   // echoed by the Data reply
  };

  void handle_cpu(const liberty::Value& v);
  void snoop(const CohMsg& msg);
  void supply_from_writeback(const CohMsg& msg, bool exclusive);
  void install_and_complete(const CohMsg& data);
  void complete_locally(const liberty::Value& req_value);
  void send(CohMsg::Type type, std::uint64_t line, std::size_t dst,
            std::vector<std::int64_t> words = {}, bool exclusive = false,
            std::uint64_t tag = 0);
  /// May this queued message go on the bus now?  Requests are gated while
  /// a foreign transaction is open; everything else flows.
  [[nodiscard]] bool sendable(const CohMsg& msg) const;

  liberty::core::Port& cpu_req_;
  liberty::core::Port& cpu_resp_;
  liberty::core::Port& bus_out_;
  liberty::core::Port& bus_in_;

  std::size_t id_num_;
  upl::CacheModel model_;
  std::uint64_t hit_latency_;
  std::unordered_map<std::uint64_t, std::vector<std::int64_t>> data_;
  std::uint64_t next_tag_ = 1;

  // Global transaction view, reconstructed from the broadcast stream.
  bool txn_open_ = false;
  std::size_t txn_src_ = 0;

  std::optional<Outstanding> miss_;
  std::deque<liberty::Value> outq_;
  std::optional<std::size_t> sending_;  // index in outq_ offered this cycle
  std::deque<liberty::Value> respq_;
  std::deque<liberty::core::Cycle> resp_ready_;
};

/// The memory controller on the snooping bus.
///
/// Parameters: line_words, latency.
/// Stats: responses, suppressed (owner answered instead), reflections.
class SnoopMemory : public liberty::core::Module {
 public:
  SnoopMemory(const std::string& name, const liberty::core::Params& params);

  void cycle_start(liberty::core::Cycle c) override;
  void end_of_cycle() override;
  void declare_deps(liberty::core::Deps& deps) const override;

  void poke(std::uint64_t addr, std::int64_t v) { store_[addr] = v; }
  [[nodiscard]] std::int64_t peek(std::uint64_t addr) const {
    const auto it = store_.find(addr);
    return it == store_.end() ? 0 : it->second;
  }

  /// Which cache id memory believes owns `line` (-1 = none).  Debug aid.
  [[nodiscard]] std::int64_t debug_owner(std::uint64_t line) const {
    const auto it = owner_.find(line);
    return it == owner_.end() ? -1 : static_cast<std::int64_t>(it->second);
  }

 private:
  struct PendingResp {
    liberty::Value msg;
    liberty::core::Cycle ready;
  };

  liberty::core::Port& bus_in_;
  liberty::core::Port& bus_out_;
  std::size_t line_words_;
  std::uint64_t latency_;
  std::unordered_map<std::uint64_t, std::int64_t> store_;
  std::unordered_map<std::uint64_t, std::size_t> owner_;  // line -> cache id
  std::deque<PendingResp> pending_;
};

}  // namespace liberty::mpl
