file(REMOVE_RECURSE
  "CMakeFiles/bench_construction.dir/bench_construction.cpp.o"
  "CMakeFiles/bench_construction.dir/bench_construction.cpp.o.d"
  "bench_construction"
  "bench_construction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_construction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
