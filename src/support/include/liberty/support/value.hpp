// The domain-neutral data value that travels across Liberty connections.
//
// The paper's component contract requires that "components developed for one
// domain can be combined with components developed independently for
// another".  The kernel therefore cannot bake in any domain type (flit,
// instruction, cache message, ...).  Value is a small variant covering the
// scalar types the primitive library needs, plus a shared pointer to an
// immutable, polymorphic Payload for everything else.  Component libraries
// define their own Payload subclasses (ccl::Flit, upl::InstrToken, ...) and
// transport them opaquely through domain-independent primitives such as
// queues, arbiters, and crossbars.
#pragma once

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

#include "liberty/support/error.hpp"

namespace liberty {

/// Base class for structured data carried by a Value.  Payloads are
/// immutable once published onto a connection; modules share them by
/// shared_ptr<const Payload>, so copying a Value never copies domain data.
class Payload {
 public:
  virtual ~Payload() = default;

  /// Human-readable rendering used by tracing and the visualizer export.
  [[nodiscard]] virtual std::string describe() const { return "<payload>"; }
};

/// A dynamically typed value.  Monostate means "present but carries no
/// information" (a pure token); it is distinct from the *absence* of data,
/// which the kernel models at the signal level.
class Value {
 public:
  using Variant = std::variant<std::monostate, bool, std::int64_t, double,
                               std::string, std::shared_ptr<const Payload>>;

  Value() = default;
  Value(bool b) : v_(b) {}                          // NOLINT(google-explicit-constructor)
  Value(std::int64_t i) : v_(i) {}                  // NOLINT
  Value(int i) : v_(static_cast<std::int64_t>(i)) {}        // NOLINT
  Value(unsigned i) : v_(static_cast<std::int64_t>(i)) {}   // NOLINT
  Value(std::uint64_t i) : v_(static_cast<std::int64_t>(i)) {}  // NOLINT
  Value(double d) : v_(d) {}                        // NOLINT
  Value(std::string s) : v_(std::move(s)) {}        // NOLINT
  Value(const char* s) : v_(std::string(s)) {}      // NOLINT
  Value(std::shared_ptr<const Payload> p) : v_(std::move(p)) {}  // NOLINT

  /// Construct a Value holding a freshly built payload of type T.
  template <typename T, typename... Args>
  [[nodiscard]] static Value make(Args&&... args) {
    return Value(std::static_pointer_cast<const Payload>(
        std::make_shared<const T>(std::forward<Args>(args)...)));
  }

  [[nodiscard]] bool is_token() const noexcept {
    return std::holds_alternative<std::monostate>(v_);
  }
  [[nodiscard]] bool is_bool() const noexcept {
    return std::holds_alternative<bool>(v_);
  }
  [[nodiscard]] bool is_int() const noexcept {
    return std::holds_alternative<std::int64_t>(v_);
  }
  [[nodiscard]] bool is_real() const noexcept {
    return std::holds_alternative<double>(v_);
  }
  [[nodiscard]] bool is_string() const noexcept {
    return std::holds_alternative<std::string>(v_);
  }
  [[nodiscard]] bool is_payload() const noexcept {
    return std::holds_alternative<std::shared_ptr<const Payload>>(v_);
  }

  [[nodiscard]] bool as_bool() const {
    if (const auto* b = std::get_if<bool>(&v_)) return *b;
    if (const auto* i = std::get_if<std::int64_t>(&v_)) return *i != 0;
    throw SimulationError("Value is not a bool: " + to_string());
  }
  [[nodiscard]] std::int64_t as_int() const {
    if (const auto* i = std::get_if<std::int64_t>(&v_)) return *i;
    if (const auto* b = std::get_if<bool>(&v_)) return *b ? 1 : 0;
    throw SimulationError("Value is not an int: " + to_string());
  }
  [[nodiscard]] double as_real() const {
    if (const auto* d = std::get_if<double>(&v_)) return *d;
    if (const auto* i = std::get_if<std::int64_t>(&v_)) {
      return static_cast<double>(*i);
    }
    throw SimulationError("Value is not a real: " + to_string());
  }
  [[nodiscard]] const std::string& as_string() const {
    if (const auto* s = std::get_if<std::string>(&v_)) return *s;
    throw SimulationError("Value is not a string: " + to_string());
  }

  /// Downcast the payload to T.  Throws SimulationError when the value does
  /// not carry a T — a component wiring bug the user must see immediately.
  template <typename T>
  [[nodiscard]] std::shared_ptr<const T> as() const {
    const auto* p = std::get_if<std::shared_ptr<const Payload>>(&v_);
    if (p != nullptr) {
      auto cast = std::dynamic_pointer_cast<const T>(*p);
      if (cast) return cast;
    }
    throw SimulationError("Value payload type mismatch: " + to_string());
  }

  /// Like as<T>() but returns nullptr instead of throwing.
  template <typename T>
  [[nodiscard]] std::shared_ptr<const T> try_as() const noexcept {
    const auto* p = std::get_if<std::shared_ptr<const Payload>>(&v_);
    if (p == nullptr) return nullptr;
    return std::dynamic_pointer_cast<const T>(*p);
  }

  [[nodiscard]] const Variant& raw() const noexcept { return v_; }

  /// Structural equality.  Payloads compare by pointer identity: the kernel
  /// uses equality only to tolerate idempotent re-drives of a signal, and a
  /// module re-driving the same payload object is exactly that case.
  [[nodiscard]] bool operator==(const Value& o) const noexcept {
    return v_ == o.v_;
  }

  [[nodiscard]] std::string to_string() const;

 private:
  Variant v_;
};

std::ostream& operator<<(std::ostream& os, const Value& v);

}  // namespace liberty
