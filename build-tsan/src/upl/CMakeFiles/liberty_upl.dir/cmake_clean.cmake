file(REMOVE_RECURSE
  "CMakeFiles/liberty_upl.dir/cache.cpp.o"
  "CMakeFiles/liberty_upl.dir/cache.cpp.o.d"
  "CMakeFiles/liberty_upl.dir/isa.cpp.o"
  "CMakeFiles/liberty_upl.dir/isa.cpp.o.d"
  "CMakeFiles/liberty_upl.dir/memctl.cpp.o"
  "CMakeFiles/liberty_upl.dir/memctl.cpp.o.d"
  "CMakeFiles/liberty_upl.dir/ooo_core.cpp.o"
  "CMakeFiles/liberty_upl.dir/ooo_core.cpp.o.d"
  "CMakeFiles/liberty_upl.dir/pipeline.cpp.o"
  "CMakeFiles/liberty_upl.dir/pipeline.cpp.o.d"
  "CMakeFiles/liberty_upl.dir/predictors.cpp.o"
  "CMakeFiles/liberty_upl.dir/predictors.cpp.o.d"
  "CMakeFiles/liberty_upl.dir/registry.cpp.o"
  "CMakeFiles/liberty_upl.dir/registry.cpp.o.d"
  "CMakeFiles/liberty_upl.dir/simple_cpu.cpp.o"
  "CMakeFiles/liberty_upl.dir/simple_cpu.cpp.o.d"
  "CMakeFiles/liberty_upl.dir/workloads.cpp.o"
  "CMakeFiles/liberty_upl.dir/workloads.cpp.o.d"
  "libliberty_upl.a"
  "libliberty_upl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/liberty_upl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
