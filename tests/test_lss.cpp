// LSS language: lexing, parsing, elaboration, hierarchy, generative
// constructs, and error reporting.
#include <gtest/gtest.h>

#include "liberty/core/lss/elaborator.hpp"
#include "liberty/core/lss/lexer.hpp"
#include "liberty/core/lss/parser.hpp"
#include "liberty/core/simulator.hpp"
#include "liberty/pcl/pcl.hpp"
#include "liberty/support/error.hpp"
#include "test_util.hpp"

namespace {

using liberty::SpecError;
using liberty::Value;
using liberty::core::Netlist;
using liberty::core::SchedulerKind;
using liberty::core::Simulator;
using liberty::core::lss::build_from_lss;
using liberty::core::lss::parse;
using liberty::core::lss::Tok;
using liberty::core::lss::tokenize;
using liberty::test::registry;

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

TEST(LssLexer, TokenizesRangesWithoutEatingDots) {
  const auto toks = tokenize("for i in 0 .. 4", "t");
  ASSERT_EQ(toks.size(), 7u);  // for i in 0 .. 4 <end>
  EXPECT_EQ(toks[3].kind, Tok::Int);
  EXPECT_EQ(toks[4].kind, Tok::DotDot);
  EXPECT_EQ(toks[5].int_val, 4);
}

TEST(LssLexer, AdjacentRangeWithoutSpaces) {
  const auto toks = tokenize("0..4", "t");
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[0].kind, Tok::Int);
  EXPECT_EQ(toks[1].kind, Tok::DotDot);
  EXPECT_EQ(toks[2].kind, Tok::Int);
}

TEST(LssLexer, RealsAndInts) {
  const auto toks = tokenize("1.5 2 3e2", "t");
  EXPECT_EQ(toks[0].kind, Tok::Real);
  EXPECT_DOUBLE_EQ(toks[0].real_val, 1.5);
  EXPECT_EQ(toks[1].kind, Tok::Int);
  EXPECT_EQ(toks[2].kind, Tok::Real);
  EXPECT_DOUBLE_EQ(toks[2].real_val, 300.0);
}

TEST(LssLexer, CommentsAndStrings) {
  const auto toks = tokenize(
      "// line comment\n/* block */ \"hi\\n\" ident", "t");
  EXPECT_EQ(toks[0].kind, Tok::String);
  EXPECT_EQ(toks[0].text, "hi\n");
  EXPECT_EQ(toks[1].kind, Tok::Ident);
}

TEST(LssLexer, ErrorsCarryLocation) {
  try {
    tokenize("a\n  @", "file.lss");
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_EQ(e.line(), 2);
    EXPECT_EQ(e.column(), 3);
  }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

TEST(LssParser, RejectsSyntaxErrorsWithLocation) {
  EXPECT_THROW(parse("instance x pcl.queue;", "t"), SpecError);
  EXPECT_THROW(parse("connect a -> b.in;", "t"), SpecError);
  EXPECT_THROW(parse("for i in 0 4 { }", "t"), SpecError);
  EXPECT_THROW(parse("module m { module n { } }", "t"), SpecError);
  EXPECT_THROW(parse("inport x;", "t"), SpecError);
}

TEST(LssParser, ParsesRepresentativeSpec) {
  const char* spec = R"(
    param N = 4;
    module stage {
      param depth = 2;
      inport in; outport out;
      instance q : pcl.queue { depth = depth; };
      export q.in as in;
      export q.out as out;
    }
    instance src : pcl.source { kind = "counter"; count = 10 * N; };
    for i in 0 .. N { instance st[i] : stage { depth = i + 1 }; }
  )";
  // Note: missing ';' after `depth = i + 1` must fail.
  EXPECT_THROW(parse(spec, "t"), SpecError);
}

// ---------------------------------------------------------------------------
// Elaboration: flat specs
// ---------------------------------------------------------------------------

TEST(LssElab, FlatPipelineRuns) {
  const char* spec = R"(
    instance src : pcl.source { kind = "counter"; count = 30; period = 1; };
    instance q : pcl.queue { depth = 4; };
    instance sink : pcl.sink { stop_after = 30; };
    connect src.out -> q.in;
    connect q.out -> sink.in;
  )";
  Netlist nl;
  build_from_lss(spec, "pipeline.lss", nl, registry());
  Simulator sim(nl);
  sim.run(1000);
  std::ostringstream stats;
  nl.dump_stats(stats);
  EXPECT_NE(stats.str().find("sink.consumed = 30"), std::string::npos);
}

TEST(LssElab, ParamOverridesApply) {
  const char* spec = R"(
    param COUNT = 5;
    instance src : pcl.source { kind = "counter"; count = COUNT; period = 1; };
    instance sink : pcl.sink;
    connect src.out -> sink.in;
  )";
  Netlist nl;
  build_from_lss(spec, "t.lss", nl, registry(),
                 {{"COUNT", Value(std::int64_t{12})}});
  Simulator sim(nl);
  sim.run(50);
  auto* sink = dynamic_cast<liberty::pcl::Sink*>(nl.find("sink"));
  ASSERT_NE(sink, nullptr);
  EXPECT_EQ(sink->consumed(), 12u);
}

TEST(LssElab, ForLoopsAndIndexedInstances) {
  const char* spec = R"(
    param N = 3;
    instance arb : pcl.arbiter;
    instance sink : pcl.sink;
    for i in 0 .. N {
      instance src[i] : pcl.source {
        kind = "counter"; period = 1; count = 10;
      };
      connect src[i].out -> arb.in;
    }
    connect arb.out -> sink.in;
  )";
  Netlist nl;
  build_from_lss(spec, "t.lss", nl, registry());
  EXPECT_NE(nl.find("src[0]"), nullptr);
  EXPECT_NE(nl.find("src[2]"), nullptr);
  EXPECT_EQ(nl.find("src[3]"), nullptr);
  Simulator sim(nl);
  sim.run(100);
  auto* sink = dynamic_cast<liberty::pcl::Sink*>(nl.find("sink"));
  EXPECT_EQ(sink->consumed(), 30u);
}

TEST(LssElab, ConditionalInstantiation) {
  const char* spec = R"(
    param FAST = false;
    instance src : pcl.source { kind = "token"; period = 1; count = 8; };
    instance sink : pcl.sink;
    if FAST {
      connect src.out -> sink.in;
    } else {
      instance d : pcl.delay { latency = 5; };
      connect src.out -> d.in;
      connect d.out -> sink.in;
    }
  )";
  Netlist nl;
  build_from_lss(spec, "t.lss", nl, registry());
  EXPECT_NE(nl.find("d"), nullptr);

  Netlist nl2;
  build_from_lss(spec, "t.lss", nl2, registry(), {{"FAST", Value(true)}});
  EXPECT_EQ(nl2.find("d"), nullptr);
}

// ---------------------------------------------------------------------------
// Elaboration: hierarchy
// ---------------------------------------------------------------------------

TEST(LssElab, HierarchicalModulesInlineAndExportPorts) {
  const char* spec = R"(
    module buffered_stage {
      param depth = 2;
      inport in;
      outport out;
      instance q1 : pcl.queue { depth = depth; };
      instance q2 : pcl.queue { depth = depth; };
      connect q1.out -> q2.in;
      export q1.in as in;
      export q2.out as out;
    }
    instance src : pcl.source { kind = "counter"; count = 20; period = 1; };
    instance st : buffered_stage { depth = 3; };
    instance sink : pcl.sink;
    connect src.out -> st.in;
    connect st.out -> sink.in;
  )";
  Netlist nl;
  build_from_lss(spec, "t.lss", nl, registry());
  // Hierarchy inlines to dotted instance names.
  EXPECT_NE(nl.find("st.q1"), nullptr);
  EXPECT_NE(nl.find("st.q2"), nullptr);
  Simulator sim(nl, SchedulerKind::Static);
  sim.run(100);
  auto* sink = dynamic_cast<liberty::pcl::Sink*>(nl.find("sink"));
  EXPECT_EQ(sink->consumed(), 20u);
}

TEST(LssElab, NestedHierarchyTwoLevels) {
  const char* spec = R"(
    module inner {
      inport in; outport out;
      instance q : pcl.queue { depth = 1; };
      export q.in as in;
      export q.out as out;
    }
    module outer {
      inport in; outport out;
      instance a : inner;
      instance b : inner;
      connect a.out -> b.in;
      export a.in as in;
      export b.out as out;
    }
    instance src : pcl.source { kind = "counter"; count = 10; period = 1; };
    instance o : outer;
    instance sink : pcl.sink;
    connect src.out -> o.in;
    connect o.out -> sink.in;
  )";
  Netlist nl;
  build_from_lss(spec, "t.lss", nl, registry());
  EXPECT_NE(nl.find("o.a.q"), nullptr);
  EXPECT_NE(nl.find("o.b.q"), nullptr);
  Simulator sim(nl);
  sim.run(100);
  auto* sink = dynamic_cast<liberty::pcl::Sink*>(nl.find("sink"));
  EXPECT_EQ(sink->consumed(), 10u);
}

// ---------------------------------------------------------------------------
// Elaboration errors
// ---------------------------------------------------------------------------

TEST(LssElabErrors, UnknownTemplate) {
  Netlist nl;
  EXPECT_THROW(
      build_from_lss("instance x : no.such.thing;", "t", nl, registry()),
      SpecError);
}

TEST(LssElabErrors, UnknownParameterName) {
  Netlist nl;
  EXPECT_THROW(build_from_lss("instance q : pcl.queue { depht = 4; };", "t",
                              nl, registry()),
               SpecError);
}

TEST(LssElabErrors, UnknownInstanceInConnect) {
  Netlist nl;
  EXPECT_THROW(build_from_lss(R"(
      instance s : pcl.sink;
      connect ghost.out -> s.in;
    )",
                              "t", nl, registry()),
               SpecError);
}

TEST(LssElabErrors, UndeclaredVariable) {
  Netlist nl;
  EXPECT_THROW(build_from_lss("instance q : pcl.queue { depth = DEPTH; };",
                              "t", nl, registry()),
               SpecError);
}

TEST(LssElabErrors, UnexportedDeclaredPort) {
  Netlist nl;
  EXPECT_THROW(build_from_lss(R"(
      module broken {
        inport in;
        instance q : pcl.queue;
      }
      instance b : broken;
    )",
                              "t", nl, registry()),
               SpecError);
}

TEST(LssElabErrors, RecursiveModuleDepthLimited) {
  Netlist nl;
  EXPECT_THROW(build_from_lss(R"(
      module loop {
        inport in; outport out;
        instance inner : loop;
        export inner.in as in;
        export inner.out as out;
      }
      instance l : loop;
    )",
                              "t", nl, registry()),
               SpecError);
}

TEST(LssElabErrors, DivisionByZero) {
  Netlist nl;
  EXPECT_THROW(build_from_lss("param X = 1 / 0;", "t", nl, registry()),
               SpecError);
}

// ---------------------------------------------------------------------------
// Expression semantics
// ---------------------------------------------------------------------------

TEST(LssExpr, ArithmeticAndStringsInParams) {
  const char* spec = R"(
    param A = 2 + 3 * 4;          // 14
    param B = (2 + 3) * 4;        // 20
    param C = A < B && !(A == B); // true
    param NAME = "q" + 1;         // "q1"
    instance src : pcl.source { kind = "token"; period = 1; count = A; };
    instance sink : pcl.sink { stop_after = C ? A : B; };
    connect src.out -> sink.in;
  )";
  Netlist nl;
  build_from_lss(spec, "t.lss", nl, registry());
  Simulator sim(nl);
  sim.run(100);
  auto* sink = dynamic_cast<liberty::pcl::Sink*>(nl.find("sink"));
  EXPECT_EQ(sink->consumed(), 14u);
}

}  // namespace
