file(REMOVE_RECURSE
  "libliberty_pcl.a"
)
