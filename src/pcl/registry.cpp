#include <typeindex>

#include "liberty/core/checkpoint.hpp"
#include "liberty/pcl/pcl.hpp"

namespace liberty::pcl {

using liberty::core::ByteReader;
using liberty::core::ByteWriter;
using liberty::core::ModuleRegistry;
using liberty::core::simple_factory;

namespace {

// Durable-checkpoint codecs for the PCL payloads (docs/resilience.md).
// Wire names are stable: the golden checkpoint embeds them forever.
void register_payload_codecs() {
  core::register_payload_codec(
      "pcl.memreq", std::type_index(typeid(MemReq)),
      [](const Payload& p, ByteWriter& w) {
        const auto& m = static_cast<const MemReq&>(p);
        w.put_u8(static_cast<std::uint8_t>(m.op));
        w.put_u64(m.addr);
        w.put_i64(m.data);
        w.put_u64(m.tag);
      },
      [](ByteReader& r) {
        const auto op = static_cast<MemReq::Op>(r.get_u8());
        const std::uint64_t addr = r.get_u64();
        const std::int64_t data = r.get_i64();
        const std::uint64_t tag = r.get_u64();
        return Value::make<MemReq>(op, addr, data, tag);
      });
  core::register_payload_codec(
      "pcl.memresp", std::type_index(typeid(MemResp)),
      [](const Payload& p, ByteWriter& w) {
        const auto& m = static_cast<const MemResp&>(p);
        w.put_u64(m.tag);
        w.put_i64(m.data);
        w.put_u8(m.was_write ? 1 : 0);
      },
      [](ByteReader& r) {
        const std::uint64_t tag = r.get_u64();
        const std::int64_t data = r.get_i64();
        const bool was_write = r.get_u8() != 0;
        return Value::make<MemResp>(tag, data, was_write);
      });
  core::register_payload_codec(
      "pcl.stamped", std::type_index(typeid(Stamped)),
      [](const Payload& p, ByteWriter& w) {
        const auto& s = static_cast<const Stamped&>(p);
        core::encode_value(w, s.inner);
        w.put_u64(s.born);
      },
      [](ByteReader& r) {
        Value inner = core::decode_value(r);
        const std::uint64_t born = r.get_u64();
        return Value::make<Stamped>(std::move(inner), born);
      });
}

}  // namespace

void register_pcl(ModuleRegistry& r) {
  register_payload_codecs();
  r.register_template("pcl.source", "configurable value producer",
                      simple_factory<Source>());
  r.register_template("pcl.sink", "value consumer with latency stats",
                      simple_factory<Sink>());
  r.register_template("pcl.queue", "FIFO with handshake flow control",
                      simple_factory<Queue>());
  r.register_template("pcl.delay", "fixed-latency pipeline element",
                      simple_factory<Delay>());
  r.register_template("pcl.arbiter", "N-to-1 arbiter (RR/priority/LRU)",
                      simple_factory<Arbiter>());
  r.register_template("pcl.tee", "synchronous fan-out",
                      simple_factory<Tee>());
  r.register_template("pcl.mux", "control-selected N-to-1 multiplexer",
                      simple_factory<Mux>());
  r.register_template("pcl.demux", "content-routed 1-to-N demultiplexer",
                      simple_factory<Demux>());
  r.register_template("pcl.crossbar", "N x M crossbar with RR arbitration",
                      simple_factory<Crossbar>());
  r.register_template("pcl.buffer",
                      "generalized buffer (window/ROB/router buffer)",
                      simple_factory<Buffer>());
  r.register_template("pcl.memory_array", "request/response storage",
                      simple_factory<MemoryArray>());
  r.register_template("pcl.probe", "pass-through instrumentation",
                      simple_factory<Probe>());
  r.register_template("pcl.funcmap", "combinational value transform",
                      simple_factory<FuncMap>());
}

}  // namespace liberty::pcl
