file(REMOVE_RECURSE
  "CMakeFiles/test_upl_isa.dir/test_upl_isa.cpp.o"
  "CMakeFiles/test_upl_isa.dir/test_upl_isa.cpp.o.d"
  "test_upl_isa"
  "test_upl_isa.pdb"
  "test_upl_isa[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_upl_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
