file(REMOVE_RECURSE
  "CMakeFiles/liberty_nil.dir/ethernet.cpp.o"
  "CMakeFiles/liberty_nil.dir/ethernet.cpp.o.d"
  "CMakeFiles/liberty_nil.dir/fabric_adapter.cpp.o"
  "CMakeFiles/liberty_nil.dir/fabric_adapter.cpp.o.d"
  "CMakeFiles/liberty_nil.dir/nic.cpp.o"
  "CMakeFiles/liberty_nil.dir/nic.cpp.o.d"
  "CMakeFiles/liberty_nil.dir/registry.cpp.o"
  "CMakeFiles/liberty_nil.dir/registry.cpp.o.d"
  "libliberty_nil.a"
  "libliberty_nil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/liberty_nil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
