// Primitive Component Library (PCL) — umbrella header and registration.
//
// "This consists of primitive building blocks that are likely to be used
// across a wide range of applications.  Examples include arbiters and
// memory arrays." (§3.1)
#pragma once

#include "liberty/core/registry.hpp"
#include "liberty/pcl/arbiter.hpp"
#include "liberty/pcl/buffer.hpp"
#include "liberty/pcl/delay.hpp"
#include "liberty/pcl/memory_array.hpp"
#include "liberty/pcl/misc.hpp"
#include "liberty/pcl/payloads.hpp"
#include "liberty/pcl/queue.hpp"
#include "liberty/pcl/routing.hpp"
#include "liberty/pcl/sink.hpp"
#include "liberty/pcl/source.hpp"

namespace liberty::pcl {

/// Register every PCL template ("pcl.*") with `registry`.
void register_pcl(liberty::core::ModuleRegistry& registry);

}  // namespace liberty::pcl
