// Lowering: netlist + schedule graph + optimizer plan -> bytecode tapes.
//
// The emitted program is a specialization of the static scheduler's cycle
// loop for one concrete netlist: every per-cycle decision that depends only
// on elaboration-time facts (module kind, driver identity, plan constants,
// chain membership, gate candidacy, quarantine) is resolved here, once, and
// the interpreter executes the residue.  The resolve tape preserves the
// static scheduler's topological SCC order and its react-then-default
// policy per channel, which is what makes the backend bit-identical to the
// dynamic baseline (the oracle proves static == dynamic; compiled mirrors
// static by construction).
#include <cstdint>
#include <memory>
#include <vector>

#include "devirt.hpp"
#include "liberty/core/netlist.hpp"
#include "liberty/core/simulator.hpp"
#include "liberty/gen/compiled_scheduler.hpp"
#include "liberty/gen/native.hpp"

namespace liberty::gen {

namespace core = liberty::core;

CompiledScheduler::CompiledScheduler(core::Netlist& netlist)
    : AnalyzedScheduler(netlist) {
  lower();
  // Exactly one thread resolves channels under this backend, so the
  // seq_cst publication fences in Connection buy nothing.  The destructor
  // restores the default in case the netlist outlives this scheduler and
  // is re-simulated with a parallel one.
  set_relaxed_resolution(true);
  // Without RunScc ops every remaining opcode decides purely on channel
  // state, so the per-resolution hooks carry no information the end-of-
  // resolve sweep cannot recover; uninstalling them removes a virtual call
  // and a thread-local touch from every send/ack (see fast_resolve_).
  if (fast_resolve_) install_hooks(nullptr);
}

CompiledScheduler::~CompiledScheduler() { set_relaxed_resolution(false); }

void CompiledScheduler::lower() {
  program_ = Program{};  // re-entrant: start_phase re-lowers on gate death
  gated_program_ = gate_.enabled();
  const bool opt = plan_ != nullptr;

  // typeid once per module, here, instead of per hook call, per cycle.
  std::vector<Kind> kinds(module_tape_.size(), Kind::Unknown);
  for (const core::Module* m : module_tape_) {
    kinds[m->id()] = classify(*m);
  }

  // Modules and SCCs the native image executes are simply absent from the
  // tapes (empty masks — the common case — exclude nothing).
  const auto native_mod = [&](core::ModuleId id) {
    return !native_module_.empty() && native_module_[id] != 0;
  };

  // --- start tape: one instruction per module with a live cycle_start ----
  for (core::Module* m : module_tape_) {
    const auto id = static_cast<std::uint32_t>(m->id());
    if (native_mod(m->id())) continue;
    if (module_quarantined(m->id())) continue;
    if (opt && plan_->elided[m->id()] != 0) continue;
    const Kind k = kinds[m->id()];
    Op op = Op::StartVirtual;
    if (k != Kind::Unknown && !start_op(k, op)) continue;  // no-op hook
    if (gate_.module_gateable(m->id())) {
      // May be asleep at cycle start; the check and the deferred-wake
      // protocol need the generic path.
      program_.start.push_back({Op::StartGated, id, 0});
      ++program_.virtual_ops;
    } else if (k == Kind::Unknown) {
      program_.start.push_back({Op::StartVirtual, id, 0});
      ++program_.virtual_ops;
    } else {
      program_.start.push_back({op, id, 0});
      ++program_.devirt_ops;
    }
  }
  program_.start.push_back({Op::Halt, 0, 0});

  // --- resolve tape: topological SCC order, like the static scheduler ----
  const auto& nodes = graph_.nodes();
  const auto& sccs = graph_.sccs();

  auto emit_channel = [&](core::ChannelId ch) {
    const core::ScheduleGraph::Node& n = nodes[ch];
    if (opt && plan_->channel_const[ch] != 0) return;  // pre-resolved
    if (opt) {
      const std::int32_t chain = plan_->chain_of_channel[ch];
      if (chain >= 0) {
        program_.resolve.push_back({Op::Chain,
                                    static_cast<std::uint32_t>(chain),
                                    static_cast<std::uint32_t>(ch)});
        return;
      }
    }
    const auto conn = static_cast<std::uint32_t>(n.conn->id());
    core::Module* const d = n.driver;
    if (n.kind == core::ChannelKind::Forward) {
      if (d == nullptr || module_quarantined(d->id())) {
        program_.resolve.push_back({Op::DefFwd, conn, 0});
        return;
      }
      const Kind k = kinds[d->id()];
      Op op = Op::FwdVirtual;
      const auto mid = static_cast<std::uint32_t>(d->id());
      if (k == Kind::Unknown) {
        program_.resolve.push_back({Op::FwdVirtual, mid, conn});
        ++program_.virtual_ops;
      } else if (fwd_op(k, op)) {
        program_.resolve.push_back({op, mid, conn});
        ++program_.devirt_ops;
      } else {
        // Stock kind without react(): the offer comes from cycle_start or
        // not at all — go straight to the kernel default.
        program_.resolve.push_back({Op::DefFwd, conn, 0});
      }
    } else {
      if (d == nullptr) {
        program_.resolve.push_back({Op::AutoAck, conn, 0});
        return;
      }
      if (module_quarantined(d->id())) {
        program_.resolve.push_back({Op::DefBwd, conn, 0});
        return;
      }
      const Kind k = kinds[d->id()];
      Op op = Op::BwdVirtual;
      const auto mid = static_cast<std::uint32_t>(d->id());
      if (k == Kind::Unknown) {
        program_.resolve.push_back({Op::BwdVirtual, mid, conn});
        ++program_.virtual_ops;
      } else if (bwd_op(k, op)) {
        program_.resolve.push_back({op, mid, conn});
        ++program_.devirt_ops;
      } else {
        program_.resolve.push_back({Op::DefBwd, conn, 0});
      }
    }
  };

  for (std::uint32_t i = 0; i < sccs.size(); ++i) {
    if (!native_scc_.empty() && native_scc_[i] != 0) continue;
    std::size_t guard = program_.resolve.size();
    bool guarded = false;
    if (gate_.is_candidate(i)) {
      guarded = true;
      program_.resolve.push_back({Op::TrySleep, i, 0});
    }
    const std::size_t body = program_.resolve.size();
    if (sccs[i].size() == 1 && !graph_.self_loop(i)) {
      emit_channel(sccs[i][0]);
    } else {
      program_.resolve.push_back({Op::RunScc, i, 0});
    }
    if (guarded) {
      program_.resolve[guard].b =
          static_cast<std::uint32_t>(program_.resolve.size() - body);
    }
  }
  program_.resolve.push_back({Op::Halt, 0, 0});

  fast_resolve_ = true;
  for (const Instr& ins : program_.resolve) {
    if (ins.op == Op::RunScc) {
      fast_resolve_ = false;
      break;
    }
  }

  // --- commit tape: one instruction per module with a live end_of_cycle --
  for (core::Module* m : module_tape_) {
    const auto id = static_cast<std::uint32_t>(m->id());
    if (native_mod(m->id())) continue;
    if (module_quarantined(m->id())) continue;
    if (opt && plan_->elided[m->id()] != 0) continue;
    const Kind k = kinds[m->id()];
    Op op = Op::EndVirtual;
    if (k != Kind::Unknown && !end_op(k, op)) continue;  // no-op hook
    if (gate_.module_gateable(m->id())) {
      // Asleep modules skip commit unless one of their connections
      // transferred this cycle; only gateable modules can be asleep.
      program_.commit.push_back({Op::EndGated, id, 0});
      ++program_.virtual_ops;
    } else if (k == Kind::Unknown) {
      program_.commit.push_back({Op::EndVirtual, id, 0});
      ++program_.virtual_ops;
    } else {
      program_.commit.push_back({op, id, 0});
      ++program_.devirt_ops;
    }
  }
  program_.commit.push_back({Op::Halt, 0, 0});
}

void CompiledScheduler::visit_counters(const CounterVisitor& visit) const {
  AnalyzedScheduler::visit_counters(visit);
  visit("gen.start_ops", program_.start.size() - 1);
  visit("gen.resolve_ops", program_.resolve.size() - 1);
  visit("gen.commit_ops", program_.commit.size() - 1);
  visit("gen.devirtualized_ops", program_.devirt_ops);
  visit("gen.virtual_fallback_ops", program_.virtual_ops);
}

void ensure_registered() {
  core::set_compiled_scheduler_factory(
      [](core::Netlist& netlist) -> std::unique_ptr<core::SchedulerBase> {
        return std::make_unique<CompiledScheduler>(netlist);
      });
  // No-op unless the build carries LIBERTY_NATIVE_CODEGEN; then it
  // installs the native factory the same way (see native.hpp).
  register_native_scheduler();
}

}  // namespace liberty::gen
