// Queue: the canonical buffering primitive (FIFO with handshake flow
// control on both ends).
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "liberty/core/module.hpp"
#include "liberty/core/params.hpp"

namespace liberty::pcl {

/// Single-input, single-output FIFO.
///
/// Parameters:
///   depth    capacity in entries (>= 1)                        [8]
///   bypass_ack   when full, accept a new entry in the same cycle the head
///            drains.  This couples the input ack combinationally to the
///            output ack (declared via declare_deps), demonstrating how a
///            component's timing behaviour is customized through an
///            algorithmic parameter without touching its code.  [false]
///
/// Stats: enqueued, dequeued, occupancy (accumulator), full_stalls.
class Queue : public liberty::core::Module {
 public:
  Queue(const std::string& name, const liberty::core::Params& params);

  void cycle_start(liberty::core::Cycle c) override;
  void react() override;
  void end_of_cycle() override;
  void declare_deps(liberty::core::Deps& deps) const override;
  void save_state(liberty::core::StateWriter& w) const override;
  void load_state(liberty::core::StateReader& r) override;

  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }
  [[nodiscard]] std::size_t depth() const noexcept { return depth_; }
  [[nodiscard]] bool empty() const noexcept { return items_.empty(); }
  [[nodiscard]] bool bypass_ack() const noexcept { return bypass_ack_; }

 private:
  liberty::core::Port& in_;
  liberty::core::Port& out_;
  std::size_t depth_;
  bool bypass_ack_;
  std::deque<liberty::Value> items_;

  // Resolved-once stat handles (see StatSet::bind).
  liberty::Accumulator* occupancy_stat_ = nullptr;
  liberty::Counter* enqueued_stat_ = nullptr;
  liberty::Counter* dequeued_stat_ = nullptr;
  liberty::Counter* full_stalls_stat_ = nullptr;
};

}  // namespace liberty::pcl
