// E6 (paper §2.1): "a single module template can be instantiated to model
// a processor's instruction window, its reorder buffer, and the I/O buffers
// in a packet router."
//
// pcl::Buffer serves all three roles (functional equivalence is covered by
// the test suite); here we quantify the *cost* of that generality: the
// generic template versus a hand-specialized FIFO written the monolithic
// way, simulated head to head on the same workload.  Shape expectation:
// identical results, bounded slowdown — the recurring engineering cost the
// paper argues against is far larger than this simulation-time overhead.
#include <deque>

#include "bench_util.hpp"

using namespace liberty;
using namespace liberty::bench;

namespace {

/// The "monolithic baseline": a FIFO with everything hard-coded.
class HandFifo final : public core::Module {
 public:
  HandFifo(const std::string& name, std::size_t depth)
      : Module(name), depth_(depth) {
    in_ = &add_in("in", core::AckMode::Managed, 0, 1);
    out_ = &add_out("out", 0, 1);
  }
  void cycle_start(core::Cycle) override {
    if (!items_.empty()) {
      out_->send(items_.front());
    } else {
      out_->idle();
    }
    if (items_.size() < depth_) {
      in_->ack();
    } else {
      in_->nack();
    }
  }
  void end_of_cycle() override {
    if (out_->transferred()) items_.pop_front();
    if (in_->transferred()) items_.push_back(in_->data());
  }
  void declare_deps(core::Deps& d) const override {
    d.state_only(*in_);
    d.state_only(*out_);
  }

 private:
  std::size_t depth_;
  std::deque<liberty::Value> items_;
  core::Port* in_ = nullptr;
  core::Port* out_ = nullptr;
};

struct RunOut {
  double kcps = 0.0;
  std::uint64_t delivered = 0;
};

template <typename MakeBuffer>
RunOut run_chain(MakeBuffer&& make_buffer, std::uint64_t cycles) {
  core::Netlist nl;
  // 32 parallel chains of 4 buffering stages each.
  std::vector<pcl::Sink*> sinks;
  for (int c = 0; c < 32; ++c) {
    auto& src = nl.make<pcl::Source>(
        "src" + std::to_string(c),
        core::Params().set("kind", "counter").set("period", 1));
    core::Module* prev = &src;
    for (int s = 0; s < 4; ++s) {
      core::Module& buf = make_buffer(
          nl, "b" + std::to_string(c) + "_" + std::to_string(s));
      nl.connect(prev->out(prev == &src ? "out" : "out"), buf.in("in"));
      prev = &buf;
    }
    auto& sink = nl.make<pcl::Sink>("k" + std::to_string(c), core::Params());
    sinks.push_back(&sink);
    nl.connect(prev->out("out"), sink.in("in"));
  }
  nl.finalize();
  core::Simulator sim(nl, core::SchedulerKind::Static);
  RunOut r;
  const double secs = time_seconds([&] { sim.run(cycles); });
  r.kcps = static_cast<double>(cycles) / 1e3 / secs;
  for (const auto* s : sinks) r.delivered += s->consumed();
  return r;
}

}  // namespace

int main() {
  std::printf("E6: generic pcl.buffer vs hand-specialized FIFO\n\n");
  constexpr std::uint64_t kCycles = 30'000;

  const RunOut generic = run_chain(
      [](core::Netlist& nl, const std::string& name) -> core::Module& {
        return nl.make<pcl::Buffer>(
            name, core::Params().set("capacity", 8).set("issue", "fifo"));
      },
      kCycles);
  const RunOut handwritten = run_chain(
      [](core::Netlist& nl, const std::string& name) -> core::Module& {
        return nl.make<HandFifo>(name, 8);
      },
      kCycles);
  const RunOut queue = run_chain(
      [](core::Netlist& nl, const std::string& name) -> core::Module& {
        return nl.make<pcl::Queue>(name, core::Params().set("depth", 8));
      },
      kCycles);

  Table t({"buffer impl", "kcycles/s", "delivered", "overhead vs hand"});
  t.row({"hand-written FIFO", fmt(handwritten.kcps, 1),
         fmt(handwritten.delivered), "1.00x"});
  t.row({"pcl.queue", fmt(queue.kcps, 1), fmt(queue.delivered),
         fmt(handwritten.kcps / queue.kcps, 2) + "x"});
  t.row({"pcl.buffer (generic)", fmt(generic.kcps, 1),
         fmt(generic.delivered),
         fmt(handwritten.kcps / generic.kcps, 2) + "x"});
  t.print();

  std::printf("\nroles of the same pcl.buffer template elsewhere in this "
              "repo: plain FIFO (this bench), OOO instruction window and "
              "gated ROB (tests/test_pcl.cpp), router-style I/O buffering "
              "(same discipline as ccl::Router's VC queues).\n");
  std::printf("shape check: identical delivered counts; generality costs a "
              "bounded constant factor.\n");
  return generic.delivered == handwritten.delivered ? 0 : 1;
}
