// Optimizer interface between elaboration and simulator construction.
//
// The paper's simulator *constructor* "can perform optimizations across
// module boundaries that a hand-written simulator would get for free"
// (§2.3).  This header defines the two artifacts that make such
// optimization possible without compromising the reactive semantics:
//
//  * OptTraits — what a module *declares* about itself (Module::declare_opt):
//    statelessness, purity, sleepability, pass-through structure, and
//    provably constant drives.  Declarations are promises about behaviour;
//    the optimizer only ever acts on declared facts, never on inference
//    from module code.
//
//  * OptPlan — what the optimizer *concluded* (liberty::opt::optimize):
//    per-channel constants, elidable modules, fused pass-through chains,
//    and whether quiescence gating is enabled.  The plan is pure
//    annotation: no module or connection is physically removed from the
//    netlist, every channel still resolves every cycle with exactly the
//    value it would have at -O0, and schedulers consult the plan to skip
//    the work of re-deriving those values.  This is what keeps all three
//    schedulers bit-identical to the unoptimized netlist on transfer
//    traces, state digests, and stats (verified by the differential
//    oracle).
//
// The plan is built by the liberty_opt library (src/opt) and attached to
// the netlist with Netlist::set_opt_plan; a null plan means "run exactly
// as written" and costs one branch per cycle.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "liberty/core/types.hpp"
#include "liberty/support/value.hpp"

namespace liberty::core {

class Connection;
class Module;
class Port;

/// Facts one module declares about its own behaviour (Module::declare_opt).
/// All declarations are optional; an empty OptTraits means "opaque", which
/// is always sound.
class OptTraits {
 public:
  /// Pass-through structure: when `in` offers a value v, this module offers
  /// transform(v) on `out` (identity when `transform` is empty) in the same
  /// cycle, and it acks `in` exactly when `out` is acked.  `transform` must
  /// be a pure combinational function.  Declaring this enables chain fusion.
  struct PassThrough {
    const Port* in = nullptr;
    const Port* out = nullptr;
    std::function<Value(const Value&)> transform;  // empty == identity
  };

  /// A forward channel this module provably drives to the same (enable,
  /// data) pair every cycle, regardless of inputs or time.
  struct ConstForward {
    const Port* port = nullptr;
    bool enabled = false;
    Value value;
  };

  /// No sequential state: behaviour is a pure function of this cycle's
  /// port signals (save_state is empty, end_of_cycle commits nothing).
  void stateless() noexcept { stateless_ = true; }
  /// No observable side effects: no stats, no observer hooks, no
  /// request_stop.  Together with stateless(), makes the module elidable
  /// when all its driven channels are constant.
  void pure() noexcept { pure_ = true; }
  /// This module's drives are a deterministic function of its inputs and
  /// committed state, and Module::can_sleep() reports (per cycle) whether
  /// the state component is quiescent.  Enables quiescence gating.
  void sleepable() noexcept { sleepable_ = true; }

  void passthrough(const Port& in, const Port& out,
                   std::function<Value(const Value&)> transform = {}) {
    passthroughs_.push_back({&in, &out, std::move(transform)});
  }
  void const_forward(const Port& out, bool enabled, Value v = Value()) {
    const_forwards_.push_back({&out, enabled, std::move(v)});
  }

  [[nodiscard]] bool is_stateless() const noexcept { return stateless_; }
  [[nodiscard]] bool is_pure() const noexcept { return pure_; }
  [[nodiscard]] bool is_sleepable() const noexcept { return sleepable_; }
  [[nodiscard]] const std::vector<PassThrough>& passthroughs() const noexcept {
    return passthroughs_;
  }
  [[nodiscard]] const std::vector<ConstForward>& const_forwards()
      const noexcept {
    return const_forwards_;
  }

 private:
  bool stateless_ = false;
  bool pure_ = false;
  bool sleepable_ = false;
  std::vector<PassThrough> passthroughs_;
  std::vector<ConstForward> const_forwards_;
};

/// The optimizer's conclusions, consumed by the schedulers.  Built once
/// (liberty::opt::optimize), immutable afterwards; shared by every
/// scheduler constructed over the netlist.
struct OptPlan {
  /// A channel whose resolved value is the same every cycle.  The kernel
  /// pre-resolves these at the top of run_cycle (module re-drives are
  /// idempotent no-ops, so modules that also drive them need no changes).
  struct ConstChannel {
    Connection* conn = nullptr;
    ChannelKind kind = ChannelKind::Forward;
    bool asserted = false;  // enable (forward) or ack (backward)
    Value value;            // forward payload when asserted
  };

  /// A fused linear chain of pass-through modules.  links[0] is the chain
  /// input connection, links[i+1] the output connection of members[i];
  /// interior links are both one member's output and the next member's
  /// input.  transforms[i] is members[i]'s declared transform (empty ==
  /// identity).  One forward sweep resolves links[1..n] as soon as
  /// links[0]'s offer is known; one backward sweep resolves the acks of
  /// links[0..n-1] as soon as links[n]'s ack is known.
  struct Chain {
    std::vector<Module*> members;
    std::vector<Connection*> links;
    std::vector<std::function<Value(const Value&)>> transforms;
  };

  /// Constant channels, all forwards before all backwards (application
  /// order: an ack constant may depend on its enable constant being
  /// applied first on gate-free AutoAccept connections).
  std::vector<ConstChannel> consts;
  /// By ChannelId: nonzero when that channel appears in `consts`.
  std::vector<char> channel_const;

  /// By ModuleId: nonzero when the module is dead logic — stateless, pure,
  /// and every channel it drives is constant.  Elided modules keep their
  /// ids and ports but the schedulers skip their cycle_start/react/
  /// end_of_cycle entirely.
  std::vector<char> elided;

  /// By ModuleId: module declared sleepable() (quiescence-gating
  /// candidate; the per-cycle go/no-go is Module::can_sleep()).
  std::vector<char> sleepable;

  std::vector<Chain> chains;
  /// By ModuleId: index into `chains` or -1.
  std::vector<std::int32_t> chain_of_module;
  /// By ChannelId: index of the chain whose sweeps resolve this channel,
  /// or -1.
  std::vector<std::int32_t> chain_of_channel;

  /// Master switch for quiescence gating (the schedulers derive the
  /// per-SCC candidate sets themselves from `sleepable` and their own
  /// schedule graphs).
  bool gating = false;

  [[nodiscard]] bool module_elided(ModuleId id) const noexcept {
    return id < elided.size() && elided[id] != 0;
  }
  [[nodiscard]] bool module_sleepable(ModuleId id) const noexcept {
    return id < sleepable.size() && sleepable[id] != 0;
  }
};

}  // namespace liberty::core
