#include "liberty/pcl/misc.hpp"

#include "liberty/core/opt.hpp"

namespace liberty::pcl {

using liberty::core::AckMode;
using liberty::core::bwd;
using liberty::core::Deps;
using liberty::core::fwd;
using liberty::core::Params;

// ---------------------------------------------------------------------------
// Probe
// ---------------------------------------------------------------------------

Probe::Probe(const std::string& name, const Params& params)
    : Module(name),
      in_(add_in("in", AckMode::Managed, 1, 1)),
      out_(add_out("out", 0, 1)) {
  (void)params;
}

void Probe::react() {
  if (in_.forward_known()) {
    if (in_.has_data()) {
      out_.send(in_.data());
    } else {
      out_.idle();
    }
  }
  if (!in_.ack_driven() && out_.ack_known()) {
    if (out_.acked()) {
      in_.ack();
    } else {
      in_.nack();
    }
  }
}

void Probe::end_of_cycle() {
  if (in_.transferred()) {
    ++count_;
    stats().bind(items_stat_, "items");
    items_stat_->inc();
    if (obs_) obs_(in_.data(), now());
  }
}

void Probe::save_state(liberty::core::StateWriter& w) const {
  w.put_u64(count_);
}

void Probe::load_state(liberty::core::StateReader& r) {
  count_ = r.get_u64();
}

void Probe::declare_deps(Deps& deps) const {
  deps.depends(out_, {fwd(in_)});
  deps.depends(in_, {bwd(out_)});
}

void Probe::declare_opt(liberty::core::OptTraits& traits) const {
  // Not stateless (count_) and not pure (stats + observer), so never
  // elided, but the drive behaviour is a pure wire: fusable and gateable.
  traits.passthrough(in_, out_);
  traits.sleepable();
}

bool Probe::can_sleep() const {
  return true;  // drives depend only on this cycle's port signals
}

// ---------------------------------------------------------------------------
// FuncMap
// ---------------------------------------------------------------------------

FuncMap::FuncMap(const std::string& name, const Params& params)
    : Module(name),
      in_(add_in("in", AckMode::Managed, 1, 1)),
      out_(add_out("out", 0, 1)) {
  (void)params;
}

void FuncMap::react() {
  // Guard against re-driving: fn_ may build a fresh payload each call, and
  // a second, non-identical drive would (correctly) trip the kernel's
  // monotonicity check.
  if (in_.forward_known() && !out_.forward_known()) {
    if (in_.has_data()) {
      out_.send(fn_ ? fn_(in_.data()) : in_.data());
    } else {
      out_.idle();
    }
  }
  if (!in_.ack_driven() && out_.ack_known()) {
    if (out_.acked()) {
      in_.ack();
    } else {
      in_.nack();
    }
  }
}

void FuncMap::declare_deps(Deps& deps) const {
  deps.depends(out_, {fwd(in_)});
  deps.depends(in_, {bwd(out_)});
}

void FuncMap::declare_opt(liberty::core::OptTraits& traits) const {
  // fn_ must be pure and must be installed (set_fn) before the optimizer
  // runs; the declared transform is a copy taken here.
  traits.stateless();
  traits.pure();
  traits.sleepable();
  traits.passthrough(in_, out_, fn_);
}

bool FuncMap::can_sleep() const { return true; }

}  // namespace liberty::pcl
