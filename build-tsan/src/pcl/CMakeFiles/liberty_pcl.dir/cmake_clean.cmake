file(REMOVE_RECURSE
  "CMakeFiles/liberty_pcl.dir/arbiter.cpp.o"
  "CMakeFiles/liberty_pcl.dir/arbiter.cpp.o.d"
  "CMakeFiles/liberty_pcl.dir/buffer.cpp.o"
  "CMakeFiles/liberty_pcl.dir/buffer.cpp.o.d"
  "CMakeFiles/liberty_pcl.dir/delay.cpp.o"
  "CMakeFiles/liberty_pcl.dir/delay.cpp.o.d"
  "CMakeFiles/liberty_pcl.dir/memory_array.cpp.o"
  "CMakeFiles/liberty_pcl.dir/memory_array.cpp.o.d"
  "CMakeFiles/liberty_pcl.dir/misc.cpp.o"
  "CMakeFiles/liberty_pcl.dir/misc.cpp.o.d"
  "CMakeFiles/liberty_pcl.dir/queue.cpp.o"
  "CMakeFiles/liberty_pcl.dir/queue.cpp.o.d"
  "CMakeFiles/liberty_pcl.dir/registry.cpp.o"
  "CMakeFiles/liberty_pcl.dir/registry.cpp.o.d"
  "CMakeFiles/liberty_pcl.dir/routing.cpp.o"
  "CMakeFiles/liberty_pcl.dir/routing.cpp.o.d"
  "CMakeFiles/liberty_pcl.dir/sink.cpp.o"
  "CMakeFiles/liberty_pcl.dir/sink.cpp.o.d"
  "CMakeFiles/liberty_pcl.dir/source.cpp.o"
  "CMakeFiles/liberty_pcl.dir/source.cpp.o.d"
  "libliberty_pcl.a"
  "libliberty_pcl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/liberty_pcl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
