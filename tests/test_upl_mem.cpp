// UPL memory hierarchy: CacheModule + MemoryCtl as a structural system —
// hit/miss timing, line fills, coalescing, writebacks, replacement sweeps.
#include <gtest/gtest.h>

#include <deque>
#include <memory>

#include "liberty/core/simulator.hpp"
#include "liberty/pcl/pcl.hpp"
#include "liberty/upl/upl.hpp"
#include "test_util.hpp"

namespace {

using liberty::Payload;
using liberty::Value;
using liberty::core::Cycle;
using liberty::core::Netlist;
using liberty::core::Params;
using liberty::core::SchedulerKind;
using liberty::core::Simulator;
using namespace liberty::upl;
using liberty::pcl::MemReq;
using liberty::pcl::MemResp;
using liberty::test::params;

/// Scripted requester: issues a fixed list of MemReqs one at a time and
/// records (tag -> data, completion cycle).
class Requester final : public liberty::core::Module {
 public:
  explicit Requester(const std::string& name) : liberty::core::Module(name) {
    req_ = &add_out("req", 0, 1);
    resp_ = &add_in("resp", liberty::core::AckMode::AutoAccept, 0, 1);
  }

  void push_read(std::uint64_t addr, std::uint64_t tag) {
    script_.push_back(Value::make<MemReq>(MemReq::Op::Read, addr, 0, tag));
  }
  void push_write(std::uint64_t addr, std::int64_t v, std::uint64_t tag) {
    script_.push_back(Value::make<MemReq>(MemReq::Op::Write, addr, v, tag));
  }

  void cycle_start(Cycle) override {
    if (!script_.empty() && !in_flight_) {
      req_->send(script_.front());
    } else {
      req_->idle();
    }
  }
  void end_of_cycle() override {
    if (req_->transferred()) {
      script_.pop_front();
      in_flight_ = true;
    }
    if (resp_->transferred()) {
      const auto r = resp_->data().as<MemResp>();
      results[r->tag] = {r->data, now()};
      in_flight_ = false;
    }
  }
  void declare_deps(liberty::core::Deps& d) const override {
    d.state_only(*req_);
  }

  [[nodiscard]] bool done() const { return script_.empty() && !in_flight_; }

  struct Result {
    std::int64_t data;
    Cycle at;
  };
  std::map<std::uint64_t, Result> results;

 private:
  liberty::core::Port* req_ = nullptr;
  liberty::core::Port* resp_ = nullptr;
  std::deque<Value> script_;
  bool in_flight_ = false;
};

struct MemRig {
  Netlist nl;
  Requester* cpu = nullptr;
  CacheModule* l1 = nullptr;
  MemoryCtl* mem = nullptr;
};

void build_mem_rig(MemRig& rig, const Params& cache_params,
                   std::int64_t mem_latency = 20) {
  rig.cpu = &rig.nl.make<Requester>("cpu");
  rig.l1 = &rig.nl.make<CacheModule>("l1", cache_params);
  rig.mem = &rig.nl.make<MemoryCtl>(
      "mem", params({{"latency", mem_latency}, {"line_words", 4}}));
  rig.nl.connect(rig.cpu->out("req"), rig.l1->in("cpu_req"));
  rig.nl.connect(rig.l1->out("cpu_resp"), rig.cpu->in("resp"));
  rig.nl.connect(rig.l1->out("mem_req"), rig.mem->in("req"));
  rig.nl.connect(rig.mem->out("resp"), rig.l1->in("mem_resp"));
}

std::uint64_t run_to_done(MemRig& rig, SchedulerKind kind) {
  rig.nl.finalize();
  Simulator sim(rig.nl, kind);
  std::uint64_t cycles = 0;
  while (cycles < 100'000 && !rig.cpu->done()) {
    sim.step();
    ++cycles;
  }
  return cycles;
}

class UplMem : public ::testing::TestWithParam<SchedulerKind> {};
INSTANTIATE_TEST_SUITE_P(BothSchedulers, UplMem,
                         ::testing::Values(SchedulerKind::Dynamic,
                                           SchedulerKind::Static),
                         [](const auto& info) {
                           return info.param == SchedulerKind::Dynamic
                                      ? "Dynamic"
                                      : "Static";
                         });

TEST_P(UplMem, MissThenHitLatencyGap) {
  MemRig rig;
  build_mem_rig(rig, params({{"sets", 4}, {"ways", 2}, {"line_words", 4},
                             {"hit_latency", 1}}));
  rig.mem->poke(100, 77);
  rig.mem->poke(101, 88);
  rig.cpu->push_read(100, 1);  // miss: fill from memory
  rig.cpu->push_read(101, 2);  // hit: same line
  run_to_done(rig, GetParam());

  EXPECT_EQ(rig.cpu->results.at(1).data, 77);
  EXPECT_EQ(rig.cpu->results.at(2).data, 88);
  const auto miss_time = rig.cpu->results.at(1).at;
  const auto hit_gap = rig.cpu->results.at(2).at - miss_time;
  EXPECT_GT(miss_time, 20u);  // paid the memory latency
  EXPECT_LT(hit_gap, 8u);     // second access hit in the cache
  EXPECT_EQ(rig.l1->stats().counter_value("hits"), 1u);
  EXPECT_EQ(rig.l1->stats().counter_value("misses"), 1u);
}

TEST_P(UplMem, WritebackOnDirtyEviction) {
  // 1 set x 1 way: the second line evicts the first; a dirty first line
  // must be written back and readable afterwards.
  MemRig rig;
  build_mem_rig(rig, params({{"sets", 1}, {"ways", 1}, {"line_words", 4},
                             {"hit_latency", 1}}));
  rig.cpu->push_write(0, 1234, 1);  // line 0, dirty
  rig.cpu->push_read(4, 2);         // line 4 evicts line 0
  rig.cpu->push_read(0, 3);         // line 0 refetched: value survives
  run_to_done(rig, GetParam());

  EXPECT_EQ(rig.cpu->results.at(3).data, 1234);
  EXPECT_EQ(rig.l1->stats().counter_value("writebacks"), 1u);
  EXPECT_EQ(rig.mem->peek(0), 1234);
}

TEST_P(UplMem, CleanEvictionIsSilent) {
  MemRig rig;
  build_mem_rig(rig, params({{"sets", 1}, {"ways", 1}, {"line_words", 4}}));
  rig.mem->poke(0, 5);
  rig.cpu->push_read(0, 1);
  rig.cpu->push_read(4, 2);  // evicts clean line 0
  run_to_done(rig, GetParam());
  EXPECT_EQ(rig.l1->stats().counter_value("evictions"), 1u);
  EXPECT_EQ(rig.l1->stats().counter_value("writebacks"), 0u);
}

TEST(UplMemPolicies, ReplacementSweepAllCorrect) {
  for (const char* repl : {"lru", "fifo", "random"}) {
    MemRig rig;
    build_mem_rig(rig, liberty::test::params(
                           {{"sets", 2}, {"ways", 2}, {"line_words", 4},
                            {"replacement", repl}}));
    // Write a working set larger than the cache, then read it all back.
    for (std::uint64_t i = 0; i < 10; ++i) {
      rig.cpu->push_write(i * 4, static_cast<std::int64_t>(i) * 7, i + 1);
    }
    for (std::uint64_t i = 0; i < 10; ++i) {
      rig.cpu->push_read(i * 4, 100 + i);
    }
    run_to_done(rig, SchedulerKind::Static);
    for (std::uint64_t i = 0; i < 10; ++i) {
      EXPECT_EQ(rig.cpu->results.at(100 + i).data,
                static_cast<std::int64_t>(i) * 7)
          << "policy " << repl << " word " << i;
    }
    EXPECT_GT(rig.l1->stats().counter_value("writebacks"), 0u) << repl;
  }
}

TEST(UplMemPolicies, SmallerCacheMissesMore) {
  auto misses_with = [](int sets) {
    MemRig rig;
    build_mem_rig(rig, liberty::test::params(
                           {{"sets", sets}, {"ways", 2}, {"line_words", 4}}));
    // Cyclic sweep over 16 lines, twice.
    std::uint64_t tag = 1;
    for (int pass = 0; pass < 2; ++pass) {
      for (std::uint64_t line = 0; line < 16; ++line) {
        rig.cpu->push_read(line * 4, tag++);
      }
    }
    run_to_done(rig, SchedulerKind::Static);
    return rig.l1->stats().counter_value("misses");
  };
  EXPECT_GT(misses_with(2), misses_with(16));
}

TEST(UplMemCtl, LineProtocolFetchAndWriteback) {
  // Drive MemoryCtl directly with LineReq messages.
  Netlist nl;
  auto& mem = nl.make<MemoryCtl>(
      "mem", params({{"latency", 3}, {"line_words", 4}}));
  auto& src = nl.make<liberty::pcl::Source>(
      "src", params({{"kind", "token"}, {"period", 5}, {"count", 2}}));
  auto& fm = nl.make<liberty::pcl::FuncMap>("fm", Params());
  auto& sink = nl.make<liberty::pcl::Sink>("sink", Params());
  int n = 0;
  fm.set_fn([&n](const Value&) {
    if (n++ == 0) {
      return Value::make<LineReq>(LineReq::Kind::Writeback, 8, 0, 0,
                                  std::vector<std::int64_t>{9, 8, 7, 6});
    }
    return Value::make<LineReq>(LineReq::Kind::Fetch, 8, 42, 0);
  });
  nl.connect(src.out("out"), fm.in("in"));
  nl.connect(fm.out("out"), mem.in("req"));
  nl.connect(mem.out("resp"), sink.in("in"));
  nl.finalize();

  std::vector<std::int64_t> filled;
  sink.set_consume_hook([&filled](const Value& v, Cycle) {
    const auto resp = v.as<LineResp>();
    EXPECT_EQ(resp->tag, 42u);
    filled = resp->words;
  });
  Simulator sim(nl);
  sim.run(60);
  ASSERT_EQ(filled.size(), 4u);
  EXPECT_EQ(filled[0], 9);
  EXPECT_EQ(filled[3], 6);
  EXPECT_EQ(mem.stats().counter_value("writebacks"), 1u);
  EXPECT_EQ(mem.stats().counter_value("fetches"), 1u);
}

}  // namespace
