# Empty compiler generated dependencies file for liberty_ccl.
# This may be replaced when dependencies are built.
